package sling

// The one query surface of the package. Before this interface existed the
// three facade types answered the same five queries through three
// incompatible signatures (the in-memory index infallible, the disk index
// error-returning, the dynamic index a third mix), and every consumer —
// the HTTP server, the conformance matrix, the CLIs — hand-wrote its own
// adapter per backend. Querier unifies them: context-aware, error-uniform,
// and implemented natively by *Index, *DiskIndex, and *DynamicIndex, so a
// serving layer written against Querier works over any backend, including
// future ones (sharded, replicated, remote).

import (
	"context"
	"errors"
	"fmt"
	"io"
)

// ErrNodeRange is returned (wrapped, with the offending node and the
// valid range) by every Querier method handed a node ID outside
// [0, NumNodes). All backends agree on it: callers test with
// errors.Is(err, sling.ErrNodeRange), and the HTTP layer maps it to 400.
var ErrNodeRange = errors.New("sling: node out of range")

// QuerierMeta describes a query backend: which kind it is, the graph and
// guarantee it serves, and its scoring contract.
type QuerierMeta struct {
	// Name identifies the backend kind: "memory", "disk", "dynamic", or
	// an adapter-specific label (e.g. "http-memory").
	Name string
	// Nodes is the number of nodes in the served graph.
	Nodes int
	// C is the SimRank decay factor the index was built with.
	C float64
	// Eps is the worst-case additive error guaranteed per score.
	Eps float64
	// Clamped reports whether every returned score lies in [0, 1]
	// (the dynamic layer clamps; raw index backends may overshoot by ε).
	Clamped bool
	// Epoch is the serving index generation for epoch-swapping backends
	// (the dynamic layer); 0 for immutable backends.
	Epoch uint64
	// Bytes is the backend's resident memory footprint: index structures,
	// the graph, and any configured caches. The multi-tenant catalog uses
	// it to account Queriers against its global memory budget, so every
	// backend must report a best-effort honest number rather than 0.
	Bytes int64
}

// Querier is the uniform query interface every SLING backend implements.
//
// Semantics shared by all implementations:
//
//   - Node IDs are validated first; out-of-range IDs return an error
//     wrapping ErrNodeRange, identically across backends.
//   - A cancelled ctx is observed before any work, and between
//     per-source units inside SingleSourceBatch, so abandoned requests
//     stop burning CPU mid-batch. The returned error is ctx.Err().
//   - TopK and SourceTop answer k <= 0 (or limit <= 0) with an empty
//     result and k > NumNodes like k = NumNodes.
//   - Close releases backend resources (a no-op for the in-memory
//     index); queries after Close are undefined.
type Querier interface {
	// SimRank returns s̃(u, v) within Meta().Eps of exact SimRank.
	SimRank(ctx context.Context, u, v NodeID) (float64, error)
	// SingleSource returns s̃(u, v) for every node v, writing into out
	// when it has capacity NumNodes.
	SingleSource(ctx context.Context, u NodeID, out []float64) ([]float64, error)
	// SingleSourceBatch answers one single-source query per source in
	// us; row i equals SingleSource(us[i]) exactly, at any concurrency.
	SingleSourceBatch(ctx context.Context, us []NodeID) ([][]float64, error)
	// TopK returns the k nodes most similar to u (excluding u itself) in
	// descending score order, ties broken by ascending node ID.
	TopK(ctx context.Context, u NodeID, k int) ([]Scored, error)
	// SourceTop returns the limit highest-scoring nodes for source u (u
	// itself included, typically first with s(u,u)≈1), same ordering.
	SourceTop(ctx context.Context, u NodeID, limit int) ([]Scored, error)
	// Meta describes the backend.
	Meta() QuerierMeta
	io.Closer
}

// Compile-time assertions: the three facade types are the canonical
// Querier implementations.
var (
	_ Querier = (*Index)(nil)
	_ Querier = (*DiskIndex)(nil)
	_ Querier = (*DynamicIndex)(nil)
)

// checkNode validates one node ID against a graph of n nodes.
func checkNode(n int, u NodeID) error {
	if u < 0 || int(u) >= n {
		return fmt.Errorf("%w: node %d not in [0,%d)", ErrNodeRange, u, n)
	}
	return nil
}

// checkNodes validates a batch of node IDs before any work runs, so a
// bad source fails the batch up front instead of mid-fan-out.
func checkNodes(n int, us []NodeID) error {
	for _, u := range us {
		if err := checkNode(n, u); err != nil {
			return err
		}
	}
	return nil
}
