package sling

import (
	"bytes"
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"sling/internal/rng"
)

// bg is the context used by tests that exercise query semantics rather
// than cancellation.
var bg = context.Background()

func testGraph(n, m int, seed uint64) *Graph {
	r := rng.New(seed)
	b := NewGraphBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(NodeID(r.Intn(n)), NodeID(r.Intn(n)))
	}
	return b.Build()
}

// The helpers below drive any Querier and fail the test on error, so the
// bulk of the suite reads like the old infallible API while still
// covering the uniform error path.

func mustPair(t *testing.T, q Querier, u, v NodeID) float64 {
	t.Helper()
	s, err := q.SimRank(bg, u, v)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustSource(t *testing.T, q Querier, u NodeID) []float64 {
	t.Helper()
	row, err := q.SingleSource(bg, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	return row
}

func mustTopK(t *testing.T, q Querier, u NodeID, k int) []Scored {
	t.Helper()
	top, err := q.TopK(bg, u, k)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func mustSourceTop(t *testing.T, q Querier, u NodeID, limit int) []Scored {
	t.Helper()
	top, err := q.SourceTop(bg, u, limit)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func mustBatch(t *testing.T, q Querier, us []NodeID) [][]float64 {
	t.Helper()
	rows, err := q.SingleSourceBatch(bg, us)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestQuickstartFlow(t *testing.T) {
	b := NewGraphBuilder(4)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	ix, err := Build(g, WithEps(0.05), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	// Nodes 0 and 1 are in-twins of nothing (no in-neighbors), so their
	// similarity is 0; node 2's only in-pair is (0,1).
	if got := mustPair(t, ix, 0, 1); got != 0 {
		t.Fatalf("s(0,1) = %v, want 0 (both have no in-neighbors)", got)
	}
	if got := mustPair(t, ix, 2, 2); math.Abs(got-1) > ix.ErrorBound() {
		t.Fatalf("s(2,2) = %v", got)
	}
}

func TestAccuracyAgainstExact(t *testing.T) {
	g := testGraph(40, 220, 2)
	ix, err := Build(g, WithEps(0.05), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	truth, err := ExactAllPairs(g, ix.C(), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			got := mustPair(t, ix, NodeID(i), NodeID(j))
			if d := math.Abs(got - truth.At(i, j)); d > ix.ErrorBound() {
				t.Fatalf("error %v at (%d,%d) exceeds %v", d, i, j, ix.ErrorBound())
			}
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	g := testGraph(60, 360, 4)
	ix, err := Build(g, WithEps(0.05), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	// Reference answers single-threaded.
	want := make([]float64, 60)
	for v := 0; v < 60; v++ {
		want[v] = mustPair(t, ix, 7, NodeID(v))
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for v := 0; v < 60; v++ {
					got, err := ix.SimRank(bg, 7, NodeID(v))
					if err != nil || got != want[v] {
						errs <- "concurrent query mismatch"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, bad := <-errs; bad {
		t.Fatal(msg)
	}
}

func TestSingleSourceAndTopK(t *testing.T) {
	g := testGraph(50, 300, 6)
	ix, err := Build(g, WithEps(0.05), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	scores := mustSource(t, ix, 3)
	if len(scores) != 50 {
		t.Fatalf("single-source returned %d scores", len(scores))
	}
	top := mustTopK(t, ix, 3, 5)
	if len(top) > 5 {
		t.Fatalf("TopK returned %d", len(top))
	}
	for i, s := range top {
		if s.Node == 3 {
			t.Fatal("TopK includes the query node")
		}
		if i > 0 && top[i-1].Score < s.Score {
			t.Fatal("TopK not in descending order")
		}
		if math.Abs(scores[s.Node]-s.Score) > ix.ErrorBound() {
			t.Fatal("TopK scores disagree with SingleSource")
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	g := testGraph(10, 40, 8)
	ix, err := Build(g, WithEps(0.1), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if got := mustTopK(t, ix, 0, 0); len(got) != 0 {
		t.Fatal("TopK(k=0) returned results")
	}
	if got := mustTopK(t, ix, 0, 1000); len(got) > 9 {
		t.Fatalf("TopK overflow: %d results", len(got))
	}
}

// Every Querier method must reject out-of-range nodes with the shared
// sentinel, before any work happens — the in-memory fast path used to
// index straight into CSR arrays.
func TestErrNodeRangeUniform(t *testing.T) {
	g := testGraph(10, 40, 80)
	ix, err := Build(g, WithEps(0.1), WithSeed(81))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/range.sling"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	di, err := OpenDisk(path, g)
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	dx, err := NewDynamic(g, &DynamicOptions{NumWalks: 16}, WithEps(0.1), WithSeed(81))
	if err != nil {
		t.Fatal(err)
	}
	defer dx.Close()

	for _, bad := range []NodeID{-1, 10, 999} {
		for _, q := range []Querier{ix, di, dx} {
			name := q.Meta().Name
			if _, err := q.SimRank(bg, bad, 0); !errors.Is(err, ErrNodeRange) {
				t.Fatalf("%s: SimRank(%d, 0) err = %v, want ErrNodeRange", name, bad, err)
			}
			if _, err := q.SimRank(bg, 0, bad); !errors.Is(err, ErrNodeRange) {
				t.Fatalf("%s: SimRank(0, %d) err = %v, want ErrNodeRange", name, bad, err)
			}
			if _, err := q.SingleSource(bg, bad, nil); !errors.Is(err, ErrNodeRange) {
				t.Fatalf("%s: SingleSource(%d) err = %v, want ErrNodeRange", name, bad, err)
			}
			if _, err := q.SingleSourceBatch(bg, []NodeID{0, bad}); !errors.Is(err, ErrNodeRange) {
				t.Fatalf("%s: SingleSourceBatch err = %v, want ErrNodeRange", name, err)
			}
			if _, err := q.TopK(bg, bad, 3); !errors.Is(err, ErrNodeRange) {
				t.Fatalf("%s: TopK(%d) err = %v, want ErrNodeRange", name, bad, err)
			}
			if _, err := q.SourceTop(bg, bad, 3); !errors.Is(err, ErrNodeRange) {
				t.Fatalf("%s: SourceTop(%d) err = %v, want ErrNodeRange", name, bad, err)
			}
		}
	}
}

// A pre-cancelled context returns context.Canceled from every method of
// every backend, before any work.
func TestPreCancelledContext(t *testing.T) {
	g := testGraph(12, 50, 82)
	ix, err := Build(g, WithEps(0.1), WithSeed(83))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/cancel.sling"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	di, err := OpenDisk(path, g)
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	dx, err := NewDynamic(g, &DynamicOptions{NumWalks: 16}, WithEps(0.1), WithSeed(83))
	if err != nil {
		t.Fatal(err)
	}
	defer dx.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, q := range []Querier{ix, di, dx} {
		name := q.Meta().Name
		if _, err := q.SimRank(ctx, 0, 1); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: SimRank err = %v, want context.Canceled", name, err)
		}
		if _, err := q.SingleSource(ctx, 0, nil); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: SingleSource err = %v, want context.Canceled", name, err)
		}
		if _, err := q.SingleSourceBatch(ctx, []NodeID{0, 1}); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: SingleSourceBatch err = %v, want context.Canceled", name, err)
		}
		if _, err := q.TopK(ctx, 0, 3); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: TopK err = %v, want context.Canceled", name, err)
		}
		if _, err := q.SourceTop(ctx, 0, 3); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: SourceTop err = %v, want context.Canceled", name, err)
		}
	}
}

// Meta must describe each backend consistently.
func TestQuerierMeta(t *testing.T) {
	g := testGraph(15, 60, 84)
	ix, err := Build(g, WithEps(0.1), WithSeed(85))
	if err != nil {
		t.Fatal(err)
	}
	m := ix.Meta()
	if m.Name != "memory" || m.Nodes != 15 || m.C != ix.C() || m.Eps != ix.ErrorBound() || m.Clamped || m.Epoch != 0 {
		t.Fatalf("memory meta wrong: %+v", m)
	}
	path := t.TempDir() + "/meta.sling"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	di, err := OpenDisk(path, g)
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	dm := di.Meta()
	if dm.Name != "disk" || dm.Nodes != 15 || dm.C != m.C || dm.Eps != m.Eps || dm.Clamped {
		t.Fatalf("disk meta wrong: %+v", dm)
	}
	dx, err := NewDynamic(g, &DynamicOptions{NumWalks: 16}, WithEps(0.1), WithSeed(85))
	if err != nil {
		t.Fatal(err)
	}
	defer dx.Close()
	ym := dx.Meta()
	if ym.Name != "dynamic" || !ym.Clamped || ym.Epoch != 1 {
		t.Fatalf("dynamic meta wrong: %+v", ym)
	}
	if _, err := dx.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if got := dx.Meta().Epoch; got != 2 {
		t.Fatalf("epoch after rebuild = %d, want 2", got)
	}
}

// Functional options must configure the same build the legacy Options
// struct did: same seed and knobs, bitwise-identical index.
func TestBuildOptionEquivalence(t *testing.T) {
	g := testGraph(30, 150, 86)
	viaOpts, err := Build(g, WithC(0.7), WithEps(0.08), WithSeed(87), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	viaStruct, err := Build(g, WithOptions(Options{C: 0.7, Eps: 0.08, Seed: 87, Workers: 2}))
	if err != nil {
		t.Fatal(err)
	}
	for i := NodeID(0); i < 30; i += 2 {
		for j := NodeID(0); j < 30; j += 3 {
			if mustPair(t, viaOpts, i, j) != mustPair(t, viaStruct, i, j) {
				t.Fatalf("option styles disagree at (%d,%d)", i, j)
			}
		}
	}
	if viaOpts.C() != 0.7 {
		t.Fatalf("WithC ignored: c = %v", viaOpts.C())
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	g := testGraph(30, 180, 10)
	ix, err := Build(g, WithEps(0.06), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/roundtrip.sling"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	ix2, err := Open(path, g)
	if err != nil {
		t.Fatal(err)
	}
	for i := NodeID(0); i < 30; i++ {
		for j := NodeID(0); j < 30; j += 3 {
			if a, b := mustPair(t, ix, i, j), mustPair(t, ix2, i, j); a != b {
				t.Fatalf("round trip changed s(%d,%d)", i, j)
			}
		}
	}
}

func TestWriteToReadIndex(t *testing.T) {
	g := testGraph(20, 100, 12)
	ix, err := Build(g, WithEps(0.08), WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := ReadIndex(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Bytes() != ix.Bytes() {
		t.Fatal("byte accounting changed over serialization")
	}
}

func TestOpenDisk(t *testing.T) {
	g := testGraph(40, 240, 14)
	ix, err := Build(g, WithEps(0.06), WithSeed(15))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/disk.sling"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	di, err := OpenDisk(path, g)
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	if di.Bytes() >= ix.Bytes() {
		t.Fatal("disk mode not smaller in memory than full index")
	}
	for i := NodeID(0); i < 40; i += 3 {
		for j := NodeID(0); j < 40; j += 5 {
			if got, want := mustPair(t, di, i, j), mustPair(t, ix, i, j); got != want {
				t.Fatalf("disk s(%d,%d)=%v, memory %v", i, j, got, want)
			}
		}
	}
}

func TestLoadEdgeList(t *testing.T) {
	in := "# demo\n5 7\n7 9\n5 7\n"
	g, labels, err := LoadEdgeList(bytes.NewReader([]byte(in)), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if labels[0] != 5 {
		t.Fatalf("labels = %v", labels)
	}
}

func TestBuildWithStats(t *testing.T) {
	g := testGraph(30, 180, 16)
	_, st, err := BuildWithStats(g, WithEps(0.06), WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries == 0 || st.HPPushes == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestBuildOutOfCoreFacade(t *testing.T) {
	g := testGraph(30, 180, 18)
	mem, err := Build(g, WithEps(0.06), WithSeed(19))
	if err != nil {
		t.Fatal(err)
	}
	ooc, err := BuildOutOfCore(g, t.TempDir(), 1<<20, WithEps(0.06), WithSeed(19))
	if err != nil {
		t.Fatal(err)
	}
	for i := NodeID(0); i < 30; i += 2 {
		for j := NodeID(0); j < 30; j += 3 {
			if mustPair(t, mem, i, j) != mustPair(t, ooc, i, j) {
				t.Fatalf("out-of-core differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestFromEdges(t *testing.T) {
	g := FromEdges(3, []Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 0, To: 1}})
	if g.NumEdges() != 2 {
		t.Fatalf("m=%d", g.NumEdges())
	}
}

func TestDiskIndexSingleSourceFacade(t *testing.T) {
	g := testGraph(40, 240, 20)
	ix, err := Build(g, WithEps(0.06), WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/dss.sling"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	di, err := OpenDisk(path, g)
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	want := mustSource(t, ix, 9)
	got := mustSource(t, di, 9)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("disk single-source differs at %d", v)
		}
	}
}

func TestSimilarPairsFacade(t *testing.T) {
	g := testGraph(40, 200, 22)
	ix, err := Build(g, WithEps(0.08), WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	pairs := ix.SimilarPairs(0.2)
	for i, p := range pairs {
		if p.Score < 0.2 || p.U >= p.V {
			t.Fatalf("bad pair %+v", p)
		}
		if want := mustPair(t, ix, p.U, p.V); want != p.Score {
			t.Fatalf("join score %v disagrees with SimRank %v", p.Score, want)
		}
		if i > 0 && pairs[i-1].Score < p.Score {
			t.Fatal("not sorted")
		}
	}
}

func TestSingleSourceBatchMatchesSerialFacade(t *testing.T) {
	g := testGraph(60, 300, 21)
	// Workers > 1 so the facade batch actually fans out.
	ix, err := Build(g, WithEps(0.08), WithSeed(21), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	us := []NodeID{0, 5, 5, 17, 59, 3}
	batch := mustBatch(t, ix, us)
	if len(batch) != len(us) {
		t.Fatalf("got %d rows", len(batch))
	}
	for i, u := range us {
		want := mustSource(t, ix, u)
		for v := range want {
			if batch[i][v] != want[v] {
				t.Fatalf("row %d (u=%d) node %d: %v != %v", i, u, v, batch[i][v], want[v])
			}
		}
	}
}

// Cancelling mid-batch must stop the fan-out: a cancelled context makes
// the batch return ctx.Err() rather than burning through all sources.
func TestSingleSourceBatchCancellation(t *testing.T) {
	g := testGraph(40, 200, 25)
	ix, err := Build(g, WithEps(0.1), WithSeed(25), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	us := make([]NodeID, 64)
	if _, err := ix.SingleSourceBatch(ctx, us); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
}

func TestSourceTopSemantics(t *testing.T) {
	g := testGraph(50, 250, 23)
	ix, err := Build(g, WithEps(0.08), WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	scores := mustSource(t, ix, 8)
	top := mustSourceTop(t, ix, 8, 5)
	if len(top) == 0 || len(top) > 5 {
		t.Fatalf("SourceTop returned %d results", len(top))
	}
	// u itself is included (s(u,u) ~ 1) and must lead the list.
	if top[0].Node != 8 {
		t.Fatalf("SourceTop head is node %d, want the source itself", top[0].Node)
	}
	for i := range top {
		if top[i].Score != scores[top[i].Node] {
			t.Fatal("SourceTop scores disagree with SingleSource")
		}
		if i > 0 && (top[i].Score > top[i-1].Score ||
			(top[i].Score == top[i-1].Score && top[i].Node < top[i-1].Node)) {
			t.Fatal("SourceTop not in (score desc, node asc) order")
		}
	}
	// No node outside the result may beat the tail.
	tail := top[len(top)-1]
	for v, sc := range scores {
		in := false
		for _, e := range top {
			if e.Node == NodeID(v) {
				in = true
				break
			}
		}
		if !in && sc > tail.Score && len(top) == 5 {
			t.Fatalf("node %d (score %v) beats kept tail %v", v, sc, tail.Score)
		}
	}
}

func TestFacadeParallelMatchesSerial(t *testing.T) {
	g := testGraph(60, 300, 25)
	ix, err := Build(g, WithEps(0.08), WithSeed(25), WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	us := []NodeID{1, 2, 3, 4, 5, 6, 7, 8}
	wantBatch := mustBatch(t, ix, us)
	wantPair := mustPair(t, ix, 3, 9)
	wantTop := mustTopK(t, ix, 2, 6)
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if got, err := ix.SimRank(bg, 3, 9); err != nil || got != wantPair {
					errs <- "SimRank drift under concurrency"
					return
				}
				top, err := ix.TopK(bg, 2, 6)
				if err != nil || len(top) != len(wantTop) {
					errs <- "TopK length drift under concurrency"
					return
				}
				for j := range top {
					if top[j] != wantTop[j] {
						errs <- "TopK drift under concurrency"
						return
					}
				}
				batch, err := ix.SingleSourceBatch(bg, us)
				if err != nil {
					errs <- "batch error under concurrency"
					return
				}
				for r := range batch {
					for v := range batch[r] {
						if batch[r][v] != wantBatch[r][v] {
							errs <- "SingleSourceBatch drift under concurrency"
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, bad := <-errs; bad {
		t.Fatal(msg)
	}
}

// diskTestIndex builds an index, saves it, and opens it disk-resident
// with the given options.
func diskTestIndex(t *testing.T, g *Graph, seed uint64, o *DiskOptions) (*Index, *DiskIndex) {
	t.Helper()
	ix, err := Build(g, WithEps(0.06), WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/disk.sling"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	di, err := OpenDiskWithOptions(path, g, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { di.Close() })
	return ix, di
}

// The acceptance bar for the concurrent disk engine: >= 8 goroutines of
// mixed disk queries (single-pair, single-source, top-k, source-top,
// batch) against one shared DiskIndex, byte-identical to the in-memory
// index, with the entry cache on. Run under -race in CI.
func TestDiskIndexConcurrentMixedQueries(t *testing.T) {
	g := testGraph(60, 360, 26)
	ix, di := diskTestIndex(t, g, 27, &DiskOptions{CacheBytes: 1 << 20, Workers: 4})
	wantPair := mustPair(t, ix, 4, 11)
	wantVec := mustSource(t, ix, 9)
	wantTop := mustTopK(t, ix, 3, 6)
	wantSrc := mustSourceTop(t, ix, 8, 5)
	us := []NodeID{2, 7, 1, 8, 2, 8}
	wantBatch := mustBatch(t, ix, us)
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if got, err := di.SimRank(bg, 4, 11); err != nil || got != wantPair {
					errs <- "disk SimRank drift"
					return
				}
				vec, err := di.SingleSource(bg, 9, nil)
				if err != nil {
					errs <- err.Error()
					return
				}
				for v := range wantVec {
					if vec[v] != wantVec[v] {
						errs <- "disk SingleSource drift"
						return
					}
				}
				top, err := di.TopK(bg, 3, 6)
				if err != nil || len(top) != len(wantTop) {
					errs <- "disk TopK drift"
					return
				}
				for j := range top {
					if top[j] != wantTop[j] {
						errs <- "disk TopK entry drift"
						return
					}
				}
				src, err := di.SourceTop(bg, 8, 5)
				if err != nil || len(src) != len(wantSrc) {
					errs <- "disk SourceTop drift"
					return
				}
				for j := range src {
					if src[j] != wantSrc[j] {
						errs <- "disk SourceTop entry drift"
						return
					}
				}
				batch, err := di.SingleSourceBatch(bg, us)
				if err != nil {
					errs <- err.Error()
					return
				}
				for r := range batch {
					for v := range batch[r] {
						if batch[r][v] != wantBatch[r][v] {
							errs <- "disk SingleSourceBatch drift"
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, bad := <-errs; bad {
		t.Fatal(msg)
	}
	if st := di.CacheStats(); st.Hits == 0 {
		t.Fatalf("entry cache never hit under a hot loop: %+v", st)
	}
}

// Cached and uncached disk indexes must agree with memory and each
// other; the cache must actually serve hits on re-query.
func TestOpenDiskCachedEquivalence(t *testing.T) {
	g := testGraph(40, 240, 28)
	ix, plain := diskTestIndex(t, g, 29, nil)
	_, cached := diskTestIndex(t, g, 29, &DiskOptions{CacheBytes: 2 << 20})
	for pass := 0; pass < 2; pass++ {
		for i := NodeID(0); i < 40; i += 3 {
			for j := NodeID(0); j < 40; j += 5 {
				want := mustPair(t, ix, i, j)
				a := mustPair(t, plain, i, j)
				b := mustPair(t, cached, i, j)
				if a != want || b != want {
					t.Fatalf("s(%d,%d): plain %v cached %v memory %v", i, j, a, b, want)
				}
			}
		}
	}
	if st := cached.CacheStats(); st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("cache inactive: %+v", st)
	}
	if st := plain.CacheStats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("uncached index counted cache traffic: %+v", st)
	}
}

// Facade disk TopK/SourceTop/batch must mirror the in-memory facade.
func TestDiskIndexTopKAndBatchFacade(t *testing.T) {
	g := testGraph(50, 300, 30)
	ix, di := diskTestIndex(t, g, 31, &DiskOptions{Workers: 3})
	for u := NodeID(0); u < 50; u += 11 {
		gotTop := mustTopK(t, di, u, 6)
		wantTop := mustTopK(t, ix, u, 6)
		if len(gotTop) != len(wantTop) {
			t.Fatalf("TopK(%d) length %d vs %d", u, len(gotTop), len(wantTop))
		}
		for i := range gotTop {
			if gotTop[i] != wantTop[i] {
				t.Fatalf("TopK(%d) entry %d mismatch", u, i)
			}
		}
		gotSrc := mustSourceTop(t, di, u, 4)
		wantSrc := mustSourceTop(t, ix, u, 4)
		if len(gotSrc) != len(wantSrc) {
			t.Fatalf("SourceTop(%d) length %d vs %d", u, len(gotSrc), len(wantSrc))
		}
		for i := range gotSrc {
			if gotSrc[i] != wantSrc[i] {
				t.Fatalf("SourceTop(%d) entry %d mismatch", u, i)
			}
		}
	}
	us := []NodeID{0, 13, 26, 39, 49, 13}
	got := mustBatch(t, di, us)
	want := mustBatch(t, ix, us)
	for i := range us {
		for v := range want[i] {
			if got[i][v] != want[i][v] {
				t.Fatalf("batch row %d differs at %d", i, v)
			}
		}
	}
	if di.NumEntries() == 0 {
		t.Fatal("NumEntries not surfaced")
	}
	if di.Graph() != g {
		t.Fatal("Graph not surfaced")
	}
	if di.ErrorBound() != ix.ErrorBound() || di.C() != ix.C() {
		t.Fatal("parameter accessors disagree with memory index")
	}
}
