package sling

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"sling/internal/rng"
)

func testGraph(n, m int, seed uint64) *Graph {
	r := rng.New(seed)
	b := NewGraphBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(NodeID(r.Intn(n)), NodeID(r.Intn(n)))
	}
	return b.Build()
}

func TestQuickstartFlow(t *testing.T) {
	b := NewGraphBuilder(4)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	ix, err := Build(g, &Options{Eps: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Nodes 0 and 1 are in-twins of nothing (no in-neighbors), so their
	// similarity is 0; node 2's only in-pair is (0,1).
	if got := ix.SimRank(0, 1); got != 0 {
		t.Fatalf("s(0,1) = %v, want 0 (both have no in-neighbors)", got)
	}
	if got := ix.SimRank(2, 2); math.Abs(got-1) > ix.ErrorBound() {
		t.Fatalf("s(2,2) = %v", got)
	}
}

func TestAccuracyAgainstExact(t *testing.T) {
	g := testGraph(40, 220, 2)
	ix, err := Build(g, &Options{Eps: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := ExactAllPairs(g, ix.C(), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			got := ix.SimRank(NodeID(i), NodeID(j))
			if d := math.Abs(got - truth.At(i, j)); d > ix.ErrorBound() {
				t.Fatalf("error %v at (%d,%d) exceeds %v", d, i, j, ix.ErrorBound())
			}
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	g := testGraph(60, 360, 4)
	ix, err := Build(g, &Options{Eps: 0.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Reference answers single-threaded.
	want := make([]float64, 60)
	for v := 0; v < 60; v++ {
		want[v] = ix.SimRank(7, NodeID(v))
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for v := 0; v < 60; v++ {
					if got := ix.SimRank(7, NodeID(v)); got != want[v] {
						errs <- "concurrent query mismatch"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, bad := <-errs; bad {
		t.Fatal(msg)
	}
}

func TestSingleSourceAndTopK(t *testing.T) {
	g := testGraph(50, 300, 6)
	ix, err := Build(g, &Options{Eps: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	scores := ix.SingleSource(3, nil)
	if len(scores) != 50 {
		t.Fatalf("single-source returned %d scores", len(scores))
	}
	top := ix.TopK(3, 5)
	if len(top) > 5 {
		t.Fatalf("TopK returned %d", len(top))
	}
	for i, s := range top {
		if s.Node == 3 {
			t.Fatal("TopK includes the query node")
		}
		if i > 0 && top[i-1].Score < s.Score {
			t.Fatal("TopK not in descending order")
		}
		if math.Abs(scores[s.Node]-s.Score) > ix.ErrorBound() {
			t.Fatal("TopK scores disagree with SingleSource")
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	g := testGraph(10, 40, 8)
	ix, err := Build(g, &Options{Eps: 0.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.TopK(0, 0); got != nil {
		t.Fatal("TopK(k=0) returned results")
	}
	if got := ix.TopK(0, 1000); len(got) > 9 {
		t.Fatalf("TopK overflow: %d results", len(got))
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	g := testGraph(30, 180, 10)
	ix, err := Build(g, &Options{Eps: 0.06, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/roundtrip.sling"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	ix2, err := Open(path, g)
	if err != nil {
		t.Fatal(err)
	}
	for i := NodeID(0); i < 30; i++ {
		for j := NodeID(0); j < 30; j += 3 {
			if a, b := ix.SimRank(i, j), ix2.SimRank(i, j); a != b {
				t.Fatalf("round trip changed s(%d,%d)", i, j)
			}
		}
	}
}

func TestWriteToReadIndex(t *testing.T) {
	g := testGraph(20, 100, 12)
	ix, err := Build(g, &Options{Eps: 0.08, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := ReadIndex(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Bytes() != ix.Bytes() {
		t.Fatal("byte accounting changed over serialization")
	}
}

func TestOpenDisk(t *testing.T) {
	g := testGraph(40, 240, 14)
	ix, err := Build(g, &Options{Eps: 0.06, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/disk.sling"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	di, err := OpenDisk(path, g)
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	if di.Bytes() >= ix.Bytes() {
		t.Fatal("disk mode not smaller in memory than full index")
	}
	for i := NodeID(0); i < 40; i += 3 {
		for j := NodeID(0); j < 40; j += 5 {
			got, err := di.SimRank(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if want := ix.SimRank(i, j); got != want {
				t.Fatalf("disk s(%d,%d)=%v, memory %v", i, j, got, want)
			}
		}
	}
}

func TestLoadEdgeList(t *testing.T) {
	in := "# demo\n5 7\n7 9\n5 7\n"
	g, labels, err := LoadEdgeList(bytes.NewReader([]byte(in)), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if labels[0] != 5 {
		t.Fatalf("labels = %v", labels)
	}
}

func TestBuildWithStats(t *testing.T) {
	g := testGraph(30, 180, 16)
	_, st, err := BuildWithStats(g, &Options{Eps: 0.06, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries == 0 || st.HPPushes == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestBuildOutOfCoreFacade(t *testing.T) {
	g := testGraph(30, 180, 18)
	mem, err := Build(g, &Options{Eps: 0.06, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	ooc, err := BuildOutOfCore(g, &Options{Eps: 0.06, Seed: 19}, t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := NodeID(0); i < 30; i += 2 {
		for j := NodeID(0); j < 30; j += 3 {
			if mem.SimRank(i, j) != ooc.SimRank(i, j) {
				t.Fatalf("out-of-core differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestFromEdges(t *testing.T) {
	g := FromEdges(3, []Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 0, To: 1}})
	if g.NumEdges() != 2 {
		t.Fatalf("m=%d", g.NumEdges())
	}
}

func TestDiskIndexSingleSourceFacade(t *testing.T) {
	g := testGraph(40, 240, 20)
	ix, err := Build(g, &Options{Eps: 0.06, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/dss.sling"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	di, err := OpenDisk(path, g)
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	want := ix.SingleSource(9, nil)
	got, err := di.SingleSource(9, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("disk single-source differs at %d", v)
		}
	}
}

func TestSimilarPairsFacade(t *testing.T) {
	g := testGraph(40, 200, 22)
	ix, err := Build(g, &Options{Eps: 0.08, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	pairs := ix.SimilarPairs(0.2)
	for i, p := range pairs {
		if p.Score < 0.2 || p.U >= p.V {
			t.Fatalf("bad pair %+v", p)
		}
		if want := ix.SimRank(p.U, p.V); want != p.Score {
			t.Fatalf("join score %v disagrees with SimRank %v", p.Score, want)
		}
		if i > 0 && pairs[i-1].Score < p.Score {
			t.Fatal("not sorted")
		}
	}
}

func TestSingleSourceBatchMatchesSerialFacade(t *testing.T) {
	g := testGraph(60, 300, 21)
	// Workers > 1 so the facade batch actually fans out.
	ix, err := Build(g, &Options{Eps: 0.08, Seed: 21, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	us := []NodeID{0, 5, 5, 17, 59, 3}
	batch := ix.SingleSourceBatch(us)
	if len(batch) != len(us) {
		t.Fatalf("got %d rows", len(batch))
	}
	for i, u := range us {
		want := ix.SingleSource(u, nil)
		for v := range want {
			if batch[i][v] != want[v] {
				t.Fatalf("row %d (u=%d) node %d: %v != %v", i, u, v, batch[i][v], want[v])
			}
		}
	}
}

func TestSourceTopSemantics(t *testing.T) {
	g := testGraph(50, 250, 23)
	ix, err := Build(g, &Options{Eps: 0.08, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	scores := ix.SingleSource(8, nil)
	top := ix.SourceTop(8, 5)
	if len(top) == 0 || len(top) > 5 {
		t.Fatalf("SourceTop returned %d results", len(top))
	}
	// u itself is included (s(u,u) ~ 1) and must lead the list.
	if top[0].Node != 8 {
		t.Fatalf("SourceTop head is node %d, want the source itself", top[0].Node)
	}
	for i := range top {
		if top[i].Score != scores[top[i].Node] {
			t.Fatal("SourceTop scores disagree with SingleSource")
		}
		if i > 0 && (top[i].Score > top[i-1].Score ||
			(top[i].Score == top[i-1].Score && top[i].Node < top[i-1].Node)) {
			t.Fatal("SourceTop not in (score desc, node asc) order")
		}
	}
	// No node outside the result may beat the tail.
	tail := top[len(top)-1]
	for v, sc := range scores {
		in := false
		for _, e := range top {
			if e.Node == NodeID(v) {
				in = true
				break
			}
		}
		if !in && sc > tail.Score && len(top) == 5 {
			t.Fatalf("node %d (score %v) beats kept tail %v", v, sc, tail.Score)
		}
	}
}

func TestFacadeParallelMatchesSerial(t *testing.T) {
	g := testGraph(60, 300, 25)
	ix, err := Build(g, &Options{Eps: 0.08, Seed: 25, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	us := []NodeID{1, 2, 3, 4, 5, 6, 7, 8}
	wantBatch := ix.SingleSourceBatch(us)
	wantPair := ix.SimRank(3, 9)
	wantTop := ix.TopK(2, 6)
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if ix.SimRank(3, 9) != wantPair {
					errs <- "SimRank drift under concurrency"
					return
				}
				top := ix.TopK(2, 6)
				if len(top) != len(wantTop) {
					errs <- "TopK length drift under concurrency"
					return
				}
				for j := range top {
					if top[j] != wantTop[j] {
						errs <- "TopK drift under concurrency"
						return
					}
				}
				batch := ix.SingleSourceBatch(us)
				for r := range batch {
					for v := range batch[r] {
						if batch[r][v] != wantBatch[r][v] {
							errs <- "SingleSourceBatch drift under concurrency"
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, bad := <-errs; bad {
		t.Fatal(msg)
	}
}

// diskTestIndex builds an index, saves it, and opens it disk-resident
// with the given options.
func diskTestIndex(t *testing.T, g *Graph, seed uint64, o *DiskOptions) (*Index, *DiskIndex) {
	t.Helper()
	ix, err := Build(g, &Options{Eps: 0.06, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/disk.sling"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	di, err := OpenDiskWithOptions(path, g, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { di.Close() })
	return ix, di
}

// The acceptance bar for the concurrent disk engine: >= 8 goroutines of
// mixed disk queries (single-pair, single-source, top-k, source-top,
// batch) against one shared DiskIndex, byte-identical to the in-memory
// index, with the entry cache on. Run under -race in CI.
func TestDiskIndexConcurrentMixedQueries(t *testing.T) {
	g := testGraph(60, 360, 26)
	ix, di := diskTestIndex(t, g, 27, &DiskOptions{CacheBytes: 1 << 20, Workers: 4})
	wantPair := ix.SimRank(4, 11)
	wantVec := ix.SingleSource(9, nil)
	wantTop := ix.TopK(3, 6)
	wantSrc := ix.SourceTop(8, 5)
	us := []NodeID{2, 7, 1, 8, 2, 8}
	wantBatch := ix.SingleSourceBatch(us)
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if got, err := di.SimRank(4, 11); err != nil || got != wantPair {
					errs <- "disk SimRank drift"
					return
				}
				vec, err := di.SingleSource(9, nil)
				if err != nil {
					errs <- err.Error()
					return
				}
				for v := range wantVec {
					if vec[v] != wantVec[v] {
						errs <- "disk SingleSource drift"
						return
					}
				}
				top, err := di.TopK(3, 6)
				if err != nil || len(top) != len(wantTop) {
					errs <- "disk TopK drift"
					return
				}
				for j := range top {
					if top[j] != wantTop[j] {
						errs <- "disk TopK entry drift"
						return
					}
				}
				src, err := di.SourceTop(8, 5)
				if err != nil || len(src) != len(wantSrc) {
					errs <- "disk SourceTop drift"
					return
				}
				for j := range src {
					if src[j] != wantSrc[j] {
						errs <- "disk SourceTop entry drift"
						return
					}
				}
				batch, err := di.SingleSourceBatch(us)
				if err != nil {
					errs <- err.Error()
					return
				}
				for r := range batch {
					for v := range batch[r] {
						if batch[r][v] != wantBatch[r][v] {
							errs <- "disk SingleSourceBatch drift"
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, bad := <-errs; bad {
		t.Fatal(msg)
	}
	if st := di.CacheStats(); st.Hits == 0 {
		t.Fatalf("entry cache never hit under a hot loop: %+v", st)
	}
}

// Cached and uncached disk indexes must agree with memory and each
// other; the cache must actually serve hits on re-query.
func TestOpenDiskCachedEquivalence(t *testing.T) {
	g := testGraph(40, 240, 28)
	ix, plain := diskTestIndex(t, g, 29, nil)
	_, cached := diskTestIndex(t, g, 29, &DiskOptions{CacheBytes: 2 << 20})
	for pass := 0; pass < 2; pass++ {
		for i := NodeID(0); i < 40; i += 3 {
			for j := NodeID(0); j < 40; j += 5 {
				want := ix.SimRank(i, j)
				a, err := plain.SimRank(i, j)
				if err != nil {
					t.Fatal(err)
				}
				b, err := cached.SimRank(i, j)
				if err != nil {
					t.Fatal(err)
				}
				if a != want || b != want {
					t.Fatalf("s(%d,%d): plain %v cached %v memory %v", i, j, a, b, want)
				}
			}
		}
	}
	if st := cached.CacheStats(); st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("cache inactive: %+v", st)
	}
	if st := plain.CacheStats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("uncached index counted cache traffic: %+v", st)
	}
}

// Facade disk TopK/SourceTop/batch must mirror the in-memory facade.
func TestDiskIndexTopKAndBatchFacade(t *testing.T) {
	g := testGraph(50, 300, 30)
	ix, di := diskTestIndex(t, g, 31, &DiskOptions{Workers: 3})
	for u := NodeID(0); u < 50; u += 11 {
		gotTop, err := di.TopK(u, 6)
		if err != nil {
			t.Fatal(err)
		}
		wantTop := ix.TopK(u, 6)
		if len(gotTop) != len(wantTop) {
			t.Fatalf("TopK(%d) length %d vs %d", u, len(gotTop), len(wantTop))
		}
		for i := range gotTop {
			if gotTop[i] != wantTop[i] {
				t.Fatalf("TopK(%d) entry %d mismatch", u, i)
			}
		}
		gotSrc, err := di.SourceTop(u, 4)
		if err != nil {
			t.Fatal(err)
		}
		wantSrc := ix.SourceTop(u, 4)
		if len(gotSrc) != len(wantSrc) {
			t.Fatalf("SourceTop(%d) length %d vs %d", u, len(gotSrc), len(wantSrc))
		}
		for i := range gotSrc {
			if gotSrc[i] != wantSrc[i] {
				t.Fatalf("SourceTop(%d) entry %d mismatch", u, i)
			}
		}
	}
	us := []NodeID{0, 13, 26, 39, 49, 13}
	got, err := di.SingleSourceBatch(us)
	if err != nil {
		t.Fatal(err)
	}
	want := ix.SingleSourceBatch(us)
	for i := range us {
		for v := range want[i] {
			if got[i][v] != want[i][v] {
				t.Fatalf("batch row %d differs at %d", i, v)
			}
		}
	}
	if di.NumEntries() == 0 {
		t.Fatal("NumEntries not surfaced")
	}
	if di.Graph() != g {
		t.Fatal("Graph not surfaced")
	}
	if di.ErrorBound() != ix.ErrorBound() || di.C() != ix.C() {
		t.Fatal("parameter accessors disagree with memory index")
	}
}
