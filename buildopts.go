package sling

// Functional construction options for Build, BuildWithStats,
// BuildOutOfCore, and NewDynamic. The zero configuration reproduces the
// paper's experimental setup (c = 0.6, ε = 0.025, δ_d = 1/n²); each
// option overrides one knob. The legacy Options struct remains available
// through WithOptions as a migration shim.

// BuildOption configures index construction. Apply options with
// sling.Build(g, sling.WithEps(0.01), sling.WithWorkers(8), ...).
type BuildOption func(*Options)

// resolveBuild folds a BuildOption list into one Options value. nil
// entries are ignored so callers can build option lists conditionally.
func resolveBuild(opts []BuildOption) *Options {
	var o Options
	for _, f := range opts {
		if f != nil {
			f(&o)
		}
	}
	return &o
}

// WithOptions applies a whole legacy Options struct at once, overriding
// anything set by earlier options.
//
// Deprecated: migration shim for pre-Querier callers that assembled an
// Options value; new code should use the individual With* options.
func WithOptions(o Options) BuildOption { return func(dst *Options) { *dst = o } }

// WithC sets the SimRank decay factor in (0, 1). Default 0.6.
func WithC(c float64) BuildOption { return func(o *Options) { o.C = c } }

// WithEps sets the worst-case additive error guaranteed per score.
// Default 0.025.
func WithEps(eps float64) BuildOption { return func(o *Options) { o.Eps = eps } }

// WithEpsD sets the additive error target for each correction factor
// d̃_k. Default ε(1−c)/2.
func WithEpsD(epsD float64) BuildOption { return func(o *Options) { o.EpsD = epsD } }

// WithTheta sets the hitting-probability pruning threshold θ of
// Algorithm 2. Default ε(1−√c)(1−c)/(4√c).
func WithTheta(theta float64) BuildOption { return func(o *Options) { o.Theta = theta } }

// WithDelta sets the overall preprocessing failure probability.
// Default 1/n.
func WithDelta(delta float64) BuildOption { return func(o *Options) { o.Delta = delta } }

// WithGamma sets the γ constant of the Section 5.2 space reduction.
// Default 10.
func WithGamma(gamma float64) BuildOption { return func(o *Options) { o.Gamma = gamma } }

// WithWorkers bounds build parallelism (Section 5.4) and the default
// fan-out of SingleSourceBatch on the built index. Default 1.
func WithWorkers(n int) BuildOption { return func(o *Options) { o.Workers = n } }

// WithSeed fixes all sampling, making builds reproducible at any worker
// count.
func WithSeed(seed uint64) BuildOption { return func(o *Options) { o.Seed = seed } }

// WithEnhance toggles the Section 5.3 accuracy enhancement (marked
// entries expanded one extra step at query time). Default off.
func WithEnhance(on bool) BuildOption { return func(o *Options) { o.Enhance = on } }

// WithSpaceReduction toggles the Section 5.2 optimization that drops
// recomputable step-1/2 HPs from the index. Default on.
func WithSpaceReduction(on bool) BuildOption {
	return func(o *Options) { o.DisableSpaceReduction = !on }
}

// WithBasicEstimator selects Algorithm 1 (fixed sample count) instead of
// the adaptive Algorithm 4 for d̃ estimation. Exists for the paper's
// Section 5.1 comparison.
func WithBasicEstimator(on bool) BuildOption {
	return func(o *Options) { o.BasicEstimator = on }
}
