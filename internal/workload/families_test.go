package workload

import (
	"testing"

	"sling/internal/graph"
)

func TestFamiliesDeterministicAndValid(t *testing.T) {
	if len(Families()) < 6 {
		t.Fatalf("conformance needs >= 6 families, registry has %d", len(Families()))
	}
	for _, f := range Families() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			g1 := f.Gen(24, 7)
			g2 := f.Gen(24, 7)
			if err := g1.Validate(); err != nil {
				t.Fatalf("invalid graph: %v", err)
			}
			if g1.NumNodes() == 0 || g1.NumEdges() == 0 {
				t.Fatalf("empty graph: %v", g1)
			}
			if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
				t.Fatalf("non-deterministic sizes: %v vs %v", g1, g2)
			}
			same := true
			g1.Edges(func(from, to graph.NodeID) bool {
				if !g2.HasEdge(from, to) {
					same = false
				}
				return same
			})
			if !same {
				t.Fatal("same (n, seed) produced different edge sets")
			}
			// A different seed must change randomized families (structured
			// ones are allowed to ignore it).
			g3 := f.Gen(24, 8)
			if err := g3.Validate(); err != nil {
				t.Fatalf("invalid graph at seed 8: %v", err)
			}
		})
	}
}

func TestFamilyStructuralProperties(t *testing.T) {
	byName := func(name string) *graph.Graph {
		f, ok := FamilyByName(name)
		if !ok {
			t.Fatalf("missing family %q", name)
		}
		return f.Gen(25, 3)
	}

	star := byName("star")
	if st := star.Stats(); st.MaxInDegree != star.NumNodes()-1 {
		t.Errorf("star hub in-degree %d, want %d", st.MaxInDegree, star.NumNodes()-1)
	}

	grid := byName("grid")
	if st := grid.Stats(); st.MaxInDegree > 4 {
		t.Errorf("grid max in-degree %d, want <= 4", st.MaxInDegree)
	}

	bip := byName("bipartite")
	a := bip.NumNodes() / 2
	for v := graph.NodeID(0); int(v) < a; v++ {
		if bip.InDegree(v) != 0 {
			t.Errorf("bipartite A-side node %d has in-degree %d, want 0", v, bip.InDegree(v))
		}
	}

	dag := byName("dag")
	dag.Edges(func(from, to graph.NodeID) bool {
		if from >= to {
			t.Errorf("dag edge %d->%d violates topological order", from, to)
			return false
		}
		return true
	})

	disc := byName("disconnected")
	if st := disc.Stats(); st.Sources == 0 {
		t.Error("disconnected family has no isolated/source nodes")
	}

	deg := byName("degenerate")
	loops := 0
	deg.Edges(func(from, to graph.NodeID) bool {
		if from == to {
			loops++
		}
		return true
	})
	if loops == 0 {
		t.Error("degenerate family has no self-loops")
	}

	pl := byName("powerlaw")
	er := byName("er")
	if DegreeSkew(pl) <= DegreeSkew(er) {
		t.Errorf("powerlaw skew %.2f not above er skew %.2f",
			DegreeSkew(pl), DegreeSkew(er))
	}
}

func TestParseFamilies(t *testing.T) {
	fs, err := ParseFamilies([]string{"er", "grid"})
	if err != nil || len(fs) != 2 || fs[0].Name != "er" || fs[1].Name != "grid" {
		t.Fatalf("ParseFamilies: %v %v", fs, err)
	}
	if _, err := ParseFamilies([]string{"nope"}); err == nil {
		t.Fatal("unknown family accepted")
	}
}
