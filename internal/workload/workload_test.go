package workload

import (
	"math"
	"testing"
)

func TestRegistryHasTwelveDatasets(t *testing.T) {
	ds := Datasets()
	if len(ds) != 12 {
		t.Fatalf("registry has %d datasets, want 12 (Table 3)", len(ds))
	}
	names := map[string]bool{}
	for _, s := range ds {
		if names[s.Name] {
			t.Fatalf("duplicate dataset %q", s.Name)
		}
		names[s.Name] = true
	}
	if ds[0].Name != "GrQc" || ds[11].Name != "Indochina" {
		t.Fatal("registry not in Table 3 order")
	}
}

func TestSmallDatasets(t *testing.T) {
	small := SmallDatasets()
	if len(small) != 4 {
		t.Fatalf("got %d small datasets", len(small))
	}
	want := []string{"GrQc", "AS", "Wiki-Vote", "HepTh"}
	for i, s := range small {
		if s.Name != want[i] {
			t.Fatalf("small[%d] = %q, want %q", i, s.Name, want[i])
		}
	}
}

func TestByName(t *testing.T) {
	s, ok := ByName("Google")
	if !ok || s.Name != "Google" {
		t.Fatal("ByName(Google) failed")
	}
	if _, ok := ByName("NotADataset"); ok {
		t.Fatal("ByName accepted a bogus name")
	}
}

// Stand-ins must preserve each dataset's average degree within 25%.
func TestAverageDegreePreserved(t *testing.T) {
	for _, s := range Datasets() {
		paperRatio := float64(s.PaperEdges) / float64(s.PaperNodes)
		standRatio := float64(s.Edges) / float64(s.Nodes)
		if math.Abs(standRatio-paperRatio)/paperRatio > 0.25 {
			t.Fatalf("%s: stand-in m/n %.2f vs paper %.2f", s.Name, standRatio, paperRatio)
		}
	}
}

func TestSizeProgressionPreserved(t *testing.T) {
	ds := Datasets()
	for i := 1; i < len(ds); i++ {
		if ds[i].PaperNodes < ds[i-1].PaperNodes {
			t.Fatalf("paper sizes out of order at %s", ds[i].Name)
		}
		if ds[i].Nodes < ds[i-1].Nodes {
			t.Fatalf("stand-in sizes out of order at %s", ds[i].Name)
		}
	}
}

func TestGenerateSmallDatasets(t *testing.T) {
	for _, s := range SmallDatasets() {
		g := s.Generate(1)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if g.NumNodes() != s.Nodes {
			t.Fatalf("%s: n=%d, want %d", s.Name, g.NumNodes(), s.Nodes)
		}
		// Dedup can eat a few edges; demand at least 85% of target.
		want := s.Edges
		if !s.Directed {
			want *= 2
		}
		if g.NumEdges() < want*85/100 {
			t.Fatalf("%s: m=%d, want at least 85%% of %d", s.Name, g.NumEdges(), want)
		}
		if !s.Directed {
			// Every edge must have its reverse.
			bad := 0
			g.Edges(func(from, to int32) bool {
				if !g.HasEdge(to, from) {
					bad++
				}
				return true
			})
			if bad > 0 {
				t.Fatalf("%s: %d asymmetric edges in undirected dataset", s.Name, bad)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := SmallDatasets()[0]
	g1, g2 := s.Generate(1), s.Generate(1)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("generation not deterministic")
	}
	same := true
	g1.Edges(func(from, to int32) bool {
		if !g2.HasEdge(from, to) {
			same = false
			return false
		}
		return true
	})
	if !same {
		t.Fatal("edge sets differ across generations")
	}
}

func TestScale(t *testing.T) {
	s := SmallDatasets()[0]
	half := s.Generate(0.5)
	if got, want := half.NumNodes(), int(math.Round(float64(s.Nodes)*0.5)); got != want {
		t.Fatalf("scaled n=%d, want %d", got, want)
	}
}

func TestScalePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	SmallDatasets()[0].Generate(0)
}

// Preferential attachment must be visibly heavier-tailed than uniform.
func TestGeneratorFamiliesDiffer(t *testing.T) {
	pa := Spec{Name: "pa", Directed: true, Kind: PrefAttach, Nodes: 3000, Edges: 15000, Seed: 1}
	un := Spec{Name: "un", Directed: true, Kind: Uniform, Nodes: 3000, Edges: 15000, Seed: 1}
	skewPA := DegreeSkew(pa.Generate(1))
	skewUn := DegreeSkew(un.Generate(1))
	if skewPA <= skewUn {
		t.Fatalf("pref-attach skew %.2f not above uniform %.2f", skewPA, skewUn)
	}
}

func TestNoSelfLoops(t *testing.T) {
	for _, s := range SmallDatasets() {
		g := s.Generate(0.5)
		g.Edges(func(from, to int32) bool {
			if from == to {
				t.Fatalf("%s: self loop at %d", s.Name, from)
			}
			return true
		})
	}
}

func TestRandomPairs(t *testing.T) {
	g := SmallDatasets()[0].Generate(0.5)
	pairs := RandomPairs(g, 100, 7)
	if len(pairs) != 100 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for _, p := range pairs {
		if p.U == p.V {
			t.Fatal("identical pair generated")
		}
		if int(p.U) >= g.NumNodes() || int(p.V) >= g.NumNodes() {
			t.Fatal("pair out of range")
		}
	}
	again := RandomPairs(g, 100, 7)
	for i := range pairs {
		if pairs[i] != again[i] {
			t.Fatal("pair workload not deterministic")
		}
	}
}

func TestRandomNodes(t *testing.T) {
	g := SmallDatasets()[0].Generate(0.5)
	nodes := RandomNodes(g, 50, 9)
	if len(nodes) != 50 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	for _, v := range nodes {
		if int(v) >= g.NumNodes() || v < 0 {
			t.Fatal("node out of range")
		}
	}
}

func TestKindString(t *testing.T) {
	if PrefAttach.String() != "pref-attach" || Uniform.String() != "uniform" {
		t.Fatal("Kind.String broken")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind has empty string")
	}
}
