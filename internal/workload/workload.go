// Package workload provides the experiment datasets and query workloads.
//
// The paper (Table 3) evaluates on twelve public SNAP/LAW graphs, up to
// 194M edges. This repository is offline and laptop-scale, so the
// registry ships synthetic stand-ins under the same names: directed
// graphs use preferential attachment (heavy-tailed in-degrees, like web
// and social graphs), AS-like and collaboration graphs use uniform random
// edges, and undirected datasets get both edge directions, matching the
// paper's treatment. Sizes are the paper's scaled down by a per-dataset
// divisor that keeps the twelve-point size progression and each graph's
// average degree; every cost in SLING, MC and Linearize depends only on
// n, m, the degree distribution and the decay factor, so the comparison
// shapes survive the substitution (see DESIGN.md).
package workload

import (
	"fmt"
	"math"
	"sort"

	"sling/internal/graph"
	"sling/internal/rng"
)

// Kind selects a generator family.
type Kind int

const (
	// PrefAttach grows the graph by preferential attachment: each new
	// node links to existing nodes chosen proportionally to in-degree
	// (with uniform mixing), yielding the heavy-tailed in-degree
	// distributions of web and social graphs.
	PrefAttach Kind = iota
	// Uniform draws both endpoints of every edge uniformly at random
	// (Erdős–Rényi style), matching flatter-degree topologies.
	Uniform
)

func (k Kind) String() string {
	switch k {
	case PrefAttach:
		return "pref-attach"
	case Uniform:
		return "uniform"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec describes one dataset stand-in.
type Spec struct {
	Name     string
	Directed bool
	Kind     Kind
	// Nodes and Edges are the stand-in's size at scale 1. For undirected
	// datasets Edges counts undirected edges (the Table 3 convention);
	// the generated graph stores both directions.
	Nodes, Edges int
	// PaperNodes and PaperEdges are the original Table 3 numbers, kept
	// for reporting.
	PaperNodes, PaperEdges int
	// Seed fixes generation.
	Seed uint64
}

// datasets lists the stand-ins in Table 3 order. Divisors shrink the
// originals (÷4 for the small graphs up to ÷64 for the largest) while
// preserving m/n.
var datasets = []Spec{
	{Name: "GrQc", Directed: false, Kind: Uniform, Nodes: 1311, Edges: 3624, PaperNodes: 5242, PaperEdges: 14496, Seed: 101},
	{Name: "AS", Directed: false, Kind: PrefAttach, Nodes: 1619, Edges: 3474, PaperNodes: 6474, PaperEdges: 13895, Seed: 102},
	{Name: "Wiki-Vote", Directed: true, Kind: PrefAttach, Nodes: 1789, Edges: 25922, PaperNodes: 7155, PaperEdges: 103689, Seed: 103},
	{Name: "HepTh", Directed: false, Kind: Uniform, Nodes: 2469, Edges: 6500, PaperNodes: 9877, PaperEdges: 25998, Seed: 104},
	{Name: "Enron", Directed: false, Kind: PrefAttach, Nodes: 4587, Edges: 22979, PaperNodes: 36692, PaperEdges: 183831, Seed: 105},
	{Name: "Slashdot", Directed: true, Kind: PrefAttach, Nodes: 9670, Edges: 113184, PaperNodes: 77360, PaperEdges: 905468, Seed: 106},
	{Name: "EuAll", Directed: true, Kind: PrefAttach, Nodes: 16576, Edges: 25003, PaperNodes: 265214, PaperEdges: 400045, Seed: 107},
	{Name: "NotreDame", Directed: true, Kind: PrefAttach, Nodes: 20358, Edges: 93571, PaperNodes: 325728, PaperEdges: 1497134, Seed: 108},
	{Name: "Google", Directed: true, Kind: PrefAttach, Nodes: 27366, Edges: 159533, PaperNodes: 875713, PaperEdges: 5105049, Seed: 109},
	{Name: "In-2004", Directed: true, Kind: PrefAttach, Nodes: 43216, Edges: 559908, PaperNodes: 1382908, PaperEdges: 17917053, Seed: 110},
	{Name: "LiveJournal", Directed: true, Kind: PrefAttach, Nodes: 75743, Edges: 1078028, PaperNodes: 4847571, PaperEdges: 68993773, Seed: 111},
	{Name: "Indochina", Directed: true, Kind: PrefAttach, Nodes: 115857, Edges: 3032958, PaperNodes: 7414866, PaperEdges: 194109311, Seed: 112},
}

// Datasets returns the twelve stand-ins in Table 3 order (a copy).
func Datasets() []Spec {
	out := make([]Spec, len(datasets))
	copy(out, datasets)
	return out
}

// SmallDatasets returns the four smallest graphs — the ones the paper
// uses for the accuracy experiments (Figures 5-7) and the only ones MC
// fits on.
func SmallDatasets() []Spec {
	return Datasets()[:4]
}

// ByName looks a stand-in up by its (case-sensitive) Table 3 name.
func ByName(name string) (Spec, bool) {
	for _, s := range datasets {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Generate materializes the stand-in at the given scale factor (1 = the
// registry default; 0.25 quarters node and edge counts). It panics on a
// non-positive scale.
func (s Spec) Generate(scale float64) *graph.Graph {
	if scale <= 0 {
		panic("workload: non-positive scale")
	}
	n := int(math.Round(float64(s.Nodes) * scale))
	m := int(math.Round(float64(s.Edges) * scale))
	if n < 2 {
		n = 2
	}
	if m < 1 {
		m = 1
	}
	r := rng.New(s.Seed)
	switch s.Kind {
	case PrefAttach:
		return genPrefAttach(n, m, s.Directed, r)
	case Uniform:
		return genUniform(n, m, s.Directed, r)
	default:
		panic(fmt.Sprintf("workload: unknown generator %v", s.Kind))
	}
}

// String summarizes the spec.
func (s Spec) String() string {
	dir := "directed"
	if !s.Directed {
		dir = "undirected"
	}
	return fmt.Sprintf("%s (%s, %s, n=%d m=%d; paper n=%d m=%d)",
		s.Name, dir, s.Kind, s.Nodes, s.Edges, s.PaperNodes, s.PaperEdges)
}

// genPrefAttach grows a preferential-attachment graph: node v (arriving
// after a small seed clique) draws its targets from earlier nodes, with
// probability pCopy proportionally to current in-degree (via the repeated
// endpoint list) and otherwise uniformly.
func genPrefAttach(n, m int, directed bool, r *rng.Source) *graph.Graph {
	const pCopy = 0.75
	b := graph.NewBuilder(n)
	if !directed {
		b.Undirected()
	}
	b.DropSelfLoops()
	perNode := float64(m) / float64(n-1)
	endpoints := make([]int32, 0, m)
	// Duplicate draws are common in dense graphs; count unique edges so
	// the generated m tracks the target (the experiments' costs scale
	// with m).
	seen := make(map[uint64]struct{}, m)
	insert := func(v, t int32) bool {
		if v == t {
			return false
		}
		key := uint64(uint32(v))<<32 | uint64(uint32(t))
		if !directed && t < v {
			key = uint64(uint32(t))<<32 | uint64(uint32(v))
		}
		if _, dup := seen[key]; dup {
			return false
		}
		seen[key] = struct{}{}
		b.AddEdge(v, t)
		endpoints = append(endpoints, t)
		if !directed {
			endpoints = append(endpoints, v)
		}
		return true
	}
	// Seed edge so the endpoint list is never empty.
	insert(1, 0)
	added := 1
	for v := 2; v < n && added < m; v++ {
		want := int(perNode)
		if r.Float64() < perNode-float64(want) {
			want++
		}
		for e := 0; e < want && added < m; {
			var t int32
			if r.Float64() < pCopy {
				t = endpoints[r.Intn(len(endpoints))]
			} else {
				t = int32(r.Intn(v))
			}
			if insert(int32(v), t) {
				added++
			}
			// Count the attempt either way: a node whose candidate pool
			// is exhausted (small v, dense m/n) must not spin forever.
			e++
		}
	}
	// Top up to the target edge count with preferential picks, bounding
	// the attempts so near-clique targets terminate.
	for attempts := 0; added < m && attempts < 20*m; attempts++ {
		v := int32(r.Intn(n))
		var t int32
		if r.Float64() < pCopy {
			t = endpoints[r.Intn(len(endpoints))]
		} else {
			t = int32(r.Intn(n))
		}
		if insert(v, t) {
			added++
		}
	}
	return b.Build()
}

// genUniform draws m edges with uniform endpoints (no self-loops).
func genUniform(n, m int, directed bool, r *rng.Source) *graph.Graph {
	b := graph.NewBuilder(n)
	if !directed {
		b.Undirected()
	}
	b.DropSelfLoops()
	for added := 0; added < m; {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if u == v {
			continue
		}
		b.AddEdge(u, v)
		added++
	}
	return b.Build()
}

// Pair is a query pair.
type Pair struct {
	U, V graph.NodeID
}

// RandomPairs draws count node pairs uniformly (u != v), as in the
// paper's single-pair workload (1000 random queries).
func RandomPairs(g *graph.Graph, count int, seed uint64) []Pair {
	r := rng.New(seed)
	n := g.NumNodes()
	if n < 2 {
		return nil
	}
	out := make([]Pair, 0, count)
	for len(out) < count {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if u == v {
			continue
		}
		out = append(out, Pair{u, v})
	}
	return out
}

// RandomNodes draws count nodes uniformly with replacement, as in the
// paper's single-source workload (500 random queries).
func RandomNodes(g *graph.Graph, count int, seed uint64) []graph.NodeID {
	r := rng.New(seed)
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	out := make([]graph.NodeID, count)
	for i := range out {
		out[i] = int32(r.Intn(n))
	}
	return out
}

// DegreeSkew returns the ratio of the 99th-percentile in-degree to the
// average in-degree — a crude heavy-tail indicator used by tests to check
// the generator families differ as intended.
func DegreeSkew(g *graph.Graph) float64 {
	n := g.NumNodes()
	if n == 0 || g.NumEdges() == 0 {
		return 0
	}
	degs := make([]int, n)
	for v := 0; v < n; v++ {
		degs[v] = g.InDegree(int32(v))
	}
	sort.Ints(degs)
	p99 := degs[n-1-n/100]
	avg := float64(g.NumEdges()) / float64(n)
	return float64(p99) / avg
}
