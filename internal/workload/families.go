package workload

// Graph families for the differential-conformance matrix.
//
// The dataset registry above reproduces the paper's Table 3 stand-ins;
// the families here instead span the *structural* space a SimRank service
// meets in the wild — random, heavy-tailed, regular, hub-dominated,
// layered, acyclic, disconnected, and degenerate graphs — at sizes small
// enough that the power method provides exact ground truth for every
// cell of the conformance matrix (internal/conformance).

import (
	"fmt"
	"math"

	"sling/internal/graph"
	"sling/internal/rng"
)

// Family is a named deterministic graph generator. Gen materializes the
// family at roughly n nodes; seed fixes all randomness (purely structured
// families ignore it), so the same (name, n, seed) always yields the same
// graph.
type Family struct {
	Name string
	// Desc is a one-line description for reports.
	Desc string
	Gen  func(n int, seed uint64) *graph.Graph
}

// Families returns the conformance generator registry (a copy): every
// structural family the differential matrix exercises, in fixed order.
func Families() []Family {
	out := make([]Family, len(families))
	copy(out, families)
	return out
}

// FamilyByName looks a family up by its registry name.
func FamilyByName(name string) (Family, bool) {
	for _, f := range families {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

var families = []Family{
	{
		Name: "er",
		Desc: "Erdős–Rényi: uniform random directed edges, m ≈ 5n",
		Gen: func(n int, seed uint64) *graph.Graph {
			if n < 2 {
				n = 2
			}
			return genUniform(n, 5*n, true, rng.New(seed))
		},
	},
	{
		Name: "powerlaw",
		Desc: "Barabási–Albert-style preferential attachment: heavy-tailed in-degrees",
		Gen: func(n int, seed uint64) *graph.Graph {
			if n < 2 {
				n = 2
			}
			return genPrefAttach(n, 5*n, true, rng.New(seed))
		},
	},
	{
		Name: "grid",
		Desc: "2D lattice (undirected): regular degrees, long shortest paths",
		Gen: func(n int, seed uint64) *graph.Graph {
			side := int(math.Sqrt(float64(n)))
			if side < 2 {
				side = 2
			}
			b := graph.NewBuilder(side * side)
			b.Undirected()
			at := func(r, c int) graph.NodeID { return graph.NodeID(r*side + c) }
			for r := 0; r < side; r++ {
				for c := 0; c < side; c++ {
					if c+1 < side {
						b.AddEdge(at(r, c), at(r, c+1))
					}
					if r+1 < side {
						b.AddEdge(at(r, c), at(r+1, c))
					}
				}
			}
			return b.Build()
		},
	},
	{
		Name: "star",
		Desc: "undirected star: one hub, n−1 spokes (extreme degree skew)",
		Gen: func(n int, seed uint64) *graph.Graph {
			if n < 2 {
				n = 2
			}
			b := graph.NewBuilder(n)
			b.Undirected()
			for v := 1; v < n; v++ {
				b.AddEdge(0, graph.NodeID(v))
			}
			return b.Build()
		},
	},
	{
		Name: "bipartite",
		Desc: "directed bipartite A→B: every A node is a reverse-walk sink",
		Gen: func(n int, seed uint64) *graph.Graph {
			if n < 4 {
				n = 4
			}
			a := n / 2
			r := rng.New(seed)
			b := graph.NewBuilder(n)
			// Each B node cites ~3 distinct A nodes, so B-B pairs share
			// in-neighbors (positive similarity) while A nodes have
			// in-degree 0.
			for v := a; v < n; v++ {
				for e := 0; e < 3; e++ {
					b.AddEdge(graph.NodeID(r.Intn(a)), graph.NodeID(v))
				}
			}
			return b.Build()
		},
	},
	{
		Name: "dag",
		Desc: "random DAG: edges only from lower to higher topological rank",
		Gen: func(n int, seed uint64) *graph.Graph {
			if n < 2 {
				n = 2
			}
			r := rng.New(seed)
			b := graph.NewBuilder(n)
			for added := 0; added < 4*n; {
				u, v := r.Intn(n), r.Intn(n)
				if u == v {
					continue
				}
				if u > v {
					u, v = v, u
				}
				b.AddEdge(graph.NodeID(u), graph.NodeID(v))
				added++
			}
			return b.Build()
		},
	},
	{
		Name: "disconnected",
		Desc: "two Erdős–Rényi islands plus isolated nodes (zero cross-component scores)",
		Gen: func(n int, seed uint64) *graph.Graph {
			if n < 6 {
				n = 6
			}
			isolated := 2
			island := (n - isolated) / 2
			r := rng.New(seed)
			b := graph.NewBuilder(n)
			addIsland := func(lo, size int) {
				for added := 0; added < 4*size; {
					u, v := lo+r.Intn(size), lo+r.Intn(size)
					if u == v {
						continue
					}
					b.AddEdge(graph.NodeID(u), graph.NodeID(v))
					added++
				}
			}
			addIsland(0, island)
			addIsland(island, island)
			// Nodes [2·island, n) stay isolated.
			return b.Build()
		},
	},
	{
		Name: "degenerate",
		Desc: "self-loops, duplicate input edges, and isolated nodes over a random base",
		Gen: func(n int, seed uint64) *graph.Graph {
			if n < 4 {
				n = 4
			}
			r := rng.New(seed)
			b := graph.NewBuilder(n)
			// Random base over all but the last node (which stays isolated).
			for added := 0; added < 3*n; {
				u, v := r.Intn(n-1), r.Intn(n-1)
				if u == v {
					continue
				}
				b.AddEdge(graph.NodeID(u), graph.NodeID(v))
				added++
			}
			// Self-loops on a third of the nodes; every self-loop inserted
			// twice, and a handful of base edges repeated, so multi-edge
			// input is exercised end to end (the builder dedups).
			for v := 0; v < n-1; v += 3 {
				b.AddEdge(graph.NodeID(v), graph.NodeID(v))
				b.AddEdge(graph.NodeID(v), graph.NodeID(v))
			}
			for i := 0; i < 5; i++ {
				u, v := r.Intn(n-1), r.Intn(n-1)
				if u != v {
					b.AddEdge(graph.NodeID(u), graph.NodeID(v))
					b.AddEdge(graph.NodeID(u), graph.NodeID(v))
				}
			}
			return b.Build()
		},
	},
}

// FamilyNames returns the registry names in order, for CLI flag help.
func FamilyNames() []string {
	out := make([]string, len(families))
	for i, f := range families {
		out[i] = f.Name
	}
	return out
}

// ParseFamilies resolves a comma-free list of family names (already
// split) into generators, erroring on unknown names.
func ParseFamilies(names []string) ([]Family, error) {
	out := make([]Family, 0, len(names))
	for _, name := range names {
		f, ok := FamilyByName(name)
		if !ok {
			return nil, fmt.Errorf("workload: unknown family %q (have %v)", name, FamilyNames())
		}
		out = append(out, f)
	}
	return out, nil
}
