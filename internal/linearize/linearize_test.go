package linearize

import (
	"math"
	"testing"

	"sling/internal/graph"
	"sling/internal/power"
	"sling/internal/rng"
)

func randomGraph(n, m int, seed uint64) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)))
	}
	return b.Build()
}

func groundTruth(t *testing.T, g *graph.Graph, c float64) *power.Scores {
	t.Helper()
	s, err := power.AllPairs(g, c, power.IterationsFor(1e-9, c))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildValidation(t *testing.T) {
	g := randomGraph(10, 30, 1)
	if _, err := Build(g, &Options{C: 1.2}); err == nil {
		t.Fatal("bad decay accepted")
	}
	if _, err := Build(g, &Options{T: -1}); err == nil {
		t.Fatal("negative T accepted")
	}
	if _, err := Build(g, &Options{L: -2}); err == nil {
		t.Fatal("negative L accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	x, err := Build(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(x.D()) != 0 {
		t.Fatal("non-empty D for empty graph")
	}
}

// With the exact D injected, the truncated series must match the power
// method within the truncation error c^(T+1)/(1-c) (inequality (11)).
func TestExactDMatchesPower(t *testing.T) {
	g := randomGraph(30, 140, 2)
	const c = 0.6
	truth := groundTruth(t, g, c)
	x, err := Build(g, &Options{C: c, T: 25, R: 5, L: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	x.SetD(ExactD(g, c, truth.At))
	bound := math.Pow(c, 26)/(1-c) + 1e-9
	s := x.NewScratch()
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			got := x.SimRank(graph.NodeID(i), graph.NodeID(j), s)
			if d := math.Abs(got - truth.At(i, j)); d > bound {
				t.Fatalf("s(%d,%d): %v vs %v (err %v > bound %v)", i, j, got, truth.At(i, j), d, bound)
			}
		}
	}
}

// Lemma 5 cross-check: the ExactD oracle (Equation 14) equals the unique
// diagonal correction matrix, so D-entries of dangling-free in-regular
// graphs are consistent with the fixed point.
func TestExactDRange(t *testing.T) {
	g := randomGraph(40, 200, 3)
	const c = 0.6
	truth := groundTruth(t, g, c)
	d := ExactD(g, c, truth.At)
	for k, v := range d {
		if v < 1-c-1e-9 || v > 1+1e-9 {
			// d_k = Pr[two √c-walks from k never meet after step 0]
			// lies in [1-c, 1]: meeting requires both walks to survive
			// their first step, which happens with probability c.
			t.Fatalf("d[%d] = %v outside [1-c, 1]", k, v)
		}
	}
}

func TestExactDDanglingNode(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(1, 0) // node 1 has no in-neighbors
	g := b.Build()
	truth := groundTruth(t, g, 0.6)
	d := ExactD(g, 0.6, truth.At)
	if d[1] != 1 {
		t.Fatalf("dangling node d = %v, want 1", d[1])
	}
}

// The estimated D from Build should approach ExactD with many walks.
func TestEstimatedDCloseToExact(t *testing.T) {
	g := randomGraph(25, 120, 4)
	const c = 0.6
	truth := groundTruth(t, g, c)
	exact := ExactD(g, c, truth.At)
	x, err := Build(g, &Options{C: c, T: 11, R: 3000, L: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for k := range exact {
		if d := math.Abs(x.D()[k] - exact[k]); d > worst {
			worst = d
		}
	}
	if worst > 0.05 {
		t.Fatalf("worst D estimation error %v", worst)
	}
}

// End-to-end with paper parameters: errors should be small on a benign
// random graph (no guarantee — this is the method's documented weakness —
// but the pipeline must be in the right ballpark).
func TestEndToEndAccuracy(t *testing.T) {
	g := randomGraph(40, 200, 6)
	const c = 0.6
	truth := groundTruth(t, g, c)
	x, err := Build(g, &Options{C: c, Seed: 7, R: 400, L: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := x.NewScratch()
	worst := 0.0
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			got := x.SimRank(graph.NodeID(i), graph.NodeID(j), s)
			if d := math.Abs(got - truth.At(i, j)); d > worst {
				worst = d
			}
		}
	}
	if worst > 0.08 {
		t.Fatalf("worst error %v too large", worst)
	}
}

func TestSingleSourceMatchesSinglePair(t *testing.T) {
	g := randomGraph(35, 170, 8)
	x, err := Build(g, &Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s := x.NewScratch()
	for _, u := range []graph.NodeID{0, 17, 34} {
		scores := x.SingleSource(u, s, nil)
		for v := graph.NodeID(0); v < 35; v++ {
			want := x.SimRank(u, v, s)
			if math.Abs(scores[v]-want) > 1e-9 {
				t.Fatalf("single-source s(%d,%d) = %v, single-pair %v", u, v, scores[v], want)
			}
		}
	}
}

func TestSelfScoreIsOne(t *testing.T) {
	g := randomGraph(20, 80, 10)
	x, err := Build(g, &Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s := x.NewScratch()
	for v := graph.NodeID(0); v < 20; v++ {
		if got := x.SimRank(v, v, s); got != 1 {
			t.Fatalf("s(%d,%d) = %v", v, v, got)
		}
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	g := randomGraph(40, 200, 12)
	x1, err := Build(g, &Options{Seed: 13, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	x4, err := Build(g, &Options{Seed: 13, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for k := range x1.D() {
		if x1.D()[k] != x4.D()[k] {
			t.Fatalf("D[%d] differs across worker counts", k)
		}
	}
}

// <P·u, w> must equal <u, Pᵀ·w> for random vectors: the two kernels are
// adjoint.
func TestApplyPAdjoint(t *testing.T) {
	g := randomGraph(30, 150, 14)
	x, err := Build(g, &Options{Seed: 15, R: 5, L: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(99)
	n := g.NumNodes()
	u := make([]float64, n)
	w := make([]float64, n)
	pu := make([]float64, n)
	ptw := make([]float64, n)
	for i := 0; i < n; i++ {
		u[i], w[i] = r.Float64(), r.Float64()
	}
	x.applyP(pu, u)
	x.applyPT(ptw, w)
	lhs, rhs := 0.0, 0.0
	for i := 0; i < n; i++ {
		lhs += pu[i] * w[i]
		rhs += u[i] * ptw[i]
	}
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestSetDLengthMismatchPanics(t *testing.T) {
	g := randomGraph(10, 30, 16)
	x, err := Build(g, &Options{Seed: 1, R: 5, L: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	x.SetD(make([]float64, 3))
}

func TestBytes(t *testing.T) {
	g := randomGraph(10, 30, 17)
	x, err := Build(g, &Options{Seed: 1, R: 5, L: 1})
	if err != nil {
		t.Fatal(err)
	}
	if x.Bytes() != 80 {
		t.Fatalf("Bytes = %d, want 80", x.Bytes())
	}
}

func BenchmarkSinglePair(b *testing.B) {
	g := randomGraph(2000, 16000, 1)
	x, err := Build(g, &Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	s := x.NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.SimRank(graph.NodeID(i%2000), graph.NodeID((i*13)%2000), s)
	}
}

func BenchmarkSingleSource(b *testing.B) {
	g := randomGraph(2000, 16000, 1)
	x, err := Build(g, &Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	s := x.NewScratch()
	out := make([]float64, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.SingleSource(graph.NodeID(i%2000), s, out)
	}
}
