// Package linearize implements the linearization SimRank baseline of
// Maehara et al. (Section 3.3 and Appendix A of the SLING paper).
//
// The method rests on S = Σ_ℓ c^ℓ (P^ℓ)ᵀ D P^ℓ (Lemma 2), where P is the
// column-stochastic in-neighbor matrix and D the diagonal correction
// matrix. Preprocessing estimates D: each row of the linear system (19) is
// built from R truncated reverse random walks, and the system is relaxed
// with L Gauss–Seidel sweeps. Queries then evaluate the truncated series
// (10) with sparse matrix-vector products. As the paper stresses, this
// pipeline carries no worst-case accuracy guarantee — D̃ is heuristic —
// which is exactly the weakness SLING repairs; it is reproduced here as
// the paper's principal comparison method.
package linearize

import (
	"fmt"
	"sync"

	"sling/internal/graph"
	"sling/internal/rng"
	"sling/internal/walk"
)

// Options configures Build. The zero value follows the paper's Section 7.1
// settings: c=0.6, T=11, R=100, L=3.
type Options struct {
	C float64 // decay factor; default 0.6
	T int     // series truncation; default 11
	R int     // reverse walks per node for estimating D; default 100
	L int     // Gauss-Seidel sweeps; default 3
	// Seed makes D estimation deterministic.
	Seed uint64
	// Workers bounds build parallelism; default 1.
	Workers int
}

func (o *Options) withDefaults() Options {
	opt := Options{C: 0.6, T: 11, R: 100, L: 3, Workers: 1}
	if o != nil {
		if o.C != 0 {
			opt.C = o.C
		}
		if o.T != 0 {
			opt.T = o.T
		}
		if o.R != 0 {
			opt.R = o.R
		}
		if o.L != 0 {
			opt.L = o.L
		}
		opt.Seed = o.Seed
		if o.Workers > 0 {
			opt.Workers = o.Workers
		}
	}
	return opt
}

// Index holds the estimated diagonal correction matrix. Queries walk the
// graph directly, so the index itself is O(n) on top of the graph.
type Index struct {
	g *graph.Graph
	c float64
	t int
	d []float64
}

// coeff is one off-diagonal coefficient of a row of linear system (19).
type coeff struct {
	i int32
	w float32
}

// Build estimates the diagonal correction matrix D.
func Build(g *graph.Graph, o *Options) (*Index, error) {
	opt := o.withDefaults()
	if opt.C <= 0 || opt.C >= 1 {
		return nil, fmt.Errorf("linearize: decay factor %v out of (0,1)", opt.C)
	}
	if opt.T < 1 || opt.R < 1 || opt.L < 1 {
		return nil, fmt.Errorf("linearize: T=%d R=%d L=%d must all be >= 1", opt.T, opt.R, opt.L)
	}
	n := g.NumNodes()
	x := &Index{g: g, c: opt.C, t: opt.T, d: make([]float64, n)}
	if n == 0 {
		return x, nil
	}

	// Row construction: for each k, rows[k] lists w_i = Σ_ℓ c^ℓ (p̃^(ℓ)_{k,i})²
	// over the nodes i visited by k's walks; diag[k] is the i=k entry.
	rows := make([][]coeff, n)
	diag := make([]float64, n)
	workers := opt.Workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// Dense per-step visit counters with a touched list keep row
			// construction allocation-free across nodes.
			counts := make([]float64, n)
			weights := make([]float64, n)
			var touched []int32
			buf := make([]graph.NodeID, 0, opt.T+1)
			walks := make([][]graph.NodeID, opt.R)
			for k := lo; k < hi; k++ {
				wk := walk.New(g, opt.C, rng.New(mixSeed(opt.Seed, k)))
				for r := 0; r < opt.R; r++ {
					buf = wk.ReverseWalk(graph.NodeID(k), opt.T, buf[:0])
					walks[r] = append(walks[r][:0], buf...)
				}
				touched = touched[:0]
				cl := 1.0
				for l := 0; l <= opt.T; l++ {
					// Accumulate visit counts for this step.
					var stepNodes []int32
					for r := 0; r < opt.R; r++ {
						if l >= len(walks[r]) {
							continue
						}
						v := walks[r][l]
						if counts[v] == 0 {
							stepNodes = append(stepNodes, v)
						}
						counts[v]++
					}
					for _, v := range stepNodes {
						p := counts[v] / float64(opt.R)
						if weights[v] == 0 {
							touched = append(touched, v)
						}
						weights[v] += cl * p * p
						counts[v] = 0
					}
					cl *= opt.C
				}
				row := make([]coeff, 0, len(touched))
				for _, i := range touched {
					if int(i) == k {
						diag[k] = weights[i]
					} else {
						row = append(row, coeff{i: i, w: float32(weights[i])})
					}
					weights[i] = 0
				}
				rows[k] = row
			}
		}(lo, hi)
	}
	wg.Wait()

	// Gauss-Seidel sweeps on Σ_i w_{k,i}·D_i = 1.
	for k := 0; k < n; k++ {
		x.d[k] = 1 - opt.C // standard warm start
	}
	for sweep := 0; sweep < opt.L; sweep++ {
		for k := 0; k < n; k++ {
			if diag[k] == 0 {
				// No walk mass at all (isolated node): step-0 always visits
				// k itself, so this cannot happen unless R=0; keep default.
				continue
			}
			sum := 0.0
			for _, cf := range rows[k] {
				sum += float64(cf.w) * x.d[cf.i]
			}
			x.d[k] = (1 - sum) / diag[k]
		}
	}
	return x, nil
}

func mixSeed(seed uint64, v int) uint64 {
	z := seed ^ (uint64(v)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return z ^ (z >> 31)
}

// D returns the estimated diagonal correction factors (aliases storage).
func (x *Index) D() []float64 { return x.d }

// SetD overrides the correction factors, letting tests and experiments run
// the query machinery with an exact D. It panics on a length mismatch.
func (x *Index) SetD(d []float64) {
	if len(d) != len(x.d) {
		panic("linearize: SetD length mismatch")
	}
	copy(x.d, d)
}

// Bytes returns the index footprint (the D vector).
func (x *Index) Bytes() int64 { return int64(len(x.d)) * 8 }

// T returns the series truncation length.
func (x *Index) T() int { return x.t }

// Scratch holds the per-query work vectors so repeated queries do not
// allocate. A Scratch must not be shared across goroutines.
type Scratch struct {
	u, v, r, tmp []float64
	frontier     []int32
	levels       [][]float64
}

// NewScratch sizes a Scratch for the index's graph.
func (x *Index) NewScratch() *Scratch {
	n := x.g.NumNodes()
	s := &Scratch{
		u:   make([]float64, n),
		v:   make([]float64, n),
		r:   make([]float64, n),
		tmp: make([]float64, n),
	}
	s.levels = make([][]float64, x.t+1)
	for i := range s.levels {
		s.levels[i] = make([]float64, n)
	}
	return s
}

// applyP computes dst = P·src:  dst(x) = Σ_{j : x∈I(j)} src(j)/|I(j)|,
// a scatter from each node to its in-neighbors.
func (x *Index) applyP(dst, src []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for j := range src {
		s := src[j]
		if s == 0 {
			continue
		}
		ins := x.g.InNeighbors(graph.NodeID(j))
		if len(ins) == 0 {
			continue
		}
		share := s / float64(len(ins))
		for _, i := range ins {
			dst[i] += share
		}
	}
}

// applyPT computes dst = Pᵀ·src: dst(j) = (1/|I(j)|)·Σ_{i∈I(j)} src(i),
// a gather over in-neighbors.
func (x *Index) applyPT(dst, src []float64) {
	for j := range dst {
		ins := x.g.InNeighbors(graph.NodeID(int32(j)))
		if len(ins) == 0 {
			dst[j] = 0
			continue
		}
		sum := 0.0
		for _, i := range ins {
			sum += src[i]
		}
		dst[j] = sum / float64(len(ins))
	}
}

// SimRank evaluates the truncated series (10):
// s̃(u,v) = Σ_{ℓ=0..T} c^ℓ (P^ℓ e_u)ᵀ D (P^ℓ e_v).
func (x *Index) SimRank(u, v graph.NodeID, s *Scratch) float64 {
	if s == nil {
		s = x.NewScratch()
	}
	if u == v {
		return 1
	}
	n := x.g.NumNodes()
	uv, vv, tmp := s.u, s.v, s.tmp
	for i := 0; i < n; i++ {
		uv[i], vv[i] = 0, 0
	}
	uv[u], vv[v] = 1, 1
	total := 0.0
	cl := 1.0
	for l := 0; ; l++ {
		dot := 0.0
		for i := 0; i < n; i++ {
			if uv[i] != 0 && vv[i] != 0 {
				dot += uv[i] * x.d[i] * vv[i]
			}
		}
		total += cl * dot
		if l == x.t {
			break
		}
		x.applyP(tmp, uv)
		copy(uv, tmp)
		x.applyP(tmp, vv)
		copy(vv, tmp)
		cl *= x.c
	}
	if total > 1 {
		total = 1
	}
	return total
}

// SingleSource evaluates s̃(u, ·) = Σ_ℓ c^ℓ (Pᵀ)^ℓ (D ⊙ P^ℓ e_u) with a
// Horner-style backward pass, writing into out if it has capacity n.
func (x *Index) SingleSource(u graph.NodeID, s *Scratch, out []float64) []float64 {
	if s == nil {
		s = x.NewScratch()
	}
	n := x.g.NumNodes()
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	// Forward: levels[ℓ] = P^ℓ e_u.
	for i := range s.levels[0] {
		s.levels[0][i] = 0
	}
	s.levels[0][u] = 1
	for l := 1; l <= x.t; l++ {
		x.applyP(s.levels[l], s.levels[l-1])
	}
	// Backward Horner: A_ℓ = D·v_ℓ + c·Pᵀ·A_{ℓ+1}; answer A_0.
	acc := s.r
	for i := 0; i < n; i++ {
		acc[i] = x.d[i] * s.levels[x.t][i]
	}
	for l := x.t - 1; l >= 0; l-- {
		x.applyPT(s.tmp, acc)
		for i := 0; i < n; i++ {
			acc[i] = x.d[i]*s.levels[l][i] + x.c*s.tmp[i]
		}
	}
	copy(out, acc)
	out[u] = 1
	for i := range out {
		if out[i] > 1 {
			out[i] = 1
		}
	}
	return out
}

// ExactD computes the true diagonal correction factors from a ground-truth
// all-pairs score matrix via Equation (14):
// d_k = 1 − c/|I(k)| − c/|I(k)|² Σ_{i≠j ∈ I(k)} s(i,j),
// with d_k = 1 for nodes without in-neighbors. It is an oracle for tests
// and for the paper's "Linearize with precise D" discussions.
func ExactD(g *graph.Graph, c float64, scores func(i, j int) float64) []float64 {
	n := g.NumNodes()
	d := make([]float64, n)
	for k := 0; k < n; k++ {
		ins := g.InNeighbors(graph.NodeID(k))
		deg := len(ins)
		if deg == 0 {
			d[k] = 1
			continue
		}
		sum := 0.0
		for _, i := range ins {
			for _, j := range ins {
				if i != j {
					sum += scores(int(i), int(j))
				}
			}
		}
		d[k] = 1 - c/float64(deg) - c*sum/float64(deg*deg)
	}
	return d
}
