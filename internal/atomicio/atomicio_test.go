package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := os.WriteFile(path, []byte("old contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := WriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("new contents"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new contents" {
		t.Fatalf("file holds %q, want %q", got, "new contents")
	}
	assertNoTmp(t, dir)
}

// A write that fails partway through — the crash/short-write scenario —
// must leave the pre-existing file untouched and clean up its temp file.
// Before SaveFile adopted this idiom it created the destination in
// place, so the same failure left a truncated file at the final path.
func TestWriteFileShortWriteKeepsOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := os.WriteFile(path, []byte("precious old index"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	err := WriteFile(path, func(w io.Writer) error {
		if _, err := w.Write([]byte("half of the new")); err != nil {
			return err
		}
		return boom // fail after a partial write
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected failure", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "precious old index" {
		t.Fatalf("old file clobbered: now holds %q", got)
	}
	assertNoTmp(t, dir)
}

func TestWriteFileFreshPathOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.bin")
	boom := errors.New("boom")
	if err := WriteFile(path, func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("failed write left a file at the final path (stat err = %v)", err)
	}
	assertNoTmp(t, dir)
}

func assertNoTmp(t *testing.T, dir string) {
	t.Helper()
	tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}
}
