// Package atomicio centralizes the repository's atomic file-write
// idiom: content is assembled under a .tmp sibling, fsynced, renamed
// into place, and the parent directory is fsynced so the rename itself
// is durable. A crash at any point leaves either the old file or the
// new file at the final path — never a truncated hybrid. The durable
// WAL/snapshot layer pioneered the pattern; index SaveFile and every
// build-output writer now share this one implementation.
package atomicio

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with whatever write produces. The
// write callback receives the temporary file as an io.Writer; any error
// it returns (e.g. a short write) aborts the operation, removes the
// temporary file, and leaves an existing file at path untouched.
func WriteFile(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// SyncDir fsyncs a directory so renames and creates within it are
// durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
