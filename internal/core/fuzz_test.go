package core

import (
	"bytes"
	"testing"
)

// buildSerialized returns a serialized small index for corpus seeding.
func buildSerialized(t testing.TB) []byte {
	t.Helper()
	g := randomGraph(20, 100, 1)
	x, err := Build(g, &Options{Eps: 0.1, Seed: 1, Enhance: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadIndex: arbitrary bytes must never panic the deserializer; they
// either parse (only possible for a structurally valid file) or error.
func FuzzReadIndex(f *testing.F) {
	valid := buildSerialized(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("SLIX"))
	f.Add(valid[:40])
	corrupted := append([]byte(nil), valid...)
	corrupted[50] ^= 0xff
	f.Add(corrupted)
	// A structurally valid file whose first mark is out of range: the
	// marks bounds check must reject it rather than let queries index
	// past a node's entries. (The corpus index was built with Enhance,
	// so the marks region is non-empty.)
	badMark := append([]byte(nil), valid...)
	if off := marksRegionOffset(20); off+4 <= len(badMark) {
		badMark[off], badMark[off+1], badMark[off+2], badMark[off+3] = 0xff, 0xff, 0xff, 0x7f
	}
	f.Add(badMark)
	f.Fuzz(func(t *testing.T, data []byte) {
		// nil graph skips only the node-count cross-check; all structural
		// validation still runs.
		_, _ = ReadIndex(bytes.NewReader(data), nil)
	})
}

// Every truncation of a valid index file must fail cleanly (no panic, no
// silent success).
func TestReadIndexTruncations(t *testing.T) {
	valid := buildSerialized(t)
	for cut := 0; cut < len(valid); cut += 7 {
		if _, err := ReadIndex(bytes.NewReader(valid[:cut]), nil); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
	if _, err := ReadIndex(bytes.NewReader(valid), nil); err != nil {
		t.Fatalf("full file rejected: %v", err)
	}
}

// Bit flips in the header region must never panic.
func TestReadIndexHeaderBitFlips(t *testing.T) {
	valid := buildSerialized(t)
	for pos := 0; pos < 92 && pos < len(valid); pos++ {
		for _, mask := range []byte{0x01, 0x80, 0xff} {
			mutated := append([]byte(nil), valid...)
			mutated[pos] ^= mask
			_, _ = ReadIndex(bytes.NewReader(mutated), nil) // must not panic
		}
	}
}
