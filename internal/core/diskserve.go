package core

import (
	"context"
	"sync"
	"sync/atomic"

	"sling/internal/graph"
)

// Concurrent serving over the disk-resident index (Section 5.4).
//
// os.File.ReadAt is goroutine-safe, so DiskIndex queries need no global
// lock — only per-goroutine scratch, which DiskScratchPool hands out
// from sync.Pools exactly like ScratchPool does for the in-memory index.
// The higher-level shapes the serving layer needs (top-k, source-top,
// batched single-source) are built here from the same primitives as the
// in-memory ones, so disk answers are byte-identical to memory answers.

// TopK returns the k nodes most similar to u (excluding u itself) in
// descending score order, from one disk single-source evaluation and a
// size-k heap selection. vec is the score buffer to compute into
// (allocated when it lacks capacity); nil scratches allocate.
func (d *DiskIndex) TopK(u graph.NodeID, k int, s *DiskScratch, ss *SourceScratch, vec []float64) ([]TopEntry, error) {
	if k <= 0 {
		return nil, nil
	}
	scores, err := d.SingleSource(u, s, ss, vec)
	if err != nil {
		return nil, err
	}
	return SelectTop(scores, k, u), nil
}

// SourceTop returns the limit highest-scoring nodes for source u (u
// itself included, unlike TopK) in descending score order, ties broken
// by ascending node ID.
func (d *DiskIndex) SourceTop(u graph.NodeID, limit int, s *DiskScratch, ss *SourceScratch, vec []float64) ([]TopEntry, error) {
	if limit <= 0 {
		return nil, nil
	}
	scores, err := d.SingleSource(u, s, ss, vec)
	if err != nil {
		return nil, err
	}
	return SelectTop(scores, limit, -1), nil
}

// SingleSourceBatch answers one single-source query per source in us,
// fanned across workers goroutines (GOMAXPROCS-style caller default:
// workers <= 0 means 1) with per-worker scratch, mirroring the in-memory
// Index.SingleSourceBatch. Row i equals SingleSource(us[i], ...) exactly
// at any worker count. The first I/O error aborts the batch, and a
// cancelled ctx (nil means never) stops the fan-out between sources.
func (d *DiskIndex) SingleSourceBatch(ctx context.Context, us []graph.NodeID, workers int) ([][]float64, error) {
	n := d.meta.g.NumNodes()
	out := make([][]float64, len(us))
	if workers <= 0 {
		workers = 1
	}
	if workers > len(us) {
		workers = len(us)
	}
	if workers <= 1 {
		s := d.NewScratch()
		ss := d.meta.NewSourceScratch()
		for i, u := range us {
			if err := CtxErr(ctx); err != nil {
				return nil, err
			}
			row, err := d.SingleSource(u, s, ss, make([]float64, n))
			if err != nil {
				return nil, err
			}
			out[i] = row
		}
		return out, nil
	}
	var next atomic.Int64
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := d.NewScratch()
			ss := d.meta.NewSourceScratch()
			for {
				// Claim before checking ctx: a worker that finds the work
				// list exhausted returns cleanly, so a ctx cancelled after
				// the last source cannot turn a fully-computed batch into
				// an error.
				i := int(next.Add(1)) - 1
				if i >= len(us) || firstErr.Load() != nil {
					return
				}
				// Error values are copied before their address is taken so
				// the happy path never heap-allocates an error variable.
				if err := CtxErr(ctx); err != nil {
					e := err
					firstErr.CompareAndSwap(nil, &e)
					return
				}
				row, err := d.SingleSource(us[i], s, ss, make([]float64, n))
				if err != nil {
					e := err
					firstErr.CompareAndSwap(nil, &e)
					return
				}
				out[i] = row
			}
		}()
	}
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return nil, *ep
	}
	return out, nil
}

// DiskScratchPool hands out per-goroutine DiskIndex query buffers from
// sync.Pools, the disk counterpart of ScratchPool: a serving layer can
// run disk queries at arbitrary concurrency without allocating scratch
// per call and without any global lock.
type DiskScratchPool struct {
	d       *DiskIndex
	scratch sync.Pool // *DiskScratch
	source  sync.Pool // *SourceScratch
	vec     sync.Pool // *[]float64, len = NumNodes
}

// NewScratchPool returns a pool of query scratch for the disk index.
func (d *DiskIndex) NewScratchPool() *DiskScratchPool {
	p := &DiskScratchPool{d: d}
	p.scratch.New = func() interface{} { return d.NewScratch() }
	p.source.New = func() interface{} { return d.meta.NewSourceScratch() }
	p.vec.New = func() interface{} {
		v := make([]float64, d.meta.g.NumNodes())
		return &v
	}
	return p
}

// SimRank is DiskIndex.SimRank with pooled scratch.
func (p *DiskScratchPool) SimRank(u, v graph.NodeID) (float64, error) {
	s := p.scratch.Get().(*DiskScratch)
	score, err := p.d.SimRank(u, v, s)
	p.scratch.Put(s)
	return score, err
}

// SingleSource is DiskIndex.SingleSource with pooled scratch, writing
// into out when it has capacity.
func (p *DiskScratchPool) SingleSource(u graph.NodeID, out []float64) ([]float64, error) {
	s := p.scratch.Get().(*DiskScratch)
	ss := p.source.Get().(*SourceScratch)
	res, err := p.d.SingleSource(u, s, ss, out)
	p.source.Put(ss)
	p.scratch.Put(s)
	return res, err
}

// TopK is DiskIndex.TopK with pooled scratch and score vector; only the
// k-element result is allocated.
func (p *DiskScratchPool) TopK(u graph.NodeID, k int) ([]TopEntry, error) {
	if k <= 0 {
		return nil, nil
	}
	s := p.scratch.Get().(*DiskScratch)
	ss := p.source.Get().(*SourceScratch)
	vec := p.vec.Get().(*[]float64)
	top, err := p.d.TopK(u, k, s, ss, *vec)
	p.vec.Put(vec)
	p.source.Put(ss)
	p.scratch.Put(s)
	return top, err
}

// SourceTop is DiskIndex.SourceTop with pooled scratch and score vector.
func (p *DiskScratchPool) SourceTop(u graph.NodeID, limit int) ([]TopEntry, error) {
	if limit <= 0 {
		return nil, nil
	}
	s := p.scratch.Get().(*DiskScratch)
	ss := p.source.Get().(*SourceScratch)
	vec := p.vec.Get().(*[]float64)
	top, err := p.d.SourceTop(u, limit, s, ss, *vec)
	p.vec.Put(vec)
	p.source.Put(ss)
	p.scratch.Put(s)
	return top, err
}
