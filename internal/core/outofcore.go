package core

import (
	"fmt"

	"sling/internal/extsort"
	"sling/internal/graph"
	"sling/internal/rng"
	"sling/internal/walk"
)

// Out-of-core index construction (Section 5.4 of the paper).
//
// Only the O(n) correction factors stay memory-resident during the build;
// every HP entry produced by the per-target local-update pass streams into
// a bounded-memory external sorter keyed by (owner node, step, target).
// The sorted stream is, by construction, the final index layout, so
// assembly is a single sequential pass. Total extra I/O is
// O((n/ε)·log(n/ε)), and the memory high-water mark is the sorter's
// budget plus O(n).

// OutOfCoreOptions configures BuildOutOfCore.
type OutOfCoreOptions struct {
	// Dir is the spill directory for external-sort runs. Required.
	Dir string
	// MemBudget bounds the sorter's in-memory buffer, in bytes
	// (the Figure 10 experiment's x-axis). Minimum extsort.MinMemBudget.
	MemBudget int64
}

// BuildOutOfCore constructs the same index as Build while keeping HP
// entries out of memory until final assembly. The HP pass is sequential
// over target nodes (runs are written "in turn", as the paper describes);
// the d̃ estimation still honors o.Workers.
func BuildOutOfCore(g *graph.Graph, o *Options, oo OutOfCoreOptions) (*Index, error) {
	prm, err := o.resolve(g.NumNodes())
	if err != nil {
		return nil, err
	}
	if oo.Dir == "" {
		return nil, fmt.Errorf("core: out-of-core build needs a spill directory")
	}
	n := g.NumNodes()
	x := &Index{g: g, prm: prm, d: make([]float64, n), reduced: make([]bool, n)}
	if n == 0 {
		x.off = make([]int64, 1)
		x.markOff = make([]int64, 1)
		return x, nil
	}

	// Correction factors (memory-resident per Section 5.4), parallel.
	estimateAllD(g, prm, x.d)

	// Space-reduction decisions, needed to filter entries before they are
	// spilled.
	if prm.spaceReduction {
		volCap := prm.gamma / prm.theta
		for v := int32(0); int(v) < n; v++ {
			if float64(twoHopVolume(g, v)) <= volCap {
				x.reduced[v] = true
			}
		}
	}

	sorter, err := extsort.New(oo.Dir, oo.MemBudget)
	if err != nil {
		return nil, err
	}
	scratch := newHPScratch(n)
	var pass []hpEntry
	for k := 0; k < n; k++ {
		pass, _ = hpPass(g, graph.NodeID(k), prm.sqrtC, prm.theta, scratch, pass[:0])
		for _, e := range pass {
			if x.reduced[e.x] {
				if l := keyStep(e.key); l == 1 || l == 2 {
					continue
				}
			}
			if err := sorter.Add(extsort.Record{Node: e.x, Key: e.key, Val: e.val}); err != nil {
				return nil, err
			}
		}
	}
	it, err := sorter.Sort()
	if err != nil {
		return nil, err
	}
	defer it.Close()

	// The sorted stream arrives in final CSR order; append directly.
	x.off = make([]int64, n+1)
	prev := int32(-1)
	for {
		rec, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if rec.Node < prev {
			return nil, fmt.Errorf("core: external sort returned node %d after %d", rec.Node, prev)
		}
		for prev < rec.Node {
			prev++
			x.off[prev] = int64(len(x.keys))
		}
		x.keys = append(x.keys, rec.Key)
		x.vals = append(x.vals, rec.Val)
	}
	for v := int(prev) + 1; v <= n; v++ {
		x.off[v] = int64(len(x.keys))
	}

	if prm.enhance {
		x.buildMarks()
	} else {
		x.markOff = make([]int64, n+1)
	}
	return x, nil
}

// estimateAllD fills d with correction-factor estimates, parallel over
// contiguous node ranges (deterministic: sampling for node k is seeded by
// (Seed, k)).
func estimateAllD(g *graph.Graph, prm resolved, d []float64) {
	n := g.NumNodes()
	workers := prm.workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	done := make(chan struct{}, workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			done <- struct{}{}
			continue
		}
		go func(lo, hi int) {
			for k := lo; k < hi; k++ {
				wk := walk.New(g, prm.c, rng.New(mixSeed(prm.seed, k)))
				dk, _ := estimateD(g, wk, graph.NodeID(k), prm)
				d[k] = dk
			}
			done <- struct{}{}
		}(lo, hi)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}
