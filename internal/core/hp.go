package core

import (
	"sling/internal/graph"
)

// Hitting-probability set construction (Algorithm 2 of the paper).
//
// For a fixed target node k, the local-update pass computes every
// approximate HP h̃^(ℓ)(x, k) > θ by propagating mass forward along
// out-edges:
//
//	h̃^(ℓ+1)(i, k) += √c/|I(i)| · h̃^(ℓ)(x, k)   for each out-neighbor i of x,
//
// starting from h̃^(0)(k, k) = 1 and dropping entries once they fall to θ
// or below. By Lemma 7 each surviving entry underestimates the true HP by
// at most θ·(1−(√c)^ℓ)/(1−√c), the pass costs O(out-volume/θ) and yields
// O(1/θ) entries.

// hpEntry is one surviving approximate HP destined for H(x): the source
// node x, the packed (step, target) key, and the value.
type hpEntry struct {
	x   int32
	key uint64
	val float64
}

// hpScratch holds the dense frontier state reused across target nodes so
// the per-node pass does not allocate.
type hpScratch struct {
	cur, next         []float64
	curList, nextList []int32
}

func newHPScratch(n int) *hpScratch {
	return &hpScratch{
		cur:  make([]float64, n),
		next: make([]float64, n),
	}
}

// hpPass runs Algorithm 2 for target node k, appending every surviving
// entry (x, ℓ, h̃) to out as an hpEntry keyed for H(x). It returns the
// extended slice and the number of propagation pushes performed (the
// Lemma 7 cost measure, reported by build stats).
func hpPass(g *graph.Graph, k graph.NodeID, sqrtC, theta float64, s *hpScratch, out []hpEntry) ([]hpEntry, int64) {
	pushes := int64(0)
	s.curList = append(s.curList[:0], int32(k))
	s.cur[k] = 1
	for l := 0; len(s.curList) > 0; l++ {
		s.nextList = s.nextList[:0]
		for _, x := range s.curList {
			h := s.cur[x]
			s.cur[x] = 0
			if h <= theta {
				continue
			}
			out = append(out, hpEntry{x: x, key: entryKey(l, int32(k)), val: h})
			for _, i := range g.OutNeighbors(x) {
				ins := float64(g.InDegree(i))
				add := sqrtC * h / ins
				if s.next[i] == 0 {
					s.nextList = append(s.nextList, i)
				}
				s.next[i] += add
				pushes++
			}
		}
		s.cur, s.next = s.next, s.cur
		s.curList, s.nextList = s.nextList, s.curList
	}
	return out, pushes
}
