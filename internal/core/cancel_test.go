package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"sling/internal/graph"
)

// countedErrCtx is a context whose Err() starts failing after a fixed
// number of calls, making "cancelled between the last claim and the
// final check" reproducible. With two workers and two sources, the
// fixed batch paths call Err() exactly once per claimed source (the
// check happens after claiming), so failAfter=2 models a ctx cancelled
// the instant the last source was handed out: the old
// check-then-claim loops always saw the cancellation and discarded the
// completed batch; the fixed ones never consult ctx again.
type countedErrCtx struct {
	failAfter int64
	calls     atomic.Int64
}

func (c *countedErrCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countedErrCtx) Done() <-chan struct{}       { return nil }
func (c *countedErrCtx) Value(any) any               { return nil }
func (c *countedErrCtx) Err() error {
	if c.calls.Add(1) > c.failAfter {
		return context.Canceled
	}
	return nil
}

func lateCancelFixture(t *testing.T) (*Index, []graph.NodeID, [][]float64) {
	t.Helper()
	g := randomGraph(30, 150, 3)
	x, err := Build(g, &Options{Eps: 0.1, Seed: 3, Enhance: true})
	if err != nil {
		t.Fatal(err)
	}
	us := []graph.NodeID{4, 11}
	want, err := x.SingleSourceBatch(nil, us, 1)
	if err != nil {
		t.Fatal(err)
	}
	return x, us, want
}

func assertRowsEqual(t *testing.T, got, want [][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("row %d differs at %d: %v vs %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestBatchLateCancelCompletes: a ctx that only reports cancelled after
// every source has been claimed must not fail the in-memory batch —
// the work is done; discarding it buys nothing.
func TestBatchLateCancelCompletes(t *testing.T) {
	x, us, want := lateCancelFixture(t)
	ctx := &countedErrCtx{failAfter: int64(len(us))}
	got, err := x.SingleSourceBatch(ctx, us, 2)
	if err != nil {
		t.Fatalf("late cancel discarded a completed batch: %v", err)
	}
	assertRowsEqual(t, got, want)

	// Cancelled before any work: still an error.
	if _, err := x.SingleSourceBatch(&countedErrCtx{failAfter: 0}, us, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("early cancel returned %v, want context.Canceled", err)
	}
}

// TestDiskBatchLateCancelCompletes is the disk-tier mirror of
// TestBatchLateCancelCompletes.
func TestDiskBatchLateCancelCompletes(t *testing.T) {
	g := randomGraph(30, 150, 3)
	_, path := saveTestIndex(t, g, &Options{Eps: 0.1, Seed: 3, Enhance: true})
	d, err := OpenDiskIndex(path, g)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	us := []graph.NodeID{4, 11}
	want, err := d.SingleSourceBatch(nil, us, 1)
	if err != nil {
		t.Fatal(err)
	}

	ctx := &countedErrCtx{failAfter: int64(len(us))}
	got, err := d.SingleSourceBatch(ctx, us, 2)
	if err != nil {
		t.Fatalf("late cancel discarded a completed batch: %v", err)
	}
	assertRowsEqual(t, got, want)

	if _, err := d.SingleSourceBatch(&countedErrCtx{failAfter: 0}, us, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("early cancel returned %v, want context.Canceled", err)
	}
}
