package core

import (
	"sling/internal/bernoulli"
	"sling/internal/graph"
	"sling/internal/walk"
)

// Correction-factor estimation (Section 4.3 and 5.1 of the paper).
//
// d_k is the probability that two √c-walks from k never meet after step 0.
// By Equation (14),
//
//	d_k = 1 − c/|I(k)| − c·μ,   μ = (1/|I(k)|²)·Σ_{i≠j∈I(k)} s(i, j),
//
// and μ is the mean of the Bernoulli experiment "draw i, j uniformly from
// I(k); report whether i ≠ j and fresh √c-walks from i and j meet".
// Estimating μ within ε_d/c makes d̃_k accurate within ε_d.

// dSampler returns the Bernoulli sampler above for node k, or nil when no
// sampling is needed because d_k is known exactly:
// d_k = 1 for |I(k)| = 0 and d_k = 1−c for |I(k)| = 1 (μ = 0 exactly).
func dSampler(g *graph.Graph, w *walk.Walker, k graph.NodeID) bernoulli.Sampler {
	ins := g.InNeighbors(k)
	if len(ins) <= 1 {
		return nil
	}
	n := len(ins)
	return func() bool {
		i := ins[w.Rng().Intn(n)]
		j := ins[w.Rng().Intn(n)]
		if i == j {
			return false
		}
		return w.PairMeetsAfterStart(i, j)
	}
}

// estimateD returns d̃_k with |d̃_k − d_k| ≤ εd with probability ≥ 1−δd.
// With basic=false it uses the adaptive Algorithm 4 (expected
// O((μ+ε*)/ε*²·log(1/δd)) samples, ε* = εd/c); with basic=true the fixed
// Algorithm 1 (O(1/ε*²·log(1/δd)) samples). It also reports the number of
// √c-walk pairs consumed, for the Section 5.1 ablation.
func estimateD(g *graph.Graph, w *walk.Walker, k graph.NodeID, prm resolved) (dk float64, pairs int) {
	ins := g.InNeighbors(k)
	switch len(ins) {
	case 0:
		return 1, 0
	case 1:
		return 1 - prm.c, 0
	}
	sampler := dSampler(g, w, k)
	epsStar := prm.epsD / prm.c
	if epsStar >= 1 {
		epsStar = 0.999
	}
	var (
		res bernoulli.Result
		err error
	)
	if prm.basicEstimator {
		res, err = bernoulli.EstimateFixed(sampler, epsStar, prm.deltaD)
	} else {
		res, err = bernoulli.Estimate(sampler, epsStar, prm.deltaD)
	}
	if err != nil {
		// resolve() already validated the parameters; an error here is a
		// programming bug, not a runtime condition.
		panic("core: invalid d-estimation parameters: " + err.Error())
	}
	d := 1 - prm.c/float64(len(ins)) - prm.c*res.Mean
	// d_k is a probability; clamp estimation noise into [0, 1].
	if d < 0 {
		d = 0
	}
	if d > 1 {
		d = 1
	}
	return d, res.Samples
}

// ExactDFromScores computes the exact correction factors from a
// ground-truth score oracle via Equation (14); a test and evaluation
// helper mirroring linearize.ExactD but living with the walk-based
// interpretation it proves (Lemma 5: d_k is the k-th diagonal of D).
func ExactDFromScores(g *graph.Graph, c float64, scores func(i, j int) float64) []float64 {
	n := g.NumNodes()
	d := make([]float64, n)
	for k := 0; k < n; k++ {
		ins := g.InNeighbors(graph.NodeID(k))
		deg := len(ins)
		if deg == 0 {
			d[k] = 1
			continue
		}
		sum := 0.0
		for _, i := range ins {
			for _, j := range ins {
				if i != j {
					sum += scores(int(i), int(j))
				}
			}
		}
		d[k] = 1 - c/float64(deg) - c*sum/float64(deg*deg)
	}
	return d
}
