package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"sling/internal/atomicio"
	"sling/internal/graph"
	"sling/internal/mmap"
)

// Index file format (all little-endian):
//
//	magic "SLIX" | version u32 | n u32 | flags u32 | pad u32
//	c, eps, epsD, theta, delta, gamma f64 | seed u64
//	numEntries u64 | numMarks u64
//	d        n × f64
//	reduced  ⌈n/8⌉ bytes (bitmap)
//	off      (n+1) × i64
//	markOff  (n+1) × i64
//	marks    numMarks × i32
//	align    0–7 zero bytes so the keys region starts 8-byte aligned
//	keys     numEntries × u64    ← columnar, 8-byte aligned
//	vals     numEntries × f64    ← columnar, 8-byte aligned
//
// Everything before the entries regions is O(n) and loaded eagerly; the
// keys/vals regions support the paper's Section 5.4 disk-resident mode:
// a single-pair query reads two contiguous node ranges per region with
// positioned reads, a constant I/O cost since each H(v) is O(1/ε)
// bytes. Version 2 stores the entries columnar (all keys, then all
// vals) with deterministic alignment padding, so an mmap'd file can be
// reinterpreted directly as []uint64 / []float64 views — the zero-copy
// serving mode — while the ReadAt path reads the same two ranges it
// always did.
const (
	indexMagic   = "SLIX"
	indexVersion = 2

	flagEnhance        = 1 << 0
	flagSpaceReduction = 1 << 1
	flagBasicEstimator = 1 << 2
)

func (x *Index) flags() uint32 {
	var f uint32
	if x.prm.enhance {
		f |= flagEnhance
	}
	if x.prm.spaceReduction {
		f |= flagSpaceReduction
	}
	if x.prm.basicEstimator {
		f |= flagBasicEstimator
	}
	return f
}

// alignPad returns the number of zero bytes between the marks region
// (ending at off) and the keys region, sized so keys starts 8-byte
// aligned. It is a pure function of the header counts, so reader and
// writer always agree.
func alignPad(off int64) int64 { return (8 - off%8) % 8 }

// metaSize returns the byte offset where the alignment padding starts:
// header plus every O(n) metadata region.
func metaSize(n int, numMarks int64) int64 {
	return 92 + int64(8*n) + int64((n+7)/8) + 2*int64(8*(n+1)) + 4*numMarks
}

// WriteTo serializes the index. It implements io.WriterTo. The
// returned count is the number of bytes the underlying writer actually
// accepted: counting sits beneath the internal buffer, so a failed
// flush cannot over-report buffered-but-unwritten bytes.
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<20)
	n := len(x.d)
	hdr := make([]byte, 4+4+4+4+4+6*8+8+8+8)
	copy(hdr, indexMagic)
	le := binary.LittleEndian
	le.PutUint32(hdr[4:], indexVersion)
	le.PutUint32(hdr[8:], uint32(n))
	le.PutUint32(hdr[12:], x.flags())
	le.PutUint32(hdr[16:], 0)
	le.PutUint64(hdr[20:], math.Float64bits(x.prm.c))
	le.PutUint64(hdr[28:], math.Float64bits(x.prm.eps))
	le.PutUint64(hdr[36:], math.Float64bits(x.prm.epsD))
	le.PutUint64(hdr[44:], math.Float64bits(x.prm.theta))
	le.PutUint64(hdr[52:], math.Float64bits(x.prm.delta))
	le.PutUint64(hdr[60:], math.Float64bits(x.prm.gamma))
	le.PutUint64(hdr[68:], x.prm.seed)
	le.PutUint64(hdr[76:], uint64(len(x.keys)))
	le.PutUint64(hdr[84:], uint64(len(x.marks)))
	if _, err := bw.Write(hdr); err != nil {
		return cw.n, err
	}
	buf := make([]byte, 16)
	for _, v := range x.d {
		le.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf[:8]); err != nil {
			return cw.n, err
		}
	}
	bitmap := make([]byte, (n+7)/8)
	for v, r := range x.reduced {
		if r {
			bitmap[v/8] |= 1 << (v % 8)
		}
	}
	if _, err := bw.Write(bitmap); err != nil {
		return cw.n, err
	}
	for _, o := range x.off {
		le.PutUint64(buf, uint64(o))
		if _, err := bw.Write(buf[:8]); err != nil {
			return cw.n, err
		}
	}
	for _, o := range x.markOff {
		le.PutUint64(buf, uint64(o))
		if _, err := bw.Write(buf[:8]); err != nil {
			return cw.n, err
		}
	}
	for _, m := range x.marks {
		le.PutUint32(buf, uint32(m))
		if _, err := bw.Write(buf[:4]); err != nil {
			return cw.n, err
		}
	}
	var zeros [8]byte
	if pad := alignPad(metaSize(n, int64(len(x.marks)))); pad > 0 {
		if _, err := bw.Write(zeros[:pad]); err != nil {
			return cw.n, err
		}
	}
	for _, k := range x.keys {
		le.PutUint64(buf, k)
		if _, err := bw.Write(buf[:8]); err != nil {
			return cw.n, err
		}
	}
	for _, v := range x.vals {
		le.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf[:8]); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// SaveFile writes the index to path atomically: the bytes are
// assembled under a temporary sibling, fsynced, and renamed into
// place, so a crash mid-write can never leave a truncated SLIX file at
// the final path.
func (x *Index) SaveFile(path string) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		_, err := x.WriteTo(w)
		return err
	})
}

// readMeta parses everything before the entries regions into a skeleton
// Index (keys/vals empty), consuming the alignment padding, and returns
// the byte offset of the keys region and the entry count.
func readMeta(r io.Reader, g *graph.Graph) (*Index, int64, int64, error) {
	le := binary.LittleEndian
	hdr := make([]byte, 92)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, 0, 0, fmt.Errorf("core: reading index header: %w", err)
	}
	if string(hdr[:4]) != indexMagic {
		return nil, 0, 0, errors.New("core: bad magic; not a SLIX file")
	}
	if v := le.Uint32(hdr[4:]); v != indexVersion {
		return nil, 0, 0, fmt.Errorf("core: unsupported index version %d", v)
	}
	n := int(le.Uint32(hdr[8:]))
	if g != nil && g.NumNodes() != n {
		return nil, 0, 0, fmt.Errorf("core: index built for n=%d nodes, graph has %d", n, g.NumNodes())
	}
	flags := le.Uint32(hdr[12:])
	var prm resolved
	prm.c = math.Float64frombits(le.Uint64(hdr[20:]))
	prm.eps = math.Float64frombits(le.Uint64(hdr[28:]))
	prm.epsD = math.Float64frombits(le.Uint64(hdr[36:]))
	prm.theta = math.Float64frombits(le.Uint64(hdr[44:]))
	prm.delta = math.Float64frombits(le.Uint64(hdr[52:]))
	prm.gamma = math.Float64frombits(le.Uint64(hdr[60:]))
	prm.seed = le.Uint64(hdr[68:])
	prm.sqrtC = math.Sqrt(prm.c)
	prm.workers = 1
	prm.enhance = flags&flagEnhance != 0
	prm.spaceReduction = flags&flagSpaceReduction != 0
	prm.basicEstimator = flags&flagBasicEstimator != 0
	if prm.c <= 0 || prm.c >= 1 || prm.theta <= 0 {
		return nil, 0, 0, errors.New("core: corrupt index parameters")
	}
	numEntries := int64(le.Uint64(hdr[76:]))
	numMarks := int64(le.Uint64(hdr[84:]))
	if numEntries < 0 || numMarks < 0 {
		return nil, 0, 0, errors.New("core: negative sizes in index header")
	}
	x := &Index{g: g, prm: prm}
	// All counted allocations go through readChunkedU64/U32, which grow
	// with the bytes actually read, so a corrupt header claiming a huge
	// size fails at EOF instead of exhausting memory.
	dBits, err := readChunkedU64(r, int64(n), "d")
	if err != nil {
		return nil, 0, 0, err
	}
	x.d = make([]float64, n)
	for i, b := range dBits {
		x.d[i] = math.Float64frombits(b)
	}
	bitmap := make([]byte, (n+7)/8)
	if _, err := io.ReadFull(r, bitmap); err != nil {
		return nil, 0, 0, fmt.Errorf("core: reading bitmap: %w", err)
	}
	x.reduced = make([]bool, n)
	for v := range x.reduced {
		x.reduced[v] = bitmap[v/8]&(1<<(v%8)) != 0
	}
	offBits, err := readChunkedU64(r, int64(n)+1, "offsets")
	if err != nil {
		return nil, 0, 0, err
	}
	x.off = make([]int64, n+1)
	for i, b := range offBits {
		x.off[i] = int64(b)
	}
	if x.off[0] != 0 || x.off[n] != numEntries {
		return nil, 0, 0, errors.New("core: corrupt offset table")
	}
	for v := 0; v < n; v++ {
		if x.off[v] > x.off[v+1] {
			return nil, 0, 0, errors.New("core: non-monotone offset table")
		}
	}
	markBits, err := readChunkedU64(r, int64(n)+1, "mark offsets")
	if err != nil {
		return nil, 0, 0, err
	}
	x.markOff = make([]int64, n+1)
	for i, b := range markBits {
		x.markOff[i] = int64(b)
	}
	if x.markOff[0] != 0 || x.markOff[n] != numMarks {
		return nil, 0, 0, errors.New("core: corrupt mark offset table")
	}
	for v := 0; v < n; v++ {
		if x.markOff[v] > x.markOff[v+1] {
			return nil, 0, 0, errors.New("core: non-monotone mark offset table")
		}
	}
	marks32, err := readChunkedU32(r, numMarks, "marks")
	if err != nil {
		return nil, 0, 0, err
	}
	x.marks = make([]int32, numMarks)
	for i, b := range marks32 {
		x.marks[i] = int32(b)
	}
	// Marks are positions into the owning node's stored entry range; an
	// out-of-range mark would panic the Section 5.3 expansion at query
	// time, so reject it at load like graph.ReadBinary does for edge
	// targets.
	for v := 0; v < n; v++ {
		cnt := x.off[v+1] - x.off[v]
		for _, rel := range x.marks[x.markOff[v]:x.markOff[v+1]] {
			if int64(rel) < 0 || int64(rel) >= cnt {
				//slingvet:ignore noderangeerr corrupt index file, not a caller-supplied node id; ErrNodeRange is reserved for query arguments
				return nil, 0, 0, fmt.Errorf("core: mark %d of node %d out of range [0,%d)", rel, v, cnt)
			}
		}
	}
	meta := metaSize(n, numMarks)
	var padBuf [8]byte
	pad := alignPad(meta)
	if pad > 0 {
		if _, err := io.ReadFull(r, padBuf[:pad]); err != nil {
			return nil, 0, 0, fmt.Errorf("core: reading alignment padding: %w", err)
		}
		for _, b := range padBuf[:pad] {
			if b != 0 {
				return nil, 0, 0, errors.New("core: non-zero alignment padding")
			}
		}
	}
	return x, meta + pad, numEntries, nil
}

// readChunkedU64 reads count little-endian uint64s, growing the result
// incrementally so bogus counts fail at EOF with bounded allocation.
func readChunkedU64(r io.Reader, count int64, what string) ([]uint64, error) {
	if count < 0 {
		return nil, fmt.Errorf("core: negative %s count", what)
	}
	const chunk = 1 << 16
	out := make([]uint64, 0, min64(count, chunk))
	buf := make([]byte, 8*chunk)
	for int64(len(out)) < count {
		want := count - int64(len(out))
		if want > chunk {
			want = chunk
		}
		if _, err := io.ReadFull(r, buf[:8*want]); err != nil {
			return nil, fmt.Errorf("core: reading %s: %w", what, err)
		}
		for i := int64(0); i < want; i++ {
			out = append(out, binary.LittleEndian.Uint64(buf[8*i:]))
		}
	}
	return out, nil
}

// readChunkedU32 is readChunkedU64 for uint32s.
func readChunkedU32(r io.Reader, count int64, what string) ([]uint32, error) {
	if count < 0 {
		return nil, fmt.Errorf("core: negative %s count", what)
	}
	const chunk = 1 << 16
	out := make([]uint32, 0, min64(count, chunk))
	buf := make([]byte, 4*chunk)
	for int64(len(out)) < count {
		want := count - int64(len(out))
		if want > chunk {
			want = chunk
		}
		if _, err := io.ReadFull(r, buf[:4*want]); err != nil {
			return nil, fmt.Errorf("core: reading %s: %w", what, err)
		}
		for i := int64(0); i < want; i++ {
			out = append(out, binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	return out, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// ReadIndex deserializes an index written by WriteTo, binding it to g
// (which must be the graph it was built over; only the node count is
// verifiable).
func ReadIndex(r io.Reader, g *graph.Graph) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	x, _, numEntries, err := readMeta(br, g)
	if err != nil {
		return nil, err
	}
	keys, err := readChunkedU64(br, numEntries, "entry keys")
	if err != nil {
		return nil, err
	}
	valBits, err := readChunkedU64(br, numEntries, "entry values")
	if err != nil {
		return nil, err
	}
	x.keys = keys
	x.vals = make([]float64, numEntries)
	for i, b := range valBits {
		x.vals[i] = math.Float64frombits(b)
	}
	return x, nil
}

// LoadFile reads an index from path.
func LoadFile(path string, g *graph.Graph) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadIndex(f, g)
}

// ErrMmapUnsupported reports that this platform or byte order cannot
// serve the zero-copy mapped mode; callers fall back to OpenDiskIndex.
var ErrMmapUnsupported = mmap.ErrUnsupported

// MmapSupported reports whether OpenDiskIndexMmap can serve here
// (platform mmap support and a little-endian CPU).
func MmapSupported() bool { return mmap.Supported() }

// DiskIndex answers queries against an index whose HP entries stay on
// disk (Section 5.4): only the O(n) metadata (correction factors, flags,
// offsets) is memory-resident, and each query fetches the two relevant
// H(v) ranges with positioned reads — a constant I/O cost per query.
// Opened with OpenDiskIndexMmap, the entries regions are instead
// memory-mapped and served as zero-copy typed views, making the OS
// page cache the only cache.
type DiskIndex struct {
	meta       *Index
	f          *os.File
	entriesOff int64 // keys region offset (8-byte aligned)
	valsOff    int64 // vals region offset
	numEntries int64
	cache      *EntryCache

	// mmap serving mode: when mapped is true, mkeys/mvals are typed
	// views over mm and fetch is pure slicing — zero copies, zero
	// allocations, no cache.
	mapped bool
	mm     *mmap.Mapping
	mkeys  []uint64
	mvals  []float64
}

// openDiskFile opens and validates path, returning the populated
// (ReadAt-mode) DiskIndex.
func openDiskFile(path string, g *graph.Graph) (*DiskIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	meta, entriesOff, numEntries, err := readMeta(bufio.NewReaderSize(f, 1<<20), g)
	if err != nil {
		f.Close()
		return nil, err
	}
	// The offset table was validated monotone with off[n] == numEntries;
	// cross-check the claimed entries regions against the actual file
	// size so positioned reads (or the mapped views) cannot be steered
	// past the end.
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if entriesOff+numEntries*16 != st.Size() {
		f.Close()
		return nil, fmt.Errorf("core: index file size %d does not match header (want %d)",
			st.Size(), entriesOff+numEntries*16)
	}
	return &DiskIndex{
		meta:       meta,
		f:          f,
		entriesOff: entriesOff,
		valsOff:    entriesOff + 8*numEntries,
		numEntries: numEntries,
	}, nil
}

// OpenDiskIndex memory-maps nothing and loads only metadata from path;
// queries fetch entries with positioned reads.
func OpenDiskIndex(path string, g *graph.Graph) (*DiskIndex, error) {
	return openDiskFile(path, g)
}

// OpenDiskIndexMmap opens path like OpenDiskIndex but maps the file
// and serves the entries regions as zero-copy typed views: fetch is
// pointer arithmetic, the OS page cache is the only cache, and
// EnableCache becomes a no-op. It validates everything OpenDiskIndex
// validates (same metadata parse, same file-size cross-check) before
// mapping, so every input the ReadAt loader rejects is rejected here
// too. On platforms or byte orders where the reinterpretation is
// invalid it fails with ErrMmapUnsupported and the caller falls back
// to OpenDiskIndex.
func OpenDiskIndexMmap(path string, g *graph.Graph) (*DiskIndex, error) {
	d, err := openDiskFile(path, g)
	if err != nil {
		return nil, err
	}
	mm, err := mmap.Open(d.f, d.entriesOff+16*d.numEntries)
	if err != nil {
		d.f.Close()
		return nil, err
	}
	data := mm.Bytes()
	mkeys, err := mmap.U64(data[d.entriesOff:d.valsOff])
	if err == nil {
		d.mvals, err = mmap.F64(data[d.valsOff : d.valsOff+8*d.numEntries])
	}
	if err != nil {
		mm.Close()
		d.f.Close()
		return nil, fmt.Errorf("core: mapping entries region: %w", err)
	}
	d.mkeys = mkeys
	d.mm = mm
	d.mapped = true
	return d, nil
}

// Mapped reports whether the index serves from a zero-copy memory
// mapping rather than positioned reads.
func (d *DiskIndex) Mapped() bool { return d.mapped }

// Close releases the mapping (if any) and the underlying file.
func (d *DiskIndex) Close() error {
	var err error
	if d.mm != nil {
		err = d.mm.Close()
		d.mm, d.mkeys, d.mvals, d.mapped = nil, nil, nil, false
	}
	if cerr := d.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Meta exposes the O(n) in-memory part (graph, parameters, d̃, stats).
func (d *DiskIndex) Meta() *Index { return d.meta }

// NumEntries returns the number of HP entries in the on-disk region.
func (d *DiskIndex) NumEntries() int64 { return d.numEntries }

// EnableCache attaches a sharded LRU cache of decoded entry lists,
// bounded by maxBytes, so hot nodes skip the pread entirely. Call
// before serving; it is not safe to swap the cache mid-query. In
// mapped mode the page cache already serves every fetch with zero
// copies, so EnableCache is a no-op there.
func (d *DiskIndex) EnableCache(maxBytes int64) {
	if d.mapped {
		return
	}
	d.cache = NewEntryCache(maxBytes)
}

// CacheStats reports entry-cache hit/miss/occupancy counters (zero
// values when no cache is enabled).
func (d *DiskIndex) CacheStats() CacheStats { return d.cache.Stats() }

// DiskScratch holds per-query buffers for DiskIndex queries.
type DiskScratch struct {
	q        *Scratch
	raw      []byte
	ka, kb   []uint64
	va, vb   []float64
	gka, gkb []uint64
	gva, gvb []float64
}

// NewScratch sizes a DiskScratch.
func (d *DiskIndex) NewScratch() *DiskScratch {
	return &DiskScratch{q: d.meta.NewScratch()}
}

// fetch returns node v's stored entries. In mapped mode it slices the
// typed views directly — zero copies, zero allocations. Otherwise it
// reads the keys and vals ranges from disk into the given buffers,
// consulting (and on miss, populating) the entry cache when one is
// enabled. All paths hand the caller a read-only view.
func (d *DiskIndex) fetch(v graph.NodeID, s *DiskScratch, keys *[]uint64, vals *[]float64) ([]uint64, []float64, error) {
	lo, hi := d.meta.off[v], d.meta.off[v+1]
	if d.mapped {
		return d.mkeys[lo:hi], d.mvals[lo:hi], nil
	}
	if d.cache != nil {
		if k, val, ok := d.cache.Get(int32(v)); ok {
			return k, val, nil
		}
	}
	cnt := int(hi - lo)
	need := cnt * 16
	if cap(s.raw) < need {
		s.raw = make([]byte, need)
	}
	raw := s.raw[:need]
	if _, err := d.f.ReadAt(raw[:8*cnt], d.entriesOff+lo*8); err != nil {
		return nil, nil, fmt.Errorf("core: disk index key read for node %d: %w", v, err)
	}
	if _, err := d.f.ReadAt(raw[8*cnt:], d.valsOff+lo*8); err != nil {
		return nil, nil, fmt.Errorf("core: disk index value read for node %d: %w", v, err)
	}
	k, val := (*keys)[:0], (*vals)[:0]
	le := binary.LittleEndian
	for i := 0; i < cnt; i++ {
		k = append(k, le.Uint64(raw[8*i:]))
	}
	for i := 0; i < cnt; i++ {
		val = append(val, math.Float64frombits(le.Uint64(raw[8*cnt+8*i:])))
	}
	*keys, *vals = k, val
	if d.cache != nil {
		d.cache.Put(int32(v), k, val)
	}
	return k, val, nil
}

// SingleSource answers a single-source query from disk: one positioned
// read fetches H(u), then the Algorithm 6 propagation runs as in memory
// (it needs only the graph and the memory-resident d̃ values).
func (d *DiskIndex) SingleSource(u graph.NodeID, s *DiskScratch, ss *SourceScratch, out []float64) ([]float64, error) {
	if s == nil {
		s = d.NewScratch()
	}
	ku, vu, err := d.fetch(u, s, &s.ka, &s.va)
	if err != nil {
		return nil, err
	}
	keys, vals := d.meta.gatherFrom(u, ku, vu, s.q, &s.gka, &s.gva)
	return d.meta.SingleSourceFrom(keys, vals, ss, out), nil
}

// SimRank answers a single-pair query with two positioned reads (or two
// zero-copy view slices in mapped mode).
func (d *DiskIndex) SimRank(u, v graph.NodeID, s *DiskScratch) (float64, error) {
	if s == nil {
		s = d.NewScratch()
	}
	ku, vu, err := d.fetch(u, s, &s.ka, &s.va)
	if err != nil {
		return 0, err
	}
	gku, gvu := d.meta.gatherFrom(u, ku, vu, s.q, &s.gka, &s.gva)
	kv, vv, err := d.fetch(v, s, &s.kb, &s.vb)
	if err != nil {
		return 0, err
	}
	gkv, gvv := d.meta.gatherFrom(v, kv, vv, s.q, &s.gkb, &s.gvb)
	return joinScore(gku, gvu, gkv, gvv, d.meta.d), nil
}
