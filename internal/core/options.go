// Package core implements SLING (SimRank via Local Updates and Sampling),
// the index structure of Tian & Xiao, SIGMOD 2016.
//
// A SLING index stores, for every node v, an approximate correction factor
// d̃_v (the probability that two √c-walks from v never meet after step 0)
// and a constant-size set H(v) of approximate hitting probabilities
// h̃^(ℓ)(v, k). By Lemma 4 of the paper,
//
//	s(u, v) = Σ_ℓ Σ_k h^(ℓ)(u, k) · d_k · h^(ℓ)(v, k),
//
// so a single-pair query is a sparse join of H(u) and H(v) in O(1/ε) time,
// and a single-source query is a local-update traversal (Algorithm 6) in
// O(m·log²(1/ε)) time — both with a provable ε additive-error guarantee.
//
// The package implements the full paper: Algorithms 1-6, the Section 5
// optimizations (adaptive d̃ estimation, space reduction, accuracy
// enhancement, parallel and out-of-core construction), and a serialized,
// disk-resident query mode.
package core

import (
	"fmt"
	"math"
)

// DefaultC is the decay factor used throughout the paper's experiments.
const DefaultC = 0.6

// DefaultEps is the paper's experimental worst-case error target.
const DefaultEps = 0.025

// DefaultGamma is the γ constant of Section 5.2: step-1/2 hitting
// probabilities are dropped from H(v) whenever a two-hop traversal from v
// touches at most γ/θ edges.
const DefaultGamma = 10

// Options configures Build. The zero value reproduces the paper's
// experimental configuration (c = 0.6, ε = 0.025, δ_d = 1/n²).
type Options struct {
	// C is the SimRank decay factor in (0,1). Default 0.6.
	C float64
	// Eps is the worst-case additive error guaranteed per score.
	// Default 0.025. Used to derive EpsD and Theta when those are zero,
	// splitting the Theorem 1 error budget evenly between the d̃ error
	// term ε_d/(1−c) and the HP truncation term 2√c·θ/((1−√c)(1−c)).
	Eps float64
	// EpsD is the additive error target for each correction factor d̃_k.
	// Default ε(1−c)/2 (0.005 at the paper's settings).
	EpsD float64
	// Theta is the hitting-probability pruning threshold θ of Algorithm 2.
	// Default ε(1−√c)(1−c)/(4√c) (≈0.000727 at the paper's settings).
	Theta float64
	// Delta is the overall preprocessing failure probability; each d̃_k is
	// estimated with failure budget Delta/n. Default 1/n (so δ_d = 1/n²,
	// as in Section 7.1).
	Delta float64
	// Workers bounds build parallelism (Section 5.4). Default 1.
	Workers int
	// Seed fixes all sampling. The estimate for node k depends only on
	// (Seed, k), never on scheduling, so builds are reproducible at any
	// worker count.
	Seed uint64
	// BasicEstimator selects Algorithm 1 (fixed sample count) instead of
	// the adaptive Algorithm 4 for d̃ estimation. Exists for the paper's
	// Section 5.1 comparison; Algorithm 4 is strictly better in practice.
	BasicEstimator bool
	// DisableSpaceReduction turns off the Section 5.2 optimization that
	// drops recomputable step-1/2 HPs from the index.
	DisableSpaceReduction bool
	// Enhance enables the Section 5.3 accuracy enhancement: the largest
	// low-in-degree HPs are marked at build time and expanded one extra
	// step at query time, tightening accuracy at no asymptotic cost.
	Enhance bool
	// Gamma is the γ of Section 5.2. Default 10.
	Gamma float64
}

// resolved is a fully-defaulted, validated parameter set.
type resolved struct {
	c      float64
	sqrtC  float64
	eps    float64
	epsD   float64
	theta  float64
	delta  float64
	deltaD float64 // per-node failure budget delta/n
	gamma  float64

	workers        int
	seed           uint64
	basicEstimator bool
	spaceReduction bool
	enhance        bool
}

// resolve validates o against a graph of n nodes and fills defaults.
func (o *Options) resolve(n int) (resolved, error) {
	var r resolved
	r.c = DefaultC
	r.eps = DefaultEps
	r.gamma = DefaultGamma
	r.workers = 1
	r.spaceReduction = true
	if o != nil {
		if o.C != 0 {
			r.c = o.C
		}
		if o.Eps != 0 {
			r.eps = o.Eps
		}
		r.epsD = o.EpsD
		r.theta = o.Theta
		r.delta = o.Delta
		if o.Gamma != 0 {
			r.gamma = o.Gamma
		}
		if o.Workers > 0 {
			r.workers = o.Workers
		}
		r.seed = o.Seed
		r.basicEstimator = o.BasicEstimator
		r.spaceReduction = !o.DisableSpaceReduction
		r.enhance = o.Enhance
	}
	if r.c <= 0 || r.c >= 1 {
		return r, fmt.Errorf("core: decay factor %v out of (0,1)", r.c)
	}
	if r.eps <= 0 || r.eps >= 1 {
		return r, fmt.Errorf("core: eps %v out of (0,1)", r.eps)
	}
	r.sqrtC = math.Sqrt(r.c)
	if r.epsD == 0 {
		r.epsD = r.eps * (1 - r.c) / 2
	}
	if r.theta == 0 {
		r.theta = r.eps * (1 - r.sqrtC) * (1 - r.c) / (4 * r.sqrtC)
	}
	if r.epsD <= 0 || r.epsD >= 1 {
		return r, fmt.Errorf("core: epsD %v out of (0,1)", r.epsD)
	}
	if r.theta <= 0 || r.theta >= 1 {
		return r, fmt.Errorf("core: theta %v out of (0,1)", r.theta)
	}
	if r.delta == 0 {
		nn := n
		if nn < 2 {
			nn = 2
		}
		r.delta = 1 / float64(nn)
	}
	if r.delta <= 0 || r.delta >= 1 {
		return r, fmt.Errorf("core: delta %v out of (0,1)", r.delta)
	}
	nn := n
	if nn < 1 {
		nn = 1
	}
	r.deltaD = r.delta / float64(nn)
	if r.gamma <= 0 {
		return r, fmt.Errorf("core: gamma %v must be positive", r.gamma)
	}
	return r, nil
}

// ErrorBound returns the worst-case additive error implied by the resolved
// (εd, θ) pair under Theorem 1:
// ε = ε_d/(1−c) + 2√c·θ/((1−√c)(1−c)).
func (r resolved) errorBound() float64 {
	return r.epsD/(1-r.c) + 2*r.sqrtC*r.theta/((1-r.sqrtC)*(1-r.c))
}
