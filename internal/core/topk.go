package core

import (
	"sort"

	"sling/internal/graph"
)

// Top-k selection over a single-source score vector.
//
// A similarity service overwhelmingly asks "who are the k most similar
// nodes to u" for k ≪ n, so materializing and fully sorting an n-element
// candidate list per query (O(n log n) time, O(n) garbage) is the wrong
// shape. SelectTop keeps a size-k min-heap over the vector instead:
// O(n log k) time, O(k) space, and the only allocation is the k-element
// result the caller keeps.

// TopEntry is one (node, score) result of a top-k selection.
type TopEntry struct {
	Node  graph.NodeID
	Score float64
}

// WorseThan reports whether a ranks strictly behind b in top-k order.
// Ordering is total and deterministic: higher score first, ties broken by
// smaller node ID. It is exported so scatter/gather layers can merge
// per-shard top-k lists with exactly the selection order used here.
func (a TopEntry) WorseThan(b TopEntry) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Node > b.Node
}

// SelectTop returns the k highest-scoring entries of scores in descending
// score order (ties broken by ascending node ID). The node skip is
// excluded (pass a negative skip to keep every node), as are entries with
// non-positive score, so fewer than k entries may be returned.
func SelectTop(scores []float64, k int, skip graph.NodeID) []TopEntry {
	if k <= 0 {
		return nil
	}
	if k > len(scores) {
		k = len(scores)
	}
	h := make([]TopEntry, 0, k)
	for v, sc := range scores {
		if sc <= 0 || graph.NodeID(v) == skip {
			continue
		}
		e := TopEntry{Node: graph.NodeID(v), Score: sc}
		if len(h) < k {
			h = append(h, e)
			siftUp(h, len(h)-1)
			continue
		}
		if !h[0].WorseThan(e) {
			continue // e ranks behind the worst kept entry
		}
		h[0] = e
		siftDown(h, 0)
	}
	// Heap-order is by "worst first"; the response wants best first.
	sort.Slice(h, func(i, j int) bool { return h[j].WorseThan(h[i]) })
	return h
}

// SelectTopRange is SelectTop restricted to the nodes in [lo, hi): the
// per-shard half of a scatter/gather top-k. Because SelectTop's order is
// total and every node belongs to exactly one range, concatenating the
// SelectTopRange results of a partition of [0, n), sorting by WorseThan,
// and truncating to k reproduces SelectTop(scores, k, skip) exactly —
// per-shard k-pruning never changes the merged answer.
func SelectTopRange(scores []float64, k int, skip graph.NodeID, lo, hi int) []TopEntry {
	if k <= 0 || lo >= hi {
		return nil
	}
	if k > hi-lo {
		k = hi - lo
	}
	h := make([]TopEntry, 0, k)
	for v := lo; v < hi; v++ {
		sc := scores[v]
		if sc <= 0 || graph.NodeID(v) == skip {
			continue
		}
		e := TopEntry{Node: graph.NodeID(v), Score: sc}
		if len(h) < k {
			h = append(h, e)
			siftUp(h, len(h)-1)
			continue
		}
		if !h[0].WorseThan(e) {
			continue
		}
		h[0] = e
		siftDown(h, 0)
	}
	sort.Slice(h, func(i, j int) bool { return h[j].WorseThan(h[i]) })
	return h
}

// siftUp restores min-heap order (root = worst kept entry) after
// appending at position i.
func siftUp(h []TopEntry, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h[i].WorseThan(h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// siftDown restores min-heap order after replacing the root.
func siftDown(h []TopEntry, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h[l].WorseThan(h[m]) {
			m = l
		}
		if r < n && h[r].WorseThan(h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// TopK returns the k nodes most similar to u (excluding u itself) in
// descending score order, running one single-source query and a heap
// selection over it. out is the score buffer to compute into (allocated
// when it lacks capacity); a nil scratch allocates one.
func (x *Index) TopK(u graph.NodeID, k int, s *SourceScratch, out []float64) []TopEntry {
	if k <= 0 {
		return nil
	}
	return SelectTop(x.SingleSource(u, s, out), k, u)
}
