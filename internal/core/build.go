package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"sling/internal/graph"
	"sling/internal/rng"
	"sling/internal/walk"
)

// BuildStats reports work done during preprocessing.
type BuildStats struct {
	WalkPairs int64 // √c-walk pairs drawn for correction factors
	HPPushes  int64 // local-update pushes of Algorithm 2
	Entries   int   // HP entries kept before space reduction
	Dropped   int   // entries removed by the Section 5.2 reduction
}

// Build constructs a SLING index over g. See Options for knobs; the zero
// options reproduce the paper's experimental configuration.
func Build(g *graph.Graph, o *Options) (*Index, error) {
	x, _, err := BuildWithStats(g, o)
	return x, err
}

// BuildWithStats is Build plus preprocessing statistics.
func BuildWithStats(g *graph.Graph, o *Options) (*Index, BuildStats, error) {
	var st BuildStats
	prm, err := o.resolve(g.NumNodes())
	if err != nil {
		return nil, st, err
	}
	n := g.NumNodes()
	x := &Index{g: g, prm: prm, d: make([]float64, n), reduced: make([]bool, n)}
	if n == 0 {
		x.off = make([]int64, 1)
		x.markOff = make([]int64, 1)
		return x, st, nil
	}

	// Phase 1+2, parallel over target nodes k (Section 5.4): estimate d̃_k
	// (Algorithm 1 or 4) and run the local-update pass (Algorithm 2).
	// Workers own contiguous k-ranges; all sampling for node k is seeded
	// by (Seed, k), so the result is identical at any worker count.
	workers := prm.workers
	if workers > n {
		workers = n
	}
	outs := make([][]hpEntry, workers)
	pairCounts := make([]int64, workers)
	pushCounts := make([]int64, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			outs[w] = nil
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			scratch := newHPScratch(n)
			var out []hpEntry
			for k := lo; k < hi; k++ {
				wk := walk.New(g, prm.c, rng.New(mixSeed(prm.seed, k)))
				dk, pairs := estimateD(g, wk, graph.NodeID(k), prm)
				x.d[k] = dk
				pairCounts[w] += int64(pairs)
				var pushes int64
				out, pushes = hpPass(g, graph.NodeID(k), prm.sqrtC, prm.theta, scratch, out)
				pushCounts[w] += pushes
			}
			outs[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		st.WalkPairs += pairCounts[w]
		st.HPPushes += pushCounts[w]
		st.Entries += len(outs[w])
	}

	// Phase 3: decide space reduction per node (Section 5.2) before
	// assembling the CSR, so dropped entries are never materialized.
	if prm.spaceReduction {
		cap := prm.gamma / prm.theta
		for v := int32(0); int(v) < n; v++ {
			if float64(twoHopVolume(g, v)) <= cap {
				x.reduced[v] = true
			}
		}
	}

	// Phase 4: assemble the per-node CSR by counting scatter over the
	// worker outputs in k-order (deterministic), then sort each node's
	// entries by (step, target) key.
	keep := func(e hpEntry) bool {
		if !x.reduced[e.x] {
			return true
		}
		l := keyStep(e.key)
		return l < 1 || l > 2
	}
	counts := make([]int64, n+1)
	total := 0
	for _, out := range outs {
		for _, e := range out {
			if keep(e) {
				counts[e.x+1]++
				total++
			}
		}
	}
	st.Dropped = st.Entries - total
	x.off = counts
	for v := 0; v < n; v++ {
		x.off[v+1] += x.off[v]
	}
	x.keys = make([]uint64, total)
	x.vals = make([]float64, total)
	cursor := make([]int64, n)
	copy(cursor, x.off[:n])
	for w, out := range outs {
		for _, e := range out {
			if keep(e) {
				c := cursor[e.x]
				x.keys[c] = e.key
				x.vals[c] = e.val
				cursor[e.x]++
			}
		}
		// Drop the scattered worker output so it can be collected before
		// sorting, which would otherwise double peak build memory.
		outs[w] = nil
	}
	for v := 0; v < n; v++ {
		sortEntries(x.keys[x.off[v]:x.off[v+1]], x.vals[x.off[v]:x.off[v+1]])
	}

	// Phase 5: enhancement marks (Section 5.3).
	if prm.enhance {
		x.buildMarks()
	} else {
		x.markOff = make([]int64, n+1)
	}
	return x, st, nil
}

// twoHopVolume returns η(v) = |I(v)| + Σ_{x∈I(v)} |I(x)|, the cost of
// recomputing v's step-1/2 HPs exactly with Algorithm 5.
func twoHopVolume(g *graph.Graph, v graph.NodeID) int64 {
	ins := g.InNeighbors(v)
	vol := int64(len(ins))
	for _, u := range ins {
		vol += int64(g.InDegree(u))
	}
	return vol
}

func mixSeed(seed uint64, v int) uint64 {
	z := seed ^ (uint64(v)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return z ^ (z >> 31)
}

// sortEntries sorts keys and vals in lockstep by key, with an in-place
// heapsort rather than sort.Sort: boxing a two-slice sorter into
// sort.Interface heap-allocates on every call, and sortEntries sits on
// the query path (expandMarks), where the mapped disk mode promises
// allocation-free queries. Keys within one node's H(v) are unique
// (step, node) pairs except for the pre-fold additions in expandMarks,
// so stability is not relied on.
func sortEntries(keys []uint64, vals []float64) {
	n := len(keys)
	for root := n/2 - 1; root >= 0; root-- {
		siftEntries(keys, vals, root, n)
	}
	for end := n - 1; end > 0; end-- {
		keys[0], keys[end] = keys[end], keys[0]
		vals[0], vals[end] = vals[end], vals[0]
		siftEntries(keys, vals, 0, end)
	}
}

func siftEntries(keys []uint64, vals []float64, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && keys[child+1] > keys[child] {
			child++
		}
		if keys[root] >= keys[child] {
			return
		}
		keys[root], keys[child] = keys[child], keys[root]
		vals[root], vals[child] = vals[child], vals[root]
		root = child
	}
}

// buildMarks implements the Section 5.3 build-time step: for each node,
// among stored entries whose target has in-degree at most 1/√ε, mark the
// ⌈1/√ε⌉ largest for query-time expansion.
func (x *Index) buildMarks() {
	n := len(x.d)
	limit := int(math.Ceil(1 / math.Sqrt(x.prm.eps)))
	degCap := int(math.Floor(1 / math.Sqrt(x.prm.eps)))
	x.markOff = make([]int64, n+1)
	var all []int32
	type cand struct {
		pos int32
		val float64
	}
	var cands []cand
	for v := 0; v < n; v++ {
		lo, hi := x.off[v], x.off[v+1]
		cands = cands[:0]
		for p := lo; p < hi; p++ {
			target := keyNode(x.keys[p])
			if x.g.InDegree(target) <= degCap && x.g.InDegree(target) > 0 {
				cands = append(cands, cand{pos: int32(p - lo), val: x.vals[p]})
			}
		}
		if len(cands) > limit {
			sort.Slice(cands, func(i, j int) bool { return cands[i].val > cands[j].val })
			cands = cands[:limit]
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].pos < cands[j].pos })
		for _, c := range cands {
			all = append(all, c.pos)
		}
		x.markOff[v+1] = int64(len(all))
	}
	x.marks = all
}

// String summarizes the index.
func (x *Index) String() string {
	return fmt.Sprintf("sling.Index{n=%d entries=%d eps=%g theta=%g}",
		len(x.d), len(x.keys), x.prm.eps, x.prm.theta)
}
