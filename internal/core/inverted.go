package core

import (
	"sort"

	"sling/internal/graph"
)

// The inverted-list single-source approach (Section 6 of the paper).
//
// For every (step ℓ, meeting node k) key that occurs in any H(v), an
// inverted list L(k, ℓ) records the nodes v with h̃^(ℓ)(v, k) > 0. A
// single-source query from u then touches only the lists keyed by H(u):
//
//	s̃(u, v) = Σ_{(ℓ,k) ∈ H(u)} h̃^(ℓ)(u,k) · d̃_k · h̃^(ℓ)(v,k),
//
// accumulated per v. The paper notes the trade-off this type makes
// concrete: queries get faster than the straightforward Algorithm 3 loop,
// but the lists duplicate every HP entry (≈2× space), and they cannot
// coexist with the Section 5.2 space reduction — the reduced step-1/2
// entries must be materialized back. Algorithm 6 (Index.SingleSource) is
// the paper's middle ground; Inverted exists to reproduce the comparison
// and to serve workloads that want the fastest single-source at any
// space cost.

// Inverted is the inverted-list companion structure of an Index.
type Inverted struct {
	x *Index

	// keys are the distinct (step, node) entry keys, sorted; list i spans
	// nodes/vals[off[i]:off[i+1]] with nodes sorted ascending.
	keys  []uint64
	off   []int64
	nodes []int32
	vals  []float64
}

// BuildInverted materializes the inverted lists for the index. Entries
// dropped by the space reduction are reconstructed exactly (Algorithm 5),
// so the lists describe the same effective HP sets queries use. The
// Section 5.3 enhancement is a query-time construction and is not
// reflected in the lists.
func (x *Index) BuildInverted() *Inverted {
	n := len(x.d)
	type entry struct {
		key uint64
		v   int32
		h   float64
	}
	var all []entry
	s := x.NewScratch()
	var bufK []uint64
	var bufV []float64
	for v := 0; v < n; v++ {
		stored, storedVals := x.EntriesOf(graph.NodeID(v))
		keys, vals := stored, storedVals
		if x.reduced[v] {
			keys, vals = bufK[:0], bufV[:0]
			cut := findStep(stored, 1)
			keys = append(keys, stored[:cut]...)
			vals = append(vals, storedVals[:cut]...)
			keys, vals = x.appendExactSteps12(graph.NodeID(v), s, keys, vals)
			keys = append(keys, stored[cut:]...)
			vals = append(vals, storedVals[cut:]...)
			bufK, bufV = keys, vals
		}
		for i := range keys {
			all = append(all, entry{key: keys[i], v: int32(v), h: vals[i]})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].key != all[j].key {
			return all[i].key < all[j].key
		}
		return all[i].v < all[j].v
	})
	iv := &Inverted{x: x}
	for i, e := range all {
		if i == 0 || all[i-1].key != e.key {
			iv.keys = append(iv.keys, e.key)
			iv.off = append(iv.off, int64(i))
		}
		iv.nodes = append(iv.nodes, e.v)
		iv.vals = append(iv.vals, e.h)
	}
	iv.off = append(iv.off, int64(len(all)))
	return iv
}

// Bytes returns the memory footprint of the inverted lists.
func (iv *Inverted) Bytes() int64 {
	return int64(len(iv.keys))*8 + int64(len(iv.off))*8 +
		int64(len(iv.nodes))*4 + int64(len(iv.vals))*8
}

// NumLists returns the number of distinct (step, node) keys.
func (iv *Inverted) NumLists() int { return len(iv.keys) }

// list returns the inverted list for key, or empty slices if absent.
func (iv *Inverted) list(key uint64) ([]int32, []float64) {
	i := sort.Search(len(iv.keys), func(i int) bool { return iv.keys[i] >= key })
	if i == len(iv.keys) || iv.keys[i] != key {
		return nil, nil
	}
	return iv.nodes[iv.off[i]:iv.off[i+1]], iv.vals[iv.off[i]:iv.off[i+1]]
}

// SingleSource answers s̃(u, ·) by scanning the inverted lists keyed by
// H(u). The result equals the Algorithm-3 loop exactly (same entry sets,
// same arithmetic) at a fraction of the cost; out is reused when it has
// capacity n.
func (iv *Inverted) SingleSource(u graph.NodeID, s *Scratch, out []float64) []float64 {
	x := iv.x
	if s == nil {
		s = x.NewScratch()
	}
	n := x.g.NumNodes()
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	for i := range out {
		out[i] = 0
	}
	// Effective H(u) without the query-time enhancement, matching how the
	// lists were built.
	stored, storedVals := x.EntriesOf(u)
	keys, vals := stored, storedVals
	if x.reduced[u] {
		k2, v2 := s.ka[:0], s.va[:0]
		cut := findStep(stored, 1)
		k2 = append(k2, stored[:cut]...)
		v2 = append(v2, storedVals[:cut]...)
		k2, v2 = x.appendExactSteps12(u, s, k2, v2)
		k2 = append(k2, stored[cut:]...)
		v2 = append(v2, storedVals[cut:]...)
		s.ka, s.va = k2, v2
		keys, vals = k2, v2
	}
	for i, key := range keys {
		hu := vals[i] * x.d[keyNode(key)]
		nodes, hs := iv.list(key)
		for j, v := range nodes {
			out[v] += hu * hs[j]
		}
	}
	return out
}
