package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"sling/internal/atomicio"
)

// limitWriter accepts up to limit bytes and then fails, reporting the
// partial count like a filesystem hitting ENOSPC does.
type limitWriter struct {
	w     io.Writer
	limit int64
	n     int64
}

var errWriterFull = errors.New("writer full")

func (lw *limitWriter) Write(p []byte) (int, error) {
	if lw.n >= lw.limit {
		return 0, errWriterFull
	}
	if int64(len(p)) > lw.limit-lw.n {
		p = p[:lw.limit-lw.n]
		n, err := lw.w.Write(p)
		lw.n += int64(n)
		if err != nil {
			return n, err
		}
		return n, errWriterFull
	}
	n, err := lw.w.Write(p)
	lw.n += int64(n)
	return n, err
}

// TestWriteToCountsBytesAcceptedDownstream pins the io.WriterTo
// contract: the returned count is the number of bytes the destination
// actually accepted, even when a write fails mid-stream. A count taken
// above the internal buffer would report the full buffered size here.
func TestWriteToCountsBytesAcceptedDownstream(t *testing.T) {
	g := randomGraph(20, 100, 1)
	x, err := Build(g, &Options{Eps: 0.1, Seed: 1, Enhance: true})
	if err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	wantTotal, err := x.WriteTo(&full)
	if err != nil {
		t.Fatal(err)
	}
	if wantTotal != int64(full.Len()) {
		t.Fatalf("success count %d, destination accepted %d", wantTotal, full.Len())
	}
	for _, limit := range []int64{0, 1, 37, 92, wantTotal / 2, wantTotal - 1} {
		var sink bytes.Buffer
		lw := &limitWriter{w: &sink, limit: limit}
		n, err := x.WriteTo(lw)
		if err == nil {
			t.Fatalf("limit %d: WriteTo succeeded on a failing writer", limit)
		}
		if n != int64(sink.Len()) {
			t.Fatalf("limit %d: WriteTo reported %d bytes, destination accepted %d", limit, n, sink.Len())
		}
		if n != limit {
			t.Fatalf("limit %d: destination accepted %d bytes", limit, n)
		}
	}
}

// TestSaveFileAtomicReplace: overwriting an existing index goes through
// a temp sibling, so the destination is only ever the old complete file
// or the new complete file, and no temp litter survives success.
func TestSaveFileAtomicReplace(t *testing.T) {
	g := randomGraph(20, 100, 1)
	a, err := Build(g, &Options{Eps: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, &Options{Eps: 0.1, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "index.slix")
	if err := a.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := b.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path, g)
	if err != nil {
		t.Fatal(err)
	}
	if got.prm.seed != 99 {
		t.Fatalf("loaded index has seed %d, want the replacement (99)", got.prm.seed)
	}
	left, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(left) != 0 {
		t.Fatalf("temp files left behind: %v", left)
	}
}

// TestSaveFailureKeepsOldIndexLoadable replays SaveFile's exact write
// path (WriteTo through atomicio.WriteFile) with a destination that
// dies mid-stream: the previously saved index must stay loadable and
// bit-identical, with no temp litter. Before SaveFile went through the
// temp-and-rename idiom, this left a truncated file at the final path.
func TestSaveFailureKeepsOldIndexLoadable(t *testing.T) {
	g := randomGraph(20, 100, 1)
	x, err := Build(g, &Options{Eps: 0.1, Seed: 1, Enhance: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "index.slix")
	if err := x.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	err = atomicio.WriteFile(path, func(w io.Writer) error {
		_, werr := x.WriteTo(&limitWriter{w: w, limit: 100})
		return werr
	})
	if !errors.Is(err, errWriterFull) {
		t.Fatalf("short write reported %v, want %v", err, errWriterFull)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("old index gone after failed save: %v", err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("old index modified by failed save")
	}
	if _, err := LoadFile(path, g); err != nil {
		t.Fatalf("old index no longer loadable: %v", err)
	}
	left, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(left) != 0 {
		t.Fatalf("temp files left behind: %v", left)
	}
}

// corruptSLIX enumerates corruptions that the ReadAt loader rejects;
// the mmap loader must reject every one of them too (never map, never
// fault).
func corruptSLIX(t *testing.T, valid []byte) map[string][]byte {
	t.Helper()
	le := binary.LittleEndian
	cases := map[string][]byte{
		"empty":             {},
		"bad magic":         append([]byte("XILS"), valid[4:]...),
		"truncated header":  valid[:40],
		"truncated meta":    valid[:200],
		"truncated entries": valid[:len(valid)-8],
		"ragged entries":    valid[:len(valid)-3],
		"trailing garbage":  append(append([]byte(nil), valid...), 0xAB),
	}
	badVersion := append([]byte(nil), valid...)
	le.PutUint32(badVersion[4:], 999)
	cases["bad version"] = badVersion
	// Inflate numEntries: the header then claims an entries region larger
	// than the file, which both the offset-table check and the file-size
	// cross-check catch.
	inflated := append([]byte(nil), valid...)
	le.PutUint64(inflated[76:], le.Uint64(inflated[76:])+1)
	cases["inflated numEntries"] = inflated
	// Misaligned section: a non-zero byte in the alignment padding means
	// writer and reader disagree about where keys start.
	n := int(le.Uint32(valid[8:]))
	numMarks := int64(le.Uint64(valid[84:]))
	meta := metaSize(n, numMarks)
	if pad := alignPad(meta); pad > 0 {
		bad := append([]byte(nil), valid...)
		bad[meta] = 0x01
		cases["non-zero alignment padding"] = bad
	} else {
		t.Fatalf("test graph produced pad 0; pick sizes with a non-empty alignment gap")
	}
	return cases
}

// TestMmapLoaderRejectsCorruptFiles: every corrupt input the ReadAt
// loader rejects is also rejected by the mmap loader — with an error,
// not a panic or a fault from mapping a region past EOF.
func TestMmapLoaderRejectsCorruptFiles(t *testing.T) {
	valid := buildSerialized(t)
	dir := t.TempDir()
	for name, data := range corruptSLIX(t, valid) {
		path := filepath.Join(dir, "bad.slix")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenDiskIndex(path, nil); err == nil {
			t.Errorf("%s: ReadAt loader accepted corrupt file", name)
		}
		d, err := OpenDiskIndexMmap(path, nil)
		if err == nil {
			d.Close()
			t.Errorf("%s: mmap loader accepted corrupt file", name)
		}
	}
}

// TestMmapMatchesReadAt: the mapped views and the positioned reads are
// two decodings of the same bytes, so every query must agree bitwise.
func TestMmapMatchesReadAt(t *testing.T) {
	if !MmapSupported() {
		t.Skip("mmap not supported on this platform")
	}
	g := randomGraph(40, 200, 7)
	_, path := saveTestIndex(t, g, &Options{Eps: 0.1, Seed: 7, Enhance: true})
	dr, err := OpenDiskIndex(path, g)
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Close()
	dm, err := OpenDiskIndexMmap(path, g)
	if err != nil {
		t.Fatal(err)
	}
	defer dm.Close()
	if !dm.Mapped() || dr.Mapped() {
		t.Fatalf("Mapped() = %v/%v, want true for mmap and false for ReadAt", dm.Mapped(), dr.Mapped())
	}
	sr, sm := dr.NewScratch(), dm.NewScratch()
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v += 3 {
			a, err := dr.SimRank(int32(u), int32(v), sr)
			if err != nil {
				t.Fatal(err)
			}
			b, err := dm.SimRank(int32(u), int32(v), sm)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("SimRank(%d,%d): ReadAt %v, mmap %v", u, v, a, b)
			}
		}
	}
}

// TestMmapFetchZeroAllocs pins the point of the mapped mode: with warm
// scratch, a single-pair query performs zero heap allocations — fetch
// is pure slicing into the mapped views.
func TestMmapFetchZeroAllocs(t *testing.T) {
	if !MmapSupported() {
		t.Skip("mmap not supported on this platform")
	}
	g := randomGraph(40, 200, 7)
	_, path := saveTestIndex(t, g, &Options{Eps: 0.1, Seed: 7, Enhance: true})
	d, err := OpenDiskIndexMmap(path, g)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := d.NewScratch()
	if _, err := d.SimRank(3, 17, s); err != nil { // warm scratch capacities
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := d.SimRank(3, 17, s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("mapped SimRank allocates %v times per op, want 0", allocs)
	}
}

// FuzzDiskOpenParity: for arbitrary bytes on disk, the ReadAt loader
// and the mmap loader must agree on accept vs reject, and neither may
// panic (or fault) on any input.
func FuzzDiskOpenParity(f *testing.F) {
	valid := buildSerialized(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("SLIX"))
	f.Add(valid[:40])
	f.Add(valid[:len(valid)-8])
	f.Add(valid[:len(valid)-3])
	corrupted := append([]byte(nil), valid...)
	corrupted[80] ^= 0xff
	f.Add(corrupted)
	f.Fuzz(func(t *testing.T, data []byte) {
		if !MmapSupported() {
			t.Skip("mmap not supported on this platform")
		}
		path := filepath.Join(t.TempDir(), "fuzz.slix")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		dr, errR := OpenDiskIndex(path, nil)
		if errR == nil {
			dr.Close()
		}
		dm, errM := OpenDiskIndexMmap(path, nil)
		if errM == nil {
			dm.Close()
		}
		if (errR == nil) != (errM == nil) {
			t.Fatalf("loader disagreement: ReadAt err=%v, mmap err=%v", errR, errM)
		}
	})
}
