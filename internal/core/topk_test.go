package core

import (
	"sort"
	"sync"
	"testing"

	"sling/internal/graph"
	"sling/internal/rng"
)

// sortTop is the reference top-k: materialize every positive candidate
// and fully sort by (score desc, node asc) — the behavior SelectTop's
// heap must reproduce exactly.
func sortTop(scores []float64, k int, skip graph.NodeID) []TopEntry {
	out := make([]TopEntry, 0, len(scores))
	for v, sc := range scores {
		if graph.NodeID(v) == skip || sc <= 0 {
			continue
		}
		out = append(out, TopEntry{Node: graph.NodeID(v), Score: sc})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node < out[j].Node
	})
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}

func equalTop(a, b []TopEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSelectTopMatchesFullSort(t *testing.T) {
	for _, seed := range []uint64{3, 4, 5} {
		g := randomGraph(60, 300, seed)
		x := buildIndex(t, g, &Options{Eps: 0.08, Seed: seed})
		ss := x.NewSourceScratch()
		var out []float64
		for u := graph.NodeID(0); u < 10; u++ {
			out = x.SingleSource(u, ss, out)
			for _, k := range []int{1, 3, 10, 59, 60, 1000} {
				got := SelectTop(out, k, u)
				want := sortTop(out, k, u)
				if !equalTop(got, want) {
					t.Fatalf("seed %d u=%d k=%d: heap %v != sort %v", seed, u, k, got, want)
				}
			}
		}
	}
}

func TestSelectTopTies(t *testing.T) {
	// Many equal scores: the tie-break (ascending node ID) must be
	// deterministic regardless of heap eviction order.
	scores := make([]float64, 50)
	for i := range scores {
		scores[i] = 0.5
	}
	scores[7] = 0.9
	got := SelectTop(scores, 4, -1)
	want := []TopEntry{{7, 0.9}, {0, 0.5}, {1, 0.5}, {2, 0.5}}
	if !equalTop(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSelectTopEdgeCases(t *testing.T) {
	if got := SelectTop([]float64{0.3, 0.2}, 0, -1); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := SelectTop(nil, 5, -1); len(got) != 0 {
		t.Fatalf("empty scores returned %v", got)
	}
	// Non-positive scores and the skipped node are excluded even when
	// that leaves fewer than k results.
	got := SelectTop([]float64{0, -1, 0.25, 1}, 10, 3)
	want := []TopEntry{{2, 0.25}}
	if !equalTop(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestIndexTopKMatchesReference(t *testing.T) {
	g := randomGraph(80, 400, 9)
	x := buildIndex(t, g, &Options{Eps: 0.08, Seed: 9})
	ss := x.NewSourceScratch()
	vec := make([]float64, g.NumNodes())
	ref := x.SingleSource(5, nil, nil)
	got := x.TopK(5, 7, ss, vec)
	if want := sortTop(ref, 7, 5); !equalTop(got, want) {
		t.Fatalf("TopK %v, want %v", got, want)
	}
}

func TestSingleSourceBatchMatchesSerial(t *testing.T) {
	g := randomGraph(70, 350, 11)
	x := buildIndex(t, g, &Options{Eps: 0.08, Seed: 11})
	us := make([]graph.NodeID, 25)
	r := rng.New(17)
	for i := range us {
		us[i] = graph.NodeID(r.Intn(g.NumNodes()))
	}
	ss := x.NewSourceScratch()
	serial := make([][]float64, len(us))
	for i, u := range us {
		serial[i] = x.SingleSource(u, ss, nil)
	}
	for _, workers := range []int{1, 2, 3, 8, 64} {
		batch, err := x.SingleSourceBatch(nil, us, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != len(us) {
			t.Fatalf("workers=%d: %d rows", workers, len(batch))
		}
		for i := range batch {
			for v := range batch[i] {
				if batch[i][v] != serial[i][v] {
					t.Fatalf("workers=%d row %d node %d: %v != serial %v",
						workers, i, v, batch[i][v], serial[i][v])
				}
			}
		}
	}
}

func TestAllPairsParallelMatchesSerial(t *testing.T) {
	g := randomGraph(50, 250, 13)
	// Workers is a build option; the same seed yields the identical index,
	// and AllPairs inherits the worker count for its row fan-out.
	serialIx := buildIndex(t, g, &Options{Eps: 0.08, Seed: 13, Workers: 1})
	parallelIx := buildIndex(t, g, &Options{Eps: 0.08, Seed: 13, Workers: 4})
	a, errA := serialIx.AllPairs(nil)
	b, errB := parallelIx.AllPairs(nil)
	if errA != nil || errB != nil {
		t.Fatalf("AllPairs: %v / %v", errA, errB)
	}
	if a.N != b.N {
		t.Fatalf("N %d != %d", a.N, b.N)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("entry %d: %v != %v", i, a.Data[i], b.Data[i])
		}
	}
}

func TestScratchPoolConcurrentDeterminism(t *testing.T) {
	g := randomGraph(60, 300, 19)
	x := buildIndex(t, g, &Options{Eps: 0.08, Seed: 19})
	pool := x.NewScratchPool()
	wantPair := x.SimRank(2, 3, nil)
	wantTop := sortTop(x.SingleSource(4, nil, nil), 5, 4)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if got := pool.SimRank(2, 3); got != wantPair {
					errs <- "SimRank drift under concurrency"
					return
				}
				if got := pool.TopK(4, 5); !equalTop(got, wantTop) {
					errs <- "TopK drift under concurrency"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, bad := <-errs; bad {
		t.Fatal(msg)
	}
}
