package core

import (
	"math"
	"testing"

	"sling/internal/graph"
)

func TestInvertedMatchesNaiveLoop(t *testing.T) {
	g := randomGraph(50, 300, 131)
	x := buildIndex(t, g, &Options{Eps: 0.05, Seed: 133})
	iv := x.BuildInverted()
	s := x.NewScratch()
	s2 := x.NewScratch()
	for _, u := range []graph.NodeID{0, 17, 49} {
		want := x.SingleSourceNaive(u, s, nil)
		got := iv.SingleSource(u, s2, nil)
		for v := 0; v < 50; v++ {
			if math.Abs(got[v]-want[v]) > 1e-12 {
				t.Fatalf("inverted s(%d,%d) = %v, naive %v", u, v, got[v], want[v])
			}
		}
	}
}

func TestInvertedAccuracy(t *testing.T) {
	g := randomGraph(40, 220, 135)
	const c = 0.6
	truth := groundTruth(t, g, c)
	x := buildIndex(t, g, &Options{C: c, Eps: 0.05, Seed: 137})
	iv := x.BuildInverted()
	s := x.NewScratch()
	for u := 0; u < 40; u += 3 {
		scores := iv.SingleSource(graph.NodeID(u), s, nil)
		for v := 0; v < 40; v++ {
			if d := math.Abs(scores[v] - truth.At(u, v)); d > x.ErrorBound() {
				t.Fatalf("inverted error %v at (%d,%d) exceeds %v", d, u, v, x.ErrorBound())
			}
		}
	}
}

// The paper: inverted lists double the space relative to the HP sets.
func TestInvertedSpaceOverhead(t *testing.T) {
	g := randomGraph(60, 360, 139)
	x := buildIndex(t, g, &Options{Eps: 0.05, Seed: 141, DisableSpaceReduction: true})
	iv := x.BuildInverted()
	// Same entry count, comparable byte footprint.
	if got, want := len(iv.nodes), x.NumEntries(); got != want {
		t.Fatalf("inverted holds %d entries, index has %d", got, want)
	}
	if iv.Bytes() < x.Bytes()/3 {
		t.Fatalf("inverted suspiciously small: %d vs index %d", iv.Bytes(), x.Bytes())
	}
}

// With space reduction active, building the lists must materialize the
// dropped step-1/2 entries back (they cannot be combined, as the paper
// notes), so the lists hold more entries than the reduced index stores.
func TestInvertedMaterializesReducedEntries(t *testing.T) {
	g := randomGraph(60, 360, 143)
	x := buildIndex(t, g, &Options{Eps: 0.05, Seed: 145})
	anyReduced := false
	for v := graph.NodeID(0); v < 60; v++ {
		if x.Reduced(v) {
			anyReduced = true
		}
	}
	if !anyReduced {
		t.Skip("no node reduced on this graph")
	}
	iv := x.BuildInverted()
	if len(iv.nodes) <= x.NumEntries() {
		t.Fatalf("inverted entries %d not above stored %d despite reduction", len(iv.nodes), x.NumEntries())
	}
}

func TestInvertedListsSorted(t *testing.T) {
	g := randomGraph(40, 240, 147)
	x := buildIndex(t, g, &Options{Eps: 0.06, Seed: 149})
	iv := x.BuildInverted()
	for i := 1; i < len(iv.keys); i++ {
		if iv.keys[i-1] >= iv.keys[i] {
			t.Fatal("inverted keys not strictly sorted")
		}
	}
	for i := 0; i < iv.NumLists(); i++ {
		nodes := iv.nodes[iv.off[i]:iv.off[i+1]]
		for j := 1; j < len(nodes); j++ {
			if nodes[j-1] >= nodes[j] {
				t.Fatalf("list %d not sorted by node", i)
			}
		}
	}
}

func TestInvertedMissingKey(t *testing.T) {
	g := randomGraph(20, 100, 151)
	x := buildIndex(t, g, &Options{Eps: 0.1, Seed: 153})
	iv := x.BuildInverted()
	nodes, vals := iv.list(entryKey(63, 19)) // absurd step: never present
	if len(nodes) != 0 || len(vals) != 0 {
		t.Fatal("phantom list returned")
	}
}

func BenchmarkSingleSourceInverted(b *testing.B) {
	g := randomGraph(2000, 16000, 1)
	x, err := Build(g, &Options{Eps: 0.05, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	iv := x.BuildInverted()
	s := x.NewScratch()
	out := make([]float64, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iv.SingleSource(graph.NodeID(i%2000), s, out)
	}
}

func BenchmarkSingleSourceAlg6(b *testing.B) {
	g := randomGraph(2000, 16000, 1)
	x, err := Build(g, &Options{Eps: 0.05, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	ss := x.NewSourceScratch()
	out := make([]float64, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.SingleSource(graph.NodeID(i%2000), ss, out)
	}
}

func BenchmarkSingleSourceNaiveLoop(b *testing.B) {
	g := randomGraph(2000, 16000, 1)
	x, err := Build(g, &Options{Eps: 0.05, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	s := x.NewScratch()
	out := make([]float64, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.SingleSourceNaive(graph.NodeID(i%2000), s, out)
	}
}
