package core

import (
	"sync"

	"sling/internal/graph"
)

// ScratchPool hands out the per-goroutine query buffers (Scratch,
// SourceScratch, n-length score vectors) from sync.Pools, so a serving
// layer can run queries at arbitrary concurrency without allocating
// scratch per call. All buffers are sized for the pool's index; a buffer
// returned with Put may be handed to any later Get on any goroutine.
//
// The pool only manages buffer lifetime — queries through it are exactly
// as deterministic as the underlying Index methods.
type ScratchPool struct {
	x       *Index
	scratch sync.Pool // *Scratch
	source  sync.Pool // *SourceScratch
	vec     sync.Pool // *[]float64, len = NumNodes
}

// NewScratchPool returns a pool of query scratch for the index.
func (x *Index) NewScratchPool() *ScratchPool {
	p := &ScratchPool{x: x}
	p.scratch.New = func() interface{} { return x.NewScratch() }
	p.source.New = func() interface{} { return x.NewSourceScratch() }
	p.vec.New = func() interface{} {
		v := make([]float64, x.g.NumNodes())
		return &v
	}
	return p
}

// Scratch gets a single-pair scratch; return it with PutScratch.
func (p *ScratchPool) Scratch() *Scratch { return p.scratch.Get().(*Scratch) }

// PutScratch returns a scratch obtained from Scratch.
func (p *ScratchPool) PutScratch(s *Scratch) { p.scratch.Put(s) }

// Source gets a single-source scratch; return it with PutSource.
func (p *ScratchPool) Source() *SourceScratch { return p.source.Get().(*SourceScratch) }

// PutSource returns a scratch obtained from Source.
func (p *ScratchPool) PutSource(s *SourceScratch) { p.source.Put(s) }

// Vector gets a NumNodes-length float64 buffer (contents unspecified;
// SingleSource zeroes what it writes into). Return it with PutVector.
func (p *ScratchPool) Vector() []float64 { return *p.vec.Get().(*[]float64) }

// PutVector returns a buffer obtained from Vector.
func (p *ScratchPool) PutVector(v []float64) { p.vec.Put(&v) }

// SimRank is Index.SimRank with pooled scratch.
func (p *ScratchPool) SimRank(u, v graph.NodeID) float64 {
	s := p.Scratch()
	score := p.x.SimRank(u, v, s)
	p.PutScratch(s)
	return score
}

// SingleSource is Index.SingleSource with pooled scratch, writing into
// out when it has capacity.
func (p *ScratchPool) SingleSource(u graph.NodeID, out []float64) []float64 {
	s := p.Source()
	res := p.x.SingleSource(u, s, out)
	p.PutSource(s)
	return res
}

// TopK is Index.TopK with pooled scratch and score vector; only the
// k-element result is allocated.
func (p *ScratchPool) TopK(u graph.NodeID, k int) []TopEntry {
	if k <= 0 {
		return nil
	}
	s := p.Source()
	vec := p.Vector()
	top := p.x.TopK(u, k, s, vec)
	p.PutVector(vec)
	p.PutSource(s)
	return top
}

// SourceTop returns the limit highest-scoring nodes of a pooled
// single-source query from u (u itself included, unlike TopK), in
// descending score order with ties broken by ascending node ID.
func (p *ScratchPool) SourceTop(u graph.NodeID, limit int) []TopEntry {
	if limit <= 0 {
		return nil
	}
	s := p.Source()
	vec := p.Vector()
	top := SelectTop(p.x.SingleSource(u, s, vec), limit, -1)
	p.PutVector(vec)
	p.PutSource(s)
	return top
}
