package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEntryKeyRoundTrip(t *testing.T) {
	f := func(lRaw uint8, k int32) bool {
		l := int(lRaw % 64)
		if k < 0 {
			k = -k
		}
		key := entryKey(l, k)
		return keyStep(key) == l && keyNode(key) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEntryKeyOrdering(t *testing.T) {
	// Keys must sort by (step, node).
	if !(entryKey(0, 5) < entryKey(1, 0)) {
		t.Fatal("step not the primary sort key")
	}
	if !(entryKey(2, 3) < entryKey(2, 4)) {
		t.Fatal("node not the secondary sort key")
	}
}

func TestFindStep(t *testing.T) {
	keys := []uint64{
		entryKey(0, 7),
		entryKey(1, 2),
		entryKey(1, 9),
		entryKey(3, 0),
	}
	cases := []struct{ l, want int }{
		{0, 0}, {1, 1}, {2, 3}, {3, 3}, {4, 4},
	}
	for _, c := range cases {
		if got := findStep(keys, c.l); got != c.want {
			t.Fatalf("findStep(%d) = %d, want %d", c.l, got, c.want)
		}
	}
}

func TestLookupKey(t *testing.T) {
	keys := []uint64{entryKey(0, 1), entryKey(2, 5), entryKey(4, 3)}
	if !lookupKey(keys, entryKey(2, 5)) {
		t.Fatal("present key not found")
	}
	if lookupKey(keys, entryKey(2, 6)) || lookupKey(keys, entryKey(1, 5)) {
		t.Fatal("absent key found")
	}
	if lookupKey(nil, entryKey(0, 0)) {
		t.Fatal("lookup in empty slice")
	}
}

func TestMaxStoredStep(t *testing.T) {
	sqrtC := math.Sqrt(0.6)
	theta := 0.000725
	bound := maxStoredStep(sqrtC, theta)
	// (√c)^bound must be at or below θ: no entry can survive past it.
	if math.Pow(sqrtC, float64(bound)) > theta {
		t.Fatalf("maxStoredStep %d too small", bound)
	}
	// And it should not be wasteful by more than a couple of steps.
	if math.Pow(sqrtC, float64(bound-3)) < theta {
		t.Fatalf("maxStoredStep %d too large", bound)
	}
	if maxStoredStep(sqrtC, 1) != 0 {
		t.Fatal("theta >= 1 should yield 0")
	}
}

func TestSortEntries(t *testing.T) {
	keys := []uint64{entryKey(2, 1), entryKey(0, 3), entryKey(1, 0)}
	vals := []float64{0.2, 0.9, 0.5}
	sortEntries(keys, vals)
	if keys[0] != entryKey(0, 3) || vals[0] != 0.9 {
		t.Fatalf("pairing broken: %v %v", keys, vals)
	}
	if keys[2] != entryKey(2, 1) || vals[2] != 0.2 {
		t.Fatalf("pairing broken: %v %v", keys, vals)
	}
}
