package core

import (
	"slices"

	"sling/internal/graph"
)

// Single-pair queries (Algorithm 3) plus the query-time halves of the
// Section 5.2 space reduction (exact step-1/2 reconstruction, Algorithm 5)
// and the Section 5.3 accuracy enhancement (one-step expansion of marked
// entries into H*(v)).

// Scratch holds per-query buffers so queries do not allocate. Each
// goroutine querying an Index concurrently needs its own Scratch.
type Scratch struct {
	ka, kb []uint64
	va, vb []float64

	// Dense accumulator with a touched list for Algorithm 5 step-2 sums
	// and enhancement expansion.
	acc     []float64
	touched []int32

	addKeys []uint64
	addVals []float64
}

// NewScratch sizes a Scratch for the index's graph.
func (x *Index) NewScratch() *Scratch {
	return &Scratch{acc: make([]float64, x.g.NumNodes())}
}

// appendExactSteps12 appends node v's exact step-1 and step-2 HPs
// (Algorithm 5) to keys/vals in key order. The step-0 entry is not
// appended; callers take it from stored entries.
func (x *Index) appendExactSteps12(v graph.NodeID, s *Scratch, keys []uint64, vals []float64) ([]uint64, []float64) {
	ins := x.g.InNeighbors(v)
	if len(ins) == 0 {
		return keys, vals
	}
	h1 := x.prm.sqrtC / float64(len(ins))
	// Step 1: one exact entry per in-neighbor, already sorted by node.
	for _, u := range ins {
		keys = append(keys, entryKey(1, u))
		vals = append(vals, h1)
	}
	// Step 2: accumulate over two-hop in-paths.
	s.touched = s.touched[:0]
	for _, u := range ins {
		uins := x.g.InNeighbors(u)
		if len(uins) == 0 {
			continue
		}
		add := x.prm.sqrtC * h1 / float64(len(uins))
		for _, y := range uins {
			if s.acc[y] == 0 {
				s.touched = append(s.touched, y)
			}
			s.acc[y] += add
		}
	}
	// slices.Sort, not sort.Slice: the closure-into-interface boxing
	// would allocate on a query path that must stay allocation-free.
	slices.Sort(s.touched)
	for _, y := range s.touched {
		keys = append(keys, entryKey(2, y))
		vals = append(vals, s.acc[y])
		s.acc[y] = 0
	}
	return keys, vals
}

// gather materializes the effective HP set of node v — stored entries,
// with exact step-1/2 reconstruction when v is space-reduced and the
// H*(v) enhancement expansion when the index was built with Enhance —
// sorted by key.
//
// When v needs neither treatment the returned slices alias index storage
// and *bufK/*bufV are untouched; otherwise the result is built in the
// buffers, which are updated in place so their growth is kept. Either
// way the result is read-only to the caller.
func (x *Index) gather(v graph.NodeID, s *Scratch, bufK *[]uint64, bufV *[]float64) ([]uint64, []float64) {
	stored, storedVals := x.EntriesOf(v)
	return x.gatherFrom(v, stored, storedVals, s, bufK, bufV)
}

// gatherFrom is gather over caller-supplied stored entries; it is the
// shared path between the in-memory Index and the disk-resident index,
// which fetches a node's entries with a pread before transforming them.
func (x *Index) gatherFrom(v graph.NodeID, stored []uint64, storedVals []float64, s *Scratch, bufK *[]uint64, bufV *[]float64) ([]uint64, []float64) {
	enhance := x.prm.enhance && x.markOff[v+1] > x.markOff[v]
	if !x.reduced[v] && !enhance {
		return stored, storedVals
	}
	keys, vals := (*bufK)[:0], (*bufV)[:0]
	if x.reduced[v] {
		// Stored layout: step 0, then steps >= 3. Interleave the exact
		// steps 1-2 between them, preserving key order.
		cut := findStep(stored, 1)
		keys = append(keys, stored[:cut]...)
		vals = append(vals, storedVals[:cut]...)
		keys, vals = x.appendExactSteps12(v, s, keys, vals)
		keys = append(keys, stored[cut:]...)
		vals = append(vals, storedVals[cut:]...)
	} else {
		keys = append(keys, stored...)
		vals = append(vals, storedVals...)
	}
	if enhance {
		lo, hi := x.markOff[v], x.markOff[v+1]
		keys, vals = x.expandMarks(x.marks[lo:hi], stored, storedVals, s, keys, vals)
	}
	*bufK, *bufV = keys, vals
	return keys, vals
}

// expandMarks implements the H*(v) construction of Section 5.3: each
// marked entry h̃^(ℓ)(v, j) donates √c/|I(j)|·h̃^(ℓ)(v, j) to the step-ℓ+1
// entry of every in-neighbor of j that H(v) does not already cover.
// marks are positions relative to the stored entry arrays. The additions
// are merged into keys/vals, which must be sorted; the merged result is
// returned.
func (x *Index) expandMarks(marks []int32, storedK []uint64, storedV []float64, s *Scratch, keys []uint64, vals []float64) ([]uint64, []float64) {
	s.addKeys, s.addVals = s.addKeys[:0], s.addVals[:0]
	for _, rel := range marks {
		l := keyStep(storedK[rel])
		j := keyNode(storedK[rel])
		h := storedV[rel]
		ins := x.g.InNeighbors(j)
		if len(ins) == 0 {
			continue
		}
		add := x.prm.sqrtC * h / float64(len(ins))
		for _, k := range ins {
			key := entryKey(l+1, k)
			if lookupKey(keys, key) {
				continue // H(v) already covers it with a tighter bound
			}
			s.addKeys = append(s.addKeys, key)
			s.addVals = append(s.addVals, add)
		}
	}
	if len(s.addKeys) == 0 {
		return keys, vals
	}
	sortEntries(s.addKeys, s.addVals)
	// Fold duplicates (several marked entries can donate to the same k).
	w := 0
	for i := 0; i < len(s.addKeys); i++ {
		if w > 0 && s.addKeys[w-1] == s.addKeys[i] {
			s.addVals[w-1] += s.addVals[i]
			continue
		}
		s.addKeys[w], s.addVals[w] = s.addKeys[i], s.addVals[i]
		w++
	}
	s.addKeys, s.addVals = s.addKeys[:w], s.addVals[:w]
	// Merge the sorted additions into the sorted base, in place at the
	// tail of keys/vals.
	keys = append(keys, s.addKeys...)
	vals = append(vals, s.addVals...)
	sortEntries(keys, vals)
	return keys, vals
}

// SimRank returns s̃(u, v) with at most ErrorBound() additive error
// (Theorem 1), evaluated by the Algorithm 3 merge join
// s̃ = Σ_{(ℓ,k)} h̃^(ℓ)(u,k)·d̃_k·h̃^(ℓ)(v,k). A nil scratch allocates one.
func (x *Index) SimRank(u, v graph.NodeID, s *Scratch) float64 {
	if s == nil {
		s = x.NewScratch()
	}
	ku, vu := x.gather(u, s, &s.ka, &s.va)
	kv, vv := x.gather(v, s, &s.kb, &s.vb)
	return joinScore(ku, vu, kv, vv, x.d)
}

// joinScore merge-joins two sorted HP entry lists and accumulates
// Σ h_u·d_k·h_v over shared (step, node) keys.
func joinScore(ku []uint64, vu []float64, kv []uint64, vv []float64, d []float64) float64 {
	total := 0.0
	i, j := 0, 0
	for i < len(ku) && j < len(kv) {
		a, b := ku[i], kv[j]
		switch {
		case a == b:
			total += vu[i] * d[keyNode(a)] * vv[j]
			i++
			j++
		case a < b:
			// Galloping would help skewed lists; linear advance is fine at
			// the O(1/ε) sizes SLING guarantees.
			i++
		default:
			j++
		}
	}
	return total
}
