package core

import (
	"sort"

	"sling/internal/graph"
)

// Threshold similarity join (the second query type of the paper's Section
// 8 related-work discussion): report every unordered pair {u, v} with
// s̃(u, v) ≥ τ.
//
// The join runs in two phases over the inverted lists:
//
//  1. Candidate generation. s̃(u, v) is a sum over the keys H(u) and H(v)
//     share, and a node's effective HP set has at most
//     C = 1/(θ(1−√c)) entries, so any qualifying pair shares at least one
//     key whose single contribution h_u·d̃_k·h_v is ≥ τ/C. Each inverted
//     list is sorted by descending h and pairs are enumerated only while
//     h_u·h_v·d̃_k clears that floor — hub-dominated lists cut off early.
//  2. Verification. Every candidate is scored exactly with the Algorithm 3
//     merge join; no approximation is introduced beyond the index's own ε.
//
// The result is exact with respect to the indexed scores s̃ (and hence
// within ε of true SimRank). Worst-case candidate counts degenerate to
// the output size of step 1; the bound τ/C is loose when θ is small, so
// this is a practical tool for moderate τ (say τ ≥ 0.1), which is the
// regime similarity joins target.

// JoinPair is one result of SimilarPairs: an unordered pair with its
// indexed score.
type JoinPair struct {
	U, V  graph.NodeID
	Score float64
}

// SimilarPairs returns all unordered pairs {u, v}, u < v, with
// s̃(u, v) ≥ tau, sorted by descending score (ties by (U, V)).
// It panics if tau is not in (0, 1].
func (x *Index) SimilarPairs(tau float64) []JoinPair {
	if tau <= 0 || tau > 1 {
		panic("core: SimilarPairs threshold out of (0,1]")
	}
	iv := x.BuildInverted()
	return iv.SimilarPairs(tau)
}

// SimilarPairs is the inverted-list join described on Index.SimilarPairs;
// building the lists once lets callers run several thresholds.
func (iv *Inverted) SimilarPairs(tau float64) []JoinPair {
	x := iv.x
	capEntries := 1 / (x.prm.theta * (1 - x.prm.sqrtC))
	floor := tau / capEntries

	type cand struct{ u, v int32 }
	seen := make(map[uint64]struct{})
	var cands []cand
	// Scratch for per-list descending-h order.
	var order []int32
	for li := 0; li < len(iv.keys); li++ {
		lo, hi := iv.off[li], iv.off[li+1]
		cnt := int(hi - lo)
		if cnt < 2 {
			continue
		}
		dk := x.d[keyNode(iv.keys[li])]
		if dk <= 0 {
			continue
		}
		order = order[:0]
		for i := 0; i < cnt; i++ {
			order = append(order, int32(i))
		}
		nodes, hs := iv.nodes[lo:hi], iv.vals[lo:hi]
		sort.Slice(order, func(a, b int) bool { return hs[order[a]] > hs[order[b]] })
		for a := 0; a < cnt; a++ {
			ia := order[a]
			// Largest possible partner product uses the list maximum.
			if hs[ia]*hs[order[0]]*dk < floor {
				break
			}
			for b := a + 1; b < cnt; b++ {
				ib := order[b]
				if hs[ia]*hs[ib]*dk < floor {
					break
				}
				u, v := nodes[ia], nodes[ib]
				if u > v {
					u, v = v, u
				}
				key := uint64(uint32(u))<<32 | uint64(uint32(v))
				if _, dup := seen[key]; dup {
					continue
				}
				seen[key] = struct{}{}
				cands = append(cands, cand{u, v})
			}
		}
	}

	// Verification with the exact single-pair join.
	s := x.NewScratch()
	var out []JoinPair
	for _, c := range cands {
		score := x.SimRank(c.u, c.v, s)
		if score >= tau {
			out = append(out, JoinPair{U: c.u, V: c.v, Score: score})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// TopKPairs returns the k highest-scoring unordered pairs (excluding the
// diagonal) by running SimilarPairs with a decreasing threshold until k
// results accumulate — the paper's "top-k similarity join" query shape.
func (x *Index) TopKPairs(k int) []JoinPair {
	if k <= 0 {
		return nil
	}
	iv := x.BuildInverted()
	tau := 0.5
	for {
		pairs := iv.SimilarPairs(tau)
		if len(pairs) >= k || tau < 1e-3 {
			if len(pairs) > k {
				pairs = pairs[:k]
			}
			return pairs
		}
		tau /= 2
	}
}
