package core

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"sling/internal/graph"
	"sling/internal/power"
	"sling/internal/walk"
)

func TestSpaceReductionShrinksIndex(t *testing.T) {
	g := randomGraph(60, 360, 51)
	full := buildIndex(t, g, &Options{Eps: 0.05, Seed: 53, DisableSpaceReduction: true})
	reduced := buildIndex(t, g, &Options{Eps: 0.05, Seed: 53})
	if reduced.NumEntries() >= full.NumEntries() {
		t.Fatalf("space reduction kept %d entries vs %d without", reduced.NumEntries(), full.NumEntries())
	}
	anyReduced := false
	for v := graph.NodeID(0); v < 60; v++ {
		if reduced.Reduced(v) {
			anyReduced = true
			// Stored entries must have no step-1/2 HPs.
			keys, _ := reduced.EntriesOf(v)
			for _, k := range keys {
				if l := keyStep(k); l == 1 || l == 2 {
					t.Fatalf("reduced node %d still stores a step-%d entry", v, l)
				}
			}
		}
	}
	if !anyReduced {
		t.Fatal("no node qualified for space reduction on a sparse graph")
	}
}

// Queries with and without space reduction must agree up to the exactness
// gain: the reduced index recomputes steps 1-2 precisely, so it is at
// least as accurate, never worse than the combined bounds.
func TestSpaceReductionPreservesAccuracy(t *testing.T) {
	g := randomGraph(40, 200, 55)
	const c = 0.6
	truth := groundTruth(t, g, c)
	x := buildIndex(t, g, &Options{C: c, Eps: 0.05, Seed: 57})
	s := x.NewScratch()
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			got := x.SimRank(graph.NodeID(i), graph.NodeID(j), s)
			if d := math.Abs(got - truth.At(i, j)); d > x.ErrorBound() {
				t.Fatalf("reduced-index error %v at (%d,%d) exceeds %v", d, i, j, x.ErrorBound())
			}
		}
	}
}

// The reconstructed step-1/2 HPs must be exact (Algorithm 5).
func TestAlgorithm5Exactness(t *testing.T) {
	g := randomGraph(25, 120, 59)
	const c = 0.6
	x := buildIndex(t, g, &Options{C: c, Eps: 0.05, Seed: 61})
	exact := walk.ExactHP(g, c, 2)
	s := x.NewScratch()
	for v := graph.NodeID(0); v < 25; v++ {
		var keys []uint64
		var vals []float64
		keys, vals = x.appendExactSteps12(v, s, keys[:0], vals[:0])
		for i, key := range keys {
			l, k := keyStep(key), keyNode(key)
			if math.Abs(vals[i]-exact[l][v][k]) > 1e-12 {
				t.Fatalf("reconstructed h(%d)(%d,%d) = %v, exact %v", l, v, k, vals[i], exact[l][int(v)][k])
			}
		}
		// Coverage: every nonzero exact step-1/2 HP appears.
		for l := 1; l <= 2; l++ {
			for k := 0; k < 25; k++ {
				if exact[l][v][k] > 0 && !lookupKey(keys, entryKey(l, int32(k))) {
					t.Fatalf("missing reconstructed entry h(%d)(%d,%d)", l, v, k)
				}
			}
		}
	}
}

func TestEnhanceImprovesOrMatchesAccuracy(t *testing.T) {
	g := randomGraph(40, 200, 63)
	const c = 0.6
	truth := groundTruth(t, g, c)
	plain := buildIndex(t, g, &Options{C: c, Eps: 0.08, Seed: 65})
	enhanced := buildIndex(t, g, &Options{C: c, Eps: 0.08, Seed: 65, Enhance: true})
	sp, se := plain.NewScratch(), enhanced.NewScratch()
	var sumPlain, sumEnh float64
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			gp := plain.SimRank(graph.NodeID(i), graph.NodeID(j), sp)
			ge := enhanced.SimRank(graph.NodeID(i), graph.NodeID(j), se)
			sumPlain += math.Abs(gp - truth.At(i, j))
			sumEnh += math.Abs(ge - truth.At(i, j))
			if d := math.Abs(ge - truth.At(i, j)); d > enhanced.ErrorBound() {
				t.Fatalf("enhanced error %v exceeds bound at (%d,%d)", d, i, j)
			}
		}
	}
	if sumEnh > sumPlain*1.001 {
		t.Fatalf("enhancement worsened total error: %v vs %v", sumEnh, sumPlain)
	}
}

func TestEnhancedEntriesNeverOverestimate(t *testing.T) {
	g := randomGraph(30, 150, 67)
	const c = 0.6
	x := buildIndex(t, g, &Options{C: c, Eps: 0.08, Seed: 69, Enhance: true})
	maxL := maxStoredStep(math.Sqrt(c), x.Theta()) + 2
	exact := walk.ExactHP(g, c, maxL)
	s := x.NewScratch()
	for v := graph.NodeID(0); v < 30; v++ {
		keys, vals := x.gather(v, s, &s.ka, &s.va)
		for i, key := range keys {
			l, k := keyStep(key), keyNode(key)
			if l > maxL {
				t.Fatalf("gathered step %d beyond bound %d", l, maxL)
			}
			if vals[i] > exact[l][v][k]+1e-12 {
				t.Fatalf("H*(%d) entry (%d,%d) overestimates: %v > %v",
					v, l, k, vals[i], exact[l][int(v)][k])
			}
		}
	}
}

func TestSingleSourceMatchesSinglePair(t *testing.T) {
	g := randomGraph(40, 240, 71)
	x := buildIndex(t, g, &Options{Eps: 0.05, Seed: 73})
	ss := x.NewSourceScratch()
	qs := x.NewScratch()
	for _, u := range []graph.NodeID{0, 13, 39} {
		scores := x.SingleSource(u, ss, nil)
		for v := graph.NodeID(0); v < 40; v++ {
			pair := x.SimRank(u, v, qs)
			// Algorithm 6 prunes with a scaled threshold, so it is not
			// bit-identical to Algorithm 3, but both carry the ε
			// guarantee; their gap is bounded by the θ-induced error.
			if math.Abs(scores[v]-pair) > x.ErrorBound() {
				t.Fatalf("Alg6 s(%d,%d)=%v vs Alg3 %v", u, v, scores[v], pair)
			}
		}
	}
}

func TestSingleSourceAccuracy(t *testing.T) {
	g := randomGraph(40, 220, 75)
	const c = 0.6
	truth := groundTruth(t, g, c)
	x := buildIndex(t, g, &Options{C: c, Eps: 0.05, Seed: 77})
	ss := x.NewSourceScratch()
	for u := 0; u < 40; u++ {
		scores := x.SingleSource(graph.NodeID(u), ss, nil)
		for v := 0; v < 40; v++ {
			if d := math.Abs(scores[v] - truth.At(u, v)); d > x.ErrorBound() {
				t.Fatalf("single-source error %v at (%d,%d) exceeds %v", d, u, v, x.ErrorBound())
			}
		}
	}
}

func TestSingleSourceNaiveMatchesPairs(t *testing.T) {
	g := randomGraph(30, 160, 79)
	x := buildIndex(t, g, &Options{Eps: 0.06, Seed: 81})
	s := x.NewScratch()
	out := x.SingleSourceNaive(7, s, nil)
	s2 := x.NewScratch()
	for v := graph.NodeID(0); v < 30; v++ {
		want := x.SimRank(7, v, s2)
		if math.Abs(out[v]-want) > 1e-12 {
			t.Fatalf("naive single-source differs from pair query at %d: %v vs %v", v, out[v], want)
		}
	}
}

func TestSingleSourceBufferReuse(t *testing.T) {
	g := randomGraph(20, 100, 83)
	x := buildIndex(t, g, &Options{Eps: 0.08, Seed: 85})
	buf := make([]float64, 20)
	out := x.SingleSource(3, nil, buf)
	if &out[0] != &buf[0] {
		t.Fatal("provided buffer not reused")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	g := randomGraph(40, 240, 87)
	x := buildIndex(t, g, &Options{Eps: 0.05, Seed: 89, Enhance: true})
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	x2, err := ReadIndex(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if x2.NumEntries() != x.NumEntries() {
		t.Fatalf("entry count changed: %d -> %d", x.NumEntries(), x2.NumEntries())
	}
	s1, s2 := x.NewScratch(), x2.NewScratch()
	for i := graph.NodeID(0); i < 40; i++ {
		for j := graph.NodeID(0); j < 40; j += 3 {
			a, b := x.SimRank(i, j, s1), x2.SimRank(i, j, s2)
			if a != b {
				t.Fatalf("round-trip changed s(%d,%d): %v -> %v", i, j, a, b)
			}
		}
	}
}

func TestSerializationRejectsGarbage(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("junkjunkjunk")), nil); err == nil {
		t.Fatal("garbage accepted")
	}
	var empty bytes.Buffer
	if _, err := ReadIndex(&empty, nil); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestSerializationWrongGraph(t *testing.T) {
	g := randomGraph(20, 100, 91)
	x := buildIndex(t, g, &Options{Eps: 0.08, Seed: 93})
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	other := randomGraph(21, 100, 91)
	if _, err := ReadIndex(&buf, other); err == nil {
		t.Fatal("index bound to wrong-sized graph")
	}
}

func TestDiskIndexMatchesMemory(t *testing.T) {
	g := randomGraph(50, 300, 95)
	x := buildIndex(t, g, &Options{Eps: 0.05, Seed: 97, Enhance: true})
	path := t.TempDir() + "/idx.sling"
	if err := x.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	di, err := OpenDiskIndex(path, g)
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	ms := x.NewScratch()
	ds := di.NewScratch()
	for i := graph.NodeID(0); i < 50; i++ {
		for j := graph.NodeID(0); j < 50; j += 7 {
			want := x.SimRank(i, j, ms)
			got, err := di.SimRank(i, j, ds)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("disk s(%d,%d)=%v, memory %v", i, j, got, want)
			}
		}
	}
}

func TestDiskIndexMetaBytesSmall(t *testing.T) {
	g := randomGraph(60, 400, 99)
	x := buildIndex(t, g, &Options{Eps: 0.04, Seed: 101})
	path := t.TempDir() + "/idx.sling"
	if err := x.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	di, err := OpenDiskIndex(path, g)
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	// The disk-mode resident set excludes the entries region entirely.
	if di.Meta().Bytes() >= x.Bytes() {
		t.Fatalf("disk meta %d bytes >= full index %d", di.Meta().Bytes(), x.Bytes())
	}
}

// Property: on random small graphs, for random pairs, the ε guarantee
// holds end to end.
func TestPropertyErrorBound(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%20) + 2
		m := int(mRaw%120) + 1
		g := randomGraph(n, m, seed)
		truth, err := power.AllPairs(g, 0.6, power.IterationsFor(1e-9, 0.6))
		if err != nil {
			return false
		}
		x, err := Build(g, &Options{Eps: 0.1, Seed: seed})
		if err != nil {
			return false
		}
		s := x.NewScratch()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				got := x.SimRank(graph.NodeID(i), graph.NodeID(j), s)
				if math.Abs(got-truth.At(i, j)) > x.ErrorBound() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDiskIndexSingleSource(t *testing.T) {
	g := randomGraph(40, 240, 117)
	x := buildIndex(t, g, &Options{Eps: 0.06, Seed: 119, Enhance: true})
	path := t.TempDir() + "/ss.sling"
	if err := x.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	di, err := OpenDiskIndex(path, g)
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	ss := x.NewSourceScratch()
	ds := di.NewScratch()
	for _, u := range []graph.NodeID{0, 19, 39} {
		want := x.SingleSource(u, ss, nil)
		got, err := di.SingleSource(u, ds, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 40; v++ {
			if got[v] != want[v] {
				t.Fatalf("disk single-source differs at (%d,%d): %v vs %v", u, v, got[v], want[v])
			}
		}
	}
}
