package core

import (
	"testing"

	"sling/internal/graph"
)

// bruteJoin finds all pairs at or above tau by exhaustive Algorithm-3
// queries.
func bruteJoin(x *Index, tau float64) map[uint64]float64 {
	n := x.g.NumNodes()
	s := x.NewScratch()
	out := make(map[uint64]float64)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			score := x.SimRank(graph.NodeID(u), graph.NodeID(v), s)
			if score >= tau {
				out[uint64(uint32(u))<<32|uint64(uint32(v))] = score
			}
		}
	}
	return out
}

func TestSimilarPairsMatchesBruteForce(t *testing.T) {
	g := randomGraph(60, 300, 161)
	x := buildIndex(t, g, &Options{Eps: 0.08, Seed: 163})
	for _, tau := range []float64{0.1, 0.3, 0.6} {
		want := bruteJoin(x, tau)
		got := x.SimilarPairs(tau)
		if len(got) != len(want) {
			t.Fatalf("tau=%v: join found %d pairs, brute force %d", tau, len(got), len(want))
		}
		for _, p := range got {
			key := uint64(uint32(p.U))<<32 | uint64(uint32(p.V))
			if want[key] != p.Score {
				t.Fatalf("tau=%v: pair (%d,%d) score %v, brute %v", tau, p.U, p.V, p.Score, want[key])
			}
		}
	}
}

func TestSimilarPairsSortedAndNormalized(t *testing.T) {
	g := randomGraph(50, 250, 165)
	x := buildIndex(t, g, &Options{Eps: 0.08, Seed: 167})
	pairs := x.SimilarPairs(0.1)
	for i, p := range pairs {
		if p.U >= p.V {
			t.Fatalf("pair %d not normalized: (%d,%d)", i, p.U, p.V)
		}
		if i > 0 && pairs[i-1].Score < p.Score {
			t.Fatal("pairs not sorted by descending score")
		}
		if p.Score < 0.1 {
			t.Fatalf("pair below threshold leaked: %v", p.Score)
		}
	}
}

func TestSimilarPairsHighThresholdEmptyOrSmall(t *testing.T) {
	g := randomGraph(40, 160, 169)
	x := buildIndex(t, g, &Options{Eps: 0.1, Seed: 171})
	pairs := x.SimilarPairs(0.99)
	want := bruteJoin(x, 0.99)
	if len(pairs) != len(want) {
		t.Fatalf("tau=0.99: %d vs brute %d", len(pairs), len(want))
	}
}

func TestSimilarPairsPanicsOnBadTau(t *testing.T) {
	g := randomGraph(10, 40, 173)
	x := buildIndex(t, g, &Options{Eps: 0.1, Seed: 175})
	for _, tau := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("tau=%v accepted", tau)
				}
			}()
			x.SimilarPairs(tau)
		}()
	}
}

func TestTopKPairs(t *testing.T) {
	g := randomGraph(50, 250, 177)
	x := buildIndex(t, g, &Options{Eps: 0.08, Seed: 179})
	top := x.TopKPairs(10)
	if len(top) > 10 {
		t.Fatalf("TopKPairs returned %d", len(top))
	}
	// Must be the globally highest-scoring pairs: compare against brute
	// force over everything with a low floor.
	all := bruteJoin(x, 1e-3)
	better := 0
	floor := top[len(top)-1].Score
	for _, score := range all {
		if score > floor {
			better++
		}
	}
	if better > len(top) {
		t.Fatalf("%d pairs score above the returned floor %v, but only %d returned", better, floor, len(top))
	}
}

func TestTopKPairsZero(t *testing.T) {
	g := randomGraph(10, 40, 181)
	x := buildIndex(t, g, &Options{Eps: 0.1, Seed: 183})
	if got := x.TopKPairs(0); got != nil {
		t.Fatal("k=0 returned pairs")
	}
}
