package core

import (
	"bytes"
	"encoding/binary"
	"os"
	"sync"
	"testing"

	"sling/internal/graph"
)

// saveTestIndex builds an index and writes it to a temp file, returning
// the index and the path.
func saveTestIndex(t *testing.T, g *graph.Graph, o *Options) (*Index, string) {
	t.Helper()
	x, err := Build(g, o)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/index.slix"
	if err := x.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return x, path
}

func TestEntryCacheLRU(t *testing.T) {
	// One entry costs 16*100 + overhead = 1696 bytes; pick a per-shard
	// budget (above the minShardBytes floor) that fits three entries but
	// not four, so the fourth insert must evict.
	keys := make([]uint64, 100)
	vals := make([]float64, 100)
	for i := range keys {
		keys[i] = uint64(i + 1)
		vals[i] = float64(i) / 10
	}
	per := int64(16*len(keys) + cacheEntryOverhead)
	budget := per*3 + per/2 // three fit, four do not
	if budget < minShardBytes {
		t.Fatalf("test budget %d below shard floor; grow the entries", budget)
	}
	c := NewEntryCache(budget * cacheShardCount)
	if c == nil {
		t.Fatal("cache unexpectedly disabled")
	}
	// All in shard 0 (multiples of cacheShardCount) so eviction is forced.
	ids := []int32{0, 16, 32, 48}
	for _, id := range ids[:3] {
		c.Put(id, keys, vals)
	}
	if _, _, ok := c.Get(0); !ok {
		t.Fatal("freshly cached node missing")
	}
	// 0 is now most recent; inserting a fourth entry must evict 16.
	c.Put(ids[3], keys, vals)
	if _, _, ok := c.Get(16); ok {
		t.Fatal("LRU entry not evicted")
	}
	if _, _, ok := c.Get(0); !ok {
		t.Fatal("recently used entry evicted instead of LRU")
	}
	st := c.Stats()
	if st.Entries != 3 {
		t.Fatalf("entries = %d, want 3", st.Entries)
	}
	if st.Hits < 2 || st.Misses < 1 {
		t.Fatalf("stats not counting: %+v", st)
	}
	if st.Bytes != 3*per {
		t.Fatalf("bytes = %d, want %d", st.Bytes, 3*per)
	}
	// The cached copy must not alias the caller's slices.
	k, _, ok := c.Get(0)
	if !ok {
		t.Fatal("entry vanished")
	}
	keys[0] = 999
	if k[0] == 999 {
		t.Fatal("cache aliases caller buffers")
	}
}

func TestEntryCacheBudgetEdgeCases(t *testing.T) {
	if c := NewEntryCache(0); c != nil {
		t.Fatal("zero-budget cache not disabled")
	}
	if c := NewEntryCache(-1); c != nil {
		t.Fatal("negative-budget cache not disabled")
	}
	// A tiny positive budget must yield a working (floored) cache, not a
	// silent no-op.
	c := NewEntryCache(10)
	if c == nil {
		t.Fatal("tiny positive budget silently disabled the cache")
	}
	if st := c.Stats(); st.MaxBytes < cacheShardCount*minShardBytes {
		t.Fatalf("floored budget %d below minimum", st.MaxBytes)
	}
	c.Put(3, []uint64{1}, []float64{0.5})
	if _, _, ok := c.Get(3); !ok {
		t.Fatal("floored cache does not cache")
	}
	var nilCache *EntryCache
	if st := nilCache.Stats(); st != (CacheStats{}) {
		t.Fatal("nil cache stats not zero")
	}
}

// Disk answers — single-pair, single-source, top-k, source-top, batch —
// must be byte-identical to the in-memory index, cached or not.
func TestDiskServeMatchesMemory(t *testing.T) {
	g := randomGraph(60, 360, 31)
	x, path := saveTestIndex(t, g, &Options{Eps: 0.08, Seed: 31, Enhance: true})
	for _, cacheBytes := range []int64{0, 1 << 20} {
		d, err := OpenDiskIndex(path, g)
		if err != nil {
			t.Fatal(err)
		}
		if cacheBytes > 0 {
			d.EnableCache(cacheBytes)
		}
		pool := d.NewScratchPool()
		ss := x.NewSourceScratch()
		for u := graph.NodeID(0); u < 60; u += 7 {
			for v := graph.NodeID(0); v < 60; v += 5 {
				got, err := pool.SimRank(u, v)
				if err != nil {
					t.Fatal(err)
				}
				if want := x.SimRank(u, v, nil); got != want {
					t.Fatalf("cache=%d: disk s(%d,%d)=%v, memory %v", cacheBytes, u, v, got, want)
				}
			}
			wantVec := x.SingleSource(u, ss, nil)
			gotVec, err := pool.SingleSource(u, nil)
			if err != nil {
				t.Fatal(err)
			}
			for v := range wantVec {
				if gotVec[v] != wantVec[v] {
					t.Fatalf("cache=%d: disk single-source differs at %d", cacheBytes, v)
				}
			}
			gotTop, err := pool.TopK(u, 7)
			if err != nil {
				t.Fatal(err)
			}
			wantTop := x.TopK(u, 7, ss, nil)
			if len(gotTop) != len(wantTop) {
				t.Fatalf("TopK length %d vs %d", len(gotTop), len(wantTop))
			}
			for i := range gotTop {
				if gotTop[i] != wantTop[i] {
					t.Fatalf("TopK entry %d differs", i)
				}
			}
			gotSrc, err := pool.SourceTop(u, 5)
			if err != nil {
				t.Fatal(err)
			}
			wantSrc := SelectTop(wantVec, 5, -1)
			if len(gotSrc) != len(wantSrc) {
				t.Fatalf("SourceTop length %d vs %d", len(gotSrc), len(wantSrc))
			}
			for i := range gotSrc {
				if gotSrc[i] != wantSrc[i] {
					t.Fatalf("SourceTop entry %d differs", i)
				}
			}
		}
		us := []graph.NodeID{3, 1, 4, 1, 5, 9, 2, 6}
		for _, workers := range []int{1, 4} {
			rows, err := d.SingleSourceBatch(nil, us, workers)
			if err != nil {
				t.Fatal(err)
			}
			for i, u := range us {
				want := x.SingleSource(u, ss, nil)
				for v := range want {
					if rows[i][v] != want[v] {
						t.Fatalf("batch(workers=%d) row %d differs at %d", workers, i, v)
					}
				}
			}
		}
		d.Close()
	}
}

// Cached answers must equal uncached answers, and re-queries must hit.
func TestDiskCacheHitEquivalence(t *testing.T) {
	g := randomGraph(50, 300, 33)
	_, path := saveTestIndex(t, g, &Options{Eps: 0.08, Seed: 33})
	plain, err := OpenDiskIndex(path, g)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	cached, err := OpenDiskIndex(path, g)
	if err != nil {
		t.Fatal(err)
	}
	defer cached.Close()
	cached.EnableCache(4 << 20)
	ps, cs := plain.NewScratchPool(), cached.NewScratchPool()
	for pass := 0; pass < 2; pass++ {
		for u := graph.NodeID(0); u < 50; u += 3 {
			for v := graph.NodeID(0); v < 50; v += 7 {
				want, err := ps.SimRank(u, v)
				if err != nil {
					t.Fatal(err)
				}
				got, err := cs.SimRank(u, v)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("pass %d: cached s(%d,%d)=%v, uncached %v", pass, u, v, got, want)
				}
			}
		}
	}
	st := cached.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("no cache hits after repeated queries: %+v", st)
	}
	if st.Entries == 0 || st.Bytes == 0 {
		t.Fatalf("cache empty after queries: %+v", st)
	}
	if plainSt := plain.CacheStats(); plainSt != (CacheStats{}) {
		t.Fatalf("uncached index reports cache activity: %+v", plainSt)
	}
}

// Concurrent mixed queries through one shared pool must match memory
// exactly (run under -race in CI).
func TestDiskScratchPoolConcurrent(t *testing.T) {
	g := randomGraph(50, 300, 35)
	x, path := saveTestIndex(t, g, &Options{Eps: 0.08, Seed: 35, Enhance: true})
	d, err := OpenDiskIndex(path, g)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.EnableCache(1 << 20)
	pool := d.NewScratchPool()
	ss := x.NewSourceScratch()
	wantPair := x.SimRank(3, 9, nil)
	wantVec := append([]float64(nil), x.SingleSource(7, ss, nil)...)
	wantTop := x.TopK(5, 6, ss, nil)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				got, err := pool.SimRank(3, 9)
				if err != nil || got != wantPair {
					errs <- "disk SimRank drift under concurrency"
					return
				}
				vec, err := pool.SingleSource(7, nil)
				if err != nil {
					errs <- err.Error()
					return
				}
				for v := range wantVec {
					if vec[v] != wantVec[v] {
						errs <- "disk SingleSource drift under concurrency"
						return
					}
				}
				top, err := pool.TopK(5, 6)
				if err != nil || len(top) != len(wantTop) {
					errs <- "disk TopK drift under concurrency"
					return
				}
				for j := range top {
					if top[j] != wantTop[j] {
						errs <- "disk TopK entry drift under concurrency"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, bad := <-errs; bad {
		t.Fatal(msg)
	}
}

// marksRegionOffset returns the byte offset of the marks array in a
// serialized index with n nodes (see the format comment in serialize.go).
func marksRegionOffset(n int) int {
	return 92 + 8*n + (n+7)/8 + 2*8*(n+1)
}

// corruptFirstMark returns a copy of data with the first mark value
// overwritten by raw (little-endian uint32).
func corruptFirstMark(t *testing.T, data []byte, n int, raw uint32) []byte {
	t.Helper()
	off := marksRegionOffset(n)
	if off+4 > len(data) {
		t.Fatalf("marks offset %d beyond file size %d", off, len(data))
	}
	out := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(out[off:], raw)
	return out
}

// A SLIX file whose marks point outside the owning node's entry range
// must be rejected at load, not panic at query time.
func TestReadMetaRejectsOutOfRangeMarks(t *testing.T) {
	g := randomGraph(30, 200, 37)
	x, err := Build(g, &Options{Eps: 0.08, Seed: 37, Enhance: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(x.marks) == 0 {
		t.Skip("build produced no marks; cannot exercise validation")
	}
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	if _, err := ReadIndex(bytes.NewReader(valid), g); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	n := g.NumNodes()
	for _, raw := range []uint32{0xffffffff /* -1 */, 0x7fffffff /* >> entry count */} {
		bad := corruptFirstMark(t, valid, n, raw)
		if _, err := ReadIndex(bytes.NewReader(bad), g); err == nil {
			t.Fatalf("mark %#x accepted by ReadIndex", raw)
		}
		path := t.TempDir() + "/bad.slix"
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenDiskIndex(path, g); err == nil {
			t.Fatalf("mark %#x accepted by OpenDiskIndex", raw)
		}
	}
}
