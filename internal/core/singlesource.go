package core

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"sling/internal/graph"
	"sling/internal/power"
)

// Single-source queries (Section 6 of the paper).
//
// Algorithm 6 avoids touching every node's H(v): for each step ℓ present
// in H(u) it seeds temporary scores ρ^(0)(k) = h̃^(ℓ)(u,k)·d̃_k and
// propagates them ℓ steps forward along out-edges (the same local-update
// rule as Algorithm 2, with the pruning threshold scaled down to
// (√c)^ℓ·θ because the seeds start at (√c)^ℓ rather than 1). After ℓ
// steps, ρ^(ℓ)(j) is the step-ℓ slice of Equation (13) for every j at
// once. Total cost O(m·log²(1/ε)) with ε worst-case error (Lemma 12).

// SourceScratch holds the per-query buffers of SingleSource.
type SourceScratch struct {
	q                 *Scratch
	cur, next         []float64
	curList, nextList []int32
}

// NewSourceScratch sizes a SourceScratch for the index's graph.
func (x *Index) NewSourceScratch() *SourceScratch {
	n := x.g.NumNodes()
	return &SourceScratch{
		q:    x.NewScratch(),
		cur:  make([]float64, n),
		next: make([]float64, n),
	}
}

// SingleSource computes s̃(u, v) for every node v with Algorithm 6,
// writing into out if it has capacity n and allocating otherwise.
// A nil scratch allocates one.
func (x *Index) SingleSource(u graph.NodeID, s *SourceScratch, out []float64) []float64 {
	if s == nil {
		s = x.NewSourceScratch()
	}
	keys, vals := x.gather(u, s.q, &s.q.ka, &s.q.va)
	return x.SingleSourceFrom(keys, vals, s, out)
}

// SingleSourceFrom runs the Algorithm 6 propagation from an already
// gathered HP entry list instead of a node: the seeds are h values
// (pre-correction; d̃ is applied here), sorted by key. It is the shared
// step-group loop behind the in-memory and disk single-source paths, and
// the shard-side half of scatter/gather single-source — propagation needs
// only the graph, d̃, and the parameters, all of which every shard holds
// in full, so a shard can propagate any node's fragment exactly.
func (x *Index) SingleSourceFrom(keys []uint64, vals []float64, s *SourceScratch, out []float64) []float64 {
	if s == nil {
		s = x.NewSourceScratch()
	}
	n := x.g.NumNodes()
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	for i := range out {
		out[i] = 0
	}
	// Entries are sorted by (step, node); process one step-group at a
	// time.
	for lo := 0; lo < len(keys); {
		l := keyStep(keys[lo])
		hi := lo
		for hi < len(keys) && keyStep(keys[hi]) == l {
			hi++
		}
		x.propagateStep(keys[lo:hi], vals[lo:hi], l, s, out)
		lo = hi
	}
	return out
}

// propagateStep seeds ρ^(0)(k) = h̃^(ℓ)(u,k)·d̃_k for one step group and
// runs ℓ local-update steps, accumulating ρ^(ℓ) into out.
func (x *Index) propagateStep(keys []uint64, vals []float64, l int, s *SourceScratch, out []float64) {
	s.curList = s.curList[:0]
	for i, key := range keys {
		k := keyNode(key)
		if s.cur[k] == 0 {
			s.curList = append(s.curList, k)
		}
		s.cur[k] += vals[i] * x.d[k]
	}
	threshold := math.Pow(x.prm.sqrtC, float64(l)) * x.prm.theta
	for t := 0; t < l; t++ {
		s.nextList = s.nextList[:0]
		for _, v := range s.curList {
			rho := s.cur[v]
			s.cur[v] = 0
			if rho <= threshold {
				continue
			}
			for _, y := range x.g.OutNeighbors(v) {
				add := x.prm.sqrtC * rho / float64(x.g.InDegree(y))
				if s.next[y] == 0 {
					s.nextList = append(s.nextList, y)
				}
				s.next[y] += add
			}
		}
		s.cur, s.next = s.next, s.cur
		s.curList, s.nextList = s.nextList, s.curList
	}
	for _, v := range s.curList {
		out[v] += s.cur[v]
		s.cur[v] = 0
	}
}

// SingleSourceNaive answers a single-source query by running the
// Algorithm 3 single-pair join once per node — the O(n/ε) straightforward
// method the paper compares Algorithm 6 against in Figure 2.
func (x *Index) SingleSourceNaive(u graph.NodeID, s *Scratch, out []float64) []float64 {
	if s == nil {
		s = x.NewScratch()
	}
	n := x.g.NumNodes()
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	ku, vu := x.gather(u, s, &s.ka, &s.va)
	// gather(u) may alias index storage; gathering v below can reuse only
	// the second buffer pair so u's view stays valid.
	for v := 0; v < n; v++ {
		kv, vv := x.gather(graph.NodeID(v), s, &s.kb, &s.vb)
		out[v] = joinScore(ku, vu, kv, vv, x.d)
	}
	return out
}

// CtxErr reports a cancelled or expired context, tolerating nil
// (treated as context.Background(): never cancelled). It is the one
// shared helper behind every cancellation check in the query stack —
// core, dynamic, and the public facade.
func CtxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// forEachSource runs fn(i, scratch) for every i in [0, count), fanned
// across workers goroutines (Options.Workers when workers <= 0), each
// with its own SourceScratch. Sources are handed out from a shared atomic
// counter so stragglers don't idle a worker. Each call of fn is
// independent, so the results are identical at any worker count.
//
// ctx is observed between per-source units: once it is cancelled no new
// source starts (in-flight sources finish) and ctx.Err() is returned, so
// an abandoned batch stops burning CPU at source granularity. A ctx
// cancelled only after the last source was claimed does not fail the
// batch — completed work is returned, not discarded.
func (x *Index) forEachSource(ctx context.Context, count, workers int, fn func(i int, s *SourceScratch)) error {
	if workers <= 0 {
		workers = x.prm.workers
	}
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		s := x.NewSourceScratch()
		for i := 0; i < count; i++ {
			if err := CtxErr(ctx); err != nil {
				return err
			}
			fn(i, s)
		}
		return nil
	}
	var next atomic.Int64
	var aborted atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := x.NewSourceScratch()
			for {
				// Claim before checking ctx: a worker that finds the work
				// exhausted returns cleanly, so a ctx cancelled after the
				// last source leaves a fully-computed batch intact.
				i := int(next.Add(1)) - 1
				if i >= count {
					return
				}
				if CtxErr(ctx) != nil {
					aborted.Store(true)
					return
				}
				fn(i, s)
			}
		}()
	}
	wg.Wait()
	if aborted.Load() {
		return CtxErr(ctx)
	}
	return nil
}

// SingleSourceBatch answers one single-source query per source in us,
// fanning the sources across workers goroutines (Options.Workers when
// workers <= 0) with per-worker scratch. Row i equals
// SingleSource(us[i], ...) exactly — per-source computation is untouched,
// so batch results are byte-identical to serial execution. A cancelled
// ctx (nil means never) stops the fan-out between sources and returns
// ctx.Err().
func (x *Index) SingleSourceBatch(ctx context.Context, us []graph.NodeID, workers int) ([][]float64, error) {
	n := x.g.NumNodes()
	out := make([][]float64, len(us))
	if err := x.forEachSource(ctx, len(us), workers, func(i int, s *SourceScratch) {
		out[i] = x.SingleSource(us[i], s, make([]float64, n))
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// AllPairs materializes the full score matrix by running Algorithm 6 from
// every node — the procedure behind the paper's accuracy experiments
// (Figures 5-7) — parallel across Options.Workers. It needs O(n²) output
// memory; callers own sizing checks. Cancellation is observed between
// sources.
func (x *Index) AllPairs(ctx context.Context) (*power.Scores, error) {
	n := x.g.NumNodes()
	s := &power.Scores{N: n, Data: make([]float64, n*n)}
	if err := x.forEachSource(ctx, n, 0, func(u int, ss *SourceScratch) {
		x.SingleSource(graph.NodeID(u), ss, s.Data[u*n:(u+1)*n])
	}); err != nil {
		return nil, err
	}
	return s, nil
}
