package core

import (
	"sync"
	"sync/atomic"
)

// EntryCache is a sharded LRU cache of decoded per-node HP entry lists
// for the disk-resident index. Disk queries over real workloads are
// heavily skewed — a few hub nodes appear in most pairs — so keeping the
// hot H(v) lists decoded in memory turns their two preads per query into
// zero. Sharding by node ID keeps lock hold times to a single list
// splice, so the cache itself never serializes concurrent queries the
// way the old facade-level mutex did.
//
// Cached slices are handed out by reference and must be treated as
// read-only, which matches how the query path consumes stored entries
// (gatherFrom never mutates its inputs).
type EntryCache struct {
	shards [cacheShardCount]cacheShard
	hits   atomic.Int64
	misses atomic.Int64
}

const cacheShardCount = 16

// cacheEntryOverhead approximates the bookkeeping bytes per cached node
// (struct header, map slot, slice headers) on top of the 16 bytes per
// entry, so the byte budget tracks real memory, not just payload.
const cacheEntryOverhead = 96

type cacheShard struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	m        map[int32]*cacheNode
	// Intrusive LRU list: head is most recently used, tail next to evict.
	head, tail *cacheNode
}

type cacheNode struct {
	node       int32
	keys       []uint64
	vals       []float64
	bytes      int64
	prev, next *cacheNode
}

// minShardBytes floors each shard's budget so that any positive cache
// request yields a functional cache (~64 KiB total at 16 shards) rather
// than silently disabling caching for small -cache-bytes values.
const minShardBytes = 4096

// NewEntryCache returns a cache bounded by maxBytes across all shards,
// or nil when maxBytes <= 0 (callers treat a nil cache as "caching
// disabled"). Positive budgets below 16*minShardBytes are rounded up to
// that floor so a small budget degrades to a small cache, never to a
// silent no-op.
func NewEntryCache(maxBytes int64) *EntryCache {
	if maxBytes <= 0 {
		return nil
	}
	perShard := maxBytes / cacheShardCount
	if perShard < minShardBytes {
		perShard = minShardBytes
	}
	c := &EntryCache{}
	for i := range c.shards {
		c.shards[i].maxBytes = perShard
		c.shards[i].m = make(map[int32]*cacheNode)
	}
	return c
}

func (c *EntryCache) shard(v int32) *cacheShard {
	return &c.shards[uint32(v)%cacheShardCount]
}

// Get returns node v's cached entries, promoting it to most recently
// used. The returned slices are read-only.
func (c *EntryCache) Get(v int32) ([]uint64, []float64, bool) {
	s := c.shard(v)
	s.mu.Lock()
	e, ok := s.m[v]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, nil, false
	}
	s.moveToFront(e)
	keys, vals := e.keys, e.vals
	s.mu.Unlock()
	c.hits.Add(1)
	return keys, vals, true
}

// Put caches a copy of node v's entries, evicting least-recently-used
// nodes from the shard until it fits. Entries larger than the shard
// budget are not cached at all.
func (c *EntryCache) Put(v int32, keys []uint64, vals []float64) {
	size := int64(len(keys))*16 + cacheEntryOverhead
	s := c.shard(v)
	if size > s.maxBytes {
		return
	}
	// Copy outside the lock: the source buffers are per-query scratch.
	e := &cacheNode{
		node:  v,
		keys:  append([]uint64(nil), keys...),
		vals:  append([]float64(nil), vals...),
		bytes: size,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.m[v]; ok {
		// Another goroutine cached v first; just refresh its recency.
		s.moveToFront(old)
		return
	}
	for s.bytes+size > s.maxBytes && s.tail != nil {
		s.remove(s.tail)
	}
	s.m[v] = e
	s.bytes += size
	s.pushFront(e)
}

func (s *cacheShard) pushFront(e *cacheNode) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) unlink(e *cacheNode) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) moveToFront(e *cacheNode) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

func (s *cacheShard) remove(e *cacheNode) {
	s.unlink(e)
	delete(s.m, e.node)
	s.bytes -= e.bytes
}

// CacheStats is a point-in-time summary of an EntryCache.
type CacheStats struct {
	Hits     int64
	Misses   int64
	Entries  int
	Bytes    int64
	MaxBytes int64
}

// Stats sums counters and occupancy across shards.
func (c *EntryCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	st := CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.m)
		st.Bytes += s.bytes
		st.MaxBytes += s.maxBytes
		s.mu.Unlock()
	}
	return st
}
