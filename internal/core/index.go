package core

import (
	"math"
	"sort"

	"sling/internal/graph"
)

// An HP entry h̃^(ℓ)(v, k) is keyed by key = ℓ<<32 | k, so a node's entries
// sorted by key are ordered by (step, meeting node) — exactly the order the
// Algorithm 3 merge join needs.
func entryKey(l int, k int32) uint64 {
	return uint64(l)<<32 | uint64(uint32(k))
}

func keyStep(key uint64) int   { return int(key >> 32) }
func keyNode(key uint64) int32 { return int32(uint32(key)) }
func stepFloor(l int) uint64   { return uint64(l) << 32 }

// Index is an in-memory SLING index over a graph. It is immutable after
// Build and safe for concurrent queries as long as each goroutine uses its
// own Scratch.
type Index struct {
	g   *graph.Graph
	prm resolved

	d []float64 // d̃_k per node

	// HP sets in CSR layout: entries of node v are
	// keys/vals[off[v]:off[v+1]], sorted by key.
	off  []int64
	keys []uint64
	vals []float64

	// reduced[v] marks nodes whose step-1/2 entries were dropped
	// (Section 5.2) and must be recomputed exactly at query time.
	reduced []bool

	// Enhancement marks (Section 5.3): positions (relative to off[v]) of
	// the marked entries of node v, in CSR layout. Empty unless built with
	// Enhance.
	markOff []int64
	marks   []int32
}

// Graph returns the graph the index was built over.
func (x *Index) Graph() *graph.Graph { return x.g }

// C returns the decay factor.
func (x *Index) C() float64 { return x.prm.c }

// Eps returns the configured worst-case error target.
func (x *Index) Eps() float64 { return x.prm.eps }

// Theta returns the resolved HP pruning threshold.
func (x *Index) Theta() float64 { return x.prm.theta }

// EpsD returns the resolved correction-factor error target.
func (x *Index) EpsD() float64 { return x.prm.epsD }

// ErrorBound returns the ε guaranteed by Theorem 1 for the resolved
// parameters (at most Eps when the defaults were used).
func (x *Index) ErrorBound() float64 { return x.prm.errorBound() }

// D returns the approximate correction factor of node k.
func (x *Index) D(k graph.NodeID) float64 { return x.d[k] }

// NumEntries returns the total number of stored HP entries.
func (x *Index) NumEntries() int { return len(x.keys) }

// EntriesOf returns node v's stored HP entries (aliasing internal
// storage). With space reduction active this excludes the dropped
// step-1/2 entries; Entry-level consumers normally want gather instead.
func (x *Index) EntriesOf(v graph.NodeID) (keys []uint64, vals []float64) {
	return x.keys[x.off[v]:x.off[v+1]], x.vals[x.off[v]:x.off[v+1]]
}

// Reduced reports whether node v's step-1/2 entries are recomputed at
// query time rather than stored.
func (x *Index) Reduced(v graph.NodeID) bool { return x.reduced[v] }

// Bytes returns the in-memory footprint of the index proper (correction
// factors, HP sets, flags, marks), excluding the graph.
func (x *Index) Bytes() int64 {
	b := int64(len(x.d)) * 8
	b += int64(len(x.off)) * 8
	b += int64(len(x.keys)) * 8
	b += int64(len(x.vals)) * 8
	b += int64(len(x.reduced))
	b += int64(len(x.markOff)) * 8
	b += int64(len(x.marks)) * 4
	return b
}

// IndexStats summarizes a built index.
type IndexStats struct {
	Nodes          int
	Entries        int     // stored HP entries
	MaxEntries     int     // largest single H(v)
	AvgEntries     float64 // Entries / Nodes
	MaxStep        int     // deepest stored step ℓ
	ReducedNodes   int     // nodes with step-1/2 entries dropped
	MarkedEntries  int     // Section 5.3 marks
	Bytes          int64
	TheoreticalCap float64 // per-node bound Σ_ℓ (√c)^ℓ/θ = 1/(θ(1−√c))
}

// Stats computes summary statistics.
func (x *Index) Stats() IndexStats {
	st := IndexStats{
		Nodes:          len(x.d),
		Entries:        len(x.keys),
		Bytes:          x.Bytes(),
		MarkedEntries:  len(x.marks),
		TheoreticalCap: 1 / (x.prm.theta * (1 - x.prm.sqrtC)),
	}
	if st.Nodes > 0 {
		st.AvgEntries = float64(st.Entries) / float64(st.Nodes)
	}
	for v := 0; v < st.Nodes; v++ {
		cnt := int(x.off[v+1] - x.off[v])
		if cnt > st.MaxEntries {
			st.MaxEntries = cnt
		}
		if x.reduced[v] {
			st.ReducedNodes++
		}
	}
	for _, k := range x.keys {
		if l := keyStep(k); l > st.MaxStep {
			st.MaxStep = l
		}
	}
	return st
}

// maxStoredStep returns an upper bound on any stored step: beyond it
// (√c)^ℓ ≤ θ so Algorithm 2 prunes everything.
func maxStoredStep(sqrtC, theta float64) int {
	if theta >= 1 {
		return 0
	}
	return int(math.Log(theta)/math.Log(sqrtC)) + 2
}

// findStep returns the position of the first entry of keys with step >= l.
func findStep(keys []uint64, l int) int {
	floor := stepFloor(l)
	return sort.Search(len(keys), func(i int) bool { return keys[i] >= floor })
}

// lookupKey reports whether key is present in the sorted slice keys.
func lookupKey(keys []uint64, key uint64) bool {
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= key })
	return i < len(keys) && keys[i] == key
}
