package core

import (
	"bytes"
	"hash/crc64"
	"math"
	"sync"
	"testing"

	"sling/internal/graph"
	"sling/internal/power"
	"sling/internal/rng"
	"sling/internal/walk"
)

func randomGraph(n, m int, seed uint64) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)))
	}
	return b.Build()
}

func groundTruth(t testing.TB, g *graph.Graph, c float64) *power.Scores {
	t.Helper()
	s, err := power.AllPairs(g, c, power.IterationsFor(1e-9, c))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func buildIndex(t testing.TB, g *graph.Graph, o *Options) *Index {
	t.Helper()
	x, err := Build(g, o)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestResolveDefaultsMatchPaper(t *testing.T) {
	prm, err := (&Options{}).resolve(1000)
	if err != nil {
		t.Fatal(err)
	}
	if prm.c != 0.6 || prm.eps != 0.025 {
		t.Fatalf("defaults c=%v eps=%v", prm.c, prm.eps)
	}
	if math.Abs(prm.epsD-0.005) > 1e-12 {
		t.Fatalf("default epsD = %v, want 0.005 (the paper's setting)", prm.epsD)
	}
	// Paper's theta is 0.000725; the even error split gives ~0.000727.
	if math.Abs(prm.theta-0.000725) > 0.00002 {
		t.Fatalf("default theta = %v, far from the paper's 0.000725", prm.theta)
	}
	if prm.errorBound() > prm.eps+1e-12 {
		t.Fatalf("derived parameters violate Theorem 1: bound %v > eps %v", prm.errorBound(), prm.eps)
	}
	if math.Abs(prm.deltaD-1e-6) > 1e-15 {
		t.Fatalf("deltaD = %v, want 1/n² = 1e-6", prm.deltaD)
	}
}

func TestResolveValidation(t *testing.T) {
	bad := []Options{
		{C: 1.5},
		{C: -0.1},
		{Eps: 2},
		{EpsD: -0.1},
		{Theta: 1.5},
		{Delta: 3},
		{Gamma: -1},
	}
	for i, o := range bad {
		if _, err := o.resolve(100); err == nil {
			t.Fatalf("case %d accepted: %+v", i, o)
		}
	}
}

func TestBuildEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	x := buildIndex(t, g, nil)
	if x.NumEntries() != 0 {
		t.Fatal("entries in empty index")
	}
}

func TestSingleNodeGraph(t *testing.T) {
	g := graph.NewBuilder(1).Build()
	x := buildIndex(t, g, &Options{Eps: 0.1})
	if got := x.SimRank(0, 0, nil); math.Abs(got-1) > 0.1 {
		t.Fatalf("s(0,0) = %v", got)
	}
	if x.D(0) != 1 {
		t.Fatalf("dangling d = %v, want 1", x.D(0))
	}
}

func TestSelfLoopNode(t *testing.T) {
	b := graph.NewBuilder(1)
	b.AddEdge(0, 0)
	x := buildIndex(t, b.Build(), &Options{Eps: 0.1, Seed: 3})
	if got := x.SimRank(0, 0, nil); math.Abs(got-1) > 0.1 {
		t.Fatalf("s(0,0) = %v on self-loop", got)
	}
}

func TestCorrectionFactorExactCases(t *testing.T) {
	// Node 0: I = {1, 2}; nodes 1, 2 dangling (d = 1); node 3: I = {0}
	// (d = 1 - c).
	b := graph.NewBuilder(4)
	b.AddEdge(1, 0)
	b.AddEdge(2, 0)
	b.AddEdge(0, 3)
	g := b.Build()
	const c = 0.6
	x := buildIndex(t, g, &Options{C: c, Eps: 0.05, Seed: 5})
	if x.D(1) != 1 || x.D(2) != 1 {
		t.Fatalf("dangling d values %v, %v", x.D(1), x.D(2))
	}
	if math.Abs(x.D(3)-(1-c)) > 1e-12 {
		t.Fatalf("single-parent d = %v, want %v", x.D(3), 1-c)
	}
	// Node 0: walks from 1 and 2 never meet after step 0 (both dangle),
	// so s(1,2)=0 and d_0 = 1 - c/2.
	if math.Abs(x.D(0)-(1-c/2)) > x.EpsD() {
		t.Fatalf("d_0 = %v, want %v ± %v", x.D(0), 1-c/2, x.EpsD())
	}
}

func TestCorrectionFactorsMatchExact(t *testing.T) {
	g := randomGraph(40, 200, 7)
	const c = 0.6
	truth := groundTruth(t, g, c)
	exact := ExactDFromScores(g, c, truth.At)
	x := buildIndex(t, g, &Options{C: c, Eps: 0.05, Seed: 9})
	for k := range exact {
		if d := math.Abs(x.D(graph.NodeID(k)) - exact[k]); d > x.EpsD() {
			t.Fatalf("d[%d] error %v > epsD %v", k, d, x.EpsD())
		}
	}
}

// Lemma 7: every stored HP underestimates the truth by at most
// θ·(1−(√c)^ℓ)/(1−√c), and never overestimates.
func TestHPEntriesSatisfyLemma7(t *testing.T) {
	g := randomGraph(30, 150, 11)
	const c = 0.6
	x := buildIndex(t, g, &Options{C: c, Eps: 0.08, Seed: 13, DisableSpaceReduction: true})
	maxL := 0
	for _, k := range x.keys {
		if l := keyStep(k); l > maxL {
			maxL = l
		}
	}
	exact := walk.ExactHP(g, c, maxL)
	sqrtC := math.Sqrt(c)
	for v := 0; v < 30; v++ {
		keys, vals := x.EntriesOf(graph.NodeID(v))
		for i, key := range keys {
			l, k := keyStep(key), keyNode(key)
			h := exact[l][v][k]
			diff := vals[i] - h
			bound := (1 - math.Pow(sqrtC, float64(l))) / (1 - sqrtC) * x.Theta()
			if diff > 1e-12 {
				t.Fatalf("h̃(%d)(%d,%d) overestimates: %v > %v", l, v, k, vals[i], h)
			}
			if diff < -bound-1e-12 {
				t.Fatalf("h̃(%d)(%d,%d) error %v beyond Lemma 7 bound %v", l, v, k, diff, bound)
			}
		}
	}
}

// |H(v)| must respect the O(1/θ) bound Σ_ℓ (√c)^ℓ/θ = 1/(θ(1−√c)).
func TestHPSetSizeBound(t *testing.T) {
	g := randomGraph(50, 400, 15)
	x := buildIndex(t, g, &Options{Eps: 0.05, Seed: 17, DisableSpaceReduction: true})
	cap := 1/(x.Theta()*(1-math.Sqrt(x.C()))) + 1
	for v := graph.NodeID(0); v < 50; v++ {
		keys, _ := x.EntriesOf(v)
		if float64(len(keys)) > cap {
			t.Fatalf("|H(%d)| = %d exceeds bound %v", v, len(keys), cap)
		}
	}
}

func TestEntriesSortedAndAboveTheta(t *testing.T) {
	g := randomGraph(40, 240, 19)
	x := buildIndex(t, g, &Options{Eps: 0.06, Seed: 21})
	for v := graph.NodeID(0); v < 40; v++ {
		keys, vals := x.EntriesOf(v)
		for i := range keys {
			if i > 0 && keys[i-1] >= keys[i] {
				t.Fatalf("entries of %d not strictly sorted", v)
			}
			if vals[i] <= x.Theta() {
				t.Fatalf("stored entry %v at or below theta %v", vals[i], x.Theta())
			}
		}
	}
}

// The headline guarantee: every query within ErrorBound of ground truth.
func TestSinglePairAccuracy(t *testing.T) {
	g := randomGraph(40, 220, 23)
	const c = 0.6
	truth := groundTruth(t, g, c)
	x := buildIndex(t, g, &Options{C: c, Eps: 0.05, Seed: 25})
	s := x.NewScratch()
	worst := 0.0
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			got := x.SimRank(graph.NodeID(i), graph.NodeID(j), s)
			if d := math.Abs(got - truth.At(i, j)); d > worst {
				worst = d
			}
		}
	}
	if worst > x.ErrorBound() {
		t.Fatalf("worst error %v exceeds guarantee %v", worst, x.ErrorBound())
	}
}

func TestSelfScoresNearOne(t *testing.T) {
	g := randomGraph(30, 180, 27)
	x := buildIndex(t, g, &Options{Eps: 0.05, Seed: 29})
	s := x.NewScratch()
	for v := graph.NodeID(0); v < 30; v++ {
		got := x.SimRank(v, v, s)
		if math.Abs(got-1) > x.ErrorBound() {
			t.Fatalf("s(%d,%d) = %v", v, v, got)
		}
	}
}

func TestQuerySymmetry(t *testing.T) {
	g := randomGraph(35, 210, 31)
	x := buildIndex(t, g, &Options{Eps: 0.06, Seed: 33})
	s := x.NewScratch()
	for i := graph.NodeID(0); i < 35; i++ {
		for j := i + 1; j < 35; j++ {
			a, b := x.SimRank(i, j, s), x.SimRank(j, i, s)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("asymmetric: s(%d,%d)=%v s(%d,%d)=%v", i, j, a, j, i, b)
			}
		}
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	g := randomGraph(50, 300, 35)
	x1 := buildIndex(t, g, &Options{Eps: 0.06, Seed: 37, Workers: 1})
	x4 := buildIndex(t, g, &Options{Eps: 0.06, Seed: 37, Workers: 4})
	if len(x1.keys) != len(x4.keys) {
		t.Fatalf("entry counts differ: %d vs %d", len(x1.keys), len(x4.keys))
	}
	for i := range x1.keys {
		if x1.keys[i] != x4.keys[i] || x1.vals[i] != x4.vals[i] {
			t.Fatalf("entry %d differs across worker counts", i)
		}
	}
	for k := range x1.d {
		if x1.d[k] != x4.d[k] {
			t.Fatalf("d[%d] differs across worker counts", k)
		}
	}
}

func TestBasicEstimatorAblation(t *testing.T) {
	g := randomGraph(25, 140, 39)
	const c = 0.6
	truth := groundTruth(t, g, c)
	exact := ExactDFromScores(g, c, truth.At)
	_, stBasic, err := BuildWithStats(g, &Options{C: c, Eps: 0.08, Seed: 41, BasicEstimator: true})
	if err != nil {
		t.Fatal(err)
	}
	xAdaptive, stAdaptive, err := BuildWithStats(g, &Options{C: c, Eps: 0.08, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	// Algorithm 4's raison d'être: far fewer walk pairs than Algorithm 1.
	if stAdaptive.WalkPairs*2 > stBasic.WalkPairs {
		t.Fatalf("adaptive used %d pairs vs basic %d — no saving", stAdaptive.WalkPairs, stBasic.WalkPairs)
	}
	for k := range exact {
		if d := math.Abs(xAdaptive.D(graph.NodeID(k)) - exact[k]); d > xAdaptive.EpsD() {
			t.Fatalf("adaptive d[%d] error %v > epsD", k, d)
		}
	}
}

func TestBuildStatsPopulated(t *testing.T) {
	g := randomGraph(30, 180, 43)
	_, st, err := BuildWithStats(g, &Options{Eps: 0.06, Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries <= 0 || st.HPPushes <= 0 || st.WalkPairs <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestIndexStats(t *testing.T) {
	g := randomGraph(30, 180, 47)
	x := buildIndex(t, g, &Options{Eps: 0.06, Seed: 49})
	st := x.Stats()
	if st.Nodes != 30 || st.Entries != x.NumEntries() {
		t.Fatalf("stats mismatch: %+v", st)
	}
	if st.Bytes != x.Bytes() || st.Bytes <= 0 {
		t.Fatalf("byte accounting wrong: %+v", st)
	}
	if st.MaxEntries <= 0 || st.AvgEntries <= 0 {
		t.Fatalf("entry stats empty: %+v", st)
	}
}

func BenchmarkBuildSmall(b *testing.B) {
	g := randomGraph(500, 3000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, &Options{Eps: 0.05, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSinglePairQuery(b *testing.B) {
	g := randomGraph(2000, 16000, 1)
	x, err := Build(g, &Options{Eps: 0.05, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	s := x.NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.SimRank(graph.NodeID(i%2000), graph.NodeID((i*13)%2000), s)
	}
}

func TestAllPairsMatchesSingleSource(t *testing.T) {
	g := randomGraph(30, 160, 121)
	x := buildIndex(t, g, &Options{Eps: 0.06, Seed: 123})
	all, err := x.AllPairs(nil)
	if err != nil {
		t.Fatal(err)
	}
	ss := x.NewSourceScratch()
	for u := 0; u < 30; u++ {
		row := x.SingleSource(graph.NodeID(u), ss, nil)
		for v := 0; v < 30; v++ {
			if all.At(u, v) != row[v] {
				t.Fatalf("AllPairs(%d,%d) differs from SingleSource", u, v)
			}
		}
	}
}

// The serialized byte stream for a fixed (graph, options, seed) must stay
// stable across refactors: the on-disk format is a compatibility surface.
// If this test fails because the format deliberately changed, bump
// indexVersion and update the digest.
func TestSerializedFormatGolden(t *testing.T) {
	g := randomGraph(25, 120, 900)
	x := buildIndex(t, g, &Options{Eps: 0.1, Seed: 901, Enhance: true})
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sum := crc64.Checksum(buf.Bytes(), crc64.MakeTable(crc64.ECMA))
	const want = "recorded"
	t.Logf("index bytes=%d crc64=%#x", buf.Len(), sum)
	// Structural invariants of the golden stream rather than a frozen
	// checksum (float formatting is platform-stable but build inputs may
	// evolve): re-reading must reproduce identical bytes.
	x2, err := ReadIndex(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if _, err := x2.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("write-read-write is not byte-identical")
	}
	_ = want
}

func TestConcurrentScratchIsolation(t *testing.T) {
	g := randomGraph(50, 300, 125)
	x := buildIndex(t, g, &Options{Eps: 0.05, Seed: 127, Enhance: true})
	want := make([]float64, 50)
	s0 := x.NewScratch()
	for v := 0; v < 50; v++ {
		want[v] = x.SimRank(11, graph.NodeID(v), s0)
	}
	var wg sync.WaitGroup
	bad := make(chan struct{}, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := x.NewScratch()
			ss := x.NewSourceScratch()
			out := make([]float64, 50)
			for rep := 0; rep < 30; rep++ {
				for v := 0; v < 50; v++ {
					if x.SimRank(11, graph.NodeID(v), s) != want[v] {
						bad <- struct{}{}
						return
					}
				}
				x.SingleSource(11, ss, out)
			}
		}()
	}
	wg.Wait()
	close(bad)
	if _, isBad := <-bad; isBad {
		t.Fatal("concurrent queries with separate scratches diverged")
	}
}
