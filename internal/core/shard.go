package core

import (
	"sling/internal/graph"
)

// Shard-side primitives for scatter/gather serving.
//
// A shard index is a Slice of the full index: the complete O(n) metadata
// (graph binding, parameters, d̃, reduced flags) with HP entries kept only
// for a contiguous node range. That split is exactly what makes node-range
// sharding correct for SLING:
//
//   - a pair score is a merge join of the two endpoints' HP fragments
//     (Algorithm 3), so the router can fetch each fragment from the shard
//     owning it and join locally — FragmentOf carries the d̃ value per
//     entry so the join needs no index at all (JoinScoreD);
//   - single-source propagation (Algorithm 6) reads only the graph, d̃,
//     and the parameters, which every shard holds in full, so any shard
//     can propagate a broadcast fragment exactly and return its slice of
//     the score vector (SingleSourceFrom + a range copy);
//   - top-k selection has a total deterministic order (WorseThan), so
//     per-shard SelectTopRange answers of a partition merge losslessly.
//
// Every path reuses the single-index query code verbatim, so sharded
// answers are bitwise-identical to the unsharded reference.

// FragmentOf gathers node u's effective HP entry list (stored entries
// with exact step-1/2 reconstruction and enhancement expansion applied,
// exactly as queries see it) into freshly allocated slices, plus the d̃
// value of each entry's meeting node. Unlike gather, the result never
// aliases index storage or scratch, so it can outlive both — the shape a
// scatter/gather router ships between shards.
func (x *Index) FragmentOf(u graph.NodeID, s *Scratch) (keys []uint64, vals, dvals []float64) {
	if s == nil {
		s = x.NewScratch()
	}
	k, v := x.gather(u, s, &s.ka, &s.va)
	return copyFragment(k, v, x.d)
}

// FragmentOf is Index.FragmentOf over disk-resident entries: one
// positioned read (or a zero-copy view slice) plus the same gather
// transformations.
func (d *DiskIndex) FragmentOf(u graph.NodeID, s *DiskScratch) (keys []uint64, vals, dvals []float64, err error) {
	if s == nil {
		s = d.NewScratch()
	}
	ku, vu, err := d.fetch(u, s, &s.ka, &s.va)
	if err != nil {
		return nil, nil, nil, err
	}
	gk, gv := d.meta.gatherFrom(u, ku, vu, s.q, &s.gka, &s.gva)
	keys, vals, dvals = copyFragment(gk, gv, d.meta.d)
	return keys, vals, dvals, nil
}

func copyFragment(k []uint64, v []float64, d []float64) ([]uint64, []float64, []float64) {
	keys := append([]uint64(nil), k...)
	vals := append([]float64(nil), v...)
	dvals := make([]float64, len(keys))
	for i, key := range keys {
		dvals[i] = d[keyNode(key)]
	}
	return keys, vals, dvals
}

// JoinScoreD is the Algorithm 3 merge join over two gathered fragments
// with u's d̃ values carried per entry instead of looked up in an index:
// Σ h_u·d̃_k·h_v over shared keys. At a key match du[i] == d[keyNode(key)],
// and the product keeps joinScore's left-to-right grouping, so the result
// is bitwise-identical to joinScore on the same fragments.
func JoinScoreD(ku []uint64, vu, du []float64, kv []uint64, vv []float64) float64 {
	total := 0.0
	i, j := 0, 0
	for i < len(ku) && j < len(kv) {
		a, b := ku[i], kv[j]
		switch {
		case a == b:
			total += vu[i] * du[i] * vv[j]
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
	return total
}

// Slice returns a shard index owning the contiguous node range [lo, hi):
// the full graph binding, parameters, d̃, and reduced flags (all O(n) and
// needed to gather owned fragments and propagate broadcast ones), with HP
// entries and enhancement marks kept only for the owned nodes. The
// returned index shares the graph with the receiver but copies every
// array it keeps, serializes as a standard SLIX file, and answers
// identically to the full index for any query that touches only owned
// entries. lo and hi are clamped into [0, n].
func (x *Index) Slice(lo, hi int) *Index {
	n := len(x.d)
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if hi < lo {
		hi = lo
	}
	sx := &Index{
		g:       x.g,
		prm:     x.prm,
		d:       append([]float64(nil), x.d...),
		reduced: append([]bool(nil), x.reduced...),
		off:     make([]int64, n+1),
		markOff: make([]int64, n+1),
		keys:    append([]uint64(nil), x.keys[x.off[lo]:x.off[hi]]...),
		vals:    append([]float64(nil), x.vals[x.off[lo]:x.off[hi]]...),
		marks:   append([]int32(nil), x.marks[x.markOff[lo]:x.markOff[hi]]...),
	}
	for v := lo; v < hi; v++ {
		sx.off[v+1] = x.off[v+1] - x.off[lo]
		sx.markOff[v+1] = x.markOff[v+1] - x.markOff[lo]
	}
	for v := hi; v < n; v++ {
		sx.off[v+1] = sx.off[hi]
		sx.markOff[v+1] = sx.markOff[hi]
	}
	return sx
}

// EntryBytes returns the serialized size of each node's stored HP
// entries (16 bytes per entry: key + value), the weight vector a
// byte-balancing shard planner partitions over.
func (x *Index) EntryBytes() []int64 {
	n := len(x.d)
	w := make([]int64, n)
	for v := 0; v < n; v++ {
		w[v] = 16 * (x.off[v+1] - x.off[v])
	}
	return w
}

// Fragment is ScratchPool.Fragment: FragmentOf with pooled scratch.
func (p *ScratchPool) Fragment(u graph.NodeID) (keys []uint64, vals, dvals []float64) {
	s := p.Scratch()
	keys, vals, dvals = p.x.FragmentOf(u, s)
	p.PutScratch(s)
	return keys, vals, dvals
}

// SourceSlice propagates an already-gathered fragment (Algorithm 6 over
// the full node space) and returns a fresh copy of the [lo, hi) slice of
// the resulting score vector, with pooled scratch.
func (p *ScratchPool) SourceSlice(keys []uint64, vals []float64, lo, hi int) []float64 {
	s := p.Source()
	vec := p.Vector()
	res := p.x.SingleSourceFrom(keys, vals, s, vec)
	out := append([]float64(nil), res[lo:hi]...)
	p.PutVector(vec)
	p.PutSource(s)
	return out
}

// TopSlice propagates a fragment and selects the local top-k of the
// [lo, hi) node range, with pooled scratch.
func (p *ScratchPool) TopSlice(keys []uint64, vals []float64, k int, skip graph.NodeID, lo, hi int) []TopEntry {
	s := p.Source()
	vec := p.Vector()
	res := p.x.SingleSourceFrom(keys, vals, s, vec)
	top := SelectTopRange(res, k, skip, lo, hi)
	p.PutVector(vec)
	p.PutSource(s)
	return top
}

// Fragment is DiskScratchPool.Fragment: FragmentOf with pooled scratch.
func (p *DiskScratchPool) Fragment(u graph.NodeID) (keys []uint64, vals, dvals []float64, err error) {
	s := p.scratch.Get().(*DiskScratch)
	keys, vals, dvals, err = p.d.FragmentOf(u, s)
	p.scratch.Put(s)
	return keys, vals, dvals, err
}

// SourceSlice is ScratchPool.SourceSlice for the disk index: propagation
// uses only the memory-resident metadata, so no I/O occurs.
func (p *DiskScratchPool) SourceSlice(keys []uint64, vals []float64, lo, hi int) []float64 {
	ss := p.source.Get().(*SourceScratch)
	vec := p.vec.Get().(*[]float64)
	res := p.d.meta.SingleSourceFrom(keys, vals, ss, *vec)
	out := append([]float64(nil), res[lo:hi]...)
	p.vec.Put(vec)
	p.source.Put(ss)
	return out
}

// TopSlice is ScratchPool.TopSlice for the disk index.
func (p *DiskScratchPool) TopSlice(keys []uint64, vals []float64, k int, skip graph.NodeID, lo, hi int) []TopEntry {
	ss := p.source.Get().(*SourceScratch)
	vec := p.vec.Get().(*[]float64)
	res := p.d.meta.SingleSourceFrom(keys, vals, ss, *vec)
	top := SelectTopRange(res, k, skip, lo, hi)
	p.vec.Put(vec)
	p.source.Put(ss)
	return top
}
