package core

import (
	"testing"

	"sling/internal/extsort"
	"sling/internal/graph"
)

func TestOutOfCoreMatchesInMemory(t *testing.T) {
	g := randomGraph(60, 360, 103)
	opt := &Options{Eps: 0.05, Seed: 105}
	mem := buildIndex(t, g, opt)
	ooc, err := BuildOutOfCore(g, opt, OutOfCoreOptions{Dir: t.TempDir(), MemBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(ooc.keys) != len(mem.keys) {
		t.Fatalf("entry counts differ: ooc %d vs mem %d", len(ooc.keys), len(mem.keys))
	}
	for i := range mem.keys {
		if mem.keys[i] != ooc.keys[i] || mem.vals[i] != ooc.vals[i] {
			t.Fatalf("entry %d differs between builds", i)
		}
	}
	for v := 0; v <= 60; v++ {
		if mem.off[v] != ooc.off[v] {
			t.Fatalf("offset %d differs: %d vs %d", v, mem.off[v], ooc.off[v])
		}
	}
	for k := range mem.d {
		if mem.d[k] != ooc.d[k] {
			t.Fatalf("d[%d] differs", k)
		}
	}
}

func TestOutOfCoreTinyBudgetSpills(t *testing.T) {
	g := randomGraph(120, 900, 107)
	opt := &Options{Eps: 0.02, Seed: 109}
	mem := buildIndex(t, g, opt)
	// The minimum budget holds ~3276 records; this index has more entries,
	// forcing the spill path.
	if mem.NumEntries() < 4000 {
		t.Skipf("index too small (%d entries) to force spills", mem.NumEntries())
	}
	ooc, err := BuildOutOfCore(g, opt, OutOfCoreOptions{Dir: t.TempDir(), MemBudget: extsort.MinMemBudget})
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := mem.NewScratch(), ooc.NewScratch()
	for i := graph.NodeID(0); i < 120; i += 7 {
		for j := graph.NodeID(0); j < 120; j += 11 {
			if a, b := mem.SimRank(i, j, s1), ooc.SimRank(i, j, s2); a != b {
				t.Fatalf("spilled build differs at (%d,%d): %v vs %v", i, j, a, b)
			}
		}
	}
}

func TestOutOfCoreRequiresDir(t *testing.T) {
	g := randomGraph(10, 30, 111)
	if _, err := BuildOutOfCore(g, &Options{Eps: 0.1}, OutOfCoreOptions{MemBudget: 1 << 20}); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestOutOfCoreEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	x, err := BuildOutOfCore(g, nil, OutOfCoreOptions{Dir: t.TempDir(), MemBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if x.NumEntries() != 0 {
		t.Fatal("entries in empty out-of-core index")
	}
}

func TestOutOfCoreWithEnhance(t *testing.T) {
	g := randomGraph(40, 240, 113)
	opt := &Options{Eps: 0.06, Seed: 115, Enhance: true}
	mem := buildIndex(t, g, opt)
	ooc, err := BuildOutOfCore(g, opt, OutOfCoreOptions{Dir: t.TempDir(), MemBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(mem.marks) != len(ooc.marks) {
		t.Fatalf("mark counts differ: %d vs %d", len(mem.marks), len(ooc.marks))
	}
	for i := range mem.marks {
		if mem.marks[i] != ooc.marks[i] {
			t.Fatalf("mark %d differs", i)
		}
	}
}
