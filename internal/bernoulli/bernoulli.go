// Package bernoulli estimates the mean of a Bernoulli distribution to a
// target additive error with asymptotically optimal sample counts.
//
// It is the generalized form of Algorithm 4 of the SLING paper (Section
// 5.1): a first batch of O(log(1/δ)/ε) samples yields a crude estimate μ̂;
// if μ̂ ≤ ε the crude estimate is already within ε, otherwise a second
// batch sized by the upper bound μ* = μ̂ + √(μ̂ε) brings the total to
// O((μ+ε)/ε² · log(1/δ)) — matching the Dagum-Karp-Luby-Ross lower bound
// (Lemma 11 of the paper) up to constants. SLING uses it to estimate each
// correction factor d_k from √c-walk pair collisions.
package bernoulli

import (
	"fmt"
	"math"
)

// Sampler produces one independent Bernoulli sample.
type Sampler func() bool

// Result reports an estimate and the number of samples it consumed.
type Result struct {
	Mean    float64
	Samples int
}

func validate(eps, delta float64) error {
	if !(eps > 0 && eps < 1) {
		return fmt.Errorf("bernoulli: eps %v out of (0,1)", eps)
	}
	if !(delta > 0 && delta < 1) {
		return fmt.Errorf("bernoulli: delta %v out of (0,1)", delta)
	}
	return nil
}

// FixedSamples returns the sample count of the non-adaptive estimator
// (Algorithm 1 of the paper in its generalized form):
// n = (2 + ε)/ε² · log(2/δ).
func FixedSamples(eps, delta float64) int {
	return int(math.Ceil((2 + eps) / (eps * eps) * math.Log(2/delta)))
}

// FirstBatchSamples returns the pilot batch size of the adaptive
// estimator: n = 14/(3ε) · log(4/δ).
func FirstBatchSamples(eps, delta float64) int {
	return int(math.Ceil(14 / (3 * eps) * math.Log(4/delta)))
}

// EstimateFixed estimates the mean with the non-adaptive sampler. With
// probability at least 1−δ the estimate has additive error at most ε.
func EstimateFixed(sample Sampler, eps, delta float64) (Result, error) {
	if err := validate(eps, delta); err != nil {
		return Result{}, err
	}
	n := FixedSamples(eps, delta)
	cnt := 0
	for i := 0; i < n; i++ {
		if sample() {
			cnt++
		}
	}
	return Result{Mean: float64(cnt) / float64(n), Samples: n}, nil
}

// Estimate estimates the mean with the adaptive two-phase sampler
// (Algorithm 4, generalized). With probability at least 1−δ the estimate
// has additive error at most ε, and the expected sample count is
// O((μ+ε)/ε² · log(1/δ)).
func Estimate(sample Sampler, eps, delta float64) (Result, error) {
	if err := validate(eps, delta); err != nil {
		return Result{}, err
	}
	nr := FirstBatchSamples(eps, delta)
	cnt := 0
	for i := 0; i < nr; i++ {
		if sample() {
			cnt++
		}
	}
	muHat := float64(cnt) / float64(nr)
	if muHat <= eps {
		return Result{Mean: muHat, Samples: nr}, nil
	}
	// Second phase: μ* upper-bounds μ w.h.p.; size the total batch by it.
	muStar := muHat + math.Sqrt(muHat*eps)
	logTerm := math.Log(4 / delta)
	nStar := int(math.Ceil((2*muStar + 2.0/3.0*eps) / (eps * eps) * logTerm))
	if nStar <= nr {
		return Result{Mean: muHat, Samples: nr}, nil
	}
	for i := nr; i < nStar; i++ {
		if sample() {
			cnt++
		}
	}
	return Result{Mean: float64(cnt) / float64(nStar), Samples: nStar}, nil
}
