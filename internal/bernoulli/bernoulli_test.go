package bernoulli

import (
	"math"
	"testing"

	"sling/internal/rng"
)

func coin(r *rng.Source, p float64) Sampler {
	return func() bool { return r.Bernoulli(p) }
}

func TestValidation(t *testing.T) {
	s := coin(rng.New(1), 0.5)
	for _, bad := range [][2]float64{{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1}, {-0.2, 0.5}} {
		if _, err := Estimate(s, bad[0], bad[1]); err == nil {
			t.Fatalf("Estimate accepted eps=%v delta=%v", bad[0], bad[1])
		}
		if _, err := EstimateFixed(s, bad[0], bad[1]); err == nil {
			t.Fatalf("EstimateFixed accepted eps=%v delta=%v", bad[0], bad[1])
		}
	}
}

func TestFixedSampleCountFormula(t *testing.T) {
	// (2 + 0.1)/0.01 * log(2/0.01) = 210 * 5.298 = 1112.7 -> 1113.
	if got := FixedSamples(0.1, 0.01); got != 1113 {
		t.Fatalf("FixedSamples = %d, want 1113", got)
	}
}

func TestFirstBatchFormula(t *testing.T) {
	// 14/(3*0.1) * log(4/0.01) = 46.67 * 5.99 = 279.6 -> 280.
	if got := FirstBatchSamples(0.1, 0.01); got != 280 {
		t.Fatalf("FirstBatchSamples = %d, want 280", got)
	}
}

// The estimator must hit its accuracy target nearly always; test across a
// spread of true means including both phases of the adaptive algorithm.
func TestEstimateAccuracy(t *testing.T) {
	const eps, delta = 0.05, 0.05
	r := rng.New(42)
	for _, mu := range []float64{0, 0.01, 0.05, 0.2, 0.5, 0.9, 1} {
		fails := 0
		const trials = 60
		for i := 0; i < trials; i++ {
			res, err := Estimate(coin(r, mu), eps, delta)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.Mean-mu) > eps {
				fails++
			}
		}
		// Allow a generous margin over delta*trials = 3.
		if fails > 8 {
			t.Fatalf("mu=%v: %d/%d estimates outside eps", mu, fails, trials)
		}
	}
}

func TestEstimateFixedAccuracy(t *testing.T) {
	const eps, delta = 0.05, 0.05
	r := rng.New(43)
	for _, mu := range []float64{0.02, 0.5, 0.97} {
		res, err := EstimateFixed(coin(r, mu), eps, delta)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Mean-mu) > eps {
			t.Fatalf("mu=%v: estimate %v off by more than eps", mu, res.Mean)
		}
		if res.Samples != FixedSamples(eps, delta) {
			t.Fatalf("fixed sampler took %d samples, want %d", res.Samples, FixedSamples(eps, delta))
		}
	}
}

// The whole point of Algorithm 4: when μ is small the adaptive estimator
// stops after the pilot batch, far below the fixed-size sampler.
func TestAdaptiveCheapWhenMeanSmall(t *testing.T) {
	const eps, delta = 0.01, 0.01
	r := rng.New(44)
	res, err := Estimate(coin(r, 0.001), eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	fixed := FixedSamples(eps, delta)
	if res.Samples*10 > fixed {
		t.Fatalf("adaptive used %d samples; fixed would use %d — no saving", res.Samples, fixed)
	}
	if res.Samples != FirstBatchSamples(eps, delta) {
		t.Fatalf("small-mean case should stop after pilot batch: %d vs %d",
			res.Samples, FirstBatchSamples(eps, delta))
	}
}

// With a large μ the second phase must engage and scale like μ/ε².
func TestAdaptiveSecondPhaseEngages(t *testing.T) {
	const eps, delta = 0.05, 0.05
	r := rng.New(45)
	res, err := Estimate(coin(r, 0.6), eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples <= FirstBatchSamples(eps, delta) {
		t.Fatalf("second phase did not engage for mu=0.6 (samples=%d)", res.Samples)
	}
	// Sanity: still bounded by a constant times the fixed count.
	if res.Samples > 2*FixedSamples(eps, delta) {
		t.Fatalf("adaptive used %d samples, way over fixed %d", res.Samples, FixedSamples(eps, delta))
	}
}

// Expected adaptive sample count grows with μ (the O((μ+ε)/ε²) shape).
func TestSampleCountMonotoneInMean(t *testing.T) {
	const eps, delta = 0.02, 0.05
	r := rng.New(46)
	avg := func(mu float64) float64 {
		total := 0
		const trials = 20
		for i := 0; i < trials; i++ {
			res, err := Estimate(coin(r, mu), eps, delta)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Samples
		}
		return float64(total) / trials
	}
	small, mid, large := avg(0.005), avg(0.2), avg(0.8)
	if !(small < mid && mid < large) {
		t.Fatalf("sample counts not monotone: %v, %v, %v", small, mid, large)
	}
}

func TestDegenerateAlwaysTrue(t *testing.T) {
	r := rng.New(47)
	res, err := Estimate(coin(r, 1), 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean != 1 {
		t.Fatalf("mean of constant-true sampler = %v", res.Mean)
	}
}

func TestDegenerateAlwaysFalse(t *testing.T) {
	r := rng.New(48)
	res, err := Estimate(coin(r, 0), 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean != 0 {
		t.Fatalf("mean of constant-false sampler = %v", res.Mean)
	}
	if res.Samples != FirstBatchSamples(0.1, 0.1) {
		t.Fatal("constant-false sampler should stop after pilot batch")
	}
}

func BenchmarkEstimateSmallMean(b *testing.B) {
	r := rng.New(1)
	s := coin(r, 0.01)
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(s, 0.02, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateFixedSmallMean(b *testing.B) {
	r := rng.New(1)
	s := coin(r, 0.01)
	for i := 0; i < b.N; i++ {
		if _, err := EstimateFixed(s, 0.02, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}
