package httpclient

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"sling"
)

// The sling.Querier implementation over the wire, plus the shard
// fragment endpoints. Each method maps onto one server route.

var _ sling.Querier = (*Client)(nil)

type scoredNode struct {
	Node  int64   `json:"node"`
	Score float64 `json:"score"`
}

func toScored(in []scoredNode) []sling.Scored {
	out := make([]sling.Scored, len(in))
	for i, e := range in {
		out[i] = sling.Scored{Node: sling.NodeID(e.Node), Score: e.Score}
	}
	return out
}

// Meta reports the wire backend: identity from construction, guarantee
// parameters scraped from /stats (zero if the server hides them).
func (c *Client) Meta() sling.QuerierMeta {
	m := sling.QuerierMeta{Name: c.name, Nodes: c.n, Clamped: c.clamped}
	var stats struct {
		C     float64 `json:"decay_factor"`
		Eps   float64 `json:"error_bound"`
		Epoch uint64  `json:"epoch"`
	}
	if err := c.Do(context.Background(), http.MethodGet, "/stats", "", &stats); err == nil {
		m.C, m.Eps, m.Epoch = stats.C, stats.Eps, stats.Epoch
	}
	return m
}

func (c *Client) SimRank(ctx context.Context, u, v sling.NodeID) (float64, error) {
	var resp struct {
		Score float64 `json:"score"`
	}
	err := c.Do(ctx, http.MethodGet, fmt.Sprintf("/simrank?u=%d&v=%d", u, v), "", &resp)
	return resp.Score, err
}

// sourceVector turns a full /source response into a dense score vector,
// verifying it covers exactly the node set.
func (c *Client) sourceVector(entries []scoredNode, out []float64) ([]float64, error) {
	if len(entries) != c.n {
		return nil, fmt.Errorf("source returned %d scores, want %d", len(entries), c.n)
	}
	if cap(out) < c.n {
		out = make([]float64, c.n)
	}
	out = out[:c.n]
	seen := make([]bool, c.n)
	for _, e := range entries {
		if e.Node < 0 || e.Node >= int64(c.n) || seen[e.Node] {
			//slingvet:ignore noderangeerr backend protocol corruption, not a caller-supplied node: ErrNodeRange would misclassify it as retryable input error
			return nil, fmt.Errorf("source entry for node %d out of range or duplicated", e.Node)
		}
		seen[e.Node] = true
		out[e.Node] = e.Score
	}
	return out, nil
}

func (c *Client) SingleSource(ctx context.Context, u sling.NodeID, out []float64) ([]float64, error) {
	var resp struct {
		Scores []scoredNode `json:"scores"`
	}
	if err := c.Do(ctx, http.MethodGet, fmt.Sprintf("/source?u=%d", u), "", &resp); err != nil {
		return nil, err
	}
	return c.sourceVector(resp.Scores, out)
}

func (c *Client) SingleSourceBatch(ctx context.Context, us []sling.NodeID) ([][]float64, error) {
	ops := make([]map[string]interface{}, len(us))
	for i, u := range us {
		ops[i] = map[string]interface{}{"op": "source", "u": u}
	}
	body, err := json.Marshal(ops)
	if err != nil {
		return nil, err
	}
	var resp struct {
		Results []struct {
			Scores []scoredNode `json:"scores"`
			Error  string       `json:"error"`
			Code   string       `json:"code"`
		} `json:"results"`
	}
	if err := c.Do(ctx, http.MethodPost, "/batch", string(body), &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(us) {
		return nil, fmt.Errorf("batch returned %d results for %d ops", len(resp.Results), len(us))
	}
	rows := make([][]float64, len(us))
	for i, r := range resp.Results {
		if r.Error != "" {
			if r.Code == "node_range" {
				return nil, fmt.Errorf("%w: batch op %d: %s", sling.ErrNodeRange, i, r.Error)
			}
			return nil, fmt.Errorf("batch op %d: %s", i, r.Error)
		}
		if rows[i], err = c.sourceVector(r.Scores, nil); err != nil {
			return nil, fmt.Errorf("batch op %d: %w", i, err)
		}
	}
	return rows, nil
}

func (c *Client) TopK(ctx context.Context, u sling.NodeID, k int) ([]sling.Scored, error) {
	var resp struct {
		Results []scoredNode `json:"results"`
	}
	err := c.Do(ctx, http.MethodGet, fmt.Sprintf("/topk?u=%d&k=%d", u, k), "", &resp)
	return toScored(resp.Results), err
}

func (c *Client) SourceTop(ctx context.Context, u sling.NodeID, limit int) ([]sling.Scored, error) {
	var resp struct {
		Scores []scoredNode `json:"scores"`
	}
	err := c.Do(ctx, http.MethodGet, fmt.Sprintf("/source?u=%d&limit=%d", u, limit), "", &resp)
	return toScored(resp.Scores), err
}

// Fragment fetches a node's HP fragment from GET /shard/fragment — the
// remote half of sling.ShardBackend.Fragment.
func (c *Client) Fragment(ctx context.Context, u sling.NodeID) (*sling.Fragment, error) {
	var f sling.Fragment
	if err := c.Do(ctx, http.MethodGet, fmt.Sprintf("/shard/fragment?u=%d", u), "", &f); err != nil {
		return nil, err
	}
	return &f, nil
}

// sliceReq is the POST /shard/source and /shard/top request body.
type sliceReq struct {
	Fragment *sling.Fragment `json:"fragment"`
	K        int             `json:"k,omitempty"`
	Skip     int64           `json:"skip,omitempty"`
	Lo       int             `json:"lo"`
	Hi       int             `json:"hi"`
}

// SourceSlice broadcasts a fragment to POST /shard/source and returns
// the shard's [lo, hi) score slice.
func (c *Client) SourceSlice(ctx context.Context, f *sling.Fragment, lo, hi int) ([]float64, error) {
	body, err := json.Marshal(sliceReq{Fragment: f, Lo: lo, Hi: hi})
	if err != nil {
		return nil, err
	}
	var resp struct {
		Scores []float64 `json:"scores"`
	}
	if err := c.Do(ctx, http.MethodPost, "/shard/source", string(body), &resp); err != nil {
		return nil, err
	}
	if len(resp.Scores) != hi-lo {
		return nil, fmt.Errorf("shard source returned %d scores, want %d", len(resp.Scores), hi-lo)
	}
	return resp.Scores, nil
}

// TopSlice asks POST /shard/top for the shard's k-pruned local top list
// over [lo, hi).
func (c *Client) TopSlice(ctx context.Context, f *sling.Fragment, k int, skip sling.NodeID, lo, hi int) ([]sling.Scored, error) {
	body, err := json.Marshal(sliceReq{Fragment: f, K: k, Skip: int64(skip), Lo: lo, Hi: hi})
	if err != nil {
		return nil, err
	}
	var resp struct {
		Results []scoredNode `json:"results"`
	}
	if err := c.Do(ctx, http.MethodPost, "/shard/top", string(body), &resp); err != nil {
		return nil, err
	}
	return toScored(resp.Results), nil
}
