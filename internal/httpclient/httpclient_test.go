package httpclient

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"sling"
)

// countingHandler serves a scripted status sequence and counts requests.
type countingHandler struct {
	calls      atomic.Int64
	statuses   []int
	retryAfter string
	body       string
}

func (h *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	i := int(h.calls.Add(1)) - 1
	status := h.statuses[len(h.statuses)-1]
	if i < len(h.statuses) {
		status = h.statuses[i]
	}
	if status == http.StatusTooManyRequests && h.retryAfter != "" {
		w.Header().Set("Retry-After", h.retryAfter)
	}
	w.WriteHeader(status)
	if status == http.StatusOK {
		w.Write([]byte(`{"score": 0.5}`))
	} else if h.body != "" {
		w.Write([]byte(h.body))
	}
}

func newTestClient(t *testing.T, h http.Handler) *Client {
	t.Helper()
	c, err := New(Options{Handler: h, Nodes: 10})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRetry429Once pins the retry budget: a 429 answered by a 200 on the
// second attempt succeeds with exactly two requests on the wire.
func TestRetry429Once(t *testing.T) {
	h := &countingHandler{statuses: []int{429, 200}, retryAfter: "0"}
	c := newTestClient(t, h)
	var out struct {
		Score float64 `json:"score"`
	}
	if err := c.Do(context.Background(), http.MethodGet, "/x", "", &out); err != nil {
		t.Fatal(err)
	}
	if out.Score != 0.5 {
		t.Fatalf("score = %v", out.Score)
	}
	if got := h.calls.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want exactly 2 (one retry)", got)
	}
}

// TestRetry429Exhausted pins that a second 429 is NOT retried again: the
// client surfaces it after exactly two requests.
func TestRetry429Exhausted(t *testing.T) {
	h := &countingHandler{statuses: []int{429, 429, 200}, retryAfter: "0"}
	c := newTestClient(t, h)
	err := c.Do(context.Background(), http.MethodGet, "/x", "", &struct{}{})
	var he *Error
	if !errors.As(err, &he) || he.Code != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want *Error with 429", err)
	}
	if got := h.calls.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want exactly 2", got)
	}
}

// TestRetryHonorsCtx pins that the Retry-After wait observes the ctx
// deadline instead of sleeping past it.
func TestRetryHonorsCtx(t *testing.T) {
	h := &countingHandler{statuses: []int{429}, retryAfter: "5"}
	c := newTestClient(t, h)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Do(ctx, http.MethodGet, "/x", "", &struct{}{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("waited %v, ignored ctx deadline", elapsed)
	}
	if got := h.calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retry after deadline)", got)
	}
}

func TestPreCancelledCtx(t *testing.T) {
	h := &countingHandler{statuses: []int{200}}
	c := newTestClient(t, h)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Do(ctx, http.MethodGet, "/x", "", &struct{}{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if got := h.calls.Load(); got != 0 {
		t.Fatalf("server saw %d requests, want 0", got)
	}
}

// TestNodeRangeReconstruction pins that a machine-tagged node_range
// response surfaces as sling.ErrNodeRange through the wire.
func TestNodeRangeReconstruction(t *testing.T) {
	h := &countingHandler{
		statuses: []int{404},
		body:     `{"error":"node 99 not in [0,10)","code":"node_range"}`,
	}
	c := newTestClient(t, h)
	err := c.Do(context.Background(), http.MethodGet, "/x", "", &struct{}{})
	if !errors.Is(err, sling.ErrNodeRange) {
		t.Fatalf("err = %v, want to wrap ErrNodeRange", err)
	}
	var he *Error
	if !errors.As(err, &he) || he.Code != 404 {
		t.Fatalf("err = %v, want *Error with 404", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New accepted neither transport")
	}
	if _, err := New(Options{Handler: http.NotFoundHandler(), BaseURL: "http://x"}); err == nil {
		t.Fatal("New accepted both transports")
	}
	c, err := New(Options{Handler: http.NotFoundHandler(), Name: "remote", Nodes: 4, Clamped: true})
	if err != nil {
		t.Fatal(err)
	}
	// Meta identity comes from construction; /stats scraping fails (404)
	// and is ignored.
	if m := c.Meta(); c.Nodes() != 4 || m.Name != "remote" || !m.Clamped || m.C != 0 {
		t.Fatalf("client config lost: nodes=%d meta=%+v", c.Nodes(), m)
	}
}
