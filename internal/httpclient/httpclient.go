// Package httpclient is the SLING Querier-over-the-wire adapter: it
// drives the package server's HTTP+JSON API — in-process through an
// http.Handler or over the network through an *http.Client — as a
// sling.Querier, plus the shard fragment endpoints a scatter/gather
// router needs. It is the one HTTP client shape in the repository,
// shared by the conformance matrix (which wraps it with a report label)
// and the remote shard client.
//
// encoding/json emits the shortest float64 representation that
// round-trips exactly, so scores survive the JSON hop bit-for-bit and
// wire backends participate in bitwise cross-backend checks.
//
// Transient overload answers (429) are retried exactly once, after
// honoring the server's Retry-After header; the wait observes ctx, so a
// deadline shorter than the advised backoff returns ctx.Err() instead of
// sleeping past it.
package httpclient

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"time"

	"sling"
)

// Error is a non-200 answer. Callers assert on Code; when the server
// tagged the failure with a machine-readable code (node_range), Error
// wraps the matching sentinel so errors.Is sees through the wire: a bad
// node yields sling.ErrNodeRange from an HTTP backend exactly like from
// the library backends.
type Error struct {
	Code int
	Body string
	Err  error // optional sentinel reconstructed from the response code field
}

func (e *Error) Error() string {
	return fmt.Sprintf("http %d: %s", e.Code, strings.TrimSpace(e.Body))
}

func (e *Error) Unwrap() error { return e.Err }

// Options configures a Client. Exactly one transport must be set:
// Handler serves requests in-process (the conformance and test shape),
// BaseURL issues real network requests (the remote shard / replication
// shape).
type Options struct {
	// Handler is the in-process transport.
	Handler http.Handler
	// BaseURL is the network transport, e.g. "http://shard-3:8080".
	BaseURL string
	// Client issues BaseURL requests; defaults to an *http.Client with a
	// 30s timeout. Ignored with Handler.
	Client *http.Client
	// Prefix is prepended to every route, e.g. "/g/wiki" to drive one
	// graph of a catalog server.
	Prefix string
	// Nodes is the served node count, used to validate /source vectors
	// and reported in Meta.
	Nodes int
	// Name labels the backend in Meta; defaults to "http".
	Name string
	// Clamped reports the backend's scoring contract in Meta.
	Clamped bool
}

// Client is a sling.Querier (and shard-endpoint client) over the HTTP
// API. It is safe for concurrent use.
type Client struct {
	h       http.Handler
	base    string
	hc      *http.Client
	prefix  string
	n       int
	name    string
	clamped bool
}

// New validates o and returns a Client.
func New(o Options) (*Client, error) {
	if (o.Handler == nil) == (o.BaseURL == "") {
		return nil, fmt.Errorf("httpclient: exactly one of Handler and BaseURL must be set")
	}
	c := &Client{
		h:       o.Handler,
		base:    strings.TrimSuffix(o.BaseURL, "/"),
		hc:      o.Client,
		prefix:  strings.TrimSuffix(o.Prefix, "/"),
		n:       o.Nodes,
		name:    o.Name,
		clamped: o.Clamped,
	}
	if c.name == "" {
		c.name = "http"
	}
	if c.base != "" && c.hc == nil {
		c.hc = &http.Client{Timeout: 30 * time.Second}
	}
	return c, nil
}

// Nodes returns the served node count the client was configured with.
func (c *Client) Nodes() int { return c.n }

// Close implements sling.Querier; the client owns no connection state
// beyond the transport's, so it is a no-op.
func (c *Client) Close() error { return nil }

// roundTrip issues one request and returns (status, retry-after header,
// body). The in-process path re-checks ctx after the handler ran: a
// server that observed the cancellation dropped the response.
func (c *Client) roundTrip(ctx context.Context, method, target, body string) (int, string, []byte, error) {
	if c.h != nil {
		var req *http.Request
		if body == "" {
			req = httptest.NewRequest(method, target, nil)
		} else {
			req = httptest.NewRequest(method, target, strings.NewReader(body))
		}
		req = req.WithContext(ctx)
		rec := httptest.NewRecorder()
		c.h.ServeHTTP(rec, req)
		if err := ctx.Err(); err != nil {
			return 0, "", nil, err
		}
		return rec.Code, rec.Header().Get("Retry-After"), rec.Body.Bytes(), nil
	}
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+target, rd)
	if err != nil {
		return 0, "", nil, err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return 0, "", nil, cerr
		}
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", nil, err
	}
	return resp.StatusCode, resp.Header.Get("Retry-After"), data, nil
}

// retryWait sleeps for the server-advised backoff, observing ctx.
func retryWait(ctx context.Context, header string) error {
	secs, err := strconv.Atoi(strings.TrimSpace(header))
	if err != nil || secs < 0 {
		secs = 0
	}
	if secs == 0 {
		return ctx.Err()
	}
	t := time.NewTimer(time.Duration(secs) * time.Second)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do issues one request against prefix+target and decodes the JSON
// response into out. A pre-cancelled ctx returns before any work,
// matching the Querier contract. A 429 is retried exactly once after the
// Retry-After backoff; every other non-200 (and a second 429) returns an
// *Error.
func (c *Client) Do(ctx context.Context, method, target, body string, out interface{}) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	target = c.prefix + target
	code, retryAfter, data, err := c.roundTrip(ctx, method, target, body)
	if err != nil {
		return err
	}
	if code == http.StatusTooManyRequests {
		if err := retryWait(ctx, retryAfter); err != nil {
			return err
		}
		code, _, data, err = c.roundTrip(ctx, method, target, body)
		if err != nil {
			return err
		}
	}
	if code != http.StatusOK {
		he := &Error{Code: code, Body: string(data)}
		var coded struct {
			Code string `json:"code"`
		}
		if json.Unmarshal(data, &coded) == nil && coded.Code == "node_range" {
			he.Err = sling.ErrNodeRange
		}
		return he
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("%s %s: decoding %q: %w", method, target, data, err)
	}
	return nil
}
