package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"sling"
)

// Shard fragment endpoints: the wire form of sling.ShardBackend, which a
// scatter/gather router (internal/shard) drives on remote shard servers.
// They are registered whenever the backend implements ShardBackend (the
// in-memory and disk indexes do), alongside the ordinary query routes:
//
//	GET  /shard/fragment?u=U -> {"node":U,"keys":[...],"vals":[...],"dvals":[...]}
//	POST /shard/source       -> {"scores":[...]} ([lo,hi) slice, raw node order)
//	POST /shard/top          -> {"results":[{"node":V,"score":S},...]}
//
// Unlike the public query routes, shard endpoints always speak dense
// node IDs: the routing manifest is written in dense ID space, and the
// router is the only intended client. Scores cross the wire as raw JSON
// float64 numbers, which round-trip bitwise.

// denseNode parses a shard-endpoint node parameter as a dense ID,
// guarding the 32-bit narrowing exactly like denseID's label-free path.
func denseNode(q string) (sling.NodeID, error) {
	raw, err := strconv.ParseInt(q, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad node %q", q)
	}
	if raw < 0 || raw > math.MaxInt32 {
		return 0, fmt.Errorf("%w: node %d is not a valid node ID", sling.ErrNodeRange, raw)
	}
	return sling.NodeID(raw), nil
}

func (t *tenant) handleShardFragment(w http.ResponseWriter, r *http.Request) {
	u, err := denseNode(r.URL.Query().Get("u"))
	if err != nil {
		httpErrorFor(w, http.StatusBadRequest, err)
		return
	}
	if !t.allow(w, 1) {
		return
	}
	f, err := t.sb.Fragment(r.Context(), u)
	if err != nil {
		t.queryError(w, r, err)
		return
	}
	writeJSON(w, f)
}

// shardSliceReq is the POST /shard/source and /shard/top request body.
type shardSliceReq struct {
	Fragment *sling.Fragment `json:"fragment"`
	K        int             `json:"k"`
	Skip     int64           `json:"skip"`
	Lo       int             `json:"lo"`
	Hi       int             `json:"hi"`
}

func (t *tenant) shardSliceBody(w http.ResponseWriter, r *http.Request) (*shardSliceReq, bool) {
	var req shardSliceReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad shard request: %v", err))
		return nil, false
	}
	if req.Fragment == nil {
		httpError(w, http.StatusBadRequest, "missing fragment")
		return nil, false
	}
	return &req, true
}

func (t *tenant) handleShardSource(w http.ResponseWriter, r *http.Request) {
	req, ok := t.shardSliceBody(w, r)
	if !ok {
		return
	}
	if !t.allow(w, 1) {
		return
	}
	scores, err := t.sb.SourceSlice(r.Context(), req.Fragment, req.Lo, req.Hi)
	if err != nil {
		t.queryError(w, r, err)
		return
	}
	if scores == nil {
		scores = []float64{}
	}
	writeJSON(w, map[string]interface{}{"scores": scores})
}

func (t *tenant) handleShardTop(w http.ResponseWriter, r *http.Request) {
	req, ok := t.shardSliceBody(w, r)
	if !ok {
		return
	}
	if !t.allow(w, 1) {
		return
	}
	top, err := t.sb.TopSlice(r.Context(), req.Fragment, req.K, sling.NodeID(req.Skip), req.Lo, req.Hi)
	if err != nil {
		t.queryError(w, r, err)
		return
	}
	out := make([]ScoredNode, len(top))
	for i, e := range top {
		out[i] = ScoredNode{Node: int64(e.Node), Score: e.Score}
	}
	writeJSON(w, map[string]interface{}{"results": out})
}
