package server

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"sling"
	"sling/internal/rng"
)

// The /metrics exposition is a monitoring contract: dashboards and
// alerts reference instrument names and label sets by string. These
// golden tests pin the full name+kind set per server mode and the
// per-graph series identities in catalog mode, so a renamed or dropped
// instrument fails here instead of silently blanking a dashboard.

// serverInstruments is the mode-independent HTTP surface.
var serverInstruments = []string{
	MetricHTTPRequests + " counter",
	MetricHTTPErrors + " counter",
	MetricCanceledOps + " counter",
	MetricHTTPLatency + " histogram",
}

func sortedCopy(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}

func assertInstruments(t *testing.T, s *Server, extra []string) {
	t.Helper()
	want := sortedCopy(append(extra, serverInstruments...))
	got := sortedCopy(s.Registry().Names())
	if !reflect.DeepEqual(got, want) {
		t.Errorf("instrument set drifted:\n got %v\nwant %v", got, want)
	}
}

func TestMetricsGoldenPerMode(t *testing.T) {
	r := rng.New(9)
	n := 30
	b := sling.NewGraphBuilder(n)
	for i := 0; i < 150; i++ {
		b.AddEdge(sling.NodeID(r.Intn(n)), sling.NodeID(r.Intn(n)))
	}
	g := b.Build()
	ix, err := sling.Build(g, sling.WithEps(0.1), sling.WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("memory", func(t *testing.T) {
		s, err := New(ix, nil)
		if err != nil {
			t.Fatal(err)
		}
		assertInstruments(t, s, []string{
			MetricIndexBytes + " gauge",
			MetricIndexEntries + " gauge",
		})
	})

	t.Run("disk", func(t *testing.T) {
		path := t.TempDir() + "/ix.slix"
		if err := ix.Save(path); err != nil {
			t.Fatal(err)
		}
		di, err := sling.OpenDiskWithOptions(path, g, &sling.DiskOptions{CacheBytes: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { di.Close() })
		s, err := NewDisk(di, nil, Config{})
		if err != nil {
			t.Fatal(err)
		}
		assertInstruments(t, s, []string{
			MetricDiskCacheHits + " gauge",
			MetricDiskCacheMisses + " gauge",
			MetricDiskCacheEntryCount + " gauge",
			MetricDiskCacheBytes + " gauge",
			MetricDiskCacheMaxBytes + " gauge",
		})
	})

	t.Run("dynamic", func(t *testing.T) {
		dx, err := sling.NewDynamic(g, &sling.DynamicOptions{NumWalks: 32}, sling.WithEps(0.1), sling.WithSeed(13))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { dx.Close() })
		s, err := NewDynamic(dx, nil, Config{})
		if err != nil {
			t.Fatal(err)
		}
		assertInstruments(t, s, []string{
			MetricDynamicEpoch + " gauge",
			MetricDynamicStaleOps + " gauge",
			MetricDynamicTotalOps + " gauge",
			MetricDynamicRebuilds + " gauge",
			MetricDynamicAffected + " gauge",
			MetricDynamicRebuildBusy + " gauge",
			MetricDynamicEpochsFreed + " gauge",
		})
	})
}

func TestMetricsGoldenCatalog(t *testing.T) {
	s, cat, _ := catServer(t, 0)
	assertInstruments(t, s, []string{
		"sling_catalog_evictions_total counter",
		"sling_graph_throttled_total counter",
		"sling_graph_requests_total counter",
		"sling_graph_errors_total counter",
		"sling_graph_request_seconds histogram",
		"sling_catalog_graphs gauge",
		"sling_catalog_open_graphs gauge",
		"sling_catalog_resident_bytes gauge",
		"sling_catalog_budget_bytes gauge",
		"sling_graph_open gauge",
		"sling_graph_resident_bytes gauge",
		"sling_graph_epoch gauge",
	})

	// Every graph gets its labeled series registered up front — the
	// metric surface must not depend on traffic order.
	series := cat.Registry().SeriesLabels()
	for _, id := range []string{"mem", "disk", "dyn"} {
		for _, family := range []string{
			"sling_graph_requests_total",
			"sling_graph_throttled_total",
			"sling_graph_errors_total",
			"sling_graph_request_seconds",
			"sling_graph_open",
			"sling_graph_resident_bytes",
		} {
			want := family + `{graph="` + id + `"}`
			found := false
			for _, got := range series {
				if got == want {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("series %s missing", want)
			}
		}
	}

	// The exposition itself must carry HELP/TYPE headers for each family.
	var sb strings.Builder
	if err := s.Registry().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, family := range []string{"sling_graph_requests_total", "sling_http_requests_total", "sling_catalog_open_graphs"} {
		if !strings.Contains(out, "# TYPE "+family+" ") {
			t.Errorf("exposition missing TYPE line for %s", family)
		}
		if !strings.Contains(out, "# HELP "+family+" ") {
			t.Errorf("exposition missing HELP line for %s", family)
		}
	}
}
