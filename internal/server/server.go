// Package server exposes SLING indexes over HTTP with a small JSON API,
// the deployment shape a similarity service would actually run: build
// (or load) each index once, then serve single-pair, single-source,
// top-k and batched queries concurrently over pooled scratch.
//
// Every handler is written against the one sling.Querier interface, so
// an index can be fully in-memory (New), disk-resident (NewDisk,
// Section 5.4 of the paper), updatable (NewDynamic), or any future
// backend handed to NewQuerier: the query surface is identical, only
// the backend differs, and dynamic mode adds mutation endpoints.
//
// NewCatalog serves many graphs from one process through a
// catalog.Catalog: requests route by graph ID under /g/{id}/..., the
// catalog lazily opens backends, evicts least-recently-used graphs
// under a global memory budget, and enforces per-graph operation quotas
// (rejections answer 429 with a Retry-After header). The un-prefixed
// legacy paths keep working as aliases for the catalog's default graph,
// so a single-graph client needs no changes when the deployment grows
// multi-tenant.
//
// Request contexts are threaded into every query, so a client that
// disconnects mid-/batch stops burning CPU between per-source units;
// such aborts are logged, dropped without a response (nginx's 499
// convention), and counted in /stats as canceled_ops.
//
// Endpoints (each also under /g/{id}/ in catalog mode):
//
//	GET  /simrank?u=U&v=V          -> {"u":U,"v":V,"score":S}
//	GET  /source?u=U[&limit=L]     -> {"u":U,"scores":[{"node":V,"score":S},...]}
//	GET  /topk?u=U&k=K             -> {"u":U,"results":[{"node":V,"score":S},...]}
//	POST /batch                    -> {"results":[...]} (see batch.go)
//	POST /update                   -> dynamic backends only (see update.go)
//	POST /rebuild                  -> dynamic backends only (see update.go)
//	POST /snapshot                 -> durable dynamic backends only (see update.go)
//	GET  /stats                    -> index and graph statistics
//	GET  /metrics                  -> Prometheus text exposition
//	GET  /graphs                   -> catalog mode: the graph listing
//	GET  /healthz                  -> 200 ok
//
// Non-GET methods on the GET endpoints are rejected with 405 and an
// Allow header, mirroring what /batch does for non-POST.
//
// /source without a limit returns the full single-source score vector in
// node order. With limit=L it returns the L highest-scoring nodes (u
// itself included, typically first with s(u,u)=1) in descending score
// order, ties broken by ascending node ID — the same deterministic order
// /topk uses, selected with the same heap, not an arbitrary ID-order
// prefix of the vector. Score lists are always JSON arrays, never null.
//
// Node parameters use the graph's original labels when the graph has a
// label mapping, dense IDs otherwise. Node IDs the backend rejects
// (sling.ErrNodeRange) answer 400, like parse failures. Validation is
// the backend's: the server resolves labels and guards 32-bit
// narrowing, then lets the Querier reject out-of-range IDs, so the
// served node count is never cached outside the backend that owns it.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"sling"
	"sling/internal/catalog"
	"sling/internal/metrics"
)

// Config tunes a Server beyond its defaults.
type Config struct {
	// BatchWorkers bounds how many operations of one POST /batch request
	// run concurrently. Defaults to runtime.GOMAXPROCS(0).
	BatchWorkers int
	// MaxBatchOps caps the number of operations accepted in one POST
	// /batch request; larger requests are rejected with 413. Default 4096.
	// Catalog graphs may lower it per graph via their manifest entry.
	MaxBatchOps int
	// Registry receives the server's instruments. Defaults to a fresh
	// registry (catalog mode defaults to the catalog's).
	Registry *metrics.Registry
}

// DefaultMaxBatchOps is the default cap on operations per /batch request.
const DefaultMaxBatchOps = 4096

// Server instrument names, shared with the exposition golden test.
const (
	MetricHTTPRequests = "sling_http_requests_total"
	MetricHTTPErrors   = "sling_http_errors_total"
	MetricCanceledOps  = "sling_canceled_ops_total"
	MetricHTTPLatency  = "sling_http_request_seconds"
)

// Server routes HTTP queries to SLING indexes through the sling.Querier
// interface — one fixed backend in single-graph mode, a catalog of
// lazily opened backends in catalog mode. It is safe for concurrent
// use; the underlying indexes pool query scratch internally.
type Server struct {
	def *tenant          // single-graph mode; nil in catalog mode
	cat *catalog.Catalog // catalog mode; nil otherwise
	mux *http.ServeMux
	cfg Config
	reg *metrics.Registry

	// Typed instruments replacing the former ad-hoc counters: the
	// registry is the one source of truth, and /stats reads these values
	// instead of keeping parallel state.
	requests    *metrics.Counter
	httpErrors  *metrics.Counter
	canceledOps *metrics.Counter
	latency     *metrics.Histogram
}

// tenant is the serving view of one graph for one request: the backend,
// its label mapping, and (in catalog mode) the lease and quota handle.
// Single-graph servers build one tenant at construction; catalog
// servers build one per request around a catalog.Handle.
type tenant struct {
	s           *Server
	q           sling.Querier
	dyn         *sling.DynamicIndex    // non-nil for updatable backends
	sb          sling.ShardBackend     // non-nil when q serves shard fragments
	labels      []int64                // dense ID -> original label; nil = identity
	byLbl       map[int64]sling.NodeID // original label -> dense ID
	h           *catalog.Handle        // catalog mode only
	maxBatchOps int
}

// New creates a Server over a built in-memory index with a default
// Config. labels may be nil, in which case node parameters are dense IDs
// in [0, NumNodes).
func New(ix *sling.Index, labels []int64) (*Server, error) {
	return NewWithConfig(ix, labels, Config{})
}

// NewWithConfig is New with explicit tuning; zero Config fields take
// their defaults. Duplicate labels are rejected: a mapping that silently
// kept the last duplicate would route queries for the earlier node to
// the wrong one.
func NewWithConfig(ix *sling.Index, labels []int64, cfg Config) (*Server, error) {
	return newServer(ix, nil, labels, cfg)
}

// NewDisk creates a Server over a disk-resident index (Section 5.4):
// only O(n) metadata is memory-resident and queries read HP entries with
// positioned preads, through the index's pooled scratch and optional
// entry cache.
func NewDisk(di *sling.DiskIndex, labels []int64, cfg Config) (*Server, error) {
	return newServer(di, nil, labels, cfg)
}

// NewDynamic creates a Server over an updatable index. The query surface
// is the same as the other modes; additionally POST /update applies edge
// operations, POST /rebuild swaps in a freshly built epoch, POST
// /snapshot persists the state of a durable index, and /stats reports
// epoch, staleness-frontier, rebuild-state, and durability counters.
func NewDynamic(dx *sling.DynamicIndex, labels []int64, cfg Config) (*Server, error) {
	return newServer(dx, dx, labels, cfg)
}

// NewQuerier creates a Server over any sling.Querier — the constructor a
// future backend (sharded, replicated, remote) plugs into without the
// server growing a new mode. /stats reports the backend's QuerierMeta.
func NewQuerier(q sling.Querier, labels []int64, cfg Config) (*Server, error) {
	return newServer(q, nil, labels, cfg)
}

// fillDefaults normalizes a Config in place.
func (cfg *Config) fillDefaults() {
	if cfg.BatchWorkers <= 0 {
		cfg.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBatchOps <= 0 {
		cfg.MaxBatchOps = DefaultMaxBatchOps
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
}

// instruments registers the server-level instruments on s.reg.
func (s *Server) instruments() {
	s.requests = s.reg.Counter(MetricHTTPRequests, "HTTP requests served")
	s.httpErrors = s.reg.Counter(MetricHTTPErrors, "HTTP responses with status >= 400")
	s.canceledOps = s.reg.Counter(MetricCanceledOps, "operations dropped because the client abandoned the request")
	s.latency = s.reg.Histogram(MetricHTTPLatency, "HTTP request latency", nil)
}

// newTenant builds the fixed single-graph tenant, validating the label
// mapping.
func newTenant(s *Server, q sling.Querier, dyn *sling.DynamicIndex, labels []int64, maxBatchOps int) (*tenant, error) {
	t := &tenant{s: s, q: q, dyn: dyn, labels: labels, maxBatchOps: maxBatchOps}
	if sb, ok := q.(sling.ShardBackend); ok {
		t.sb = sb
	}
	if labels != nil {
		t.byLbl = make(map[int64]sling.NodeID, len(labels))
		for id, l := range labels {
			if dup, ok := t.byLbl[l]; ok {
				return nil, fmt.Errorf("server: duplicate label %d (nodes %d and %d)", l, dup, id)
			}
			t.byLbl[l] = sling.NodeID(id)
		}
	}
	return t, nil
}

func newServer(q sling.Querier, dyn *sling.DynamicIndex, labels []int64, cfg Config) (*Server, error) {
	cfg.fillDefaults()
	s := &Server{cfg: cfg, reg: cfg.Registry}
	s.instruments()
	registerBackendGauges(s.reg, q)
	t, err := newTenant(s, q, dyn, labels, cfg.MaxBatchOps)
	if err != nil {
		return nil, err
	}
	s.def = t

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/simrank", s.getOnly(s.fixed((*tenant).handleSimRank)))
	s.mux.HandleFunc("/source", s.getOnly(s.fixed((*tenant).handleSource)))
	s.mux.HandleFunc("/topk", s.getOnly(s.fixed((*tenant).handleTopK)))
	s.mux.HandleFunc("/batch", s.postOnly(s.fixed((*tenant).handleBatch)))
	s.mux.HandleFunc("/stats", s.getOnly(s.fixed((*tenant).handleStats)))
	if dyn != nil {
		s.mux.HandleFunc("/update", s.postOnly(s.fixed((*tenant).handleUpdate)))
		s.mux.HandleFunc("/rebuild", s.postOnly(s.fixed((*tenant).handleRebuild)))
		s.mux.HandleFunc("/snapshot", s.postOnly(s.fixed((*tenant).handleSnapshot)))
	}
	if t.sb != nil {
		s.mux.HandleFunc("/shard/fragment", s.getOnly(s.fixed((*tenant).handleShardFragment)))
		s.mux.HandleFunc("/shard/source", s.postOnly(s.fixed((*tenant).handleShardSource)))
		s.mux.HandleFunc("/shard/top", s.postOnly(s.fixed((*tenant).handleShardTop)))
	}
	s.commonRoutes()
	return s, nil
}

// fixed adapts a tenant handler to the single-graph tenant.
func (s *Server) fixed(h func(*tenant, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) { h(s.def, w, r) }
}

// commonRoutes registers the mode-independent endpoints.
func (s *Server) commonRoutes() {
	s.mux.Handle("/metrics", s.getOnly(s.reg.Handler().ServeHTTP))
	s.mux.HandleFunc("/healthz", s.getOnly(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	}))
}

// getOnly wraps a handler to reject non-GET/HEAD methods with 405 and an
// Allow header, like /batch does for non-POST.
func (s *Server) getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		h(w, r)
	}
}

// postOnly is getOnly's POST counterpart, shared by /batch, /update, and
// /rebuild.
func (s *Server) postOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		h(w, r)
	}
}

// statusWriter captures the response status for the error counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler, recording the server-level request
// count, latency, and error count around the routed handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	start := time.Now()
	s.mux.ServeHTTP(sw, r)
	s.latency.ObserveSince(start)
	if sw.code >= 400 {
		s.httpErrors.Inc()
	}
}

// Registry returns the server's metrics registry (the catalog's in
// catalog mode), the same instruments GET /metrics exposes.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// label converts a dense ID back to the external label.
func (t *tenant) label(id sling.NodeID) int64 {
	if t.labels == nil {
		return int64(id)
	}
	return t.labels[id]
}

// denseID resolves a parsed int64 node parameter to a dense NodeID:
// label-map lookup when the graph has one, 32-bit narrowing otherwise.
// Range validation belongs to the Querier — every backend rejects
// out-of-range IDs with sling.ErrNodeRange and the error paths map that
// to 400 — but the narrowing guard must stay here: NodeID is 32-bit, so
// an unchecked int64 like 2^32+5 would silently truncate to a
// valid-looking node before the backend could reject it.
func (t *tenant) denseID(raw int64) (sling.NodeID, error) {
	if t.byLbl != nil {
		id, ok := t.byLbl[raw]
		if !ok {
			return 0, fmt.Errorf("%w: node %d not in graph", sling.ErrNodeRange, raw)
		}
		return id, nil
	}
	if raw < 0 || raw > math.MaxInt32 {
		return 0, fmt.Errorf("%w: node %d is not a valid node ID", sling.ErrNodeRange, raw)
	}
	return sling.NodeID(raw), nil
}

// node parses a node parameter into a dense ID.
func (t *tenant) node(q string) (sling.NodeID, error) {
	raw, err := strconv.ParseInt(q, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad node %q", q)
	}
	return t.denseID(raw)
}

// allow charges n operations against the tenant's quota (catalog mode
// only) and counts them as served. On rejection it writes the 429 with
// a Retry-After header and reports false.
func (t *tenant) allow(w http.ResponseWriter, n int) bool {
	if t.h == nil {
		return true
	}
	if err := t.h.AllowOps(n); err != nil {
		var te *catalog.ThrottleError
		if errors.As(err, &te) {
			secs := int(math.Ceil(te.RetryAfter.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		httpError(w, http.StatusTooManyRequests, err.Error())
		return false
	}
	t.h.CountOps(n)
	return true
}

// queryError maps a Querier error to the HTTP response: a cancelled
// request is logged, counted, and dropped without a response (the
// client is gone — nginx's 499); a deadline expiry answers 504 (the
// client may still be connected behind a server-side timeout, so it
// must not see a bogus empty 200); node-range errors answer 400 like
// parameter parse failures; anything else is a 500.
func (t *tenant) queryError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		t.s.canceledOps.Inc()
		log.Printf("server: %s %s abandoned mid-query (%v)", r.Method, r.URL.Path, err)
	case errors.Is(err, context.DeadlineExceeded):
		t.s.canceledOps.Inc()
		httpError(w, http.StatusGatewayTimeout, err.Error())
	case errors.Is(err, sling.ErrNodeRange):
		httpErrorFor(w, http.StatusBadRequest, err)
	default:
		if t.h != nil {
			t.h.CountError()
		}
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// httpErrorFor is httpError with a machine-readable "code" field for
// errors clients dispatch on: node-range failures carry "node_range", so
// an HTTP client can reconstruct sling.ErrNodeRange without parsing the
// message.
func httpErrorFor(w http.ResponseWriter, status int, err error) {
	body := map[string]string{"error": err.Error()}
	if errors.Is(err, sling.ErrNodeRange) {
		body["code"] = "node_range"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for an HTTP error; the connection is likely gone.
		return
	}
}

// ScoredNode is one (node, score) result in JSON responses.
type ScoredNode struct {
	Node  int64   `json:"node"`
	Score float64 `json:"score"`
}

func (t *tenant) handleSimRank(w http.ResponseWriter, r *http.Request) {
	u, err := t.node(r.URL.Query().Get("u"))
	if err != nil {
		httpErrorFor(w, http.StatusBadRequest, err)
		return
	}
	v, err := t.node(r.URL.Query().Get("v"))
	if err != nil {
		httpErrorFor(w, http.StatusBadRequest, err)
		return
	}
	if !t.allow(w, 1) {
		return
	}
	score, err := t.q.SimRank(r.Context(), u, v)
	if err != nil {
		t.queryError(w, r, err)
		return
	}
	writeJSON(w, map[string]interface{}{
		"u":     t.label(u),
		"v":     t.label(v),
		"score": score,
	})
}

func (t *tenant) handleSource(w http.ResponseWriter, r *http.Request) {
	u, err := t.node(r.URL.Query().Get("u"))
	if err != nil {
		httpErrorFor(w, http.StatusBadRequest, err)
		return
	}
	limit := -1
	if raw := r.URL.Query().Get("limit"); raw != "" {
		l, err := strconv.Atoi(raw)
		if err != nil || l < 0 {
			httpError(w, http.StatusBadRequest, "bad limit")
			return
		}
		limit = l
	}
	if !t.allow(w, 1) {
		return
	}
	scores, err := t.sourceScores(r.Context(), u, limit)
	if err != nil {
		t.queryError(w, r, err)
		return
	}
	writeJSON(w, map[string]interface{}{"u": t.label(u), "scores": scores})
}

// sourceScores computes the /source payload: the full score vector in
// node order when limit is negative, otherwise the limit highest-scoring
// nodes in descending score order (ties by ascending node ID), selected
// with the size-limit heap rather than a full sort. The result is never
// nil, so it always encodes as a JSON array.
func (t *tenant) sourceScores(ctx context.Context, u sling.NodeID, limit int) ([]ScoredNode, error) {
	if limit < 0 {
		scores, err := t.q.SingleSource(ctx, u, nil)
		if err != nil {
			return nil, err
		}
		out := make([]ScoredNode, len(scores))
		for v, sc := range scores {
			out[v] = ScoredNode{Node: t.label(sling.NodeID(v)), Score: sc}
		}
		return out, nil
	}
	top, err := t.q.SourceTop(ctx, u, limit)
	if err != nil {
		return nil, err
	}
	return t.scored(top), nil
}

// scored converts top-k results to response entries in external labels.
// The result is never nil (a nil slice would encode as JSON null).
func (t *tenant) scored(top []sling.Scored) []ScoredNode {
	out := make([]ScoredNode, len(top))
	for i, e := range top {
		out[i] = ScoredNode{Node: t.label(e.Node), Score: e.Score}
	}
	return out
}

func (t *tenant) handleTopK(w http.ResponseWriter, r *http.Request) {
	u, err := t.node(r.URL.Query().Get("u"))
	if err != nil {
		httpErrorFor(w, http.StatusBadRequest, err)
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		k, err = strconv.Atoi(raw)
		if err != nil || k < 1 {
			httpError(w, http.StatusBadRequest, "bad k")
			return
		}
	}
	if !t.allow(w, 1) {
		return
	}
	top, err := t.q.TopK(r.Context(), u, k)
	if err != nil {
		t.queryError(w, r, err)
		return
	}
	writeJSON(w, map[string]interface{}{"u": t.label(u), "results": t.scored(top)})
}

func (t *tenant) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, statsView(t.q, t.s.canceledOps.Value()))
}
