// Package server exposes a SLING index over HTTP with a small JSON API,
// the deployment shape a similarity service would actually run: build (or
// load) the index once, then serve single-pair, single-source, top-k and
// batched queries concurrently over pooled scratch.
//
// Every handler is written against the one sling.Querier interface, so
// the index can be fully in-memory (New), disk-resident (NewDisk,
// Section 5.4 of the paper), updatable (NewDynamic), or any future
// backend handed to NewQuerier: the query surface is identical, only the
// backend differs, and dynamic mode adds mutation endpoints. Request
// contexts are threaded into every query, so a client that disconnects
// mid-/batch stops burning CPU between per-source units; such aborts are
// logged, dropped without a response (nginx's 499 convention), and
// counted in /stats as canceled_ops.
//
// Endpoints:
//
//	GET  /simrank?u=U&v=V          -> {"u":U,"v":V,"score":S}
//	GET  /source?u=U[&limit=L]     -> {"u":U,"scores":[{"node":V,"score":S},...]}
//	GET  /topk?u=U&k=K             -> {"u":U,"results":[{"node":V,"score":S},...]}
//	POST /batch                    -> {"results":[...]} (see batch.go)
//	POST /update                   -> dynamic mode only (see update.go)
//	POST /rebuild                  -> dynamic mode only (see update.go)
//	GET  /stats                    -> index and graph statistics
//	GET  /healthz                  -> 200 ok
//
// Non-GET methods on the GET endpoints are rejected with 405 and an
// Allow header, mirroring what /batch does for non-POST.
//
// /source without a limit returns the full single-source score vector in
// node order. With limit=L it returns the L highest-scoring nodes (u
// itself included, typically first with s(u,u)=1) in descending score
// order, ties broken by ascending node ID — the same deterministic order
// /topk uses, selected with the same heap, not an arbitrary ID-order
// prefix of the vector. Score lists are always JSON arrays, never null.
//
// Node parameters use the graph's original labels when the server is
// constructed with a label mapping, dense IDs otherwise. Node IDs the
// backend rejects (sling.ErrNodeRange) answer 400, like parse failures.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"

	"sling"
)

// Config tunes a Server beyond its defaults.
type Config struct {
	// BatchWorkers bounds how many operations of one POST /batch request
	// run concurrently. Defaults to runtime.GOMAXPROCS(0).
	BatchWorkers int
	// MaxBatchOps caps the number of operations accepted in one POST
	// /batch request; larger requests are rejected with 413. Default 4096.
	MaxBatchOps int
}

// DefaultMaxBatchOps is the default cap on operations per /batch request.
const DefaultMaxBatchOps = 4096

// Server routes HTTP queries to a SLING index through the sling.Querier
// interface. It is safe for concurrent use; the underlying index pools
// query scratch internally.
type Server struct {
	q      sling.Querier
	stats  func() map[string]interface{}
	dyn    *sling.DynamicIndex    // non-nil in dynamic mode only
	nodes  int                    // served node count (fixed for the server's lifetime)
	labels []int64                // dense ID -> original label; nil = identity
	byLbl  map[int64]sling.NodeID // original label -> dense ID
	mux    *http.ServeMux
	cfg    Config

	// canceledOps counts operations dropped because the client abandoned
	// the request (context cancelled mid-query or mid-batch).
	canceledOps atomic.Uint64
}

// New creates a Server over a built in-memory index with a default
// Config. labels may be nil, in which case node parameters are dense IDs
// in [0, NumNodes).
func New(ix *sling.Index, labels []int64) (*Server, error) {
	return NewWithConfig(ix, labels, Config{})
}

// NewWithConfig is New with explicit tuning; zero Config fields take
// their defaults. Duplicate labels are rejected: a mapping that silently
// kept the last duplicate would route queries for the earlier node to
// the wrong one.
func NewWithConfig(ix *sling.Index, labels []int64, cfg Config) (*Server, error) {
	return newServer(ix, memStats(ix), labels, cfg)
}

// NewDisk creates a Server over a disk-resident index (Section 5.4):
// only O(n) metadata is memory-resident and queries read HP entries with
// positioned preads, through the index's pooled scratch and optional
// entry cache.
func NewDisk(di *sling.DiskIndex, labels []int64, cfg Config) (*Server, error) {
	return newServer(di, diskStats(di), labels, cfg)
}

// NewDynamic creates a Server over an updatable index. The query surface
// is the same as the other modes; additionally POST /update applies edge
// operations, POST /rebuild swaps in a freshly built epoch, and /stats
// reports epoch, staleness-frontier, and rebuild-state counters.
func NewDynamic(dx *sling.DynamicIndex, labels []int64, cfg Config) (*Server, error) {
	s, err := newServer(dx, dynStats(dx), labels, cfg)
	if err != nil {
		return nil, err
	}
	s.dyn = dx
	s.mux.HandleFunc("/update", s.postOnly(s.handleUpdate))
	s.mux.HandleFunc("/rebuild", s.postOnly(s.handleRebuild))
	return s, nil
}

// NewQuerier creates a Server over any sling.Querier — the constructor a
// future backend (sharded, replicated, remote) plugs into without the
// server growing a new mode. /stats reports the backend's QuerierMeta.
func NewQuerier(q sling.Querier, labels []int64, cfg Config) (*Server, error) {
	return newServer(q, querierStats(q), labels, cfg)
}

func newServer(q sling.Querier, stats func() map[string]interface{}, labels []int64, cfg Config) (*Server, error) {
	if cfg.BatchWorkers <= 0 {
		cfg.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBatchOps <= 0 {
		cfg.MaxBatchOps = DefaultMaxBatchOps
	}
	// Cache the node count: the node set is fixed for every backend
	// (the dynamic layer mutates edges, never nodes), and Meta() on the
	// dynamic backend costs epoch acquisitions — too much for a check
	// that runs per node parameter.
	s := &Server{q: q, stats: stats, nodes: q.Meta().Nodes, labels: labels, cfg: cfg}
	if labels != nil {
		s.byLbl = make(map[int64]sling.NodeID, len(labels))
		for id, l := range labels {
			if dup, ok := s.byLbl[l]; ok {
				return nil, fmt.Errorf("server: duplicate label %d (nodes %d and %d)", l, dup, id)
			}
			s.byLbl[l] = sling.NodeID(id)
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/simrank", s.getOnly(s.handleSimRank))
	s.mux.HandleFunc("/source", s.getOnly(s.handleSource))
	s.mux.HandleFunc("/topk", s.getOnly(s.handleTopK))
	s.mux.HandleFunc("/batch", s.postOnly(s.handleBatch))
	s.mux.HandleFunc("/stats", s.getOnly(s.handleStats))
	s.mux.HandleFunc("/healthz", s.getOnly(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	}))
	return s, nil
}

// getOnly wraps a handler to reject non-GET/HEAD methods with 405 and an
// Allow header, like /batch does for non-POST.
func (s *Server) getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		h(w, r)
	}
}

// postOnly is getOnly's POST counterpart, shared by /batch, /update, and
// /rebuild.
func (s *Server) postOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		h(w, r)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// label converts a dense ID back to the external label.
func (s *Server) label(id sling.NodeID) int64 {
	if s.labels == nil {
		return int64(id)
	}
	return s.labels[id]
}

// numNodes is the served node count, cached at construction.
func (s *Server) numNodes() int { return s.nodes }

// denseID resolves a parsed int64 node parameter to a dense NodeID:
// label-map lookup when the server has one, range-checked narrowing
// otherwise. The range check must stay here even though every Querier
// validates node IDs — NodeID is 32-bit, so an unchecked int64 like
// 2^32+5 would silently truncate to a valid-looking node before the
// backend could reject it.
func (s *Server) denseID(raw int64) (sling.NodeID, error) {
	if s.byLbl != nil {
		id, ok := s.byLbl[raw]
		if !ok {
			return 0, fmt.Errorf("%w: node %d not in graph", sling.ErrNodeRange, raw)
		}
		return id, nil
	}
	if raw < 0 || raw >= int64(s.numNodes()) {
		return 0, fmt.Errorf("%w: node %d not in [0,%d)", sling.ErrNodeRange, raw, s.numNodes())
	}
	return sling.NodeID(raw), nil
}

// node parses a node parameter into a dense ID.
func (s *Server) node(q string) (sling.NodeID, error) {
	raw, err := strconv.ParseInt(q, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad node %q", q)
	}
	return s.denseID(raw)
}

// queryError maps a Querier error to the HTTP response: a cancelled
// request is logged, counted, and dropped without a response (the
// client is gone — nginx's 499); a deadline expiry answers 504 (the
// client may still be connected behind a server-side timeout, so it
// must not see a bogus empty 200); node-range errors answer 400 like
// parameter parse failures; anything else is a 500.
func (s *Server) queryError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		s.canceledOps.Add(1)
		log.Printf("server: %s %s abandoned mid-query (%v)", r.Method, r.URL.Path, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.canceledOps.Add(1)
		httpError(w, http.StatusGatewayTimeout, err.Error())
	case errors.Is(err, sling.ErrNodeRange):
		httpErrorFor(w, http.StatusBadRequest, err)
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// httpErrorFor is httpError with a machine-readable "code" field for
// errors clients dispatch on: node-range failures carry "node_range", so
// an HTTP client can reconstruct sling.ErrNodeRange without parsing the
// message.
func httpErrorFor(w http.ResponseWriter, status int, err error) {
	body := map[string]string{"error": err.Error()}
	if errors.Is(err, sling.ErrNodeRange) {
		body["code"] = "node_range"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for an HTTP error; the connection is likely gone.
		return
	}
}

// ScoredNode is one (node, score) result in JSON responses.
type ScoredNode struct {
	Node  int64   `json:"node"`
	Score float64 `json:"score"`
}

func (s *Server) handleSimRank(w http.ResponseWriter, r *http.Request) {
	u, err := s.node(r.URL.Query().Get("u"))
	if err != nil {
		httpErrorFor(w, http.StatusBadRequest, err)
		return
	}
	v, err := s.node(r.URL.Query().Get("v"))
	if err != nil {
		httpErrorFor(w, http.StatusBadRequest, err)
		return
	}
	score, err := s.q.SimRank(r.Context(), u, v)
	if err != nil {
		s.queryError(w, r, err)
		return
	}
	writeJSON(w, map[string]interface{}{
		"u":     s.label(u),
		"v":     s.label(v),
		"score": score,
	})
}

func (s *Server) handleSource(w http.ResponseWriter, r *http.Request) {
	u, err := s.node(r.URL.Query().Get("u"))
	if err != nil {
		httpErrorFor(w, http.StatusBadRequest, err)
		return
	}
	limit := -1
	if raw := r.URL.Query().Get("limit"); raw != "" {
		l, err := strconv.Atoi(raw)
		if err != nil || l < 0 {
			httpError(w, http.StatusBadRequest, "bad limit")
			return
		}
		limit = l
	}
	scores, err := s.sourceScores(r.Context(), u, limit)
	if err != nil {
		s.queryError(w, r, err)
		return
	}
	writeJSON(w, map[string]interface{}{"u": s.label(u), "scores": scores})
}

// sourceScores computes the /source payload: the full score vector in
// node order when limit is negative, otherwise the limit highest-scoring
// nodes in descending score order (ties by ascending node ID), selected
// with the size-limit heap rather than a full sort. The result is never
// nil, so it always encodes as a JSON array.
func (s *Server) sourceScores(ctx context.Context, u sling.NodeID, limit int) ([]ScoredNode, error) {
	if limit < 0 {
		scores, err := s.q.SingleSource(ctx, u, nil)
		if err != nil {
			return nil, err
		}
		out := make([]ScoredNode, len(scores))
		for v, sc := range scores {
			out[v] = ScoredNode{Node: s.label(sling.NodeID(v)), Score: sc}
		}
		return out, nil
	}
	top, err := s.q.SourceTop(ctx, u, limit)
	if err != nil {
		return nil, err
	}
	return s.scored(top), nil
}

// scored converts top-k results to response entries in external labels.
// The result is never nil (a nil slice would encode as JSON null).
func (s *Server) scored(top []sling.Scored) []ScoredNode {
	out := make([]ScoredNode, len(top))
	for i, t := range top {
		out[i] = ScoredNode{Node: s.label(t.Node), Score: t.Score}
	}
	return out
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	u, err := s.node(r.URL.Query().Get("u"))
	if err != nil {
		httpErrorFor(w, http.StatusBadRequest, err)
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		k, err = strconv.Atoi(raw)
		if err != nil || k < 1 {
			httpError(w, http.StatusBadRequest, "bad k")
			return
		}
	}
	top, err := s.q.TopK(r.Context(), u, k)
	if err != nil {
		s.queryError(w, r, err)
		return
	}
	writeJSON(w, map[string]interface{}{"u": s.label(u), "results": s.scored(top)})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.stats()
	st["canceled_ops"] = s.canceledOps.Load()
	writeJSON(w, st)
}
