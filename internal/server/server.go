// Package server exposes a SLING index over HTTP with a small JSON API,
// the deployment shape a similarity service would actually run: build (or
// load) the index once, then serve single-pair, single-source, top-k and
// batched queries concurrently over pooled scratch.
//
// Endpoints:
//
//	GET  /simrank?u=U&v=V          -> {"u":U,"v":V,"score":S}
//	GET  /source?u=U[&limit=L]     -> {"u":U,"scores":[{"node":V,"score":S},...]}
//	GET  /topk?u=U&k=K             -> {"u":U,"results":[{"node":V,"score":S},...]}
//	POST /batch                    -> {"results":[...]} (see batch.go)
//	GET  /stats                    -> index and graph statistics
//	GET  /healthz                  -> 200 ok
//
// /source without a limit returns the full single-source score vector in
// node order. With limit=L it returns the L highest-scoring nodes (u
// itself included, typically first with s(u,u)=1) in descending score
// order, ties broken by ascending node ID — the same deterministic order
// /topk uses, selected with the same heap, not an arbitrary ID-order
// prefix of the vector.
//
// Node parameters use the graph's original labels when the server is
// constructed with a label mapping, dense IDs otherwise.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"

	"sling"
)

// Config tunes a Server beyond its defaults.
type Config struct {
	// BatchWorkers bounds how many operations of one POST /batch request
	// run concurrently. Defaults to runtime.GOMAXPROCS(0).
	BatchWorkers int
	// MaxBatchOps caps the number of operations accepted in one POST
	// /batch request; larger requests are rejected with 413. Default 4096.
	MaxBatchOps int
}

// DefaultMaxBatchOps is the default cap on operations per /batch request.
const DefaultMaxBatchOps = 4096

// Server routes HTTP queries to a SLING index. It is safe for concurrent
// use; the underlying index pools query scratch internally.
type Server struct {
	ix     *sling.Index
	labels []int64                // dense ID -> original label; nil = identity
	byLbl  map[int64]sling.NodeID // original label -> dense ID
	mux    *http.ServeMux
	cfg    Config
}

// New creates a Server over a built index with a default Config. labels
// may be nil, in which case node parameters are dense IDs in
// [0, NumNodes).
func New(ix *sling.Index, labels []int64) *Server {
	return NewWithConfig(ix, labels, Config{})
}

// NewWithConfig is New with explicit tuning; zero Config fields take
// their defaults.
func NewWithConfig(ix *sling.Index, labels []int64, cfg Config) *Server {
	if cfg.BatchWorkers <= 0 {
		cfg.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBatchOps <= 0 {
		cfg.MaxBatchOps = DefaultMaxBatchOps
	}
	s := &Server{ix: ix, labels: labels, cfg: cfg}
	if labels != nil {
		s.byLbl = make(map[int64]sling.NodeID, len(labels))
		for id, l := range labels {
			s.byLbl[l] = sling.NodeID(id)
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/simrank", s.handleSimRank)
	s.mux.HandleFunc("/source", s.handleSource)
	s.mux.HandleFunc("/topk", s.handleTopK)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// label converts a dense ID back to the external label.
func (s *Server) label(id sling.NodeID) int64 {
	if s.labels == nil {
		return int64(id)
	}
	return s.labels[id]
}

// node parses a node parameter into a dense ID.
func (s *Server) node(q string) (sling.NodeID, error) {
	raw, err := strconv.ParseInt(q, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad node %q", q)
	}
	if s.byLbl != nil {
		id, ok := s.byLbl[raw]
		if !ok {
			return 0, fmt.Errorf("node %d not in graph", raw)
		}
		return id, nil
	}
	if raw < 0 || raw >= int64(s.ix.Graph().NumNodes()) {
		return 0, fmt.Errorf("node %d out of range [0,%d)", raw, s.ix.Graph().NumNodes())
	}
	return sling.NodeID(raw), nil
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for an HTTP error; the connection is likely gone.
		return
	}
}

// ScoredNode is one (node, score) result in JSON responses.
type ScoredNode struct {
	Node  int64   `json:"node"`
	Score float64 `json:"score"`
}

func (s *Server) handleSimRank(w http.ResponseWriter, r *http.Request) {
	u, err := s.node(r.URL.Query().Get("u"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	v, err := s.node(r.URL.Query().Get("v"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, map[string]interface{}{
		"u":     s.label(u),
		"v":     s.label(v),
		"score": s.ix.SimRank(u, v),
	})
}

func (s *Server) handleSource(w http.ResponseWriter, r *http.Request) {
	u, err := s.node(r.URL.Query().Get("u"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	limit := -1
	if raw := r.URL.Query().Get("limit"); raw != "" {
		l, err := strconv.Atoi(raw)
		if err != nil || l < 0 {
			httpError(w, http.StatusBadRequest, "bad limit")
			return
		}
		limit = l
	}
	writeJSON(w, map[string]interface{}{"u": s.label(u), "scores": s.sourceScores(u, limit)})
}

// sourceScores computes the /source payload: the full score vector in
// node order when limit is negative, otherwise the limit highest-scoring
// nodes in descending score order (ties by ascending node ID), selected
// with the size-limit heap rather than a full sort.
func (s *Server) sourceScores(u sling.NodeID, limit int) []ScoredNode {
	if limit < 0 {
		scores := s.ix.SingleSource(u, nil)
		out := make([]ScoredNode, len(scores))
		for v, sc := range scores {
			out[v] = ScoredNode{Node: s.label(sling.NodeID(v)), Score: sc}
		}
		return out
	}
	return s.scored(s.ix.SourceTop(u, limit))
}

// scored converts top-k results to response entries in external labels.
func (s *Server) scored(top []sling.Scored) []ScoredNode {
	out := make([]ScoredNode, len(top))
	for i, t := range top {
		out[i] = ScoredNode{Node: s.label(t.Node), Score: t.Score}
	}
	return out
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	u, err := s.node(r.URL.Query().Get("u"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		k, err = strconv.Atoi(raw)
		if err != nil || k < 1 {
			httpError(w, http.StatusBadRequest, "bad k")
			return
		}
	}
	writeJSON(w, map[string]interface{}{"u": s.label(u), "results": s.scored(s.ix.TopK(u, k))})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.ix.Stats()
	g := s.ix.Graph()
	writeJSON(w, map[string]interface{}{
		"nodes":        g.NumNodes(),
		"edges":        g.NumEdges(),
		"entries":      st.Entries,
		"avg_entries":  st.AvgEntries,
		"max_entries":  st.MaxEntries,
		"index_bytes":  st.Bytes,
		"graph_bytes":  g.Bytes(),
		"error_bound":  s.ix.ErrorBound(),
		"decay_factor": s.ix.C(),
	})
}
