package server

import (
	"net/http"
	"sync"
	"testing"

	"sling"
	"sling/internal/catalog"
	"sling/internal/rng"
)

// Two racing rebuilds must each report the epoch their own swap
// produced — distinct, consecutive numbers — not both the later one.
func TestRacingRebuildsReportDistinctEpochs(t *testing.T) {
	s, _ := dynServer(t, nil)
	if rec, _ := post(t, s, "/update", `[{"op":"add","from":0,"to":39}]`); rec.Code != http.StatusOK {
		t.Fatalf("seed update status %d", rec.Code)
	}
	epochs := make([]float64, 2)
	var wg sync.WaitGroup
	for i := range epochs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, body := post(t, s, "/rebuild", "")
			if rec.Code != http.StatusOK {
				t.Errorf("rebuild %d status %d: %s", i, rec.Code, rec.Body.String())
				return
			}
			epochs[i] = body["epoch"].(float64)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	lo, hi := epochs[0], epochs[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo != 2 || hi != 3 {
		t.Fatalf("racing rebuilds reported epochs %v and %v, want 2 and 3", epochs[0], epochs[1])
	}
}

// Per-op /update error entries must carry the request's from/to when
// present, so clients can correlate failures without positions.
func TestUpdateErrorEntriesKeepLabels(t *testing.T) {
	s, _ := dynServer(t, nil)
	rec, body := post(t, s, "/update", `[
		{"op":"zap","from":3,"to":4},
		{"op":"add","from":99,"to":1},
		{"op":"add","from":2,"to":99},
		{"op":"add","from":5},
		{"op":"zap"}
	]`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	results := body["results"].([]interface{})
	checks := []struct {
		from, to interface{} // expected label values, nil = absent
	}{
		{3.0, 4.0},  // unknown op keeps both labels
		{99.0, 1.0}, // bad from keeps both
		{2.0, 99.0}, // bad to keeps both
		{5.0, nil},  // missing to stays absent
		{nil, nil},  // nothing to echo
	}
	for i, want := range checks {
		entry := results[i].(map[string]interface{})
		if entry["error"] == nil {
			t.Fatalf("result %d not an error entry: %v", i, entry)
		}
		if got, ok := entry["from"]; want.from == nil && ok {
			t.Errorf("result %d: unexpected from = %v", i, got)
		} else if want.from != nil && got != want.from {
			t.Errorf("result %d: from = %v, want %v", i, got, want.from)
		}
		if got, ok := entry["to"]; want.to == nil && ok {
			t.Errorf("result %d: unexpected to = %v", i, got)
		} else if want.to != nil && got != want.to {
			t.Errorf("result %d: to = %v, want %v", i, got, want.to)
		}
	}
	if body["applied"].(float64) != 0 {
		t.Fatalf("applied = %v, want 0", body["applied"])
	}
}

// The /update quota charges only ops that survive label resolution:
// requests full of doomed ops cost no tokens, and the 429 boundary sits
// exactly at the surviving-op count.
func TestUpdateQuotaChargesSurvivors(t *testing.T) {
	dir := t.TempDir()
	dynPath := writeEdgeList(t, dir, "dyn.txt", 20, 60, 9)
	m := catalog.Manifest{Graphs: []catalog.GraphSpec{{
		ID: "dyn", Graph: dynPath, Mode: "dynamic",
		Eps: 0.15, Seed: 3, Walks: 16,
		MaxQPS: 1, // burst derives to 1 token
	}}}
	cat, err := catalog.New(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	s, err := NewCatalog(cat, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// All-failing batches never debit the bucket, no matter how many.
	for i := 0; i < 5; i++ {
		rec, _ := post(t, s, "/g/dyn/update", `[{"op":"add","from":99,"to":1},{"op":"zap","from":0,"to":1}]`)
		if rec.Code != http.StatusOK {
			t.Fatalf("all-failing batch %d status %d, want 200 (no quota charge)", i, rec.Code)
		}
	}
	// A mixed batch costs exactly its one survivor: it fits the 1-token
	// bucket even alongside two doomed ops.
	rec, body := post(t, s, "/g/dyn/update", `[
		{"op":"add","from":99,"to":1},
		{"op":"add","from":0,"to":7},
		{"op":"zap","from":1,"to":2}
	]`)
	if rec.Code != http.StatusOK {
		t.Fatalf("mixed batch status %d, want 200: %s", rec.Code, rec.Body.String())
	}
	if body["applied"].(float64) != 1 {
		t.Fatalf("applied = %v, want 1", body["applied"])
	}
	// The bucket is now empty: the next surviving op is over quota.
	rec, _ = post(t, s, "/g/dyn/update", `[{"op":"remove","from":0,"to":7}]`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota update status %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q", ra)
	}
	// Doomed ops still pass while the bucket is empty.
	if rec, _ := post(t, s, "/g/dyn/update", `[{"op":"zap","from":1,"to":2}]`); rec.Code != http.StatusOK {
		t.Fatalf("all-failing batch while throttled status %d, want 200", rec.Code)
	}
}

// POST /snapshot checkpoints a durably backed graph and answers the
// covered LSN; graphs without durable storage answer 409, non-dynamic
// backends 404.
func TestSnapshotEndpoint(t *testing.T) {
	// Non-durable dynamic graph: 409.
	s, _ := dynServer(t, nil)
	if rec, _ := post(t, s, "/snapshot", ""); rec.Code != http.StatusConflict {
		t.Fatalf("snapshot of non-durable graph status %d, want 409", rec.Code)
	}

	// Durable dynamic graph: the snapshot covers every journaled op.
	r := rng.New(15)
	n := 20
	b := sling.NewGraphBuilder(n)
	for i := 0; i < 80; i++ {
		b.AddEdge(sling.NodeID(r.Intn(n)), sling.NodeID(r.Intn(n)))
	}
	dx, err := sling.NewDynamic(b.Build(),
		&sling.DynamicOptions{NumWalks: 32, DurableDir: t.TempDir(), DurableNoSync: true},
		sling.WithEps(0.1), sling.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dx.Close() })
	sd, err := NewDynamic(dx, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rec, _ := post(t, sd, "/update", `[{"op":"add","from":0,"to":9}]`); rec.Code != http.StatusOK {
		t.Fatalf("update status %d", rec.Code)
	}
	rec, body := post(t, sd, "/snapshot", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", rec.Code, rec.Body.String())
	}
	if body["lsn"].(float64) < 1 {
		t.Fatalf("snapshot lsn = %v, want >= 1", body["lsn"])
	}
	if body["took_ms"] == nil {
		t.Fatal("snapshot response missing took_ms")
	}
	_, st := get(t, sd, "/stats")
	dur := st["durable"].(map[string]interface{})
	if dur["last_snapshot_lsn"] != body["lsn"] {
		t.Fatalf("stats last_snapshot_lsn = %v, snapshot answered %v", dur["last_snapshot_lsn"], body["lsn"])
	}

	// Catalog routing: snapshot of a memory graph is 404 like the other
	// mutation endpoints.
	cs, _, _ := catServer(t, 0)
	if rec, _ := post(t, cs, "/g/mem/snapshot", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("snapshot on memory graph status %d, want 404", rec.Code)
	}
	if rec, _ := post(t, cs, "/g/dyn/snapshot", ""); rec.Code != http.StatusConflict {
		t.Fatalf("snapshot on non-durable dynamic graph status %d, want 409", rec.Code)
	}
}
