package server

import (
	"context"
	"errors"
	"log"
	"net/http"
	"time"

	"sling/internal/catalog"
)

// Catalog mode: one Server fronting a catalog.Catalog of graphs.
//
//	GET  /g/{id}/simrank, /source, /topk    per-graph queries
//	POST /g/{id}/batch, /update, /rebuild   per-graph mutations & batches
//	GET  /g/{id}/stats                      the graph's backend stats
//	GET  /graphs                            the catalog listing
//	GET  /stats                             the catalog summary
//
// The un-prefixed legacy paths (/simrank, /batch, ...) alias the
// catalog's default graph, so single-graph clients keep working
// unchanged. Every request acquires a refcounted catalog handle for the
// routed graph — lazily opening its backend on first use — runs the
// ordinary tenant handler against it, and releases the lease when the
// response is written; quota rejections answer 429 with a Retry-After
// header before any query work runs.

// NewCatalog creates a Server routing by graph ID over cat. The
// catalog's registry carries the server instruments too, so one
// GET /metrics scrape covers HTTP, catalog, and per-graph series.
func NewCatalog(cat *catalog.Catalog, cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		cfg.Registry = cat.Registry()
	}
	cfg.fillDefaults()
	s := &Server{cat: cat, cfg: cfg, reg: cfg.Registry}
	s.instruments()

	s.mux = http.NewServeMux()
	type route struct {
		path string
		post bool
		h    func(*tenant, http.ResponseWriter, *http.Request)
	}
	routes := []route{
		{"simrank", false, (*tenant).handleSimRank},
		{"source", false, (*tenant).handleSource},
		{"topk", false, (*tenant).handleTopK},
		{"batch", true, (*tenant).handleBatch},
		{"update", true, (*tenant).handleUpdate},
		{"rebuild", true, (*tenant).handleRebuild},
		{"snapshot", true, (*tenant).handleSnapshot},
		{"stats", false, (*tenant).handleStats},
	}
	for _, rt := range routes {
		wrap := s.getOnly
		if rt.post {
			wrap = s.postOnly
		}
		s.mux.HandleFunc("/g/{id}/"+rt.path, wrap(s.forGraph(rt.h, true)))
		if rt.path != "stats" {
			// Legacy alias onto the default graph. /stats stays the
			// catalog summary; the default graph's backend stats live at
			// /g/{default}/stats.
			s.mux.HandleFunc("/"+rt.path, wrap(s.forGraph(rt.h, false)))
		}
	}
	s.mux.HandleFunc("/graphs", s.getOnly(s.handleGraphs))
	s.mux.HandleFunc("/stats", s.getOnly(s.handleCatalogStats))
	s.commonRoutes()
	return s, nil
}

// forGraph routes a tenant handler through the catalog: resolve the
// graph ID (the {id} path value, or the catalog default on legacy
// paths), lease a handle, run the handler, record the graph's latency,
// release.
func (s *Server) forGraph(h func(*tenant, http.ResponseWriter, *http.Request), fromPath bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := s.cat.DefaultID()
		if fromPath {
			id = r.PathValue("id")
		}
		hd, err := s.cat.Acquire(r.Context(), id)
		if err != nil {
			s.acquireError(w, r, err)
			return
		}
		defer hd.Release()
		maxOps := hd.MaxBatchOps()
		if maxOps <= 0 || maxOps > s.cfg.MaxBatchOps {
			maxOps = s.cfg.MaxBatchOps
		}
		t := &tenant{
			s:           s,
			q:           hd.Querier(),
			dyn:         hd.Dynamic(),
			labels:      hd.Labels(),
			byLbl:       hd.LabelMap(),
			h:           hd,
			maxBatchOps: maxOps,
		}
		start := time.Now()
		h(t, w, r)
		hd.ObserveLatency(start)
	}
}

// acquireError maps a catalog acquisition failure: unknown IDs answer
// 404, a client that vanished while waiting on an open is dropped
// 499-style, and a failed backend open is the graph's 503 (the entry
// stays re-openable, so the condition is retryable by design).
func (s *Server) acquireError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, catalog.ErrUnknownGraph):
		httpError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, context.Canceled):
		s.canceledOps.Inc()
		log.Printf("server: %s %s abandoned while opening graph (%v)", r.Method, r.URL.Path, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.canceledOps.Inc()
		httpError(w, http.StatusGatewayTimeout, err.Error())
	default:
		s.httpErrors.Inc()
		httpError(w, http.StatusServiceUnavailable, err.Error())
	}
}

// catalogStatsView is the catalog-mode /stats document — the
// multi-tenant analogue of the per-backend views, golden-schema pinned
// like them.
type catalogStatsView struct {
	Mode          string `json:"mode"`
	Graphs        int    `json:"graphs"`
	OpenGraphs    int    `json:"open_graphs"`
	ResidentBytes int64  `json:"resident_bytes"`
	BudgetBytes   int64  `json:"budget_bytes"`
	Evictions     uint64 `json:"evictions"`
	ThrottledOps  uint64 `json:"throttled_ops"`
	Requests      uint64 `json:"requests"`
	Default       string `json:"default"`
	CanceledOps   uint64 `json:"canceled_ops"`
}

func (s *Server) handleCatalogStats(w http.ResponseWriter, r *http.Request) {
	st := s.cat.Stats()
	writeJSON(w, catalogStatsView{
		Mode:          "catalog",
		Graphs:        st.Graphs,
		OpenGraphs:    st.Open,
		ResidentBytes: st.ResidentBytes,
		BudgetBytes:   st.BudgetBytes,
		Evictions:     st.Evictions,
		ThrottledOps:  st.Throttled,
		Requests:      st.Requests,
		Default:       s.cat.DefaultID(),
		CanceledOps:   s.canceledOps.Value(),
	})
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]interface{}{
		"default": s.cat.DefaultID(),
		"graphs":  s.cat.Graphs(),
	})
}
