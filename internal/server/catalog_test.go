package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sling/internal/rng"
	"strings"
	"testing"

	"sling"
	"sling/internal/catalog"
)

// writeEdgeList writes a deterministic random directed edge list.
func writeEdgeList(t *testing.T, dir, name string, n, edges int, seed int64) string {
	t.Helper()
	rnd := rng.New(uint64(seed))
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%d %d\n", i, (i+1)%n)
	}
	for i := 0; i < edges; i++ {
		fmt.Fprintf(&sb, "%d %d\n", rnd.Intn(n), rnd.Intn(n))
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// catServer builds a three-graph catalog server — memory, disk, and
// dynamic backends — with a quota on the "quota" (memory) graph.
func catServer(t *testing.T, qps float64) (*Server, *catalog.Catalog, string) {
	t.Helper()
	dir := t.TempDir()
	memPath := writeEdgeList(t, dir, "mem.txt", 40, 200, 5)
	diskPath := writeEdgeList(t, dir, "disk.txt", 30, 120, 6)
	dynPath := writeEdgeList(t, dir, "dyn.txt", 25, 100, 7)

	// The disk entry needs a prebuilt SLIX file.
	g, _, err := sling.LoadEdgeListFile(diskPath, false)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := sling.Build(g, sling.WithEps(0.1), sling.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	slix := filepath.Join(dir, "disk.slix")
	if err := ix.Save(slix); err != nil {
		t.Fatal(err)
	}
	ix.Close()

	m := catalog.Manifest{
		Graphs: []catalog.GraphSpec{
			{ID: "mem", Graph: memPath, Eps: 0.08, Seed: 7, MaxQPS: qps},
			// Mmap where the platform supports it: the catalog must route
			// the flag through to the zero-copy open path (and fall back
			// silently elsewhere).
			{ID: "disk", Graph: diskPath, Mode: "disk", Index: slix, CacheBytes: 1 << 16, Mmap: sling.MmapSupported()},
			{ID: "dyn", Graph: dynPath, Mode: "dynamic", Eps: 0.12, Seed: 13, Walks: 32},
		},
	}
	cat, err := catalog.New(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	s, err := NewCatalog(cat, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s, cat, memPath
}

func TestCatalogRoutingMatchesDirectBackend(t *testing.T) {
	s, _, memPath := catServer(t, 0)

	// Directly built reference over the same file and build options.
	g, _, err := sling.LoadEdgeListFile(memPath, false)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := sling.Build(g, sling.WithEps(0.08), sling.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	want, err := ix.SimRank(context.Background(), 3, 7)
	if err != nil {
		t.Fatal(err)
	}

	rec, body := get(t, s, "/g/mem/simrank?u=3&v=7")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := body["score"].(float64); got != want {
		t.Fatalf("catalog score %v, want %v", got, want)
	}

	// The legacy un-prefixed path aliases the default (first) graph.
	recLegacy, _ := get(t, s, "/simrank?u=3&v=7")
	if recLegacy.Code != http.StatusOK {
		t.Fatalf("legacy path status %d", recLegacy.Code)
	}
	recG, _ := get(t, s, "/g/mem/simrank?u=3&v=7")
	if recLegacy.Body.String() != recG.Body.String() {
		t.Fatalf("legacy alias differs: %q vs %q", recLegacy.Body.String(), recG.Body.String())
	}

	// Unknown graph IDs answer 404.
	if rec, _ := get(t, s, "/g/nope/simrank?u=1&v=2"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown graph status %d, want 404", rec.Code)
	}
}

func TestCatalogGraphListing(t *testing.T) {
	s, _, _ := catServer(t, 0)
	rec, body := get(t, s, "/graphs")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if body["default"] != "mem" {
		t.Fatalf("default = %v", body["default"])
	}
	graphs := body["graphs"].([]interface{})
	if len(graphs) != 3 {
		t.Fatalf("%d graphs listed", len(graphs))
	}
	first := graphs[0].(map[string]interface{})
	if first["id"] != "mem" || first["mode"] != "memory" {
		t.Fatalf("first entry %v", first)
	}
}

func TestCatalogPerGraphStats(t *testing.T) {
	s, _, _ := catServer(t, 0)
	for id, mode := range map[string]string{"mem": "memory", "disk": "disk", "dyn": "dynamic"} {
		rec, body := get(t, s, "/g/"+id+"/stats")
		if rec.Code != http.StatusOK {
			t.Fatalf("/g/%s/stats: %d", id, rec.Code)
		}
		if body["mode"] != mode {
			t.Fatalf("/g/%s/stats mode = %v, want %s", id, body["mode"], mode)
		}
	}
	// The catalog summary at /stats, golden-schema checked.
	rec, body := get(t, s, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats: %d", rec.Code)
	}
	checkSchema(t, "/stats[catalog]", catalogStatsSchema, body)
	if body["mode"] != "catalog" || body["graphs"].(float64) != 3 {
		t.Fatalf("catalog stats %v", body)
	}
}

// catalogStatsSchema extends the golden /stats family for catalog mode.
var catalogStatsSchema = statsSchema{
	"mode":           "string",
	"graphs":         "number",
	"open_graphs":    "number",
	"resident_bytes": "number",
	"budget_bytes":   "number",
	"evictions":      "number",
	"throttled_ops":  "number",
	"requests":       "number",
	"default":        "string",
	"canceled_ops":   "number",
}

func TestCatalogQuota429(t *testing.T) {
	s, _, _ := catServer(t, 1) // 1 op/s, burst 1 on graph "mem"
	if rec, _ := get(t, s, "/g/mem/simrank?u=1&v=2"); rec.Code != http.StatusOK {
		t.Fatalf("first request status %d", rec.Code)
	}
	rec, body := get(t, s, "/g/mem/simrank?u=1&v=2")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request status %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q", ra)
	}
	if body["error"] == "" {
		t.Fatal("429 without error message")
	}
	// The rejection is visible in the catalog summary and metrics.
	_, st := get(t, s, "/stats")
	if st["throttled_ops"].(float64) < 1 {
		t.Fatalf("throttled_ops = %v", st["throttled_ops"])
	}
	// Unquoted graphs are unaffected.
	if rec, _ := get(t, s, "/g/disk/simrank?u=1&v=2"); rec.Code != http.StatusOK {
		t.Fatalf("unquoted graph status %d", rec.Code)
	}
	// A batch is charged per op: two ops cannot fit a 1-token bucket even
	// after it refills one token.
	recB, _ := postTo(t, s, "/g/mem/batch", `[{"op":"simrank","u":1,"v":2},{"op":"simrank","u":2,"v":3}]`)
	if recB.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota batch status %d, want 429", recB.Code)
	}
}

func postTo(t *testing.T, s *Server, path, body string) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	return post(t, s, path, body)
}

func TestCatalogUpdateRouting(t *testing.T) {
	s, _, _ := catServer(t, 0)
	// Mutations on a non-dynamic graph answer 404.
	if rec, _ := post(t, s, "/g/mem/update", `[{"op":"add","from":0,"to":5}]`); rec.Code != http.StatusNotFound {
		t.Fatalf("update on memory graph status %d, want 404", rec.Code)
	}
	if rec, _ := post(t, s, "/g/mem/rebuild", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("rebuild on memory graph status %d, want 404", rec.Code)
	}
	// The dynamic graph takes updates and rebuilds through its route.
	rec, body := post(t, s, "/g/dyn/update", `[{"op":"remove","from":0,"to":1}]`)
	if rec.Code != http.StatusOK {
		t.Fatalf("dyn update status %d: %s", rec.Code, rec.Body.String())
	}
	if body["results"].([]interface{})[0].(map[string]interface{})["applied"] != true {
		t.Fatalf("remove of ring edge not applied: %v", body)
	}
	rec, body = post(t, s, "/g/dyn/rebuild", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("dyn rebuild status %d", rec.Code)
	}
	if body["epoch"].(float64) != 2 {
		t.Fatalf("post-rebuild epoch %v", body["epoch"])
	}
}

func TestCatalogMetricsEndpoint(t *testing.T) {
	s, _, _ := catServer(t, 0)
	get(t, s, "/g/mem/simrank?u=1&v=2")
	get(t, s, "/g/dyn/topk?u=1&k=3")

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("Content-Type %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		catalog.MetricRequests + `{graph="mem"} 1`,
		catalog.MetricRequests + `{graph="dyn"} 1`,
		catalog.MetricLatency + `_count{graph="mem"} 1`,
		"# TYPE " + catalog.MetricLatency + " histogram",
		catalog.MetricOpenGraphs + " 2",
		MetricHTTPRequests + " ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestCatalogEvictionUnderTraffic serves all three graphs under a
// budget that fits roughly one and checks traffic keeps answering 200
// while the catalog churns backends in and out.
func TestCatalogEvictionUnderTraffic(t *testing.T) {
	s, cat, _ := catServer(t, 0)
	// Size one graph, then rebuild the world with a budget below two.
	if rec, _ := get(t, s, "/g/mem/simrank?u=1&v=2"); rec.Code != http.StatusOK {
		t.Fatal("probe failed")
	}
	one := cat.Stats().ResidentBytes

	dir := t.TempDir()
	memPath := writeEdgeList(t, dir, "a.txt", 40, 200, 5)
	bPath := writeEdgeList(t, dir, "b.txt", 40, 200, 8)
	cPath := writeEdgeList(t, dir, "c.txt", 40, 200, 9)
	m := catalog.Manifest{
		MemoryBudgetBytes: one + one/2,
		Graphs: []catalog.GraphSpec{
			{ID: "a", Graph: memPath, Eps: 0.1, Seed: 1},
			{ID: "b", Graph: bPath, Eps: 0.1, Seed: 2},
			{ID: "c", Graph: cPath, Eps: 0.1, Seed: 3},
		},
	}
	cat2, err := catalog.New(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cat2.Close()
	s2, err := NewCatalog(cat2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for _, id := range []string{"a", "b", "c"} {
			rec, _ := get(t, s2, "/g/"+id+"/simrank?u=1&v=2")
			if rec.Code != http.StatusOK {
				t.Fatalf("round %d /g/%s: %d", round, id, rec.Code)
			}
		}
	}
	st := cat2.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under tight budget: %+v", st)
	}
}
