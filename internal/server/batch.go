package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"

	"sling"
)

// POST /batch executes a list of query operations in one round trip,
// fanned across a bounded worker pool (Config.BatchWorkers), the shape a
// high-throughput client wants: one request amortizes connection and
// JSON overhead over many queries, and the server keeps every core busy
// without unbounded goroutine fan-out.
//
// Request body: a JSON array of operations
//
//	[{"op":"simrank","u":U,"v":V},
//	 {"op":"source","u":U,"limit":L},   // limit optional
//	 {"op":"topk","u":U,"k":K}, ...]    // k defaults to 10
//
// Response: {"results":[...]} with one entry per operation, in request
// order, each either the same JSON object the corresponding GET endpoint
// returns or {"op":...,"error":"..."}. Per-operation failures do not fail
// the request; malformed JSON, a non-POST method, or more than
// the op cap do (400/405/413). In catalog mode a batch of N operations
// costs N quota tokens up front; an over-quota batch answers 429 with a
// Retry-After header and runs nothing.

// BatchOp is one operation in a POST /batch request. U and V are node
// labels (original labels when the graph has a label mapping, dense IDs
// otherwise); pointers distinguish "absent" from label 0.
type BatchOp struct {
	Op    string `json:"op"`
	U     *int64 `json:"u,omitempty"`
	V     *int64 `json:"v,omitempty"`
	K     *int   `json:"k,omitempty"`
	Limit *int   `json:"limit,omitempty"`
}

// decodeOps bounds and decodes a JSON op array for handleBatch and
// handleUpdate, keeping their guards identical by construction: the body
// is cut off past maxOps·256+4096 bytes (256 bytes comfortably covers
// any legitimate op, so op count bounds memory too) with a 413,
// malformed JSON and unknown fields answer 400, and more than maxOps
// operations answer 413. ok=false means the error response was already
// written.
func decodeOps[T any](t *tenant, w http.ResponseWriter, r *http.Request, what string) (ops []T, ok bool) {
	maxBytes := int64(t.maxBatchOps)*256 + 4096
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ops); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("%s body exceeds %d bytes", what, maxBytes))
			return nil, false
		}
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad %s body: %v", what, err))
		return nil, false
	}
	if len(ops) > t.maxBatchOps {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("%s of %d ops exceeds limit %d", what, len(ops), t.maxBatchOps))
		return nil, false
	}
	return ops, true
}

func (t *tenant) handleBatch(w http.ResponseWriter, r *http.Request) {
	ops, ok := decodeOps[BatchOp](t, w, r, "batch")
	if !ok {
		return
	}
	if !t.allow(w, len(ops)) {
		return
	}

	ctx := r.Context()
	results := make([]interface{}, len(ops))
	workers := t.s.cfg.BatchWorkers
	if workers > len(ops) {
		workers = len(ops)
	}
	if workers <= 1 {
		for i, op := range ops {
			if ctx.Err() != nil {
				break
			}
			results[i] = t.runOp(ctx, op)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if ctx.Err() != nil {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= len(ops) {
						return
					}
					results[i] = t.runOp(ctx, ops[i])
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		// Account the operations that never ran, then pick the response:
		// a cancelled context means the client is gone — log and drop
		// (nginx's 499 convention); an expired deadline may come from
		// server-side timeout middleware with the client still listening,
		// so it gets a real 504 instead of a bogus empty 200.
		dropped := 0
		for _, res := range results {
			if res == nil {
				dropped++
			}
		}
		t.s.canceledOps.Add(uint64(dropped))
		if errors.Is(err, context.DeadlineExceeded) {
			httpError(w, http.StatusGatewayTimeout,
				fmt.Sprintf("batch deadline exceeded with %d of %d ops pending", dropped, len(ops)))
			return
		}
		log.Printf("server: POST /batch abandoned with %d of %d ops pending (%v)",
			dropped, len(ops), err)
		return
	}
	writeJSON(w, map[string]interface{}{"results": results})
}

// runOp executes one batch operation, returning either the op's response
// object or an error object mirroring the single-query endpoints. ctx is
// threaded into the Querier so a disconnected client stops the fan-out
// inside multi-source work too.
func (t *tenant) runOp(ctx context.Context, op BatchOp) interface{} {
	fail := func(err error) interface{} {
		entry := map[string]interface{}{"op": op.Op, "error": err.Error()}
		if errors.Is(err, sling.ErrNodeRange) {
			entry["code"] = "node_range"
		}
		return entry
	}
	u, err := t.opNode(op.U, "u")
	if err != nil {
		return fail(err)
	}
	switch op.Op {
	case "simrank":
		v, err := t.opNode(op.V, "v")
		if err != nil {
			return fail(err)
		}
		score, err := t.q.SimRank(ctx, u, v)
		if err != nil {
			return fail(err)
		}
		return map[string]interface{}{
			"op": op.Op, "u": t.label(u), "v": t.label(v),
			"score": score,
		}
	case "source":
		limit := -1
		if op.Limit != nil {
			if *op.Limit < 0 {
				return fail(fmt.Errorf("bad limit %d", *op.Limit))
			}
			limit = *op.Limit
		}
		scores, err := t.sourceScores(ctx, u, limit)
		if err != nil {
			return fail(err)
		}
		return map[string]interface{}{
			"op": op.Op, "u": t.label(u),
			"scores": scores,
		}
	case "topk":
		k := 10
		if op.K != nil {
			// Mirror GET /topk: an explicit k must be >= 1.
			if *op.K < 1 {
				return fail(fmt.Errorf("bad k %d", *op.K))
			}
			k = *op.K
		}
		top, err := t.q.TopK(ctx, u, k)
		if err != nil {
			return fail(err)
		}
		return map[string]interface{}{
			"op": op.Op, "u": t.label(u),
			"results": t.scored(top),
		}
	default:
		return fail(fmt.Errorf("unknown op %q (want simrank|source|topk)", op.Op))
	}
}

// opNode resolves a batch node parameter through the same label
// resolution tenant.node applies to query strings.
func (t *tenant) opNode(raw *int64, name string) (sling.NodeID, error) {
	if raw == nil {
		return 0, fmt.Errorf("missing node %q", name)
	}
	return t.denseID(*raw)
}
