package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"sling"
	"sling/internal/rng"
)

// dynServer builds a small random graph and serves it updatable.
func dynServer(t *testing.T, labels []int64) (*Server, *sling.DynamicIndex) {
	t.Helper()
	r := rng.New(5)
	n := 40
	b := sling.NewGraphBuilder(n)
	for i := 0; i < 200; i++ {
		b.AddEdge(sling.NodeID(r.Intn(n)), sling.NodeID(r.Intn(n)))
	}
	dx, err := sling.NewDynamic(b.Build(),
		&sling.DynamicOptions{NumWalks: 64},
		sling.WithEps(0.08), sling.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dx.Close() })
	s, err := NewDynamic(dx, labels, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s, dx
}

func post(t *testing.T, s *Server, path, body string) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var out map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil && rec.Code == http.StatusOK {
		t.Fatalf("bad JSON from %s: %v (%q)", path, err, rec.Body.String())
	}
	return rec, out
}

func TestUpdateEndpoint(t *testing.T) {
	s, dx := dynServer(t, nil)
	// The random seed graph may already contain 0 -> 39; make it absent so
	// the scripted add/dup/remove sequence below is deterministic.
	if _, err := dx.RemoveEdge(0, 39); err != nil {
		t.Fatal(err)
	}
	base := dx.Stats()
	rec, body := post(t, s, "/update", `[
		{"op":"add","from":0,"to":39},
		{"op":"add","from":0,"to":39},
		{"op":"remove","from":0,"to":39},
		{"op":"add","from":99,"to":1},
		{"op":"zap","from":1,"to":2}
	]`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	results := body["results"].([]interface{})
	if len(results) != 5 {
		t.Fatalf("%d results", len(results))
	}
	r0 := results[0].(map[string]interface{})
	if r0["applied"] != true || r0["from"].(float64) != 0 || r0["to"].(float64) != 39 {
		t.Fatalf("add result wrong: %v", r0)
	}
	if results[1].(map[string]interface{})["applied"] != false {
		t.Fatalf("duplicate add not reported as no-op: %v", results[1])
	}
	if results[2].(map[string]interface{})["applied"] != true {
		t.Fatalf("remove of just-added edge failed: %v", results[2])
	}
	if results[3].(map[string]interface{})["error"] == nil {
		t.Fatalf("out-of-range node accepted: %v", results[3])
	}
	if results[4].(map[string]interface{})["error"] == nil {
		t.Fatalf("unknown op accepted: %v", results[4])
	}
	if body["applied"].(float64) != 2 {
		t.Fatalf("applied = %v, want 2", body["applied"])
	}
	if body["epoch"].(float64) != 1 {
		t.Fatalf("epoch = %v before any rebuild", body["epoch"])
	}
	if got, want := body["stale_ops"].(float64), float64(base.StaleOps+2); got != want {
		t.Fatalf("stale_ops = %v, want %v", got, want)
	}
	if got, want := dx.Stats().TotalOps, base.TotalOps+2; got != want {
		t.Fatalf("index applied %d ops, want %d", got, want)
	}
}

// /update and /rebuild share the method/body/size guards of /batch:
// 405 with an Allow header, 400 on malformed JSON, 413 past the op or
// byte caps.
func TestUpdateRebuildGuards(t *testing.T) {
	s, _ := dynServer(t, nil)
	for _, path := range []string{"/update", "/rebuild"} {
		for _, method := range []string{http.MethodGet, http.MethodPut, http.MethodDelete} {
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
			if rec.Code != http.StatusMethodNotAllowed {
				t.Fatalf("%s %s: status %d, want 405", method, path, rec.Code)
			}
			if allow := rec.Header().Get("Allow"); allow != http.MethodPost {
				t.Fatalf("%s %s: Allow header %q", method, path, allow)
			}
		}
	}
	if rec, _ := post(t, s, "/update", `[{"op":`); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed JSON status %d, want 400", rec.Code)
	}
	if rec, _ := post(t, s, "/update", `[{"op":"add","zzz":1}]`); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown field status %d, want 400", rec.Code)
	}

	// Missing from/to fail per-op, not the request.
	rec, body := post(t, s, "/update", `[{"op":"add","from":1}]`)
	if rec.Code != http.StatusOK {
		t.Fatalf("missing-to status %d", rec.Code)
	}
	if body["results"].([]interface{})[0].(map[string]interface{})["error"] == nil {
		t.Fatal("missing 'to' did not error")
	}

	// Op-count and byte caps answer 413 like /batch.
	small, err := NewDynamic(mustDyn(t), nil, Config{MaxBatchOps: 2})
	if err != nil {
		t.Fatal(err)
	}
	three := `[{"op":"add","from":0,"to":1},{"op":"add","from":1,"to":2},{"op":"add","from":2,"to":3}]`
	if rec, _ := post(t, small, "/update", three); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized update status %d, want 413", rec.Code)
	}
	pad := strings.Repeat(" ", 8192) + `[{"op":"add","from":0,"to":1}]`
	if rec, _ := post(t, small, "/update", pad); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d, want 413", rec.Code)
	}
}

func mustDyn(t *testing.T) *sling.DynamicIndex {
	t.Helper()
	b := sling.NewGraphBuilder(8)
	for v := 0; v < 7; v++ {
		b.AddEdge(sling.NodeID(v), sling.NodeID(v+1))
	}
	dx, err := sling.NewDynamic(b.Build(), &sling.DynamicOptions{NumWalks: 16},
		sling.WithEps(0.1), sling.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dx.Close() })
	return dx
}

// The /stats epoch counter must advance after POST /rebuild, staleness
// must clear, and the rebuild response reports the post-swap epoch.
func TestRebuildAdvancesEpoch(t *testing.T) {
	s, _ := dynServer(t, nil)
	_, st := get(t, s, "/stats")
	if st["mode"] != "dynamic" {
		t.Fatalf("mode = %v, want dynamic", st["mode"])
	}
	if st["epoch"].(float64) != 1 {
		t.Fatalf("initial epoch %v", st["epoch"])
	}
	if rec, _ := post(t, s, "/update", `[{"op":"add","from":1,"to":7},{"op":"remove","from":2,"to":3}]`); rec.Code != http.StatusOK {
		t.Fatalf("update status %d", rec.Code)
	}
	_, st = get(t, s, "/stats")
	if st["stale_ops"].(float64) == 0 {
		t.Fatal("no staleness recorded before rebuild")
	}
	rec, body := post(t, s, "/rebuild", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("rebuild status %d: %s", rec.Code, rec.Body.String())
	}
	if body["epoch"].(float64) != 2 {
		t.Fatalf("rebuild epoch = %v, want 2", body["epoch"])
	}
	_, st = get(t, s, "/stats")
	if st["epoch"].(float64) != 2 || st["stale_ops"].(float64) != 0 || st["affected_nodes"].(float64) != 0 {
		t.Fatalf("post-rebuild stats not clean: %v", st)
	}
}

// Concurrent updates, rebuilds, and queries through the HTTP surface:
// every response must stay well-formed (no 5xx, scores in [0, 1]).
func TestConcurrentUpdatesDuringQueries(t *testing.T) {
	s, _ := dynServer(t, nil)
	var wg sync.WaitGroup
	fail := make(chan string, 32)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				u, v := (i+w*7)%40, (i*3)%40
				req := httptest.NewRequest(http.MethodGet, "/simrank", nil)
				q := req.URL.Query()
				q.Set("u", strconv.Itoa(u))
				q.Set("v", strconv.Itoa(v))
				req.URL.RawQuery = q.Encode()
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					fail <- "query status " + strconv.Itoa(rec.Code)
					return
				}
				var body map[string]interface{}
				if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
					fail <- "bad query json"
					return
				}
				if sc := body["score"].(float64); sc < 0 || sc > 1 {
					fail <- "score out of [0,1]"
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				from, to := (i*5+w)%40, (i*11+w*13)%40
				body := `[{"op":"add","from":` + strconv.Itoa(from) + `,"to":` + strconv.Itoa(to) + `}]`
				req := httptest.NewRequest(http.MethodPost, "/update", strings.NewReader(body))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					fail <- "update status " + strconv.Itoa(rec.Code)
					return
				}
				if i%5 == 0 {
					rec := httptest.NewRecorder()
					s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/rebuild", nil))
					if rec.Code != http.StatusOK {
						fail <- "rebuild failed"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(fail)
	if msg, bad := <-fail; bad {
		t.Fatal(msg)
	}
}

// Dynamic mode with a label mapping: /update takes external labels and
// unknown labels fail per-op.
func TestUpdateLabelMapping(t *testing.T) {
	labels := make([]int64, 40)
	for i := range labels {
		labels[i] = int64(1000 + i*10)
	}
	s, dx := dynServer(t, labels)
	if _, err := dx.RemoveEdge(0, 39); err != nil {
		t.Fatal(err)
	}
	rec, body := post(t, s, "/update", `[{"op":"add","from":1000,"to":1390},{"op":"add","from":1005,"to":1390}]`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	results := body["results"].([]interface{})
	if results[0].(map[string]interface{})["applied"] != true {
		t.Fatalf("label-mapped add failed: %v", results[0])
	}
	if results[1].(map[string]interface{})["error"] == nil {
		t.Fatal("unknown label accepted")
	}
	if !dx.Graph().HasEdge(0, 39) {
		t.Fatal("label-mapped edge not applied to dense IDs")
	}
}
