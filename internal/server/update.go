package server

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"sling"
)

// Dynamic-mode mutation endpoints (registered only by NewDynamic):
//
//	POST /update    apply a batch of edge operations
//	POST /rebuild   synchronously rebuild the index and swap the epoch
//	POST /snapshot  write a durable snapshot (409 without -durable)
//
// /update takes a JSON array of operations in external labels,
//
//	[{"op":"add","from":F,"to":T},
//	 {"op":"remove","from":F,"to":T}, ...]
//
// and answers {"results":[...],"applied":N,"epoch":E,"affected":M,
// "stale_ops":S} with one result per operation in request order: either
// {"op":...,"from":F,"to":T,"applied":true|false} (applied=false means a
// no-op: the edge already existed / did not exist) or {"op":...,
// "error":"..."}. Per-operation failures — unknown label, unknown op —
// do not fail the request; the whole batch is applied under one graph
// snapshot and one frontier recomputation. Method, body-size, and
// op-count guards mirror /batch exactly (405+Allow, 400, 413).
//
// /rebuild takes no body, blocks until the rebuild completes, and answers
// {"epoch":E,"took_ms":T}. Epoch E is the epoch this call's own swap
// produced, so a client can confirm the swap happened by comparing
// against /stats before — and two racing rebuilds each see their own.
//
// /snapshot takes no body and writes a durable snapshot of the current
// state, answering {"lsn":L,"took_ms":T} with the WAL position the
// snapshot covers. Graphs served without durable storage answer 409.

// UpdateOp is one edge operation in a POST /update request. From and To
// are node labels (original labels when the server has a label mapping,
// dense IDs otherwise); pointers distinguish "absent" from label 0.
type UpdateOp struct {
	Op   string `json:"op"`
	From *int64 `json:"from,omitempty"`
	To   *int64 `json:"to,omitempty"`
}

func (t *tenant) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if t.dyn == nil {
		httpError(w, http.StatusNotFound, "graph is not served by an updatable backend")
		return
	}
	ops, ok := decodeOps[UpdateOp](t, w, r, "update")
	if !ok {
		return
	}

	results := make([]interface{}, len(ops))
	// Resolve labels first; ops that fail resolution get error entries and
	// the survivors are applied as one batch. Error entries keep the
	// request's from/to (when present) so clients can correlate failures
	// without falling back to positions.
	errEntry := func(op UpdateOp, msg string) map[string]interface{} {
		entry := map[string]interface{}{"op": op.Op, "error": msg}
		if op.From != nil {
			entry["from"] = *op.From
		}
		if op.To != nil {
			entry["to"] = *op.To
		}
		return entry
	}
	edgeOps := make([]sling.EdgeOp, 0, len(ops))
	slot := make([]int, 0, len(ops)) // edgeOps[i] answers results[slot[i]]
	for i, op := range ops {
		add := false
		switch op.Op {
		case "add":
			add = true
		case "remove":
		default:
			results[i] = errEntry(op, fmt.Sprintf("unknown op %q (want add|remove)", op.Op))
			continue
		}
		from, err := t.opNode(op.From, "from")
		if err != nil {
			results[i] = errEntry(op, err.Error())
			continue
		}
		to, err := t.opNode(op.To, "to")
		if err != nil {
			results[i] = errEntry(op, err.Error())
			continue
		}
		edgeOps = append(edgeOps, sling.EdgeOp{Add: add, From: from, To: to})
		slot = append(slot, i)
	}
	// Quota charges only the ops that survived resolution — the ones the
	// dynamic layer will actually see — not the request's raw length.
	if len(edgeOps) > 0 && !t.allow(w, len(edgeOps)) {
		return
	}
	applied := 0
	if len(edgeOps) > 0 {
		res, n, err := t.dyn.Apply(edgeOps)
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		applied = n
		for i, or := range res {
			entry := map[string]interface{}{
				"op":      ops[slot[i]].Op,
				"from":    *ops[slot[i]].From,
				"to":      *ops[slot[i]].To,
				"applied": or.Applied,
			}
			if or.Err != nil {
				delete(entry, "applied")
				entry["error"] = or.Err.Error()
			}
			results[slot[i]] = entry
		}
	}
	st := t.dyn.Stats()
	writeJSON(w, map[string]interface{}{
		"results":   results,
		"applied":   applied,
		"epoch":     st.Epoch,
		"affected":  st.AffectedNodes,
		"stale_ops": st.StaleOps,
	})
}

func (t *tenant) handleRebuild(w http.ResponseWriter, r *http.Request) {
	if t.dyn == nil {
		httpError(w, http.StatusNotFound, "graph is not served by an updatable backend")
		return
	}
	start := time.Now()
	// Rebuild reports the epoch its own swap produced; re-reading
	// t.dyn.Epoch() here would let two racing rebuilds both observe the
	// later swap and answer the same number.
	epoch, err := t.dyn.Rebuild()
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, map[string]interface{}{
		"epoch":   epoch,
		"took_ms": float64(time.Since(start).Nanoseconds()) / 1e6,
	})
}

func (t *tenant) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if t.dyn == nil {
		httpError(w, http.StatusNotFound, "graph is not served by an updatable backend")
		return
	}
	start := time.Now()
	lsn, err := t.dyn.Snapshot()
	if err != nil {
		if errors.Is(err, sling.ErrNotDurable) {
			httpError(w, http.StatusConflict, "graph has no durable storage configured")
			return
		}
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, map[string]interface{}{
		"lsn":     lsn,
		"took_ms": float64(time.Since(start).Nanoseconds()) / 1e6,
	})
}
