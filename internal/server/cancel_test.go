package server

// Tests for the 499-style abort path: a client that abandons a request
// mid-flight gets no response body (there is nowhere to send it), the
// server stops doing work, and the drop is surfaced in /stats as
// canceled_ops.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestBatchAbandonedRequestDropped(t *testing.T) {
	s, _ := testServer(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is gone before the batch starts

	body := `[{"op":"simrank","u":1,"v":2},{"op":"source","u":3},{"op":"topk","u":4,"k":3}]`
	req := httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)

	// 499-style: the response is dropped, not an error payload.
	if rec.Body.Len() != 0 {
		t.Fatalf("abandoned batch produced a response body: %q", rec.Body.String())
	}

	// Every op that never ran is accounted.
	_, stats := get(t, s, "/stats")
	if got := stats["canceled_ops"].(float64); got != 3 {
		t.Fatalf("canceled_ops = %v, want 3", got)
	}
}

func TestSingleQueryAbandonedRequestDropped(t *testing.T) {
	s, _ := testServer(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, path := range []string{"/simrank?u=1&v=2", "/source?u=3", "/topk?u=4&k=3"} {
		req := httptest.NewRequest(http.MethodGet, path, nil).WithContext(ctx)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Body.Len() != 0 {
			t.Fatalf("%s: abandoned query produced a response body: %q", path, rec.Body.String())
		}
	}
	_, stats := get(t, s, "/stats")
	if got := stats["canceled_ops"].(float64); got != 3 {
		t.Fatalf("canceled_ops = %v, want 3", got)
	}
}

// A deadline expiry is not a vanished client: server-side timeout
// middleware can expire the context while the client still listens, so
// the response must be a real 504, never a dropped empty 200.
func TestDeadlineExceededAnswers504(t *testing.T) {
	s, _ := testServer(t, nil)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	req := httptest.NewRequest(http.MethodGet, "/simrank?u=1&v=2", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("GET with expired deadline: status %d, want 504", rec.Code)
	}

	body := `[{"op":"simrank","u":1,"v":2},{"op":"topk","u":3,"k":2}]`
	req = httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(body)).WithContext(ctx)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("batch with expired deadline: status %d, want 504", rec.Code)
	}

	_, stats := get(t, s, "/stats")
	if got := stats["canceled_ops"].(float64); got != 3 {
		t.Fatalf("canceled_ops = %v, want 3 (1 query + 2 batch ops)", got)
	}
}

// A live request must not be affected: canceled_ops stays zero and
// responses flow normally.
func TestCanceledOpsZeroOnHealthyTraffic(t *testing.T) {
	s, _ := testServer(t, nil)
	if rec, _ := get(t, s, "/simrank?u=1&v=2"); rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if rec, _ := postBatch(t, s, `[{"op":"simrank","u":1,"v":2}]`); rec.Code != http.StatusOK {
		t.Fatalf("batch status %d", rec.Code)
	}
	_, stats := get(t, s, "/stats")
	if got := stats["canceled_ops"].(float64); got != 0 {
		t.Fatalf("canceled_ops = %v, want 0", got)
	}
}
