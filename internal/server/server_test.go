package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"sling"
	"sling/internal/rng"
)

func testServer(t *testing.T, labels []int64) (*Server, *sling.Index) {
	t.Helper()
	r := rng.New(5)
	n := 40
	b := sling.NewGraphBuilder(n)
	for i := 0; i < 200; i++ {
		b.AddEdge(sling.NodeID(r.Intn(n)), sling.NodeID(r.Intn(n)))
	}
	ix, err := sling.Build(b.Build(), &sling.Options{Eps: 0.08, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return New(ix, labels), ix
}

func get(t *testing.T, s *Server, path string) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil && rec.Code == http.StatusOK {
		t.Fatalf("bad JSON from %s: %v (%q)", path, err, rec.Body.String())
	}
	return rec, body
}

func TestHealthz(t *testing.T) {
	s, _ := testServer(t, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
}

func TestSimRankEndpoint(t *testing.T) {
	s, ix := testServer(t, nil)
	rec, body := get(t, s, "/simrank?u=3&v=7")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	want := ix.SimRank(3, 7)
	if got := body["score"].(float64); got != want {
		t.Fatalf("score %v, want %v", got, want)
	}
	if body["u"].(float64) != 3 || body["v"].(float64) != 7 {
		t.Fatalf("echoed nodes wrong: %v", body)
	}
}

func TestSimRankBadParams(t *testing.T) {
	s, _ := testServer(t, nil)
	for _, path := range []string{
		"/simrank",           // missing both
		"/simrank?u=3",       // missing v
		"/simrank?u=abc&v=1", // junk
		"/simrank?u=999&v=1", // out of range
		"/simrank?u=-1&v=1",  // negative
	} {
		rec, body := get(t, s, path)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", path, rec.Code)
		}
		if body["error"] == "" {
			t.Fatalf("%s: no error message", path)
		}
	}
}

func TestSourceEndpoint(t *testing.T) {
	s, ix := testServer(t, nil)
	rec, body := get(t, s, "/source?u=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	scores := body["scores"].([]interface{})
	if len(scores) != ix.Graph().NumNodes() {
		t.Fatalf("got %d scores", len(scores))
	}
	want := ix.SingleSource(5, nil)
	first := scores[0].(map[string]interface{})
	if first["score"].(float64) != want[0] {
		t.Fatalf("score[0] mismatch")
	}
}

func TestSourceLimit(t *testing.T) {
	s, _ := testServer(t, nil)
	_, body := get(t, s, "/source?u=5&limit=3")
	if got := len(body["scores"].([]interface{})); got != 3 {
		t.Fatalf("limit ignored: %d scores", got)
	}
	rec, _ := get(t, s, "/source?u=5&limit=-2")
	if rec.Code != http.StatusBadRequest {
		t.Fatal("negative limit accepted")
	}
}

func TestTopKEndpoint(t *testing.T) {
	s, ix := testServer(t, nil)
	rec, body := get(t, s, "/topk?u=2&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	results := body["results"].([]interface{})
	if len(results) > 5 {
		t.Fatalf("k ignored: %d results", len(results))
	}
	top := ix.TopK(2, 5)
	if len(results) != len(top) {
		t.Fatalf("result count %d vs %d", len(results), len(top))
	}
	for i, raw := range results {
		r := raw.(map[string]interface{})
		if int64(r["node"].(float64)) != int64(top[i].Node) {
			t.Fatalf("result %d node mismatch", i)
		}
	}
	if rec, _ := get(t, s, "/topk?u=2&k=0"); rec.Code != http.StatusBadRequest {
		t.Fatal("k=0 accepted")
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, ix := testServer(t, nil)
	rec, body := get(t, s, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if int(body["nodes"].(float64)) != ix.Graph().NumNodes() {
		t.Fatalf("stats nodes wrong: %v", body["nodes"])
	}
	if body["error_bound"].(float64) != ix.ErrorBound() {
		t.Fatal("stats error bound wrong")
	}
}

func TestLabelMapping(t *testing.T) {
	labels := make([]int64, 40)
	for i := range labels {
		labels[i] = int64(1000 + i*10) // external labels 1000, 1010, ...
	}
	s, ix := testServer(t, labels)
	rec, body := get(t, s, "/simrank?u=1030&v=1070")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got, want := body["score"].(float64), ix.SimRank(3, 7); got != want {
		t.Fatalf("label-mapped score %v, want %v", got, want)
	}
	if body["u"].(float64) != 1030 {
		t.Fatal("response not in external labels")
	}
	// Unknown label must 400.
	if rec, _ := get(t, s, "/simrank?u=1035&v=1070"); rec.Code != http.StatusBadRequest {
		t.Fatal("unknown label accepted")
	}
}

func TestConcurrentRequests(t *testing.T) {
	s, ix := testServer(t, nil)
	want := ix.SimRank(1, 2)
	var wg sync.WaitGroup
	fail := make(chan string, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				req := httptest.NewRequest(http.MethodGet, "/simrank?u=1&v=2", nil)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				var body map[string]interface{}
				if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
					fail <- "bad json"
					return
				}
				if body["score"].(float64) != want {
					fail <- "score drift under concurrency"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	if msg, bad := <-fail; bad {
		t.Fatal(msg)
	}
}
