package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"sling"
	"sling/internal/rng"
)

// Direct-index reference answers for asserting HTTP responses. The
// facade API is context-aware and error-uniform; tests use background
// contexts and fail fast on errors.
func pairScore(t *testing.T, ix *sling.Index, u, v sling.NodeID) float64 {
	t.Helper()
	s, err := ix.SimRank(context.Background(), u, v)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sourceVec(t *testing.T, ix *sling.Index, u sling.NodeID) []float64 {
	t.Helper()
	row, err := ix.SingleSource(context.Background(), u, nil)
	if err != nil {
		t.Fatal(err)
	}
	return row
}

func topK(t *testing.T, ix *sling.Index, u sling.NodeID, k int) []sling.Scored {
	t.Helper()
	top, err := ix.TopK(context.Background(), u, k)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func sourceTop(t *testing.T, ix *sling.Index, u sling.NodeID, limit int) []sling.Scored {
	t.Helper()
	top, err := ix.SourceTop(context.Background(), u, limit)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func testServer(t *testing.T, labels []int64) (*Server, *sling.Index) {
	t.Helper()
	r := rng.New(5)
	n := 40
	b := sling.NewGraphBuilder(n)
	for i := 0; i < 200; i++ {
		b.AddEdge(sling.NodeID(r.Intn(n)), sling.NodeID(r.Intn(n)))
	}
	ix, err := sling.Build(b.Build(), sling.WithEps(0.08), sling.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(ix, labels)
	if err != nil {
		t.Fatal(err)
	}
	return s, ix
}

func get(t *testing.T, s *Server, path string) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil && rec.Code == http.StatusOK {
		t.Fatalf("bad JSON from %s: %v (%q)", path, err, rec.Body.String())
	}
	return rec, body
}

func TestHealthz(t *testing.T) {
	s, _ := testServer(t, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
}

func TestSimRankEndpoint(t *testing.T) {
	s, ix := testServer(t, nil)
	rec, body := get(t, s, "/simrank?u=3&v=7")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	want := pairScore(t, ix, 3, 7)
	if got := body["score"].(float64); got != want {
		t.Fatalf("score %v, want %v", got, want)
	}
	if body["u"].(float64) != 3 || body["v"].(float64) != 7 {
		t.Fatalf("echoed nodes wrong: %v", body)
	}
}

func TestSimRankBadParams(t *testing.T) {
	s, _ := testServer(t, nil)
	for _, path := range []string{
		"/simrank",           // missing both
		"/simrank?u=3",       // missing v
		"/simrank?u=abc&v=1", // junk
		"/simrank?u=999&v=1", // out of range
		"/simrank?u=-1&v=1",  // negative
	} {
		rec, body := get(t, s, path)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", path, rec.Code)
		}
		if body["error"] == "" {
			t.Fatalf("%s: no error message", path)
		}
	}
}

func TestSourceEndpoint(t *testing.T) {
	s, ix := testServer(t, nil)
	rec, body := get(t, s, "/source?u=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	scores := body["scores"].([]interface{})
	if len(scores) != ix.Graph().NumNodes() {
		t.Fatalf("got %d scores", len(scores))
	}
	want := sourceVec(t, ix, 5)
	first := scores[0].(map[string]interface{})
	if first["score"].(float64) != want[0] {
		t.Fatalf("score[0] mismatch")
	}
}

func TestSourceLimit(t *testing.T) {
	s, _ := testServer(t, nil)
	_, body := get(t, s, "/source?u=5&limit=3")
	if got := len(body["scores"].([]interface{})); got != 3 {
		t.Fatalf("limit ignored: %d scores", got)
	}
	rec, _ := get(t, s, "/source?u=5&limit=-2")
	if rec.Code != http.StatusBadRequest {
		t.Fatal("negative limit accepted")
	}
}

func TestTopKEndpoint(t *testing.T) {
	s, ix := testServer(t, nil)
	rec, body := get(t, s, "/topk?u=2&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	results := body["results"].([]interface{})
	if len(results) > 5 {
		t.Fatalf("k ignored: %d results", len(results))
	}
	top := topK(t, ix, 2, 5)
	if len(results) != len(top) {
		t.Fatalf("result count %d vs %d", len(results), len(top))
	}
	for i, raw := range results {
		r := raw.(map[string]interface{})
		if int64(r["node"].(float64)) != int64(top[i].Node) {
			t.Fatalf("result %d node mismatch", i)
		}
	}
	if rec, _ := get(t, s, "/topk?u=2&k=0"); rec.Code != http.StatusBadRequest {
		t.Fatal("k=0 accepted")
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, ix := testServer(t, nil)
	rec, body := get(t, s, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if int(body["nodes"].(float64)) != ix.Graph().NumNodes() {
		t.Fatalf("stats nodes wrong: %v", body["nodes"])
	}
	if body["error_bound"].(float64) != ix.ErrorBound() {
		t.Fatal("stats error bound wrong")
	}
}

func TestLabelMapping(t *testing.T) {
	labels := make([]int64, 40)
	for i := range labels {
		labels[i] = int64(1000 + i*10) // external labels 1000, 1010, ...
	}
	s, ix := testServer(t, labels)
	rec, body := get(t, s, "/simrank?u=1030&v=1070")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got, want := body["score"].(float64), pairScore(t, ix, 3, 7); got != want {
		t.Fatalf("label-mapped score %v, want %v", got, want)
	}
	if body["u"].(float64) != 1030 {
		t.Fatal("response not in external labels")
	}
	// Unknown label must 400.
	if rec, _ := get(t, s, "/simrank?u=1035&v=1070"); rec.Code != http.StatusBadRequest {
		t.Fatal("unknown label accepted")
	}
}

func TestConcurrentRequests(t *testing.T) {
	s, ix := testServer(t, nil)
	want := pairScore(t, ix, 1, 2)
	var wg sync.WaitGroup
	fail := make(chan string, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				req := httptest.NewRequest(http.MethodGet, "/simrank?u=1&v=2", nil)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				var body map[string]interface{}
				if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
					fail <- "bad json"
					return
				}
				if body["score"].(float64) != want {
					fail <- "score drift under concurrency"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	if msg, bad := <-fail; bad {
		t.Fatal(msg)
	}
}

func postBatch(t *testing.T, s *Server, body string) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var out map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil && rec.Code == http.StatusOK {
		t.Fatalf("bad JSON from /batch: %v (%q)", err, rec.Body.String())
	}
	return rec, out
}

func TestSourceLimitReturnsTopScores(t *testing.T) {
	s, ix := testServer(t, nil)
	_, body := get(t, s, "/source?u=5&limit=4")
	scores := body["scores"].([]interface{})
	if len(scores) != 4 {
		t.Fatalf("limit ignored: %d scores", len(scores))
	}
	want := sourceTop(t, ix, 5, 4)
	for i, raw := range scores {
		e := raw.(map[string]interface{})
		if int64(e["node"].(float64)) != int64(want[i].Node) || e["score"].(float64) != want[i].Score {
			t.Fatalf("entry %d = %v, want %+v", i, e, want[i])
		}
	}
	// Descending by score: the head must be the source itself (s(u,u)=1
	// dominates), not node 0 of an ID-order prefix.
	if int64(scores[0].(map[string]interface{})["node"].(float64)) != 5 {
		t.Fatal("limit prefix is not score-ordered")
	}
	for i := 1; i < len(scores); i++ {
		if scores[i].(map[string]interface{})["score"].(float64) > scores[i-1].(map[string]interface{})["score"].(float64) {
			t.Fatal("scores not descending")
		}
	}
}

func TestBatchHappyPath(t *testing.T) {
	s, ix := testServer(t, nil)
	rec, body := postBatch(t, s, `[
		{"op":"simrank","u":3,"v":7},
		{"op":"topk","u":2,"k":5},
		{"op":"source","u":5,"limit":3},
		{"op":"simrank","u":0,"v":0}
	]`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	results := body["results"].([]interface{})
	if len(results) != 4 {
		t.Fatalf("%d results", len(results))
	}
	r0 := results[0].(map[string]interface{})
	if r0["score"].(float64) != pairScore(t, ix, 3, 7) {
		t.Fatalf("batch simrank %v != direct", r0["score"])
	}
	r1 := results[1].(map[string]interface{})
	top := topK(t, ix, 2, 5)
	got := r1["results"].([]interface{})
	if len(got) != len(top) {
		t.Fatalf("batch topk %d results, want %d", len(got), len(top))
	}
	for i := range got {
		e := got[i].(map[string]interface{})
		if int64(e["node"].(float64)) != int64(top[i].Node) || e["score"].(float64) != top[i].Score {
			t.Fatalf("batch topk entry %d mismatch", i)
		}
	}
	r2 := results[2].(map[string]interface{})
	if n := len(r2["scores"].([]interface{})); n != 3 {
		t.Fatalf("batch source returned %d scores", n)
	}
	r3 := results[3].(map[string]interface{})
	if r3["score"].(float64) != pairScore(t, ix, 0, 0) {
		t.Fatal("batch self simrank mismatch")
	}
}

func TestBatchMatchesSerialUnderConcurrentRequests(t *testing.T) {
	s, ix := testServer(t, nil)
	want := pairScore(t, ix, 1, 2)
	var wg sync.WaitGroup
	fail := make(chan string, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				req := httptest.NewRequest(http.MethodPost, "/batch",
					strings.NewReader(`[{"op":"simrank","u":1,"v":2},{"op":"topk","u":1,"k":3}]`))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				var body map[string]interface{}
				if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
					fail <- "bad batch json"
					return
				}
				results := body["results"].([]interface{})
				if results[0].(map[string]interface{})["score"].(float64) != want {
					fail <- "batch score drift under concurrency"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	if msg, bad := <-fail; bad {
		t.Fatal(msg)
	}
}

func TestBatchErrors(t *testing.T) {
	s, ix := testServer(t, nil)

	// Non-POST method.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/batch", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /batch status %d, want 405", rec.Code)
	}

	// Malformed JSON.
	if rec, _ := postBatch(t, s, `{"op":`); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed JSON status %d, want 400", rec.Code)
	}

	// Per-op failures answer 200 with error entries, not a failed request.
	rec2, body := postBatch(t, s, `[
		{"op":"simrank","u":3},
		{"op":"zap","u":3},
		{"op":"simrank","u":999,"v":1},
		{"op":"topk","u":1,"k":-2},
		{"op":"topk","u":1,"k":0},
		{"op":"source","u":1,"limit":-1}
	]`)
	if rec2.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec2.Code, rec2.Body.String())
	}
	for i, raw := range body["results"].([]interface{}) {
		if raw.(map[string]interface{})["error"] == nil {
			t.Fatalf("op %d did not report an error: %v", i, raw)
		}
	}

	// Oversized batches are rejected outright.
	small, err := NewWithConfig(ix, nil, Config{MaxBatchOps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rec, _ := postBatch(t, small, `[{"op":"simrank","u":1,"v":2},{"op":"simrank","u":1,"v":2},{"op":"simrank","u":1,"v":2}]`); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch status %d, want 413", rec.Code)
	}

	// Oversized bodies are cut off before they are materialized: the
	// byte bound derived from MaxBatchOps rejects a huge body even when
	// it encodes few ops (here: kilobytes of leading whitespace).
	pad := strings.Repeat(" ", 8192) + `[{"op":"simrank","u":1,"v":2}]`
	if rec, _ := postBatch(t, small, pad); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d, want 413", rec.Code)
	}
}

func TestBatchLabelMapping(t *testing.T) {
	labels := make([]int64, 40)
	for i := range labels {
		labels[i] = int64(1000 + i*10)
	}
	s, ix := testServer(t, labels)
	rec, body := postBatch(t, s, `[{"op":"simrank","u":1030,"v":1070},{"op":"simrank","u":1035,"v":1070}]`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	results := body["results"].([]interface{})
	r0 := results[0].(map[string]interface{})
	if r0["score"].(float64) != pairScore(t, ix, 3, 7) {
		t.Fatal("label-mapped batch score mismatch")
	}
	if r0["u"].(float64) != 1030 {
		t.Fatal("batch response not in external labels")
	}
	if results[1].(map[string]interface{})["error"] == nil {
		t.Fatal("unknown label accepted in batch")
	}
}

// Non-GET methods on the GET endpoints must 405 with an Allow header,
// like /batch does for non-POST.
func TestGetEndpointsRejectOtherMethods(t *testing.T) {
	s, _ := testServer(t, nil)
	for _, path := range []string{"/simrank?u=1&v=2", "/source?u=1", "/topk?u=1&k=3", "/stats", "/healthz"} {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(method, path, strings.NewReader("{}")))
			if rec.Code != http.StatusMethodNotAllowed {
				t.Fatalf("%s %s: status %d, want 405", method, path, rec.Code)
			}
			if allow := rec.Header().Get("Allow"); !strings.Contains(allow, "GET") {
				t.Fatalf("%s %s: Allow header %q", method, path, allow)
			}
		}
	}
}

// Duplicate labels would silently route one external label to the wrong
// node; the constructor must reject them.
func TestDuplicateLabelsRejected(t *testing.T) {
	_, ix := testServer(t, nil)
	labels := make([]int64, 40)
	for i := range labels {
		labels[i] = int64(1000 + i*10)
	}
	labels[7] = labels[3] // collide
	if _, err := NewWithConfig(ix, labels, Config{}); err == nil {
		t.Fatal("duplicate labels accepted")
	}
	labels[7] = 1070
	if _, err := NewWithConfig(ix, labels, Config{}); err != nil {
		t.Fatalf("distinct labels rejected: %v", err)
	}
}

// Score lists must always encode as JSON arrays, never null — clients
// iterate them without a null check.
func TestEmptyScoreListsEncodeAsArrays(t *testing.T) {
	s, _ := testServer(t, nil)
	rec, _ := get(t, s, "/source?u=5&limit=0")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, `"scores":[]`) {
		t.Fatalf("limit=0 scores not an empty array: %s", body)
	}
	rec2, _ := postBatch(t, s, `[{"op":"source","u":5,"limit":0}]`)
	if rec2.Code != http.StatusOK {
		t.Fatalf("batch status %d", rec2.Code)
	}
	if body := rec2.Body.String(); !strings.Contains(body, `"scores":[]`) {
		t.Fatalf("batch limit=0 scores not an empty array: %s", body)
	}
}

// diskServer builds the same index testServer uses, saves it, and serves
// it disk-resident with an entry cache.
func diskServer(t *testing.T, labels []int64) (*Server, *Server, *sling.Index) {
	t.Helper()
	mem, ix := testServer(t, labels)
	path := t.TempDir() + "/index.sling"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	di, err := sling.OpenDiskWithOptions(path, ix.Graph(), &sling.DiskOptions{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { di.Close() })
	disk, err := NewDisk(di, labels, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return disk, mem, ix
}

// Every endpoint served disk-resident must answer exactly like the
// in-memory server over the same index.
func TestDiskServerMatchesMemoryServer(t *testing.T) {
	disk, mem, _ := diskServer(t, nil)
	for _, path := range []string{
		"/simrank?u=3&v=7",
		"/source?u=5&limit=4",
		"/source?u=5",
		"/topk?u=2&k=5",
		"/source?u=5&limit=0",
	} {
		recD, _ := get(t, disk, path)
		recM, _ := get(t, mem, path)
		if recD.Code != http.StatusOK || recM.Code != http.StatusOK {
			t.Fatalf("%s: disk %d mem %d", path, recD.Code, recM.Code)
		}
		if recD.Body.String() != recM.Body.String() {
			t.Fatalf("%s: disk body %q != memory body %q", path, recD.Body.String(), recM.Body.String())
		}
	}
	body := `[{"op":"simrank","u":3,"v":7},{"op":"topk","u":2,"k":5},{"op":"source","u":5,"limit":3}]`
	recD, _ := postBatch(t, disk, body)
	recM, _ := postBatch(t, mem, body)
	if recD.Code != http.StatusOK {
		t.Fatalf("disk batch status %d", recD.Code)
	}
	if recD.Body.String() != recM.Body.String() {
		t.Fatalf("batch: disk %q != memory %q", recD.Body.String(), recM.Body.String())
	}
}

// Disk-mode /stats must report the serving mode and cache counters.
func TestDiskServerStats(t *testing.T) {
	disk, _, _ := diskServer(t, nil)
	// Warm the cache, then hit it.
	get(t, disk, "/simrank?u=1&v=2")
	get(t, disk, "/simrank?u=1&v=2")
	rec, body := get(t, disk, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if body["mode"] != "disk" {
		t.Fatalf("mode = %v, want disk", body["mode"])
	}
	cache, ok := body["cache"].(map[string]interface{})
	if !ok {
		t.Fatalf("no cache stats in %v", body)
	}
	if cache["hits"].(float64) == 0 {
		t.Fatalf("no cache hits recorded: %v", cache)
	}
	if body["entries"].(float64) == 0 {
		t.Fatal("stats entries missing")
	}
}

// Disk mode with label mapping end to end.
func TestDiskServerLabelMapping(t *testing.T) {
	labels := make([]int64, 40)
	for i := range labels {
		labels[i] = int64(1000 + i*10)
	}
	disk, _, ix := diskServer(t, labels)
	rec, body := get(t, disk, "/simrank?u=1030&v=1070")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got, want := body["score"].(float64), pairScore(t, ix, 3, 7); got != want {
		t.Fatalf("label-mapped disk score %v, want %v", got, want)
	}
	if body["u"].(float64) != 1030 {
		t.Fatal("disk response not in external labels")
	}
}
