package server

import (
	"sling"
	"sling/internal/metrics"
)

// Per-mode /stats documents. Query routing needs no per-backend code at
// all — every handler talks sling.Querier — so the only backend-aware
// surface left is observability: /stats serves a typed view selected by
// the backend's concrete type (the JSON field sets are golden-schema
// pinned in stats_schema_test.go), and registerBackendGauges bridges
// each backend's internal counters — the disk index's entry cache, the
// dynamic index's epoch/staleness/rebuild state — into the metrics
// registry so GET /metrics exposes them alongside the HTTP instruments.

// memoryStatsView is the /stats document of an in-memory index.
type memoryStatsView struct {
	Mode        string  `json:"mode"`
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges"`
	Entries     int     `json:"entries"`
	AvgEntries  float64 `json:"avg_entries"`
	MaxEntries  int     `json:"max_entries"`
	IndexBytes  int64   `json:"index_bytes"`
	GraphBytes  int64   `json:"graph_bytes"`
	ErrorBound  float64 `json:"error_bound"`
	DecayFactor float64 `json:"decay_factor"`
	CanceledOps uint64  `json:"canceled_ops"`
}

// cacheStatsView nests the disk index's entry-cache counters.
type cacheStatsView struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
}

// diskStatsView is the /stats document of a disk-resident index.
type diskStatsView struct {
	Mode          string         `json:"mode"`
	Nodes         int            `json:"nodes"`
	Edges         int            `json:"edges"`
	Entries       int64          `json:"entries"`
	ResidentBytes int64          `json:"resident_bytes"`
	GraphBytes    int64          `json:"graph_bytes"`
	ErrorBound    float64        `json:"error_bound"`
	DecayFactor   float64        `json:"decay_factor"`
	Cache         cacheStatsView `json:"cache"`
	CanceledOps   uint64         `json:"canceled_ops"`
}

// dynamicStatsView is the /stats document of an updatable index.
type dynamicStatsView struct {
	Mode             string  `json:"mode"`
	Nodes            int     `json:"nodes"`
	Edges            int     `json:"edges"`
	Epoch            uint64  `json:"epoch"`
	AffectedNodes    int     `json:"affected_nodes"`
	StaleOps         int     `json:"stale_ops"`
	TotalOps         uint64  `json:"total_ops"`
	Rebuilds         uint64  `json:"rebuilds"`
	RebuildRunning   bool    `json:"rebuild_running"`
	RebuildThreshold int     `json:"rebuild_threshold"`
	EpochsDrained    uint64  `json:"epochs_drained"`
	MCWalks          int     `json:"mc_walks"`
	MCDepth          int     `json:"mc_depth"`
	IndexBytes       int64   `json:"index_bytes"`
	ErrorBound       float64 `json:"error_bound"`
	DecayFactor      float64 `json:"decay_factor"`
	CanceledOps      uint64  `json:"canceled_ops"`

	// Durable is present only when the graph journals to disk.
	Durable *durableStatsView `json:"durable,omitempty"`
}

// durableStatsView is the nested WAL/snapshot section of the dynamic
// /stats document.
type durableStatsView struct {
	LSN              uint64 `json:"lsn"`
	WALSegments      int    `json:"wal_segments"`
	WALBytes         int64  `json:"wal_bytes"`
	Snapshots        int    `json:"snapshots"`
	LastSnapshotLSN  uint64 `json:"last_snapshot_lsn"`
	Appends          uint64 `json:"appends"`
	SnapshotsWritten uint64 `json:"snapshots_written"`
}

// querierStatsView is the mode-agnostic fallback for NewQuerier
// backends: everything QuerierMeta can say about the backend.
type querierStatsView struct {
	Mode        string  `json:"mode"`
	Nodes       int     `json:"nodes"`
	ErrorBound  float64 `json:"error_bound"`
	DecayFactor float64 `json:"decay_factor"`
	Clamped     bool    `json:"clamped"`
	Epoch       uint64  `json:"epoch"`
	CanceledOps uint64  `json:"canceled_ops"`
}

// durableView maps the dynamic layer's durable stats into the nested
// /stats section, nil when the graph has no durable storage.
func durableView(d sling.DynamicDurableStats) *durableStatsView {
	if !d.Enabled {
		return nil
	}
	return &durableStatsView{
		LSN:              d.LSN,
		WALSegments:      d.WALSegments,
		WALBytes:         d.WALBytes,
		Snapshots:        d.Snapshots,
		LastSnapshotLSN:  d.LastSnapshotLSN,
		Appends:          d.Appends,
		SnapshotsWritten: d.SnapshotsWritten,
	}
}

// statsView builds the typed /stats document for a backend, dispatching
// on its concrete type.
func statsView(q sling.Querier, canceled uint64) interface{} {
	switch b := q.(type) {
	case *sling.Index:
		st := b.Stats()
		g := b.Graph()
		return memoryStatsView{
			Mode:        "memory",
			Nodes:       g.NumNodes(),
			Edges:       g.NumEdges(),
			Entries:     st.Entries,
			AvgEntries:  st.AvgEntries,
			MaxEntries:  st.MaxEntries,
			IndexBytes:  st.Bytes,
			GraphBytes:  g.Bytes(),
			ErrorBound:  b.ErrorBound(),
			DecayFactor: b.C(),
			CanceledOps: canceled,
		}
	case *sling.DiskIndex:
		g := b.Graph()
		cs := b.CacheStats()
		return diskStatsView{
			Mode:          "disk",
			Nodes:         g.NumNodes(),
			Edges:         g.NumEdges(),
			Entries:       b.NumEntries(),
			ResidentBytes: b.Bytes(),
			GraphBytes:    g.Bytes(),
			ErrorBound:    b.ErrorBound(),
			DecayFactor:   b.C(),
			Cache: cacheStatsView{
				Hits:     cs.Hits,
				Misses:   cs.Misses,
				Entries:  cs.Entries,
				Bytes:    cs.Bytes,
				MaxBytes: cs.MaxBytes,
			},
			CanceledOps: canceled,
		}
	case *sling.DynamicIndex:
		st := b.Stats()
		return dynamicStatsView{
			Mode:             "dynamic",
			Nodes:            st.Nodes,
			Edges:            st.Edges,
			Epoch:            st.Epoch,
			AffectedNodes:    st.AffectedNodes,
			StaleOps:         st.StaleOps,
			TotalOps:         st.TotalOps,
			Rebuilds:         st.Rebuilds,
			RebuildRunning:   st.RebuildRunning,
			RebuildThreshold: st.RebuildThreshold,
			EpochsDrained:    st.EpochsDrained,
			MCWalks:          st.NumWalks,
			MCDepth:          st.Depth,
			IndexBytes:       st.IndexBytes,
			ErrorBound:       st.ErrorBound,
			DecayFactor:      b.C(),
			CanceledOps:      canceled,
			Durable:          durableView(st.Durable),
		}
	default:
		m := q.Meta()
		return querierStatsView{
			Mode:        m.Name,
			Nodes:       m.Nodes,
			ErrorBound:  m.Eps,
			DecayFactor: m.C,
			Clamped:     m.Clamped,
			Epoch:       m.Epoch,
			CanceledOps: canceled,
		}
	}
}

// Backend instrument names, shared with the exposition golden test.
const (
	MetricIndexBytes          = "sling_index_bytes"
	MetricIndexEntries        = "sling_index_entries"
	MetricDiskCacheHits       = "sling_disk_cache_hits"
	MetricDiskCacheMisses     = "sling_disk_cache_misses"
	MetricDiskCacheBytes      = "sling_disk_cache_bytes"
	MetricDynamicEpoch        = "sling_dynamic_epoch"
	MetricDynamicStaleOps     = "sling_dynamic_stale_ops"
	MetricDynamicRebuilds     = "sling_dynamic_rebuilds"
	MetricDynamicAffected     = "sling_dynamic_affected_nodes"
	MetricDynamicRebuildBusy  = "sling_dynamic_rebuild_running"
	MetricDynamicEpochsFreed  = "sling_dynamic_epochs_drained"
	MetricDynamicTotalOps     = "sling_dynamic_total_ops"
	MetricDiskCacheMaxBytes   = "sling_disk_cache_max_bytes"
	MetricDiskCacheEntryCount = "sling_disk_cache_entries"
)

// registerBackendGauges bridges a single-graph backend's internal
// counters into the registry as collect-on-scrape gauges, so the same
// numbers /stats reports are scrapeable from GET /metrics without a
// second bookkeeping path.
func registerBackendGauges(reg *metrics.Registry, q sling.Querier) {
	switch b := q.(type) {
	case *sling.Index:
		reg.GaugeFunc(MetricIndexBytes, "resident index bytes", func() float64 { return float64(b.Bytes()) })
		reg.GaugeFunc(MetricIndexEntries, "stored HP entries", func() float64 { return float64(b.Stats().Entries) })
	case *sling.DiskIndex:
		reg.GaugeFunc(MetricDiskCacheHits, "disk entry-cache hits", func() float64 { return float64(b.CacheStats().Hits) })
		reg.GaugeFunc(MetricDiskCacheMisses, "disk entry-cache misses", func() float64 { return float64(b.CacheStats().Misses) })
		reg.GaugeFunc(MetricDiskCacheEntryCount, "disk entry-cache entries", func() float64 { return float64(b.CacheStats().Entries) })
		reg.GaugeFunc(MetricDiskCacheBytes, "disk entry-cache occupancy", func() float64 { return float64(b.CacheStats().Bytes) })
		reg.GaugeFunc(MetricDiskCacheMaxBytes, "disk entry-cache capacity", func() float64 { return float64(b.CacheStats().MaxBytes) })
	case *sling.DynamicIndex:
		reg.GaugeFunc(MetricDynamicEpoch, "serving index generation", func() float64 { return float64(b.Stats().Epoch) })
		reg.GaugeFunc(MetricDynamicStaleOps, "applied ops not yet rebuilt", func() float64 { return float64(b.Stats().StaleOps) })
		reg.GaugeFunc(MetricDynamicTotalOps, "lifetime applied ops", func() float64 { return float64(b.Stats().TotalOps) })
		reg.GaugeFunc(MetricDynamicRebuilds, "completed epoch swaps", func() float64 { return float64(b.Stats().Rebuilds) })
		reg.GaugeFunc(MetricDynamicAffected, "staleness-frontier size", func() float64 { return float64(b.Stats().AffectedNodes) })
		reg.GaugeFunc(MetricDynamicRebuildBusy, "1 while a rebuild runs", func() float64 {
			if b.Stats().RebuildRunning {
				return 1
			}
			return 0
		})
		reg.GaugeFunc(MetricDynamicEpochsFreed, "retired epochs", func() float64 { return float64(b.Stats().EpochsDrained) })
	}
}
