package server

import (
	"sling"
)

// Per-mode /stats providers. Query routing needs no per-backend code at
// all anymore — every handler talks sling.Querier — so what used to be a
// three-way backend adapter here is now only the observability surface:
// each constructor supplies the stats closure matching its concrete
// index, and unknown backends fall back to the QuerierMeta-derived
// document. The Server injects the shared canceled_ops counter on top.

// memStats reports the fully in-memory index.
func memStats(ix *sling.Index) func() map[string]interface{} {
	return func() map[string]interface{} {
		st := ix.Stats()
		g := ix.Graph()
		return map[string]interface{}{
			"mode":         "memory",
			"nodes":        g.NumNodes(),
			"edges":        g.NumEdges(),
			"entries":      st.Entries,
			"avg_entries":  st.AvgEntries,
			"max_entries":  st.MaxEntries,
			"index_bytes":  st.Bytes,
			"graph_bytes":  g.Bytes(),
			"error_bound":  ix.ErrorBound(),
			"decay_factor": ix.C(),
		}
	}
}

// dynStats reports the updatable index: epoch, staleness frontier, and
// rebuild state on top of the shared fields.
func dynStats(dx *sling.DynamicIndex) func() map[string]interface{} {
	return func() map[string]interface{} {
		st := dx.Stats()
		return map[string]interface{}{
			"mode":              "dynamic",
			"nodes":             st.Nodes,
			"edges":             st.Edges,
			"epoch":             st.Epoch,
			"affected_nodes":    st.AffectedNodes,
			"stale_ops":         st.StaleOps,
			"total_ops":         st.TotalOps,
			"rebuilds":          st.Rebuilds,
			"rebuild_running":   st.RebuildRunning,
			"rebuild_threshold": st.RebuildThreshold,
			"epochs_drained":    st.EpochsDrained,
			"mc_walks":          st.NumWalks,
			"mc_depth":          st.Depth,
			"index_bytes":       st.IndexBytes,
			"error_bound":       st.ErrorBound,
			"decay_factor":      dx.C(),
		}
	}
}

// diskStats reports the disk-resident index (resident metadata plus
// entry-cache counters).
func diskStats(di *sling.DiskIndex) func() map[string]interface{} {
	return func() map[string]interface{} {
		g := di.Graph()
		cs := di.CacheStats()
		return map[string]interface{}{
			"mode":           "disk",
			"nodes":          g.NumNodes(),
			"edges":          g.NumEdges(),
			"entries":        di.NumEntries(),
			"resident_bytes": di.Bytes(),
			"graph_bytes":    g.Bytes(),
			"error_bound":    di.ErrorBound(),
			"decay_factor":   di.C(),
			"cache": map[string]interface{}{
				"hits":      cs.Hits,
				"misses":    cs.Misses,
				"entries":   cs.Entries,
				"bytes":     cs.Bytes,
				"max_bytes": cs.MaxBytes,
			},
		}
	}
}

// querierStats is the mode-agnostic fallback for NewQuerier backends:
// everything QuerierMeta can say about the backend.
func querierStats(q sling.Querier) func() map[string]interface{} {
	return func() map[string]interface{} {
		m := q.Meta()
		return map[string]interface{}{
			"mode":         m.Name,
			"nodes":        m.Nodes,
			"error_bound":  m.Eps,
			"decay_factor": m.C,
			"clamped":      m.Clamped,
			"epoch":        m.Epoch,
		}
	}
}
