package server

import (
	"sling"
)

// backend abstracts the index the server queries, so the same endpoint
// surface serves either the fully in-memory index or the Section 5.4
// disk-resident one. In-memory queries cannot fail, so the memory
// adapter always returns nil errors; the disk adapter surfaces I/O
// errors, which handlers map to 500s.
type backend interface {
	SimRank(u, v sling.NodeID) (float64, error)
	SingleSource(u sling.NodeID) ([]float64, error)
	SourceTop(u sling.NodeID, limit int) ([]sling.Scored, error)
	TopK(u sling.NodeID, k int) ([]sling.Scored, error)
	NumNodes() int
	Stats() map[string]interface{}
}

// memBackend serves from a fully in-memory index.
type memBackend struct {
	ix *sling.Index
}

func (b memBackend) SimRank(u, v sling.NodeID) (float64, error) { return b.ix.SimRank(u, v), nil }

func (b memBackend) SingleSource(u sling.NodeID) ([]float64, error) {
	return b.ix.SingleSource(u, nil), nil
}

func (b memBackend) SourceTop(u sling.NodeID, limit int) ([]sling.Scored, error) {
	return b.ix.SourceTop(u, limit), nil
}

func (b memBackend) TopK(u sling.NodeID, k int) ([]sling.Scored, error) {
	return b.ix.TopK(u, k), nil
}

func (b memBackend) NumNodes() int { return b.ix.Graph().NumNodes() }

func (b memBackend) Stats() map[string]interface{} {
	st := b.ix.Stats()
	g := b.ix.Graph()
	return map[string]interface{}{
		"mode":         "memory",
		"nodes":        g.NumNodes(),
		"edges":        g.NumEdges(),
		"entries":      st.Entries,
		"avg_entries":  st.AvgEntries,
		"max_entries":  st.MaxEntries,
		"index_bytes":  st.Bytes,
		"graph_bytes":  g.Bytes(),
		"error_bound":  b.ix.ErrorBound(),
		"decay_factor": b.ix.C(),
	}
}

// dynBackend serves from an updatable index: queries go through the
// dynamic layer's epoch-swapped routing (static index for unaffected
// nodes, fresh estimation otherwise). Like the in-memory backend its
// queries cannot fail.
type dynBackend struct {
	dx *sling.DynamicIndex
}

func (b dynBackend) SimRank(u, v sling.NodeID) (float64, error) { return b.dx.SimRank(u, v), nil }

func (b dynBackend) SingleSource(u sling.NodeID) ([]float64, error) {
	return b.dx.SingleSource(u, nil), nil
}

func (b dynBackend) SourceTop(u sling.NodeID, limit int) ([]sling.Scored, error) {
	return b.dx.SourceTop(u, limit), nil
}

func (b dynBackend) TopK(u sling.NodeID, k int) ([]sling.Scored, error) {
	return b.dx.TopK(u, k), nil
}

func (b dynBackend) NumNodes() int { return b.dx.NumNodes() }

func (b dynBackend) Stats() map[string]interface{} {
	st := b.dx.Stats()
	return map[string]interface{}{
		"mode":              "dynamic",
		"nodes":             st.Nodes,
		"edges":             st.Edges,
		"epoch":             st.Epoch,
		"affected_nodes":    st.AffectedNodes,
		"stale_ops":         st.StaleOps,
		"total_ops":         st.TotalOps,
		"rebuilds":          st.Rebuilds,
		"rebuild_running":   st.RebuildRunning,
		"rebuild_threshold": st.RebuildThreshold,
		"epochs_drained":    st.EpochsDrained,
		"mc_walks":          st.NumWalks,
		"mc_depth":          st.Depth,
		"index_bytes":       st.IndexBytes,
		"error_bound":       st.ErrorBound,
		"decay_factor":      b.dx.C(),
	}
}

// diskBackend serves from a disk-resident index (pooled scratch, shared
// entry cache); only O(n) metadata is memory-resident.
type diskBackend struct {
	di *sling.DiskIndex
}

func (b diskBackend) SimRank(u, v sling.NodeID) (float64, error) { return b.di.SimRank(u, v) }

func (b diskBackend) SingleSource(u sling.NodeID) ([]float64, error) {
	return b.di.SingleSource(u, nil)
}

func (b diskBackend) SourceTop(u sling.NodeID, limit int) ([]sling.Scored, error) {
	return b.di.SourceTop(u, limit)
}

func (b diskBackend) TopK(u sling.NodeID, k int) ([]sling.Scored, error) {
	return b.di.TopK(u, k)
}

func (b diskBackend) NumNodes() int { return b.di.Graph().NumNodes() }

func (b diskBackend) Stats() map[string]interface{} {
	g := b.di.Graph()
	cs := b.di.CacheStats()
	return map[string]interface{}{
		"mode":           "disk",
		"nodes":          g.NumNodes(),
		"edges":          g.NumEdges(),
		"entries":        b.di.NumEntries(),
		"resident_bytes": b.di.Bytes(),
		"graph_bytes":    g.Bytes(),
		"error_bound":    b.di.ErrorBound(),
		"decay_factor":   b.di.C(),
		"cache": map[string]interface{}{
			"hits":      cs.Hits,
			"misses":    cs.Misses,
			"entries":   cs.Entries,
			"bytes":     cs.Bytes,
			"max_bytes": cs.MaxBytes,
		},
	}
}
