package server

import (
	"fmt"
	"path/filepath"
	"testing"

	"sling"
	"sling/internal/rng"
)

// statsSchema declares the exact field set and JSON types of one server
// mode's /stats document. Decoded JSON numbers are float64, so "number"
// covers ints and floats; nested objects declare their own schema.
type statsSchema map[string]interface{}

// memoryStatsSchema et al. are the golden shapes: a field silently
// disappearing, appearing, or changing JSON type fails the test. Extend
// them deliberately when /stats grows.
var (
	memoryStatsSchema = statsSchema{
		"mode":         "string",
		"nodes":        "number",
		"edges":        "number",
		"entries":      "number",
		"avg_entries":  "number",
		"max_entries":  "number",
		"index_bytes":  "number",
		"graph_bytes":  "number",
		"error_bound":  "number",
		"decay_factor": "number",
		"canceled_ops": "number",
	}
	diskStatsSchema = statsSchema{
		"mode":           "string",
		"nodes":          "number",
		"edges":          "number",
		"entries":        "number",
		"resident_bytes": "number",
		"graph_bytes":    "number",
		"error_bound":    "number",
		"decay_factor":   "number",
		"canceled_ops":   "number",
		"cache": statsSchema{
			"hits":      "number",
			"misses":    "number",
			"entries":   "number",
			"bytes":     "number",
			"max_bytes": "number",
		},
	}
	dynamicStatsSchema = statsSchema{
		"mode":              "string",
		"nodes":             "number",
		"edges":             "number",
		"epoch":             "number",
		"affected_nodes":    "number",
		"stale_ops":         "number",
		"total_ops":         "number",
		"rebuilds":          "number",
		"rebuild_running":   "bool",
		"rebuild_threshold": "number",
		"epochs_drained":    "number",
		"mc_walks":          "number",
		"mc_depth":          "number",
		"index_bytes":       "number",
		"error_bound":       "number",
		"decay_factor":      "number",
		"canceled_ops":      "number",
	}
	// Durably-backed dynamic graphs grow a nested durable section; the
	// plain dynamic document must keep omitting it.
	dynamicDurableStatsSchema = func() statsSchema {
		s := statsSchema{}
		for k, v := range dynamicStatsSchema {
			s[k] = v
		}
		s["durable"] = statsSchema{
			"lsn":               "number",
			"wal_segments":      "number",
			"wal_bytes":         "number",
			"snapshots":         "number",
			"last_snapshot_lsn": "number",
			"appends":           "number",
			"snapshots_written": "number",
		}
		return s
	}()
)

// checkSchema asserts doc matches schema exactly: no missing fields, no
// extra fields, no type changes.
func checkSchema(t *testing.T, path string, schema statsSchema, doc map[string]interface{}) {
	t.Helper()
	for field, want := range schema {
		got, ok := doc[field]
		if !ok {
			t.Errorf("%s: field %q missing", path, field)
			continue
		}
		switch w := want.(type) {
		case statsSchema:
			nested, ok := got.(map[string]interface{})
			if !ok {
				t.Errorf("%s: field %q is %T, want object", path, field, got)
				continue
			}
			checkSchema(t, path+"."+field, w, nested)
		case string:
			var typeOK bool
			switch w {
			case "string":
				_, typeOK = got.(string)
			case "number":
				_, typeOK = got.(float64)
			case "bool":
				_, typeOK = got.(bool)
			default:
				t.Fatalf("bad schema type %q", w)
			}
			if !typeOK {
				t.Errorf("%s: field %q is %T, want %s", path, field, got, w)
			}
		}
	}
	for field := range doc {
		if _, ok := schema[field]; !ok {
			t.Errorf("%s: unexpected field %q = %v (extend the golden schema deliberately)",
				path, field, doc[field])
		}
	}
}

// TestStatsSchemaPerMode pins the /stats JSON shape of every server
// mode, so monitoring that scrapes these fields can't be broken
// silently.
func TestStatsSchemaPerMode(t *testing.T) {
	r := rng.New(9)
	n := 30
	b := sling.NewGraphBuilder(n)
	for i := 0; i < 150; i++ {
		b.AddEdge(sling.NodeID(r.Intn(n)), sling.NodeID(r.Intn(n)))
	}
	g := b.Build()
	opt := &sling.Options{Eps: 0.1, Seed: 13}
	ix, err := sling.Build(g, sling.WithOptions(*opt))
	if err != nil {
		t.Fatal(err)
	}

	modes := []struct {
		name   string // subtest name; "mode" in the document
		mode   string
		schema statsSchema
		make   func(t *testing.T) *Server
	}{
		{"memory", "memory", memoryStatsSchema, func(t *testing.T) *Server {
			s, err := New(ix, nil)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"disk", "disk", diskStatsSchema, func(t *testing.T) *Server {
			path := filepath.Join(t.TempDir(), "ix.slix")
			if err := ix.Save(path); err != nil {
				t.Fatal(err)
			}
			di, err := sling.OpenDiskWithOptions(path, g, &sling.DiskOptions{CacheBytes: 1 << 16})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { di.Close() })
			s, err := NewDisk(di, nil, Config{})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"dynamic", "dynamic", dynamicStatsSchema, func(t *testing.T) *Server {
			dx, err := sling.NewDynamic(g, &sling.DynamicOptions{NumWalks: 32}, sling.WithOptions(*opt))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { dx.Close() })
			s, err := NewDynamic(dx, nil, Config{})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"dynamic-durable", "dynamic", dynamicDurableStatsSchema, func(t *testing.T) *Server {
			dx, err := sling.NewDynamic(g,
				&sling.DynamicOptions{NumWalks: 32, DurableDir: t.TempDir(), DurableNoSync: true},
				sling.WithOptions(*opt))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { dx.Close() })
			s, err := NewDynamic(dx, nil, Config{})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			s := m.make(t)
			rec, body := get(t, s, "/stats")
			if rec.Code != 200 {
				t.Fatalf("/stats: %d", rec.Code)
			}
			if body["mode"] != m.mode {
				t.Fatalf("mode = %v, want %q", body["mode"], m.mode)
			}
			checkSchema(t, fmt.Sprintf("/stats[%s]", m.mode), m.schema, body)
		})
	}
}
