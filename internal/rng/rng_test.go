package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestReseedMatchesNew(t *testing.T) {
	a := New(7)
	a.Uint64()
	a.Reseed(7)
	b := New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Reseed did not restore the stream at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(9)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first output")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniform(t *testing.T) {
	r := New(13)
	const n, trials = 10, 100000
	var counts [n]int
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %v", i, c, want)
		}
	}
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(19)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := New(23)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) empirical rate %v", p, got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(29)
	const p, n = 0.25, 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(p)
	}
	got := float64(sum) / n
	want := (1 - p) / p // mean of failures-before-success geometric
	if math.Abs(got-want) > 0.1 {
		t.Fatalf("Geometric(%v) mean %v, want about %v", p, got, want)
	}
}

func TestGeometricOne(t *testing.T) {
	r := New(31)
	for i := 0; i < 100; i++ {
		if r.Geometric(1) != 0 {
			t.Fatal("Geometric(1) must be 0")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(37)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		out := make([]int, n)
		r.Perm(out)
		seen := make([]bool, n)
		for _, v := range out {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(41)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed content: sum %d != %d", got, sum)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ x, y, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}
