// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by all sampling code in this repository.
//
// The generator is xoshiro256** seeded through SplitMix64, the combination
// recommended by its authors. It is not safe for concurrent use; concurrent
// builders derive independent streams with Split, which uses SplitMix64 to
// decorrelate child seeds. Determinism matters here: the SLING preprocessing
// experiments (Figure 5 of the paper, ten index rebuilds) must be exactly
// reproducible from a seed.
package rng

import "math"

// Source is a deterministic xoshiro256** generator.
// The zero value is not valid; use New.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from seed via SplitMix64 so that nearby seeds
// yield uncorrelated streams.
func New(seed uint64) *Source {
	var r Source
	r.Reseed(seed)
	return &r
}

// Reseed resets the generator state as if freshly created with New(seed).
func (r *Source) Reseed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0, r.s1, r.s2, r.s3 = next(), next(), next(), next()
	// xoshiro requires a non-zero state; SplitMix64 cannot produce four
	// zeros from any seed, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split derives an independent child generator. The child stream is a
// deterministic function of the parent state, and the parent advances, so
// successive Split calls return distinct streams.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int32n returns a uniform int32 in [0, n). It panics if n <= 0.
func (r *Source) Int32n(n int32) int32 {
	if n <= 0 {
		panic("rng: Int32n with non-positive n")
	}
	return int32(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Lemire rejection sampling on the high 64 bits of a 128-bit product.
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	x0, x1 := x&mask, x>>32
	y0, y1 := y&mask, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// Bernoulli returns true with probability p.
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns a sample from the geometric distribution with success
// probability p, counting the number of failures before the first success
// (support {0, 1, 2, ...}). It panics unless 0 < p <= 1.
func (r *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric requires 0 < p <= 1")
	}
	//slingvet:ignore floateq exact sentinel check: p==1 means certain success and log1p(-p) would be -Inf
	if p == 1 {
		return 0
	}
	// Inversion: floor(log(U)/log(1-p)).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Log(u) / math.Log1p(-p))
}

// Perm fills out with a uniform random permutation of [0, len(out)).
func (r *Source) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Shuffle randomizes the order of n elements using the provided swap func.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
