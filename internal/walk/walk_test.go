package walk

import (
	"math"
	"testing"

	"sling/internal/graph"
	"sling/internal/rng"
)

// cycle returns a directed n-cycle 0->1->...->0, where every node has
// exactly one in-neighbor.
func cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return b.Build()
}

// star returns a graph where nodes 1..n-1 all point to node 0
// (so node 0 has n-1 in-neighbors and the others have none).
func star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.NodeID(i), 0)
	}
	return b.Build()
}

func TestNewRejectsBadDecay(t *testing.T) {
	for _, c := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("c=%v accepted", c)
				}
			}()
			New(cycle(3), c, rng.New(1))
		}()
	}
}

func TestWalkLengthGeometric(t *testing.T) {
	// On a cycle every node has an in-neighbor, so walk length (number of
	// steps taken) is geometric with success probability 1-√c and mean
	// √c/(1-√c).
	g := cycle(10)
	const c = 0.6
	w := New(g, c, rng.New(7))
	const trials = 200000
	var total float64
	buf := make([]graph.NodeID, 0, 32)
	for i := 0; i < trials; i++ {
		buf = w.SqrtCWalk(0, buf[:0])
		total += float64(len(buf) - 1)
	}
	mean := total / trials
	sqrtC := math.Sqrt(c)
	want := sqrtC / (1 - sqrtC)
	if math.Abs(mean-want) > 0.05 {
		t.Fatalf("mean walk length %v, want about %v", mean, want)
	}
}

func TestWalkStartsAtSource(t *testing.T) {
	w := New(cycle(5), 0.6, rng.New(3))
	for i := 0; i < 100; i++ {
		path := w.SqrtCWalk(2, nil)
		if len(path) == 0 || path[0] != 2 {
			t.Fatalf("walk does not start at source: %v", path)
		}
	}
}

func TestWalkFollowsInEdges(t *testing.T) {
	g := cycle(5) // in-neighbor of v is v-1 mod 5
	w := New(g, 0.8, rng.New(5))
	for i := 0; i < 200; i++ {
		path := w.SqrtCWalk(3, nil)
		for j := 1; j < len(path); j++ {
			want := (int(path[j-1]) + 4) % 5
			if int(path[j]) != want {
				t.Fatalf("illegal transition %d -> %d", path[j-1], path[j])
			}
		}
	}
}

func TestWalkStopsAtDanglingNode(t *testing.T) {
	g := star(4) // nodes 1..3 have no in-neighbors
	w := New(g, 0.99, rng.New(9))
	for i := 0; i < 100; i++ {
		path := w.SqrtCWalk(0, nil)
		if len(path) > 2 {
			t.Fatalf("walk continued past a dangling node: %v", path)
		}
	}
}

func TestPairMeetsSameNode(t *testing.T) {
	w := New(cycle(4), 0.6, rng.New(11))
	for i := 0; i < 50; i++ {
		if !w.PairMeets(1, 1) {
			t.Fatal("PairMeets(u,u) must always be true")
		}
	}
}

// On the directed n-cycle two walks from different nodes can never meet:
// both walks move backwards deterministically in lockstep, preserving
// their (nonzero) circular distance. So s(u,v)=0 for u!=v.
func TestPairNeverMeetsOnCycle(t *testing.T) {
	w := New(cycle(6), 0.8, rng.New(13))
	for i := 0; i < 2000; i++ {
		if w.PairMeets(0, 3) {
			t.Fatal("walks met on a cycle; impossible")
		}
	}
}

// In-pair graph: u and v share the single in-neighbor z. Then the two
// walks from u and v meet iff both survive their first step, so
// s(u,v) = (√c)² = c.
func TestMeetProbabilitySharedParent(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(2, 0) // I(0) = {2}
	b.AddEdge(2, 1) // I(1) = {2}
	g := b.Build()
	const c = 0.6
	w := New(g, c, rng.New(17))
	got := w.MeetProbability(0, 1, 300000)
	if math.Abs(got-c) > 0.006 {
		t.Fatalf("meet probability %v, want about c=%v", got, c)
	}
}

func TestMeetProbabilityPanicsOnZeroSamples(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(cycle(3), 0.6, rng.New(1)).MeetProbability(0, 1, 0)
}

func TestPairMeetsAfterStartIgnoresStepZero(t *testing.T) {
	// On the cycle, PairMeetsAfterStart(u,u) requires both walks to take a
	// step and land on the same node, which happens with probability c
	// (both survive; the next node is deterministic and equal).
	const c = 0.6
	w := New(cycle(5), c, rng.New(19))
	hits := 0
	const trials = 200000
	for i := 0; i < trials; i++ {
		if w.PairMeetsAfterStart(2, 2) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-c) > 0.006 {
		t.Fatalf("meet-after-start probability %v, want about %v", got, c)
	}
}

func TestReverseWalkTruncation(t *testing.T) {
	w := New(cycle(8), 0.6, rng.New(23))
	for _, tr := range []int{0, 1, 5, 20} {
		path := w.ReverseWalk(0, tr, nil)
		if len(path) != tr+1 {
			t.Fatalf("truncated walk length %d, want %d", len(path), tr+1)
		}
	}
}

func TestReverseWalkStopsWhenDangling(t *testing.T) {
	g := star(3)
	w := New(g, 0.6, rng.New(29))
	path := w.ReverseWalk(0, 10, nil)
	if len(path) != 2 {
		t.Fatalf("reverse walk length %d, want 2 (source + dangling parent)", len(path))
	}
	path = w.ReverseWalk(1, 10, nil)
	if len(path) != 1 {
		t.Fatalf("walk from dangling node length %d, want 1", len(path))
	}
}

func TestFirstMeeting(t *testing.T) {
	cases := []struct {
		a, b []graph.NodeID
		want int
	}{
		{[]graph.NodeID{1, 2, 3}, []graph.NodeID{1, 9, 9}, 0},
		{[]graph.NodeID{1, 2, 3}, []graph.NodeID{4, 2, 9}, 1},
		{[]graph.NodeID{1, 2, 3}, []graph.NodeID{4, 5, 6}, -1},
		{[]graph.NodeID{1, 2}, []graph.NodeID{4, 5, 6, 7}, -1},
		{nil, []graph.NodeID{1}, -1},
		{[]graph.NodeID{5}, []graph.NodeID{5}, 0},
	}
	for i, c := range cases {
		if got := FirstMeeting(c.a, c.b); got != c.want {
			t.Fatalf("case %d: got %d want %d", i, got, c.want)
		}
	}
}

func TestExactHPStepZero(t *testing.T) {
	g := cycle(4)
	hp := ExactHP(g, 0.6, 3)
	for i := 0; i < 4; i++ {
		for k := 0; k < 4; k++ {
			want := 0.0
			if i == k {
				want = 1.0
			}
			if hp[0][i][k] != want {
				t.Fatalf("h0(%d,%d) = %v", i, k, hp[0][i][k])
			}
		}
	}
}

// Observation 1 of the paper: Σ_k h^(ℓ)(i,k) = (√c)^ℓ when no walk ever
// dangles (every node has an in-neighbor).
func TestExactHPMassPerStep(t *testing.T) {
	g := cycle(7)
	const c = 0.6
	maxL := 6
	hp := ExactHP(g, c, maxL)
	for l := 0; l <= maxL; l++ {
		for i := 0; i < 7; i++ {
			sum := 0.0
			for k := 0; k < 7; k++ {
				sum += hp[l][i][k]
			}
			want := math.Pow(math.Sqrt(c), float64(l))
			if math.Abs(sum-want) > 1e-12 {
				t.Fatalf("step %d node %d mass %v, want %v", l, i, sum, want)
			}
		}
	}
}

func TestExactHPDanglingLosesMass(t *testing.T) {
	g := star(3)
	hp := ExactHP(g, 0.6, 2)
	// From node 0 the only step-1 mass is on its in-neighbors 1,2; step 2
	// must be all zero because 1 and 2 are dangling.
	for k := 0; k < 3; k++ {
		if hp[2][0][k] != 0 {
			t.Fatalf("mass escaped past dangling nodes: h2(0,%d)=%v", k, hp[2][0][k])
		}
	}
}

func TestEmpiricalHPMatchesExact(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(3, 1)
	b.AddEdge(4, 2)
	b.AddEdge(0, 3)
	b.AddEdge(2, 4)
	g := b.Build()
	const c = 0.6
	exact := ExactHP(g, c, 4)
	w := New(g, c, rng.New(31))
	for _, u := range []graph.NodeID{0, 1, 2} {
		emp := w.EmpiricalHP(u, 4, 120000)
		for l := 0; l <= 4; l++ {
			for k := 0; k < 5; k++ {
				if math.Abs(emp[l][k]-exact[l][int(u)][k]) > 0.01 {
					t.Fatalf("u=%d l=%d k=%d: empirical %v vs exact %v",
						u, l, k, emp[l][k], exact[l][int(u)][k])
				}
			}
		}
	}
}

func BenchmarkSqrtCWalk(b *testing.B) {
	r := rng.New(1)
	gb := graph.NewBuilder(1000)
	for i := 0; i < 8000; i++ {
		gb.AddEdge(graph.NodeID(r.Intn(1000)), graph.NodeID(r.Intn(1000)))
	}
	g := gb.Build()
	w := New(g, 0.6, rng.New(2))
	buf := make([]graph.NodeID, 0, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = w.SqrtCWalk(graph.NodeID(i%1000), buf[:0])
	}
}

func BenchmarkPairMeets(b *testing.B) {
	r := rng.New(1)
	gb := graph.NewBuilder(1000)
	for i := 0; i < 8000; i++ {
		gb.AddEdge(graph.NodeID(r.Intn(1000)), graph.NodeID(r.Intn(1000)))
	}
	g := gb.Build()
	w := New(g, 0.6, rng.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.PairMeets(graph.NodeID(i%1000), graph.NodeID((i*7)%1000))
	}
}
