// Package walk implements the random-walk machinery behind SimRank
// estimation: the √c-walks of SLING (Section 4.1 of the paper) and the
// truncated reverse random walks of the Monte Carlo baseline
// (Fogaras & Rácz).
//
// A √c-walk from u follows in-edges backwards; at every step it stops with
// probability 1−√c and otherwise moves to a uniformly random in-neighbor.
// Lemma 3 of the paper: s(u, v) equals the probability that independent
// √c-walks from u and v meet, i.e. occupy the same node at the same step.
// A walk stranded on a node with no in-neighbors stops there.
package walk

import (
	"fmt"
	"math"

	"sling/internal/graph"
	"sling/internal/rng"
)

// Walker generates random walks over a fixed graph with a fixed decay
// factor. It is not safe for concurrent use; create one per goroutine with
// independent rng streams.
type Walker struct {
	g     *graph.Graph
	c     float64
	sqrtC float64
	r     *rng.Source
}

// New returns a Walker over g with decay factor c (0 < c < 1), drawing
// randomness from r.
func New(g *graph.Graph, c float64, r *rng.Source) *Walker {
	if c <= 0 || c >= 1 {
		panic(fmt.Sprintf("walk: decay factor %v out of (0,1)", c))
	}
	return &Walker{g: g, c: c, sqrtC: math.Sqrt(c), r: r}
}

// C returns the decay factor.
func (w *Walker) C() float64 { return w.c }

// Rng exposes the walker's random source so callers that interleave walks
// with other sampling (e.g. drawing in-neighbor pairs for SLING's
// correction factors) stay on one deterministic stream.
func (w *Walker) Rng() *rng.Source { return w.r }

// SqrtC returns √c, the per-step continuation probability.
func (w *Walker) SqrtC() float64 { return w.sqrtC }

// step returns the next node of a √c-walk at v, or (-1, false) if the walk
// stops (by the 1−√c coin or because v has no in-neighbors).
func (w *Walker) step(v graph.NodeID) (graph.NodeID, bool) {
	if !w.r.Bernoulli(w.sqrtC) {
		return -1, false
	}
	ins := w.g.InNeighbors(v)
	if len(ins) == 0 {
		return -1, false
	}
	return ins[w.r.Intn(len(ins))], true
}

// SqrtCWalk appends the nodes of one √c-walk from u (starting with u
// itself as step 0) to buf and returns the extended slice.
func (w *Walker) SqrtCWalk(u graph.NodeID, buf []graph.NodeID) []graph.NodeID {
	buf = append(buf, u)
	cur := u
	for {
		next, ok := w.step(cur)
		if !ok {
			return buf
		}
		buf = append(buf, next)
		cur = next
	}
}

// PairMeets simulates two independent √c-walks from u and v and reports
// whether they meet (same node at the same step, including step 0).
// By Lemma 3 the true meeting probability is exactly s(u, v).
func (w *Walker) PairMeets(u, v graph.NodeID) bool {
	if u == v {
		return true
	}
	cu, cv := u, v
	for {
		nu, okU := w.step(cu)
		nv, okV := w.step(cv)
		if !okU || !okV {
			return false
		}
		if nu == nv {
			return true
		}
		cu, cv = nu, nv
	}
}

// PairMeetsAfterStart is PairMeets conditioned to ignore a meeting at step
// 0; it reports whether walks from u and v meet at step >= 1. It is the
// sampling primitive of Algorithms 1 and 4 (estimation of the correction
// factor dₖ), where the two walks start at distinct in-neighbors but may
// still collide later.
func (w *Walker) PairMeetsAfterStart(u, v graph.NodeID) bool {
	cu, cv := u, v
	for {
		nu, okU := w.step(cu)
		nv, okV := w.step(cv)
		if !okU || !okV {
			return false
		}
		if nu == nv {
			return true
		}
		cu, cv = nu, nv
	}
}

// MeetProbability estimates s(u, v) as the fraction of `samples`
// independent √c-walk pairs from u and v that meet (Lemma 3). It is the
// plain Monte-Carlo estimator SLING improves upon, retained as a test
// oracle and as a baseline in ablation benchmarks.
func (w *Walker) MeetProbability(u, v graph.NodeID, samples int) float64 {
	if samples <= 0 {
		panic("walk: MeetProbability needs a positive sample count")
	}
	hits := 0
	for i := 0; i < samples; i++ {
		if w.PairMeets(u, v) {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

// ReverseWalk appends a plain reverse random walk from u truncated after t
// steps (so the result holds at most t+1 nodes, starting with u). Unlike a
// √c-walk there is no stopping coin: the walk only ends early when it
// reaches a node with no in-neighbors. This is the Monte Carlo baseline's
// walk (Section 3.2).
func (w *Walker) ReverseWalk(u graph.NodeID, t int, buf []graph.NodeID) []graph.NodeID {
	buf = append(buf, u)
	cur := u
	for step := 0; step < t; step++ {
		ins := w.g.InNeighbors(cur)
		if len(ins) == 0 {
			return buf
		}
		cur = ins[w.r.Intn(len(ins))]
		buf = append(buf, cur)
	}
	return buf
}

// FirstMeeting returns the first step at which two node sequences coincide,
// or -1 if they never do. Sequences are compared position-wise up to the
// shorter length.
func FirstMeeting(a, b []graph.NodeID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			return i
		}
	}
	return -1
}

// ExactHP computes the exact hitting-probability matrices of the paper's
// Section 4.2 up to step maxL (inclusive): result[ℓ][i][k] = h^(ℓ)(vᵢ, vₖ),
// the probability that a √c-walk from vᵢ occupies vₖ at step ℓ. It costs
// O(maxL·n·m) time and O(maxL·n²) space and exists as a ground-truth oracle
// for tests and for the error analyses of the evaluation; production code
// uses SLING's sparse local updates instead.
func ExactHP(g *graph.Graph, c float64, maxL int) [][][]float64 {
	n := g.NumNodes()
	sqrtC := math.Sqrt(c)
	res := make([][][]float64, maxL+1)
	for l := range res {
		res[l] = make([][]float64, n)
		for i := range res[l] {
			res[l][i] = make([]float64, n)
		}
	}
	for i := 0; i < n; i++ {
		res[0][i][i] = 1
	}
	// Recurrence (16): h^(ℓ+1)(vᵢ, vₖ) = √c/|I(vᵢ)| · Σ_{vₓ∈I(vᵢ)} h^(ℓ)(vₓ, vₖ).
	for l := 0; l < maxL; l++ {
		for i := 0; i < n; i++ {
			ins := g.InNeighbors(graph.NodeID(i))
			if len(ins) == 0 {
				continue
			}
			scale := sqrtC / float64(len(ins))
			row := res[l+1][i]
			for _, x := range ins {
				prev := res[l][x]
				for k := 0; k < n; k++ {
					row[k] += scale * prev[k]
				}
			}
		}
	}
	return res
}

// EmpiricalHP estimates h^(ℓ)(u, ·) for ℓ = 0..maxL from `samples`
// √c-walks, as a cross-check oracle for ExactHP and Algorithm 2.
func (w *Walker) EmpiricalHP(u graph.NodeID, maxL, samples int) [][]float64 {
	n := w.g.NumNodes()
	res := make([][]float64, maxL+1)
	for l := range res {
		res[l] = make([]float64, n)
	}
	buf := make([]graph.NodeID, 0, 16)
	for s := 0; s < samples; s++ {
		buf = w.SqrtCWalk(u, buf[:0])
		for l, node := range buf {
			if l > maxL {
				break
			}
			res[l][node]++
		}
	}
	inv := 1 / float64(samples)
	for l := range res {
		for k := range res[l] {
			res[l][k] *= inv
		}
	}
	return res
}
