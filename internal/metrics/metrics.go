// Package metrics is a small, dependency-free instrumentation registry:
// counters, gauges, and fixed-bucket histograms, each optionally labeled,
// collected into either a typed snapshot (the /stats JSON view) or the
// Prometheus text exposition format (GET /metrics).
//
// It exists so the serving stack has one observability surface instead of
// the three hand-rolled per-mode stats closures it grew historically: the
// disk cache, the dynamic layer's epoch/rebuild/staleness counters, and
// the HTTP layer's request/canceled/throttled counts all register here,
// and dashboards scrape one endpoint with stable instrument names.
//
// Instruments are cheap enough for hot paths: a Counter.Add is one atomic
// add, a Histogram.Observe is two atomic adds plus a bucket scan over a
// fixed-size array. Registration is get-or-create and idempotent for
// identical (name, labels) pairs; re-registering a name with a different
// instrument kind panics, since that is a programming error no caller can
// recover from meaningfully.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key=value dimension on an instrument. The catalog labels
// per-graph instruments with {Key: "graph", Value: <graph ID>}.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// LatencyBuckets are the fixed histogram boundaries (in seconds) every
// request-latency histogram uses, spanning 50µs..2.5s. Fixed buckets keep
// the exposition schema stable across deployments so dashboards and the
// golden exposition test never churn.
var LatencyBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5,
}

// kind discriminates instrument families in the exposition output.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. Set with Set, or register a
// GaugeFunc to compute the value at collection time instead.
type Gauge struct {
	bits atomic.Uint64
	fn   func() float64 // non-nil for GaugeFunc registrations
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value (calling the callback for a GaugeFunc).
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets. Observations
// are float64s (seconds, for latency histograms); the bucket boundaries
// are upper-inclusive like Prometheus ("le").
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // count of observations <= bounds[i]
	inf     atomic.Uint64   // observations beyond the last bound
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			goto counted
		}
	}
	h.inf.Add(1)
counted:
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		sum := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(sum)) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts by linear interpolation inside the target bucket, the same
// estimate Prometheus's histogram_quantile computes. It returns 0 with
// no observations; observations beyond the last bound clamp to it.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	lower := 0.0
	for i, b := range h.bounds {
		c := h.buckets[i].Load()
		if float64(cum)+float64(c) >= rank && c > 0 {
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (b-lower)*frac
		}
		cum += c
		lower = b
	}
	return lower // everything else landed in +Inf; clamp to the last bound
}

// instrument is one registered (name, labels) series.
type instrument struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series of one instrument name.
type family struct {
	name   string
	help   string
	kind   kind
	bounds []float64 // histograms only
	series []*instrument
}

// Registry holds registered instruments. The zero value is not usable;
// construct with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order, for stable exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelsEqual reports whether two label sets match exactly (order
// matters; callers use a fixed order per instrument name).
func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lookup finds or creates the family and series for (name, labels),
// enforcing one kind per name.
func (r *Registry) lookup(name, help string, k kind, bounds []float64, labels []Label) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, bounds: bounds}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, k))
	}
	for _, s := range f.series {
		if labelsEqual(s.labels, labels) {
			return s
		}
	}
	s := &instrument{labels: append([]Label(nil), labels...)}
	switch k {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		hb := f.bounds
		s.h = &Histogram{bounds: hb, buckets: make([]atomic.Uint64, len(hb))}
	}
	f.series = append(f.series, s)
	return s
}

// Counter registers (or fetches) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, kindCounter, nil, labels).c
}

// Gauge registers (or fetches) a settable gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, kindGauge, nil, labels).g
}

// GaugeFunc registers a gauge whose value is computed by fn at
// collection time — the natural shape for readings that already live
// somewhere (cache occupancy, epoch number, resident bytes). fn must be
// safe for concurrent calls. Re-registering the same series replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.lookup(name, help, kindGauge, nil, labels).g.fn = fn
}

// Histogram registers (or fetches) a histogram series with the given
// bucket bounds (nil means LatencyBuckets). Bounds are fixed per name:
// the first registration wins.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	return r.lookup(name, help, kindHistogram, bounds, labels).h
}

// Point is one series in a Snapshot.
type Point struct {
	Name   string
	Labels []Label
	Kind   string
	// Value carries the counter or gauge reading.
	Value float64
	// Count/Sum/P50/P99 carry histogram readings.
	Count uint64
	Sum   float64
	P50   float64
	P99   float64
}

// Snapshot returns every registered series with its current reading, in
// registration order — the typed document /stats-style views are built
// from.
func (r *Registry) Snapshot() []Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Point
	for _, name := range r.order {
		f := r.families[name]
		for _, s := range f.series {
			p := Point{Name: name, Labels: s.labels, Kind: string(f.kind)}
			switch f.kind {
			case kindCounter:
				p.Value = float64(s.c.Value())
			case kindGauge:
				p.Value = s.g.Value()
			case kindHistogram:
				p.Count = s.h.Count()
				p.Sum = s.h.Sum()
				p.P50 = s.h.Quantile(0.50)
				p.P99 = s.h.Quantile(0.99)
			}
			out = append(out, p)
		}
	}
	return out
}

// labelString renders {k="v",...} for the exposition format, with extra
// appended last (used for histogram "le").
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// fmtFloat renders a sample value the way Prometheus clients do:
// integers without a decimal point, everything else in shortest form.
func fmtFloat(v float64) string {
	//slingvet:ignore floateq exact integer-valuedness test for rendering, not a score comparison; a tolerance would misprint 2.0000001 as 2
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteText writes every series in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers per family, one
// sample line per series, histogram series expanded into cumulative
// _bucket/_sum/_count samples. Families appear in registration order
// and series in per-family registration order, so the output is stable
// — the golden exposition test depends on that.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, f.help, name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(w, "%s%s %d\n", name, labelString(s.labels), s.c.Value())
			case kindGauge:
				fmt.Fprintf(w, "%s%s %s\n", name, labelString(s.labels), fmtFloat(s.g.Value()))
			case kindHistogram:
				var cum uint64
				for i, b := range s.h.bounds {
					cum += s.h.buckets[i].Load()
					fmt.Fprintf(w, "%s_bucket%s %d\n", name,
						labelString(s.labels, L("le", fmtFloat(b))), cum)
				}
				cum += s.h.inf.Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(s.labels, L("le", "+Inf")), cum)
				fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(s.labels), fmtFloat(s.h.Sum()))
				fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(s.labels), s.h.Count())
			}
		}
	}
	return nil
}

// Names returns the registered family names in registration order, with
// their kinds — the surface the exposition golden test pins.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.order))
	for i, name := range r.order {
		out[i] = name + " " + string(r.families[name].kind)
	}
	return out
}

// SeriesLabels returns the sorted "name{k=v,...}" identity of every
// series, for tests asserting label stability.
func (r *Registry) SeriesLabels() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, name := range r.order {
		for _, s := range r.families[name].series {
			out = append(out, name+labelString(s.labels))
		}
	}
	sort.Strings(out)
	return out
}

// Handler serves the text exposition over HTTP — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
