package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same (name, labels) returns the same series.
	if r.Counter("reqs_total", "requests") != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Different labels are a different series.
	c2 := r.Counter("reqs_total", "requests", L("graph", "g1"))
	c2.Inc()
	if c.Value() != 5 || c2.Value() != 1 {
		t.Fatal("labeled series not independent")
	}

	g := r.Gauge("resident_bytes", "bytes")
	g.Set(12.5)
	if g.Value() != 12.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	r.GaugeFunc("epoch", "epoch", func() float64 { return 7 })
	snap := r.Snapshot()
	found := false
	for _, p := range snap {
		if p.Name == "epoch" && p.Value == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("gauge func not collected: %+v", snap)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", nil)
	// 100 observations spread uniformly over (0, 1ms]: p50 ≈ 0.5ms,
	// p99 ≈ 1ms, within bucket-interpolation error.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 1e-5)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 2e-4 || p50 > 8e-4 {
		t.Fatalf("p50 = %v, want ~5e-4", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 5e-4 || p99 > 1.1e-3 {
		t.Fatalf("p99 = %v, want ~1e-3", p99)
	}
	if h.Quantile(0.5) == 0 && h.Count() > 0 {
		t.Fatal("quantile 0 with observations")
	}
	// Observations beyond the last bound clamp to it.
	h2 := r.Histogram("big_seconds", "latency", nil)
	h2.Observe(100)
	if got, want := h2.Quantile(0.99), LatencyBuckets[len(LatencyBuckets)-1]; got != want {
		t.Fatalf("overflow quantile = %v, want clamp to %v", got, want)
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("sling_requests_total", "served requests", L("graph", "g1")).Add(3)
	r.Gauge("sling_open_graphs", "open graphs").Set(2)
	r.Histogram("sling_request_seconds", "request latency", nil, L("graph", "g1")).Observe(0.002)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE sling_requests_total counter",
		`sling_requests_total{graph="g1"} 3`,
		"# TYPE sling_open_graphs gauge",
		"sling_open_graphs 2",
		"# TYPE sling_request_seconds histogram",
		`sling_request_seconds_bucket{graph="g1",le="0.0025"} 1`,
		`sling_request_seconds_bucket{graph="g1",le="+Inf"} 1`,
		`sling_request_seconds_count{graph="g1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: le=+Inf equals the count.
	if strings.Count(out, "_bucket") != len(LatencyBuckets)+1 {
		t.Errorf("bucket line count = %d, want %d", strings.Count(out, "_bucket"), len(LatencyBuckets)+1)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("c_total", "c")
			h := r.Histogram("h_seconds", "h", nil)
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i%10) * 1e-4)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c_total", "c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h_seconds", "h", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
