package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"sling"
	"sling/internal/core"
	"sling/internal/metrics"
)

// Instrument names for the scatter/gather fan-out. Every series carries
// a "shard" label with the shard's decimal ID.
const (
	// MetricFanout is the per-shard call latency histogram.
	MetricFanout = "sling_shard_fanout_seconds"
	// MetricErrors counts failed per-shard calls.
	MetricErrors = "sling_shard_errors_total"
)

// Querier routes sling.Querier calls across shards by scatter/gather:
//
//   - SimRank fetches the two endpoints' fragments from their owner
//     shards (in parallel when they differ) and merge-joins them at the
//     router — a two-shard join.
//   - SingleSource fetches the source fragment from its owner, then
//     broadcasts it: every shard propagates the fragment over its own
//     node range and returns that score slice, which the router
//     assembles into the full vector.
//   - TopK/SourceTop broadcast the same fragment but gather per-shard
//     local top-k lists — k-pruning inside each shard — and merge them.
//     Each shard's list is its true local top-k under the global
//     deterministic order and shards partition the node space, so the
//     merged head equals the unsharded top-k exactly.
//   - SingleSourceBatch groups sources by owner shard and runs the
//     groups as units, observing ctx between units.
//
// Per-shard metadata is full-size, so any shard can propagate any
// fragment with the exact single-index arithmetic; answers are
// bitwise-identical to the unsharded reference.
//
// The zero Querier is not valid; use New.
type Querier struct {
	man     *Manifest
	clients []Client
	n       int
	fanout  []*metrics.Histogram
	errs    []*metrics.Counter
}

var _ sling.Querier = (*Querier)(nil)

// New validates the manifest against the client set and returns the
// router. reg receives the per-shard fan-out instruments (nil for a
// private registry). The Querier takes ownership of the clients: Close
// closes them all.
func New(m *Manifest, clients []Client, reg *metrics.Registry) (*Querier, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(clients) != len(m.Shards) {
		return nil, fmt.Errorf("shard: %d clients for %d shards", len(clients), len(m.Shards))
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	q := &Querier{
		man:     m,
		clients: clients,
		n:       m.Nodes,
		fanout:  make([]*metrics.Histogram, len(clients)),
		errs:    make([]*metrics.Counter, len(clients)),
	}
	for i := range clients {
		id := metrics.L("shard", strconv.Itoa(i))
		q.fanout[i] = reg.Histogram(MetricFanout, "Latency of per-shard scatter/gather calls.", metrics.LatencyBuckets, id)
		q.errs[i] = reg.Counter(MetricErrors, "Failed per-shard scatter/gather calls.", id)
	}
	return q, nil
}

// shardOf returns the index of the shard owning node u.
func (q *Querier) shardOf(u sling.NodeID) int {
	return sort.Search(len(q.man.Shards), func(i int) bool {
		return q.man.Shards[i].Hi > int(u)
	})
}

func (q *Querier) checkNode(u sling.NodeID) error {
	if int(u) < 0 || int(u) >= q.n {
		return fmt.Errorf("%w: node %d not in [0,%d)", sling.ErrNodeRange, u, q.n)
	}
	return nil
}

func (q *Querier) checkNodes(us []sling.NodeID) error {
	for _, u := range us {
		if err := q.checkNode(u); err != nil {
			return err
		}
	}
	return nil
}

// groupByShard buckets source indexes by owner shard, so batch fragment
// fetches hit shards in locality order.
func (q *Querier) groupByShard(us []sling.NodeID) [][]int {
	byShard := make([][]int, len(q.clients))
	for i, u := range us {
		byShard[q.shardOf(u)] = append(byShard[q.shardOf(u)], i)
	}
	return byShard
}

// observe records one shard call's latency and outcome.
func (q *Querier) observe(shard int, start time.Time, err error) {
	q.fanout[shard].ObserveSince(start)
	if err != nil {
		q.errs[shard].Inc()
	}
}

// fragment fetches u's fragment from its owner shard.
func (q *Querier) fragment(ctx context.Context, u sling.NodeID) (*sling.Fragment, error) {
	s := q.shardOf(u)
	start := time.Now()
	f, err := q.clients[s].Fragment(ctx, u)
	q.observe(s, start, err)
	return f, err
}

// scatter runs fn once per shard concurrently and returns the
// lowest-shard error, so a multi-shard failure reports deterministically.
func (q *Querier) scatter(fn func(i int, s ShardInfo) error) error {
	errs := make([]error, len(q.clients))
	var wg sync.WaitGroup
	for i := range q.clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i, q.man.Shards[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SimRank joins the two endpoints' fragments at the router.
func (q *Querier) SimRank(ctx context.Context, u, v sling.NodeID) (float64, error) {
	if err := core.CtxErr(ctx); err != nil {
		return 0, err
	}
	if err := q.checkNode(u); err != nil {
		return 0, err
	}
	if err := q.checkNode(v); err != nil {
		return 0, err
	}
	var fu, fv *sling.Fragment
	var err error
	if fu, err = q.fragment(ctx, u); err != nil {
		return 0, err
	}
	if u == v {
		fv = fu
	} else if fv, err = q.fragment(ctx, v); err != nil {
		return 0, err
	}
	return sling.JoinFragments(fu, fv), nil
}

// singleSource is the shared scatter/gather core of SingleSource and
// SingleSourceBatch: fetch u's fragment, broadcast it, assemble slices.
func (q *Querier) singleSource(ctx context.Context, u sling.NodeID, out []float64) ([]float64, error) {
	f, err := q.fragment(ctx, u)
	if err != nil {
		return nil, err
	}
	if cap(out) < q.n {
		out = make([]float64, q.n)
	}
	out = out[:q.n]
	err = q.scatter(func(i int, s ShardInfo) error {
		start := time.Now()
		scores, serr := q.clients[i].SourceSlice(ctx, f, s.Lo, s.Hi)
		q.observe(i, start, serr)
		if serr != nil {
			return serr
		}
		if len(scores) != s.Hi-s.Lo {
			return fmt.Errorf("shard %d returned %d scores for range [%d,%d)", i, len(scores), s.Lo, s.Hi)
		}
		copy(out[s.Lo:s.Hi], scores)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (q *Querier) SingleSource(ctx context.Context, u sling.NodeID, out []float64) ([]float64, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := q.checkNode(u); err != nil {
		return nil, err
	}
	return q.singleSource(ctx, u, out)
}

// SingleSourceBatch validates every source first, then serves them
// grouped by owner shard (fragment fetches hit shards in locality
// order), observing ctx between units.
func (q *Querier) SingleSourceBatch(ctx context.Context, us []sling.NodeID) ([][]float64, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := q.checkNodes(us); err != nil {
		return nil, err
	}
	rows := make([][]float64, len(us))
	for _, idxs := range q.groupByShard(us) {
		for _, i := range idxs {
			if err := core.CtxErr(ctx); err != nil {
				return nil, err
			}
			row, err := q.singleSource(ctx, us[i], nil)
			if err != nil {
				return nil, err
			}
			rows[i] = row
		}
	}
	return rows, nil
}

// topMerge broadcasts u's fragment, gathers each shard's k-pruned local
// top list over its own range, and merges. skip < 0 keeps every node.
func (q *Querier) topMerge(ctx context.Context, u sling.NodeID, k int, skip sling.NodeID) ([]sling.Scored, error) {
	f, err := q.fragment(ctx, u)
	if err != nil {
		return nil, err
	}
	lists := make([][]sling.Scored, len(q.clients))
	err = q.scatter(func(i int, s ShardInfo) error {
		start := time.Now()
		top, serr := q.clients[i].TopSlice(ctx, f, k, skip, s.Lo, s.Hi)
		q.observe(i, start, serr)
		lists[i] = top
		return serr
	})
	if err != nil {
		return nil, err
	}
	return sling.MergeTop(lists, k), nil
}

func (q *Querier) TopK(ctx context.Context, u sling.NodeID, k int) ([]sling.Scored, error) {
	if k <= 0 {
		return nil, nil
	}
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := q.checkNode(u); err != nil {
		return nil, err
	}
	return q.topMerge(ctx, u, k, u)
}

func (q *Querier) SourceTop(ctx context.Context, u sling.NodeID, limit int) ([]sling.Scored, error) {
	if limit <= 0 {
		return nil, nil
	}
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := q.checkNode(u); err != nil {
		return nil, err
	}
	return q.topMerge(ctx, u, limit, -1)
}

// Meta reports the deployment from the manifest; Bytes is the summed
// per-shard index footprint.
func (q *Querier) Meta() sling.QuerierMeta {
	var bytes int64
	for _, s := range q.man.Shards {
		bytes += s.Bytes
	}
	return sling.QuerierMeta{
		Name:  "sharded",
		Nodes: q.n,
		C:     q.man.C,
		Eps:   q.man.Eps,
		Bytes: bytes,
	}
}

// Close closes every shard client and returns the errors joined.
func (q *Querier) Close() error {
	var errs []error
	for _, c := range q.clients {
		if err := c.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
