package shard

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"sling"
	"sling/internal/metrics"
	"sling/internal/rng"
)

var bg = context.Background()

func testGraph(n, m int, seed uint64) *sling.Graph {
	r := rng.New(seed)
	b := sling.NewGraphBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(sling.NodeID(r.Intn(n)), sling.NodeID(r.Intn(n)))
	}
	return b.Build()
}

func buildIndex(t *testing.T, g *sling.Graph) *sling.Index {
	t.Helper()
	ix, err := sling.Build(g, sling.WithEps(0.1), sling.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// newSharded builds an in-process sharded querier over ix.
func newSharded(t *testing.T, ix *sling.Index, nshards int, reg *metrics.Registry) *Querier {
	t.Helper()
	m, clients := InProcess(ix, nshards)
	q, err := New(m, clients, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })
	return q
}

func TestPlan(t *testing.T) {
	cases := []struct {
		name    string
		weights []int64
		nshards int
		want    [][2]int
	}{
		{"clamp-low", []int64{1, 1}, 0, [][2]int{{0, 2}}},
		{"clamp-high", []int64{5, 5}, 9, [][2]int{{0, 1}, {1, 2}}},
		{"even", []int64{1, 1, 1, 1}, 2, [][2]int{{0, 2}, {2, 4}}},
		{"skew-front", []int64{100, 1, 1, 1}, 2, [][2]int{{0, 1}, {1, 4}}},
		{"skew-back", []int64{1, 1, 1, 100}, 2, [][2]int{{0, 3}, {3, 4}}},
		{"all-zero", []int64{0, 0, 0}, 3, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{"empty", nil, 3, [][2]int{{0, 0}}},
	}
	for _, tc := range cases {
		got := Plan(tc.weights, tc.nshards)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: Plan = %v, want %v", tc.name, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%s: Plan = %v, want %v", tc.name, got, tc.want)
			}
		}
	}
}

func TestPlanCoversAndBalances(t *testing.T) {
	g := testGraph(200, 900, 3)
	ix := buildIndex(t, g)
	weights := ix.EntryBytes()
	ranges := Plan(weights, 4)
	if len(ranges) != 4 {
		t.Fatalf("got %d ranges", len(ranges))
	}
	lo := 0
	var total, biggest int64
	for _, w := range weights {
		total += w
	}
	for _, r := range ranges {
		if r[0] != lo || r[1] <= r[0] {
			t.Fatalf("ranges not contiguous and nonempty: %v", ranges)
		}
		lo = r[1]
		var sum int64
		for _, w := range weights[r[0]:r[1]] {
			sum += w
		}
		if sum > biggest {
			biggest = sum
		}
	}
	if lo != 200 {
		t.Fatalf("ranges cover [0,%d), want [0,200)", lo)
	}
	// Contiguous ranges cannot beat one node's weight, but on a random
	// graph byte balancing should keep the biggest shard well under half
	// the index.
	if biggest > total/2 {
		t.Fatalf("biggest shard holds %d of %d bytes", biggest, total)
	}
}

func TestManifestValidate(t *testing.T) {
	ok := &Manifest{Version: 1, Nodes: 4, Shards: []ShardInfo{{ID: 0, Lo: 0, Hi: 2}, {ID: 1, Lo: 2, Hi: 4}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Manifest{
		{Version: 2, Nodes: 4, Shards: []ShardInfo{{ID: 0, Lo: 0, Hi: 4}}},
		{Version: 1, Nodes: 4},
		{Version: 1, Nodes: 4, Shards: []ShardInfo{{ID: 0, Lo: 1, Hi: 4}}},
		{Version: 1, Nodes: 4, Shards: []ShardInfo{{ID: 0, Lo: 0, Hi: 2}, {ID: 1, Lo: 3, Hi: 4}}},
		{Version: 1, Nodes: 4, Shards: []ShardInfo{{ID: 0, Lo: 0, Hi: 2}, {ID: 0, Lo: 2, Hi: 4}}},
		{Version: 1, Nodes: 4, Shards: []ShardInfo{{ID: 0, Lo: 0, Hi: 3}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted %+v", i, m)
		}
	}
}

func TestManifestSaveLoad(t *testing.T) {
	m := &Manifest{
		Version: 1, Nodes: 10, C: 0.6, Eps: 0.1, Graph: "g.txt", Undirected: true,
		Shards: []ShardInfo{
			{ID: 0, Lo: 0, Hi: 7, Path: "shard-000.slix", Entries: 41, Bytes: 1234},
			{ID: 1, Lo: 7, Hi: 10, URL: "http://shard-1:8080", Entries: 12, Bytes: 567},
		},
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes != m.Nodes || got.C != m.C || got.Eps != m.Eps || got.Graph != m.Graph || !got.Undirected {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if len(got.Shards) != 2 || got.Shards[1].URL != "http://shard-1:8080" || got.Shards[0].Bytes != 1234 {
		t.Fatalf("round trip lost shards: %+v", got.Shards)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("Load of missing path succeeded")
	}
}

// TestShardedBitwise pins the tentpole guarantee: for every shard count,
// including 1, every query answer is bitwise-identical to the unsharded
// reference.
func TestShardedBitwise(t *testing.T) {
	g := testGraph(120, 500, 11)
	ix := buildIndex(t, g)
	n := g.NumNodes()
	for _, nshards := range []int{1, 2, 3, 5} {
		q := newSharded(t, ix, nshards, nil)
		for u := 0; u < n; u += 7 {
			for v := 0; v < n; v += 13 {
				want, err := ix.SimRank(bg, sling.NodeID(u), sling.NodeID(v))
				if err != nil {
					t.Fatal(err)
				}
				got, err := q.SimRank(bg, sling.NodeID(u), sling.NodeID(v))
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("shards=%d SimRank(%d,%d) = %x, want %x", nshards, u, v, math.Float64bits(got), math.Float64bits(want))
				}
			}
		}
		for u := 0; u < n; u += 11 {
			want, err := ix.SingleSource(bg, sling.NodeID(u), nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := q.SingleSource(bg, sling.NodeID(u), nil)
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("shards=%d SingleSource(%d)[%d] = %x, want %x", nshards, u, v, math.Float64bits(got[v]), math.Float64bits(want[v]))
				}
			}
		}
		// k-pruned merge must reproduce global top-k for every k shape:
		// tiny, mid, k == n, and k > n.
		for _, k := range []int{1, 3, 10, n, n + 17} {
			for u := 0; u < n; u += 17 {
				want, err := ix.TopK(bg, sling.NodeID(u), k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := q.TopK(bg, sling.NodeID(u), k)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("shards=%d TopK(%d,%d) len %d, want %d", nshards, u, k, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("shards=%d TopK(%d,%d)[%d] = %+v, want %+v", nshards, u, k, i, got[i], want[i])
					}
				}
				wantST, err := ix.SourceTop(bg, sling.NodeID(u), k)
				if err != nil {
					t.Fatal(err)
				}
				gotST, err := q.SourceTop(bg, sling.NodeID(u), k)
				if err != nil {
					t.Fatal(err)
				}
				if len(gotST) != len(wantST) {
					t.Fatalf("shards=%d SourceTop(%d,%d) len %d, want %d", nshards, u, k, len(gotST), len(wantST))
				}
				for i := range wantST {
					if gotST[i] != wantST[i] {
						t.Fatalf("shards=%d SourceTop(%d,%d)[%d] = %+v, want %+v", nshards, u, k, i, gotST[i], wantST[i])
					}
				}
			}
		}
	}
}

// TestShardedPairPlacement drives pairs chosen to land same-shard and
// cross-shard explicitly, rather than relying on strides to hit both.
func TestShardedPairPlacement(t *testing.T) {
	g := testGraph(80, 400, 5)
	ix := buildIndex(t, g)
	q := newSharded(t, ix, 3, nil)
	cases := [][2]sling.NodeID{}
	for i, s := range q.man.Shards {
		// Same-shard pair inside shard i (every shard has >= 1 node; a
		// single-node shard degenerates to u == v, also worth pinning).
		u, v := sling.NodeID(s.Lo), sling.NodeID(s.Hi-1)
		cases = append(cases, [2]sling.NodeID{u, v}, [2]sling.NodeID{u, u})
		if i > 0 {
			// Cross-shard pair spanning the boundary with shard i-1.
			cases = append(cases, [2]sling.NodeID{sling.NodeID(s.Lo - 1), u})
		}
	}
	for _, c := range cases {
		su, sv := q.shardOf(c[0]), q.shardOf(c[1])
		want, err := ix.SimRank(bg, c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := q.SimRank(bg, c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("SimRank(%d@%d,%d@%d) = %x, want %x", c[0], su, c[1], sv, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestShardedEmptyShard covers a shard whose node range holds only
// isolated nodes: no edges, so (almost) no HP entries beyond step 0.
func TestShardedEmptyShard(t *testing.T) {
	// Nodes 0..39 form a random graph; nodes 40..49 are isolated.
	r := rng.New(17)
	b := sling.NewGraphBuilder(50)
	for i := 0; i < 200; i++ {
		b.AddEdge(sling.NodeID(r.Intn(40)), sling.NodeID(r.Intn(40)))
	}
	g := b.Build()
	ix := buildIndex(t, g)
	m := &Manifest{Version: 1, Nodes: 50, C: ix.C(), Eps: ix.ErrorBound()}
	clients := []Client{}
	for i, r := range [][2]int{{0, 20}, {20, 40}, {40, 50}} {
		sx := ix.Shard(r[0], r[1])
		m.Shards = append(m.Shards, ShardInfo{ID: i, Lo: r[0], Hi: r[1], Bytes: sx.Bytes()})
		clients = append(clients, NewLocal(sx))
	}
	q, err := New(m, clients, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	for _, u := range []sling.NodeID{0, 39, 40, 49} {
		want, err := ix.SingleSource(bg, u, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := q.SingleSource(bg, u, nil)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("SingleSource(%d)[%d] differs on empty-shard deployment", u, v)
			}
		}
		wantTop, err := ix.TopK(bg, u, 10)
		if err != nil {
			t.Fatal(err)
		}
		gotTop, err := q.TopK(bg, u, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotTop) != len(wantTop) {
			t.Fatalf("TopK(%d) len %d, want %d", u, len(gotTop), len(wantTop))
		}
		for i := range wantTop {
			if gotTop[i] != wantTop[i] {
				t.Fatalf("TopK(%d)[%d] = %+v, want %+v", u, i, gotTop[i], wantTop[i])
			}
		}
	}
	// A cross-shard pair of two isolated nodes, and isolated-vs-connected.
	for _, c := range [][2]sling.NodeID{{40, 49}, {0, 45}, {45, 45}} {
		want, err := ix.SimRank(bg, c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := q.SimRank(bg, c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("SimRank(%d,%d) = %v, want %v", c[0], c[1], got, want)
		}
	}
}

func TestShardedKEdgeCases(t *testing.T) {
	g := testGraph(30, 120, 23)
	ix := buildIndex(t, g)
	q := newSharded(t, ix, 3, nil)
	for _, k := range []int{0, -4} {
		got, err := q.TopK(bg, 2, k)
		if err != nil || got != nil {
			t.Fatalf("TopK k=%d = (%v, %v), want (nil, nil)", k, got, err)
		}
		got, err = q.SourceTop(bg, 2, k)
		if err != nil || got != nil {
			t.Fatalf("SourceTop k=%d = (%v, %v), want (nil, nil)", k, got, err)
		}
	}
	if _, err := q.SimRank(bg, 0, 30); !errors.Is(err, sling.ErrNodeRange) {
		t.Fatalf("SimRank(0,30) err = %v, want ErrNodeRange", err)
	}
	if _, err := q.TopK(bg, -1, 3); !errors.Is(err, sling.ErrNodeRange) {
		t.Fatalf("TopK(-1) err = %v, want ErrNodeRange", err)
	}
	if _, err := q.SingleSourceBatch(bg, []sling.NodeID{1, 99}); !errors.Is(err, sling.ErrNodeRange) {
		t.Fatalf("batch with bad node err = %v, want ErrNodeRange", err)
	}
}

func TestShardedBatchAndCtx(t *testing.T) {
	g := testGraph(40, 160, 29)
	ix := buildIndex(t, g)
	q := newSharded(t, ix, 3, nil)
	us := []sling.NodeID{39, 0, 17, 0, 25}
	want, err := ix.SingleSourceBatch(bg, us)
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.SingleSourceBatch(bg, us)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch len %d, want %d", len(got), len(want))
	}
	for i := range want {
		for v := range want[i] {
			if got[i][v] != want[i][v] {
				t.Fatalf("batch row %d (u=%d) differs at node %d", i, us[i], v)
			}
		}
	}
	cancelled, cancel := context.WithCancel(bg)
	cancel()
	if _, err := q.SimRank(cancelled, 0, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("SimRank on cancelled ctx = %v", err)
	}
	if _, err := q.SingleSourceBatch(cancelled, us); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch on cancelled ctx = %v", err)
	}
}

func TestShardedMetricsAndMeta(t *testing.T) {
	g := testGraph(60, 240, 31)
	ix := buildIndex(t, g)
	reg := metrics.NewRegistry()
	q := newSharded(t, ix, 3, reg)
	if _, err := q.SingleSource(bg, 5, nil); err != nil {
		t.Fatal(err)
	}
	for i, h := range q.fanout {
		if h.Count() == 0 {
			t.Fatalf("shard %d saw no fan-out observations", i)
		}
	}
	found := 0
	for _, p := range reg.Snapshot() {
		if p.Name == MetricFanout {
			found++
		}
	}
	if found == 0 {
		t.Fatalf("registry snapshot has no %s series", MetricFanout)
	}
	m := q.Meta()
	if m.Name != "sharded" || m.Nodes != 60 || m.C != ix.C() || m.Eps != ix.ErrorBound() || m.Bytes <= 0 {
		t.Fatalf("Meta = %+v", m)
	}
	if _, err := New(&Manifest{Version: 1, Nodes: 60, Shards: []ShardInfo{{Lo: 0, Hi: 60}}}, nil, nil); err == nil {
		t.Fatal("New accepted mismatched client count")
	}
}

func TestSplitRoundTrip(t *testing.T) {
	g := testGraph(70, 300, 37)
	ix := buildIndex(t, g)
	dir := t.TempDir()
	m, err := Split(ix, 3, dir)
	if err != nil {
		t.Fatal(err)
	}
	m.Graph = "unused.txt"
	path := filepath.Join(dir, "manifest.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]Client, len(loaded.Shards))
	for i, s := range loaded.Shards {
		sx, err := sling.Open(Resolve(path, s.Path), g)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = NewLocal(sx)
	}
	q, err := New(loaded, clients, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	for u := 0; u < 70; u += 9 {
		want, err := ix.SingleSource(bg, sling.NodeID(u), nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := q.SingleSource(bg, sling.NodeID(u), nil)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("after disk round trip SingleSource(%d)[%d] = %x, want %x", u, v, math.Float64bits(got[v]), math.Float64bits(want[v]))
			}
		}
	}
	if loaded.C != ix.C() || loaded.Eps != ix.ErrorBound() {
		t.Fatalf("manifest params %v/%v, want %v/%v", loaded.C, loaded.Eps, ix.C(), ix.ErrorBound())
	}
}
