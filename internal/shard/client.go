package shard

import (
	"context"
	"io"

	"sling"
	"sling/internal/httpclient"
)

// Client is one shard as the router sees it: the three fragment
// primitives of sling.ShardBackend plus a Close releasing whatever the
// transport holds. The two implementations are a local in-process
// backend and the HTTP client driving a remote slingserver's /shard
// routes — the router cannot tell them apart, which is what lets the
// conformance matrix hold the HTTP deployment to bitwise equality.
type Client interface {
	Fragment(ctx context.Context, u sling.NodeID) (*sling.Fragment, error)
	SourceSlice(ctx context.Context, f *sling.Fragment, lo, hi int) ([]float64, error)
	TopSlice(ctx context.Context, f *sling.Fragment, k int, skip sling.NodeID, lo, hi int) ([]sling.Scored, error)
	io.Closer
}

// The HTTP client already speaks the shard wire protocol.
var _ Client = (*httpclient.Client)(nil)

// localClient serves shard calls from an in-process backend (an
// in-memory or disk index sliced to the shard's range).
type localClient struct {
	b sling.ShardBackend
}

// NewLocal wraps an in-process shard backend as a Client. Close closes
// the backend.
func NewLocal(b sling.ShardBackend) Client { return localClient{b} }

func (c localClient) Fragment(ctx context.Context, u sling.NodeID) (*sling.Fragment, error) {
	return c.b.Fragment(ctx, u)
}

func (c localClient) SourceSlice(ctx context.Context, f *sling.Fragment, lo, hi int) ([]float64, error) {
	return c.b.SourceSlice(ctx, f, lo, hi)
}

func (c localClient) TopSlice(ctx context.Context, f *sling.Fragment, k int, skip sling.NodeID, lo, hi int) ([]sling.Scored, error) {
	return c.b.TopSlice(ctx, f, k, skip, lo, hi)
}

func (c localClient) Close() error { return c.b.Close() }
