// Package shard is the scatter/gather serving tier: it partitions the
// node space into contiguous ranges, each served by a per-shard SLIX
// index (full O(n) metadata, HP entries only for the owned range), and
// routes queries across them behind one sling.Querier.
//
// Shard assignment balances index bytes, not node counts — real graphs
// have heavily skewed degree and index mass, so an even node split can
// leave one shard holding most of the index. The routing table is a
// contiguous-range manifest (JSON), so node→shard lookup is a binary
// search and per-shard files are plain SLIX artifacts `slingtool shard
// split` writes.
//
// Query execution reuses the single-index algorithms verbatim on each
// side of the wire, so sharded answers are bitwise-identical to the
// unsharded reference — the conformance matrix pins this for both
// in-process and HTTP shard clients.
package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sling"
	"sling/internal/atomicio"
)

// ManifestVersion is the current manifest schema version.
const ManifestVersion = 1

// ShardInfo describes one shard: its contiguous node range [Lo, Hi) and
// how to reach it — a SLIX file path (relative paths resolve against the
// manifest's directory) for in-process serving, or a base URL for a
// remote slingserver.
type ShardInfo struct {
	ID      int    `json:"id"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
	Path    string `json:"path,omitempty"`
	URL     string `json:"url,omitempty"`
	Entries int64  `json:"entries"`
	Bytes   int64  `json:"bytes"`
}

// Manifest is the routing table of a sharded deployment: the node space,
// the guarantee parameters every shard shares, the graph they were built
// over, and the shard ranges in ascending node order.
type Manifest struct {
	Version int     `json:"version"`
	Nodes   int     `json:"nodes"`
	C       float64 `json:"c"`
	Eps     float64 `json:"eps"`
	// Graph is the edge-list path shards load (relative to the manifest's
	// directory); empty when the deployment wires graphs out of band.
	Graph      string      `json:"graph,omitempty"`
	Undirected bool        `json:"undirected,omitempty"`
	Shards     []ShardInfo `json:"shards"`
}

// Validate checks the manifest is a routing table: a known version and
// shard ranges that contiguously cover [0, Nodes) in order.
func (m *Manifest) Validate() error {
	if m.Version != ManifestVersion {
		return fmt.Errorf("shard: unsupported manifest version %d", m.Version)
	}
	if m.Nodes < 0 {
		return fmt.Errorf("shard: negative node count %d", m.Nodes)
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("shard: manifest has no shards")
	}
	lo := 0
	for i, s := range m.Shards {
		if s.ID != i {
			return fmt.Errorf("shard: shard %d carries id %d", i, s.ID)
		}
		if s.Lo != lo || s.Hi < s.Lo {
			return fmt.Errorf("shard: shard %d range [%d,%d) does not continue at %d", i, s.Lo, s.Hi, lo)
		}
		lo = s.Hi
	}
	if lo != m.Nodes {
		return fmt.Errorf("shard: shards cover [0,%d), want [0,%d)", lo, m.Nodes)
	}
	return nil
}

// Save writes the manifest as JSON to path, atomically.
func (m *Manifest) Save(path string) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, func(w io.Writer) error {
		_, werr := w.Write(append(buf, '\n'))
		return werr
	})
}

// Load reads and validates a manifest from path.
func Load(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: parsing manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Resolve returns a shard-relative path resolved against the manifest's
// directory (absolute paths pass through).
func Resolve(manifestPath, rel string) string {
	if rel == "" || filepath.IsAbs(rel) {
		return rel
	}
	return filepath.Join(filepath.Dir(manifestPath), rel)
}

// Plan partitions nodes 0..len(weights) into nshards contiguous ranges
// of roughly equal total weight: shard i closes once the cumulative
// weight reaches i+1 shares of the total, while always keeping at least
// one node for every remaining shard. nshards is clamped to [1, n].
func Plan(weights []int64, nshards int) [][2]int {
	n := len(weights)
	if nshards > n {
		nshards = n
	}
	if nshards < 1 {
		nshards = 1
	}
	var total int64
	for _, w := range weights {
		total += w
	}
	ranges := make([][2]int, 0, nshards)
	lo := 0
	var cum int64
	for s := 0; s < nshards; s++ {
		hi := n
		if s < nshards-1 {
			target := total * int64(s+1) / int64(nshards)
			maxHi := n - (nshards - 1 - s) // leave a node for each remaining shard
			hi = lo + 1
			cum += weights[lo]
			for hi < maxHi && cum < target {
				cum += weights[hi]
				hi++
			}
		}
		ranges = append(ranges, [2]int{lo, hi})
		lo = hi
	}
	return ranges
}

// Split slices ix into nshards per-shard indexes balanced by entry
// bytes, writes each as dir/shard-NNN.slix, and returns the manifest
// (not yet saved; Graph/Undirected are left for the caller to fill).
func Split(ix *sling.Index, nshards int, dir string) (*Manifest, error) {
	ranges := Plan(ix.EntryBytes(), nshards)
	m := &Manifest{
		Version: ManifestVersion,
		Nodes:   ix.Graph().NumNodes(),
		C:       ix.C(),
		Eps:     ix.ErrorBound(),
	}
	for i, r := range ranges {
		sx := ix.Shard(r[0], r[1])
		name := fmt.Sprintf("shard-%03d.slix", i)
		if err := sx.Save(filepath.Join(dir, name)); err != nil {
			return nil, fmt.Errorf("shard: writing %s: %w", name, err)
		}
		m.Shards = append(m.Shards, ShardInfo{
			ID:      i,
			Lo:      r[0],
			Hi:      r[1],
			Path:    name,
			Entries: int64(sx.Stats().Entries),
			Bytes:   sx.Bytes(),
		})
	}
	return m, nil
}

// InProcess slices ix into nshards in-memory shard backends behind local
// clients — the single-process serving (and conformance) shape. The
// returned manifest routes by the same byte-balanced plan Split writes.
func InProcess(ix *sling.Index, nshards int) (*Manifest, []Client) {
	ranges := Plan(ix.EntryBytes(), nshards)
	m := &Manifest{
		Version: ManifestVersion,
		Nodes:   ix.Graph().NumNodes(),
		C:       ix.C(),
		Eps:     ix.ErrorBound(),
	}
	clients := make([]Client, 0, len(ranges))
	for i, r := range ranges {
		sx := ix.Shard(r[0], r[1])
		m.Shards = append(m.Shards, ShardInfo{
			ID:      i,
			Lo:      r[0],
			Hi:      r[1],
			Entries: int64(sx.Stats().Entries),
			Bytes:   sx.Bytes(),
		})
		clients = append(clients, NewLocal(sx))
	}
	return m, clients
}
