package dynamic

import (
	"bytes"
	"errors"
	"fmt"

	"sling/internal/core"
	"sling/internal/durable"
	"sling/internal/graph"
)

// ErrNotDurable is returned by Snapshot on an index built without
// Options.Durable.
var ErrNotDurable = errors.New("dynamic: index has no durable storage")

// ErrNoState is returned by Restore when the durable directory holds no
// snapshot to restore from.
var ErrNoState = errors.New("dynamic: no durable state to restore")

// ErrStateExists is returned by New when Options.Durable points at a
// directory that already holds state; reopen it with Restore.
var ErrStateExists = errors.New("dynamic: durable directory already holds state (use Restore)")

// Restore reopens the durable state in o.Durable.Dir: the newest valid
// snapshot supplies the epoch index (deserialized against its base
// graph), the mutated edge set, and the pending-op tail; WAL records past
// the snapshot are then replayed. The result answers bitwise-identically
// to the lost instance — the SLIX round trip preserves float bits, the
// replayed ops reproduce the exact staleness frontier, and the Monte
// Carlo estimator is a pure function of (options, graph) — provided o
// carries the same build options, walk budget, and seeds the state was
// created with (they are not persisted).
//
// Torn WAL tails were already truncated at the last valid record by
// recovery; any damage that could hide an acknowledged op fails here
// with durable.ErrCorrupt rather than restoring silently-wrong state.
func Restore(o Options) (*Dynamic, error) {
	if o.Durable == nil {
		return nil, ErrNotDurable
	}
	wal, err := durable.Open(*o.Durable)
	if err != nil {
		return nil, err
	}
	d, err := restoreFrom(wal, o)
	if err != nil {
		wal.Close()
		return nil, err
	}
	return d, nil
}

func restoreFrom(wal *durable.Log, o Options) (*Dynamic, error) {
	snap := wal.Snapshot()
	if snap == nil {
		return nil, ErrNoState
	}
	b := graph.NewBuilder(snap.BaseNodes)
	for _, e := range snap.BaseEdges {
		b.AddEdge(e.From, e.To)
	}
	base := b.Build()
	ix, err := core.ReadIndex(bytes.NewReader(snap.Index), base)
	if err != nil {
		return nil, fmt.Errorf("dynamic: reading snapshot index: %w", err)
	}
	d := newDynamic(base, ix, o)
	d.wal = wal
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cur.Load().gen.num = snap.Epoch // not yet shared; safe to fix up

	// Replay the snapshot's pending tail over its base graph, then
	// cross-check the result against the edge set the snapshot stored:
	// the two sections were written together, so any disagreement means
	// damage the per-file CRCs could not see (e.g. a restored backup
	// mixing generations).
	if err := d.replayLocked(snap.Pending); err != nil {
		return nil, fmt.Errorf("%w: snapshot pending ops: %v", durable.ErrCorrupt, err)
	}
	if len(d.edges) != len(snap.Edges) {
		return nil, fmt.Errorf("%w: snapshot edge set has %d edges, base+pending yields %d",
			durable.ErrCorrupt, len(snap.Edges), len(d.edges))
	}
	for _, e := range snap.Edges {
		if _, ok := d.edges[edgeKey(e.From, e.To)]; !ok {
			return nil, fmt.Errorf("%w: snapshot edge set and pending ops disagree on (%d,%d)",
				durable.ErrCorrupt, e.From, e.To)
		}
	}
	// Then the WAL tail past the snapshot.
	for _, rec := range wal.Tail() {
		if err := d.replayLocked(rec.Ops); err != nil {
			return nil, fmt.Errorf("%w: WAL record %d: %v", durable.ErrCorrupt, rec.LSN, err)
		}
	}
	d.totalOps.Store(snap.TotalOps + uint64(len(d.pending)-len(snap.Pending)))
	d.staleOps = len(d.pending)
	d.publishLocked()
	return d, nil
}

// replayLocked strictly re-applies journaled ops: every op must mutate
// the edge set exactly as it did originally (a no-op during replay means
// the log and the state diverged). Caller holds mu; the caller publishes
// once after the full replay.
func (d *Dynamic) replayLocked(ops []durable.Op) error {
	for _, op := range ops {
		if op.From < 0 || int(op.From) >= d.n || op.To < 0 || int(op.To) >= d.n {
			return fmt.Errorf("edge (%d,%d) out of range [0,%d)", op.From, op.To, d.n)
		}
		k := edgeKey(op.From, op.To)
		if _, exists := d.edges[k]; exists == op.Add {
			return fmt.Errorf("journaled op (add=%t %d->%d) is a no-op against the replayed state", op.Add, op.From, op.To)
		}
		if op.Add {
			d.edges[k] = struct{}{}
		} else {
			delete(d.edges, k)
		}
		d.dirtyAll[op.To] = struct{}{}
		d.pending = append(d.pending, Op{Add: op.Add, From: op.From, To: op.To})
	}
	return nil
}

// Snapshot manually captures the current state (epoch index, edge set,
// pending tail) as a durable snapshot, returning the WAL position it
// covers. Rebuilds snapshot automatically; this is the operational hook
// (POST /snapshot) for bounding WAL replay on graphs that rarely
// rebuild.
func (d *Dynamic) Snapshot() (uint64, error) {
	if d.closed.Load() {
		return 0, ErrClosed
	}
	if d.wal == nil {
		return 0, ErrNotDurable
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snapshotLocked()
}

// snapshotLocked writes the serving state as a snapshot. Caller holds mu
// (pending, the edge set, and the WAL position cannot move) and
// guarantees d.wal is non-nil.
func (d *Dynamic) snapshotLocked() (uint64, error) {
	w := d.cur.Load()
	base := w.gen.ix.Graph()
	var buf bytes.Buffer
	if _, err := w.gen.ix.WriteTo(&buf); err != nil {
		return 0, err
	}
	baseEdges := make([]durable.Edge, 0, base.NumEdges())
	base.Edges(func(from, to graph.NodeID) bool {
		baseEdges = append(baseEdges, durable.Edge{From: from, To: to})
		return true
	})
	edges := make([]durable.Edge, 0, len(d.edges))
	for k := range d.edges {
		edges = append(edges, durable.Edge{From: int32(k >> 32), To: int32(uint32(k))})
	}
	s := &durable.Snapshot{
		Epoch:     w.gen.num,
		TotalOps:  d.totalOps.Load(),
		BaseNodes: base.NumNodes(),
		BaseEdges: baseEdges,
		Index:     buf.Bytes(),
		Edges:     edges,
		Pending:   journalOps(d.pending),
	}
	if err := d.wal.WriteSnapshot(s); err != nil {
		return 0, err
	}
	return s.LSN, nil
}

// journalOps converts applied ops to their journal form.
func journalOps(ops []Op) []durable.Op {
	out := make([]durable.Op, len(ops))
	for i, op := range ops {
		out[i] = durable.Op{Add: op.Add, From: op.From, To: op.To}
	}
	return out
}
