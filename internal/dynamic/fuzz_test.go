package dynamic

import (
	"math"
	"sync"
	"testing"

	"sling/internal/core"
	"sling/internal/graph"
)

// FuzzDynamicUpdates feeds arbitrary interleavings of edge operations —
// duplicate edges, self-loops, unknown node IDs, removes of nonexistent
// edges, batches, forced and threshold rebuilds — into a Dynamic index
// while query goroutines hammer it concurrently. Nothing may panic, no
// score may be NaN, negative, or above 1, and invalid ops must fail as
// errors. Run under -race this doubles as the concurrency proof for the
// update/query/swap triangle.
func FuzzDynamicUpdates(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02})
	f.Add([]byte{0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18})
	// add 0->1 twice (dup), self-loop 2->2, remove nonexistent, rebuild.
	f.Add([]byte{0, 0, 1, 0, 0, 1, 0, 2, 2, 1, 5, 6, 2, 0, 0})
	// out-of-range IDs interleaved with valid ops and a batch marker.
	f.Add([]byte{0, 250, 1, 3, 0, 0, 1, 9, 9, 0, 4, 4, 2, 1, 1, 0, 200, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 12
		b := graph.NewBuilder(n)
		for v := 0; v < n-1; v++ {
			b.AddEdge(graph.NodeID(v), graph.NodeID(v+1))
			b.AddEdge(graph.NodeID((v*5)%n), graph.NodeID((v*7)%n))
		}
		d, err := New(b.Build(), Options{
			Build:            core.Options{Eps: 0.2, Seed: 5},
			NumWalks:         24,
			RebuildThreshold: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()

		checkScore := func(what string, s float64) {
			if math.IsNaN(s) || s < 0 || s > 1 {
				t.Errorf("%s returned out-of-[0,1] score %v", what, s)
			}
		}

		done := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-done:
						return
					default:
					}
					u := graph.NodeID((i + w*3) % n)
					v := graph.NodeID((i * 5) % n)
					checkScore("SimRank", d.SimRank(u, v))
					if i%7 == 0 {
						for _, s := range d.SingleSource(u, nil) {
							checkScore("SingleSource", s)
						}
					}
					if i%11 == 0 {
						for _, e := range d.TopK(u, 3) {
							checkScore("TopK", e.Score)
						}
					}
				}
			}(w)
		}

		// Decode three bytes per op. The node bytes are taken mod 2n-4 and
		// shifted so roughly a third of the IDs are invalid (negative or
		// >= n), exercising the error paths.
		node := func(raw byte) graph.NodeID { return graph.NodeID(int(raw)%(2*n-4) - 4) }
		var batch []Op
		for i := 0; i+2 < len(data); i += 3 {
			kind, u, v := data[i], node(data[i+1]), node(data[i+2])
			switch kind % 5 {
			case 0, 1:
				if _, err := d.AddEdge(u, v); err != nil && u >= 0 && int(u) < n && v >= 0 && int(v) < n {
					t.Errorf("valid AddEdge(%d,%d) errored: %v", u, v, err)
				}
			case 2:
				if _, err := d.RemoveEdge(u, v); err != nil && u >= 0 && int(u) < n && v >= 0 && int(v) < n {
					t.Errorf("valid RemoveEdge(%d,%d) errored: %v", u, v, err)
				}
			case 3:
				batch = append(batch, Op{Add: kind%2 == 1, From: u, To: v})
				if len(batch) >= 4 {
					if _, _, err := d.Apply(batch); err != nil {
						t.Errorf("Apply: %v", err)
					}
					batch = batch[:0]
				}
			case 4:
				if kind%2 == 0 {
					d.TriggerRebuild()
				} else if _, err := d.Rebuild(); err != nil {
					t.Errorf("Rebuild: %v", err)
				}
			}
		}
		if len(batch) > 0 {
			if _, _, err := d.Apply(batch); err != nil {
				t.Errorf("Apply: %v", err)
			}
		}
		close(done)
		wg.Wait()

		// Settle and spot-check the final state end to end.
		if _, err := d.Rebuild(); err != nil {
			t.Fatal(err)
		}
		for u := 0; u < n; u++ {
			for _, s := range d.SingleSource(graph.NodeID(u), nil) {
				checkScore("final SingleSource", s)
			}
		}
	})
}
