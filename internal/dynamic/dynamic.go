// Package dynamic layers edge updates on top of a static SLING index,
// opening the serving scenario static indexes miss: production graphs
// mutate while queries keep arriving.
//
// A Dynamic index wraps a built core.Index and accepts AddEdge/RemoveEdge
// while serving. Updates are tracked as an affected-node frontier: an edge
// op on (u, v) changes v's in-neighborhood, so every node within forward
// distance t of v (t the walk truncation depth) has a changed reverse-walk
// distribution and can no longer trust the static index. Queries touching
// affected nodes fall back to fresh coupled Monte Carlo estimation on the
// mutated graph (the internal/mc coupling, Section 3.2 of the paper);
// queries on unaffected nodes keep hitting the fast static index, whose
// answers for them are still within the paper's ε guarantee because their
// walk distributions up to depth t are unchanged and the tail beyond t
// carries at most c^(t+1)/(1−c) ≤ ε/2 of meeting probability.
//
// A background rebuilder (threshold-triggered or manual) rebuilds the full
// index off the mutated graph and atomically swaps it in as a new epoch:
// queries are double-buffered across the swap with zero downtime, and the
// old epoch is drained via refcount so operators can observe when no
// in-flight query still reads it. After a rebuild with no concurrent
// updates the Dynamic index answers exactly — byte-identically — like a
// fresh core.Build of the mutated graph with the same options.
//
// All scores returned by Dynamic are clamped into [0, 1]: true SimRank
// lives there, and the serving contract should not leak the ±ε estimation
// overshoot of the underlying index.
package dynamic

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"sling/internal/core"
	"sling/internal/durable"
	"sling/internal/graph"
	"sling/internal/mc"
)

// ErrClosed is returned by updates and rebuilds after Close.
var ErrClosed = errors.New("dynamic: index closed")

// Op is one edge mutation: Add inserts From -> To, otherwise the op
// removes it.
type Op struct {
	Add      bool
	From, To graph.NodeID
}

// OpResult reports what one Op did. Applied is false when the op was a
// no-op (adding an existing edge, removing a missing one) or invalid, in
// which case Err says why.
type OpResult struct {
	Applied bool
	Err     error
}

// Options configures New. The zero value builds with the paper's defaults,
// derives the ε/δ-guaranteed Monte Carlo walk count, and never rebuilds in
// the background (rebuilds are manual via Rebuild/TriggerRebuild).
type Options struct {
	// Build configures the initial core.Build and every rebuild. Rebuild
	// determinism — and the rebuild-equivalence guarantee — come from
	// reusing these options (including Seed) verbatim.
	Build core.Options
	// RebuildThreshold is the number of applied edge ops that triggers a
	// background rebuild. 0 disables automatic rebuilds.
	RebuildThreshold int
	// NumWalks is the per-query Monte Carlo walk count for affected-node
	// estimation. 0 derives the count guaranteeing ε accuracy with
	// probability 1−δ (δ = 0.01), which is large; serving deployments
	// usually set an explicit budget.
	NumWalks int
	// Depth overrides the walk truncation / staleness frontier depth t.
	// 0 derives the smallest t with c^(t+1)/(1−c) ≤ ε/2, so truncation
	// costs at most half the error budget.
	Depth int
	// Workers bounds SingleSourceBatch fan-out. Default GOMAXPROCS.
	Workers int
	// Seed drives the coupled Monte Carlo transitions. 0 derives a stream
	// distinct from Build.Seed.
	Seed uint64
	// Durable, when non-nil, backs the index with a write-ahead log and
	// snapshots in Durable.Dir: every applied batch is journaled before it
	// is acknowledged, each rebuild's epoch swap writes a snapshot, and
	// Restore reconstructs the exact pre-crash state. New requires a fresh
	// directory; existing state is reopened with Restore.
	Durable *durable.Options
}

// generation is one index epoch: an immutable core.Index (over the graph
// it was built from) plus its scratch pool and the refcount that tracks
// in-flight queries for drain accounting after a swap.
type generation struct {
	num  uint64
	ix   *core.Index
	pool *core.ScratchPool

	refs    atomic.Int64
	retired atomic.Bool
	drained atomic.Bool
}

// view is the atomically-published serving state: the current generation,
// the current (possibly mutated) graph, and the affected-node frontier
// relative to the generation's base graph. Views are immutable; every
// update batch and every swap publishes a fresh one.
type view struct {
	gen          *generation
	g            *graph.Graph
	affected     []bool  // nil when the graph matches gen's base graph
	affectedList []int32 // ascending node IDs with affected[v] == true
	staleOps     int     // applied ops not yet reflected in gen.ix
}

// clean reports whether v can be served from the static index.
func (w *view) clean(v graph.NodeID) bool {
	return w.affected == nil || !w.affected[v]
}

// Dynamic is an updatable SimRank index. Queries are safe for arbitrary
// concurrent use and never block on updates or rebuilds; updates are
// serialized internally.
type Dynamic struct {
	n        int
	c        float64
	nw       int
	depth    int
	seed     uint64
	workers  int
	thresh   int
	buildOpt core.Options
	pow      []float64 // pow[l] = c^l, l in [0, depth]

	cur atomic.Pointer[view]

	// mu guards the mutable bookkeeping below and serializes view
	// publication (queries never take it).
	mu        sync.Mutex
	edges     map[uint64]struct{} // authoritative current edge set
	dirtyAll  map[int32]struct{}  // in-neighborhood changes since the serving index's base
	dirtySnap map[int32]struct{}  // same, since the in-flight rebuild snapshot (nil when idle)
	staleOps  int
	staleSnap int
	// pending are the applied ops the serving index does not reflect, in
	// application order — the replayable form of dirtyAll (staleOps ==
	// len(pending)). pendingSnap tracks the same tail relative to the
	// in-flight rebuild snapshot, valid while dirtySnap is non-nil.
	pending     []Op
	pendingSnap []Op
	wal         *durable.Log // nil without Options.Durable

	rebuildMu  sync.Mutex // serializes rebuilds
	rebuilding atomic.Bool
	running    atomic.Bool
	closed     atomic.Bool

	totalOps    atomic.Uint64
	rebuilds    atomic.Uint64
	drainedGens atomic.Uint64

	est sync.Pool // *ssScratch
}

// New builds the initial index over g and wraps it for updates. With
// o.Durable set the directory must not already hold state
// (ErrStateExists — reopen existing state with Restore): the built index
// becomes the initial snapshot, anchoring the WAL every later batch is
// journaled to.
func New(g *graph.Graph, o Options) (*Dynamic, error) {
	var wal *durable.Log
	if o.Durable != nil {
		var err error
		wal, err = durable.Open(*o.Durable)
		if err != nil {
			return nil, err
		}
		if wal.Snapshot() != nil || wal.LastLSN() > 0 {
			wal.Close()
			return nil, ErrStateExists
		}
	}
	ix, err := core.Build(g, &o.Build)
	if err != nil {
		if wal != nil {
			wal.Close()
		}
		return nil, err
	}
	d := newDynamic(g, ix, o)
	if wal != nil {
		d.wal = wal
		d.mu.Lock()
		_, err := d.snapshotLocked()
		d.mu.Unlock()
		if err != nil {
			wal.Close()
			return nil, fmt.Errorf("dynamic: writing initial snapshot: %w", err)
		}
	}
	return d, nil
}

// newDynamic wraps an already-built index (a fresh build or a restored
// snapshot) with the update machinery.
func newDynamic(g *graph.Graph, ix *core.Index, o Options) *Dynamic {
	c, eps := ix.C(), ix.Eps()
	d := &Dynamic{
		n:        g.NumNodes(),
		c:        c,
		buildOpt: o.Build,
		thresh:   o.RebuildThreshold,
	}
	d.depth = o.Depth
	if d.depth <= 0 {
		d.depth = DeriveDepth(eps, c)
	}
	d.nw = o.NumWalks
	if d.nw <= 0 {
		d.nw = mc.DeriveNumWalks(eps, 0.01, d.n)
	}
	d.seed = o.Seed
	if d.seed == 0 {
		d.seed = o.Build.Seed ^ 0x9e3779b97f4a7c15
	}
	d.workers = o.Workers
	if d.workers <= 0 {
		d.workers = runtime.GOMAXPROCS(0)
	}
	d.pow = make([]float64, d.depth+1)
	for l := 0; l <= d.depth; l++ {
		d.pow[l] = math.Pow(c, float64(l))
	}
	d.edges = make(map[uint64]struct{}, g.NumEdges())
	g.Edges(func(from, to graph.NodeID) bool {
		d.edges[edgeKey(from, to)] = struct{}{}
		return true
	})
	d.dirtyAll = make(map[int32]struct{})
	gen := &generation{num: 1, ix: ix, pool: ix.NewScratchPool()}
	d.cur.Store(&view{gen: gen, g: g})
	d.est.New = func() interface{} { return newSSScratch(d.n) }
	return d
}

// DeriveDepth returns the smallest truncation depth t whose ignored
// meeting-probability tail Σ_{l>t} c^l = c^(t+1)/(1−c) is at most eps/2.
func DeriveDepth(eps, c float64) int {
	t := int(math.Ceil(math.Log(eps*(1-c)/2)/math.Log(c))) - 1
	if t < 1 {
		t = 1
	}
	return t
}

func edgeKey(from, to graph.NodeID) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// AddEdge inserts the directed edge u -> v. It reports whether the graph
// changed (false when the edge already existed) and errors on node IDs
// outside [0, NumNodes) — the node set is fixed at New.
func (d *Dynamic) AddEdge(u, v graph.NodeID) (bool, error) {
	return d.applyOne(Op{Add: true, From: u, To: v})
}

// RemoveEdge deletes the directed edge u -> v. It reports whether the
// graph changed (false when the edge did not exist) and errors on node
// IDs outside [0, NumNodes).
func (d *Dynamic) RemoveEdge(u, v graph.NodeID) (bool, error) {
	return d.applyOne(Op{From: u, To: v})
}

func (d *Dynamic) applyOne(op Op) (bool, error) {
	res, _, err := d.Apply([]Op{op})
	if err != nil {
		return false, err
	}
	return res[0].Applied, res[0].Err
}

// Apply executes a batch of edge ops atomically with respect to queries:
// one new graph snapshot and one recomputed affected frontier cover the
// whole batch. Invalid ops fail individually in the returned results;
// the batch-level error is non-nil only when the index is closed or when
// a durable index fails to journal the batch — in both cases no op was
// applied.
//
// On a durable index the batch is journaled before any state mutates
// (journal-before-apply): an acknowledged op is on disk before it is
// visible to any query, so Restore can never miss one.
//
// Publication cost is per batch, not per op: every batch with at least
// one applied op rebuilds the CSR snapshot (O(m log m)) and re-runs the
// frontier BFS. High-rate updaters on large graphs should batch their
// ops (as POST /update does) rather than loop over AddEdge.
func (d *Dynamic) Apply(ops []Op) ([]OpResult, int, error) {
	if d.closed.Load() {
		return nil, 0, ErrClosed
	}
	res := make([]OpResult, len(ops))
	d.mu.Lock()
	// Stage first: decide every op's fate against an overlay of the edge
	// set without touching it, so a journaling failure leaves the index
	// exactly as it was.
	staged := make(map[uint64]bool)
	var applied []Op
	for i, op := range ops {
		if op.From < 0 || int(op.From) >= d.n || op.To < 0 || int(op.To) >= d.n {
			res[i].Err = fmt.Errorf("dynamic: edge (%d,%d) out of range [0,%d)", op.From, op.To, d.n)
			continue
		}
		k := edgeKey(op.From, op.To)
		present, ok := staged[k]
		if !ok {
			_, present = d.edges[k]
		}
		if present == op.Add {
			continue // add of present edge / remove of absent edge: no-op
		}
		staged[k] = op.Add
		res[i].Applied = true
		applied = append(applied, op)
	}
	if len(applied) == 0 {
		d.mu.Unlock()
		return res, 0, nil
	}
	if d.wal != nil {
		if _, err := d.wal.Append(journalOps(applied)); err != nil {
			d.mu.Unlock()
			return nil, 0, fmt.Errorf("dynamic: journaling %d op(s): %w", len(applied), err)
		}
	}
	d.commitLocked(applied)
	trigger := d.thresh > 0 && d.staleOps >= d.thresh
	d.mu.Unlock()
	if trigger {
		d.TriggerRebuild()
	}
	return res, len(applied), nil
}

// commitLocked mutates the edge set and staleness bookkeeping with an
// already-staged (and, when durable, already-journaled) op sequence and
// publishes a fresh view. Caller holds mu.
func (d *Dynamic) commitLocked(applied []Op) {
	for _, op := range applied {
		k := edgeKey(op.From, op.To)
		if op.Add {
			d.edges[k] = struct{}{}
		} else {
			delete(d.edges, k)
		}
		d.dirtyAll[op.To] = struct{}{}
		if d.dirtySnap != nil {
			d.dirtySnap[op.To] = struct{}{}
		}
	}
	d.pending = append(d.pending, applied...)
	d.staleOps += len(applied)
	if d.dirtySnap != nil {
		d.pendingSnap = append(d.pendingSnap, applied...)
		d.staleSnap += len(applied)
	}
	d.totalOps.Add(uint64(len(applied)))
	d.publishLocked()
}

// publishLocked rebuilds the CSR snapshot from the edge set, recomputes
// the affected frontier, and publishes a fresh view on the current
// generation. Caller holds mu.
func (d *Dynamic) publishLocked() {
	b := graph.NewBuilder(d.n)
	for k := range d.edges {
		b.AddEdge(graph.NodeID(k>>32), graph.NodeID(uint32(k)))
	}
	g := b.Build()
	aff, list := affectedFrontier(g, d.dirtyAll, d.depth)
	old := d.cur.Load()
	d.cur.Store(&view{gen: old.gen, g: g, affected: aff, affectedList: list, staleOps: d.staleOps})
}

// affectedFrontier marks every node within forward distance depth of a
// dirty node (a node whose in-neighborhood changed): exactly the nodes
// whose truncated reverse-walk distribution may differ from the index's
// base graph. A node y is visited at step j < depth of some node u's
// reverse walk iff the graph has a forward path y -> … -> u of length j,
// so BFS along out-edges from the dirty set covers every such u.
func affectedFrontier(g *graph.Graph, dirty map[int32]struct{}, depth int) ([]bool, []int32) {
	if len(dirty) == 0 {
		return nil, nil
	}
	aff := make([]bool, g.NumNodes())
	frontier := make([]int32, 0, len(dirty))
	for v := range dirty {
		aff[v] = true
		frontier = append(frontier, v)
	}
	for step := 0; step < depth && len(frontier) > 0; step++ {
		var next []int32
		for _, v := range frontier {
			for _, w := range g.OutNeighbors(v) {
				if !aff[w] {
					aff[w] = true
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	list := make([]int32, 0, len(dirty))
	for v, a := range aff {
		if a {
			list = append(list, int32(v))
		}
	}
	return aff, list
}

// Rebuild synchronously rebuilds the index over the current graph and
// swaps it in as a new epoch, returning the epoch this call produced —
// not whatever epoch is serving afterwards, so concurrent rebuilds each
// learn their own swap. Updates applied while the rebuild runs stay
// pending (they form the new epoch's affected frontier); with no
// concurrent updates the swapped index is byte-identical to a fresh
// core.Build of the mutated graph with the same options. On a durable
// index the swap also writes a snapshot; if that fails the new epoch is
// already serving and the epoch is returned alongside the error.
func (d *Dynamic) Rebuild() (uint64, error) {
	d.rebuildMu.Lock()
	epoch, err := d.rebuildLocked()
	d.rebuildMu.Unlock()
	if err == nil {
		d.retriggerIfStale()
	}
	return epoch, err
}

// TriggerRebuild starts a background rebuild unless one is already
// running or the index is closed; it reports whether one was started.
func (d *Dynamic) TriggerRebuild() bool {
	if d.closed.Load() {
		return false
	}
	if !d.rebuilding.CompareAndSwap(false, true) {
		return false
	}
	go func() {
		d.rebuildMu.Lock()
		// A failed build leaves the previous epoch serving; the next
		// update over the threshold retries.
		_, err := d.rebuildLocked()
		d.rebuildMu.Unlock()
		d.rebuilding.Store(false)
		if err == nil {
			d.retriggerIfStale()
		}
	}()
	return true
}

// retriggerIfStale re-arms the threshold trigger after a swap: ops that
// arrived during the rebuild stay pending in the new epoch, and with no
// further Apply calls nothing else would ever schedule the rebuild they
// already warrant.
func (d *Dynamic) retriggerIfStale() {
	d.mu.Lock()
	stale := d.thresh > 0 && d.staleOps >= d.thresh
	d.mu.Unlock()
	if stale {
		d.TriggerRebuild()
	}
}

func (d *Dynamic) rebuildLocked() (uint64, error) {
	if d.closed.Load() {
		return 0, ErrClosed
	}
	d.running.Store(true)
	defer d.running.Store(false)
	d.mu.Lock()
	snap := d.cur.Load().g
	d.dirtySnap = make(map[int32]struct{})
	d.staleSnap = 0
	d.pendingSnap = nil
	d.mu.Unlock()

	opt := d.buildOpt
	ix, err := core.Build(snap, &opt)

	d.mu.Lock()
	defer d.mu.Unlock()
	if err != nil {
		d.dirtySnap = nil
		d.pendingSnap = nil
		return 0, err
	}
	if d.closed.Load() {
		// Close raced the build: discard the result instead of swapping.
		d.dirtySnap = nil
		d.pendingSnap = nil
		return 0, ErrClosed
	}
	old := d.cur.Load()
	gen := &generation{num: old.gen.num + 1, ix: ix, pool: ix.NewScratchPool()}
	d.dirtyAll = d.dirtySnap
	d.dirtySnap = nil
	d.staleOps = d.staleSnap
	d.pending = d.pendingSnap
	d.pendingSnap = nil
	aff, list := affectedFrontier(old.g, d.dirtyAll, d.depth)
	d.cur.Store(&view{gen: gen, g: old.g, affected: aff, affectedList: list, staleOps: d.staleOps})
	d.rebuilds.Add(1)
	d.retire(old.gen)
	if d.wal != nil {
		// The swap is already visible; a snapshot failure only means
		// recovery replays a longer WAL tail onto the previous snapshot.
		if _, err := d.snapshotLocked(); err != nil {
			return gen.num, fmt.Errorf("dynamic: epoch %d serving but snapshot failed: %w", gen.num, err)
		}
	}
	return gen.num, nil
}

// Close stops the rebuild machinery: no further updates or rebuilds are
// accepted, and an in-flight background rebuild is cancelled (its result
// is discarded before the swap; Close waits for the worker to finish).
// Queries remain valid against the last published epoch. On a durable
// index the WAL is closed; the on-disk state is what Restore reopens.
func (d *Dynamic) Close() {
	d.closed.Store(true)
	// Taking rebuildMu is the wait: it is held for the whole of any
	// in-flight rebuild, whose swap the closed flag above suppresses.
	d.rebuildMu.Lock()
	defer d.rebuildMu.Unlock()
	if d.wal != nil {
		// mu serializes against an Apply mid-journal.
		d.mu.Lock()
		d.wal.Close()
		d.mu.Unlock()
	}
}

// acquire pins the current view: the generation's refcount guarantees the
// drain counter only advances once every query reading a retired epoch
// has released it.
func (d *Dynamic) acquire() *view {
	for {
		w := d.cur.Load()
		w.gen.refs.Add(1)
		if d.cur.Load().gen == w.gen {
			return w
		}
		d.release(w.gen) // swapped mid-acquire; prefer the fresh epoch
	}
}

func (d *Dynamic) release(g *generation) {
	if g.refs.Add(-1) == 0 && g.retired.Load() {
		if g.drained.CompareAndSwap(false, true) {
			d.drainedGens.Add(1)
		}
	}
}

func (d *Dynamic) retire(g *generation) {
	g.retired.Store(true)
	if g.refs.Load() == 0 && g.drained.CompareAndSwap(false, true) {
		d.drainedGens.Add(1)
	}
}

// SimRank returns s̃(u, v), clamped into [0, 1]: from the static index
// when both nodes are unaffected, from fresh coupled Monte Carlo on the
// mutated graph otherwise.
func (d *Dynamic) SimRank(u, v graph.NodeID) float64 {
	w := d.acquire()
	defer d.release(w.gen)
	if w.clean(u) && w.clean(v) {
		return clamp01(w.gen.pool.SimRank(u, v))
	}
	return d.pairEstimate(w.g, u, v)
}

// SingleSource returns s̃(u, v) for every node v (clamped into [0, 1]),
// writing into out when it has capacity. Unaffected targets of an
// unaffected source come from the static index; everything else is
// estimated on the mutated graph.
func (d *Dynamic) SingleSource(u graph.NodeID, out []float64) []float64 {
	w := d.acquire()
	defer d.release(w.gen)
	return d.singleSource(w, u, out)
}

func (d *Dynamic) singleSource(w *view, u graph.NodeID, out []float64) []float64 {
	if cap(out) < d.n {
		out = make([]float64, d.n)
	}
	out = out[:d.n]
	if w.clean(u) {
		out = w.gen.pool.SingleSource(u, out)
		for i, s := range out {
			out[i] = clamp01(s)
		}
		if w.affected == nil {
			return out
		}
		// Patch the affected targets. Per-pair estimation walks two
		// trajectories per pair; the memoized single-source sweep walks
		// all n at once — cross over when the frontier covers most nodes.
		if 2*len(w.affectedList) < d.n {
			for _, v := range w.affectedList {
				out[v] = d.pairEstimate(w.g, u, graph.NodeID(v))
			}
		} else {
			tmp := d.mcSingleSource(w.g, u, nil)
			for _, v := range w.affectedList {
				out[v] = tmp[v]
			}
		}
		return out
	}
	return d.mcSingleSource(w.g, u, out)
}

// TopK returns the k nodes most similar to u (excluding u itself) in
// descending score order, ties by ascending node ID — the same selection
// the static index uses, over the dynamic score vector.
func (d *Dynamic) TopK(u graph.NodeID, k int) []core.TopEntry {
	if k <= 0 {
		return nil
	}
	w := d.acquire()
	defer d.release(w.gen)
	vec := w.gen.pool.Vector()
	top := core.SelectTop(d.singleSource(w, u, vec), k, u)
	w.gen.pool.PutVector(vec)
	return top
}

// SourceTop returns the limit highest-scoring nodes for source u (u
// itself included) in descending score order, ties by ascending node ID.
func (d *Dynamic) SourceTop(u graph.NodeID, limit int) []core.TopEntry {
	if limit <= 0 {
		return nil
	}
	w := d.acquire()
	defer d.release(w.gen)
	vec := w.gen.pool.Vector()
	top := core.SelectTop(d.singleSource(w, u, vec), limit, -1)
	w.gen.pool.PutVector(vec)
	return top
}

// SingleSourceBatch answers one single-source query per source in us,
// fanned across workers goroutines (Options.Workers when workers <= 0).
// Against a fixed state every row equals SingleSource(us[i], nil); under
// concurrent updates each row is individually consistent with some
// published view. A cancelled ctx (nil means never) stops the fan-out
// between sources and returns ctx.Err().
func (d *Dynamic) SingleSourceBatch(ctx context.Context, us []graph.NodeID, workers int) ([][]float64, error) {
	rows := make([][]float64, len(us))
	if workers <= 0 {
		workers = d.workers
	}
	if workers > len(us) {
		workers = len(us)
	}
	if workers <= 1 {
		for i, u := range us {
			if err := core.CtxErr(ctx); err != nil {
				return nil, err
			}
			rows[i] = d.SingleSource(u, nil)
		}
		return rows, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if core.CtxErr(ctx) != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(us) {
					return
				}
				rows[i] = d.SingleSource(us[i], nil)
			}
		}()
	}
	wg.Wait()
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	return rows, nil
}

// AffectedNodes returns the current affected frontier as ascending node
// IDs (empty when the static index fully covers the graph).
func (d *Dynamic) AffectedNodes() []graph.NodeID {
	w := d.acquire()
	defer d.release(w.gen)
	out := make([]graph.NodeID, len(w.affectedList))
	copy(out, w.affectedList)
	return out
}

// Graph returns the current (mutated) graph snapshot.
func (d *Dynamic) Graph() *graph.Graph {
	w := d.acquire()
	defer d.release(w.gen)
	return w.g
}

// Epoch returns the serving index's epoch number (1 after New,
// incremented by every swap).
func (d *Dynamic) Epoch() uint64 {
	w := d.acquire()
	defer d.release(w.gen)
	return w.gen.num
}

// NumNodes returns the fixed node count.
func (d *Dynamic) NumNodes() int { return d.n }

// C returns the decay factor.
func (d *Dynamic) C() float64 { return d.c }

// ErrorBound returns the serving index's per-score error bound.
func (d *Dynamic) ErrorBound() float64 {
	w := d.acquire()
	defer d.release(w.gen)
	return w.gen.ix.ErrorBound()
}

// Stats is a point-in-time snapshot of the dynamic layer.
type Stats struct {
	Epoch            uint64 // serving index generation (1 = initial build)
	Nodes            int
	Edges            int    // edges in the current mutated graph
	AffectedNodes    int    // size of the staleness frontier
	StaleOps         int    // applied ops not yet reflected in the serving index
	TotalOps         uint64 // lifetime applied ops
	Rebuilds         uint64 // completed epoch swaps
	RebuildRunning   bool
	RebuildThreshold int
	EpochsDrained    uint64 // retired epochs no in-flight query still reads
	NumWalks         int    // MC walks per affected-node estimate
	Depth            int    // walk truncation / frontier BFS depth
	IndexBytes       int64
	ErrorBound       float64
	Durable          DurableStats
}

// DurableStats describes the WAL/snapshot backing of a durable index;
// the zero value (Enabled false) means memory-only.
type DurableStats struct {
	Enabled          bool
	LSN              uint64 // last journaled batch
	WALSegments      int
	WALBytes         int64
	Snapshots        int    // snapshot files retained on disk
	LastSnapshotLSN  uint64 // WAL position the newest snapshot covers
	Appends          uint64 // batches journaled in-process
	SnapshotsWritten uint64 // snapshots written in-process
}

// Stats reports the current epoch, staleness, and rebuild state.
func (d *Dynamic) Stats() Stats {
	w := d.acquire()
	defer d.release(w.gen)
	var ds DurableStats
	if d.wal != nil {
		ls := d.wal.Stats()
		ds = DurableStats{
			Enabled:          true,
			LSN:              ls.LastLSN,
			WALSegments:      ls.Segments,
			WALBytes:         ls.WALBytes,
			Snapshots:        ls.Snapshots,
			LastSnapshotLSN:  ls.LastSnapshotLSN,
			Appends:          ls.Appends,
			SnapshotsWritten: ls.SnapshotsWritten,
		}
	}
	return Stats{
		Epoch:            w.gen.num,
		Nodes:            d.n,
		Edges:            w.g.NumEdges(),
		AffectedNodes:    len(w.affectedList),
		StaleOps:         w.staleOps,
		TotalOps:         d.totalOps.Load(),
		Rebuilds:         d.rebuilds.Load(),
		RebuildRunning:   d.running.Load(),
		RebuildThreshold: d.thresh,
		EpochsDrained:    d.drainedGens.Load(),
		NumWalks:         d.nw,
		Depth:            d.depth,
		IndexBytes:       w.gen.ix.Bytes(),
		ErrorBound:       w.gen.ix.ErrorBound(),
		Durable:          ds,
	}
}

func clamp01(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}
