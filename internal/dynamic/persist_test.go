package dynamic

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sling/internal/core"
	"sling/internal/durable"
	"sling/internal/graph"
	"sling/internal/rng"
)

// durableFor returns test-speed durable options for dir: fsync off, tiny
// segments so multi-segment chains appear under small op counts.
func durableFor(dir string) *durable.Options {
	return &durable.Options{Dir: dir, NoSync: true, SegmentBytes: 256}
}

// compareBitwise requires a and b to answer every sampled query — pair,
// single-source, top-k, source-top, and batch — with bit-identical
// float64s.
func compareBitwise(t *testing.T, label string, a, b *Dynamic, n int, seed uint64) {
	t.Helper()
	r := rng.New(seed)
	for q := 0; q < 40; q++ {
		u, v := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
		if x, y := a.SimRank(u, v), b.SimRank(u, v); math.Float64bits(x) != math.Float64bits(y) {
			t.Fatalf("%s: SimRank(%d,%d) = %v vs %v", label, u, v, x, y)
		}
	}
	sameTop := func(x, y []core.TopEntry) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i].Node != y[i].Node || math.Float64bits(x[i].Score) != math.Float64bits(y[i].Score) {
				return false
			}
		}
		return true
	}
	sources := make([]graph.NodeID, 5)
	for i := range sources {
		sources[i] = graph.NodeID(r.Intn(n))
	}
	for _, u := range sources {
		x, y := a.SingleSource(u, nil), b.SingleSource(u, nil)
		for v := range x {
			if math.Float64bits(x[v]) != math.Float64bits(y[v]) {
				t.Fatalf("%s: SingleSource(%d)[%d] = %v vs %v", label, u, v, x[v], y[v])
			}
		}
		if x, y := a.TopK(u, 6), b.TopK(u, 6); !sameTop(x, y) {
			t.Fatalf("%s: TopK(%d) = %+v vs %+v", label, u, x, y)
		}
		if x, y := a.SourceTop(u, 4), b.SourceTop(u, 4); !sameTop(x, y) {
			t.Fatalf("%s: SourceTop(%d) = %+v vs %+v", label, u, x, y)
		}
	}
	xb, err := a.SingleSourceBatch(nil, sources, 2)
	if err != nil {
		t.Fatalf("%s: batch: %v", label, err)
	}
	yb, err := b.SingleSourceBatch(nil, sources, 2)
	if err != nil {
		t.Fatalf("%s: batch: %v", label, err)
	}
	for i := range sources {
		for v := range xb[i] {
			if math.Float64bits(xb[i][v]) != math.Float64bits(yb[i][v]) {
				t.Fatalf("%s: batch row %d diverges at %d", label, i, v)
			}
		}
	}
}

// A fresh durable directory gets an initial snapshot at build time, so a
// crash before the first update already restores, and a second New on a
// non-empty directory is refused (Restore is the right verb there).
func TestDurableInitialSnapshotAndStateExists(t *testing.T) {
	dir := t.TempDir()
	g, _ := randomGraph(18, 50, 1)
	opts := Options{Build: core.Options{Eps: 0.1, Seed: 11}, NumWalks: 32, Durable: durableFor(dir)}
	d, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	st := d.Stats().Durable
	if !st.Enabled || st.SnapshotsWritten != 1 || st.LSN != 0 {
		t.Fatalf("initial durable stats = %+v", st)
	}
	names, err := filepath.Glob(filepath.Join(dir, "snap-*.slsnap"))
	if err != nil || len(names) != 1 {
		t.Fatalf("snapshot files = %v, err %v", names, err)
	}

	ro := opts
	ro.Durable = &durable.Options{Dir: dir, ReadOnly: true}
	r, err := Restore(ro)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	compareBitwise(t, "pristine restore", d, r, 18, 2)

	if _, err := New(g, opts); !errors.Is(err, ErrStateExists) {
		t.Fatalf("New on a populated durable dir: err = %v, want ErrStateExists", err)
	}
}

// Updates journal before applying; a read-only restore while the live
// instance still holds the directory replays the WAL tail and answers
// the stale phase bit-identically, including the Monte Carlo fallback.
func TestDurableRestoreReplaysWALTail(t *testing.T) {
	dir := t.TempDir()
	g, edges := randomGraph(24, 80, 3)
	opts := Options{Build: core.Options{Eps: 0.1, Seed: 5}, NumWalks: 48, Durable: durableFor(dir)}
	d, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	applyRandomOps(t, d, edges, 24, 60, 17)
	if st := d.Stats().Durable; st.LSN == 0 || st.WALSegments < 2 {
		t.Fatalf("update mix left durable stats %+v, want records across segments", st)
	}

	ro := opts
	ro.Durable = &durable.Options{Dir: dir, ReadOnly: true}
	r, err := Restore(ro)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got, want := r.Stats(), d.Stats(); got.Epoch != want.Epoch ||
		got.StaleOps != want.StaleOps || got.AffectedNodes != want.AffectedNodes ||
		got.TotalOps != want.TotalOps {
		t.Fatalf("restored stats %+v, live %+v", got, want)
	}
	compareBitwise(t, "stale restore", d, r, 24, 4)
}

// The epoch swap writes a snapshot, so a restore after Rebuild reloads
// the rebuilt index (not the original plus a replay) and answers
// bit-identically with a clean frontier.
func TestDurableRestoreAfterRebuild(t *testing.T) {
	dir := t.TempDir()
	g, edges := randomGraph(20, 60, 7)
	opts := Options{Build: core.Options{Eps: 0.1, Seed: 9}, NumWalks: 32, Durable: durableFor(dir)}
	d, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	applyRandomOps(t, d, edges, 20, 40, 23)
	epoch, err := d.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("rebuild swapped to epoch %d, want 2", epoch)
	}

	ro := opts
	ro.Durable = &durable.Options{Dir: dir, ReadOnly: true}
	r, err := Restore(ro)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats(); st.Epoch != 2 || st.StaleOps != 0 || st.AffectedNodes != 0 {
		t.Fatalf("restored post-rebuild stats %+v, want clean epoch 2", st)
	}
	compareBitwise(t, "post-rebuild restore", d, r, 20, 6)
}

// Snapshot is the manual checkpoint: it must cover every journaled op
// (LSN equality with the WAL head) and cut the tail a later restore has
// to replay.
func TestDurableManualSnapshot(t *testing.T) {
	dir := t.TempDir()
	g, edges := randomGraph(16, 40, 13)
	opts := Options{Build: core.Options{Eps: 0.1, Seed: 3}, NumWalks: 32, Durable: durableFor(dir)}
	d, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	applyRandomOps(t, d, edges, 16, 30, 29)

	lsn, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	st := d.Stats().Durable
	if lsn != st.LSN || st.LastSnapshotLSN != lsn || st.SnapshotsWritten != 2 {
		t.Fatalf("manual snapshot: lsn %d, durable stats %+v", lsn, st)
	}

	ro := opts
	ro.Durable = &durable.Options{Dir: dir, ReadOnly: true}
	r, err := Restore(ro)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	compareBitwise(t, "manual snapshot restore", d, r, 16, 8)
}

func TestDurableSentinels(t *testing.T) {
	g, _ := randomGraph(8, 12, 1)
	opts := Options{Build: core.Options{Eps: 0.1, Seed: 1}, NumWalks: 16}

	if _, err := Restore(opts); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Restore without durable options: err = %v, want ErrNotDurable", err)
	}
	empty := opts
	empty.Durable = durableFor(t.TempDir())
	if _, err := Restore(empty); !errors.Is(err, ErrNoState) {
		t.Fatalf("Restore of an empty dir: err = %v, want ErrNoState", err)
	}

	d, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Snapshot(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Snapshot without durable options: err = %v, want ErrNotDurable", err)
	}
}

// TestKillRestartEquivalence is the durability property test: random op
// batches stream into a durably backed instance whose WAL dies at a
// random byte offset mid-record. The batch that hit the fault reports an
// error (and must leave no state behind); recovery truncates the torn
// record and the restored instance must answer bit-identically to a
// clean, never-crashed replay of exactly the acknowledged batches.
func TestKillRestartEquivalence(t *testing.T) {
	cases := []struct {
		n, m, batches int
		rebuildAt     int // batch index to force an epoch swap at; -1 none
		seed          uint64
	}{
		{n: 18, m: 50, batches: 24, rebuildAt: -1, seed: 41},
		{n: 24, m: 90, batches: 30, rebuildAt: 10, seed: 42},
		{n: 30, m: 120, batches: 36, rebuildAt: 18, seed: 43},
	}
	for _, tc := range cases {
		g, _ := randomGraph(tc.n, tc.m, tc.seed)
		build := core.Options{Eps: 0.1, Seed: tc.seed + 1}
		mkBatch := func(r *rng.Source) []Op {
			ops := make([]Op, 1+r.Intn(5))
			for i := range ops {
				ops[i] = Op{Add: r.Intn(3) != 0,
					From: graph.NodeID(r.Intn(tc.n)), To: graph.NodeID(r.Intn(tc.n))}
			}
			return ops
		}

		// Probe run: same batches against a clean durable instance to
		// learn how many record bytes the full sequence journals.
		probeDir := t.TempDir()
		probe, err := New(g, Options{Build: build, NumWalks: 32, Durable: durableFor(probeDir)})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(tc.seed + 7)
		for i := 0; i < tc.batches; i++ {
			if _, _, err := probe.Apply(mkBatch(r)); err != nil {
				t.Fatal(err)
			}
			if i == tc.rebuildAt {
				if _, err := probe.Rebuild(); err != nil {
					t.Fatal(err)
				}
			}
		}
		pst := probe.Stats().Durable
		recordBytes := pst.WALBytes - int64(pst.WALSegments)*16 // headers don't count
		probe.Close()
		if recordBytes <= 0 {
			t.Fatalf("probe journaled no record bytes: %+v", pst)
		}

		// Victim run: same sequence, WAL dies at a random record offset.
		fr := rng.New(tc.seed + 101)
		dir := t.TempDir()
		vopt := durableFor(dir)
		vopt.FailAfterBytes = 1 + int64(fr.Intn(int(recordBytes)))
		victim, err := New(g, Options{Build: build, NumWalks: 32, Durable: vopt})
		if err != nil {
			t.Fatal(err)
		}
		var acked [][]Op
		rebuilt := false
		r = rng.New(tc.seed + 7)
		crashed := false
		for i := 0; i < tc.batches; i++ {
			ops := mkBatch(r)
			if _, _, err := victim.Apply(ops); err != nil {
				if !errors.Is(err, durable.ErrInjectedFault) {
					t.Fatalf("batch %d: %v", i, err)
				}
				crashed = true
				break
			}
			acked = append(acked, ops)
			if i == tc.rebuildAt {
				if _, err := victim.Rebuild(); err != nil {
					if !errors.Is(err, durable.ErrInjectedFault) {
						t.Fatalf("rebuild: %v", err)
					}
					crashed = true
					break
				}
				rebuilt = true
			}
		}
		victim.Close()

		// Recovery reopens read-write: the torn record is physically
		// truncated, then the snapshot plus surviving tail replays.
		restored, err := Restore(Options{Build: build, NumWalks: 32, Durable: durableFor(dir)})
		if err != nil {
			t.Fatalf("restore after crash (crashed=%v): %v", crashed, err)
		}

		// Clean twin: never crashed, sees exactly the acknowledged batches
		// with the epoch swap (when the victim got that far) replayed at
		// the same position in the sequence.
		twin, err := New(g, Options{Build: build, NumWalks: 32})
		if err != nil {
			t.Fatal(err)
		}
		for i, ops := range acked {
			if _, _, err := twin.Apply(ops); err != nil {
				t.Fatal(err)
			}
			if rebuilt && i == tc.rebuildAt {
				if _, err := twin.Rebuild(); err != nil {
					t.Fatal(err)
				}
			}
		}
		compareBitwise(t, "kill-restart", restored, twin, tc.n, tc.seed+5)
		restored.Close()
		twin.Close()
	}
}

// A crash that tears the final record must not lose the acknowledged
// prefix: this pins the physical repair by checking the directory is
// reopened read-write (truncation happened) and the restored LSN equals
// the count of acknowledged batches that journaled.
func TestKillRestartTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	g, _ := randomGraph(12, 30, 51)
	build := core.Options{Eps: 0.1, Seed: 52}
	vopt := &durable.Options{Dir: dir, NoSync: true, FailAfterBytes: 100}
	d, err := New(g, Options{Build: build, NumWalks: 16, Durable: vopt})
	if err != nil {
		t.Fatal(err)
	}
	acked, faulted := uint64(0), false
	for i := 0; i < 20; i++ {
		u := graph.NodeID(i % 12)
		v := graph.NodeID((i*5 + 1) % 12)
		_, n, err := d.Apply([]Op{{Add: true, From: u, To: v}})
		if err != nil {
			if !errors.Is(err, durable.ErrInjectedFault) {
				t.Fatal(err)
			}
			faulted = true
			break
		}
		if n > 0 { // no-op batches (duplicate adds) never journal
			acked++
		}
	}
	d.Close()
	if acked == 0 || !faulted {
		t.Fatalf("fault point produced %d journaled batches, faulted=%v; want a strict prefix", acked, faulted)
	}

	r, err := Restore(Options{Build: build, NumWalks: 16, Durable: &durable.Options{Dir: dir, NoSync: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats().Durable; st.LSN != acked {
		t.Fatalf("restored LSN %d, want %d acknowledged batches", st.LSN, acked)
	}
	// The repair is physical: a fresh read-only open (no truncation
	// rights) of the same directory must now succeed too.
	lg, err := durable.Open(durable.Options{Dir: dir, ReadOnly: true})
	if err != nil {
		t.Fatalf("read-only reopen after repair: %v", err)
	}
	lg.Close()
}

// Close while a durable directory is attached must release the WAL file
// handles so the directory can be reopened read-write immediately.
func TestDurableCloseReleasesDir(t *testing.T) {
	dir := t.TempDir()
	g, edges := randomGraph(10, 24, 61)
	opts := Options{Build: core.Options{Eps: 0.1, Seed: 62}, NumWalks: 16, Durable: durableFor(dir)}
	d, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	applyRandomOps(t, d, edges, 10, 12, 63)
	d.Close()
	if _, _, err := d.Apply([]Op{{Add: true, From: 0, To: 1}}); err != ErrClosed {
		t.Fatalf("Apply after Close: err = %v, want ErrClosed", err)
	}

	r, err := Restore(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Snapshot(); err != nil {
		t.Fatalf("snapshot on reopened dir: %v", err)
	}
	r.Close()

	// Directory contents stay parseable by the inspector.
	rep, err := durable.Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt() {
		t.Fatalf("inspect flags problems: %v", rep.Problems)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("stray tmp file %s", e.Name())
		}
	}
}
