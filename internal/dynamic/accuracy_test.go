package dynamic

import (
	"testing"

	"sling/internal/core"
	"sling/internal/eval"
	"sling/internal/graph"
	"sling/internal/rng"
)

// TestAccuracyWhileStale is the accuracy harness: while updates are
// pending (pre-rebuild), dynamic answers on affected nodes must stay
// within ε of exact power-iteration SimRank on the mutated graph. Walk
// counts are derived from (ε, δ) — NumWalks: 0 — so this exercises the
// real guarantee machinery, table-driven over decay factor, ε, and
// update mix. The comparison goes through the internal/eval helpers so
// any harness (tests, slingbench) measures staleness error the same way.
func TestAccuracyWhileStale(t *testing.T) {
	if testing.Short() {
		t.Skip("derived walk counts are large; skipping in -short")
	}
	cases := []struct {
		name       string
		c, eps     float64
		n, m       int
		adds, rems int
		seed       uint64
	}{
		{name: "paper-c-loose-eps", c: 0.6, eps: 0.10, n: 24, m: 90, adds: 14, rems: 6, seed: 21},
		{name: "add-heavy", c: 0.6, eps: 0.15, n: 30, m: 120, adds: 25, rems: 3, seed: 22},
		{name: "remove-heavy", c: 0.6, eps: 0.15, n: 30, m: 150, adds: 4, rems: 22, seed: 23},
		{name: "high-decay", c: 0.8, eps: 0.15, n: 20, m: 70, adds: 10, rems: 5, seed: 24},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g, _ := randomGraph(tc.n, tc.m, tc.seed)
			d, err := New(g, Options{Build: core.Options{C: tc.c, Eps: tc.eps, Seed: tc.seed}})
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()

			// Update mix: adds of fresh random edges, removes of existing
			// ones (drawn from the current graph so they really apply).
			r := rng.New(tc.seed + 1000)
			var ops []Op
			for i := 0; i < tc.adds; i++ {
				ops = append(ops, Op{Add: true,
					From: graph.NodeID(r.Intn(tc.n)), To: graph.NodeID(r.Intn(tc.n))})
			}
			cur := d.Graph()
			for i := 0; i < tc.rems && cur.NumEdges() > 0; i++ {
				u := graph.NodeID(r.Intn(tc.n))
				outs := cur.OutNeighbors(u)
				if len(outs) == 0 {
					continue
				}
				ops = append(ops, Op{From: u, To: outs[r.Intn(len(outs))]})
			}
			if _, applied, err := d.Apply(ops); err != nil || applied == 0 {
				t.Fatalf("apply: %d applied, err %v", applied, err)
			}

			aff := d.AffectedNodes()
			if len(aff) == 0 {
				t.Fatal("update mix produced no affected nodes")
			}
			st := d.Stats()
			if st.Epoch != 1 || st.StaleOps == 0 {
				t.Fatalf("expected pre-rebuild staleness, got %+v", st)
			}

			truth, err := eval.GroundTruth(d.Graph(), tc.c)
			if err != nil {
				t.Fatal(err)
			}
			// Single-source rows from affected sources: every entry of the
			// row mixes MC estimates (affected targets) with static index
			// answers (clean targets whose distributions are unchanged), so
			// the whole row must be within ε.
			srcs := aff
			if len(srcs) > 6 {
				srcs = srcs[:6]
			}
			for _, u := range srcs {
				row := d.SingleSource(u, nil)
				worst, err := eval.RowMaxError(truth, u, row)
				if err != nil {
					t.Fatal(err)
				}
				if worst > tc.eps {
					t.Errorf("source %d: max row error %.4f > eps %.3f", u, worst, tc.eps)
				}
			}
			// Pair queries with at least one affected endpoint.
			for q := 0; q < 40; q++ {
				u := aff[r.Intn(len(aff))]
				v := graph.NodeID(r.Intn(tc.n))
				if e := eval.PairError(truth, u, v, d.SimRank(u, v)); e > tc.eps {
					t.Errorf("pair (%d,%d): error %.4f > eps %.3f", u, v, e, tc.eps)
				}
			}
		})
	}
}
