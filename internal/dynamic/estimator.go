package dynamic

import (
	"sling/internal/graph"
	"sling/internal/mc"
)

// Affected-node query estimation: fresh coupled Monte Carlo on the
// mutated graph, no stored walks. Transitions come from mc.Transition, a
// pure function of (seed, walk index, step, node), so two walks occupying
// the same node at the same step coalesce permanently and — more
// importantly here — every estimate is a deterministic function of
// (seed, graph): repeated queries on the same state agree exactly, the
// single-pair and single-source paths agree exactly (they trace identical
// trajectories and accumulate contributions in identical order), and
// estimates stay unbiased because transitions of walks at distinct nodes
// are independent and only the first meeting matters.
//
// A meeting at step l contributes c^l; estimates therefore always land in
// [0, 1] by construction. Truncation at depth t ignores at most
// c^(t+1)/(1−c) ≤ ε/2 of meeting probability (DeriveDepth), and NumWalks
// bounds the sampling error.

// pairEstimate estimates s(u, v) from nw coupled walk pairs on g.
func (d *Dynamic) pairEstimate(g *graph.Graph, u, v graph.NodeID) float64 {
	if u == v {
		return 1
	}
	total := 0.0
	for wi := 0; wi < d.nw; wi++ {
		cu, cv := u, v
		for l := 1; l <= d.depth; l++ {
			cu = mc.Transition(g, d.seed, wi, l-1, cu)
			if cu < 0 {
				break
			}
			cv = mc.Transition(g, d.seed, wi, l-1, cv)
			if cv < 0 {
				break
			}
			if cu == cv {
				total += d.pow[l]
				break
			}
		}
	}
	return total * (1 / float64(d.nw))
}

// ssScratch holds the single-source sweep state: every node's current
// walk position, the met flags, and a stamped memo of the shared
// transition function so each (walk index, step) costs one hash per
// distinct occupied node instead of one per node.
type ssScratch struct {
	cur       []int32
	met       []bool
	memoStamp []int64
	memoVal   []int32
	stamp     int64
}

func newSSScratch(n int) *ssScratch {
	return &ssScratch{
		cur:       make([]int32, n),
		met:       make([]bool, n),
		memoStamp: make([]int64, n),
		memoVal:   make([]int32, n),
	}
}

// next is mc.Transition memoized per (walk index, step) via s.stamp.
func (s *ssScratch) next(g *graph.Graph, seed uint64, wi, l int, x int32) int32 {
	if s.memoStamp[x] == s.stamp {
		return s.memoVal[x]
	}
	nx := int32(mc.Transition(g, seed, wi, l, graph.NodeID(x)))
	s.memoStamp[x] = s.stamp
	s.memoVal[x] = nx
	return nx
}

// mcSingleSource estimates s(u, v) for every v by sweeping all n coupled
// walks together, one step at a time, under each walk index. Because the
// transition out of a node is shared across walks, stepping all walks
// costs O(n) per step with the memo. Per (walk index, node) the traced
// trajectory — and hence the estimate — is identical to pairEstimate's.
func (d *Dynamic) mcSingleSource(g *graph.Graph, u graph.NodeID, out []float64) []float64 {
	if cap(out) < d.n {
		out = make([]float64, d.n)
	}
	out = out[:d.n]
	for i := range out {
		out[i] = 0
	}
	s := d.est.Get().(*ssScratch)
	for wi := 0; wi < d.nw; wi++ {
		for v := range s.cur {
			s.cur[v] = int32(v)
			s.met[v] = false
		}
		for l := 1; l <= d.depth; l++ {
			s.stamp++
			for v := 0; v < d.n; v++ {
				if s.met[v] || s.cur[v] < 0 {
					continue
				}
				s.cur[v] = s.next(g, d.seed, wi, l-1, s.cur[v])
			}
			nu := s.cur[u]
			if nu < 0 {
				break // the source walk died; no further meetings
			}
			add := d.pow[l]
			for v := 0; v < d.n; v++ {
				if v == int(u) || s.met[v] {
					continue
				}
				if s.cur[v] == nu {
					out[v] += add
					s.met[v] = true
				}
			}
		}
	}
	d.est.Put(s)
	inv := 1 / float64(d.nw)
	for i := range out {
		out[i] *= inv
	}
	out[u] = 1
	return out
}
