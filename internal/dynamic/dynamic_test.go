package dynamic

import (
	"testing"
	"time"

	"sling/internal/core"
	"sling/internal/graph"
	"sling/internal/rng"
)

// randomGraph returns a random directed graph and the edge set it was
// built from (the test's mirror of Dynamic's authoritative edge map).
func randomGraph(n, m int, seed uint64) (*graph.Graph, map[uint64]struct{}) {
	r := rng.New(seed)
	edges := make(map[uint64]struct{})
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
		if _, dup := edges[edgeKey(u, v)]; dup {
			continue
		}
		edges[edgeKey(u, v)] = struct{}{}
		b.AddEdge(u, v)
	}
	return b.Build(), edges
}

// graphFromSet rebuilds a CSR graph from a mirrored edge set.
func graphFromSet(n int, edges map[uint64]struct{}) *graph.Graph {
	b := graph.NewBuilder(n)
	for k := range edges {
		b.AddEdge(graph.NodeID(k>>32), graph.NodeID(uint32(k)))
	}
	return b.Build()
}

// applyRandomOps drives a random add/remove mix through d, mirroring the
// applied ops into edges, and returns how many ops changed the graph.
// About a third of the ops are deliberate no-ops or invalid.
func applyRandomOps(t *testing.T, d *Dynamic, edges map[uint64]struct{}, n, count int, seed uint64) int {
	t.Helper()
	r := rng.New(seed)
	applied := 0
	for i := 0; i < count; i++ {
		u, v := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
		var did bool
		var err error
		switch r.Intn(6) {
		case 0, 1, 2: // add (sometimes a duplicate, sometimes a self-loop)
			did, err = d.AddEdge(u, v)
			if err != nil {
				t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
			}
			if did != !contains(edges, u, v) {
				t.Fatalf("AddEdge(%d,%d) applied=%v, mirror disagrees", u, v, did)
			}
			edges[edgeKey(u, v)] = struct{}{}
		case 3, 4: // remove (sometimes nonexistent)
			did, err = d.RemoveEdge(u, v)
			if err != nil {
				t.Fatalf("RemoveEdge(%d,%d): %v", u, v, err)
			}
			if did != contains(edges, u, v) {
				t.Fatalf("RemoveEdge(%d,%d) applied=%v, mirror disagrees", u, v, did)
			}
			delete(edges, edgeKey(u, v))
		default: // out-of-range IDs must error without mutating
			if _, err = d.AddEdge(graph.NodeID(n)+u, v); err == nil {
				t.Fatal("out-of-range AddEdge accepted")
			}
		}
		if did {
			applied++
		}
	}
	return applied
}

func contains(edges map[uint64]struct{}, u, v graph.NodeID) bool {
	_, ok := edges[edgeKey(u, v)]
	return ok
}

// TestRebuildEquivalence is the core property test: for random update
// sequences on random graphs, a Dynamic index after a forced rebuild
// returns byte-identical results — pair, single-source, top-k, source-top
// and batch — to a fresh core.Build of the mutated graph with the same
// options. Dynamic clamps scores into [0, 1], so the fresh baseline goes
// through the identical clamp (which is the identity wherever the raw
// index stays in range).
func TestRebuildEquivalence(t *testing.T) {
	cases := []struct {
		n, m, ops int
		seed      uint64
	}{
		{n: 20, m: 60, ops: 30, seed: 1},
		{n: 40, m: 160, ops: 60, seed: 2},
		{n: 70, m: 350, ops: 120, seed: 3},
	}
	for _, tc := range cases {
		g, edges := randomGraph(tc.n, tc.m, tc.seed)
		opts := core.Options{Eps: 0.08, Seed: 7 + tc.seed}
		d, err := New(g, Options{Build: opts, NumWalks: 64})
		if err != nil {
			t.Fatal(err)
		}
		applyRandomOps(t, d, edges, tc.n, tc.ops, tc.seed+100)
		if _, err := d.Rebuild(); err != nil {
			t.Fatal(err)
		}
		if st := d.Stats(); st.Epoch != 2 || st.AffectedNodes != 0 || st.StaleOps != 0 {
			t.Fatalf("post-rebuild stats not clean: %+v", st)
		}

		mutated := graphFromSet(tc.n, edges)
		if got, want := d.Graph().NumEdges(), mutated.NumEdges(); got != want {
			t.Fatalf("n=%d: dynamic graph has %d edges, mirror %d", tc.n, got, want)
		}
		fresh, err := core.Build(mutated, &opts)
		if err != nil {
			t.Fatal(err)
		}
		pool := fresh.NewScratchPool()

		r := rng.New(tc.seed + 999)
		for q := 0; q < 50; q++ {
			u, v := graph.NodeID(r.Intn(tc.n)), graph.NodeID(r.Intn(tc.n))
			if got, want := d.SimRank(u, v), clamp01(pool.SimRank(u, v)); got != want {
				t.Fatalf("n=%d: SimRank(%d,%d) = %v, fresh build %v", tc.n, u, v, got, want)
			}
		}
		sources := make([]graph.NodeID, 6)
		for i := range sources {
			sources[i] = graph.NodeID(r.Intn(tc.n))
		}
		for _, u := range sources {
			got := d.SingleSource(u, nil)
			want := pool.SingleSource(u, nil)
			for v := range want {
				if got[v] != clamp01(want[v]) {
					t.Fatalf("n=%d: SingleSource(%d)[%d] = %v, fresh %v", tc.n, u, v, got[v], want[v])
				}
			}
			wantVec := make([]float64, len(want))
			for v, s := range want {
				wantVec[v] = clamp01(s)
			}
			gotTop := d.TopK(u, 7)
			wantTop := core.SelectTop(wantVec, 7, u)
			if len(gotTop) != len(wantTop) {
				t.Fatalf("n=%d: TopK(%d) lengths %d vs %d", tc.n, u, len(gotTop), len(wantTop))
			}
			for i := range wantTop {
				if gotTop[i] != wantTop[i] {
					t.Fatalf("n=%d: TopK(%d)[%d] = %+v, fresh %+v", tc.n, u, i, gotTop[i], wantTop[i])
				}
			}
			gotST := d.SourceTop(u, 5)
			wantST := core.SelectTop(wantVec, 5, -1)
			for i := range wantST {
				if gotST[i] != wantST[i] {
					t.Fatalf("n=%d: SourceTop(%d)[%d] = %+v, fresh %+v", tc.n, u, i, gotST[i], wantST[i])
				}
			}
		}
		rows, err := d.SingleSourceBatch(nil, sources, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i, u := range sources {
			want := pool.SingleSource(u, nil)
			for v := range want {
				if rows[i][v] != clamp01(want[v]) {
					t.Fatalf("n=%d: batch row %d (source %d) diverges at %d", tc.n, i, u, v)
				}
			}
		}
		d.Close()
	}
}

// Updates must route affected queries off the static index immediately:
// the frontier holds the dirty node plus its forward BFS, and queries on
// clean pairs still answer identically to the pre-update index.
func TestAffectedFrontierRouting(t *testing.T) {
	// 0 -> 1 -> 2 -> 3 and an isolated far pair 4 -> 5.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(4, 5)
	g := b.Build()
	d, err := New(g, Options{Build: core.Options{Eps: 0.1, Seed: 3}, NumWalks: 32, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	before45 := d.SimRank(4, 5)

	// Adding 3 -> 1 changes node 1's in-neighborhood: 1 and its forward
	// reach {2, 3} become affected; {0, 4, 5} stay clean.
	if did, err := d.AddEdge(3, 1); err != nil || !did {
		t.Fatalf("AddEdge(3,1) = %v, %v", did, err)
	}
	aff := d.AffectedNodes()
	want := []graph.NodeID{1, 2, 3}
	if len(aff) != len(want) {
		t.Fatalf("affected = %v, want %v", aff, want)
	}
	for i := range want {
		if aff[i] != want[i] {
			t.Fatalf("affected = %v, want %v", aff, want)
		}
	}
	if got := d.SimRank(4, 5); got != before45 {
		t.Fatalf("clean pair answer drifted: %v vs %v", got, before45)
	}
	if st := d.Stats(); st.AffectedNodes != 3 || st.StaleOps != 1 || st.Epoch != 1 {
		t.Fatalf("stats after update: %+v", st)
	}

	// The affected pair is served from the mutated graph: 2's only
	// in-neighbor gained company, so the estimate must see edge 3 -> 1.
	got := d.SimRank(1, 2)
	if got < 0 || got > 1 {
		t.Fatalf("affected estimate out of range: %v", got)
	}
}

// A threshold-configured Dynamic must rebuild in the background and come
// back clean without any explicit Rebuild call.
func TestBackgroundRebuildThreshold(t *testing.T) {
	g, edges := randomGraph(30, 100, 5)
	d, err := New(g, Options{Build: core.Options{Eps: 0.1, Seed: 2}, NumWalks: 16, RebuildThreshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	applyRandomOps(t, d, edges, 30, 12, 77)
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := d.Stats()
		if st.Rebuilds >= 1 && !st.RebuildRunning && st.StaleOps < 5 {
			if st.Epoch < 2 {
				t.Fatalf("rebuild completed but epoch = %d", st.Epoch)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background rebuild never completed: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Old epochs drain via refcount: a query pinning the pre-swap epoch holds
// the drained counter at zero until it releases.
func TestEpochDrainRefcount(t *testing.T) {
	g, _ := randomGraph(20, 60, 9)
	d, err := New(g, Options{Build: core.Options{Eps: 0.1, Seed: 4}, NumWalks: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	w := d.acquire() // a long-running query pins epoch 1
	if _, err := d.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().EpochsDrained; got != 0 {
		t.Fatalf("epoch drained while still referenced: %d", got)
	}
	d.release(w.gen)
	if got := d.Stats().EpochsDrained; got != 1 {
		t.Fatalf("epochs drained = %d after release, want 1", got)
	}
}

// Close cancels the rebuild machinery: rebuilds and updates error out,
// triggers refuse, queries keep answering.
func TestCloseStopsRebuilds(t *testing.T) {
	g, _ := randomGraph(20, 60, 11)
	d, err := New(g, Options{Build: core.Options{Eps: 0.1, Seed: 4}, NumWalks: 16})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := d.Rebuild(); err != ErrClosed {
		t.Fatalf("Rebuild after Close = %v, want ErrClosed", err)
	}
	if d.TriggerRebuild() {
		t.Fatal("TriggerRebuild started after Close")
	}
	if _, _, err := d.Apply([]Op{{Add: true, From: 0, To: 1}}); err != ErrClosed {
		t.Fatalf("Apply after Close = %v, want ErrClosed", err)
	}
	if s := d.SimRank(0, 1); s < 0 || s > 1 {
		t.Fatalf("query after Close out of range: %v", s)
	}
}

// Apply must be all-batch-one-snapshot: per-op results line up with the
// request, invalid ops fail individually, and a batch that nets to zero
// applied ops publishes nothing new.
func TestApplyBatchSemantics(t *testing.T) {
	g, _ := randomGraph(10, 20, 13)
	d, err := New(g, Options{Build: core.Options{Eps: 0.1, Seed: 6}, NumWalks: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	res, applied, err := d.Apply([]Op{
		{Add: true, From: 0, To: 9},    // fresh edge
		{Add: true, From: 0, To: 9},    // duplicate in same batch: no-op
		{From: 0, To: 9},               // removes what the batch added
		{Add: true, From: 3, To: 3},    // self-loop is legal
		{Add: true, From: -1, To: 2},   // invalid
		{Add: true, From: 4, To: 1000}, // invalid
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Applied != true || res[1].Applied != false || res[2].Applied != true {
		t.Fatalf("add/dup/remove results wrong: %+v", res[:3])
	}
	if res[4].Err == nil || res[5].Err == nil {
		t.Fatalf("invalid ops did not error: %+v", res[4:])
	}
	if res[4].Applied || res[5].Applied {
		t.Fatal("invalid ops marked applied")
	}
	if applied < 2 || applied > 3 {
		t.Fatalf("applied = %d, want 2 or 3", applied)
	}
	if d.Graph().HasEdge(0, 9) {
		t.Fatal("edge 0->9 survived its removal")
	}
}

// A swap can leave a backlog at or above the threshold (ops that arrived
// while the rebuild ran); the trigger must re-arm itself rather than wait
// for the next Apply call that may never come.
func TestRetriggerAfterSwapBacklog(t *testing.T) {
	g, _ := randomGraph(20, 60, 15)
	d, err := New(g, Options{Build: core.Options{Eps: 0.1, Seed: 8}, NumWalks: 16, RebuildThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Reproduce the post-swap state directly: pending ops at the
	// threshold with no rebuild running and no Apply forthcoming.
	d.mu.Lock()
	d.staleOps = 3
	d.mu.Unlock()
	d.retriggerIfStale()
	deadline := time.Now().Add(10 * time.Second)
	for d.Stats().Rebuilds == 0 {
		if time.Now().After(deadline) {
			t.Fatal("backlog at threshold did not re-trigger a rebuild")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := d.Stats(); st.StaleOps != 0 {
		t.Fatalf("backlog not cleared after re-triggered rebuild: %+v", st)
	}
}
