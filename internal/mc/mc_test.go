package mc

import (
	"math"
	"testing"

	"sling/internal/graph"
	"sling/internal/power"
	"sling/internal/rng"
)

func randomGraph(n, m int, seed uint64) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)))
	}
	return b.Build()
}

func pairGraph() *graph.Graph {
	b := graph.NewBuilder(3)
	b.AddEdge(2, 0)
	b.AddEdge(2, 1)
	return b.Build()
}

func TestDeriveTruncation(t *testing.T) {
	// c=0.6, eps=0.025: smallest t with 0.6^(t+1) <= 0.0125 is t=8
	// (0.6^9 = 0.0101).
	if got := DeriveTruncation(0.025, 0.6); got != 8 {
		t.Fatalf("DeriveTruncation = %d, want 8", got)
	}
	if got := DeriveTruncation(0.9, 0.6); got != 1 {
		t.Fatalf("floor not applied: %d", got)
	}
}

func TestDeriveNumWalksGrowsWithN(t *testing.T) {
	a := DeriveNumWalks(0.025, 0.01, 1000)
	b := DeriveNumWalks(0.025, 0.01, 1000000)
	if a <= 0 || b <= a {
		t.Fatalf("walk counts %d, %d not increasing in n", a, b)
	}
}

func TestBuildRejectsHugeIndex(t *testing.T) {
	g := randomGraph(200000, 200000, 1)
	_, err := Build(g, &Options{}) // theory-derived counts explode
	if err == nil {
		t.Fatal("oversized index accepted")
	}
}

func TestBuildRejectsBadDecay(t *testing.T) {
	if _, err := Build(pairGraph(), &Options{C: 1.5, NumWalks: 10, Truncation: 5}); err == nil {
		t.Fatal("bad decay accepted")
	}
}

func TestSelfSimilarityIsOne(t *testing.T) {
	g := randomGraph(50, 250, 2)
	x, err := Build(g, &Options{NumWalks: 50, Truncation: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for v := graph.NodeID(0); v < 50; v++ {
		if got := x.SimRank(v, v); got != 1 {
			t.Fatalf("s(%d,%d) = %v", v, v, got)
		}
	}
}

func TestSharedParentEstimate(t *testing.T) {
	// s(0,1) = c with both nodes sharing the single in-neighbor 2.
	const c = 0.6
	x, err := Build(pairGraph(), &Options{C: c, NumWalks: 100000, Truncation: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := x.SimRank(0, 1)
	if math.Abs(got-c) > 0.01 {
		t.Fatalf("estimate %v, want about %v", got, c)
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	g := randomGraph(60, 300, 4)
	o1 := &Options{NumWalks: 30, Truncation: 6, Seed: 11, Workers: 1}
	o4 := &Options{NumWalks: 30, Truncation: 6, Seed: 11, Workers: 4}
	x1, err := Build(g, o1)
	if err != nil {
		t.Fatal(err)
	}
	x4, err := Build(g, o4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1.steps {
		if x1.steps[i] != x4.steps[i] {
			t.Fatalf("worker count changed walk content at %d", i)
		}
	}
}

func TestMatchesPowerMethod(t *testing.T) {
	g := randomGraph(40, 180, 5)
	const c, eps = 0.6, 0.03
	truth, err := power.AllPairs(g, c, power.IterationsFor(1e-8, c))
	if err != nil {
		t.Fatal(err)
	}
	x, err := Build(g, &Options{C: c, NumWalks: 30000, Truncation: 12, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for _, p := range [][2]int{{0, 1}, {3, 17}, {20, 39}, {7, 7}, {12, 25}} {
		got := x.SimRank(graph.NodeID(p[0]), graph.NodeID(p[1]))
		want := truth.At(p[0], p[1])
		if d := math.Abs(got - want); d > worst {
			worst = d
		}
	}
	if worst > eps {
		t.Fatalf("worst single-pair error %v > %v", worst, eps)
	}
}

func TestSingleSourceMatchesSinglePair(t *testing.T) {
	g := randomGraph(30, 150, 6)
	x, err := Build(g, &Options{NumWalks: 200, Truncation: 8, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []graph.NodeID{0, 7, 29} {
		scores := x.SingleSource(u, nil)
		for v := graph.NodeID(0); v < 30; v++ {
			want := x.SimRank(u, v)
			if math.Abs(scores[v]-want) > 1e-12 {
				t.Fatalf("single-source s(%d,%d)=%v, single-pair %v", u, v, scores[v], want)
			}
		}
	}
}

func TestSingleSourceReusesBuffer(t *testing.T) {
	g := randomGraph(20, 80, 8)
	x, err := Build(g, &Options{NumWalks: 20, Truncation: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 20)
	out := x.SingleSource(3, buf)
	if &out[0] != &buf[0] {
		t.Fatal("buffer with sufficient capacity was not reused")
	}
}

func TestTruncationLimitsWalks(t *testing.T) {
	g := randomGraph(30, 200, 10)
	x, err := Build(g, &Options{NumWalks: 10, Truncation: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(x.walkOf(0, 0)); got != 4 {
		t.Fatalf("stored walk length %d, want 4", got)
	}
}

func TestBytesAccounting(t *testing.T) {
	g := randomGraph(10, 40, 12)
	x, err := Build(g, &Options{NumWalks: 7, Truncation: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(10 * 7 * 5 * 4)
	if x.Bytes() != want {
		t.Fatalf("Bytes() = %d, want %d", x.Bytes(), want)
	}
}

func TestDanglingWalksPadded(t *testing.T) {
	// Node 1 has no in-neighbors: every walk from it is just [1, -1, ...].
	b := graph.NewBuilder(2)
	b.AddEdge(1, 0)
	g := b.Build()
	x, err := Build(g, &Options{NumWalks: 5, Truncation: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	w := x.walkOf(1, 0)
	if w[0] != 1 || w[1] != -1 || w[2] != -1 || w[3] != -1 {
		t.Fatalf("dangling walk = %v", w)
	}
}

func BenchmarkSinglePair(b *testing.B) {
	g := randomGraph(1000, 8000, 1)
	x, err := Build(g, &Options{NumWalks: 100, Truncation: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.SimRank(graph.NodeID(i%1000), graph.NodeID((i*13)%1000))
	}
}

func BenchmarkSingleSource(b *testing.B) {
	g := randomGraph(1000, 8000, 1)
	x, err := Build(g, &Options{NumWalks: 100, Truncation: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	out := make([]float64, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.SingleSource(graph.NodeID(i%1000), out)
	}
}

func TestAllPairsMatchesSimRank(t *testing.T) {
	g := randomGraph(40, 200, 20)
	x, err := Build(g, &Options{NumWalks: 120, Truncation: 8, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	all := x.AllPairs()
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			want := x.SimRank(graph.NodeID(i), graph.NodeID(j))
			if math.Abs(all.At(i, j)-want) > 1e-12 {
				t.Fatalf("AllPairs(%d,%d)=%v, SimRank %v", i, j, all.At(i, j), want)
			}
		}
	}
}

func TestAllPairsSymmetric(t *testing.T) {
	g := randomGraph(30, 150, 22)
	x, err := Build(g, &Options{NumWalks: 60, Truncation: 6, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	all := x.AllPairs()
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			if all.At(i, j) != all.At(j, i) {
				t.Fatalf("asymmetric AllPairs at (%d,%d)", i, j)
			}
		}
	}
}

func TestCoupledWalksCoalesce(t *testing.T) {
	g := randomGraph(60, 300, 24)
	x, err := Build(g, &Options{NumWalks: 40, Truncation: 10, Seed: 25, Coupled: true})
	if err != nil {
		t.Fatal(err)
	}
	// Under coupling, once two walks share a position they must agree on
	// every later step.
	for wi := 0; wi < 40; wi++ {
		for u := 0; u < 60; u++ {
			for v := u + 1; v < 60; v++ {
				wu, wv := x.walkOf(graph.NodeID(u), wi), x.walkOf(graph.NodeID(v), wi)
				met := false
				for l := 0; l <= 10; l++ {
					if wu[l] < 0 || wv[l] < 0 {
						break
					}
					if met && wu[l] != wv[l] {
						t.Fatalf("coupled walks diverged after meeting (wi=%d u=%d v=%d l=%d)", wi, u, v, l)
					}
					if wu[l] == wv[l] {
						met = true
					}
				}
			}
		}
	}
}

func TestCoupledEstimatesUnbiased(t *testing.T) {
	// Coupling must not bias the estimator: compare against the power
	// method on a small graph with many walks.
	g := randomGraph(30, 140, 26)
	const c = 0.6
	truth, err := power.AllPairs(g, c, power.IterationsFor(1e-8, c))
	if err != nil {
		t.Fatal(err)
	}
	x, err := Build(g, &Options{C: c, NumWalks: 40000, Truncation: 12, Seed: 27, Coupled: true})
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for _, p := range [][2]int{{0, 1}, {5, 22}, {13, 29}, {7, 8}} {
		got := x.SimRank(graph.NodeID(p[0]), graph.NodeID(p[1]))
		if d := math.Abs(got - truth.At(p[0], p[1])); d > worst {
			worst = d
		}
	}
	if worst > 0.02 {
		t.Fatalf("coupled estimator biased: worst error %v", worst)
	}
}

func TestCoupledDeterministic(t *testing.T) {
	g := randomGraph(40, 200, 28)
	a, err := Build(g, &Options{NumWalks: 20, Truncation: 6, Seed: 29, Coupled: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, &Options{NumWalks: 20, Truncation: 6, Seed: 29, Coupled: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.steps {
		if a.steps[i] != b.steps[i] {
			t.Fatalf("coupled build not deterministic at %d", i)
		}
	}
}
