// Package mc implements the Monte Carlo SimRank baseline of Fogaras & Rácz
// (Section 3.2 of the SLING paper): an index of truncated reverse random
// walks per node, with single-pair and single-source queries that estimate
// s(u, v) = E[c^τ] from the first meeting step τ of paired walks.
//
// With truncation t > log_c(ε/2) and
// nw ≥ 14/(3ε²)·(log(2/δ) + 2·log n) walks per node, every score estimate
// is within ε with probability ≥ 1−δ. Those theory-driven counts explode
// at practical ε (the paper could not run MC beyond its four smallest
// graphs in 64 GB), so Options lets callers override the counts, and Build
// refuses to allocate past MaxIndexBytes instead of thrashing.
package mc

import (
	"fmt"
	"math"
	"sync"

	"sling/internal/graph"
	"sling/internal/power"
	"sling/internal/rng"
	"sling/internal/walk"
)

// MaxIndexBytes caps the walk-storage allocation; Build returns an error
// beyond it, mirroring the paper's practice of skipping MC on graphs whose
// index outgrows memory.
const MaxIndexBytes = 4 << 30

// Options configures Build.
type Options struct {
	// C is the SimRank decay factor; default 0.6 (the paper's setting).
	C float64
	// Eps/Delta set the accuracy target used to derive NumWalks and
	// Truncation when those are zero. Defaults: 0.025 and 0.01.
	Eps, Delta float64
	// NumWalks overrides the number of walks stored per node.
	NumWalks int
	// Truncation overrides the walk truncation length t.
	Truncation int
	// Seed makes the index deterministic; walks for node v depend only on
	// (Seed, v), not on scheduling.
	Seed uint64
	// Workers bounds build parallelism; default 1.
	Workers int
	// Coupled enables the Fogaras-Rácz coupling technique (Section 3.2 of
	// the SLING paper): under walk index w, the transition out of node x
	// at step l is a pseudo-random function of (Seed, w, l, x) shared by
	// all nodes, so walks that meet coalesce permanently. Estimates stay
	// unbiased — transitions of walks at distinct nodes remain independent
	// and only the first meeting matters — while coalesced suffixes make
	// single-source and all-pairs scans cheaper and sharply cut the
	// variance of comparisons among nodes behind a common ancestor.
	Coupled bool
}

func (o *Options) withDefaults() Options {
	opt := Options{C: 0.6, Eps: 0.025, Delta: 0.01, Workers: 1}
	if o != nil {
		if o.C != 0 {
			opt.C = o.C
		}
		if o.Eps != 0 {
			opt.Eps = o.Eps
		}
		if o.Delta != 0 {
			opt.Delta = o.Delta
		}
		opt.NumWalks = o.NumWalks
		opt.Truncation = o.Truncation
		opt.Seed = o.Seed
		if o.Workers > 0 {
			opt.Workers = o.Workers
		}
		opt.Coupled = o.Coupled
	}
	return opt
}

// DeriveTruncation returns the smallest t with c^(t+1) <= eps/2, the
// truncation bound from inequality (4) of the paper.
func DeriveTruncation(eps, c float64) int {
	t := int(math.Ceil(math.Log(eps/2)/math.Log(c))) - 1
	if t < 1 {
		t = 1
	}
	return t
}

// DeriveNumWalks returns the per-node walk count for an ε/δ guarantee over
// all pairs: nw = 14/(3ε²)·(log(2/δ) + 2·log n).
func DeriveNumWalks(eps, delta float64, n int) int {
	if n < 2 {
		n = 2
	}
	nw := 14.0 / (3 * eps * eps) * (math.Log(2/delta) + 2*math.Log(float64(n)))
	return int(math.Ceil(nw))
}

// Index is a built Monte Carlo SimRank index.
type Index struct {
	g   *graph.Graph
	c   float64
	nw  int
	t   int
	pow []float64 // pow[l] = c^l, l in [0, t]

	// steps holds walk positions flattened as
	// steps[(v*nw + w)*(t+1) + l]; -1 marks a walk that has ended.
	steps []int32
}

// Build generates nw truncated reverse walks per node.
func Build(g *graph.Graph, o *Options) (*Index, error) {
	opt := o.withDefaults()
	if opt.C <= 0 || opt.C >= 1 {
		return nil, fmt.Errorf("mc: decay factor %v out of (0,1)", opt.C)
	}
	nw := opt.NumWalks
	if nw <= 0 {
		nw = DeriveNumWalks(opt.Eps, opt.Delta, g.NumNodes())
	}
	t := opt.Truncation
	if t <= 0 {
		t = DeriveTruncation(opt.Eps, opt.C)
	}
	n := g.NumNodes()
	sz := int64(n) * int64(nw) * int64(t+1) * 4
	if sz > MaxIndexBytes {
		return nil, fmt.Errorf("mc: index would need %d bytes (n=%d nw=%d t=%d), over the %d cap",
			sz, n, nw, t, int64(MaxIndexBytes))
	}
	x := &Index{g: g, c: opt.C, nw: nw, t: t}
	x.pow = make([]float64, t+1)
	for l := 0; l <= t; l++ {
		x.pow[l] = math.Pow(opt.C, float64(l))
	}
	x.steps = make([]int32, int(sz/4))

	workers := opt.Workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			buf := make([]graph.NodeID, 0, t+1)
			for v := lo; v < hi; v++ {
				// Per-node stream keeps the index independent of the
				// worker layout.
				wk := walk.New(g, opt.C, rng.New(mixSeed(opt.Seed, v)))
				// The stopping coin is unused by ReverseWalk, but Walker
				// validates c, which we want anyway.
				base := (v * nw) * (t + 1)
				for wi := 0; wi < nw; wi++ {
					if opt.Coupled {
						buf = coupledWalk(g, graph.NodeID(v), t, opt.Seed, wi, buf[:0])
					} else {
						buf = wk.ReverseWalk(graph.NodeID(v), t, buf[:0])
					}
					off := base + wi*(t+1)
					for l := 0; l <= t; l++ {
						if l < len(buf) {
							x.steps[off+l] = buf[l]
						} else {
							x.steps[off+l] = -1
						}
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return x, nil
}

func mixSeed(seed uint64, v int) uint64 {
	z := seed ^ (uint64(v)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return z ^ (z >> 31)
}

// coupledWalk follows the shared pseudo-random transition function: the
// in-neighbor chosen out of node x at step l under walk index wi depends
// only on (seed, wi, l, x). Any two coupled walks occupying the same node
// at the same step therefore take identical suffixes.
func coupledWalk(g *graph.Graph, v graph.NodeID, t int, seed uint64, wi int, buf []graph.NodeID) []graph.NodeID {
	buf = append(buf, v)
	cur := v
	for l := 0; l < t; l++ {
		cur = Transition(g, seed, wi, l, cur)
		if cur < 0 {
			return buf
		}
		buf = append(buf, cur)
	}
	return buf
}

// Transition returns the coupled next position out of node x at step l of
// walk index wi — the in-neighbor picked by the shared pseudo-random
// transition function of (seed, wi, l, x) — or -1 when x has no
// in-neighbors and the walk dies. It is the sampling primitive behind
// Options.Coupled, exported so other estimators (the dynamic-graph layer's
// affected-node queries) draw from the same coupling.
func Transition(g *graph.Graph, seed uint64, wi, l int, x graph.NodeID) graph.NodeID {
	ins := g.InNeighbors(x)
	if len(ins) == 0 {
		return -1
	}
	h := transitionHash(seed, uint64(wi), uint64(l), uint64(uint32(x)))
	return ins[h%uint64(len(ins))]
}

// transitionHash mixes the coupling coordinates into 64 uniform bits
// (SplitMix64-style finalizer over a combined key).
func transitionHash(seed, wi, l, node uint64) uint64 {
	z := seed
	z ^= wi*0x9e3779b97f4a7c15 + 0x165667b19e3779f9
	z ^= l*0xc2b2ae3d27d4eb4f + 0x27d4eb2f165667c5
	z ^= node * 0xff51afd7ed558ccd
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NumWalks returns the per-node walk count.
func (x *Index) NumWalks() int { return x.nw }

// Truncation returns the truncation length t.
func (x *Index) Truncation() int { return x.t }

// Bytes returns the memory footprint of the walk storage.
func (x *Index) Bytes() int64 { return int64(len(x.steps)) * 4 }

// walkOf returns the step array of walk wi from node v (length t+1,
// -1-padded).
func (x *Index) walkOf(v graph.NodeID, wi int) []int32 {
	off := (int(v)*x.nw + wi) * (x.t + 1)
	return x.steps[off : off+x.t+1]
}

// SimRank estimates s(u, v) as (1/nw)·Σ_w c^{τ_w} where τ_w is the first
// step at which the w-th walks from u and v coincide.
func (x *Index) SimRank(u, v graph.NodeID) float64 {
	if u == v {
		return 1
	}
	total := 0.0
	for wi := 0; wi < x.nw; wi++ {
		wu, wv := x.walkOf(u, wi), x.walkOf(v, wi)
		for l := 0; l <= x.t; l++ {
			a, b := wu[l], wv[l]
			if a < 0 || b < 0 {
				break
			}
			if a == b {
				total += x.pow[l]
				break
			}
		}
	}
	return total / float64(x.nw)
}

// SingleSource estimates s(u, v) for every node v, writing into out if it
// has capacity n and allocating otherwise. For each walk index it buckets
// every node's position per step, so a step costs O(n) rather than O(n·t)
// pairwise rescans.
func (x *Index) SingleSource(u graph.NodeID, out []float64) []float64 {
	n := x.g.NumNodes()
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	for i := range out {
		out[i] = 0
	}
	met := make([]bool, n)
	for wi := 0; wi < x.nw; wi++ {
		wu := x.walkOf(u, wi)
		for i := range met {
			met[i] = false
		}
		for l := 0; l <= x.t; l++ {
			pos := wu[l]
			if pos < 0 {
				break
			}
			add := x.pow[l]
			for v := 0; v < n; v++ {
				if met[v] {
					continue
				}
				wv := x.steps[(v*x.nw+wi)*(x.t+1)+l]
				if wv == pos {
					out[v] += add
					met[v] = true
				}
			}
		}
	}
	inv := 1 / float64(x.nw)
	for i := range out {
		out[i] *= inv
	}
	out[u] = 1
	return out
}

// AllPairs estimates every pairwise score at once. Instead of n²
// pairwise walk rescans it buckets nodes by walk position per (walk
// index, step): the nodes sharing a bucket — and not already matched at
// an earlier step of this walk index — meet now and contribute c^step.
// The result is identical to calling SimRank on every pair. It needs
// O(n²) memory for the output and the met bitmap; Build's caller guards
// sizes.
func (x *Index) AllPairs() *power.Scores {
	n := x.g.NumNodes()
	s := &power.Scores{N: n, Data: make([]float64, n*n)}
	// metEpoch[i*n+j] = wi+1 marks that the pair met under walk index wi,
	// so there is no O(n²) reset between walk indexes.
	metEpoch := make([]int32, n*n)
	// Intrusive chained buckets keyed by walk position: head/next arrays
	// reset via the touched list, no maps.
	head := make([]int32, n)
	next := make([]int32, n)
	var touched []int32
	for i := range head {
		head[i] = -1
	}
	for wi := 0; wi < x.nw; wi++ {
		epoch := int32(wi + 1)
		for l := 0; l <= x.t; l++ {
			touched = touched[:0]
			alive := 0
			for v := n - 1; v >= 0; v-- { // reverse so chains list ascending v
				pos := x.steps[(v*x.nw+wi)*(x.t+1)+l]
				if pos < 0 {
					continue
				}
				if head[pos] == -1 {
					touched = append(touched, pos)
				}
				next[v] = head[pos]
				head[pos] = int32(v)
				alive++
			}
			if alive == 0 {
				break
			}
			add := x.pow[l]
			for _, pos := range touched {
				for u := head[pos]; u != -1; u = next[u] {
					for v := next[u]; v != -1; v = next[v] {
						p := int(u)*n + int(v)
						if metEpoch[p] == epoch {
							continue
						}
						metEpoch[p] = epoch
						s.Data[p] += add
						s.Data[int(v)*n+int(u)] += add
					}
				}
				head[pos] = -1
			}
		}
	}
	inv := 1 / float64(x.nw)
	for i := range s.Data {
		s.Data[i] *= inv
	}
	for v := 0; v < n; v++ {
		s.Data[v*n+v] = 1
	}
	return s
}
