package catalog

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sling/internal/rng"
	"strings"
	"sync"
	"testing"
	"time"

	"sling"
	"sling/internal/metrics"
)

// writeGraph writes a deterministic random edge list with n nodes to
// dir and returns its path.
func writeGraph(t *testing.T, dir, name string, n, edges int, seed int64) string {
	t.Helper()
	rnd := rng.New(uint64(seed))
	var sb strings.Builder
	sb.WriteString("# test graph\n")
	// A ring first so every node has an edge and the node count is n.
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%d %d\n", i, (i+1)%n)
	}
	for i := 0; i < edges; i++ {
		fmt.Fprintf(&sb, "%d %d\n", rnd.Intn(n), rnd.Intn(n))
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// testManifest builds a three-graph manifest (all memory mode) over
// fresh edge lists.
func testManifest(t *testing.T, budget int64) Manifest {
	t.Helper()
	dir := t.TempDir()
	m := Manifest{MemoryBudgetBytes: budget}
	for i, id := range []string{"ga", "gb", "gc"} {
		m.Graphs = append(m.Graphs, GraphSpec{
			ID:    id,
			Graph: writeGraph(t, dir, id+".txt", 30, 60, int64(100+i)),
			Eps:   0.1,
			Seed:  uint64(50 + i),
		})
	}
	return m
}

func acquire(t *testing.T, c *Catalog, id string) *Handle {
	t.Helper()
	h, err := c.Acquire(context.Background(), id)
	if err != nil {
		t.Fatalf("Acquire(%s): %v", id, err)
	}
	return h
}

func TestLazyOpenAndQueries(t *testing.T) {
	c, err := New(testManifest(t, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if st := c.Stats(); st.Open != 0 || st.Graphs != 3 {
		t.Fatalf("before first acquire: %+v", st)
	}
	h := acquire(t, c, "ga")
	defer h.Release()
	s, err := h.Querier().SimRank(context.Background(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0 || s > 1.2 {
		t.Fatalf("simrank = %v", s)
	}
	if st := c.Stats(); st.Open != 1 || st.ResidentBytes <= 0 {
		t.Fatalf("after acquire: %+v", st)
	}
	if _, err := c.Acquire(context.Background(), "nope"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("unknown graph err = %v", err)
	}
}

// TestLRUEvictionReopens opens three graphs under a budget that fits
// only one, checks older graphs are evicted LRU-first, and that an
// evicted graph re-opens transparently with identical answers.
func TestLRUEvictionReopens(t *testing.T) {
	// Budget discovery: open one graph unbudgeted to size it.
	probe, err := New(testManifest(t, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	hp := acquire(t, probe, "ga")
	one := probe.Stats().ResidentBytes
	want, err := hp.Querier().SimRank(context.Background(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	hp.Release()
	probe.Close()

	m := testManifest(t, one+one/2) // fits one open graph, not two
	c, err := New(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, id := range []string{"ga", "gb", "gc"} {
		h := acquire(t, c, id)
		h.Release()
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under tight budget: %+v", st)
	}
	if st.ResidentBytes > m.MemoryBudgetBytes {
		t.Fatalf("over budget at idle: %+v", st)
	}
	// gc was used last; ga (oldest) must be closed.
	var gaOpen, gcOpen bool
	for _, gi := range c.Graphs() {
		switch gi.ID {
		case "ga":
			gaOpen = gi.Open
		case "gc":
			gcOpen = gi.Open
		}
	}
	if gaOpen || !gcOpen {
		t.Fatalf("LRU order wrong: ga open=%v gc open=%v", gaOpen, gcOpen)
	}

	// Re-acquiring the evicted graph rebuilds it; seeded builds make the
	// answer bitwise-identical.
	h := acquire(t, c, "ga")
	defer h.Release()
	got, err := h.Querier().SimRank(context.Background(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("re-opened graph differs: %v != %v", got, want)
	}
	for _, gi := range c.Graphs() {
		if gi.ID == "ga" && gi.Opens < 2 {
			t.Fatalf("ga opens = %d, want >= 2", gi.Opens)
		}
	}
}

// TestEvictionSkipsHeldHandles: an entry with an outstanding handle is
// never closed underneath the caller, even over budget.
func TestEvictionSkipsHeldHandles(t *testing.T) {
	c, err := New(testManifest(t, 1), nil) // budget smaller than anything
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ha := acquire(t, c, "ga")
	hb := acquire(t, c, "gb")
	// Both held: neither may be evicted despite the 1-byte budget.
	if _, err := ha.Querier().SimRank(context.Background(), 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := hb.Querier().SimRank(context.Background(), 0, 1); err != nil {
		t.Fatal(err)
	}
	ha.Release()
	hb.Release()
	// After release the budget applies again.
	if st := c.Stats(); st.Open > 1 {
		t.Fatalf("idle graphs kept over budget: %+v", st)
	}
}

func TestQuotaThrottling(t *testing.T) {
	m := testManifest(t, 0)
	m.Graphs[0].MaxQPS = 1 // burst derives to 1 token
	c, err := New(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	h := acquire(t, c, "ga")
	defer h.Release()
	if err := h.AllowOps(1); err != nil {
		t.Fatalf("first op throttled: %v", err)
	}
	err = h.AllowOps(1)
	var te *ThrottleError
	if !errors.As(err, &te) || !errors.Is(err, ErrThrottled) {
		t.Fatalf("second op err = %v, want ThrottleError", err)
	}
	if te.RetryAfter <= 0 || te.RetryAfter > 2*time.Second {
		t.Fatalf("RetryAfter = %v", te.RetryAfter)
	}
	if st := c.Stats(); st.Throttled != 1 {
		t.Fatalf("throttled_ops = %d, want 1", st.Throttled)
	}
	// Unquoted graph is unaffected.
	h2 := acquire(t, c, "gb")
	defer h2.Release()
	for i := 0; i < 100; i++ {
		if err := h2.AllowOps(1); err != nil {
			t.Fatalf("unlimited graph throttled: %v", err)
		}
	}
}

// TestBurstAdmitsMaxBatch: the derived burst admits one maximal batch
// even when MaxQPS is tiny.
func TestBurstAdmitsMaxBatch(t *testing.T) {
	m := testManifest(t, 0)
	m.Graphs[0].MaxQPS = 0.5
	m.Graphs[0].MaxBatchOps = 16
	c, err := New(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h := acquire(t, c, "ga")
	defer h.Release()
	if err := h.AllowOps(16); err != nil {
		t.Fatalf("maximal batch rejected on a full bucket: %v", err)
	}
	if err := h.AllowOps(16); err == nil {
		t.Fatal("second maximal batch admitted immediately")
	}
}

func TestDynamicEntriesPinned(t *testing.T) {
	dir := t.TempDir()
	m := Manifest{
		MemoryBudgetBytes: 1,
		Graphs: []GraphSpec{
			{ID: "dyn", Graph: writeGraph(t, dir, "d.txt", 20, 40, 3), Mode: "dynamic", Eps: 0.15, Seed: 9},
			{ID: "mem", Graph: writeGraph(t, dir, "m.txt", 20, 40, 4), Eps: 0.15, Seed: 10},
		},
	}
	c, err := New(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	hd := acquire(t, c, "dyn")
	if hd.Dynamic() == nil {
		t.Fatal("dynamic handle has no DynamicIndex")
	}
	hd.Release()
	// Opening the memory graph forces eviction; the dynamic entry must
	// survive even though it is idle and over budget.
	hm := acquire(t, c, "mem")
	hm.Release()
	for _, gi := range c.Graphs() {
		if gi.ID == "dyn" && !gi.Open {
			t.Fatal("dynamic entry was evicted")
		}
	}
}

// A dynamic entry with durable_dir journals updates; a later catalog on
// the same manifest must restore them — the durable directory, not the
// edge list, is the authoritative state after the first open.
func TestDurableDirRestoresAcrossCatalogs(t *testing.T) {
	dir := t.TempDir()
	m := Manifest{Graphs: []GraphSpec{{
		ID: "dyn", Graph: writeGraph(t, dir, "d.txt", 16, 30, 5),
		Mode: "dynamic", Eps: 0.15, Seed: 21,
		DurableDir: filepath.Join(dir, "durable"),
	}}}

	c, err := New(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := acquire(t, c, "dyn")
	dx := h.Dynamic()
	if _, n, err := dx.Apply([]sling.EdgeOp{{Add: true, From: 3, To: 11}}); err != nil || n != 1 {
		t.Fatalf("apply: n=%d err=%v", n, err)
	}
	wantEdges := dx.Graph().NumEdges()
	want, err := dx.SimRank(context.Background(), 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	c.Close()

	c2, err := New(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	h2 := acquire(t, c2, "dyn")
	defer h2.Release()
	dx2 := h2.Dynamic()
	if got := dx2.Graph().NumEdges(); got != wantEdges {
		t.Fatalf("restored graph has %d edges, want %d (journaled add lost)", got, wantEdges)
	}
	got, err := dx2.SimRank(context.Background(), 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("restored SimRank(3,11) = %v, want bitwise %v", got, want)
	}
}

// TestConcurrentAcquireQueryEvict hammers open/query/release across all
// graphs under a budget that fits roughly one, so opens, evictions, and
// queries continuously interleave. Run with -race.
func TestConcurrentAcquireQueryEvict(t *testing.T) {
	probe, err := New(testManifest(t, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	hp := acquire(t, probe, "ga")
	one := probe.Stats().ResidentBytes
	hp.Release()
	probe.Close()

	c, err := New(testManifest(t, one+one/2), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ids := []string{"ga", "gb", "gc"}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				id := ids[(w+i)%len(ids)]
				h, err := c.Acquire(context.Background(), id)
				if err != nil {
					errCh <- err
					return
				}
				if _, err := h.Querier().SimRank(context.Background(), sling.NodeID(i%30), sling.NodeID((i+1)%30)); err != nil {
					errCh <- fmt.Errorf("%s: %w", id, err)
					h.Release()
					return
				}
				h.ObserveLatency(time.Now())
				h.CountOps(1)
				h.Release()
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Requests != 8*40 {
		t.Fatalf("requests = %d, want %d", st.Requests, 8*40)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions during concurrent churn under tight budget")
	}
}

// TestOpenFailurePropagatesToWaiters: a broken graph file fails every
// concurrent waiter with the same error and leaves the entry re-openable.
func TestOpenFailurePropagatesToWaiters(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "missing.txt")
	m := Manifest{Graphs: []GraphSpec{{ID: "bad", Graph: bad}}}
	c, err := New(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Acquire(context.Background(), "bad")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("waiter %d got nil error", i)
		}
	}
	// Fix the file; the entry recovers.
	writeGraph(t, dir, "missing.txt", 10, 10, 1)
	h := acquire(t, c, "bad")
	h.Release()
}

func TestMetricsSurface(t *testing.T) {
	reg := metrics.NewRegistry()
	c, err := New(testManifest(t, 0), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h := acquire(t, c, "ga")
	h.CountOps(1)
	h.ObserveLatency(time.Now())
	h.Release()

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		MetricRequests + `{graph="ga"} 1`,
		MetricLatency + `_count{graph="ga"} 1`,
		MetricOpenGraphs + " 1",
		MetricGraphs + " 3",
		MetricEvictions + " 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestManifestValidate(t *testing.T) {
	base := GraphSpec{ID: "g", Graph: "g.txt"}
	cases := []struct {
		name string
		m    Manifest
	}{
		{"empty", Manifest{}},
		{"bad id", Manifest{Graphs: []GraphSpec{{ID: "a/b", Graph: "x"}}}},
		{"dup id", Manifest{Graphs: []GraphSpec{base, base}}},
		{"no path", Manifest{Graphs: []GraphSpec{{ID: "g"}}}},
		{"disk no index", Manifest{Graphs: []GraphSpec{{ID: "g", Graph: "x", Mode: "disk"}}}},
		{"bad mode", Manifest{Graphs: []GraphSpec{{ID: "g", Graph: "x", Mode: "turbo"}}}},
		{"dynamic undirected", Manifest{Graphs: []GraphSpec{{ID: "g", Graph: "x", Mode: "dynamic", Undirected: true}}}},
		{"durable non-dynamic", Manifest{Graphs: []GraphSpec{{ID: "g", Graph: "x", DurableDir: "d"}}}},
		{"mmap non-disk", Manifest{Graphs: []GraphSpec{{ID: "g", Graph: "x", Mmap: true}}}},
		{"bad default", Manifest{Graphs: []GraphSpec{base}, Default: "zzz"}},
		{"neg quota", Manifest{Graphs: []GraphSpec{{ID: "g", Graph: "x", MaxQPS: -1}}}},
		{"neg budget", Manifest{Graphs: []GraphSpec{base}, MemoryBudgetBytes: -1}},
	}
	for _, tc := range cases {
		if err := tc.m.Validate(); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	ok := Manifest{Graphs: []GraphSpec{base}, Default: "g"}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}
}

func TestLoadManifestResolvesPaths(t *testing.T) {
	dir := t.TempDir()
	writeGraph(t, dir, "g.txt", 10, 10, 1)
	mf := filepath.Join(dir, "catalog.json")
	doc := `{"graphs":[{"id":"g","graph":"g.txt","eps":0.2,"seed":1}]}`
	if err := os.WriteFile(mf, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Load(mf, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h := acquire(t, c, "g") // only works if g.txt resolved relative to dir
	h.Release()

	// Unknown fields are rejected.
	if _, err := ParseManifest(strings.NewReader(`{"graphs":[],"max_qpss":3}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}
