package catalog

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// GraphSpec describes one graph in a catalog manifest: where its data
// lives, which backend serves it, and the limits it is served under.
type GraphSpec struct {
	// ID names the graph in routes (/g/{id}/...) and metric labels. It
	// must be non-empty and use only letters, digits, '.', '_', '-'.
	ID string `json:"id"`
	// Graph is the edge-list file path (SNAP format, as LoadEdgeListFile).
	Graph string `json:"graph"`
	// Undirected inserts both directions per edge-list line.
	Undirected bool `json:"undirected,omitempty"`
	// Mode selects the backend: "memory" (default), "disk", or "dynamic".
	Mode string `json:"mode,omitempty"`
	// Index is a prebuilt SLIX file. Required for disk mode; optional for
	// memory mode (loaded instead of building at open time).
	Index string `json:"index,omitempty"`

	// Build parameters (zero = package defaults), used when the entry
	// builds at open time.
	Eps     float64 `json:"eps,omitempty"`
	C       float64 `json:"c,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`
	Workers int     `json:"workers,omitempty"`

	// CacheBytes bounds the disk-mode entry cache (0 = no cache).
	// Ignored when Mmap maps the index.
	CacheBytes int64 `json:"cache_bytes,omitempty"`
	// Mmap serves a disk-mode index from a zero-copy memory mapping
	// instead of positioned reads, falling back silently where the
	// platform cannot map. Requires disk mode.
	Mmap bool `json:"mmap,omitempty"`

	// Dynamic-mode tuning, as sling.DynamicOptions.
	RebuildThreshold int `json:"rebuild_threshold,omitempty"`
	Walks            int `json:"walks,omitempty"`
	Depth            int `json:"depth,omitempty"`
	// DurableDir enables durable storage for a dynamic graph: updates
	// journal to a WAL under this directory and rebuilds snapshot there.
	// When the directory already holds state, opening restores from it
	// instead of rebuilding from the edge list. Dynamic mode only.
	DurableDir string `json:"durable_dir,omitempty"`

	// MaxQPS is the per-graph operation quota (token bucket, one token
	// per query operation; a /batch of N ops costs N tokens). 0 means
	// unlimited.
	MaxQPS float64 `json:"max_qps,omitempty"`
	// Burst is the token-bucket capacity. 0 derives
	// max(1, ceil(MaxQPS), MaxBatchOps) so a full burst second — or one
	// maximal batch — can pass when the bucket is full.
	Burst int `json:"burst,omitempty"`
	// MaxBatchOps caps ops per /batch request for this graph; 0 falls
	// back to the server default.
	MaxBatchOps int `json:"max_batch_ops,omitempty"`
}

// Manifest is the catalog configuration: the graph set, the global
// memory budget, and which graph the legacy single-graph routes alias.
type Manifest struct {
	Graphs []GraphSpec `json:"graphs"`
	// MemoryBudgetBytes bounds the summed QuerierMeta.Bytes of open
	// backends; least-recently-used idle graphs are evicted (closed) to
	// fit. 0 means unlimited. A single graph larger than the budget is
	// still served — the budget evicts everything else around it.
	MemoryBudgetBytes int64 `json:"memory_budget_bytes,omitempty"`
	// Default is the graph ID the un-prefixed legacy routes (/simrank,
	// /batch, ...) serve. Empty means the first manifest entry.
	Default string `json:"default,omitempty"`
}

// idOK reports whether an ID is usable in URL paths and metric labels.
func idOK(id string) bool {
	if id == "" {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Validate checks structural invariants: at least one graph, valid
// unique IDs, known modes, disk entries with an index file, and a
// default that exists.
func (m *Manifest) Validate() error {
	if len(m.Graphs) == 0 {
		return fmt.Errorf("catalog: manifest has no graphs")
	}
	seen := make(map[string]bool, len(m.Graphs))
	for i := range m.Graphs {
		s := &m.Graphs[i]
		if !idOK(s.ID) {
			return fmt.Errorf("catalog: graph %d: bad id %q (want letters, digits, '.', '_', '-')", i, s.ID)
		}
		if seen[s.ID] {
			return fmt.Errorf("catalog: duplicate graph id %q", s.ID)
		}
		seen[s.ID] = true
		if s.Graph == "" {
			return fmt.Errorf("catalog: graph %q: missing edge-list path", s.ID)
		}
		switch s.Mode {
		case "", "memory", "dynamic":
		case "disk":
			if s.Index == "" {
				return fmt.Errorf("catalog: graph %q: disk mode requires an index file", s.ID)
			}
		default:
			return fmt.Errorf("catalog: graph %q: unknown mode %q (want memory|disk|dynamic)", s.ID, s.Mode)
		}
		if s.DurableDir != "" && s.mode() != "dynamic" {
			return fmt.Errorf("catalog: graph %q: durable_dir requires dynamic mode", s.ID)
		}
		if s.Mmap && s.mode() != "disk" {
			return fmt.Errorf("catalog: graph %q: mmap requires disk mode", s.ID)
		}
		if s.Mode == "dynamic" && s.Undirected {
			// Same invariant slingserver enforces: directed updates on a
			// both-directions-per-line graph would silently break it.
			return fmt.Errorf("catalog: graph %q: dynamic mode is incompatible with undirected loading", s.ID)
		}
		if s.MaxQPS < 0 || s.Burst < 0 || s.MaxBatchOps < 0 {
			return fmt.Errorf("catalog: graph %q: negative quota", s.ID)
		}
	}
	if m.Default != "" && !seen[m.Default] {
		return fmt.Errorf("catalog: default graph %q not in manifest", m.Default)
	}
	if m.MemoryBudgetBytes < 0 {
		return fmt.Errorf("catalog: negative memory budget")
	}
	return nil
}

// mode returns the spec's effective mode.
func (s *GraphSpec) mode() string {
	if s.Mode == "" {
		return "memory"
	}
	return s.Mode
}

// ParseManifest decodes and validates a manifest document. Unknown
// fields are rejected so a typo in a limit name cannot silently serve
// unlimited.
func ParseManifest(r io.Reader) (Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("catalog: parsing manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// LoadManifest reads a manifest from path. Relative Graph/Index paths
// are resolved against the manifest file's directory, so a manifest
// travels with its data.
func LoadManifest(path string) (Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return Manifest{}, fmt.Errorf("catalog: %w", err)
	}
	defer f.Close()
	m, err := ParseManifest(f)
	if err != nil {
		return Manifest{}, err
	}
	dir := dirOf(path)
	for i := range m.Graphs {
		m.Graphs[i].Graph = resolve(dir, m.Graphs[i].Graph)
		m.Graphs[i].Index = resolve(dir, m.Graphs[i].Index)
		m.Graphs[i].DurableDir = resolve(dir, m.Graphs[i].DurableDir)
	}
	return m, nil
}

func dirOf(path string) string {
	if i := strings.LastIndexByte(path, os.PathSeparator); i >= 0 {
		return path[:i]
	}
	return "."
}

func resolve(dir, p string) string {
	if p == "" || os.IsPathSeparator(p[0]) {
		return p
	}
	return dir + string(os.PathSeparator) + p
}
