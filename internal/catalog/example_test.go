package catalog_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"sling/internal/catalog"
)

// Example serves two graphs from one catalog: backends open lazily on
// first use, and every query goes through a refcounted handle so the
// memory-budget evictor never closes an index mid-query.
func ExampleCatalog() {
	dir, err := os.MkdirTemp("", "catalog")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// Two small fan-out graphs: node 0 points at every other node, so
	// the leaves share their only in-neighbor and s(1,2) = C.
	fan3 := filepath.Join(dir, "fan3.txt")
	os.WriteFile(fan3, []byte("0 1\n0 2\n0 3\n"), 0o644)
	fan5 := filepath.Join(dir, "fan5.txt")
	os.WriteFile(fan5, []byte("0 1\n0 2\n0 3\n0 4\n0 5\n"), 0o644)

	cat, err := catalog.New(catalog.Manifest{
		Graphs: []catalog.GraphSpec{
			{ID: "fan3", Graph: fan3, Eps: 0.1, Seed: 1},
			{ID: "fan5", Graph: fan5, Eps: 0.1, Seed: 1, MaxQPS: 100},
		},
	}, nil)
	if err != nil {
		panic(err)
	}
	defer cat.Close()

	for _, id := range cat.IDs() {
		h, err := cat.Acquire(context.Background(), id)
		if err != nil {
			panic(err)
		}
		if err := h.AllowOps(1); err != nil { // per-graph quota
			panic(err)
		}
		s, err := h.Querier().SimRank(context.Background(), 1, 2)
		if err != nil {
			panic(err)
		}
		h.CountOps(1)
		fmt.Printf("%s: |s(1,2) - C| <= eps = %v\n", id, s > 0.5 && s < 0.7)
		h.Release()
	}
	st := cat.Stats()
	fmt.Printf("graphs=%d open=%d requests=%d\n", st.Graphs, st.Open, st.Requests)
	// Output:
	// fan3: |s(1,2) - C| <= eps = true
	// fan5: |s(1,2) - C| <= eps = true
	// graphs=2 open=2 requests=2
}
