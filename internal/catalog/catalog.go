// Package catalog serves many graphs from one process: a registry of
// manifest-declared graphs, each lazily opened as a sling.Querier
// (memory, disk, or dynamic per entry) on first use, evicted
// least-recently-used when the summed QuerierMeta.Bytes footprint
// exceeds a global memory budget, and guarded by per-graph operation
// quotas (token bucket) — the multi-tenant layer the HTTP server routes
// /g/{id}/... requests through.
//
// SLING's index is small (O(n/ε)) and cheap to load, which is what makes
// dozens-of-graphs-per-server practical: an evicted graph re-opens on
// the next request in build-or-load time, and the budget turns a fixed
// fleet of processes into an LRU cache over the whole graph corpus.
//
// Concurrency model: one catalog mutex guards entry states, refcounts,
// LRU stamps, and budget accounting; the expensive open (graph load +
// index build) runs outside it with waiters parked on a per-attempt
// channel. Handles refcount open backends so eviction never closes a
// Querier mid-query: eviction skips entries with in-flight handles and
// picks them up when the last handle is released. Dynamic entries are
// pinned — evicting one would silently discard applied edge updates.
package catalog

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"sling"
	"sling/internal/metrics"
)

// ErrUnknownGraph is returned by Acquire for an ID not in the manifest.
var ErrUnknownGraph = errors.New("catalog: unknown graph")

// ErrThrottled is the sentinel wrapped by ThrottleError; the HTTP layer
// maps it to 429.
var ErrThrottled = errors.New("catalog: quota exceeded")

// ThrottleError reports a quota rejection and how long until the bucket
// has refilled enough to admit the request.
type ThrottleError struct {
	Graph      string
	Ops        int
	RetryAfter time.Duration
}

func (e *ThrottleError) Error() string {
	return fmt.Sprintf("catalog: graph %q: %d op(s) over quota, retry in %s", e.Graph, e.Ops, e.RetryAfter)
}

func (e *ThrottleError) Unwrap() error { return ErrThrottled }

// tokenBucket is a standard token bucket: rate tokens/second refill,
// capacity burst. take reports whether n tokens were available and, if
// not, how long until they would be.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

func (b *tokenBucket) take(n float64) (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= n {
		b.tokens -= n
		return 0, true
	}
	need := (n - b.tokens) / b.rate
	return time.Duration(need * float64(time.Second)), false
}

// entry states.
const (
	stateClosed = iota
	stateOpening
	stateOpen
)

// openAttempt parks waiters while one goroutine runs the expensive open.
type openAttempt struct {
	done chan struct{}
	err  error // valid after done is closed
}

type entry struct {
	spec   GraphSpec
	state  int
	op     *openAttempt
	q      sling.Querier
	dyn    *sling.DynamicIndex // non-nil for dynamic entries (pinned)
	labels []int64
	byLbl  map[int64]sling.NodeID // external label -> dense ID; nil for dense graphs
	bytes  int64
	refs   int
	stamp  uint64 // LRU clock value of the last acquire
	opens  uint64 // lifetime opens (first open + re-opens after eviction)

	bucket *tokenBucket

	requests  *metrics.Counter
	throttled *metrics.Counter
	errorsC   *metrics.Counter
	latency   *metrics.Histogram
}

// Catalog is the multi-graph registry. Safe for concurrent use.
type Catalog struct {
	mu        sync.Mutex
	entries   map[string]*entry
	ids       []string // manifest order
	defaultID string
	budget    int64
	used      int64
	clock     uint64
	closed    bool

	reg       *metrics.Registry
	evictions *metrics.Counter
	throttled *metrics.Counter // catalog-wide, alongside the per-graph series
	requests  *metrics.Counter
}

// Metric family names, shared with the exposition golden test.
const (
	MetricRequests      = "sling_graph_requests_total"
	MetricThrottled     = "sling_graph_throttled_total"
	MetricErrors        = "sling_graph_errors_total"
	MetricLatency       = "sling_graph_request_seconds"
	MetricEvictions     = "sling_catalog_evictions_total"
	MetricOpenGraphs    = "sling_catalog_open_graphs"
	MetricGraphs        = "sling_catalog_graphs"
	MetricResidentBytes = "sling_catalog_resident_bytes"
	MetricBudgetBytes   = "sling_catalog_budget_bytes"
	MetricGraphOpen     = "sling_graph_open"
	MetricGraphBytes    = "sling_graph_resident_bytes"
	MetricGraphEpoch    = "sling_graph_epoch"
)

// New builds a catalog over a validated manifest, registering every
// per-graph instrument up front (so the metric surface is complete from
// the first scrape, not dependent on traffic order). reg may be nil, in
// which case the catalog creates its own registry.
func New(m Manifest, reg *metrics.Registry) (*Catalog, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	c := &Catalog{
		entries:   make(map[string]*entry, len(m.Graphs)),
		defaultID: m.Default,
		budget:    m.MemoryBudgetBytes,
		reg:       reg,
	}
	if c.defaultID == "" {
		c.defaultID = m.Graphs[0].ID
	}
	c.evictions = reg.Counter(MetricEvictions, "graphs closed to fit the memory budget")
	c.throttled = reg.Counter(MetricThrottled, "operations rejected by per-graph quotas")
	c.requests = reg.Counter(MetricRequests, "query operations served")
	reg.Gauge(MetricGraphs, "graphs in the catalog manifest").Set(float64(len(m.Graphs)))
	reg.GaugeFunc(MetricOpenGraphs, "graphs currently open", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		for _, e := range c.entries {
			if e.state == stateOpen {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc(MetricResidentBytes, "summed QuerierMeta.Bytes of open graphs", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.used)
	})
	reg.Gauge(MetricBudgetBytes, "memory budget (0 = unlimited)").Set(float64(m.MemoryBudgetBytes))

	for _, spec := range m.Graphs {
		spec := spec
		gl := metrics.L("graph", spec.ID)
		e := &entry{
			spec:      spec,
			requests:  reg.Counter(MetricRequests, "query operations served", gl),
			throttled: reg.Counter(MetricThrottled, "operations rejected by per-graph quotas", gl),
			errorsC:   reg.Counter(MetricErrors, "failed query operations", gl),
			latency:   reg.Histogram(MetricLatency, "request latency", nil, gl),
		}
		if spec.MaxQPS > 0 {
			burst := float64(spec.Burst)
			if burst == 0 {
				burst = math.Max(1, math.Ceil(spec.MaxQPS))
				if float64(spec.MaxBatchOps) > burst {
					burst = float64(spec.MaxBatchOps)
				}
			}
			e.bucket = newTokenBucket(spec.MaxQPS, burst)
		}
		reg.GaugeFunc(MetricGraphOpen, "1 when the graph is open", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			if e.state == stateOpen {
				return 1
			}
			return 0
		}, gl)
		reg.GaugeFunc(MetricGraphBytes, "QuerierMeta.Bytes while open", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			if e.state == stateOpen {
				return float64(e.bytes)
			}
			return 0
		}, gl)
		if spec.mode() == "dynamic" {
			reg.GaugeFunc(MetricGraphEpoch, "serving index generation", func() float64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				if e.state == stateOpen {
					return float64(e.q.Meta().Epoch)
				}
				return 0
			}, gl)
		}
		c.entries[spec.ID] = e
		c.ids = append(c.ids, spec.ID)
	}
	return c, nil
}

// Load is New over LoadManifest(path).
func Load(path string, reg *metrics.Registry) (*Catalog, error) {
	m, err := LoadManifest(path)
	if err != nil {
		return nil, err
	}
	return New(m, reg)
}

// Registry returns the catalog's metrics registry.
func (c *Catalog) Registry() *metrics.Registry { return c.reg }

// DefaultID returns the graph the legacy un-prefixed routes serve.
func (c *Catalog) DefaultID() string { return c.defaultID }

// IDs returns every graph ID in manifest order.
func (c *Catalog) IDs() []string { return append([]string(nil), c.ids...) }

// open runs the expensive part of opening an entry — graph load plus
// index build/load — outside the catalog lock.
func (e *entry) open() (sling.Querier, *sling.DynamicIndex, []int64, error) {
	spec := &e.spec
	g, labels, err := sling.LoadEdgeListFile(spec.Graph, spec.Undirected)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("catalog: graph %q: %w", spec.ID, err)
	}
	var opts []sling.BuildOption
	if spec.Eps > 0 {
		opts = append(opts, sling.WithEps(spec.Eps))
	}
	if spec.C > 0 {
		opts = append(opts, sling.WithC(spec.C))
	}
	if spec.Seed > 0 {
		opts = append(opts, sling.WithSeed(spec.Seed))
	}
	if spec.Workers > 0 {
		opts = append(opts, sling.WithWorkers(spec.Workers))
	}
	switch spec.mode() {
	case "memory":
		var ix *sling.Index
		if spec.Index != "" {
			ix, err = sling.Open(spec.Index, g)
		} else {
			ix, err = sling.Build(g, opts...)
		}
		if err != nil {
			return nil, nil, nil, fmt.Errorf("catalog: graph %q: %w", spec.ID, err)
		}
		return ix, nil, labels, nil
	case "disk":
		di, err := sling.OpenDiskWithOptions(spec.Index, g, &sling.DiskOptions{
			CacheBytes: spec.CacheBytes, Workers: spec.Workers, Mmap: spec.Mmap,
		})
		if err != nil {
			return nil, nil, nil, fmt.Errorf("catalog: graph %q: %w", spec.ID, err)
		}
		return di, nil, labels, nil
	case "dynamic":
		do := &sling.DynamicOptions{
			RebuildThreshold: spec.RebuildThreshold,
			NumWalks:         spec.Walks,
			Depth:            spec.Depth,
			Workers:          spec.Workers,
			Seed:             spec.Seed,
			DurableDir:       spec.DurableDir,
		}
		var dx *sling.DynamicIndex
		if spec.DurableDir != "" {
			// Restore-or-create: an already-populated durable directory is
			// the authoritative state (it may hold updates the edge list
			// never saw); a fresh one starts from the edge list.
			dx, err = sling.RestoreDynamic(do, opts...)
			if errors.Is(err, sling.ErrNoDurableState) {
				dx, err = sling.NewDynamic(g, do, opts...)
			}
		} else {
			dx, err = sling.NewDynamic(g, do, opts...)
		}
		if err != nil {
			return nil, nil, nil, fmt.Errorf("catalog: graph %q: %w", spec.ID, err)
		}
		return dx, dx, labels, nil
	}
	return nil, nil, nil, fmt.Errorf("catalog: graph %q: unknown mode %q", spec.ID, spec.Mode)
}

// Acquire returns a refcounted handle on the graph's Querier, opening
// the backend if it is not resident (and evicting idle graphs if the
// open pushes the catalog over its memory budget). Every Acquire must
// be paired with Handle.Release. ctx bounds only the wait for a
// concurrent open — an open in progress is never aborted, so the work
// benefits the next caller even if this one gives up.
func (c *Catalog) Acquire(ctx context.Context, id string) (*Handle, error) {
	c.mu.Lock()
	e, ok := c.entries[id]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownGraph, id)
	}
	for {
		if c.closed {
			c.mu.Unlock()
			return nil, errors.New("catalog: closed")
		}
		switch e.state {
		case stateOpen:
			e.refs++
			c.clock++
			e.stamp = c.clock
			c.mu.Unlock()
			return &Handle{cat: c, e: e}, nil

		case stateOpening:
			op := e.op
			c.mu.Unlock()
			select {
			case <-op.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if op.err != nil {
				return nil, op.err
			}
			c.mu.Lock()
			// Loop: usually open now, but it may already have been
			// evicted again under a tight budget.

		case stateClosed:
			op := &openAttempt{done: make(chan struct{})}
			e.state = stateOpening
			e.op = op
			c.mu.Unlock()

			q, dyn, labels, err := e.open()

			c.mu.Lock()
			e.op = nil
			if err != nil {
				e.state = stateClosed
				op.err = err
				c.mu.Unlock()
				close(op.done)
				return nil, err
			}
			e.state = stateOpen
			e.q, e.dyn, e.labels = q, dyn, labels
			if labels != nil {
				// Built once per open: the HTTP layer resolves every node
				// parameter through it, so per-request construction would
				// turn O(1) lookups into O(n) scans.
				e.byLbl = make(map[int64]sling.NodeID, len(labels))
				for id, l := range labels {
					e.byLbl[l] = sling.NodeID(id)
				}
			}
			e.bytes = q.Meta().Bytes
			e.opens++
			c.used += e.bytes
			e.refs++ // protect the fresh entry before evicting others
			c.clock++
			e.stamp = c.clock
			c.evictLocked()
			c.mu.Unlock()
			close(op.done)
			return &Handle{cat: c, e: e}, nil
		}
	}
}

// evictLocked closes least-recently-used idle entries until the
// footprint fits the budget. Entries with in-flight handles or pinned
// (dynamic) entries are skipped; if everything evictable is gone and the
// catalog is still over budget, it stays over — the budget is a target,
// not an admission veto, because refusing to open the requested graph
// would turn an over-budget moment into unavailability.
func (c *Catalog) evictLocked() {
	if c.budget <= 0 {
		return
	}
	for c.used > c.budget {
		var victim *entry
		for _, e := range c.entries {
			if e.state != stateOpen || e.refs > 0 || e.dyn != nil {
				continue
			}
			if victim == nil || e.stamp < victim.stamp {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		c.closeEntryLocked(victim)
		c.evictions.Inc()
	}
}

// closeEntryLocked releases an open entry's backend and accounting.
func (c *Catalog) closeEntryLocked(e *entry) {
	e.q.Close()
	c.used -= e.bytes
	e.q, e.dyn, e.labels, e.byLbl = nil, nil, nil, nil
	e.bytes = 0
	e.state = stateClosed
}

// Close closes every open backend. Outstanding handles become invalid;
// Close is for process shutdown, not steady state.
func (c *Catalog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, e := range c.entries {
		if e.state == stateOpen {
			c.closeEntryLocked(e)
		}
	}
	return nil
}

// Stats is a point-in-time catalog summary, the source of the
// catalog-mode /stats document.
type Stats struct {
	Graphs        int    `json:"graphs"`
	Open          int    `json:"open_graphs"`
	ResidentBytes int64  `json:"resident_bytes"`
	BudgetBytes   int64  `json:"budget_bytes"`
	Evictions     uint64 `json:"evictions"`
	Throttled     uint64 `json:"throttled_ops"`
	Requests      uint64 `json:"requests"`
}

// Stats snapshots the catalog.
func (c *Catalog) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Graphs:        len(c.entries),
		ResidentBytes: c.used,
		BudgetBytes:   c.budget,
		Evictions:     c.evictions.Value(),
		Throttled:     c.throttled.Value(),
		Requests:      c.requests.Value(),
	}
	for _, e := range c.entries {
		if e.state == stateOpen {
			st.Open++
		}
	}
	return st
}

// GraphInfo summarizes one entry for listings (GET /g).
type GraphInfo struct {
	ID       string  `json:"id"`
	Mode     string  `json:"mode"`
	Open     bool    `json:"open"`
	Bytes    int64   `json:"resident_bytes"`
	Opens    uint64  `json:"opens"`
	MaxQPS   float64 `json:"max_qps"`
	Requests uint64  `json:"requests"`
}

// Graphs lists every entry in manifest order.
func (c *Catalog) Graphs() []GraphInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]GraphInfo, 0, len(c.ids))
	for _, id := range c.ids {
		e := c.entries[id]
		out = append(out, GraphInfo{
			ID:       id,
			Mode:     e.spec.mode(),
			Open:     e.state == stateOpen,
			Bytes:    e.bytes,
			Opens:    e.opens,
			MaxQPS:   e.spec.MaxQPS,
			Requests: e.requests.Value(),
		})
	}
	return out
}

// Handle is a leased view of one open graph. Release it when the
// request finishes; the backend stays resident until eviction needs the
// memory and no handles are outstanding.
type Handle struct {
	cat *Catalog
	e   *entry
}

// ID returns the graph ID.
func (h *Handle) ID() string { return h.e.spec.ID }

// Querier returns the open backend.
func (h *Handle) Querier() sling.Querier { return h.e.q }

// Dynamic returns the updatable index for dynamic entries, nil
// otherwise.
func (h *Handle) Dynamic() *sling.DynamicIndex { return h.e.dyn }

// Labels returns the dense-ID -> external-label mapping from the
// graph's edge list (nil only if the edge list was already dense).
func (h *Handle) Labels() []int64 { return h.e.labels }

// LabelMap returns the external-label -> dense-ID map (nil for dense
// graphs). Callers must not mutate it.
func (h *Handle) LabelMap() map[int64]sling.NodeID { return h.e.byLbl }

// MaxBatchOps returns the per-graph batch cap (0 = server default).
func (h *Handle) MaxBatchOps() int { return h.e.spec.MaxBatchOps }

// AllowOps charges n operations against the graph's quota. On
// rejection it increments the throttled counters and returns a
// *ThrottleError carrying the Retry-After hint.
func (h *Handle) AllowOps(n int) error {
	if h.e.bucket == nil || n <= 0 {
		return nil
	}
	if wait, ok := h.e.bucket.take(float64(n)); !ok {
		h.e.throttled.Add(uint64(n))
		h.cat.throttled.Add(uint64(n))
		return &ThrottleError{Graph: h.e.spec.ID, Ops: n, RetryAfter: wait}
	}
	return nil
}

// CountOps records n served operations on the per-graph and catalog
// request counters.
func (h *Handle) CountOps(n int) {
	h.e.requests.Add(uint64(n))
	h.cat.requests.Add(uint64(n))
}

// CountError records a failed operation.
func (h *Handle) CountError() { h.e.errorsC.Inc() }

// ObserveLatency records one request's wall time on the per-graph
// latency histogram.
func (h *Handle) ObserveLatency(start time.Time) { h.e.latency.ObserveSince(start) }

// Release returns the lease. After the last release an over-budget
// catalog immediately retries eviction, so memory pressure created by a
// burst of concurrent opens drains as the requests finish.
func (h *Handle) Release() {
	c := h.cat
	c.mu.Lock()
	h.e.refs--
	if h.e.refs == 0 && c.budget > 0 && c.used > c.budget {
		c.evictLocked()
	}
	c.mu.Unlock()
}
