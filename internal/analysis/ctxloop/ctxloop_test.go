package ctxloop_test

import (
	"testing"

	"sling/internal/analysis/analysistest"
	"sling/internal/analysis/ctxloop"
)

func TestFlagged(t *testing.T) {
	analysistest.Run(t, ctxloop.Analyzer, "./testdata/src/a")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, ctxloop.Analyzer, "./testdata/src/b")
}
