// Package ctxloop flags per-item work loops that ignore an available
// context.Context.
//
// Invariant: the Querier contract (querier.go) promises that a
// cancelled ctx is observed "before any work and between per-source
// units", so an abandoned batch stops burning CPU at item granularity.
// PR 5 made that promise load-bearing — the HTTP layer counts dropped
// operations and the conformance contract tests assert pre-cancelled
// contexts return ctx.Err() — and every new fan-out (sharded serving,
// per-query routing) must keep it.
//
// The check: inside any function that receives a context.Context, a
// for/range loop over a slice-typed PARAMETER (the batch being served:
// us []NodeID, ops []BatchOp, ...) whose body does real work (calls a
// non-builtin function) must mention the context somewhere in its body
// — a ctx.Err() / ctx.Done() check, a CtxErr(ctx) helper, or passing
// ctx into the per-item call all count, because each one gives the
// runtime a cancellation point per iteration. Loops over locals,
// fixed-count loops, and call-free loops (slice assembly, validation
// against in-memory state) are out of scope: the analyzer is
// deliberately narrow so that every report is actionable.
package ctxloop

import (
	"go/ast"
	"go/types"

	"sling/internal/analysis/framework"
)

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name: "ctxloop",
	Doc:  "per-item loops over a batch parameter in ctx-taking functions must observe ctx in the loop body (Querier cancellation contract)",
	Run:  run,
}

func run(pass *framework.Pass) error {
	pass.WalkStack(func(n ast.Node, stack []ast.Node) bool {
		var ftype *ast.FuncType
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			ftype, body = fn.Type, fn.Body
		case *ast.FuncLit:
			ftype, body = fn.Type, fn.Body
		default:
			return true
		}
		if body == nil || !hasCtxParam(pass.TypesInfo, ftype) {
			return true
		}
		params := sliceParams(pass.TypesInfo, ftype)
		checkBody(pass, body, params)
		return true
	})
	return nil
}

// hasCtxParam reports whether the function signature includes a
// context.Context parameter.
func hasCtxParam(info *types.Info, ftype *ast.FuncType) bool {
	if ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		if t := info.TypeOf(field.Type); t != nil && framework.IsContextType(t) {
			return true
		}
	}
	return false
}

// sliceParams collects the parameter objects with slice type — the
// candidate batches.
func sliceParams(info *types.Info, ftype *ast.FuncType) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				out[obj] = true
			}
		}
	}
	return out
}

// checkBody walks one function body (not descending into nested
// function literals, which are checked on their own terms) and reports
// offending loops.
func checkBody(pass *framework.Pass, body *ast.BlockStmt, params map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		ident, ok := ast.Unparen(rng.X).(*ast.Ident)
		if !ok || !params[pass.TypesInfo.Uses[ident]] {
			return true
		}
		if !doesWork(pass.TypesInfo, rng.Body) || mentionsContext(pass.TypesInfo, rng.Body) {
			return true
		}
		pass.Reportf(rng.Pos(),
			"loop over batch parameter %q does per-item work but never observes ctx; check ctx.Err() (or pass ctx to the per-item call) so cancellation stops the fan-out between items", ident.Name)
		return true
	})
}

// doesWork reports whether the loop body calls any non-builtin
// function — the proxy for "each iteration is a unit of work worth a
// cancellation point".
func doesWork(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch framework.CalleeObj(info, call).(type) {
		case *types.Builtin, *types.TypeName, nil:
			// Builtins, conversions to named types, and conversions to
			// unnamed types (nil callee) are bookkeeping, not work.
			return true
		}
		found = true
		return false
	})
	return found
}

// mentionsContext reports whether the body references any value of
// type context.Context (covers ctx.Err(), ctx.Done(), CtxErr(ctx), and
// passing ctx onward).
func mentionsContext(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj != nil && framework.IsContextType(obj.Type()) {
			found = true
		}
		return !found
	})
	return found
}
