// Package a violates the ctxloop invariant: a ctx-taking function
// fans out over a batch parameter without ever observing ctx.
package a

import "context"

func ProcessAll(ctx context.Context, items []int) int {
	total := 0
	for _, it := range items { // want `loop over batch parameter "items" does per-item work but never observes ctx`
		total += work(it)
	}
	return total
}

func work(n int) int { return n * n }
