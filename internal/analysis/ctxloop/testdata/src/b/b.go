// Package b satisfies the ctxloop invariant in the three accepted
// ways: checking ctx.Err() between items, passing ctx into the
// per-item call, and not taking a ctx at all.
package b

import "context"

func CheckedLoop(ctx context.Context, items []int) (int, error) {
	total := 0
	for _, it := range items {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total += work(it)
	}
	return total, nil
}

func DelegatingLoop(ctx context.Context, items []int) int {
	total := 0
	for _, it := range items {
		total += workCtx(ctx, it)
	}
	return total
}

func NoContext(items []int) int {
	total := 0
	for _, it := range items {
		total += work(it)
	}
	return total
}

// CheapLoop does no per-item call work, so there is no unit of work
// for cancellation to stop between.
func CheapLoop(ctx context.Context, items []int) int {
	total := 0
	for _, it := range items {
		total += it
	}
	return total
}

func work(n int) int { return n * n }

func workCtx(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n * n
}
