// Package a violates the noderangeerr invariant twice: it mints a
// fresh node-range error instead of wrapping the sentinel, and it
// compares against the sentinel with == instead of errors.Is.
package a

import (
	"errors"
	"fmt"
)

var ErrNodeRange = errors.New("a: node out of range")

func Check(u, n int) error {
	if u < 0 || u >= n {
		return fmt.Errorf("node %d out of range [0,%d)", u, n) // want `mints a fresh node-range error`
	}
	return nil
}

func IsRange(err error) bool {
	return err == ErrNodeRange // want `use errors.Is\(err, ErrNodeRange\)`
}
