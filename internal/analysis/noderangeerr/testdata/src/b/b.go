// Package b satisfies the noderangeerr invariant: range failures wrap
// the canonical sentinel and classification goes through errors.Is, so
// wrapped errors still match.
package b

import (
	"errors"
	"fmt"
)

var ErrNodeRange = errors.New("b: node out of range")

func Check(u, n int) error {
	if u < 0 || u >= n {
		return fmt.Errorf("%w: node %d not in [0,%d)", ErrNodeRange, u, n)
	}
	return nil
}

func IsRange(err error) bool {
	return errors.Is(err, ErrNodeRange)
}
