// Package noderangeerr enforces the single node-range error sentinel.
//
// Invariant: every backend answers an out-of-range node ID with an
// error wrapping sling.ErrNodeRange — the Querier contract PR 5
// introduced, which the conformance contract tests assert across all
// seven backends and the HTTP layer maps to 400 + code:"node_range".
// Two things quietly break it: a freshly constructed sentinel ("node
// %d out of range" via errors.New / fmt.Errorf without %w), which
// errors.Is can never match, and direct == / != comparison against the
// sentinel, which breaks as soon as any layer wraps the error with
// context (they all do).
//
// The check therefore flags:
//
//   - errors.New or fmt.Errorf whose message says a node is out of
//     range without wrapping the sentinel (fmt.Errorf with a %w verb is
//     trusted to wrap the right thing; the declaration of a package's
//     canonical ErrNodeRange variable is exempt),
//   - == / != where either operand is an ErrNodeRange sentinel
//     (use errors.Is).
package noderangeerr

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"sling/internal/analysis/framework"
)

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name: "noderangeerr",
	Doc:  "node-range failures must wrap the canonical ErrNodeRange sentinel and be tested with errors.Is, never re-invented or compared with ==",
	Run:  run,
}

// msgRe matches error messages that announce a node-range failure.
var msgRe = regexp.MustCompile(`(?i)node[^"]*(out of range|not in)|out of range[^"]*node`)

func run(pass *framework.Pass) error {
	pass.WalkStack(func(n ast.Node, stack []ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			checkConstruct(pass, v, stack)
		case *ast.BinaryExpr:
			checkCompare(pass, v)
		}
		return true
	})
	return nil
}

// checkConstruct flags errors.New / fmt.Errorf that mint a fresh
// node-range error.
func checkConstruct(pass *framework.Pass, call *ast.CallExpr, stack []ast.Node) {
	obj := framework.CalleeObj(pass.TypesInfo, call)
	if obj == nil || obj.Pkg() == nil || len(call.Args) == 0 {
		return
	}
	var kind string
	switch {
	case obj.Pkg().Path() == "errors" && obj.Name() == "New":
		kind = "errors.New"
	case obj.Pkg().Path() == "fmt" && obj.Name() == "Errorf":
		kind = "fmt.Errorf"
	default:
		return
	}
	msg, ok := framework.ConstString(pass.TypesInfo, call.Args[0])
	if !ok || !msgRe.MatchString(msg) {
		return
	}
	if kind == "fmt.Errorf" && strings.Contains(msg, "%w") {
		return // wrapping something; trusted
	}
	if kind == "errors.New" && declaresSentinel(stack) {
		return // the canonical declaration itself
	}
	pass.Reportf(call.Pos(),
		"%s mints a fresh node-range error that errors.Is(err, ErrNodeRange) can never match; wrap the canonical sentinel with fmt.Errorf(\"%%w: ...\", ErrNodeRange) instead", kind)
}

// declaresSentinel reports whether the enclosing declaration is
// `var ErrNodeRange = ...` — the one place a bare errors.New with this
// message is the point.
func declaresSentinel(stack []ast.Node) bool {
	for _, n := range stack {
		if spec, ok := n.(*ast.ValueSpec); ok {
			for _, name := range spec.Names {
				if name.Name == "ErrNodeRange" {
					return true
				}
			}
		}
	}
	return false
}

// checkCompare flags err == ErrNodeRange / err != ErrNodeRange.
func checkCompare(pass *framework.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if isSentinelRef(be.X) || isSentinelRef(be.Y) {
		pass.Reportf(be.Pos(),
			"comparing against ErrNodeRange with %s breaks once any layer wraps the error; use errors.Is(err, ErrNodeRange)", be.Op)
	}
}

// isSentinelRef reports whether e denotes an ErrNodeRange variable
// (plain or package-qualified).
func isSentinelRef(e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name == "ErrNodeRange"
	case *ast.SelectorExpr:
		return v.Sel.Name == "ErrNodeRange"
	}
	return false
}
