package noderangeerr_test

import (
	"testing"

	"sling/internal/analysis/analysistest"
	"sling/internal/analysis/noderangeerr"
)

func TestFlagged(t *testing.T) {
	analysistest.Run(t, noderangeerr.Analyzer, "./testdata/src/a")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, noderangeerr.Analyzer, "./testdata/src/b")
}
