// Package analysistest runs one analyzer over a fixture package and
// compares its diagnostics against `// want` expectations in the
// fixture source — the same contract as x/tools' analysistest, scoped
// to what the slingvet suite needs.
//
// Fixture layout, mirroring x/tools convention:
//
//	internal/analysis/<name>/testdata/src/<pkg>/...
//
// testdata directories are invisible to `./...` wildcards (so CI's
// `slingvet ./...` never trips over intentional violations) but fully
// buildable when named explicitly, which is how the loader reaches
// them. Expectations are trailing comments on the offending line:
//
//	x := rand.Int() // want `forbidden outside`
//
// The backquoted text is a regexp that must match the diagnostic
// message; every diagnostic must be wanted and every want matched.
package analysistest

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"

	"sling/internal/analysis/framework"
)

// wantRe extracts `// want `regexp“ expectations. Multiple wants may
// share one line.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// Run loads the fixture package at importPath (an explicit package
// path under some testdata/src), applies a, and asserts the
// diagnostics equal the fixture's want comments.
func Run(t *testing.T, a *framework.Analyzer, importPath string) {
	t.Helper()
	pkgs, err := framework.Load(framework.LoadConfig{Tests: false}, importPath)
	if err != nil {
		t.Fatalf("load %s: %v", importPath, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("load %s: no packages", importPath)
	}
	for _, pkg := range pkgs {
		diags, err := framework.RunAnalyzers(pkg, []*framework.Analyzer{a})
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		checkExpectations(t, pkg, diags)
	}
}

// expectation is one want comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

func checkExpectations(t *testing.T, pkg *framework.Package, diags []framework.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Syntax {
		name := pkg.Fset.File(f.Pos()).Name()
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		for i, lineText := range strings.Split(string(src), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(lineText, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, m[1], err)
				}
				wants = append(wants, &expectation{file: name, line: i + 1, re: re})
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", fmtPos(pos.Filename, pos.Line), d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("no diagnostic at %s matching %q", fmtPos(w.file, w.line), w.re)
		}
	}
}

func fmtPos(file string, line int) string {
	if i := strings.LastIndex(file, "/testdata/"); i >= 0 {
		file = file[i+1:]
	}
	return fmt.Sprintf("%s:%d", file, line)
}
