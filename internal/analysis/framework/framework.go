// Package framework is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis driver surface, just large enough
// to run this repository's slingvet analyzers offline.
//
// The exported shapes — Analyzer, Pass, Diagnostic — mirror x/tools
// deliberately, field for field where we use them, so the analyzers in
// internal/analysis/... are mechanical ports away from (or back to) the
// real framework: if the x/tools dependency ever becomes available to
// this module, each analyzer body moves unchanged and only the import
// path and the driver (cmd/slingvet) change. Until then the root module
// stays free of external dependencies, which is itself one of the
// invariants CI enforces.
//
// What is intentionally missing compared to x/tools: facts (no analyzer
// here needs cross-package state beyond what export data carries),
// SSA/CFG (poolpair uses a documented lexical approximation instead),
// and analyzer-to-analyzer requirements.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one slingvet check: a named invariant and the
// function that enforces it over a single type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in output and in
	// //slingvet:ignore comments. Lowercase, no spaces.
	Name string
	// Doc states the invariant, why it holds in this repository, and
	// what a violation breaks. The first line is the summary.
	Doc string
	// Run inspects one package and reports violations via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one package's parsed and type-checked state to an
// analyzer, mirroring x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Report records a violation at pos.
func (p *Pass) Report(pos token.Pos, msg string) {
	*p.diags = append(*p.diags, Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: msg})
}

// Reportf is Report with formatting.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// InTestFile reports whether pos lies in a _test.go file. Analyzers
// whose invariant only binds production code (floateq, metriclabel)
// gate on this; the rest apply to tests too.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// WalkStack traverses every file of the pass, calling fn with each node
// and the stack of its ancestors (outermost first, not including n).
// Return false from fn to skip the node's children.
func (p *Pass) WalkStack(fn func(n ast.Node, stack []ast.Node) bool) {
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := fn(n, stack)
			if descend {
				stack = append(stack, n)
			}
			return descend
		})
	}
}

// ignoreRe matches suppression comments:
//
//	//slingvet:ignore name1,name2 reason...
//	//slingvet:ignore all reason...
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory: a suppression with no justification is itself useless
// to the next reader.
var ignoreRe = regexp.MustCompile(`^//slingvet:ignore\s+([a-z0-9,]+)\s+(.+)$`)

// ignoreIndex records, per file line, which analyzers are suppressed.
type ignoreIndex map[string]map[int]map[string]bool // filename -> line -> analyzer set

// buildIgnoreIndex scans the comments of files for suppression
// directives. A directive suppresses matches on its own line and on the
// following line (covering both trailing and preceding placement).
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) ignoreIndex {
	idx := ignoreIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				names := map[string]bool{}
				for _, n := range strings.Split(m[1], ",") {
					names[n] = true
				}
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					idx[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set := byLine[line]
					if set == nil {
						set = map[string]bool{}
						byLine[line] = set
					}
					for n := range names {
						set[n] = true
					}
				}
			}
		}
	}
	return idx
}

// suppressed reports whether d is covered by a //slingvet:ignore
// directive in idx.
func (idx ignoreIndex) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	set := idx[pos.Filename][pos.Line]
	return set[d.Analyzer] || set["all"]
}

// RunAnalyzers applies every analyzer to one loaded package and returns
// the surviving (non-suppressed) diagnostics, sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	idx := buildIgnoreIndex(pkg.Fset, pkg.Syntax)
	kept := diags[:0]
	for _, d := range diags {
		if !idx.suppressed(pkg.Fset, d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(kept[i].Pos), pkg.Fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}
