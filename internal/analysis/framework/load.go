package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader resolves package patterns with the go command itself
// (`go list -deps -export -json`), so slingvet sees exactly the file
// sets and build-constraint decisions real builds see, then parses the
// target packages and type-checks them against the compiler's export
// data. This is the same division of labor as `go vet`: the go command
// owns package graphs and export data, the tool owns syntax and types.
// It needs no module downloads and no network — only the local build
// cache, which `go list -export` populates as a side effect.

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	Dir        string
	ImportPath string
	ForTest    string // non-empty for test variants ("p [p.test]")
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
}

// LoadConfig tunes Load.
type LoadConfig struct {
	// Dir is the working directory for go list (the module root or any
	// directory inside it). Empty means the current directory.
	Dir string
	// Tests includes each target package's test files (in-package and
	// external test packages) in the analysis, the way `go vet` does.
	Tests bool
}

// Load resolves patterns to packages and type-checks each target.
// Patterns are anything `go list` accepts ("./...", explicit import
// paths, including paths under testdata directories, which wildcards
// skip but explicit arguments reach).
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	args := []string{"list", "-e", "-deps", "-export",
		"-json=Dir,ImportPath,ForTest,Export,Standard,DepOnly,GoFiles,Imports"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}

	exports := map[string]string{} // resolved import path -> export data file
	var targets []*listPackage
	hasTestVariant := map[string]bool{} // plain paths that also appear as "p [p.test]"
	dec := json.NewDecoder(&out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || strings.HasSuffix(p.ImportPath, ".test") {
			// Dependencies only feed the importer; synthesized test-main
			// packages are generated code with nothing to check.
			continue
		}
		if p.ForTest != "" && strings.HasPrefix(p.ImportPath, p.ForTest+" ") {
			// "p [p.test]" carries p's files plus its in-package tests;
			// analyzing it covers (and supersedes) plain p.
			hasTestVariant[p.ForTest] = true
		}
		q := p
		targets = append(targets, &q)
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, p := range targets {
		if p.ForTest == "" && hasTestVariant[p.ImportPath] {
			continue // the test variant supersedes the plain package
		}
		pkg, err := check(fset, p, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one listed package against export data.
func check(fset *token.FileSet, p *listPackage, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}

	// Test variants import test variants: when this package's import list
	// carries "q [x.test]", a source-level import of "q" must resolve to
	// that variant's export data, not plain q's.
	resolve := map[string]string{}
	for _, imp := range p.Imports {
		if i := strings.IndexByte(imp, ' '); i > 0 {
			resolve[imp[:i]] = imp
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if v, ok := resolve[path]; ok {
			path = v
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}

	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	// The display path for test variants ("p [p.test]") is not a valid
	// types.Package path; strip the bracket suffix.
	path := p.ImportPath
	if i := strings.IndexByte(path, ' '); i > 0 {
		path = path[:i]
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
	}
	return &Package{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}
