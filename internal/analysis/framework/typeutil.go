package framework

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Small type-query helpers shared by the analyzers. Each answers one
// question the analyzers keep asking of go/types.

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// IsFloat reports whether t's underlying type (or element-through-named
// resolution via Default for untyped constants) is a floating type.
func IsFloat(t types.Type) bool {
	b, ok := types.Default(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// ConstString returns the compile-time string value of e, if e is a
// constant expression (a literal or a declared const).
func ConstString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// IsZeroConst reports whether e is a compile-time numeric constant
// equal to exactly zero. Exact zero is the one float value code may
// compare against directly: it is exactly representable and the score
// pipeline uses it as a "slot unused" sentinel.
func IsZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
	}
	return false
}

// CalleeObj resolves the object a call expression invokes (function,
// method, or builtin), or nil.
func CalleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// ReceiverOf returns the receiver expression of a method-call selector
// (x in x.M(...)), or nil for plain calls.
func ReceiverOf(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}
