// Package analysis assembles the slingvet analyzer suite: the
// project-specific static checks that mechanically enforce this
// repository's determinism, cancellation, and pooling invariants.
// cmd/slingvet drives the suite over package patterns; each analyzer
// lives in its own subpackage with analysistest fixtures.
package analysis

import (
	"sling/internal/analysis/ctxloop"
	"sling/internal/analysis/floateq"
	"sling/internal/analysis/framework"
	"sling/internal/analysis/metriclabel"
	"sling/internal/analysis/noderangeerr"
	"sling/internal/analysis/poolpair"
	"sling/internal/analysis/seededrand"
	"sling/internal/analysis/unsafeconfine"
)

// Suite returns every slingvet analyzer, in stable order.
func Suite() []*framework.Analyzer {
	return []*framework.Analyzer{
		ctxloop.Analyzer,
		floateq.Analyzer,
		metriclabel.Analyzer,
		noderangeerr.Analyzer,
		poolpair.Analyzer,
		seededrand.Analyzer,
		unsafeconfine.Analyzer,
	}
}
