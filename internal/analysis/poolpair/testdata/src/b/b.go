// Package b satisfies the poolpair invariant: every Get is released by
// a deferred Put, a straight-line Put with no return in between, or is
// itself a Get-in-return accessor that hands ownership to the caller.
package b

import "sync"

type scratch struct{ buf []float64 }

var pool = sync.Pool{New: func() any { return new(scratch) }}

func Deferred(n int) int {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	if n < 0 {
		return 0
	}
	return len(s.buf) + n
}

func Straight(n int) int {
	s := pool.Get().(*scratch)
	v := len(s.buf) + n
	pool.Put(s)
	return v
}

// Accessor hands the scratch to the caller, which owns the release —
// the ScratchPool accessor pattern.
func Accessor() *scratch {
	return pool.Get().(*scratch)
}

func Release(s *scratch) {
	pool.Put(s)
}
