// Package a violates the poolpair invariant: an early return sits
// between the pool Get and its Put, leaking the scratch on that path.
package a

import "sync"

type scratch struct{ buf []float64 }

var pool = sync.Pool{New: func() any { return new(scratch) }}

func Leaky(n int) int {
	s := pool.Get().(*scratch) // want `Get from pool is not released on every path`
	if n < 0 {
		return 0
	}
	v := len(s.buf) + n
	pool.Put(s)
	return v
}

func NeverPut(n int) int {
	s := pool.Get().(*scratch) // want `Get from pool is not released on every path`
	return len(s.buf) + n
}
