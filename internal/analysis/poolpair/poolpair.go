// Package poolpair flags pool Gets whose Put can be skipped by an
// early return.
//
// Invariant: query scratch comes from sync.Pools (core.ScratchPool,
// core.DiskScratchPool, the dynamic layer's estimator pool) so that
// serving runs at arbitrary concurrency without per-call allocation.
// A Get without a guaranteed Put does not crash — sync.Pool tolerates
// losses — but it silently re-allocates scratch on exactly the paths
// that are hardest to exercise (the error returns PR 5 threaded through
// every backend), which defeats the pool under sustained error load
// and shows up only as allocation noise in production profiles.
//
// The check, per function: every Get-like call whose result is bound
// to a variable must be released either by a deferred Put, or by a Put
// with NO return statement lexically between the Get and the Put. The
// lexical rule is a sound approximation of "Put on every path" for the
// straight-line shape all repository pool code uses: if an early
// `return` (usually `if err != nil { return ... }`) sits between Get
// and Put, the scratch leaks on that path and the analyzer says so;
// the fix is `defer`. A Get inside a return statement is exempt — that
// is the accessor shape (`return p.scratch.Get().(*T)`) which hands
// ownership to the caller.
//
// Recognized pairs:
//
//	sync.Pool:            Get        -> Put        (same receiver)
//	core.ScratchPool:     Scratch    -> PutScratch
//	                      Source     -> PutSource
//	                      Vector     -> PutVector
package poolpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"sling/internal/analysis/framework"
)

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name: "poolpair",
	Doc:  "pool Get must be released by a deferred Put or a Put no return can skip; a leak on an error path defeats scratch pooling",
	Run:  run,
}

// putName maps a Get-like method name to its Put counterpart.
var putName = map[string]string{
	"Get":     "Put",
	"Scratch": "PutScratch",
	"Source":  "PutSource",
	"Vector":  "PutVector",
}

func run(pass *framework.Pass) error {
	pass.WalkStack(func(n ast.Node, stack []ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body != nil {
			checkFunc(pass, body)
		}
		return true
	})
	return nil
}

// event is one Get, Put, deferred Put, or return inside a function
// body, in lexical order.
type event struct {
	pos      token.Pos
	end      token.Pos
	kind     string // "get", "put", "deferput", "return"
	key      string // receiver + method pair identity, for get/put
	name     string // original method name, for reporting
	inReturn bool   // gets only: inside a return statement
}

func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	var events []event
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch v := n.(type) {
		case *ast.FuncLit:
			// Nested literals are separate functions with their own
			// Get/Put discipline; run checks them independently.
			return false
		case *ast.ReturnStmt:
			events = append(events, event{pos: v.Pos(), end: v.End(), kind: "return"})
		case *ast.CallExpr:
			if ev, ok := classify(pass.TypesInfo, v); ok {
				ev.inReturn = inside[*ast.ReturnStmt](stack)
				if ev.kind == "put" && inside[*ast.DeferStmt](stack) {
					ev.kind = "deferput"
				}
				events = append(events, ev)
			}
		}
		stack = append(stack, n)
		return true
	})

	for i, g := range events {
		if g.kind != "get" || g.inReturn {
			continue
		}
		released := false
		for _, e := range events[i+1:] {
			if e.key != g.key {
				continue
			}
			if e.kind == "deferput" {
				released = true
				break
			}
			if e.kind == "put" && !returnBetween(events, g.end, e.pos) {
				released = true
				break
			}
		}
		// A deferred Put registered before the Get (defer runs at
		// function exit regardless of registration order relative to
		// the Get, and the repo idiom is Get-then-defer) still releases.
		for _, e := range events[:i] {
			if e.key == g.key && e.kind == "deferput" {
				released = true
			}
		}
		if !released {
			pass.Reportf(g.pos,
				"%s from pool is not released on every path: defer the matching %s (an early return between Get and Put leaks the scratch)",
				g.name, putName[g.name])
		}
	}
}

// returnBetween reports whether any return statement starts strictly
// between lo and hi.
func returnBetween(events []event, lo, hi token.Pos) bool {
	for _, e := range events {
		if e.kind == "return" && e.pos > lo && e.pos < hi {
			return true
		}
	}
	return false
}

// inside reports whether the walk stack contains a node of type T.
func inside[T ast.Node](stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(T); ok {
			return true
		}
	}
	return false
}

// classify recognizes Get-like and Put-like pool method calls and
// assigns them a pairing key of the form "<receiver expr>.<pair>".
func classify(info *types.Info, call *ast.CallExpr) (event, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return event{}, false
	}
	name := sel.Sel.Name
	var pair, kind string
	switch name {
	case "Get", "Scratch", "Source", "Vector":
		kind = "get"
		pair = putName[name]
	case "Put", "PutScratch", "PutSource", "PutVector":
		kind = "put"
		pair = name
	default:
		return event{}, false
	}
	recv := info.TypeOf(sel.X)
	if recv == nil || !poolReceiver(recv, name) {
		return event{}, false
	}
	return event{
		pos:  call.Pos(),
		end:  call.End(),
		kind: kind,
		key:  types.ExprString(sel.X) + "." + pair,
		name: name,
	}, true
}

// poolReceiver reports whether the method receiver is one of the pool
// types the pairing discipline applies to. sync.Pool pairs Get/Put;
// the scratch pools pair their named getter/putter sets.
func poolReceiver(t types.Type, method string) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	switch {
	case pkg == "sync" && obj.Name() == "Pool":
		return method == "Get" || method == "Put"
	case obj.Name() == "ScratchPool" || obj.Name() == "DiskScratchPool":
		return method != "Get" && method != "Put"
	}
	return false
}
