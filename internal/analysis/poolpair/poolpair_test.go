package poolpair_test

import (
	"testing"

	"sling/internal/analysis/analysistest"
	"sling/internal/analysis/poolpair"
)

func TestFlagged(t *testing.T) {
	analysistest.Run(t, poolpair.Analyzer, "./testdata/src/a")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, poolpair.Analyzer, "./testdata/src/b")
}
