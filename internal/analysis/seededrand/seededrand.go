// Package seededrand forbids math/rand outside sling/internal/rng.
//
// Invariant: every random draw in this repository flows from a seeded
// sling/internal/rng.Source. Index construction (Figure 5 of the paper:
// ten byte-identical rebuilds from one seed), the dynamic layer's
// coupled Monte Carlo estimates, workload generation, and the
// conformance matrix all depend on bitwise-reproducible randomness —
// and on there being exactly ONE generator, so a rebuild's byte
// identity can never depend on which of two libraries a code path
// happened to pick, or on math/rand's global-state sharing between
// goroutines. Even a seeded rand.New(rand.NewSource(s)) is drift: its
// stream differs from rng.New(s), so a path that switches generator
// silently changes every downstream byte.
package seededrand

import (
	"strconv"

	"sling/internal/analysis/framework"
)

// rngPath is the one package allowed to touch alternative generators
// (it implements the sanctioned one).
const rngPath = "sling/internal/rng"

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name: "seededrand",
	Doc:  "forbid math/rand outside internal/rng: all randomness must flow from a seeded rng.Source so index builds stay bitwise-reproducible",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if pkgAllowed(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch path {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(),
					"import of %s is forbidden outside %s: draw randomness from a seeded rng.Source (sling/internal/rng) so builds stay bitwise-reproducible", path, rngPath)
			}
		}
	}
	return nil
}

// pkgAllowed exempts the rng package itself (and its in-package
// tests, which load as the same import path).
func pkgAllowed(path string) bool {
	return path == rngPath
}
