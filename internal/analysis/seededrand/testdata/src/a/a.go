// Package a violates the seededrand invariant: it draws from the
// global-rand packages instead of sling/internal/rng.
package a

import (
	"math/rand"           // want `import of math/rand is forbidden outside sling/internal/rng`
	randv2 "math/rand/v2" // want `import of math/rand/v2 is forbidden outside sling/internal/rng`
)

func Shuffled(n int) []int {
	r := rand.New(rand.NewSource(1))
	out := r.Perm(n)
	out[0] = int(randv2.Uint64())
	return out
}
