// Package b satisfies the seededrand invariant: randomness comes from
// the repository's seeded source, so a fixed seed reproduces the draw.
package b

import "sling/internal/rng"

func Shuffled(n int) []int {
	r := rng.New(1)
	out := make([]int, n)
	r.Perm(out)
	return out
}
