package seededrand_test

import (
	"testing"

	"sling/internal/analysis/analysistest"
	"sling/internal/analysis/seededrand"
)

func TestFlagged(t *testing.T) {
	analysistest.Run(t, seededrand.Analyzer, "./testdata/src/a")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, seededrand.Analyzer, "./testdata/src/b")
}
