package unsafeconfine_test

import (
	"testing"

	"sling/internal/analysis/analysistest"
	"sling/internal/analysis/unsafeconfine"
)

func TestFlagged(t *testing.T) {
	analysistest.Run(t, unsafeconfine.Analyzer, "./testdata/src/a")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, unsafeconfine.Analyzer, "./testdata/src/b")
}
