// Package a violates the unsafeconfine invariant: it reinterprets
// bytes with unsafe directly instead of going through the audited
// views in sling/internal/mmap.
package a

import (
	"unsafe" // want `import of unsafe is forbidden outside sling/internal/mmap`
)

func AsU64(b []byte) []uint64 {
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}
