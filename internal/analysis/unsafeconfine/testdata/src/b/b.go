// Package b satisfies the unsafeconfine invariant: byte decoding goes
// through encoding/binary, no reinterpretation needed.
package b

import "encoding/binary"

func AsU64(b []byte) []uint64 {
	out := make([]uint64, 0, len(b)/8)
	for i := 0; i+8 <= len(b); i += 8 {
		out = append(out, binary.LittleEndian.Uint64(b[i:]))
	}
	return out
}
