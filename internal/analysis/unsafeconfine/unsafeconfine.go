// Package unsafeconfine forbids the unsafe package outside
// sling/internal/mmap.
//
// Invariant: the zero-copy disk mode reinterprets memory-mapped file
// bytes as []uint64 / []float64 views, and that reinterpretation is
// only sound under conditions internal/mmap checks centrally — host
// little-endianness, 8-byte base alignment, whole-word lengths, and a
// mapping whose lifetime outlives every view. Any other unsafe use
// would re-derive those preconditions ad hoc (or forget one), and a
// missed check surfaces as silent data corruption or a SIGBUS in
// production rather than a compile-time or test failure. Confining the
// import to one audited package keeps the entire unsafe surface
// reviewable in one file.
package unsafeconfine

import (
	"strconv"

	"sling/internal/analysis/framework"
)

// mmapPath is the one package allowed to import unsafe (it implements
// the audited typed-view reinterpretation).
const mmapPath = "sling/internal/mmap"

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name: "unsafeconfine",
	Doc:  "forbid importing unsafe outside internal/mmap: the zero-copy view reinterpretation is only audited there",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if pkgAllowed(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "unsafe" {
				pass.Reportf(imp.Pos(),
					"import of unsafe is forbidden outside %s: put reinterpretation behind its audited typed views instead", mmapPath)
			}
		}
	}
	return nil
}

// pkgAllowed exempts the mmap package itself (and its in-package
// tests, which load as the same import path).
func pkgAllowed(path string) bool {
	return path == mmapPath
}
