// Package a violates the metriclabel invariant four ways: a
// Sprintf-built instrument name, a family re-registered as a different
// kind, a dynamic label key, and two different label-key shapes on one
// family.
package a

import (
	"fmt"

	"sling/internal/metrics"
)

func Register(r *metrics.Registry, graphID string) {
	r.Counter(fmt.Sprintf("requests_%s", graphID), "per-graph requests") // want `name must be a constant string`
	r.Counter("hits_total", "cache hits")
	r.Gauge("hits_total", "cache hits")                      // want `already registered as a counter`
	r.Gauge("depth", "queue depth", metrics.L(graphID, "x")) // want `constant key`
	r.Counter("queries_total", "queries served", metrics.L("graph", graphID))
	r.Counter("queries_total", "queries served", metrics.L("backend", graphID)) // want `one labeled shape per family`
}
