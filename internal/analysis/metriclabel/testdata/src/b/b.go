// Package b satisfies the metriclabel invariant: constant names (a
// literal or declared const), constant label keys, one kind and help
// per family, and the aggregate-plus-per-graph pattern where an
// unlabeled series coexists with one labeled shape.
package b

import "sling/internal/metrics"

const reqName = "requests_total"

func Register(r *metrics.Registry, graphID string) {
	r.Counter(reqName, "total requests")
	r.Counter(reqName, "total requests", metrics.L("graph", graphID))
	r.Histogram("latency_seconds", "query latency", []float64{0.001, 0.01, 0.1}, metrics.L("graph", graphID))
	r.GaugeFunc("resident_graphs", "graphs resident in the catalog", func() float64 { return 1 })
	r.Gauge("build_info", "build metadata", metrics.Label{Key: "version", Value: graphID})
}
