// Package metriclabel checks metrics-registry registrations.
//
// Invariant: the exposition schema is part of the serving contract —
// dashboards scrape stable instrument names and the golden exposition
// tests (internal/server, internal/catalog) pin exact name/label sets.
// That only holds if every registration names its instrument with a
// compile-time constant (a literal or a declared const; never a
// Sprintf — dynamic dimensions belong in label VALUES), labels its
// series with constant keys, and registers each family with one kind,
// one help string, and one label-key shape.
//
// Checks, per package (test files are exempt; tests build throwaway
// registries on purpose):
//
//   - the name and help arguments of Registry.Counter / Gauge /
//     GaugeFunc / Histogram must be constant strings;
//   - every label argument must be metrics.L(k, v) or a Label literal
//     with a constant key (values may be dynamic: that is what labels
//     are for);
//   - a family name must not be registered with two different kinds,
//     two different help strings, or two different non-empty label-key
//     sequences. An unlabeled series may coexist with one labeled
//     shape — the catalog's aggregate-plus-per-graph pattern.
package metriclabel

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sling/internal/analysis/framework"
)

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name: "metriclabel",
	Doc:  "metrics instruments must register with constant names and label keys, unique kind/help per family, and one labeled shape per family",
	Run:  run,
}

// metricsPath is the registry package the check binds to.
const metricsPath = "sling/internal/metrics"

// methodKind maps registration methods to their instrument kind and
// the argument index where labels start.
var methodKind = map[string]struct {
	kind       string
	labelStart int
}{
	"Counter":   {"counter", 2},
	"Gauge":     {"gauge", 2},
	"GaugeFunc": {"gauge", 3},
	"Histogram": {"histogram", 3},
}

// family accumulates what one instrument name has been registered as.
type family struct {
	pos       token.Pos
	kind      string
	help      string
	labelKeys []string // first non-empty key shape seen
	hasKeys   bool
}

func run(pass *framework.Pass) error {
	families := map[string]*family{}
	pass.WalkStack(func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pass.InTestFile(call.Pos()) {
			return false
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		mk, ok := methodKind[sel.Sel.Name]
		if !ok || !isRegistry(pass.TypesInfo.TypeOf(sel.X)) {
			return true
		}
		checkCall(pass, call, sel.Sel.Name, mk.kind, mk.labelStart, families)
		return true
	})
	return nil
}

// isRegistry reports whether t is (a pointer to) metrics.Registry.
func isRegistry(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Path() == metricsPath
}

func checkCall(pass *framework.Pass, call *ast.CallExpr, method, kind string, labelStart int, families map[string]*family) {
	if len(call.Args) < 2 {
		return
	}
	name, nameOK := framework.ConstString(pass.TypesInfo, call.Args[0])
	if !nameOK {
		pass.Reportf(call.Args[0].Pos(),
			"%s name must be a constant string (a literal or declared const); dynamic dimensions belong in label values, not instrument names", method)
		return
	}
	help, helpOK := framework.ConstString(pass.TypesInfo, call.Args[1])
	if !helpOK {
		pass.Reportf(call.Args[1].Pos(),
			"%s help for %q must be a constant string so the exposition schema is stable", method, name)
	}

	var keys []string
	ok := true
	for _, arg := range call.Args[labelStart:] {
		k, kOK := labelKey(pass.TypesInfo, arg)
		if !kOK {
			pass.Reportf(arg.Pos(),
				"label for %q must be metrics.L(key, value) or a Label literal with a constant key", name)
			ok = false
			continue
		}
		keys = append(keys, k)
	}
	if !ok || !helpOK {
		return
	}

	f := families[name]
	if f == nil {
		f = &family{pos: call.Pos(), kind: kind, help: help}
		families[name] = f
	}
	if f.kind != kind {
		pass.Reportf(call.Pos(),
			"instrument %q already registered as a %s (at %s); one kind per family", name, f.kind, pass.Fset.Position(f.pos))
		return
	}
	if f.help != help {
		pass.Reportf(call.Pos(),
			"instrument %q registered with differing help text (%q vs %q at %s); the exposition emits one HELP line per family", name, help, f.help, pass.Fset.Position(f.pos))
	}
	if len(keys) > 0 {
		if !f.hasKeys {
			f.hasKeys = true
			f.labelKeys = keys
		} else if fmt.Sprint(keys) != fmt.Sprint(f.labelKeys) {
			pass.Reportf(call.Pos(),
				"instrument %q registered with label keys [%s] but previously [%s] (at %s); one labeled shape per family keeps cardinality consistent",
				name, strings.Join(keys, ","), strings.Join(f.labelKeys, ","), pass.Fset.Position(f.pos))
		}
	}
}

// labelKey extracts the constant key of a label argument: either
// metrics.L(k, v) or a (possibly &-taken) composite literal with a
// Key field or positional first element.
func labelKey(info *types.Info, arg ast.Expr) (string, bool) {
	switch v := ast.Unparen(arg).(type) {
	case *ast.CallExpr:
		obj := framework.CalleeObj(info, v)
		if obj == nil || obj.Name() != "L" || obj.Pkg() == nil || obj.Pkg().Path() != metricsPath || len(v.Args) != 2 {
			return "", false
		}
		return framework.ConstString(info, v.Args[0])
	case *ast.CompositeLit:
		if len(v.Elts) == 0 {
			return "", false
		}
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Key" {
					return framework.ConstString(info, kv.Value)
				}
				continue
			}
			// Positional literal: Key is the first element.
			return framework.ConstString(info, el)
		}
		return "", false
	case *ast.Ident, *ast.SelectorExpr:
		// A label passed through a variable: accept only if its key is
		// not determinable — be permissive here; shape consistency is
		// checked where literals are used. Variables are rare (the
		// catalog builds gl := metrics.L("graph", id) once); treat as
		// an opaque single key named after the expression.
		return types.ExprString(ast.Unparen(arg)), true
	}
	return "", false
}
