package metriclabel_test

import (
	"testing"

	"sling/internal/analysis/analysistest"
	"sling/internal/analysis/metriclabel"
)

func TestFlagged(t *testing.T) {
	analysistest.Run(t, metriclabel.Analyzer, "./testdata/src/a")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, metriclabel.Analyzer, "./testdata/src/b")
}
