// Package floateq forbids exact equality on floating-point scores in
// non-test code.
//
// Invariant: every score this repository produces is an estimate with
// an additive-eps guarantee (|s̃ − s| ≤ ε, Theorem 1), so two
// independently computed scores that are "the same" are only the same
// to within tolerance — comparing them with == or != encodes a
// decision that is correct only by accident of summation order. The
// conformance matrix compares through eval's tolerance helpers
// (eval.ApproxEqual and friends in sling/internal/eval); production
// decisions must do the same.
//
// Two float comparisons ARE legitimate and exempt:
//
//   - comparison against the exact constant 0 (or any exact numeric
//     constant written as 0): zero is exactly representable and the
//     score pipeline uses it as a "slot unused" sentinel
//     (singlesource.go's propagation lists depend on it);
//
//   - the deterministic sort tie-break idiom, where `a != b` guards an
//     ordering decision on the same two values:
//
//     if a.Score != b.Score { return a.Score > b.Score }
//     return a.Node < b.Node
//
//     Exact comparison is the POINT there — the ordering must be a
//     total order over the actual bit patterns or TopK results would
//     not be byte-identical across runs.
//
// Anything else wants eval.ApproxEqual(x, y, tol) or an explicit
// |x−y| ≤ tol, or a //slingvet:ignore floateq with a reason.
// Test files are out of scope: tests assert bitwise equivalence on
// purpose (the conformance matrix is built on it).
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"

	"sling/internal/analysis/framework"
)

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name: "floateq",
	Doc:  "forbid == / != on float64 score values outside tests; scores carry an additive-eps guarantee, compare with eval's tolerance helpers",
	Run:  run,
}

func run(pass *framework.Pass) error {
	pass.WalkStack(func(n ast.Node, stack []ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if be.Op != token.EQL && be.Op != token.NEQ {
			return true
		}
		if pass.InTestFile(be.Pos()) {
			return true
		}
		tx, ty := pass.TypesInfo.TypeOf(be.X), pass.TypesInfo.TypeOf(be.Y)
		if tx == nil || ty == nil || !framework.IsFloat(tx) || !framework.IsFloat(ty) {
			return true
		}
		if framework.IsZeroConst(pass.TypesInfo, be.X) || framework.IsZeroConst(pass.TypesInfo, be.Y) {
			return true
		}
		if isTieBreak(be, stack) {
			return true
		}
		pass.Reportf(be.Pos(),
			"exact %s on float64 scores ignores the additive-eps guarantee; compare with a tolerance (internal/eval.ApproxEqual) or suppress with //slingvet:ignore floateq <reason>", be.Op)
		return true
	})
	return nil
}

// isTieBreak recognizes the deterministic-ordering idiom: the
// comparison is the condition of an `if` whose body is a single return
// of an ordering comparison (< or >) over the SAME two expressions.
func isTieBreak(be *ast.BinaryExpr, stack []ast.Node) bool {
	if be.Op != token.NEQ {
		return false
	}
	if len(stack) == 0 {
		return false
	}
	ifStmt, ok := stack[len(stack)-1].(*ast.IfStmt)
	if !ok || ast.Unparen(ifStmt.Cond) != be || len(ifStmt.Body.List) != 1 {
		return false
	}
	ret, ok := ifStmt.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	ord, ok := ast.Unparen(ret.Results[0]).(*ast.BinaryExpr)
	if !ok || (ord.Op != token.LSS && ord.Op != token.GTR) {
		return false
	}
	// Same two operands, in either order.
	bx, by := types.ExprString(be.X), types.ExprString(be.Y)
	ox, oy := types.ExprString(ord.X), types.ExprString(ord.Y)
	return (bx == ox && by == oy) || (bx == oy && by == ox)
}
