package floateq_test

import (
	"testing"

	"sling/internal/analysis/analysistest"
	"sling/internal/analysis/floateq"
)

func TestFlagged(t *testing.T) {
	analysistest.Run(t, floateq.Analyzer, "./testdata/src/a")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, floateq.Analyzer, "./testdata/src/b")
}
