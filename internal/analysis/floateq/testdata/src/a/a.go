// Package a violates the floateq invariant: exact equality on float64
// score values, which the additive-eps guarantee never promises.
package a

func Same(a, b float64) bool {
	return a == b // want `exact == on float64 scores`
}

func CountChanges(scores []float64) int {
	n := 0
	for i := 1; i < len(scores); i++ {
		if scores[i] != scores[i-1] { // want `exact != on float64 scores`
			n++
		}
	}
	return n
}
