// Package b satisfies the floateq invariant: comparisons against the
// exact-zero sentinel, the sort tie-break idiom, and tolerance-based
// equality are all accepted.
package b

import "math"

// IsUnset checks the exact-zero sentinel — zero means "never written",
// not a computed score, so exact comparison is the point.
func IsUnset(s float64) bool {
	return s == 0
}

// Less is the deterministic sort comparator: the tie-break idiom
// (exact != guarding an ordering on the same operands) is exempt.
func Less(a, b float64) bool {
	if a != b {
		return a < b
	}
	return false
}

// Close compares with a tolerance, the way score code should.
func Close(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}
