package conformance

import (
	"context"
	"strings"
	"testing"

	"sling"
	"sling/internal/workload"
)

// edgeCaseSet builds every backend (static group + HTTP modes + a clean
// dynamic index) over a hand-made graph with an isolated node, so query
// edge cases hit all serving paths through the one adapter.
func edgeCaseSet(t *testing.T) (*sling.Graph, []Backend, func()) {
	t.Helper()
	b := sling.NewGraphBuilder(10)
	for _, e := range [][2]sling.NodeID{
		{2, 0}, {3, 0}, {2, 1}, {3, 1}, {4, 2}, {4, 3},
		{5, 4}, {6, 5}, {7, 6}, {0, 7}, {1, 7},
	} {
		b.AddEdge(e[0], e[1])
	}
	// Nodes 8 and 9 stay isolated.
	g := b.Build()
	opt := &sling.Options{Eps: 0.1, Seed: 11}

	set, err := NewStaticSet(g, opt, t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	dx, err := sling.NewDynamic(g, nil, sling.WithOptions(*opt))
	if err != nil {
		set.Close()
		t.Fatal(err)
	}
	backends := append(set.All(), NamedBackend(dx, "dynamic"))
	return g, backends, func() {
		dx.Close()
		set.Close()
	}
}

// TestTopKEdgeCasesAcrossBackends drives k ≤ 0, k > n, zero/negative
// limits, and isolated-node queries through every backend. Library
// backends answer degenerate k with empty results; HTTP modes reject
// invalid parameters with 400 — both contracts are pinned here.
func TestTopKEdgeCasesAcrossBackends(t *testing.T) {
	g, backends, cleanup := edgeCaseSet(t)
	defer cleanup()
	n := g.NumNodes()
	ctx := context.Background()
	const isolated = sling.NodeID(9)

	for _, be := range backends {
		be := be
		_, isHTTP := be.(*httpBackend)
		t.Run(be.Name(), func(t *testing.T) {
			// k <= 0 and negative limit.
			for _, k := range []int{0, -3} {
				top, err := be.TopK(ctx, 2, k)
				if isHTTP {
					he, ok := err.(*HTTPError)
					if !ok || he.Code != 400 {
						t.Errorf("TopK(k=%d): want HTTP 400, got %v, err %v", k, top, err)
					}
				} else if err != nil || len(top) != 0 {
					t.Errorf("TopK(k=%d) = %v, err %v; want empty", k, top, err)
				}
			}
			if top, err := be.SourceTop(ctx, 2, -1); isHTTP {
				if he, ok := err.(*HTTPError); !ok || he.Code != 400 {
					t.Errorf("SourceTop(limit=-1): want HTTP 400, got %v, err %v", top, err)
				}
			} else if err != nil || len(top) != 0 {
				t.Errorf("SourceTop(limit=-1) = %v, err %v; want empty", top, err)
			}
			// limit = 0 is valid everywhere: an empty selection.
			if top, err := be.SourceTop(ctx, 2, 0); err != nil || len(top) != 0 {
				t.Errorf("SourceTop(limit=0) = %v, err %v; want empty", top, err)
			}

			// k > n must behave like k = n: every positive-score node,
			// never an out-of-range panic or truncation.
			row, err := be.SingleSource(ctx, 2, nil)
			if err != nil {
				t.Fatal(err)
			}
			big, err := be.TopK(ctx, 2, 10*n)
			if err != nil {
				t.Fatalf("TopK(k=%d): %v", 10*n, err)
			}
			positives := 0
			for v, s := range row {
				if s > 0 && sling.NodeID(v) != 2 {
					positives++
				}
			}
			if len(big) != positives {
				t.Errorf("TopK(k>n) returned %d entries, want %d positive scores", len(big), positives)
			}
			for i := 1; i < len(big); i++ {
				if big[i].Score > big[i-1].Score {
					t.Errorf("TopK(k>n) not sorted at %d", i)
				}
			}

			// Isolated node: s(u,u) = 1 exactly, everything else 0, so
			// top-k excludes all and source-top returns just the node.
			iso, err := be.SingleSource(ctx, isolated, nil)
			if err != nil {
				t.Fatal(err)
			}
			for v, s := range iso {
				want := 0.0
				if sling.NodeID(v) == isolated {
					want = 1.0
				}
				if s != want {
					t.Errorf("isolated row[%d] = %v, want %v", v, s, want)
				}
			}
			if top, err := be.TopK(ctx, isolated, 3); err != nil || len(top) != 0 {
				t.Errorf("TopK(isolated) = %v, err %v; want empty", top, err)
			}
			st, err := be.SourceTop(ctx, isolated, 3)
			if err != nil || len(st) != 1 || st[0].Node != isolated || st[0].Score != 1 {
				t.Errorf("SourceTop(isolated) = %v, err %v; want [{%d 1}]", st, err, isolated)
			}
		})
	}
}

// TestEdgeListGraphAcrossBackends parses a deliberately messy edge list
// (CRLF line endings, both comment styles, blank lines, duplicate edges,
// a self-loop, out-of-order labels) and runs the full differential cell
// over it: every backend bitwise-consistent and within ε of exact
// SimRank on the parsed graph.
func TestEdgeListGraphAcrossBackends(t *testing.T) {
	const input = "# comment header\r\n" +
		"% other comment style\n" +
		"\n" +
		"100 7\r\n" +
		"7 100\n" +
		"100 7\n" + // duplicate edge
		"42 42\n" + // self-loop
		"7 42\t\n" +
		"  100   42  \n" +
		"5 100\n" +
		"5 7\n"
	g, labels, err := sling.LoadEdgeList(strings.NewReader(input), false)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int64{100, 7, 42, 5}; len(labels) != len(want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	} else {
		for i := range want {
			if labels[i] != want[i] {
				t.Fatalf("labels = %v, want %v", labels, want)
			}
		}
	}
	// 8 lines parse to edges, one is a duplicate.
	if g.NumEdges() != 7 {
		t.Fatalf("parsed %d edges, want 7", g.NumEdges())
	}

	fam := workload.Family{Name: "edgelist", Gen: func(int, uint64) *sling.Graph { return g }}
	rep, err := Run(Options{
		Families: []workload.Family{fam},
		Configs:  []Config{{C: 0.6, Eps: 0.1}},
		Dir:      t.TempDir(),
		HTTP:     true,
		Dynamic:  true,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if !c.Pass {
			t.Errorf("%s/%s: %v", c.Family, c.Backend, c.Violations)
		}
	}
	if rep.MinHeadroom <= 0 {
		t.Fatalf("headroom %v not positive", rep.MinHeadroom)
	}
}
