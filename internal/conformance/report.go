package conformance

import (
	"encoding/json"
	"io"
	"math"
	"os"
	"sort"
)

// WriteJSON emits the full report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// FamilyBench aggregates one family's cells into the benchmark
// trajectory's shape: how expensive the family is to index and query,
// and how close it comes to the ε guarantee.
type FamilyBench struct {
	Family string `json:"family"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	// BuildMS is the mean in-memory index build time across configs.
	BuildMS float64 `json:"build_ms"`
	// AvgQueryUS is the mean per-answer latency across all backends and
	// configs (HTTP modes included, so it tracks the serving stack).
	AvgQueryUS float64 `json:"avg_query_us"`
	// MaxErr and MinHeadroom are the family's worst observed additive
	// error and tightest ε margin across every cell.
	MaxErr      float64 `json:"max_err"`
	MinHeadroom float64 `json:"min_eps_headroom"`
	Cells       int     `json:"cells"`
	Failures    int     `json:"failures"`
}

// Bench is the BENCH_conformance.json document: per-family aggregates
// plus the run's global outcome, emitted by `slingtool conformance` and
// uploaded as a CI artifact.
type Bench struct {
	Seed        uint64        `json:"seed"`
	Configs     []Config      `json:"configs"`
	Backends    []string      `json:"backends"`
	Families    []FamilyBench `json:"families"`
	WorstErr    float64       `json:"worst_err"`
	MinHeadroom float64       `json:"min_eps_headroom"`
	AllPass     bool          `json:"all_pass"`
	ElapsedMS   float64       `json:"elapsed_ms"`
}

// Bench aggregates the report per family.
func (r *Report) Bench() Bench {
	byFam := map[string]*FamilyBench{}
	order := []string{}
	builds := map[string]int{}
	for _, c := range r.Cells {
		fb, ok := byFam[c.Family]
		if !ok {
			fb = &FamilyBench{Family: c.Family, N: c.N, M: c.M, MinHeadroom: math.Inf(1)}
			byFam[c.Family] = fb
			order = append(order, c.Family)
		}
		fb.Cells++
		if !c.Pass {
			fb.Failures++
		}
		if c.Backend == "memory" {
			fb.BuildMS += c.BuildMS
			builds[c.Family]++
		}
		fb.AvgQueryUS += c.AvgQueryUS
		if c.MaxErr > fb.MaxErr {
			fb.MaxErr = c.MaxErr
		}
		if c.Headroom < fb.MinHeadroom {
			fb.MinHeadroom = c.Headroom
		}
	}
	sort.Strings(order)
	b := Bench{
		Seed: r.Seed, Configs: r.Configs, Backends: r.Backends,
		WorstErr: r.WorstErr, MinHeadroom: r.MinHeadroom,
		AllPass: r.AllPass, ElapsedMS: r.ElapsedMS,
	}
	for _, name := range order {
		fb := byFam[name]
		if n := builds[name]; n > 0 {
			fb.BuildMS /= float64(n)
		}
		fb.AvgQueryUS /= float64(fb.Cells)
		if math.IsInf(fb.MinHeadroom, 1) {
			fb.MinHeadroom = 0
		}
		b.Families = append(b.Families, *fb)
	}
	return b
}

// SaveBench writes the Bench document to path as indented JSON.
func (r *Report) SaveBench(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Bench()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
