package conformance

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"sling"
	"sling/internal/workload"
)

// matrixOptions returns the time-budgeted test matrix: the full family
// × config grid in normal mode, two cheap families at one config under
// -short or the race detector (where instrumentation makes the full
// sweep ~15x slower; the CI conformance job runs it un-instrumented).
func matrixOptions(t *testing.T) Options {
	t.Helper()
	names := []string{"er", "powerlaw", "grid", "star", "bipartite", "dag", "disconnected", "degenerate"}
	configs := DefaultConfigs()
	if testing.Short() || raceEnabled {
		names = []string{"er", "degenerate"}
		configs = []Config{{C: 0.6, Eps: 0.1}}
	}
	fams, err := workload.ParseFamilies(names)
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		Families: fams,
		Configs:  configs,
		Dir:      t.TempDir(),
		HTTP:     true,
		Dynamic:  true,
		Logf:     t.Logf,
	}
}

// TestMatrix is the conformance gate: every backend × family × config
// cell must hold the ε guarantee, the invariants, and bitwise
// cross-backend equivalence.
func TestMatrix(t *testing.T) {
	o := matrixOptions(t)
	rep, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if !c.Pass {
			t.Errorf("%s/%s (c=%g eps=%g): %v", c.Family, c.Backend, c.C, c.Eps, c.Violations)
		}
	}
	if !rep.AllPass {
		t.Fatalf("%d of %d cells failed", rep.Failures, len(rep.Cells))
	}
	// The matrix must really cover what it claims: all backend modes on
	// every (family, config) cell.
	wantBackends := []string{
		"memory", "disk", "ooc", "dynamic-stale", "dynamic-rebuilt",
		"dynamic-restored-stale", "dynamic-restored",
		"http-memory", "http-disk", "http-dynamic",
		"sharded", "http-sharded",
	}
	if sling.MmapSupported() {
		wantBackends = append(wantBackends, "mmap")
	}
	sort.Strings(wantBackends)
	if len(rep.Backends) != len(wantBackends) {
		t.Fatalf("backends covered: %v, want %v", rep.Backends, wantBackends)
	}
	for i, name := range wantBackends {
		if rep.Backends[i] != name {
			t.Fatalf("backends covered: %v, want %v", rep.Backends, wantBackends)
		}
	}
	wantCells := len(o.Families) * len(o.Configs) * len(wantBackends)
	if len(rep.Cells) != wantCells {
		t.Fatalf("matrix has %d cells, want %d", len(rep.Cells), wantCells)
	}
	if rep.MinHeadroom <= 0 {
		t.Fatalf("min eps headroom %.5f not positive", rep.MinHeadroom)
	}
}

func TestRunValidatesOptions(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Fatal("missing Dir accepted")
	}
}

// TestReportAndBenchShape pins the JSON surface the CI artifact and any
// downstream tooling consume.
func TestReportAndBenchShape(t *testing.T) {
	fams, _ := workload.ParseFamilies([]string{"er"})
	rep, err := Run(Options{
		Families: fams,
		Configs:  []Config{{C: 0.6, Eps: 0.1}},
		Dir:      t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Cells []struct {
			Family     string    `json:"family"`
			Backend    string    `json:"backend"`
			MaxErr     *float64  `json:"max_err"`
			Headroom   *float64  `json:"eps_headroom"`
			Violations *[]string `json:"violations"`
			Pass       *bool     `json:"pass"`
		} `json:"cells"`
		AllPass *bool `json:"all_pass"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.AllPass == nil || len(decoded.Cells) == 0 {
		t.Fatalf("report JSON missing cells/all_pass: %s", buf.String())
	}
	for _, c := range decoded.Cells {
		if c.MaxErr == nil || c.Headroom == nil || c.Violations == nil || c.Pass == nil {
			t.Fatalf("cell %s/%s missing required fields", c.Family, c.Backend)
		}
	}

	bench := rep.Bench()
	if len(bench.Families) != 1 || bench.Families[0].Family != "er" {
		t.Fatalf("bench families: %+v", bench.Families)
	}
	fb := bench.Families[0]
	if fb.BuildMS <= 0 || fb.AvgQueryUS <= 0 || fb.Cells == 0 {
		t.Fatalf("bench aggregates not populated: %+v", fb)
	}
	if !bench.AllPass || bench.MinHeadroom <= 0 {
		t.Fatalf("bench outcome: %+v", bench)
	}
}
