// Package conformance is the differential-testing subsystem: it drives
// every serving backend of this repository — the in-memory index, the
// disk-resident index over a round-tripped SLIX file, the out-of-core
// build, the dynamic (updatable) index pre- and post-rebuild, and the
// HTTP server in memory/disk/dynamic mode — through the one sling.Querier
// interface, over a matrix of graph families × (c, ε) configurations ×
// deterministic seeds, and checks every cell against exact power-method
// SimRank.
//
// Each cell asserts the paper's headline guarantee and the properties
// the backends promise each other:
//
//   - additive accuracy: |s̃(u,v) − s(u,v)| ≤ ε for single-pair,
//     single-source, top-k and batch answers (Theorem 1);
//   - cross-backend equivalence: backends sharing one index answer
//     bitwise-identically (disk, out-of-core, and the HTTP modes against
//     the in-memory reference; the rebuilt dynamic index against a fresh
//     build of the mutated graph, modulo its documented [0,1] clamp);
//   - invariants: symmetry, s̃(u,u) ≈ 1, score range, and top-k/
//     source-top selections consistent with the backend's own
//     single-source row;
//   - the Querier contract: identical ErrNodeRange for bad nodes,
//     identical degenerate-k results, pre-cancelled contexts observed
//     before any work (contract_test.go).
//
// The matrix runs three ways: `go test ./internal/conformance`
// (time-budgeted subset), `slingtool conformance` (full matrix, JSON
// report), and the CI conformance job.
package conformance

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"

	"sling"
	"sling/internal/core"
	"sling/internal/server"
)

// Backend is a sling.Querier with a report label. The facade types
// implement Querier natively, so library backends are the facade values
// themselves behind a name; only the clamp view and the HTTP wire
// adapter carry real code.
type Backend interface {
	sling.Querier
	// Name identifies the backend in reports ("memory", "disk", "ooc",
	// "http-memory", ...). It may differ from Meta().Name when one kind
	// serves several roles (e.g. "ooc" is a memory index built
	// out-of-core).
	Name() string
}

// named labels a Querier for reports. Close passes through, but the
// harness owns every backend's lifecycle explicitly (StaticSet.closers,
// the dynamic index's Close), so named never closes on its behalf.
type named struct {
	sling.Querier
	name string
}

func (n named) Name() string { return n.name }
func (n named) Close() error { return nil }

// NamedBackend adapts any Querier into a report-labelled Backend.
func NamedBackend(q sling.Querier, name string) Backend { return named{Querier: q, name: name} }

// clampedBackend views an unclamped backend through the dynamic layer's
// [0, 1] clamp, recomputing top-k/source-top from the clamped row so
// selection ties break identically. It is the bitwise reference for the
// rebuilt dynamic index (which equals clamp01 of a fresh build).
type clampedBackend struct {
	inner Backend
	topk  func(scores []float64, k int, skip sling.NodeID) []sling.Scored
}

func newClampedBackend(inner Backend) clampedBackend {
	return clampedBackend{inner: inner, topk: core.SelectTop}
}

func clamp01(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

func (b clampedBackend) Name() string { return b.inner.Name() + "-clamped" }
func (b clampedBackend) Meta() sling.QuerierMeta {
	m := b.inner.Meta()
	m.Clamped = true
	return m
}
func (b clampedBackend) SimRank(ctx context.Context, u, v sling.NodeID) (float64, error) {
	s, err := b.inner.SimRank(ctx, u, v)
	return clamp01(s), err
}
func (b clampedBackend) SingleSource(ctx context.Context, u sling.NodeID, out []float64) ([]float64, error) {
	row, err := b.inner.SingleSource(ctx, u, out)
	for i, s := range row {
		row[i] = clamp01(s)
	}
	return row, err
}
func (b clampedBackend) SingleSourceBatch(ctx context.Context, us []sling.NodeID) ([][]float64, error) {
	rows, err := b.inner.SingleSourceBatch(ctx, us)
	for _, row := range rows {
		for i, s := range row {
			row[i] = clamp01(s)
		}
	}
	return rows, err
}
func (b clampedBackend) TopK(ctx context.Context, u sling.NodeID, k int) ([]sling.Scored, error) {
	row, err := b.SingleSource(ctx, u, nil)
	if err != nil {
		return nil, err
	}
	return b.topk(row, k, u), nil
}
func (b clampedBackend) SourceTop(ctx context.Context, u sling.NodeID, limit int) ([]sling.Scored, error) {
	row, err := b.SingleSource(ctx, u, nil)
	if err != nil {
		return nil, err
	}
	return b.topk(row, limit, -1), nil
}
func (b clampedBackend) Close() error { return nil }

// HTTPError is a non-200 answer from an HTTP-mode backend. Edge-case
// tests assert on Code; the matrix treats any occurrence as a failure.
// When the server tagged the failure with a machine-readable code
// (node_range), HTTPError wraps the matching sentinel so errors.Is sees
// through the wire: a bad node yields sling.ErrNodeRange from the HTTP
// backend exactly like from the library backends.
type HTTPError struct {
	Code int
	Body string
	Err  error // optional sentinel reconstructed from the response code field
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("http %d: %s", e.Code, strings.TrimSpace(e.Body))
}

func (e *HTTPError) Unwrap() error { return e.Err }

// httpBackend drives a server.Server through its real HTTP surface
// (mux, handlers, JSON encoding) in-process, as a sling.Querier — the
// same adapter shape a replication client against a remote SLING server
// would use. encoding/json emits the shortest float64 representation
// that round-trips exactly, so scores survive the JSON hop bit-for-bit
// and HTTP modes participate in the bitwise cross-backend checks.
type httpBackend struct {
	name    string
	h       http.Handler
	prefix  string // route prefix, e.g. "/g/wiki" for catalog servers
	n       int
	clamped bool
}

// NewHTTPBackend wraps an http.Handler serving the package server API
// over a graph of n nodes (dense IDs; no label mapping).
func NewHTTPBackend(name string, h http.Handler, n int, clamped bool) Backend {
	return &httpBackend{name: name, h: h, n: n, clamped: clamped}
}

// NewHTTPBackendAt is NewHTTPBackend under a route prefix — the adapter
// for one graph of a catalog server, e.g. prefix "/g/wiki" drives
// /g/wiki/simrank, /g/wiki/batch, /g/wiki/stats.
func NewHTTPBackendAt(name string, h http.Handler, prefix string, n int, clamped bool) Backend {
	return &httpBackend{name: name, h: h, prefix: strings.TrimSuffix(prefix, "/"), n: n, clamped: clamped}
}

func (b *httpBackend) Name() string { return b.name }
func (b *httpBackend) Close() error { return nil }

// Meta reports the wire backend: identity from construction, guarantee
// parameters scraped from /stats (zero if the server hides them).
func (b *httpBackend) Meta() sling.QuerierMeta {
	m := sling.QuerierMeta{Name: b.name, Nodes: b.n, Clamped: b.clamped}
	var stats struct {
		C     float64 `json:"decay_factor"`
		Eps   float64 `json:"error_bound"`
		Epoch uint64  `json:"epoch"`
	}
	if err := b.do(context.Background(), http.MethodGet, "/stats", "", &stats); err == nil {
		m.C, m.Eps, m.Epoch = stats.C, stats.Eps, stats.Epoch
	}
	return m
}

// do issues one in-process request against prefix+target. A
// pre-cancelled ctx returns before any handler work, matching the
// Querier contract.
func (b *httpBackend) do(ctx context.Context, method, target, body string, out interface{}) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	target = b.prefix + target
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, target, nil)
	} else {
		req = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	req = req.WithContext(ctx)
	rec := httptest.NewRecorder()
	b.h.ServeHTTP(rec, req)
	if err := ctx.Err(); err != nil {
		// The server observed the cancellation and dropped the response.
		return err
	}
	if rec.Code != http.StatusOK {
		he := &HTTPError{Code: rec.Code, Body: rec.Body.String()}
		var coded struct {
			Code string `json:"code"`
		}
		if json.Unmarshal(rec.Body.Bytes(), &coded) == nil && coded.Code == "node_range" {
			he.Err = sling.ErrNodeRange
		}
		return he
	}
	if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
		return fmt.Errorf("%s %s: decoding %q: %w", method, target, rec.Body.String(), err)
	}
	return nil
}

type scoredNode struct {
	Node  int64   `json:"node"`
	Score float64 `json:"score"`
}

func toScored(in []scoredNode) []sling.Scored {
	out := make([]sling.Scored, len(in))
	for i, e := range in {
		out[i] = sling.Scored{Node: sling.NodeID(e.Node), Score: e.Score}
	}
	return out
}

func (b *httpBackend) SimRank(ctx context.Context, u, v sling.NodeID) (float64, error) {
	var resp struct {
		Score float64 `json:"score"`
	}
	err := b.do(ctx, http.MethodGet, fmt.Sprintf("/simrank?u=%d&v=%d", u, v), "", &resp)
	return resp.Score, err
}

// sourceVector turns a full /source response into a dense score vector,
// verifying it covers exactly the node set.
func (b *httpBackend) sourceVector(entries []scoredNode, out []float64) ([]float64, error) {
	if len(entries) != b.n {
		return nil, fmt.Errorf("source returned %d scores, want %d", len(entries), b.n)
	}
	if cap(out) < b.n {
		out = make([]float64, b.n)
	}
	out = out[:b.n]
	seen := make([]bool, b.n)
	for _, e := range entries {
		if e.Node < 0 || e.Node >= int64(b.n) || seen[e.Node] {
			//slingvet:ignore noderangeerr backend protocol corruption, not a caller-supplied node: ErrNodeRange would misclassify it as retryable input error
			return nil, fmt.Errorf("source entry for node %d out of range or duplicated", e.Node)
		}
		seen[e.Node] = true
		out[e.Node] = e.Score
	}
	return out, nil
}

func (b *httpBackend) SingleSource(ctx context.Context, u sling.NodeID, out []float64) ([]float64, error) {
	var resp struct {
		Scores []scoredNode `json:"scores"`
	}
	if err := b.do(ctx, http.MethodGet, fmt.Sprintf("/source?u=%d", u), "", &resp); err != nil {
		return nil, err
	}
	return b.sourceVector(resp.Scores, out)
}

func (b *httpBackend) SingleSourceBatch(ctx context.Context, us []sling.NodeID) ([][]float64, error) {
	ops := make([]map[string]interface{}, len(us))
	for i, u := range us {
		ops[i] = map[string]interface{}{"op": "source", "u": u}
	}
	body, err := json.Marshal(ops)
	if err != nil {
		return nil, err
	}
	var resp struct {
		Results []struct {
			Scores []scoredNode `json:"scores"`
			Error  string       `json:"error"`
			Code   string       `json:"code"`
		} `json:"results"`
	}
	if err := b.do(ctx, http.MethodPost, "/batch", string(body), &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(us) {
		return nil, fmt.Errorf("batch returned %d results for %d ops", len(resp.Results), len(us))
	}
	rows := make([][]float64, len(us))
	for i, r := range resp.Results {
		if r.Error != "" {
			if r.Code == "node_range" {
				return nil, fmt.Errorf("%w: batch op %d: %s", sling.ErrNodeRange, i, r.Error)
			}
			return nil, fmt.Errorf("batch op %d: %s", i, r.Error)
		}
		if rows[i], err = b.sourceVector(r.Scores, nil); err != nil {
			return nil, fmt.Errorf("batch op %d: %w", i, err)
		}
	}
	return rows, nil
}

func (b *httpBackend) TopK(ctx context.Context, u sling.NodeID, k int) ([]sling.Scored, error) {
	var resp struct {
		Results []scoredNode `json:"results"`
	}
	err := b.do(ctx, http.MethodGet, fmt.Sprintf("/topk?u=%d&k=%d", u, k), "", &resp)
	return toScored(resp.Results), err
}

func (b *httpBackend) SourceTop(ctx context.Context, u sling.NodeID, limit int) ([]sling.Scored, error) {
	var resp struct {
		Scores []scoredNode `json:"scores"`
	}
	err := b.do(ctx, http.MethodGet, fmt.Sprintf("/source?u=%d&limit=%d", u, limit), "", &resp)
	return toScored(resp.Scores), err
}

// StaticSet is the group of backends that share one immutable index and
// therefore must answer bitwise-identically: the in-memory reference,
// the disk index over a round-tripped SLIX file, an out-of-core build,
// and (optionally) HTTP servers in memory and disk mode.
type StaticSet struct {
	Ref    Backend   // the in-memory reference
	Others []Backend // disk, ooc, and http modes
	// BuildMS records construction cost per backend name.
	BuildMS map[string]float64

	closers []func() error
}

// NewStaticSet builds the static backend group over g. dir receives the
// SLIX file and the out-of-core spill; withHTTP adds the two HTTP modes.
// On error every resource already acquired is released.
func NewStaticSet(g *sling.Graph, opt *sling.Options, dir string, withHTTP bool) (set *StaticSet, err error) {
	set = &StaticSet{BuildMS: make(map[string]float64)}
	defer func() {
		if err != nil {
			set.Close()
			set = nil
		}
	}()

	ix, ms, err := timed(func() (*sling.Index, error) { return sling.Build(g, sling.WithOptions(*opt)) })
	if err != nil {
		return nil, fmt.Errorf("conformance: memory build: %w", err)
	}
	set.Ref = NamedBackend(ix, "memory")
	set.BuildMS["memory"] = ms

	path := filepath.Join(dir, "conformance.slix")
	if err := ix.Save(path); err != nil {
		return nil, fmt.Errorf("conformance: saving SLIX: %w", err)
	}
	di, ms, err := timed(func() (*sling.DiskIndex, error) {
		return sling.OpenDiskWithOptions(path, g, &sling.DiskOptions{CacheBytes: 1 << 16})
	})
	if err != nil {
		return nil, fmt.Errorf("conformance: opening disk index: %w", err)
	}
	set.closers = append(set.closers, di.Close)
	set.Others = append(set.Others, NamedBackend(di, "disk"))
	set.BuildMS["disk"] = ms

	// The zero-copy mapped mode shares the ReadAt index's file and query
	// code, so its cell asserts bitwise equality of the whole matrix
	// against every other backend. Platforms without mmap (or with
	// big-endian byte order) skip the cell — the facade would silently
	// fall back and the cell would duplicate "disk".
	if sling.MmapSupported() {
		mdi, ms, err := timed(func() (*sling.DiskIndex, error) {
			return sling.OpenDiskWithOptions(path, g, &sling.DiskOptions{Mmap: true})
		})
		if err != nil {
			return nil, fmt.Errorf("conformance: opening mmap disk index: %w", err)
		}
		if !mdi.Mapped() {
			mdi.Close()
			return nil, fmt.Errorf("conformance: mmap mode requested but not mapped")
		}
		set.closers = append(set.closers, mdi.Close)
		set.Others = append(set.Others, NamedBackend(mdi, "mmap"))
		set.BuildMS["mmap"] = ms
	}

	ooc, ms, err := timed(func() (*sling.Index, error) {
		return sling.BuildOutOfCore(g, dir, 1<<20, sling.WithOptions(*opt))
	})
	if err != nil {
		return nil, fmt.Errorf("conformance: out-of-core build: %w", err)
	}
	set.Others = append(set.Others, NamedBackend(ooc, "ooc"))
	set.BuildMS["ooc"] = ms

	if withHTTP {
		n := g.NumNodes()
		memSrv, err := sserver(server.New(ix, nil))
		if err != nil {
			return nil, fmt.Errorf("conformance: memory server: %w", err)
		}
		set.Others = append(set.Others, NewHTTPBackend("http-memory", memSrv, n, false))
		diskSrv, err := sserver(server.NewDisk(di, nil, server.Config{}))
		if err != nil {
			return nil, fmt.Errorf("conformance: disk server: %w", err)
		}
		set.Others = append(set.Others, NewHTTPBackend("http-disk", diskSrv, n, false))
	}
	return set, nil
}

// sserver flattens the (server, error) constructor pair to an
// http.Handler.
func sserver(s *server.Server, err error) (http.Handler, error) { return s, err }

// Close releases every resource the set owns.
func (s *StaticSet) Close() {
	for _, c := range s.closers {
		c()
	}
}

// All returns the reference followed by the other backends.
func (s *StaticSet) All() []Backend {
	return append([]Backend{s.Ref}, s.Others...)
}
