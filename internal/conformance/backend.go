// Package conformance is the differential-testing subsystem: it drives
// every serving backend of this repository — the in-memory index, the
// disk-resident index over a round-tripped SLIX file, the out-of-core
// build, the dynamic (updatable) index pre- and post-rebuild, and the
// HTTP server in memory/disk/dynamic mode — through the one sling.Querier
// interface, over a matrix of graph families × (c, ε) configurations ×
// deterministic seeds, and checks every cell against exact power-method
// SimRank.
//
// Each cell asserts the paper's headline guarantee and the properties
// the backends promise each other:
//
//   - additive accuracy: |s̃(u,v) − s(u,v)| ≤ ε for single-pair,
//     single-source, top-k and batch answers (Theorem 1);
//   - cross-backend equivalence: backends sharing one index answer
//     bitwise-identically (disk, out-of-core, and the HTTP modes against
//     the in-memory reference; the rebuilt dynamic index against a fresh
//     build of the mutated graph, modulo its documented [0,1] clamp);
//   - invariants: symmetry, s̃(u,u) ≈ 1, score range, and top-k/
//     source-top selections consistent with the backend's own
//     single-source row;
//   - the Querier contract: identical ErrNodeRange for bad nodes,
//     identical degenerate-k results, pre-cancelled contexts observed
//     before any work (contract_test.go).
//
// The matrix runs three ways: `go test ./internal/conformance`
// (time-budgeted subset), `slingtool conformance` (full matrix, JSON
// report), and the CI conformance job.
package conformance

import (
	"context"
	"fmt"
	"net/http"
	"path/filepath"

	"sling"
	"sling/internal/core"
	"sling/internal/httpclient"
	"sling/internal/server"
	"sling/internal/shard"
)

// Backend is a sling.Querier with a report label. The facade types
// implement Querier natively, so library backends are the facade values
// themselves behind a name; only the clamp view and the HTTP wire
// adapter carry real code.
type Backend interface {
	sling.Querier
	// Name identifies the backend in reports ("memory", "disk", "ooc",
	// "http-memory", ...). It may differ from Meta().Name when one kind
	// serves several roles (e.g. "ooc" is a memory index built
	// out-of-core).
	Name() string
}

// named labels a Querier for reports. Close passes through, but the
// harness owns every backend's lifecycle explicitly (StaticSet.closers,
// the dynamic index's Close), so named never closes on its behalf.
type named struct {
	sling.Querier
	name string
}

func (n named) Name() string { return n.name }
func (n named) Close() error { return nil }

// NamedBackend adapts any Querier into a report-labelled Backend.
func NamedBackend(q sling.Querier, name string) Backend { return named{Querier: q, name: name} }

// clampedBackend views an unclamped backend through the dynamic layer's
// [0, 1] clamp, recomputing top-k/source-top from the clamped row so
// selection ties break identically. It is the bitwise reference for the
// rebuilt dynamic index (which equals clamp01 of a fresh build).
type clampedBackend struct {
	inner Backend
	topk  func(scores []float64, k int, skip sling.NodeID) []sling.Scored
}

func newClampedBackend(inner Backend) clampedBackend {
	return clampedBackend{inner: inner, topk: core.SelectTop}
}

func clamp01(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

func (b clampedBackend) Name() string { return b.inner.Name() + "-clamped" }
func (b clampedBackend) Meta() sling.QuerierMeta {
	m := b.inner.Meta()
	m.Clamped = true
	return m
}
func (b clampedBackend) SimRank(ctx context.Context, u, v sling.NodeID) (float64, error) {
	s, err := b.inner.SimRank(ctx, u, v)
	return clamp01(s), err
}
func (b clampedBackend) SingleSource(ctx context.Context, u sling.NodeID, out []float64) ([]float64, error) {
	row, err := b.inner.SingleSource(ctx, u, out)
	for i, s := range row {
		row[i] = clamp01(s)
	}
	return row, err
}
func (b clampedBackend) SingleSourceBatch(ctx context.Context, us []sling.NodeID) ([][]float64, error) {
	rows, err := b.inner.SingleSourceBatch(ctx, us)
	for _, row := range rows {
		for i, s := range row {
			row[i] = clamp01(s)
		}
	}
	return rows, err
}
func (b clampedBackend) TopK(ctx context.Context, u sling.NodeID, k int) ([]sling.Scored, error) {
	row, err := b.SingleSource(ctx, u, nil)
	if err != nil {
		return nil, err
	}
	return b.topk(row, k, u), nil
}
func (b clampedBackend) SourceTop(ctx context.Context, u sling.NodeID, limit int) ([]sling.Scored, error) {
	row, err := b.SingleSource(ctx, u, nil)
	if err != nil {
		return nil, err
	}
	return b.topk(row, limit, -1), nil
}
func (b clampedBackend) Close() error { return nil }

// HTTPError is a non-200 answer from an HTTP-mode backend. Edge-case
// tests assert on Code; the matrix treats any occurrence as a failure.
// It is the shared wire-adapter error: conformance keeps the historical
// name as an alias so existing assertions read unchanged.
type HTTPError = httpclient.Error

// httpBackend is the report-labelled view of the shared HTTP
// Querier-over-the-wire adapter (internal/httpclient): it drives a
// server.Server through its real HTTP surface (mux, handlers, JSON
// encoding) in-process. encoding/json emits the shortest float64
// representation that round-trips exactly, so scores survive the JSON
// hop bit-for-bit and HTTP modes participate in the bitwise
// cross-backend checks.
type httpBackend struct {
	*httpclient.Client
	name string
}

// NewHTTPBackend wraps an http.Handler serving the package server API
// over a graph of n nodes (dense IDs; no label mapping).
func NewHTTPBackend(name string, h http.Handler, n int, clamped bool) Backend {
	return newHTTPBackend(name, h, "", n, clamped)
}

// NewHTTPBackendAt is NewHTTPBackend under a route prefix — the adapter
// for one graph of a catalog server, e.g. prefix "/g/wiki" drives
// /g/wiki/simrank, /g/wiki/batch, /g/wiki/stats.
func NewHTTPBackendAt(name string, h http.Handler, prefix string, n int, clamped bool) Backend {
	return newHTTPBackend(name, h, prefix, n, clamped)
}

func newHTTPBackend(name string, h http.Handler, prefix string, n int, clamped bool) *httpBackend {
	c, err := httpclient.New(httpclient.Options{
		Handler: h,
		Prefix:  prefix,
		Nodes:   n,
		Name:    name,
		Clamped: clamped,
	})
	if err != nil {
		// Unreachable with a handler transport; misuse is a programmer
		// error in the harness itself.
		panic(err)
	}
	return &httpBackend{Client: c, name: name}
}

func (b *httpBackend) Name() string { return b.name }

// StaticSet is the group of backends that share one immutable index and
// therefore must answer bitwise-identically: the in-memory reference,
// the disk index over a round-tripped SLIX file, an out-of-core build,
// and (optionally) HTTP servers in memory and disk mode.
type StaticSet struct {
	Ref    Backend   // the in-memory reference
	Others []Backend // disk, ooc, and http modes
	// BuildMS records construction cost per backend name.
	BuildMS map[string]float64

	closers []func() error
}

// NewStaticSet builds the static backend group over g. dir receives the
// SLIX file and the out-of-core spill; withHTTP adds the two HTTP modes.
// On error every resource already acquired is released.
func NewStaticSet(g *sling.Graph, opt *sling.Options, dir string, withHTTP bool) (set *StaticSet, err error) {
	set = &StaticSet{BuildMS: make(map[string]float64)}
	defer func() {
		if err != nil {
			set.Close()
			set = nil
		}
	}()

	ix, ms, err := timed(func() (*sling.Index, error) { return sling.Build(g, sling.WithOptions(*opt)) })
	if err != nil {
		return nil, fmt.Errorf("conformance: memory build: %w", err)
	}
	set.Ref = NamedBackend(ix, "memory")
	set.BuildMS["memory"] = ms

	path := filepath.Join(dir, "conformance.slix")
	if err := ix.Save(path); err != nil {
		return nil, fmt.Errorf("conformance: saving SLIX: %w", err)
	}
	di, ms, err := timed(func() (*sling.DiskIndex, error) {
		return sling.OpenDiskWithOptions(path, g, &sling.DiskOptions{CacheBytes: 1 << 16})
	})
	if err != nil {
		return nil, fmt.Errorf("conformance: opening disk index: %w", err)
	}
	set.closers = append(set.closers, di.Close)
	set.Others = append(set.Others, NamedBackend(di, "disk"))
	set.BuildMS["disk"] = ms

	// The zero-copy mapped mode shares the ReadAt index's file and query
	// code, so its cell asserts bitwise equality of the whole matrix
	// against every other backend. Platforms without mmap (or with
	// big-endian byte order) skip the cell — the facade would silently
	// fall back and the cell would duplicate "disk".
	if sling.MmapSupported() {
		mdi, ms, err := timed(func() (*sling.DiskIndex, error) {
			return sling.OpenDiskWithOptions(path, g, &sling.DiskOptions{Mmap: true})
		})
		if err != nil {
			return nil, fmt.Errorf("conformance: opening mmap disk index: %w", err)
		}
		if !mdi.Mapped() {
			mdi.Close()
			return nil, fmt.Errorf("conformance: mmap mode requested but not mapped")
		}
		set.closers = append(set.closers, mdi.Close)
		set.Others = append(set.Others, NamedBackend(mdi, "mmap"))
		set.BuildMS["mmap"] = ms
	}

	ooc, ms, err := timed(func() (*sling.Index, error) {
		return sling.BuildOutOfCore(g, dir, 1<<20, sling.WithOptions(*opt))
	})
	if err != nil {
		return nil, fmt.Errorf("conformance: out-of-core build: %w", err)
	}
	set.Others = append(set.Others, NamedBackend(ooc, "ooc"))
	set.BuildMS["ooc"] = ms

	// Scatter/gather over in-process shard slices of the reference index:
	// the router (fragment routing, broadcast, k-pruned merge) must be
	// bitwise-invisible. conformanceShards exceeds 1 so cross-shard pairs
	// and merges are actually exercised (Plan clamps on tiny graphs).
	sq, ms, err := timed(func() (*shard.Querier, error) {
		m, clients := shard.InProcess(ix, conformanceShards)
		return shard.New(m, clients, nil)
	})
	if err != nil {
		return nil, fmt.Errorf("conformance: sharded querier: %w", err)
	}
	set.closers = append(set.closers, sq.Close)
	set.Others = append(set.Others, NamedBackend(sq, "sharded"))
	set.BuildMS["sharded"] = ms

	if withHTTP {
		n := g.NumNodes()
		memSrv, err := sserver(server.New(ix, nil))
		if err != nil {
			return nil, fmt.Errorf("conformance: memory server: %w", err)
		}
		set.Others = append(set.Others, NewHTTPBackend("http-memory", memSrv, n, false))
		diskSrv, err := sserver(server.NewDisk(di, nil, server.Config{}))
		if err != nil {
			return nil, fmt.Errorf("conformance: disk server: %w", err)
		}
		set.Others = append(set.Others, NewHTTPBackend("http-disk", diskSrv, n, false))

		// The same scatter/gather router, but with every shard behind its
		// own HTTP server's /shard routes — the remote deployment shape.
		hsq, ms, err := timed(func() (*shard.Querier, error) {
			hm := &shard.Manifest{Version: shard.ManifestVersion, Nodes: n, C: ix.C(), Eps: ix.ErrorBound()}
			var clients []shard.Client
			for i, r := range shard.Plan(ix.EntryBytes(), conformanceShards) {
				sx := ix.Shard(r[0], r[1])
				srv, err := sserver(server.New(sx, nil))
				if err != nil {
					return nil, fmt.Errorf("shard server %d: %w", i, err)
				}
				cl, err := httpclient.New(httpclient.Options{
					Handler: srv, Nodes: n, Name: fmt.Sprintf("shard%d", i),
				})
				if err != nil {
					return nil, err
				}
				hm.Shards = append(hm.Shards, shard.ShardInfo{ID: i, Lo: r[0], Hi: r[1], Bytes: sx.Bytes()})
				clients = append(clients, cl)
			}
			return shard.New(hm, clients, nil)
		})
		if err != nil {
			return nil, fmt.Errorf("conformance: http sharded querier: %w", err)
		}
		set.closers = append(set.closers, hsq.Close)
		set.Others = append(set.Others, NamedBackend(hsq, "http-sharded"))
		set.BuildMS["http-sharded"] = ms
	}
	return set, nil
}

// conformanceShards is the shard count the sharded cells run with.
const conformanceShards = 3

// sserver flattens the (server, error) constructor pair to an
// http.Handler.
func sserver(s *server.Server, err error) (http.Handler, error) { return s, err }

// Close releases every resource the set owns.
func (s *StaticSet) Close() {
	for _, c := range s.closers {
		c()
	}
}

// All returns the reference followed by the other backends.
func (s *StaticSet) All() []Backend {
	return append([]Backend{s.Ref}, s.Others...)
}
