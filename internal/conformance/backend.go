// Package conformance is the differential-testing subsystem: it drives
// every serving backend of this repository — the in-memory index, the
// disk-resident index over a round-tripped SLIX file, the out-of-core
// build, the dynamic (updatable) index pre- and post-rebuild, and the
// HTTP server in memory/disk/dynamic mode — through one shared Backend
// adapter, over a matrix of graph families × (c, ε) configurations ×
// deterministic seeds, and checks every cell against exact power-method
// SimRank.
//
// Each cell asserts the paper's headline guarantee and the properties
// the backends promise each other:
//
//   - additive accuracy: |s̃(u,v) − s(u,v)| ≤ ε for single-pair,
//     single-source, top-k and batch answers (Theorem 1);
//   - cross-backend equivalence: backends sharing one index answer
//     bitwise-identically (disk, out-of-core, and the HTTP modes against
//     the in-memory reference; the rebuilt dynamic index against a fresh
//     build of the mutated graph, modulo its documented [0,1] clamp);
//   - invariants: symmetry, s̃(u,u) ≈ 1, score range, and top-k/
//     source-top selections consistent with the backend's own
//     single-source row.
//
// The matrix runs three ways: `go test ./internal/conformance`
// (time-budgeted subset), `slingtool conformance` (full matrix, JSON
// report), and the CI conformance job.
package conformance

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"

	"sling"
	"sling/internal/core"
	"sling/internal/server"
)

// Backend is the uniform query surface the conformance matrix drives.
// Every serving path in the repository adapts to it; methods mirror the
// facade's query set, with errors for the fallible (disk, HTTP) paths.
type Backend interface {
	// Name identifies the backend in reports ("memory", "disk", "ooc",
	// "http-memory", ...).
	Name() string
	SimRank(u, v sling.NodeID) (float64, error)
	SingleSource(u sling.NodeID) ([]float64, error)
	SingleSourceBatch(us []sling.NodeID) ([][]float64, error)
	TopK(u sling.NodeID, k int) ([]sling.Scored, error)
	SourceTop(u sling.NodeID, limit int) ([]sling.Scored, error)
	// Clamped reports whether the backend clamps scores into [0, 1]
	// (the dynamic layer does; raw index backends may return up to 1+ε).
	Clamped() bool
	Close() error
}

// memBackend adapts the in-memory facade index — the reference every
// index-sharing backend is compared against bitwise.
type memBackend struct {
	ix *sling.Index
}

func (b memBackend) Name() string { return "memory" }
func (b memBackend) SimRank(u, v sling.NodeID) (float64, error) {
	return b.ix.SimRank(u, v), nil
}
func (b memBackend) SingleSource(u sling.NodeID) ([]float64, error) {
	return b.ix.SingleSource(u, nil), nil
}
func (b memBackend) SingleSourceBatch(us []sling.NodeID) ([][]float64, error) {
	return b.ix.SingleSourceBatch(us), nil
}
func (b memBackend) TopK(u sling.NodeID, k int) ([]sling.Scored, error) {
	return b.ix.TopK(u, k), nil
}
func (b memBackend) SourceTop(u sling.NodeID, limit int) ([]sling.Scored, error) {
	return b.ix.SourceTop(u, limit), nil
}
func (b memBackend) Clamped() bool { return false }
func (b memBackend) Close() error  { return nil }

// oocBackend is memBackend over an index assembled out-of-core; builds
// are seed-deterministic, so it must be bitwise-identical to the
// in-memory build.
type oocBackend struct {
	memBackend
}

func (b oocBackend) Name() string { return "ooc" }

// diskBackend adapts the disk-resident index (Section 5.4) over a
// round-tripped SLIX file.
type diskBackend struct {
	di *sling.DiskIndex
}

func (b diskBackend) Name() string { return "disk" }
func (b diskBackend) SimRank(u, v sling.NodeID) (float64, error) {
	return b.di.SimRank(u, v)
}
func (b diskBackend) SingleSource(u sling.NodeID) ([]float64, error) {
	return b.di.SingleSource(u, nil)
}
func (b diskBackend) SingleSourceBatch(us []sling.NodeID) ([][]float64, error) {
	return b.di.SingleSourceBatch(us)
}
func (b diskBackend) TopK(u sling.NodeID, k int) ([]sling.Scored, error) {
	return b.di.TopK(u, k)
}
func (b diskBackend) SourceTop(u sling.NodeID, limit int) ([]sling.Scored, error) {
	return b.di.SourceTop(u, limit)
}
func (b diskBackend) Clamped() bool { return false }
func (b diskBackend) Close() error  { return b.di.Close() }

// dynBackend adapts the dynamic (updatable) index. It never closes the
// wrapped index — the harness owns its lifecycle across the stale and
// rebuilt phases.
type dynBackend struct {
	name string
	dx   *sling.DynamicIndex
}

func (b dynBackend) Name() string { return b.name }
func (b dynBackend) SimRank(u, v sling.NodeID) (float64, error) {
	return b.dx.SimRank(u, v), nil
}
func (b dynBackend) SingleSource(u sling.NodeID) ([]float64, error) {
	return b.dx.SingleSource(u, nil), nil
}
func (b dynBackend) SingleSourceBatch(us []sling.NodeID) ([][]float64, error) {
	return b.dx.SingleSourceBatch(us), nil
}
func (b dynBackend) TopK(u sling.NodeID, k int) ([]sling.Scored, error) {
	return b.dx.TopK(u, k), nil
}
func (b dynBackend) SourceTop(u sling.NodeID, limit int) ([]sling.Scored, error) {
	return b.dx.SourceTop(u, limit), nil
}
func (b dynBackend) Clamped() bool { return true }
func (b dynBackend) Close() error  { return nil }

// clampedBackend views an unclamped backend through the dynamic layer's
// [0, 1] clamp, recomputing top-k/source-top from the clamped row so
// selection ties break identically. It is the bitwise reference for the
// rebuilt dynamic index (which equals clamp01 of a fresh build).
type clampedBackend struct {
	inner Backend
	topk  func(scores []float64, k int, skip sling.NodeID) []sling.Scored
}

func newClampedBackend(inner Backend) clampedBackend {
	return clampedBackend{inner: inner, topk: core.SelectTop}
}

func clamp01(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

func (b clampedBackend) Name() string { return b.inner.Name() + "-clamped" }
func (b clampedBackend) SimRank(u, v sling.NodeID) (float64, error) {
	s, err := b.inner.SimRank(u, v)
	return clamp01(s), err
}
func (b clampedBackend) SingleSource(u sling.NodeID) ([]float64, error) {
	row, err := b.inner.SingleSource(u)
	for i, s := range row {
		row[i] = clamp01(s)
	}
	return row, err
}
func (b clampedBackend) SingleSourceBatch(us []sling.NodeID) ([][]float64, error) {
	rows, err := b.inner.SingleSourceBatch(us)
	for _, row := range rows {
		for i, s := range row {
			row[i] = clamp01(s)
		}
	}
	return rows, err
}
func (b clampedBackend) TopK(u sling.NodeID, k int) ([]sling.Scored, error) {
	row, err := b.SingleSource(u)
	if err != nil {
		return nil, err
	}
	return b.topk(row, k, u), nil
}
func (b clampedBackend) SourceTop(u sling.NodeID, limit int) ([]sling.Scored, error) {
	row, err := b.SingleSource(u)
	if err != nil {
		return nil, err
	}
	return b.topk(row, limit, -1), nil
}
func (b clampedBackend) Clamped() bool { return true }
func (b clampedBackend) Close() error  { return nil }

// HTTPError is a non-200 answer from an HTTP-mode backend. Edge-case
// tests assert on Code; the matrix treats any occurrence as a failure.
type HTTPError struct {
	Code int
	Body string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("http %d: %s", e.Code, strings.TrimSpace(e.Body))
}

// httpBackend drives a server.Server through its real HTTP surface
// (mux, handlers, JSON encoding) in-process. encoding/json emits the
// shortest float64 representation that round-trips exactly, so scores
// survive the JSON hop bit-for-bit and HTTP modes participate in the
// bitwise cross-backend checks.
type httpBackend struct {
	name    string
	h       http.Handler
	n       int
	clamped bool
}

// NewHTTPBackend wraps an http.Handler serving the package server API
// over a graph of n nodes (dense IDs; no label mapping).
func NewHTTPBackend(name string, h http.Handler, n int, clamped bool) Backend {
	return &httpBackend{name: name, h: h, n: n, clamped: clamped}
}

func (b *httpBackend) Name() string  { return b.name }
func (b *httpBackend) Clamped() bool { return b.clamped }
func (b *httpBackend) Close() error  { return nil }

func (b *httpBackend) do(method, target, body string, out interface{}) error {
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, target, nil)
	} else {
		req = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	b.h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return &HTTPError{Code: rec.Code, Body: rec.Body.String()}
	}
	if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
		return fmt.Errorf("%s %s: decoding %q: %w", method, target, rec.Body.String(), err)
	}
	return nil
}

type scoredNode struct {
	Node  int64   `json:"node"`
	Score float64 `json:"score"`
}

func toScored(in []scoredNode) []sling.Scored {
	out := make([]sling.Scored, len(in))
	for i, e := range in {
		out[i] = sling.Scored{Node: sling.NodeID(e.Node), Score: e.Score}
	}
	return out
}

func (b *httpBackend) SimRank(u, v sling.NodeID) (float64, error) {
	var resp struct {
		Score float64 `json:"score"`
	}
	err := b.do(http.MethodGet, fmt.Sprintf("/simrank?u=%d&v=%d", u, v), "", &resp)
	return resp.Score, err
}

// sourceVector turns a full /source response into a dense score vector,
// verifying it covers exactly the node set.
func (b *httpBackend) sourceVector(entries []scoredNode) ([]float64, error) {
	if len(entries) != b.n {
		return nil, fmt.Errorf("source returned %d scores, want %d", len(entries), b.n)
	}
	out := make([]float64, b.n)
	seen := make([]bool, b.n)
	for _, e := range entries {
		if e.Node < 0 || e.Node >= int64(b.n) || seen[e.Node] {
			return nil, fmt.Errorf("source entry for node %d out of range or duplicated", e.Node)
		}
		seen[e.Node] = true
		out[e.Node] = e.Score
	}
	return out, nil
}

func (b *httpBackend) SingleSource(u sling.NodeID) ([]float64, error) {
	var resp struct {
		Scores []scoredNode `json:"scores"`
	}
	if err := b.do(http.MethodGet, fmt.Sprintf("/source?u=%d", u), "", &resp); err != nil {
		return nil, err
	}
	return b.sourceVector(resp.Scores)
}

func (b *httpBackend) SingleSourceBatch(us []sling.NodeID) ([][]float64, error) {
	ops := make([]map[string]interface{}, len(us))
	for i, u := range us {
		ops[i] = map[string]interface{}{"op": "source", "u": u}
	}
	body, err := json.Marshal(ops)
	if err != nil {
		return nil, err
	}
	var resp struct {
		Results []struct {
			Scores []scoredNode `json:"scores"`
			Error  string       `json:"error"`
		} `json:"results"`
	}
	if err := b.do(http.MethodPost, "/batch", string(body), &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(us) {
		return nil, fmt.Errorf("batch returned %d results for %d ops", len(resp.Results), len(us))
	}
	rows := make([][]float64, len(us))
	for i, r := range resp.Results {
		if r.Error != "" {
			return nil, fmt.Errorf("batch op %d: %s", i, r.Error)
		}
		if rows[i], err = b.sourceVector(r.Scores); err != nil {
			return nil, fmt.Errorf("batch op %d: %w", i, err)
		}
	}
	return rows, nil
}

func (b *httpBackend) TopK(u sling.NodeID, k int) ([]sling.Scored, error) {
	var resp struct {
		Results []scoredNode `json:"results"`
	}
	err := b.do(http.MethodGet, fmt.Sprintf("/topk?u=%d&k=%d", u, k), "", &resp)
	return toScored(resp.Results), err
}

func (b *httpBackend) SourceTop(u sling.NodeID, limit int) ([]sling.Scored, error) {
	var resp struct {
		Scores []scoredNode `json:"scores"`
	}
	err := b.do(http.MethodGet, fmt.Sprintf("/source?u=%d&limit=%d", u, limit), "", &resp)
	return toScored(resp.Scores), err
}

// StaticSet is the group of backends that share one immutable index and
// therefore must answer bitwise-identically: the in-memory reference,
// the disk index over a round-tripped SLIX file, an out-of-core build,
// and (optionally) HTTP servers in memory and disk mode.
type StaticSet struct {
	Ref    Backend   // the in-memory reference
	Others []Backend // disk, ooc, and http modes
	// BuildMS records construction cost per backend name.
	BuildMS map[string]float64

	closers []func() error
}

// NewStaticSet builds the static backend group over g. dir receives the
// SLIX file and the out-of-core spill; withHTTP adds the two HTTP modes.
// On error every resource already acquired is released.
func NewStaticSet(g *sling.Graph, opt *sling.Options, dir string, withHTTP bool) (set *StaticSet, err error) {
	set = &StaticSet{BuildMS: make(map[string]float64)}
	defer func() {
		if err != nil {
			set.Close()
			set = nil
		}
	}()

	ix, ms, err := timed(func() (*sling.Index, error) { return sling.Build(g, opt) })
	if err != nil {
		return nil, fmt.Errorf("conformance: memory build: %w", err)
	}
	set.Ref = memBackend{ix: ix}
	set.BuildMS["memory"] = ms

	path := filepath.Join(dir, "conformance.slix")
	if err := ix.Save(path); err != nil {
		return nil, fmt.Errorf("conformance: saving SLIX: %w", err)
	}
	di, ms, err := timed(func() (*sling.DiskIndex, error) {
		return sling.OpenDiskWithOptions(path, g, &sling.DiskOptions{CacheBytes: 1 << 16})
	})
	if err != nil {
		return nil, fmt.Errorf("conformance: opening disk index: %w", err)
	}
	set.closers = append(set.closers, di.Close)
	set.Others = append(set.Others, diskBackend{di: di})
	set.BuildMS["disk"] = ms

	ooc, ms, err := timed(func() (*sling.Index, error) {
		return sling.BuildOutOfCore(g, opt, dir, 1<<20)
	})
	if err != nil {
		return nil, fmt.Errorf("conformance: out-of-core build: %w", err)
	}
	set.Others = append(set.Others, oocBackend{memBackend{ix: ooc}})
	set.BuildMS["ooc"] = ms

	if withHTTP {
		n := g.NumNodes()
		memSrv, err := sserver(server.New(ix, nil))
		if err != nil {
			return nil, fmt.Errorf("conformance: memory server: %w", err)
		}
		set.Others = append(set.Others, NewHTTPBackend("http-memory", memSrv, n, false))
		diskSrv, err := sserver(server.NewDisk(di, nil, server.Config{}))
		if err != nil {
			return nil, fmt.Errorf("conformance: disk server: %w", err)
		}
		set.Others = append(set.Others, NewHTTPBackend("http-disk", diskSrv, n, false))
	}
	return set, nil
}

// sserver flattens the (server, error) constructor pair to an
// http.Handler.
func sserver(s *server.Server, err error) (http.Handler, error) { return s, err }

// Close releases every resource the set owns.
func (s *StaticSet) Close() {
	for _, c := range s.closers {
		c()
	}
}

// All returns the reference followed by the other backends.
func (s *StaticSet) All() []Backend {
	return append([]Backend{s.Ref}, s.Others...)
}
