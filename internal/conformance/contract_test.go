package conformance

// The Querier contract test: every backend — library and wire — must
// agree not just on scores (the matrix covers that) but on the edges of
// the interface itself: which errors bad inputs produce, what degenerate
// k means, and that a dead context is observed before any work. This is
// what keeps a future backend (sharded, replicated) substitutable for
// the existing ones without each consumer re-learning its quirks.

import (
	"context"
	"errors"
	"testing"

	"sling"
)

// contractBackends builds the full backend group (static + HTTP modes +
// dynamic) over one small graph.
func contractBackends(t *testing.T) (n int, backends []Backend) {
	t.Helper()
	b := sling.NewGraphBuilder(10)
	for _, e := range [][2]sling.NodeID{
		{2, 0}, {3, 0}, {2, 1}, {3, 1}, {4, 2}, {4, 3}, {5, 4}, {0, 5},
	} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	opt := &sling.Options{Eps: 0.1, Seed: 29}
	set, err := NewStaticSet(g, opt, t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(set.Close)
	dx, err := sling.NewDynamic(g, &sling.DynamicOptions{NumWalks: 16}, sling.WithOptions(*opt))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dx.Close() })
	return g.NumNodes(), append(set.All(), NamedBackend(dx, "dynamic"))
}

// TestQuerierContractBadNode: an out-of-range node yields an error
// wrapping sling.ErrNodeRange from every method of every backend,
// including the HTTP modes (reconstructed from the 400 code field).
func TestQuerierContractBadNode(t *testing.T) {
	n, backends := contractBackends(t)
	ctx := context.Background()
	for _, be := range backends {
		be := be
		t.Run(be.Name(), func(t *testing.T) {
			for _, bad := range []sling.NodeID{sling.NodeID(n), -1, 999} {
				if _, err := be.SimRank(ctx, bad, 0); !errors.Is(err, sling.ErrNodeRange) {
					t.Errorf("SimRank(%d, 0): err = %v, want ErrNodeRange", bad, err)
				}
				if _, err := be.SimRank(ctx, 0, bad); !errors.Is(err, sling.ErrNodeRange) {
					t.Errorf("SimRank(0, %d): err = %v, want ErrNodeRange", bad, err)
				}
				if _, err := be.SingleSource(ctx, bad, nil); !errors.Is(err, sling.ErrNodeRange) {
					t.Errorf("SingleSource(%d): err = %v, want ErrNodeRange", bad, err)
				}
				if _, err := be.SingleSourceBatch(ctx, []sling.NodeID{0, bad}); !errors.Is(err, sling.ErrNodeRange) {
					t.Errorf("SingleSourceBatch(0, %d): err = %v, want ErrNodeRange", bad, err)
				}
				if _, err := be.TopK(ctx, bad, 3); !errors.Is(err, sling.ErrNodeRange) {
					t.Errorf("TopK(%d): err = %v, want ErrNodeRange", bad, err)
				}
				if _, err := be.SourceTop(ctx, bad, 3); !errors.Is(err, sling.ErrNodeRange) {
					t.Errorf("SourceTop(%d): err = %v, want ErrNodeRange", bad, err)
				}
			}
		})
	}
}

// TestQuerierContractDegenerateK: k <= 0 answers empty (library
// backends; the HTTP API pins 400 for invalid k, covered in
// edgecases_test.go) and k > n answers exactly like k = n — identical
// across every backend.
func TestQuerierContractDegenerateK(t *testing.T) {
	n, backends := contractBackends(t)
	ctx := context.Background()
	for _, be := range backends {
		be := be
		_, isHTTP := be.(*httpBackend)
		t.Run(be.Name(), func(t *testing.T) {
			if !isHTTP {
				for _, k := range []int{0, -5} {
					if top, err := be.TopK(ctx, 2, k); err != nil || len(top) != 0 {
						t.Errorf("TopK(k=%d) = %v, err %v; want empty", k, top, err)
					}
				}
				if top, err := be.SourceTop(ctx, 2, 0); err != nil || len(top) != 0 {
					t.Errorf("SourceTop(limit=0) = %v, err %v; want empty", top, err)
				}
			}
			exact, err := be.TopK(ctx, 2, n)
			if err != nil {
				t.Fatalf("TopK(k=n): %v", err)
			}
			over, err := be.TopK(ctx, 2, 10*n)
			if err != nil {
				t.Fatalf("TopK(k>n): %v", err)
			}
			if !sameScored(exact, over) {
				t.Errorf("TopK(k>n) = %v differs from TopK(k=n) = %v", over, exact)
			}
		})
	}
}

// TestQuerierContractPreCancelled: a context cancelled before the call
// returns context.Canceled from every method without doing work.
func TestQuerierContractPreCancelled(t *testing.T) {
	_, backends := contractBackends(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, be := range backends {
		be := be
		t.Run(be.Name(), func(t *testing.T) {
			if _, err := be.SimRank(ctx, 0, 1); !errors.Is(err, context.Canceled) {
				t.Errorf("SimRank: err = %v, want context.Canceled", err)
			}
			if _, err := be.SingleSource(ctx, 0, nil); !errors.Is(err, context.Canceled) {
				t.Errorf("SingleSource: err = %v, want context.Canceled", err)
			}
			if _, err := be.SingleSourceBatch(ctx, []sling.NodeID{0, 1}); !errors.Is(err, context.Canceled) {
				t.Errorf("SingleSourceBatch: err = %v, want context.Canceled", err)
			}
			if _, err := be.TopK(ctx, 0, 3); !errors.Is(err, context.Canceled) {
				t.Errorf("TopK: err = %v, want context.Canceled", err)
			}
			if _, err := be.SourceTop(ctx, 0, 3); !errors.Is(err, context.Canceled) {
				t.Errorf("SourceTop: err = %v, want context.Canceled", err)
			}
		})
	}
}

// TestQuerierContractMeta: Meta answers coherently everywhere — the node
// count matches, clamped backends say so, and C/Eps agree between the
// library reference and the wire adapters (scraped from /stats).
func TestQuerierContractMeta(t *testing.T) {
	n, backends := contractBackends(t)
	refMeta := backends[0].Meta()
	for _, be := range backends {
		m := be.Meta()
		if m.Nodes != n {
			t.Errorf("%s: Meta().Nodes = %d, want %d", be.Name(), m.Nodes, n)
		}
		if m.C != refMeta.C || m.Eps != refMeta.Eps {
			t.Errorf("%s: Meta() (C=%v, Eps=%v) disagrees with reference (C=%v, Eps=%v)",
				be.Name(), m.C, m.Eps, refMeta.C, refMeta.Eps)
		}
	}
}
