package conformance

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"time"

	"sling"
	"sling/internal/core"
	"sling/internal/eval"
	"sling/internal/power"
	"sling/internal/rng"
	"sling/internal/server"
	"sling/internal/workload"
)

// Config is one (decay factor, error bound) point of the matrix.
type Config struct {
	C   float64 `json:"c"`
	Eps float64 `json:"eps"`
}

func (c Config) String() string { return fmt.Sprintf("c%g-eps%g", c.C, c.Eps) }

// DefaultConfigs is the (c, ε) grid the full matrix runs: the paper's
// decay factor at two accuracy targets plus a high-decay point.
func DefaultConfigs() []Config {
	return []Config{
		{C: 0.6, Eps: 0.05},
		{C: 0.6, Eps: 0.10},
		{C: 0.8, Eps: 0.15},
	}
}

// symTol bounds |s̃(u,v) − s̃(v,u)|: the index join is mathematically
// symmetric, so only float summation order may differ.
const symTol = 1e-9

// rangeTol absorbs float rounding in the score-range invariant.
const rangeTol = 1e-12

// Options configures a conformance run.
type Options struct {
	// Families to generate; default workload.Families().
	Families []workload.Family
	// Configs to sweep; default DefaultConfigs().
	Configs []Config
	// N is the target node count per family (ground truth is O(n²) per
	// cell, so keep it small). Default 24.
	N int
	// Seed drives graph generation, index builds, and the update mix.
	Seed uint64
	// Dir is the scratch directory for SLIX files and out-of-core
	// spills. Required.
	Dir string
	// HTTP includes the three HTTP server modes.
	HTTP bool
	// Dynamic includes the dynamic backend, stale and rebuilt.
	Dynamic bool
	// K is the top-k cutoff exercised per source. Default 5.
	K int
	// Only, when non-empty, is a regexp over backend names: cells whose
	// backend does not match are skipped (and counted in
	// Report.Filtered). The reference backend is always evaluated — other
	// cells compare against it bitwise — but its cell is only reported
	// when it matches.
	Only string
	// Logf, when set, receives per-cell progress lines.
	Logf func(format string, args ...interface{})
}

func (o *Options) withDefaults() (Options, error) {
	r := *o
	if len(r.Families) == 0 {
		r.Families = workload.Families()
	}
	if len(r.Configs) == 0 {
		r.Configs = DefaultConfigs()
	}
	if r.N == 0 {
		r.N = 24
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.K == 0 {
		r.K = 5
	}
	if r.Dir == "" {
		return r, fmt.Errorf("conformance: Options.Dir is required")
	}
	if r.Logf == nil {
		r.Logf = func(string, ...interface{}) {}
	}
	return r, nil
}

// Cell is one (family, config, backend) result.
type Cell struct {
	Family  string  `json:"family"`
	Backend string  `json:"backend"`
	N       int     `json:"n"`
	M       int     `json:"m"`
	C       float64 `json:"c"`
	Eps     float64 `json:"eps"`

	// BuildMS is the backend's construction cost (index build, SLIX
	// round trip, or dynamic build + update application).
	BuildMS float64 `json:"build_ms"`
	// Queries counts individual answers checked; AvgQueryUS is the mean
	// wall-clock per answer.
	Queries    int     `json:"queries"`
	AvgQueryUS float64 `json:"avg_query_us"`

	// MaxErr is the largest |s̃ − s_exact| observed across pair,
	// single-source, top-k and batch answers; Headroom = Eps − MaxErr.
	MaxErr   float64 `json:"max_err"`
	Headroom float64 `json:"eps_headroom"`

	// BitwiseRef names the backend this cell was compared against
	// bitwise ("" for the reference itself); BitwiseOK reports equality.
	BitwiseRef string `json:"bitwise_ref,omitempty"`
	BitwiseOK  bool   `json:"bitwise_ok"`

	// Violations lists failed assertions (ε exceedances, invariant or
	// equivalence breaks). Empty means the cell passed.
	Violations []string `json:"violations"`
	Pass       bool     `json:"pass"`
}

// Report is the JSON document a conformance run produces.
type Report struct {
	Seed        uint64   `json:"seed"`
	N           int      `json:"n"`
	Families    []string `json:"families"`
	Configs     []Config `json:"configs"`
	Backends    []string `json:"backends"`
	Cells       []Cell   `json:"cells"`
	WorstErr    float64  `json:"worst_err"`
	MinHeadroom float64  `json:"min_eps_headroom"`
	Failures    int      `json:"failures"`
	// Filtered counts cells skipped by Options.Only.
	Filtered  int     `json:"filtered,omitempty"`
	AllPass   bool    `json:"all_pass"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// timed runs f and reports its wall-clock cost in milliseconds.
func timed[T any](f func() (T, error)) (T, float64, error) {
	start := time.Now()
	v, err := f()
	return v, float64(time.Since(start).Nanoseconds()) / 1e6, err
}

// Run executes the conformance matrix and aggregates the report. Cell
// failures do not abort the run — they are collected so one report shows
// every broken cell; only harness errors (build failures, I/O) abort.
func Run(opts Options) (*Report, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	var only *regexp.Regexp
	if o.Only != "" {
		if only, err = regexp.Compile(o.Only); err != nil {
			return nil, fmt.Errorf("conformance: bad Only pattern %q: %w", o.Only, err)
		}
	}
	start := time.Now()
	rep := &Report{Seed: o.Seed, N: o.N, Configs: o.Configs, MinHeadroom: math.Inf(1)}
	for _, f := range o.Families {
		rep.Families = append(rep.Families, f.Name)
	}
	backendSet := map[string]bool{}
	for _, fam := range o.Families {
		// The generated graph depends only on the family, and exact
		// ground truth only on (graph, c): share both across configs —
		// the power method is the most expensive step of a cell.
		g := fam.Gen(o.N, o.Seed)
		truthByC := map[float64]*power.Scores{}
		for _, cfg := range o.Configs {
			truth, ok := truthByC[cfg.C]
			if !ok {
				var err error
				if truth, err = eval.GroundTruth(g, cfg.C); err != nil {
					return nil, fmt.Errorf("conformance: %s/%s: ground truth: %w", fam.Name, cfg, err)
				}
				truthByC[cfg.C] = truth
			}
			cells, filtered, err := runFamilyConfig(o, only, fam, cfg, g, truth)
			if err != nil {
				return nil, fmt.Errorf("conformance: %s/%s: %w", fam.Name, cfg, err)
			}
			rep.Filtered += filtered
			for _, c := range cells {
				backendSet[c.Backend] = true
				rep.Cells = append(rep.Cells, c)
				if c.MaxErr > rep.WorstErr {
					rep.WorstErr = c.MaxErr
				}
				if c.Headroom < rep.MinHeadroom {
					rep.MinHeadroom = c.Headroom
				}
				if !c.Pass {
					rep.Failures++
				}
				status := "ok"
				if !c.Pass {
					status = fmt.Sprintf("FAIL %v", c.Violations)
				}
				o.Logf("%-13s %-15s %s  maxErr %.5f (eps %.3g)  %s",
					fam.Name, c.Backend, cfg, c.MaxErr, c.Eps, status)
			}
		}
	}
	for name := range backendSet {
		rep.Backends = append(rep.Backends, name)
	}
	sort.Strings(rep.Backends)
	rep.AllPass = rep.Failures == 0
	if math.IsInf(rep.MinHeadroom, 1) {
		rep.MinHeadroom = 0
	}
	rep.ElapsedMS = float64(time.Since(start).Nanoseconds()) / 1e6
	return rep, nil
}

// runFamilyConfig evaluates every backend on one generated graph, with
// exact ground truth for (g, cfg.C) supplied by the caller. only, when
// non-nil, filters which backends are evaluated and reported; the
// second return counts the cells it skipped.
func runFamilyConfig(o Options, only *regexp.Regexp, fam workload.Family, cfg Config,
	g *sling.Graph, truth *power.Scores) ([]Cell, int, error) {

	opt := &sling.Options{C: cfg.C, Eps: cfg.Eps, Seed: o.Seed}
	match := func(name string) bool { return only == nil || only.MatchString(name) }

	set, err := NewStaticSet(g, opt, o.Dir, o.HTTP)
	if err != nil {
		return nil, 0, err
	}
	defer set.Close()

	var cells []Cell
	filtered := 0
	// The reference is always evaluated — every other cell compares
	// against its answers bitwise — but reported only when it matches.
	ref := evaluate(o, fam, cfg, g, truth, set.Ref, nil)
	ref.cell.BuildMS = set.BuildMS["memory"]
	if match(set.Ref.Name()) {
		cells = append(cells, ref.cell)
	} else {
		filtered++
	}
	for _, be := range set.Others {
		if !match(be.Name()) {
			filtered++
			continue
		}
		res := evaluate(o, fam, cfg, g, truth, be, ref)
		res.cell.BuildMS = set.BuildMS[be.Name()]
		cells = append(cells, res.cell)
	}

	if o.Dynamic {
		dyn, err := dynamicCells(o, fam, cfg, g, opt)
		if err != nil {
			return nil, 0, err
		}
		for _, c := range dyn {
			if !match(c.Backend) {
				filtered++
				continue
			}
			cells = append(cells, c)
		}
	}
	return cells, filtered, nil
}

// evalResult carries one backend's full answer set so later backends can
// be compared against it bitwise.
type evalResult struct {
	cell Cell
	pair *power.Scores // SimRank matrix (ordered pairs)
	rows *power.Scores // single-source matrix
	topk [][]sling.Scored
	stop [][]sling.Scored
}

// evaluate drives one backend through every query type over the full
// node set, asserting accuracy against truth, internal invariants, and
// (when ref is non-nil) bitwise equality with the reference backend.
func evaluate(o Options, fam workload.Family, cfg Config, g *sling.Graph,
	truth *power.Scores, be Backend, ref *evalResult) *evalResult {

	n := g.NumNodes()
	res := &evalResult{
		cell: Cell{
			Family: fam.Name, Backend: be.Name(), N: n, M: g.NumEdges(),
			C: cfg.C, Eps: cfg.Eps,
		},
		pair: &power.Scores{N: n, Data: make([]float64, n*n)},
		rows: &power.Scores{N: n, Data: make([]float64, n*n)},
	}
	cell := &res.cell
	fail := func(format string, args ...interface{}) {
		if len(cell.Violations) < 8 { // cap noise; one is already fatal
			cell.Violations = append(cell.Violations, fmt.Sprintf(format, args...))
		}
	}

	ctx := context.Background()
	qstart := time.Now()

	// Single-pair over every ordered pair.
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			s, err := be.SimRank(ctx, sling.NodeID(u), sling.NodeID(v))
			if err != nil {
				fail("simrank(%d,%d): %v", u, v, err)
				cell.Pass = false
				return res
			}
			res.pair.Data[u*n+v] = s
			cell.Queries++
		}
	}
	// Single-source from every node.
	for u := 0; u < n; u++ {
		row, err := be.SingleSource(ctx, sling.NodeID(u), nil)
		if err != nil || len(row) != n {
			fail("source(%d): len %d, err %v", u, len(row), err)
			cell.Pass = false
			return res
		}
		copy(res.rows.Data[u*n:(u+1)*n], row)
		cell.Queries++
	}
	// Batch: one request covering every source.
	us := make([]sling.NodeID, n)
	for i := range us {
		us[i] = sling.NodeID(i)
	}
	batch, err := be.SingleSourceBatch(ctx, us)
	if err != nil || len(batch) != n {
		fail("batch: %d rows, err %v", len(batch), err)
		cell.Pass = false
		return res
	}
	cell.Queries += n
	// Top-k and source-top from every node.
	for u := 0; u < n; u++ {
		tk, err := be.TopK(ctx, sling.NodeID(u), o.K)
		if err != nil {
			fail("topk(%d): %v", u, err)
			cell.Pass = false
			return res
		}
		st, err := be.SourceTop(ctx, sling.NodeID(u), o.K+1)
		if err != nil {
			fail("sourcetop(%d): %v", u, err)
			cell.Pass = false
			return res
		}
		res.topk = append(res.topk, tk)
		res.stop = append(res.stop, st)
		cell.Queries += 2
	}
	cell.AvgQueryUS = float64(time.Since(qstart).Nanoseconds()) / 1e3 / float64(cell.Queries)

	// (a) Additive accuracy against exact SimRank, over both query paths.
	pairErr, _ := eval.MaxError(res.pair, truth)
	rowErr, _ := eval.MaxError(res.rows, truth)
	cell.MaxErr = math.Max(pairErr, rowErr)
	cell.Headroom = cfg.Eps - cell.MaxErr
	if cell.MaxErr > cfg.Eps {
		fail("max additive error %.6f exceeds eps %.4f", cell.MaxErr, cfg.Eps)
	}

	// (c) Invariants.
	if gap := eval.SymmetryGap(res.pair); gap > symTol {
		fail("pair symmetry gap %.3g exceeds %.1g", gap, symTol)
	}
	hi := 1 + cfg.Eps + rangeTol
	if be.Meta().Clamped {
		hi = 1
	}
	if lo, top := eval.RangeViolation(res.pair, 0, hi), eval.RangeViolation(res.rows, 0, hi); lo > 0 || top > 0 {
		fail("scores leave [0, %.4g] by up to %.3g", hi, math.Max(lo, top))
	}
	for u := 0; u < n; u++ {
		if d := math.Abs(res.pair.At(u, u) - 1); d > cfg.Eps {
			fail("s(%d,%d) = %.4f, not within eps of 1", u, u, res.pair.At(u, u))
			break
		}
	}
	for u := 0; u < n; u++ {
		if !sameRows(batch[u], res.rows.Row(u)) {
			fail("batch row %d differs bitwise from single-source", u)
			break
		}
	}
	for u := 0; u < n; u++ {
		row := res.rows.Row(u)
		if !sameScored(res.topk[u], core.SelectTop(row, o.K, sling.NodeID(u))) {
			fail("topk(%d) inconsistent with own single-source row", u)
			break
		}
		if !sameScored(res.stop[u], core.SelectTop(row, o.K+1, -1)) {
			fail("sourcetop(%d) inconsistent with own single-source row", u)
			break
		}
	}

	// (b) Bitwise cross-backend equivalence. A reference whose own
	// evaluation early-returned has incomplete answer sets; record that
	// as a failure instead of indexing into the missing data.
	if ref != nil && (len(ref.topk) != n || len(ref.stop) != n) {
		cell.BitwiseRef = ref.cell.Backend
		fail("reference %s evaluation incomplete; bitwise check impossible", ref.cell.Backend)
		ref = nil
	}
	if ref != nil {
		cell.BitwiseRef = ref.cell.Backend
		cell.BitwiseOK = true
		if !sameRows(res.pair.Data, ref.pair.Data) {
			cell.BitwiseOK = false
			fail("pair answers differ bitwise from %s", ref.cell.Backend)
		}
		if !sameRows(res.rows.Data, ref.rows.Data) {
			cell.BitwiseOK = false
			fail("single-source answers differ bitwise from %s", ref.cell.Backend)
		}
		for u := 0; u < n; u++ {
			if !sameScored(res.topk[u], ref.topk[u]) || !sameScored(res.stop[u], ref.stop[u]) {
				cell.BitwiseOK = false
				fail("top-k answers differ from %s at source %d", ref.cell.Backend, u)
				break
			}
		}
	}

	cell.Pass = len(cell.Violations) == 0
	if cell.Violations == nil {
		cell.Violations = []string{} // always a JSON array
	}
	return res
}

// sameRows reports bitwise equality of two score slices (NaN-safe).
func sameRows(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// sameScored reports bitwise equality of two top-k selections.
func sameScored(a, b []sling.Scored) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Node != b[i].Node || math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			return false
		}
	}
	return true
}

// dynamicCells covers the updatable backend: a deterministic update mix
// is applied, the stale phase is checked against exact SimRank on the
// mutated graph (ε holds through the Monte Carlo fallback), then a
// rebuild swaps the epoch and the rebuilt index is checked bitwise
// against a clamped fresh build — plus the HTTP dynamic mode when
// enabled. The instance is durably backed, and both phases gain a
// restored twin (snapshot + WAL-tail replay from the same directory)
// that must answer bitwise-identically to the live index.
func dynamicCells(o Options, fam workload.Family, cfg Config, g *sling.Graph,
	opt *sling.Options) ([]Cell, error) {

	durDir := filepath.Join(o.Dir, fmt.Sprintf("durable-%s-%s", fam.Name, cfg))
	dx, buildMS, err := timed(func() (*sling.DynamicIndex, error) {
		return sling.NewDynamic(g, &sling.DynamicOptions{DurableDir: durDir}, sling.WithOptions(*opt))
	})
	if err != nil {
		return nil, fmt.Errorf("dynamic build: %w", err)
	}
	defer dx.Close()
	defer os.RemoveAll(durDir)

	// Deterministic update mix keyed on (seed, family, config): fresh
	// adds plus removes of existing edges.
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d", fam.Name, cfg, o.Seed)
	r := rng.New(h.Sum64())
	n := g.NumNodes()
	var ops []sling.EdgeOp
	for i := 0; i < n/2; i++ {
		ops = append(ops, sling.EdgeOp{Add: true,
			From: sling.NodeID(r.Intn(n)), To: sling.NodeID(r.Intn(n))})
	}
	for i := 0; i < n/4; i++ {
		u := sling.NodeID(r.Intn(n))
		outs := g.OutNeighbors(u)
		if len(outs) == 0 {
			continue
		}
		ops = append(ops, sling.EdgeOp{From: u, To: outs[r.Intn(len(outs))]})
	}
	applyStart := time.Now()
	if _, applied, err := dx.Apply(ops); err != nil {
		return nil, fmt.Errorf("apply: %w", err)
	} else if applied == 0 {
		return nil, fmt.Errorf("update mix applied no ops")
	}
	buildMS += float64(time.Since(applyStart).Nanoseconds()) / 1e6

	mutated := dx.Graph()
	truth, err := eval.GroundTruth(mutated, cfg.C)
	if err != nil {
		return nil, fmt.Errorf("mutated ground truth: %w", err)
	}

	staleCell := evaluateStale(o, fam, cfg, dx, truth)
	staleCell.BuildMS = buildMS
	cells := []Cell{staleCell}

	// Restore from the durable directory while the update mix is still a
	// pure WAL tail (initial snapshot + replayed records) and require
	// bitwise-identical answers from the restored twin.
	cells = append(cells, restoredCell(o, fam, cfg, dx, durDir, opt))

	// Rebuild and compare bitwise against a clamped fresh build of the
	// mutated graph.
	rebuildStart := time.Now()
	if _, err := dx.Rebuild(); err != nil {
		return nil, fmt.Errorf("rebuild: %w", err)
	}
	rebuildMS := float64(time.Since(rebuildStart).Nanoseconds()) / 1e6
	fresh, err := sling.Build(mutated, sling.WithOptions(*opt))
	if err != nil {
		return nil, fmt.Errorf("fresh build of mutated graph: %w", err)
	}
	refRes := evaluate(o, fam, cfg, mutated, truth, newClampedBackend(NamedBackend(fresh, "memory")), nil)
	dynRes := evaluate(o, fam, cfg, mutated, truth,
		NamedBackend(dx, "dynamic-rebuilt"), refRes)
	dynRes.cell.BuildMS = rebuildMS
	cells = append(cells, dynRes.cell)

	// The swap wrote a snapshot; a post-rebuild restore runs the full
	// evaluation with the rebuilt index as its bitwise reference.
	restored, restoreMS, err := timed(func() (*sling.DynamicIndex, error) {
		return sling.RestoreDynamic(
			&sling.DynamicOptions{DurableDir: durDir, DurableReadOnly: true},
			sling.WithOptions(*opt))
	})
	if err != nil {
		return nil, fmt.Errorf("restore after rebuild: %w", err)
	}
	restRes := evaluate(o, fam, cfg, mutated, truth,
		NamedBackend(restored, "dynamic-restored"), dynRes)
	restRes.cell.BuildMS = restoreMS
	restored.Close()
	cells = append(cells, restRes.cell)

	if o.HTTP {
		srv, err := server.NewDynamic(dx, nil, server.Config{})
		if err != nil {
			return nil, fmt.Errorf("dynamic server: %w", err)
		}
		httpRes := evaluate(o, fam, cfg, mutated, truth,
			NewHTTPBackend("http-dynamic", srv, mutated.NumNodes(), true), dynRes)
		cells = append(cells, httpRes.cell)
	}
	return cells, nil
}

// restoredCell restores a read-only twin from durDir mid-run — while
// the directory holds the initial snapshot plus the whole update mix as
// a WAL tail — and requires a sampled set of answers (affected-source
// rows, top-k, pairs, and a batch) to be bitwise-identical to the live
// instance's. Stale-phase answers route through the Monte Carlo
// fallback, so equality here proves the restored frontier, pool
// seeding, and graph all match exactly.
func restoredCell(o Options, fam workload.Family, cfg Config,
	dx *sling.DynamicIndex, durDir string, opt *sling.Options) Cell {

	cell := Cell{
		Family: fam.Name, Backend: "dynamic-restored-stale",
		N: dx.NumNodes(), M: dx.Graph().NumEdges(), C: cfg.C, Eps: cfg.Eps,
		BitwiseRef: "dynamic-stale", BitwiseOK: true,
		Violations: []string{},
	}
	fail := func(format string, args ...interface{}) {
		cell.BitwiseOK = false
		if len(cell.Violations) < 8 {
			cell.Violations = append(cell.Violations, fmt.Sprintf(format, args...))
		}
	}
	done := func() Cell {
		// The cell measures equality, not accuracy: its answers are the
		// reference's bit for bit, so it inherits that cell's error and
		// contributes only nominal headroom to the report minimum.
		cell.Headroom = cfg.Eps - cell.MaxErr
		cell.Pass = len(cell.Violations) == 0
		return cell
	}
	restored, restoreMS, err := timed(func() (*sling.DynamicIndex, error) {
		return sling.RestoreDynamic(
			&sling.DynamicOptions{DurableDir: durDir, DurableReadOnly: true},
			sling.WithOptions(*opt))
	})
	cell.BuildMS = restoreMS
	if err != nil {
		fail("restore: %v", err)
		return done()
	}
	defer restored.Close()
	if got, want := restored.Graph().NumEdges(), dx.Graph().NumEdges(); got != want {
		fail("restored graph has %d edges, live has %d", got, want)
		return done()
	}

	ctx := context.Background()
	qstart := time.Now()
	aff := dx.AffectedNodes()
	sources := aff
	if len(sources) > 4 {
		sources = sources[:4]
	}
	for _, u := range sources {
		want, err := dx.SingleSource(ctx, u, nil)
		if err != nil {
			fail("live source(%d): %v", u, err)
			return done()
		}
		got, err := restored.SingleSource(ctx, u, nil)
		if err != nil {
			fail("restored source(%d): %v", u, err)
			return done()
		}
		cell.Queries++
		if !sameRows(got, want) {
			fail("restored source(%d) differs bitwise", u)
		}
		wantTK, err := dx.TopK(ctx, u, o.K)
		if err != nil {
			fail("live topk(%d): %v", u, err)
			return done()
		}
		gotTK, err := restored.TopK(ctx, u, o.K)
		if err != nil {
			fail("restored topk(%d): %v", u, err)
			return done()
		}
		cell.Queries++
		if !sameScored(gotTK, wantTK) {
			fail("restored topk(%d) differs bitwise", u)
		}
	}
	if len(sources) > 0 {
		wantB, err1 := dx.SingleSourceBatch(ctx, sources)
		gotB, err2 := restored.SingleSourceBatch(ctx, sources)
		if err1 != nil || err2 != nil {
			fail("batch: live err %v, restored err %v", err1, err2)
			return done()
		}
		cell.Queries += len(sources)
		for i := range sources {
			if !sameRows(gotB[i], wantB[i]) {
				fail("restored batch row for source %d differs bitwise", sources[i])
				break
			}
		}
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "restored|%s|%s|%d", fam.Name, cfg, o.Seed)
	r := rng.New(h.Sum64())
	n := dx.NumNodes()
	for q := 0; q < 24 && len(aff) > 0; q++ {
		u := aff[r.Intn(len(aff))]
		v := sling.NodeID(r.Intn(n))
		want, err := dx.SimRank(ctx, u, v)
		if err != nil {
			fail("live simrank(%d,%d): %v", u, v, err)
			return done()
		}
		got, err := restored.SimRank(ctx, u, v)
		if err != nil {
			fail("restored simrank(%d,%d): %v", u, v, err)
			return done()
		}
		cell.Queries++
		if math.Float64bits(got) != math.Float64bits(want) {
			fail("restored simrank(%d,%d) differs bitwise", u, v)
		}
	}
	if cell.Queries > 0 {
		cell.AvgQueryUS = float64(time.Since(qstart).Nanoseconds()) / 1e3 / float64(cell.Queries)
	}
	return done()
}

// evaluateStale checks the pre-rebuild phase: answers touching the
// staleness frontier fall back to Monte Carlo estimation on the mutated
// graph and must still be within ε of exact SimRank. Derived walk counts
// make full-matrix sweeps expensive, so this cell samples affected
// sources and pairs instead.
func evaluateStale(o Options, fam workload.Family, cfg Config,
	dx *sling.DynamicIndex, truth *power.Scores) Cell {

	cell := Cell{
		Family: fam.Name, Backend: "dynamic-stale",
		N: dx.NumNodes(), M: dx.Graph().NumEdges(), C: cfg.C, Eps: cfg.Eps,
		Violations: []string{},
	}
	fail := func(format string, args ...interface{}) {
		if len(cell.Violations) < 8 {
			cell.Violations = append(cell.Violations, fmt.Sprintf(format, args...))
		}
	}
	aff := dx.AffectedNodes()
	if len(aff) == 0 {
		fail("update mix left no affected nodes")
		return cell
	}
	n := dx.NumNodes()
	h := fnv.New64a()
	fmt.Fprintf(h, "stale|%s|%s|%d", fam.Name, cfg, o.Seed)
	r := rng.New(h.Sum64())

	ctx := context.Background()
	qstart := time.Now()
	sources := aff
	if len(sources) > 4 {
		sources = sources[:4]
	}
	for _, u := range sources {
		row, err := dx.SingleSource(ctx, u, nil)
		if err != nil {
			fail("source(%d): %v", u, err)
			return cell
		}
		worst, err := eval.RowMaxError(truth, u, row)
		if err != nil {
			fail("source(%d): %v", u, err)
			return cell
		}
		cell.Queries++
		if worst > cell.MaxErr {
			cell.MaxErr = worst
		}
		if v := eval.RangeViolationSlice(row, 0, 1); v > 0 {
			fail("stale source %d leaves [0,1] by %.3g", u, v)
		}
		// Top-k consistency against the backend's own row.
		tk, err := dx.TopK(ctx, u, o.K)
		if err != nil {
			fail("stale topk(%d): %v", u, err)
			return cell
		}
		if !sameScored(tk, core.SelectTop(row, o.K, u)) {
			fail("stale topk(%d) inconsistent with own row", u)
		}
		cell.Queries++
	}
	// Pair queries with at least one affected endpoint, plus symmetry.
	for q := 0; q < 40; q++ {
		u := aff[r.Intn(len(aff))]
		v := sling.NodeID(r.Intn(n))
		s, err := dx.SimRank(ctx, u, v)
		if err != nil {
			fail("stale simrank(%d,%d): %v", u, v, err)
			return cell
		}
		cell.Queries++
		if e := eval.PairError(truth, u, v, s); e > cell.MaxErr {
			cell.MaxErr = e
		}
		rev, err := dx.SimRank(ctx, v, u)
		if err != nil {
			fail("stale simrank(%d,%d): %v", v, u, err)
			return cell
		}
		if d := math.Abs(s - rev); d > 2*cfg.Eps {
			// Each direction is within ε of the same exact score, so the
			// spread between the two coupled MC estimates is bounded by 2ε.
			fail("stale pair (%d,%d) asymmetry %.4f exceeds 2*eps", u, v, d)
		}
	}
	cell.AvgQueryUS = float64(time.Since(qstart).Nanoseconds()) / 1e3 / float64(cell.Queries)
	cell.Headroom = cfg.Eps - cell.MaxErr
	if cell.MaxErr > cfg.Eps {
		fail("stale max additive error %.6f exceeds eps %.4f", cell.MaxErr, cfg.Eps)
	}
	cell.Pass = len(cell.Violations) == 0
	return cell
}
