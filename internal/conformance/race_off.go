//go:build !race

package conformance

// raceEnabled reports whether the race detector is compiled in. The
// matrix tests shrink under it: instrumentation slows the full sweep
// ~15x, and race mode is about concurrency, not matrix coverage — the
// CI conformance job runs the full matrix un-instrumented.
const raceEnabled = false
