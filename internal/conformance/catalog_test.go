package conformance

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sling"
	"sling/internal/catalog"
	"sling/internal/rng"
	"sling/internal/server"
)

// The catalog server must be invisible in the scores: a graph served
// through /g/{id}/... routing — lazy open, handle leasing, quota
// accounting, metric observation — answers every query bitwise-equal to
// a Querier constructed directly from the same edge list and options.
// These tests pin that equivalence for all three backend modes at once,
// and run the catalog-served backends through the same contract checks
// (bad nodes, pre-cancelled contexts, Meta coherence) as the rest of
// the harness.

const catalogNodes = 24

// writeCatalogGraph writes a directed edge list: a ring (so every node
// appears, in order, making dense IDs equal labels) plus seeded random
// edges.
func writeCatalogGraph(t *testing.T, path string, seed int64) {
	t.Helper()
	r := rng.New(uint64(seed))
	var buf []byte
	for i := 0; i < catalogNodes; i++ {
		buf = append(buf, fmt.Sprintf("%d %d\n", i, (i+1)%catalogNodes)...)
	}
	for i := 0; i < 5*catalogNodes; i++ {
		buf = append(buf, fmt.Sprintf("%d %d\n", r.Intn(catalogNodes), r.Intn(catalogNodes))...)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// catalogSet serves mem+disk+dyn graphs through one catalog server and
// builds the reference Querier for each from the same inputs. Returned
// backends are keyed by graph ID.
func catalogSet(t *testing.T) (srv *server.Server, http map[string]Backend, refs map[string]sling.Querier) {
	t.Helper()
	dir := t.TempDir()
	for id, seed := range map[string]int64{"mem": 3, "disk": 5, "dyn": 7} {
		writeCatalogGraph(t, filepath.Join(dir, id+".txt"), seed)
	}

	// The disk entry opens a prebuilt index file; build and save it now.
	gDisk, _, err := sling.LoadEdgeListFile(filepath.Join(dir, "disk.txt"), false)
	if err != nil {
		t.Fatal(err)
	}
	ixDisk, err := sling.Build(gDisk, sling.WithEps(0.1), sling.WithSeed(43))
	if err != nil {
		t.Fatal(err)
	}
	slix := filepath.Join(dir, "disk.slix")
	if err := ixDisk.Save(slix); err != nil {
		t.Fatal(err)
	}
	ixDisk.Close()

	m := catalog.Manifest{
		Default: "mem",
		Graphs: []catalog.GraphSpec{
			{ID: "mem", Graph: filepath.Join(dir, "mem.txt"), Eps: 0.1, Seed: 41},
			{ID: "disk", Graph: filepath.Join(dir, "disk.txt"), Mode: "disk", Index: slix, CacheBytes: 1 << 16},
			{ID: "dyn", Graph: filepath.Join(dir, "dyn.txt"), Mode: "dynamic", Eps: 0.12, Seed: 47, Walks: 32},
		},
	}
	cat, err := catalog.New(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	srv, err = server.NewCatalog(cat, server.Config{})
	if err != nil {
		t.Fatal(err)
	}

	refs = make(map[string]sling.Querier)
	gMem, _, err := sling.LoadEdgeListFile(filepath.Join(dir, "mem.txt"), false)
	if err != nil {
		t.Fatal(err)
	}
	refs["mem"], err = sling.Build(gMem, sling.WithEps(0.1), sling.WithSeed(41))
	if err != nil {
		t.Fatal(err)
	}
	refs["disk"], err = sling.OpenDiskWithOptions(slix, gDisk, &sling.DiskOptions{CacheBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	gDyn, _, err := sling.LoadEdgeListFile(filepath.Join(dir, "dyn.txt"), false)
	if err != nil {
		t.Fatal(err)
	}
	refs["dyn"], err = sling.NewDynamic(gDyn, &sling.DynamicOptions{NumWalks: 32, Seed: 47},
		sling.WithEps(0.12), sling.WithSeed(47))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, q := range refs {
			q.Close()
		}
	})

	http = make(map[string]Backend)
	for _, id := range []string{"mem", "disk", "dyn"} {
		// The dynamic layer clamps scores to [0, 1]; its wire backend
		// carries the same flag so Meta stays coherent.
		http[id] = NewHTTPBackendAt("http-catalog-"+id, srv, "/g/"+id, catalogNodes, id == "dyn")
	}
	return srv, http, refs
}

func TestCatalogServerBitwiseEqualsDirect(t *testing.T) {
	_, backends, refs := catalogSet(t)
	ctx := context.Background()
	for _, id := range []string{"mem", "disk", "dyn"} {
		be, ref := backends[id], refs[id]
		t.Run(id, func(t *testing.T) {
			for u := sling.NodeID(0); u < catalogNodes; u += 5 {
				for v := sling.NodeID(0); v < catalogNodes; v += 7 {
					want, err := ref.SimRank(ctx, u, v)
					if err != nil {
						t.Fatal(err)
					}
					got, err := be.SimRank(ctx, u, v)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("SimRank(%d,%d): catalog %v != direct %v", u, v, got, want)
					}
				}
			}
			for u := sling.NodeID(0); u < catalogNodes; u += 3 {
				want, err := ref.SingleSource(ctx, u, nil)
				if err != nil {
					t.Fatal(err)
				}
				got, err := be.SingleSource(ctx, u, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !sameRows(got, want) {
					t.Fatalf("SingleSource(%d) differs through catalog routing", u)
				}

				wantK, err := ref.TopK(ctx, u, 8)
				if err != nil {
					t.Fatal(err)
				}
				gotK, err := be.TopK(ctx, u, 8)
				if err != nil {
					t.Fatal(err)
				}
				if !sameScored(gotK, wantK) {
					t.Fatalf("TopK(%d, 8) differs through catalog routing", u)
				}

				wantS, err := ref.SourceTop(ctx, u, 6)
				if err != nil {
					t.Fatal(err)
				}
				gotS, err := be.SourceTop(ctx, u, 6)
				if err != nil {
					t.Fatal(err)
				}
				if !sameScored(gotS, wantS) {
					t.Fatalf("SourceTop(%d, 6) differs through catalog routing", u)
				}
			}
			us := []sling.NodeID{0, 7, 13, 23}
			want, err := ref.SingleSourceBatch(ctx, us)
			if err != nil {
				t.Fatal(err)
			}
			got, err := be.SingleSourceBatch(ctx, us)
			if err != nil {
				t.Fatal(err)
			}
			for i := range us {
				if !sameRows(got[i], want[i]) {
					t.Fatalf("SingleSourceBatch row %d differs through catalog routing", i)
				}
			}
		})
	}
}

func TestCatalogServerContract(t *testing.T) {
	_, backends, _ := catalogSet(t)
	ctx := context.Background()
	for _, id := range []string{"mem", "disk", "dyn"} {
		be := backends[id]
		t.Run(id, func(t *testing.T) {
			for _, bad := range []sling.NodeID{catalogNodes, -1, 999} {
				if _, err := be.SimRank(ctx, bad, 0); !errors.Is(err, sling.ErrNodeRange) {
					t.Errorf("SimRank(%d, 0): got %v, want ErrNodeRange", bad, err)
				}
				if _, err := be.TopK(ctx, bad, 3); !errors.Is(err, sling.ErrNodeRange) {
					t.Errorf("TopK(%d, 3): got %v, want ErrNodeRange", bad, err)
				}
			}
			cancelled, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := be.SimRank(cancelled, 0, 1); !errors.Is(err, context.Canceled) {
				t.Errorf("pre-cancelled SimRank: got %v, want context.Canceled", err)
			}
			m := be.Meta()
			if m.Nodes != catalogNodes {
				t.Errorf("Meta.Nodes = %d, want %d", m.Nodes, catalogNodes)
			}
			if m.C <= 0 || m.C >= 1 || m.Eps <= 0 {
				t.Errorf("Meta did not surface guarantee parameters: C=%v Eps=%v", m.C, m.Eps)
			}
		})
	}
}
