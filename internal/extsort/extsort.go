// Package extsort provides a bounded-memory external merge sort for the
// fixed-size HP records of SLING's out-of-core index construction
// (Section 5.4 of the paper): records accumulate in a memory buffer, spill
// to sorted run files when the buffer fills, and stream back in a k-way
// merge. The out-of-core builder sorts all h̃^(ℓ)(x, k) entries by
// (x, step, k), which is exactly the on-disk index layout, using
// O((n/ε)·log(n/ε)) sequential I/O as the paper prescribes.
package extsort

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Record is one sortable unit: a node-keyed entry ordered by (Node, Key).
type Record struct {
	Node int32
	Key  uint64
	Val  float64
}

// Less orders records by (Node, Key).
func (r Record) Less(o Record) bool {
	if r.Node != o.Node {
		return r.Node < o.Node
	}
	return r.Key < o.Key
}

const recordBytes = 4 + 8 + 8

func encode(r Record, buf []byte) {
	binary.LittleEndian.PutUint32(buf, uint32(r.Node))
	binary.LittleEndian.PutUint64(buf[4:], r.Key)
	binary.LittleEndian.PutUint64(buf[12:], math.Float64bits(r.Val))
}

func decode(buf []byte) Record {
	return Record{
		Node: int32(binary.LittleEndian.Uint32(buf)),
		Key:  binary.LittleEndian.Uint64(buf[4:]),
		Val:  math.Float64frombits(binary.LittleEndian.Uint64(buf[12:])),
	}
}

// Sorter accumulates records and produces them in sorted order.
type Sorter struct {
	dir     string
	maxBuf  int // records held in memory before spilling
	buf     []Record
	runs    []string
	spills  int
	sorted  bool
	cleanup []string
}

// MinMemBudget is the smallest accepted memory budget (one I/O buffer's
// worth); tiny budgets still work but thrash pathologically.
const MinMemBudget = 64 * 1024

// New returns a Sorter spilling to dir, holding at most memBudget bytes of
// records in memory.
func New(dir string, memBudget int64) (*Sorter, error) {
	if memBudget < MinMemBudget {
		return nil, fmt.Errorf("extsort: memory budget %d below minimum %d", memBudget, int64(MinMemBudget))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("extsort: creating spill dir: %w", err)
	}
	maxBuf := int(memBudget / recordBytes)
	return &Sorter{dir: dir, maxBuf: maxBuf}, nil
}

// Add appends one record, spilling a sorted run when the buffer is full.
func (s *Sorter) Add(r Record) error {
	if s.sorted {
		return errors.New("extsort: Add after Sort")
	}
	s.buf = append(s.buf, r)
	if len(s.buf) >= s.maxBuf {
		return s.spill()
	}
	return nil
}

// Spills returns how many runs were written to disk so far.
func (s *Sorter) Spills() int { return s.spills }

func (s *Sorter) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	sort.Slice(s.buf, func(i, j int) bool { return s.buf[i].Less(s.buf[j]) })
	path := filepath.Join(s.dir, fmt.Sprintf("run-%06d.bin", s.spills))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("extsort: creating run file: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var rec [recordBytes]byte
	for _, r := range s.buf {
		encode(r, rec[:])
		if _, err := w.Write(rec[:]); err != nil {
			f.Close()
			return fmt.Errorf("extsort: writing run: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	s.runs = append(s.runs, path)
	s.cleanup = append(s.cleanup, path)
	s.spills++
	s.buf = s.buf[:0]
	return nil
}

// Sort finalizes input and returns an iterator over all records in
// (Node, Key) order. The Sorter cannot accept further Adds. Closing the
// iterator removes the spill files.
func (s *Sorter) Sort() (*Iterator, error) {
	if s.sorted {
		return nil, errors.New("extsort: Sort called twice")
	}
	s.sorted = true
	sort.Slice(s.buf, func(i, j int) bool { return s.buf[i].Less(s.buf[j]) })
	it := &Iterator{mem: s.buf, cleanup: s.cleanup}
	for _, path := range s.runs {
		f, err := os.Open(path)
		if err != nil {
			it.Close()
			return nil, fmt.Errorf("extsort: reopening run: %w", err)
		}
		rr := &runReader{f: f, br: bufio.NewReaderSize(f, 1<<20)}
		ok, err := rr.advance()
		if err != nil {
			it.Close()
			return nil, err
		}
		if ok {
			it.heap = append(it.heap, rr)
		} else {
			f.Close()
		}
	}
	heap.Init(&it.heap)
	return it, nil
}

// Iterator streams merged records. It is not safe for concurrent use.
type Iterator struct {
	mem     []Record
	memPos  int
	heap    runHeap
	cleanup []string
	closed  bool
}

// Next returns the next record in order; ok is false at the end.
func (it *Iterator) Next() (rec Record, ok bool, err error) {
	memOK := it.memPos < len(it.mem)
	if len(it.heap) == 0 {
		if !memOK {
			return Record{}, false, nil
		}
		rec = it.mem[it.memPos]
		it.memPos++
		return rec, true, nil
	}
	top := it.heap[0]
	if memOK && it.mem[it.memPos].Less(top.cur) {
		rec = it.mem[it.memPos]
		it.memPos++
		return rec, true, nil
	}
	rec = top.cur
	ok2, err := top.advance()
	if err != nil {
		return Record{}, false, err
	}
	if ok2 {
		heap.Fix(&it.heap, 0)
	} else {
		top.f.Close()
		heap.Pop(&it.heap)
	}
	return rec, true, nil
}

// Close releases run files and deletes them.
func (it *Iterator) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	for _, rr := range it.heap {
		rr.f.Close()
	}
	it.heap = nil
	var firstErr error
	for _, path := range it.cleanup {
		if err := os.Remove(path); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

type runReader struct {
	f   *os.File
	br  *bufio.Reader
	cur Record
}

// advance loads the next record into cur; ok is false at EOF.
func (r *runReader) advance() (bool, error) {
	var buf [recordBytes]byte
	_, err := io.ReadFull(r.br, buf[:])
	if err == io.EOF {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("extsort: reading run: %w", err)
	}
	r.cur = decode(buf[:])
	return true, nil
}

type runHeap []*runReader

func (h runHeap) Len() int            { return len(h) }
func (h runHeap) Less(i, j int) bool  { return h[i].cur.Less(h[j].cur) }
func (h runHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x interface{}) { *h = append(*h, x.(*runReader)) }
func (h *runHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
