package extsort

import (
	"os"
	"testing"
	"testing/quick"

	"sling/internal/rng"
)

func drain(t *testing.T, it *Iterator) []Record {
	t.Helper()
	var out []Record
	for {
		r, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, r)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

func randomRecords(n int, seed uint64) []Record {
	r := rng.New(seed)
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Node: int32(r.Intn(100)),
			Key:  r.Uint64n(1000),
			Val:  r.Float64(),
		}
	}
	return recs
}

func checkSorted(t *testing.T, recs []Record) {
	t.Helper()
	for i := 1; i < len(recs); i++ {
		if recs[i].Less(recs[i-1]) {
			t.Fatalf("records %d and %d out of order: %+v > %+v", i-1, i, recs[i-1], recs[i])
		}
	}
}

func recordMultiset(recs []Record) map[Record]int {
	m := make(map[Record]int, len(recs))
	for _, r := range recs {
		m[r]++
	}
	return m
}

func TestRejectsTinyBudget(t *testing.T) {
	if _, err := New(t.TempDir(), 100); err == nil {
		t.Fatal("tiny budget accepted")
	}
}

func TestEmptyInput(t *testing.T) {
	s, err := New(t.TempDir(), MinMemBudget)
	if err != nil {
		t.Fatal(err)
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	if out := drain(t, it); len(out) != 0 {
		t.Fatalf("empty sorter produced %d records", len(out))
	}
}

func TestInMemoryPath(t *testing.T) {
	s, err := New(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	in := randomRecords(1000, 1)
	for _, r := range in {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spills() != 0 {
		t.Fatalf("unexpected spills: %d", s.Spills())
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, it)
	checkSorted(t, out)
	if len(out) != len(in) {
		t.Fatalf("lost records: %d -> %d", len(in), len(out))
	}
}

func TestSpillingPath(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, MinMemBudget) // 64 KiB => ~3276 records per run
	if err != nil {
		t.Fatal(err)
	}
	in := randomRecords(20000, 2)
	for _, r := range in {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spills() < 2 {
		t.Fatalf("expected multiple spills, got %d", s.Spills())
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, it)
	checkSorted(t, out)
	want := recordMultiset(in)
	got := recordMultiset(out)
	if len(want) != len(got) {
		t.Fatal("multiset size mismatch")
	}
	for r, c := range want {
		if got[r] != c {
			t.Fatalf("record %+v count %d != %d", r, got[r], c)
		}
	}
}

func TestSpillFilesRemovedOnClose(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, MinMemBudget)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range randomRecords(20000, 3) {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	drain(t, it)
	entries, err := readDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("spill files left behind: %v", entries)
	}
}

func readDir(dir string) ([]string, error) {
	f, err := os.Open(dir)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return f.Readdirnames(-1)
}

func TestAddAfterSortFails(t *testing.T) {
	s, err := New(t.TempDir(), MinMemBudget)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sort(); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Record{}); err == nil {
		t.Fatal("Add after Sort accepted")
	}
	if _, err := s.Sort(); err == nil {
		t.Fatal("double Sort accepted")
	}
}

func TestDuplicatesPreserved(t *testing.T) {
	s, err := New(t.TempDir(), MinMemBudget)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Node: 5, Key: 42, Val: 0.5}
	const n = 10000
	for i := 0; i < n; i++ {
		if err := s.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, it)
	if len(out) != n {
		t.Fatalf("duplicate records lost: %d -> %d", n, len(out))
	}
}

// Property: for any record multiset and (small) budget, the output is the
// sorted permutation of the input.
func TestPropertySortedPermutation(t *testing.T) {
	f := func(seed uint64, countRaw uint16) bool {
		count := int(countRaw % 5000)
		in := randomRecords(count, seed)
		s, err := New(t.TempDir(), MinMemBudget)
		if err != nil {
			return false
		}
		for _, r := range in {
			if err := s.Add(r); err != nil {
				return false
			}
		}
		it, err := s.Sort()
		if err != nil {
			return false
		}
		var out []Record
		for {
			r, ok, err := it.Next()
			if err != nil {
				return false
			}
			if !ok {
				break
			}
			out = append(out, r)
		}
		it.Close()
		if len(out) != len(in) {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i].Less(out[i-1]) {
				return false
			}
		}
		want := recordMultiset(in)
		for r, c := range recordMultiset(out) {
			if want[r] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	recs := []Record{
		{Node: 0, Key: 0, Val: 0},
		{Node: -1, Key: 1<<64 - 1, Val: -1.5},
		{Node: 1 << 30, Key: 42, Val: 3.14159},
	}
	var buf [recordBytes]byte
	for _, r := range recs {
		encode(r, buf[:])
		if got := decode(buf[:]); got != r {
			t.Fatalf("round trip changed %+v -> %+v", r, got)
		}
	}
}

func BenchmarkSortSpilling(b *testing.B) {
	in := randomRecords(50000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(b.TempDir(), MinMemBudget)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range in {
			if err := s.Add(r); err != nil {
				b.Fatal(err)
			}
		}
		it, err := s.Sort()
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, ok, err := it.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
		it.Close()
	}
}
