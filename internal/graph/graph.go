// Package graph provides the directed-graph substrate shared by every
// SimRank method in this repository.
//
// Graphs are stored in compressed sparse row (CSR) form twice: once over
// outgoing edges and once over incoming edges. SimRank is defined over
// in-neighbors (reverse random walks), so the in-CSR is the hot structure;
// the out-CSR drives the local-update propagation of SLING's Algorithm 2
// and Algorithm 6. Node identifiers are dense int32 indices in [0, n).
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node as a dense index in [0, NumNodes).
type NodeID = int32

// Edge is a directed edge From -> To.
type Edge struct {
	From, To NodeID
}

// Graph is an immutable directed graph in dual-CSR form.
// Build one with a Builder or the loaders in this package.
type Graph struct {
	n int32
	m int64

	// Out-CSR: outTo[outOff[v]:outOff[v+1]] are v's out-neighbors.
	outOff []int64
	outTo  []int32

	// In-CSR: inFrom[inOff[v]:inOff[v+1]] are v's in-neighbors.
	inOff  []int64
	inFrom []int32
}

// NumNodes returns n, the number of nodes.
func (g *Graph) NumNodes() int { return int(g.n) }

// NumEdges returns m, the number of directed edges.
func (g *Graph) NumEdges() int { return int(g.m) }

// OutDegree returns the number of outgoing edges of v.
func (g *Graph) OutDegree(v NodeID) int {
	return int(g.outOff[v+1] - g.outOff[v])
}

// InDegree returns the number of incoming edges of v.
func (g *Graph) InDegree(v NodeID) int {
	return int(g.inOff[v+1] - g.inOff[v])
}

// OutNeighbors returns the out-neighbor slice of v.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) OutNeighbors(v NodeID) []int32 {
	return g.outTo[g.outOff[v]:g.outOff[v+1]]
}

// InNeighbors returns the in-neighbor slice of v.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) InNeighbors(v NodeID) []int32 {
	return g.inFrom[g.inOff[v]:g.inOff[v+1]]
}

// HasEdge reports whether the directed edge u -> v exists.
// Neighbor lists are sorted, so this is a binary search.
func (g *Graph) HasEdge(u, v NodeID) bool {
	ns := g.OutNeighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// Edges calls fn for every directed edge. It stops early if fn returns false.
func (g *Graph) Edges(fn func(from, to NodeID) bool) {
	for v := int32(0); v < g.n; v++ {
		for _, w := range g.OutNeighbors(v) {
			if !fn(v, w) {
				return
			}
		}
	}
}

// Stats summarizes the degree structure of a graph.
type Stats struct {
	Nodes        int
	Edges        int
	MaxInDegree  int
	MaxOutDegree int
	AvgDegree    float64 // m/n
	Sources      int     // nodes with in-degree 0 (dangling for reverse walks)
	Sinks        int     // nodes with out-degree 0
}

// Stats computes degree statistics in one pass.
func (g *Graph) Stats() Stats {
	s := Stats{Nodes: int(g.n), Edges: int(g.m)}
	if g.n > 0 {
		s.AvgDegree = float64(g.m) / float64(g.n)
	}
	for v := int32(0); v < g.n; v++ {
		in, out := g.InDegree(v), g.OutDegree(v)
		if in > s.MaxInDegree {
			s.MaxInDegree = in
		}
		if out > s.MaxOutDegree {
			s.MaxOutDegree = out
		}
		if in == 0 {
			s.Sources++
		}
		if out == 0 {
			s.Sinks++
		}
	}
	return s
}

// String implements fmt.Stringer with a one-line summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.n, g.m)
}

// Bytes returns the in-memory footprint of the dual-CSR representation.
func (g *Graph) Bytes() int64 {
	return int64(len(g.outOff))*8 + int64(len(g.inOff))*8 +
		int64(len(g.outTo))*4 + int64(len(g.inFrom))*4
}

// Validate checks internal CSR invariants. It is used by tests and by the
// loaders after deserialization; a healthy Graph always passes.
func (g *Graph) Validate() error {
	if int64(len(g.outTo)) != g.m || int64(len(g.inFrom)) != g.m {
		return fmt.Errorf("graph: edge array length mismatch: out=%d in=%d m=%d",
			len(g.outTo), len(g.inFrom), g.m)
	}
	if len(g.outOff) != int(g.n)+1 || len(g.inOff) != int(g.n)+1 {
		return errors.New("graph: offset array length mismatch")
	}
	if g.outOff[0] != 0 || g.inOff[0] != 0 || g.outOff[g.n] != g.m || g.inOff[g.n] != g.m {
		return errors.New("graph: offset endpoints invalid")
	}
	for v := int32(0); v < g.n; v++ {
		if g.outOff[v] > g.outOff[v+1] || g.inOff[v] > g.inOff[v+1] {
			return fmt.Errorf("graph: non-monotone offsets at node %d", v)
		}
		ns := g.OutNeighbors(v)
		for i, w := range ns {
			if w < 0 || w >= g.n {
				return fmt.Errorf("graph: out-edge %d->%d out of range", v, w)
			}
			if i > 0 && ns[i-1] > w {
				return fmt.Errorf("graph: out-neighbors of %d not sorted", v)
			}
		}
		ps := g.InNeighbors(v)
		for i, u := range ps {
			if u < 0 || u >= g.n {
				return fmt.Errorf("graph: in-edge %d->%d out of range", u, v)
			}
			if i > 0 && ps[i-1] > u {
				return fmt.Errorf("graph: in-neighbors of %d not sorted", v)
			}
		}
	}
	// The two CSRs must describe the same edge multiset.
	var outSum, inSum uint64
	for v := int32(0); v < g.n; v++ {
		for _, w := range g.OutNeighbors(v) {
			outSum += edgeHash(v, w)
		}
		for _, u := range g.InNeighbors(v) {
			inSum += edgeHash(u, v)
		}
	}
	if outSum != inSum {
		return errors.New("graph: in/out CSR describe different edge multisets")
	}
	return nil
}

func edgeHash(u, v int32) uint64 {
	x := uint64(uint32(u))<<32 | uint64(uint32(v))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n          int32
	edges      []Edge
	dedup      bool
	selfLoops  bool
	undirected bool
}

// NewBuilder returns a Builder for a graph with n nodes.
// By default duplicate edges are removed and self-loops are kept.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: int32(n), dedup: true, selfLoops: true}
}

// KeepDuplicates makes the builder retain parallel edges.
// SimRank's definition uses neighbor sets, so the default removes them.
func (b *Builder) KeepDuplicates() *Builder { b.dedup = false; return b }

// DropSelfLoops makes the builder discard u->u edges.
func (b *Builder) DropSelfLoops() *Builder { b.selfLoops = false; return b }

// Undirected makes every added edge also insert its reverse, matching how
// the paper treats the undirected datasets of Table 3.
func (b *Builder) Undirected() *Builder { b.undirected = true; return b }

// AddEdge records the directed edge from -> to.
// It panics if either endpoint is out of range.
func (b *Builder) AddEdge(from, to NodeID) {
	if from < 0 || from >= b.n || to < 0 || to >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", from, to, b.n))
	}
	if !b.selfLoops && from == to {
		return
	}
	b.edges = append(b.edges, Edge{from, to})
	if b.undirected && from != to {
		b.edges = append(b.edges, Edge{to, from})
	}
}

// NumPendingEdges returns the number of edges recorded so far
// (after self-loop filtering and undirected doubling, before dedup).
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build finalizes the graph. The builder can be reused afterwards; its
// accumulated edges are retained.
func (b *Builder) Build() *Graph {
	edges := b.edges
	if b.dedup {
		edges = dedupEdges(edges)
	} else {
		sorted := make([]Edge, len(edges))
		copy(sorted, edges)
		sortEdges(sorted)
		edges = sorted
	}
	g := &Graph{n: b.n, m: int64(len(edges))}
	g.outOff = make([]int64, b.n+1)
	g.inOff = make([]int64, b.n+1)
	g.outTo = make([]int32, len(edges))
	g.inFrom = make([]int32, len(edges))

	// Out-CSR directly from the sorted edge list.
	for _, e := range edges {
		g.outOff[e.From+1]++
	}
	for v := int32(0); v < b.n; v++ {
		g.outOff[v+1] += g.outOff[v]
	}
	for i, e := range edges {
		g.outTo[i] = e.To
	}
	// In-CSR via counting sort on To; stable scan keeps in-neighbors sorted
	// because edges are sorted by (From, To) and we bucket by To.
	for _, e := range edges {
		g.inOff[e.To+1]++
	}
	for v := int32(0); v < b.n; v++ {
		g.inOff[v+1] += g.inOff[v]
	}
	cursor := make([]int64, b.n)
	copy(cursor, g.inOff[:b.n])
	for _, e := range edges {
		g.inFrom[cursor[e.To]] = e.From
		cursor[e.To]++
	}
	return g
}

// dedupEdges sorts a copy of edges by (From, To) and removes duplicates.
func dedupEdges(edges []Edge) []Edge {
	sorted := make([]Edge, len(edges))
	copy(sorted, edges)
	sortEdges(sorted)
	out := sorted[:0]
	for i, e := range sorted {
		if i == 0 || sorted[i-1] != e {
			out = append(out, e)
		}
	}
	return out
}

func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
}

// FromEdges builds a directed graph with n nodes from an edge slice,
// removing duplicates and keeping self-loops.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.From, e.To)
	}
	return b.Build()
}

// Reverse returns the transpose graph (every edge flipped). The result
// shares no storage with g.
func (g *Graph) Reverse() *Graph {
	rev := &Graph{n: g.n, m: g.m}
	rev.outOff = append([]int64(nil), g.inOff...)
	rev.outTo = append([]int32(nil), g.inFrom...)
	rev.inOff = append([]int64(nil), g.outOff...)
	rev.inFrom = append([]int32(nil), g.outTo...)
	return rev
}

// InducedSubgraph returns the subgraph induced by keep (a set of node IDs)
// with nodes renumbered densely in the order given, plus the mapping from
// new IDs back to original IDs.
func (g *Graph) InducedSubgraph(keep []NodeID) (*Graph, []NodeID) {
	newID := make(map[NodeID]NodeID, len(keep))
	mapping := make([]NodeID, 0, len(keep))
	for _, v := range keep {
		if _, dup := newID[v]; dup {
			continue
		}
		newID[v] = NodeID(len(mapping))
		mapping = append(mapping, v)
	}
	b := NewBuilder(len(mapping))
	for _, v := range mapping {
		for _, w := range g.OutNeighbors(v) {
			if nw, ok := newID[w]; ok {
				b.AddEdge(newID[v], nw)
			}
		}
	}
	return b.Build(), mapping
}
