package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList: arbitrary text must parse or error, never panic, and
// a successful parse must yield a graph passing Validate.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n10 20\n")
	f.Add("")
	f.Add("a b\n")
	f.Add("1\n")
	f.Add("9999999999999999999999 1\n")
	f.Fuzz(func(t *testing.T, data string) {
		g, _, err := ReadEdgeList(strings.NewReader(data), nil)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph fails validation: %v", err)
		}
	})
}

// FuzzReadBinary: arbitrary bytes must never panic the binary loader.
func FuzzReadBinary(f *testing.F) {
	g := triangle()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("SLGR"))
	f.Add(valid[:10])
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("loaded graph fails validation: %v", err)
		}
	})
}

func TestReadBinaryTruncations(t *testing.T) {
	g := randomGraph(t, 30, 120, 9)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for cut := 0; cut < len(valid); cut += 5 {
		if _, err := ReadBinary(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
}
