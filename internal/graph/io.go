package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// LoadOptions controls edge-list parsing.
type LoadOptions struct {
	// Undirected inserts both directions for every line,
	// matching the paper's treatment of undirected datasets.
	Undirected bool
	// Comment is the set of line prefixes to skip; defaults to "#" and "%".
	Comment []string
}

func (o *LoadOptions) comments() []string {
	if o == nil || len(o.Comment) == 0 {
		return []string{"#", "%"}
	}
	return o.Comment
}

// ReadEdgeList parses a whitespace-separated "src dst" edge list in the
// SNAP format. Node labels may be arbitrary non-negative integers; they are
// remapped to dense IDs in order of first appearance. It returns the graph
// and the dense-ID -> original-label mapping.
func ReadEdgeList(r io.Reader, opts *LoadOptions) (*Graph, []int64, error) {
	var (
		edges  []Edge
		ids    = make(map[int64]NodeID)
		labels []int64
	)
	intern := func(label int64) NodeID {
		if id, ok := ids[label]; ok {
			return id
		}
		id := NodeID(len(labels))
		ids[label] = id
		labels = append(labels, label)
		return id
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	comments := opts.comments()
scan:
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		for _, c := range comments {
			if strings.HasPrefix(line, c) {
				continue scan
			}
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad source %q: %v", lineNo, fields[0], err)
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad target %q: %v", lineNo, fields[1], err)
		}
		if src < 0 || dst < 0 {
			return nil, nil, fmt.Errorf("graph: line %d: negative node label", lineNo)
		}
		edges = append(edges, Edge{intern(src), intern(dst)})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	b := NewBuilder(len(labels))
	if opts != nil && opts.Undirected {
		b.Undirected()
	}
	for _, e := range edges {
		b.AddEdge(e.From, e.To)
	}
	return b.Build(), labels, nil
}

// LoadEdgeListFile is ReadEdgeList over a file path.
func LoadEdgeListFile(path string, opts *LoadOptions) (*Graph, []int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadEdgeList(f, opts)
}

// WriteEdgeList emits the graph as "src dst" lines using dense IDs.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var firstErr error
	g.Edges(func(from, to NodeID) bool {
		if _, err := fmt.Fprintf(bw, "%d\t%d\n", from, to); err != nil {
			firstErr = err
			return false
		}
		return true
	})
	if firstErr != nil {
		return firstErr
	}
	return bw.Flush()
}

// Binary format:
//
//	magic "SLGR" | version u32 | n u32 | m u64 | outOff (n+1)*u64 | outTo m*u32
//
// The in-CSR is rebuilt on load; it is fully determined by the out-CSR.
const (
	binaryMagic   = "SLGR"
	binaryVersion = 1
)

// WriteBinary serializes the graph in the package's binary format.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:], binaryVersion)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(g.n))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.m))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, off := range g.outOff {
		binary.LittleEndian.PutUint64(buf, uint64(off))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	for _, to := range g.outTo {
		binary.LittleEndian.PutUint32(buf[:4], uint32(to))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary and rebuilds the
// in-CSR.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, errors.New("graph: bad magic; not a SLGR file")
	}
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", v)
	}
	n := int32(binary.LittleEndian.Uint32(hdr[4:]))
	m := int64(binary.LittleEndian.Uint64(hdr[8:]))
	if n < 0 || m < 0 {
		return nil, errors.New("graph: negative sizes in header")
	}
	g := &Graph{n: n, m: m}
	// Grow incrementally: a corrupt header claiming huge sizes must fail
	// at EOF instead of exhausting memory on the allocation.
	const chunk = 1 << 16
	buf := make([]byte, 8*chunk)
	g.outOff = make([]int64, 0, minI64(int64(n)+1, chunk))
	for int64(len(g.outOff)) < int64(n)+1 {
		want := int64(n) + 1 - int64(len(g.outOff))
		if want > chunk {
			want = chunk
		}
		if _, err := io.ReadFull(br, buf[:8*want]); err != nil {
			return nil, fmt.Errorf("graph: reading offsets: %w", err)
		}
		for i := int64(0); i < want; i++ {
			g.outOff = append(g.outOff, int64(binary.LittleEndian.Uint64(buf[8*i:])))
		}
	}
	g.outTo = make([]int32, 0, minI64(m, chunk))
	for int64(len(g.outTo)) < m {
		want := m - int64(len(g.outTo))
		if want > chunk {
			want = chunk
		}
		if _, err := io.ReadFull(br, buf[:4*want]); err != nil {
			return nil, fmt.Errorf("graph: reading edges: %w", err)
		}
		for i := int64(0); i < want; i++ {
			g.outTo = append(g.outTo, int32(binary.LittleEndian.Uint32(buf[4*i:])))
		}
	}
	// Offsets must be sane before rebuildInCSR indexes with them.
	if g.outOff[0] != 0 || g.outOff[n] != m {
		return nil, errors.New("graph: corrupt offset endpoints")
	}
	for v := int32(0); v < n; v++ {
		if g.outOff[v] > g.outOff[v+1] {
			return nil, errors.New("graph: non-monotone offsets")
		}
	}
	for _, to := range g.outTo {
		if to < 0 || to >= n {
			return nil, errors.New("graph: edge target out of range")
		}
	}
	g.rebuildInCSR()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// rebuildInCSR reconstructs the in-CSR from the out-CSR.
func (g *Graph) rebuildInCSR() {
	g.inOff = make([]int64, g.n+1)
	g.inFrom = make([]int32, g.m)
	for v := int32(0); v < g.n; v++ {
		for _, w := range g.OutNeighbors(v) {
			g.inOff[w+1]++
		}
	}
	for v := int32(0); v < g.n; v++ {
		g.inOff[v+1] += g.inOff[v]
	}
	cursor := make([]int64, g.n)
	copy(cursor, g.inOff[:g.n])
	for v := int32(0); v < g.n; v++ {
		for _, w := range g.OutNeighbors(v) {
			g.inFrom[cursor[w]] = v
			cursor[w]++
		}
	}
}

// SaveBinaryFile writes the graph to path in binary form.
func (g *Graph) SaveBinaryFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinaryFile reads a binary graph from path.
func LoadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
