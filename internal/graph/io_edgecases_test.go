package graph

import (
	"strings"
	"testing"
)

// TestReadEdgeListTable is the table-driven edge-case sweep for the
// SNAP-format loader: every odd input shape a real edge-list file shows
// up with, with the exact graph (or error) it must produce.
func TestReadEdgeListTable(t *testing.T) {
	cases := []struct {
		name  string
		in    string
		opts  *LoadOptions
		// expectations (ignored when wantErr is set)
		wantErr    bool
		nodes      int
		edges      int
		labels     []int64
		hasEdge    [][2]int64 // in original labels
		missesEdge [][2]int64
	}{
		{
			name:   "hash comments and blank lines",
			in:     "# header\n\n0 1\n\n# trailing comment\n1 2\n\n",
			nodes:  3,
			edges:  2,
			labels: []int64{0, 1, 2},
		},
		{
			name:   "percent comments",
			in:     "% matrix-market style\n3 4\n",
			nodes:  2,
			edges:  1,
			labels: []int64{3, 4},
		},
		{
			name:  "duplicate edges dedup",
			in:    "0 1\n0 1\n0 1\n1 0\n",
			nodes: 2,
			edges: 2, // 0->1 kept once, 1->0 kept
		},
		{
			name:    "self-loops kept",
			in:      "5 5\n5 6\n",
			nodes:   2,
			edges:   2,
			labels:  []int64{5, 6},
			hasEdge: [][2]int64{{5, 5}, {5, 6}},
		},
		{
			name:  "CRLF line endings",
			in:    "# dos file\r\n0 1\r\n1 2\r\n",
			nodes: 3,
			edges: 2,
		},
		{
			name:  "tabs and extra whitespace",
			in:    "  0\t1  \n\t7   9\t\n",
			nodes: 4,
			edges: 2,
		},
		{
			name:  "extra fields ignored",
			in:    "0 1 1.5 extra\n1 2 0.3\n",
			nodes: 3,
			edges: 2,
		},
		{
			name:   "labels remapped in first-appearance order",
			in:     "1000 7\n7 1000\n3 1000\n",
			nodes:  3,
			labels: []int64{1000, 7, 3},
			edges:  3,
		},
		{
			name:  "undirected doubles edges",
			in:    "0 1\n1 2\n",
			opts:  &LoadOptions{Undirected: true},
			nodes: 3,
			edges: 4,
			hasEdge: [][2]int64{
				{0, 1}, {1, 0}, {1, 2}, {2, 1},
			},
		},
		{
			name:       "undirected keeps self-loop single",
			in:         "0 0\n",
			opts:       &LoadOptions{Undirected: true},
			nodes:      1,
			edges:      1,
			hasEdge:    [][2]int64{{0, 0}},
			missesEdge: nil,
		},
		{
			name:  "custom comment prefix",
			in:    "// slash comment\n0 1\n",
			opts:  &LoadOptions{Comment: []string{"//"}},
			nodes: 2,
			edges: 1,
		},
		{name: "single field", in: "0\n", wantErr: true},
		{name: "bad source token", in: "x 1\n", wantErr: true},
		{name: "bad target token", in: "1 y\n", wantErr: true},
		{name: "float label", in: "1.5 2\n", wantErr: true},
		{name: "negative label", in: "-1 2\n", wantErr: true},
		{name: "bad line after good ones", in: "0 1\n1 2\nbroken\n", wantErr: true},
		{
			name:  "empty input is an empty graph",
			in:    "",
			nodes: 0,
			edges: 0,
		},
		{
			name:  "comments only",
			in:    "# a\n% b\n\n",
			nodes: 0,
			edges: 0,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g, labels, err := ReadEdgeList(strings.NewReader(tc.in), tc.opts)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want error, got %v", g)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("invalid graph: %v", err)
			}
			if g.NumNodes() != tc.nodes || g.NumEdges() != tc.edges {
				t.Fatalf("got n=%d m=%d, want n=%d m=%d",
					g.NumNodes(), g.NumEdges(), tc.nodes, tc.edges)
			}
			if tc.labels != nil {
				if len(labels) != len(tc.labels) {
					t.Fatalf("labels %v, want %v", labels, tc.labels)
				}
				for i := range tc.labels {
					if labels[i] != tc.labels[i] {
						t.Fatalf("labels %v, want %v", labels, tc.labels)
					}
				}
			}
			byLabel := make(map[int64]NodeID, len(labels))
			for id, l := range labels {
				byLabel[l] = NodeID(id)
			}
			for _, e := range tc.hasEdge {
				if !g.HasEdge(byLabel[e[0]], byLabel[e[1]]) {
					t.Errorf("edge %d->%d missing", e[0], e[1])
				}
			}
			for _, e := range tc.missesEdge {
				if g.HasEdge(byLabel[e[0]], byLabel[e[1]]) {
					t.Errorf("edge %d->%d unexpectedly present", e[0], e[1])
				}
			}
		})
	}
}
