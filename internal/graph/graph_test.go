package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"sling/internal/rng"
)

// triangle returns the 3-cycle 0->1->2->0.
func triangle() *Graph {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	return b.Build()
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNoEdges(t *testing.T) {
	g := NewBuilder(5).Build()
	if g.NumNodes() != 5 || g.NumEdges() != 0 {
		t.Fatalf("got n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	for v := int32(0); v < 5; v++ {
		if g.InDegree(v) != 0 || g.OutDegree(v) != 0 {
			t.Fatalf("node %d has edges in empty graph", v)
		}
	}
}

func TestTriangleAdjacency(t *testing.T) {
	g := triangle()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.OutNeighbors(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("out(0) = %v", got)
	}
	if got := g.InNeighbors(0); len(got) != 1 || got[0] != 2 {
		t.Fatalf("in(0) = %v", got)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge wrong on triangle")
	}
}

func TestDedupDefault(t *testing.T) {
	b := NewBuilder(2)
	for i := 0; i < 5; i++ {
		b.AddEdge(0, 1)
	}
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("dedup kept %d edges", g.NumEdges())
	}
}

func TestKeepDuplicates(t *testing.T) {
	b := NewBuilder(2).KeepDuplicates()
	for i := 0; i < 5; i++ {
		b.AddEdge(0, 1)
	}
	g := b.Build()
	if g.NumEdges() != 5 {
		t.Fatalf("KeepDuplicates kept %d edges, want 5", g.NumEdges())
	}
}

func TestDropSelfLoops(t *testing.T) {
	b := NewBuilder(2).DropSelfLoops()
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.NumEdges() != 1 || g.HasEdge(0, 0) {
		t.Fatalf("self loop not dropped: m=%d", g.NumEdges())
	}
}

func TestUndirectedBuilder(t *testing.T) {
	b := NewBuilder(3).Undirected()
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	if g.NumEdges() != 4 {
		t.Fatalf("undirected edge count %d, want 4", g.NumEdges())
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(2, 1) {
		t.Fatal("reverse edges missing")
	}
}

func TestUndirectedSelfLoopNotDoubled(t *testing.T) {
	b := NewBuilder(1).Undirected().KeepDuplicates()
	b.AddEdge(0, 0)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("self-loop doubled under Undirected: m=%d", g.NumEdges())
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestStats(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 1)
	b.AddEdge(1, 3)
	g := b.Build()
	s := g.Stats()
	if s.Nodes != 4 || s.Edges != 3 {
		t.Fatalf("stats n/m wrong: %+v", s)
	}
	if s.MaxInDegree != 2 {
		t.Fatalf("MaxInDegree = %d", s.MaxInDegree)
	}
	if s.Sources != 2 { // nodes 0 and 2
		t.Fatalf("Sources = %d", s.Sources)
	}
	if s.Sinks != 2 { // nodes 1? no: 1 has out-edge to 3; sinks are 1? recompute: out-degrees 0:1,1:1,2:1,3:0 -> 1 sink
		t.Logf("note: sinks=%d", s.Sinks)
	}
	if s.Sinks != 1 {
		t.Fatalf("Sinks = %d, want 1", s.Sinks)
	}
}

func TestReverse(t *testing.T) {
	g := triangle()
	r := g.Reverse()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	g.Edges(func(from, to NodeID) bool {
		if !r.HasEdge(to, from) {
			t.Fatalf("reverse missing %d->%d", to, from)
		}
		return true
	})
	if r.NumEdges() != g.NumEdges() {
		t.Fatal("reverse changed edge count")
	}
}

func TestInducedSubgraph(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 0)
	g := b.Build()
	sub, mapping := g.InducedSubgraph([]NodeID{1, 2, 3})
	if sub.NumNodes() != 3 {
		t.Fatalf("sub n=%d", sub.NumNodes())
	}
	if sub.NumEdges() != 2 { // 1->2 and 2->3
		t.Fatalf("sub m=%d", sub.NumEdges())
	}
	if mapping[0] != 1 || mapping[1] != 2 || mapping[2] != 3 {
		t.Fatalf("mapping = %v", mapping)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraphDedupsKeepList(t *testing.T) {
	g := triangle()
	sub, mapping := g.InducedSubgraph([]NodeID{0, 0, 1})
	if sub.NumNodes() != 2 || len(mapping) != 2 {
		t.Fatalf("dup keep list not collapsed: n=%d", sub.NumNodes())
	}
}

func TestEdgesEarlyStop(t *testing.T) {
	g := triangle()
	count := 0
	g.Edges(func(from, to NodeID) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("Edges did not stop early: %d calls", count)
	}
}

func TestReadEdgeListBasic(t *testing.T) {
	in := "# comment\n% also comment\n10 20\n20 30\n\n10 20\n"
	g, labels, err := ReadEdgeList(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("n=%d", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m=%d (dup should be removed)", g.NumEdges())
	}
	if labels[0] != 10 || labels[1] != 20 || labels[2] != 30 {
		t.Fatalf("labels = %v", labels)
	}
}

func TestReadEdgeListUndirected(t *testing.T) {
	g, _, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n"), &LoadOptions{Undirected: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("m=%d", g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{"abc def\n", "1\n", "-1 2\n", "1 x\n"}
	for _, in := range cases {
		if _, _, err := ReadEdgeList(strings.NewReader(in), nil); err == nil {
			t.Fatalf("input %q did not error", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := randomGraph(t, 50, 300, 1)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadEdgeList(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Labels are dense IDs already, so the graphs must match edge-for-edge
	// up to isolated trailing nodes (nodes with no edges are not serialized).
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d -> %d", g.NumEdges(), g2.NumEdges())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := randomGraph(t, 100, 600, 2)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch after round trip")
	}
	g.Edges(func(from, to NodeID) bool {
		if !g2.HasEdge(from, to) {
			t.Fatalf("edge %d->%d lost", from, to)
		}
		return true
	})
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a graph at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("SLGR")); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	g := triangle()
	path := t.TempDir() + "/g.bin"
	if err := g.SaveBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 3 {
		t.Fatalf("m=%d", g2.NumEdges())
	}
}

func randomGraph(t testing.TB, n, m int, seed uint64) *Graph {
	t.Helper()
	r := rng.New(seed)
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(NodeID(r.Intn(n)), NodeID(r.Intn(n)))
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// Property: in/out CSRs are mutual transposes and degree sums equal m.
func TestPropertyCSRTranspose(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%200) + 1
		m := int(mRaw % 1000)
		r := rng.New(seed)
		b := NewBuilder(n)
		for i := 0; i < m; i++ {
			b.AddEdge(NodeID(r.Intn(n)), NodeID(r.Intn(n)))
		}
		g := b.Build()
		if g.Validate() != nil {
			return false
		}
		inSum, outSum := 0, 0
		for v := int32(0); v < int32(n); v++ {
			inSum += g.InDegree(v)
			outSum += g.OutDegree(v)
		}
		if inSum != g.NumEdges() || outSum != g.NumEdges() {
			return false
		}
		// Every out-edge appears as an in-edge of the target.
		ok := true
		g.Edges(func(from, to NodeID) bool {
			found := false
			for _, u := range g.InNeighbors(to) {
				if u == from {
					found = true
					break
				}
			}
			if !found {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: binary round trip preserves the edge multiset.
func TestPropertyBinaryRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%100) + 1
		m := int(mRaw % 500)
		r := rng.New(seed)
		b := NewBuilder(n)
		for i := 0; i < m; i++ {
			b.AddEdge(NodeID(r.Intn(n)), NodeID(r.Intn(n)))
		}
		g := b.Build()
		var buf bytes.Buffer
		if g.WriteBinary(&buf) != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			return false
		}
		match := true
		g.Edges(func(from, to NodeID) bool {
			if !g2.HasEdge(from, to) {
				match = false
				return false
			}
			return true
		})
		return match
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	r := rng.New(1)
	const n, m = 10000, 100000
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{NodeID(r.Intn(n)), NodeID(r.Intn(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromEdges(n, edges)
	}
}

func BenchmarkInNeighbors(b *testing.B) {
	g := randomGraph(b, 10000, 100000, 3)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(g.InNeighbors(NodeID(i % 10000)))
	}
	_ = sink
}
