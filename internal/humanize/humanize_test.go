package humanize

import "testing"

func TestBytes(t *testing.T) {
	for _, tc := range []struct {
		in   int64
		want string
	}{
		{0, "-"},
		{-5, "-"},
		{512, "0.5KB"},
		{1 << 20, "1.0MB"},
		{3 << 30, "3.00GB"},
	} {
		if got := Bytes(tc.in); got != tc.want {
			t.Errorf("Bytes(%d) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
