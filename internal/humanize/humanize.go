// Package humanize renders byte counts for CLI and log output. It
// exists so the cmd binaries share one formatter instead of drifting
// copies.
package humanize

import "fmt"

// Bytes renders b as KB/MB/GB with one or two decimals. Non-positive
// values render as "-" (the CLIs' marker for "not measured").
func Bytes(b int64) string {
	switch {
	case b <= 0:
		return "-"
	case b < 1<<20:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	}
}
