package mmap

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestViewsRoundTrip(t *testing.T) {
	if !Supported() {
		t.Skip("mmap unsupported on this platform")
	}
	vals := []float64{0, 1.5, -3.25, math.Pi}
	keys := []uint64{7, 1 << 40, 42, 0}
	buf := make([]byte, 8*len(keys)+8*len(vals))
	for i, k := range keys {
		binary.LittleEndian.PutUint64(buf[8*i:], k)
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*len(keys)+8*i:], math.Float64bits(v))
	}
	path := filepath.Join(t.TempDir(), "view.bin")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := Open(f, int64(len(buf)))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ks, err := U64(m.Bytes()[:8*len(keys)])
	if err != nil {
		t.Fatal(err)
	}
	vs, err := F64(m.Bytes()[8*len(keys):])
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if ks[i] != keys[i] {
			t.Fatalf("key[%d] = %d, want %d", i, ks[i], keys[i])
		}
	}
	for i := range vals {
		if vs[i] != vals[i] {
			t.Fatalf("val[%d] = %g, want %g", i, vs[i], vals[i])
		}
	}
}

// A view over a misaligned or ragged region must error, never produce a
// torn reinterpretation.
func TestViewRejectsMisalignment(t *testing.T) {
	b := make([]byte, 64)
	if _, err := U64(b[:12]); err == nil {
		t.Fatal("ragged length accepted")
	}
	if _, err := F64(b[:12]); err == nil {
		t.Fatal("ragged length accepted")
	}
	if hostLittleEndian {
		// b is heap-allocated 8-aligned; b[4:] cannot be.
		if _, err := U64(b[4:12]); err == nil {
			t.Fatal("misaligned base accepted")
		}
	}
	// Empty views are fine (a node with no entries).
	if v, err := U64(nil); err != nil || v != nil {
		t.Fatalf("empty view: %v, %v", v, err)
	}
}

// Open must refuse to map past EOF — that is the SIGBUS hazard.
func TestOpenRejectsOversizedMap(t *testing.T) {
	if !Supported() {
		t.Skip("mmap unsupported on this platform")
	}
	path := filepath.Join(t.TempDir(), "short.bin")
	if err := os.WriteFile(path, make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := Open(f, 101); err == nil {
		t.Fatal("mapping beyond EOF accepted")
	}
	m, err := Open(f, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Bytes()) != 100 {
		t.Fatalf("mapped %d bytes, want 100", len(m.Bytes()))
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
