package mmap

import (
	"fmt"
	"unsafe"
)

// hostLittleEndian reports the CPU byte order; a big-endian host cannot
// view little-endian file bytes as native integers.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// U64 reinterprets b as a []uint64 view sharing b's memory. The slice
// must be 8-byte aligned and a whole number of words; violations error
// rather than producing a torn view.
func U64(b []byte) ([]uint64, error) {
	p, n, err := wordBase(b)
	if err != nil || n == 0 {
		return nil, err
	}
	return unsafe.Slice((*uint64)(p), n), nil
}

// F64 is U64 for float64 values (same representation width; the bit
// patterns are the file's little-endian IEEE 754 doubles).
func F64(b []byte) ([]float64, error) {
	p, n, err := wordBase(b)
	if err != nil || n == 0 {
		return nil, err
	}
	return unsafe.Slice((*float64)(p), n), nil
}

// wordBase validates b for a 64-bit word view and returns its base
// pointer and word count.
func wordBase(b []byte) (unsafe.Pointer, int, error) {
	if !hostLittleEndian {
		return nil, 0, ErrUnsupported
	}
	if len(b)%8 != 0 {
		return nil, 0, fmt.Errorf("mmap: region of %d bytes is not a whole number of 64-bit words", len(b))
	}
	if len(b) == 0 {
		return nil, 0, nil
	}
	p := unsafe.Pointer(unsafe.SliceData(b))
	if uintptr(p)%8 != 0 {
		return nil, 0, fmt.Errorf("mmap: region is not 8-byte aligned")
	}
	return p, len(b) / 8, nil
}
