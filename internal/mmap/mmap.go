// Package mmap confines every unsafe reinterpretation in the
// repository: it maps a file read-only into memory and hands out
// typed []uint64 / []float64 views over byte ranges of the mapping,
// so the disk-resident query path can consume index sections with
// zero copies and zero per-query allocations — the OS page cache
// becomes the only cache.
//
// The slingvet unsafeconfine analyzer enforces that no other package
// imports unsafe; everything here validates alignment and length
// before reinterpreting, and Supported reports false on platforms or
// byte orders where the reinterpretation would be invalid, so callers
// always have the plain ReadAt path to fall back to.
package mmap

import (
	"errors"
	"fmt"
	"os"
)

// ErrUnsupported reports that this platform or byte order cannot serve
// typed views over a mapped little-endian file; callers fall back to
// positioned reads.
var ErrUnsupported = errors.New("mmap: not supported on this platform or byte order")

// Supported reports whether mapped typed views work here: the platform
// must provide mmap and the CPU must be little-endian (the SLIX file
// format is little-endian, and a view cannot byte-swap).
func Supported() bool { return platformSupported && hostLittleEndian }

// Mapping is a read-only memory mapping of a file prefix.
type Mapping struct {
	data []byte
}

// Open maps the first size bytes of f read-only. The file must be at
// least size bytes long — mapping beyond EOF would turn later loads
// into SIGBUS, so the length is re-checked here rather than trusted.
func Open(f *os.File, size int64) (*Mapping, error) {
	if !Supported() {
		return nil, ErrUnsupported
	}
	if size < 0 {
		return nil, fmt.Errorf("mmap: negative size %d", size)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < size {
		return nil, fmt.Errorf("mmap: file is %d bytes, cannot map %d", st.Size(), size)
	}
	if size == 0 {
		return &Mapping{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmap: size %d overflows int", size)
	}
	data, err := mapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("mmap: %w", err)
	}
	return &Mapping{data: data}, nil
}

// Bytes returns the mapped region. The slice is read-only: storing
// through it faults (the mapping is PROT_READ).
func (m *Mapping) Bytes() []byte { return m.data }

// Close unmaps the region. Views previously derived from it become
// invalid; the caller owns that ordering.
func (m *Mapping) Close() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return unmap(data)
}
