//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package mmap

import (
	"os"
	"syscall"
)

const platformSupported = true

func mapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func unmap(data []byte) error { return syscall.Munmap(data) }
