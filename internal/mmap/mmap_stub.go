//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package mmap

import "os"

const platformSupported = false

func mapFile(f *os.File, size int) ([]byte, error) { return nil, ErrUnsupported }

func unmap(data []byte) error { return nil }
