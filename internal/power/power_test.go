package power

import (
	"math"
	"testing"

	"sling/internal/graph"
	"sling/internal/rng"
	"sling/internal/walk"
)

func pair() *graph.Graph {
	// I(0) = I(1) = {2}: s(0,1) = c exactly.
	b := graph.NewBuilder(3)
	b.AddEdge(2, 0)
	b.AddEdge(2, 1)
	return b.Build()
}

func TestDiagonalIsOne(t *testing.T) {
	g := pair()
	s, err := AllPairs(g, 0.6, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if s.At(i, i) != 1 {
			t.Fatalf("s(%d,%d) = %v", i, i, s.At(i, i))
		}
	}
}

func TestSharedParentScore(t *testing.T) {
	const c = 0.6
	s, err := AllPairs(pair(), c, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.At(0, 1)-c) > 1e-9 {
		t.Fatalf("s(0,1) = %v, want %v", s.At(0, 1), c)
	}
}

func TestSymmetry(t *testing.T) {
	g := randomGraph(40, 200, 3)
	s, err := AllPairs(g, 0.6, 15)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			if math.Abs(s.At(i, j)-s.At(j, i)) > 1e-12 {
				t.Fatalf("asymmetric: s(%d,%d)=%v s(%d,%d)=%v", i, j, s.At(i, j), j, i, s.At(j, i))
			}
		}
	}
}

func TestScoresInUnitInterval(t *testing.T) {
	g := randomGraph(40, 200, 5)
	s, err := AllPairs(g, 0.8, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s.Data {
		if v < 0 || v > 1+1e-12 {
			t.Fatalf("score %v out of [0,1]", v)
		}
	}
}

// SimRank fixed point: s(i,j) = c/(|I(i)||I(j)|) Σ s(a,b) for i != j.
func TestFixedPointEquation(t *testing.T) {
	g := randomGraph(25, 120, 7)
	const c = 0.6
	s, err := AllPairs(g, c, IterationsFor(1e-10, c))
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			ii := g.InNeighbors(graph.NodeID(i))
			jj := g.InNeighbors(graph.NodeID(j))
			if len(ii) == 0 || len(jj) == 0 {
				if s.At(i, j) != 0 {
					t.Fatalf("s(%d,%d)=%v but a side has no in-neighbors", i, j, s.At(i, j))
				}
				continue
			}
			sum := 0.0
			for _, a := range ii {
				for _, b := range jj {
					sum += s.At(int(a), int(b))
				}
			}
			want := c * sum / float64(len(ii)*len(jj))
			if math.Abs(s.At(i, j)-want) > 1e-6 {
				t.Fatalf("fixed point violated at (%d,%d): %v vs %v", i, j, s.At(i, j), want)
			}
		}
	}
}

// Lemma 3 cross-check: power-method scores match √c-walk meeting
// probabilities estimated by Monte Carlo.
func TestAgreesWithWalkOracle(t *testing.T) {
	g := randomGraph(15, 60, 11)
	const c = 0.6
	s, err := AllPairs(g, c, IterationsFor(1e-8, c))
	if err != nil {
		t.Fatal(err)
	}
	w := walk.New(g, c, rng.New(101))
	checks := [][2]graph.NodeID{{0, 1}, {2, 7}, {3, 3}, {5, 9}, {10, 14}}
	for _, p := range checks {
		got := w.MeetProbability(p[0], p[1], 200000)
		want := s.At(int(p[0]), int(p[1]))
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("pair %v: walk estimate %v vs power %v", p, got, want)
		}
	}
}

func TestIterationsFor(t *testing.T) {
	// c=0.6, eps=0.025: t >= log_0.6(0.01) - 1 = 9.01 - 1 = 8.01 -> 9.
	if got := IterationsFor(0.025, 0.6); got != 9 {
		t.Fatalf("IterationsFor(0.025, 0.6) = %d, want 9", got)
	}
	if got := IterationsFor(0.9, 0.1); got < 1 {
		t.Fatalf("IterationsFor returned %d < 1", got)
	}
}

func TestIterationsForPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	IterationsFor(0, 0.6)
}

func TestConvergenceMonotone(t *testing.T) {
	// Error vs a long run must shrink as iterations grow.
	g := randomGraph(30, 150, 13)
	const c = 0.6
	ref, err := AllPairs(g, c, 60)
	if err != nil {
		t.Fatal(err)
	}
	prevErr := math.Inf(1)
	for _, it := range []int{2, 5, 10, 20} {
		s, err := AllPairs(g, c, it)
		if err != nil {
			t.Fatal(err)
		}
		maxErr := 0.0
		for i, v := range s.Data {
			if d := math.Abs(v - ref.Data[i]); d > maxErr {
				maxErr = d
			}
		}
		if maxErr > prevErr+1e-12 {
			t.Fatalf("error grew from %v to %v at %d iterations", prevErr, maxErr, it)
		}
		prevErr = maxErr
	}
	if prevErr > 1e-4 {
		t.Fatalf("error after 20 iterations still %v", prevErr)
	}
}

func TestLemmaOneErrorBound(t *testing.T) {
	g := randomGraph(30, 150, 17)
	const c, eps = 0.6, 0.01
	ref, err := AllPairs(g, c, 80)
	if err != nil {
		t.Fatal(err)
	}
	s, err := AllPairs(g, c, IterationsFor(eps, c))
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Data {
		if d := math.Abs(s.Data[i] - ref.Data[i]); d > eps {
			t.Fatalf("error %v exceeds eps %v", d, eps)
		}
	}
}

func TestZeroIterations(t *testing.T) {
	s, err := AllPairs(pair(), 0.6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0, 1) != 0 || s.At(1, 1) != 1 {
		t.Fatal("zero iterations must return the identity")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	s, err := AllPairs(g, 0.6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 0 {
		t.Fatal("non-empty result for empty graph")
	}
}

func TestRejectsBadDecay(t *testing.T) {
	if _, err := AllPairs(pair(), 1.0, 5); err == nil {
		t.Fatal("c=1 accepted")
	}
	if _, err := AllPairs(pair(), 0, 5); err == nil {
		t.Fatal("c=0 accepted")
	}
}

func TestRejectsHugeGraph(t *testing.T) {
	g := graph.NewBuilder(1 << 20).Build()
	if _, err := AllPairs(g, 0.6, 1); err == nil {
		t.Fatal("over-cap allocation accepted")
	}
}

func TestSimRankConvenience(t *testing.T) {
	got, err := SimRank(pair(), 0.6, 1e-6, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.6) > 1e-5 {
		t.Fatalf("SimRank = %v", got)
	}
}

func randomGraph(n, m int, seed uint64) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)))
	}
	return b.Build()
}

func BenchmarkPowerIteration(b *testing.B) {
	g := randomGraph(500, 3000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AllPairs(g, 0.6, 1); err != nil {
			b.Fatal(err)
		}
	}
}
