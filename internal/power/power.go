// Package power implements the power method for all-pairs SimRank
// (Jeh & Widom), the oracle the paper uses for ground truth in its accuracy
// experiments (Figures 5-7) and the oldest baseline in Table 1.
//
// One iteration applies S ← (c·Pᵀ·S·P) ∨ I, realized as two sparse-dense
// products in O(n·m) time, rather than the naive O(m²) neighbor-pair sum.
// After t ≥ log_c(ε(1−c)) − 1 iterations every score has additive error at
// most ε (Lizorkin et al., Lemma 1 of the paper).
package power

import (
	"fmt"
	"math"

	"sling/internal/graph"
)

// Scores is a dense symmetric n×n SimRank matrix in row-major order.
type Scores struct {
	N    int
	Data []float64 // len N*N, Data[i*N+j] = s(v_i, v_j)
}

// At returns s(v_i, v_j).
func (s *Scores) At(i, j int) float64 { return s.Data[i*s.N+j] }

// Row returns the i-th row (scores from v_i to every node).
// The slice aliases internal storage.
func (s *Scores) Row(i int) []float64 { return s.Data[i*s.N : (i+1)*s.N] }

// MaxMatrixBytes caps the memory a Scores allocation may take; AllPairs
// returns an error beyond it. Two work matrices are needed, so the real
// peak is about three times this value.
const MaxMatrixBytes = 1 << 31 // 2 GiB per matrix

// IterationsFor returns the smallest iteration count that guarantees eps
// additive error under decay factor c (Lemma 1: t ≥ log_c(ε(1−c)) − 1).
func IterationsFor(eps, c float64) int {
	if eps <= 0 || eps >= 1 || c <= 0 || c >= 1 {
		panic(fmt.Sprintf("power: bad parameters eps=%v c=%v", eps, c))
	}
	t := math.Log(eps*(1-c))/math.Log(c) - 1
	it := int(math.Ceil(t))
	if it < 1 {
		it = 1
	}
	return it
}

// AllPairs runs `iters` power iterations and returns the resulting scores.
// It errors out rather than attempting an allocation beyond MaxMatrixBytes.
func AllPairs(g *graph.Graph, c float64, iters int) (*Scores, error) {
	if c <= 0 || c >= 1 {
		return nil, fmt.Errorf("power: decay factor %v out of (0,1)", c)
	}
	if iters < 0 {
		return nil, fmt.Errorf("power: negative iteration count %d", iters)
	}
	n := g.NumNodes()
	bytes := int64(n) * int64(n) * 8
	if n > 0 && (bytes/int64(n)/8 != int64(n) || bytes > MaxMatrixBytes) {
		return nil, fmt.Errorf("power: n=%d needs %d bytes per matrix, over the %d cap", n, bytes, int64(MaxMatrixBytes))
	}
	s := &Scores{N: n, Data: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		s.Data[i*n+i] = 1
	}
	if n == 0 || iters == 0 {
		return s, nil
	}
	t1 := make([]float64, n*n)   // S·P
	next := make([]float64, n*n) // c·Pᵀ·(S·P) ∨ I
	for it := 0; it < iters; it++ {
		step(g, c, s.Data, t1, next, n)
		s.Data, next = next, s.Data
	}
	return s, nil
}

// step computes next = (c·Pᵀ·cur·P) ∨ I using t1 as scratch for cur·P.
func step(g *graph.Graph, c float64, cur, t1, next []float64, n int) {
	// t1 = cur · P:  t1(i,j) = (1/|I(j)|) Σ_{k∈I(j)} cur(i,k).
	for j := 0; j < n; j++ {
		ins := g.InNeighbors(graph.NodeID(j))
		if len(ins) == 0 {
			for i := 0; i < n; i++ {
				t1[i*n+j] = 0
			}
			continue
		}
		inv := 1 / float64(len(ins))
		for i := 0; i < n; i++ {
			sum := 0.0
			row := cur[i*n:]
			for _, k := range ins {
				sum += row[k]
			}
			t1[i*n+j] = sum * inv
		}
	}
	// next = c · Pᵀ · t1: next(i,j) = c/|I(i)| Σ_{k∈I(i)} t1(k,j); then ∨ I.
	for i := 0; i < n; i++ {
		out := next[i*n : (i+1)*n]
		ins := g.InNeighbors(graph.NodeID(i))
		if len(ins) == 0 {
			for j := range out {
				out[j] = 0
			}
			out[i] = 1
			continue
		}
		scale := c / float64(len(ins))
		for j := range out {
			out[j] = 0
		}
		for _, k := range ins {
			krow := t1[int(k)*n : (int(k)+1)*n]
			for j, v := range krow {
				out[j] += v
			}
		}
		for j := range out {
			out[j] *= scale
		}
		out[i] = 1
	}
}

// SimRank runs the power method to eps accuracy and returns one score.
// It is a convenience for tests; for repeated queries use AllPairs.
func SimRank(g *graph.Graph, c float64, eps float64, u, v graph.NodeID) (float64, error) {
	s, err := AllPairs(g, c, IterationsFor(eps, c))
	if err != nil {
		return 0, err
	}
	return s.At(int(u), int(v)), nil
}
