package durable

import (
	"bytes"
	"testing"
)

// FuzzWALDecode throws arbitrary bytes at the record decoder — the code
// recovery runs on whatever a crash left on disk. Seeds cover a valid
// record plus the two corruptions recovery must classify: truncation and
// bit flips. The decoder must never panic, and anything it accepts must
// re-encode to the identical bytes (no two wire forms decode alike).
func FuzzWALDecode(f *testing.F) {
	valid := encodeRecord(7, []Op{{Add: true, From: 3, To: 4}, {From: 9, To: 1}})
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[recHeaderSize+3] ^= 0x20 // bit flip in payload
	f.Add(flipped)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // huge claimed length

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := decodeRecord(data)
		if err != nil {
			return
		}
		if n < recHeaderSize || n > int64(len(data)) {
			t.Fatalf("accepted record with size %d of %d input bytes", n, len(data))
		}
		if !bytes.Equal(encodeRecord(rec.LSN, rec.Ops), data[:n]) {
			t.Fatalf("decode/encode round trip diverged for %d-byte record", n)
		}
	})
}

// FuzzSnapshotDecode drives the snapshot reader the same way: no panics
// on arbitrary input, and accepted snapshots survive a round trip.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add(encodeSnapshot(&Snapshot{
		Epoch: 2, TotalOps: 5, BaseNodes: 4,
		BaseEdges: []Edge{{0, 1}},
		Index:     []byte("SLIXpayload"),
		Edges:     []Edge{{0, 1}, {2, 3}},
		Pending:   []Op{{Add: true, From: 2, To: 3}},
	}))
	f.Add([]byte(snapMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeSnapshot(s), data) {
			t.Fatalf("snapshot decode/encode round trip diverged")
		}
	})
}
