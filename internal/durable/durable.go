// Package durable persists the dynamic tier's mutable state: a
// CRC32-checked, versioned, length-prefixed write-ahead log of edge
// operations plus atomic point-in-time snapshots, so a restarted process
// can rebuild exactly the state it acknowledged before dying.
//
// On-disk layout (all integers little-endian):
//
//	DIR/
//	  wal-%016x.slwal        WAL segment; the hex field is the LSN of the
//	                         segment's first record
//	  snap-%016x-%016x.slsnap  snapshot; fields are (sequence, LSN covered)
//
// A WAL segment starts with a 16-byte header — magic "SLWL", u32 format
// version, u64 first-LSN — followed by records. Each record is
//
//	u32 payload length | u32 CRC-32C of payload | payload
//	payload = u64 LSN | u32 op count | ops (u8 add, u32 from, u32 to)
//
// LSNs are per-batch and strictly sequential across the segment chain.
// Appends are fsynced by default (Options.NoSync trades the tail for
// throughput). A snapshot is written to a .tmp file, fsynced, and renamed
// into place, so a crash never leaves a half-written snapshot visible;
// after a snapshot the log rotates and prunes segments older snapshots
// have made redundant (the last two snapshots are retained).
//
// Recovery (Open) picks the newest snapshot whose CRC verifies and
// replays the WAL records with LSN beyond it. A torn or corrupt record at
// the tail of the last segment is truncated at the last valid record;
// corruption anywhere it could hide acknowledged records — mid-segment,
// or in a non-final segment — is a hard error, never silently skipped.
package durable

import (
	"errors"
	"fmt"
	"hash/crc32"
)

const (
	walMagic  = "SLWL"
	snapMagic = "SLSN"
	// formatVersion is shared by segments and snapshots; readers reject
	// anything newer than they understand.
	formatVersion = 1

	segHeaderSize = 16
	recHeaderSize = 8 // u32 length + u32 CRC
	opSize        = 9 // u8 add + u32 from + u32 to

	// maxRecordPayload bounds one record (~7.4M ops) so a corrupt length
	// field cannot drive a giant allocation.
	maxRecordPayload = 1 << 26

	// DefaultSegmentBytes rotates segments at 8 MiB.
	DefaultSegmentBytes = 8 << 20

	// snapshotsRetained keeps this many snapshots on disk; WAL segments
	// fully covered by the oldest retained snapshot are pruned.
	snapshotsRetained = 2
)

// crcTable is CRC-32C (Castagnoli), the polynomial with hardware support
// on current CPUs.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrCorrupt wraps every integrity failure recovery refuses to repair
	// (mid-log corruption, LSN gaps, snapshot/WAL disagreement).
	ErrCorrupt = errors.New("durable: corrupt state")
	// ErrClosed is returned by operations on a closed Log.
	ErrClosed = errors.New("durable: log closed")
	// ErrReadOnly is returned by Append and WriteSnapshot on a Log opened
	// with Options.ReadOnly.
	ErrReadOnly = errors.New("durable: log is read-only")
	// ErrInjectedFault is the error surfaced when Options.FailAfterBytes
	// cuts a write short (tests only).
	ErrInjectedFault = errors.New("durable: injected write fault")
)

// Op is one journaled edge mutation.
type Op struct {
	Add      bool
	From, To int32
}

// Record is one WAL entry: the ops of a single applied batch under one
// LSN.
type Record struct {
	LSN uint64
	Ops []Op
}

// Edge is a directed edge in a snapshot's edge sections.
type Edge struct {
	From, To int32
}

// Snapshot is the durable point-in-time state of a dynamic index. Index
// holds the serving epoch's serialized bytes (the SLIX format — opaque to
// this package); BaseNodes/BaseEdges the graph that index was built from;
// Edges the full mutated edge set; Pending the applied ops the index does
// not yet reflect (the staleness frontier's source of truth).
type Snapshot struct {
	Epoch    uint64
	LSN      uint64 // last LSN this snapshot covers; filled by WriteSnapshot
	TotalOps uint64

	BaseNodes int
	BaseEdges []Edge
	Index     []byte
	Edges     []Edge
	Pending   []Op
}

// Options configures Open.
type Options struct {
	// Dir holds all WAL segments and snapshots; created if missing.
	Dir string
	// SegmentBytes rotates the active segment once it reaches this size.
	// 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// NoSync skips the fsync after each append. A crash may then lose the
	// most recent acknowledged batches (they become a torn tail recovery
	// truncates); snapshots are always synced.
	NoSync bool
	// ReadOnly opens for inspection and restore without touching the
	// files: no truncation repair, no tmp cleanup, no appends.
	ReadOnly bool
	// FailAfterBytes, when positive, injects a write fault: once this many
	// record bytes have been appended in-process, the write that crosses
	// the boundary is cut short mid-record and the log fails permanently
	// with ErrInjectedFault — simulating a crash with a torn tail. Tests
	// only.
	FailAfterBytes int64
}

func (o *Options) withDefaults() Options {
	r := *o
	if r.SegmentBytes <= 0 {
		r.SegmentBytes = DefaultSegmentBytes
	}
	return r
}

func corruptf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

func segmentName(firstLSN uint64) string {
	return fmt.Sprintf("wal-%016x.slwal", firstLSN)
}

func snapshotName(seq, lsn uint64) string {
	return fmt.Sprintf("snap-%016x-%016x.slsnap", seq, lsn)
}
