package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// Snapshot file layout (after the magic/version prologue, all integers
// little-endian, one trailing CRC-32C over everything before it):
//
//	"SLSN" | u32 version | u64 epoch | u64 lsn | u64 totalOps
//	u32 baseNodes | u32 reserved
//	u64 nBase | nBase × (u32 from, u32 to)
//	u64 indexLen | indexLen bytes (opaque SLIX payload)
//	u64 nEdges | nEdges × (u32 from, u32 to)
//	u64 nPending | nPending × (u8 add, u32 from, u32 to)
//	u32 crc
const snapPrologue = 4 + 4 + 8 + 8 + 8 + 4 + 4

// WriteSnapshot persists s atomically: the file is assembled under a .tmp
// name, fsynced, and renamed into place, then superseded snapshots and
// the WAL segments they make redundant are pruned. s.LSN is filled from
// the log's last acknowledged LSN — the caller must hold its own state
// stable (no concurrent Append) across the call. The log also rotates so
// pruning always has a clean segment boundary to cut at.
func (l *Log) WriteSnapshot(s *Snapshot) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return ErrClosed
	case l.opt.ReadOnly:
		return ErrReadOnly
	}
	s.LSN = l.lastLSN
	seq := uint64(1)
	if n := len(l.snaps); n > 0 {
		seq = l.snaps[n-1].seq + 1
	}
	name := snapshotName(seq, s.LSN)
	path := filepath.Join(l.dir, name)
	tmp := path + ".tmp"
	if err := writeSnapshotFile(tmp, s); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.snaps = append(l.snaps, snapMeta{name: name, seq: seq, lsn: s.LSN})
	l.snapshots++

	// Rotate so every record ≤ s.LSN lives in now-frozen segments; a
	// future snapshot can then prune them whole.
	if l.active != nil && l.segBytes > segHeaderSize {
		if err := l.rotateLocked(l.lastLSN + 1); err != nil {
			return err
		}
	}
	l.pruneLocked()
	return nil
}

// pruneLocked drops snapshots beyond the retention window and WAL
// segments every retained snapshot has fully covered. Deletion failures
// are ignored — stale files are re-pruned on the next snapshot or Open.
// Caller holds mu.
func (l *Log) pruneLocked() {
	if n := len(l.snaps); n > snapshotsRetained {
		for _, sm := range l.snaps[:n-snapshotsRetained] {
			os.Remove(filepath.Join(l.dir, sm.name))
		}
		l.snaps = append([]snapMeta(nil), l.snaps[n-snapshotsRetained:]...)
	}
	if len(l.snaps) == 0 {
		return
	}
	cutoff := l.snaps[0].lsn // oldest retained snapshot
	keep := l.segs[:0]
	for i := range l.segs {
		seg := l.segs[i]
		// The active (final) segment is never removed; an earlier segment
		// goes once its whole record range is at or below the cutoff.
		if i == len(l.segs)-1 || seg.lastLSN > cutoff || seg.lastLSN < seg.firstLSN {
			keep = append(keep, seg)
			continue
		}
		os.Remove(filepath.Join(l.dir, seg.name))
	}
	l.segs = keep
}

// writeSnapshotFile encodes s to path (no rename; the caller owns
// atomicity) and fsyncs it.
func writeSnapshotFile(path string, s *Snapshot) error {
	if s.BaseNodes < 0 || s.BaseNodes > math.MaxUint32 {
		return fmt.Errorf("durable: snapshot base node count %d exceeds uint32", s.BaseNodes)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	buf := encodeSnapshot(s)
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func encodeSnapshot(s *Snapshot) []byte {
	size := snapPrologue +
		8 + len(s.BaseEdges)*8 +
		8 + len(s.Index) +
		8 + len(s.Edges)*8 +
		8 + len(s.Pending)*opSize +
		4
	buf := make([]byte, 0, size)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, formatVersion)
	buf = binary.LittleEndian.AppendUint64(buf, s.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, s.LSN)
	buf = binary.LittleEndian.AppendUint64(buf, s.TotalOps)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.BaseNodes))
	buf = binary.LittleEndian.AppendUint32(buf, 0) // reserved

	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.BaseEdges)))
	for _, e := range s.BaseEdges {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.From))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.To))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.Index)))
	buf = append(buf, s.Index...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.Edges)))
	for _, e := range s.Edges {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.From))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.To))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.Pending)))
	for _, op := range s.Pending {
		b := byte(0)
		if op.Add {
			b = 1
		}
		buf = append(buf, b)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(op.From))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(op.To))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
	return buf
}

// readSnapshotFile loads and verifies one snapshot file.
func readSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeSnapshot(data)
}

func decodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < snapPrologue+4*8+4 {
		return nil, corruptf("snapshot too short (%d bytes)", len(data))
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if binary.LittleEndian.Uint32(crcBytes) != crc32.Checksum(body, crcTable) {
		return nil, corruptf("snapshot checksum mismatch")
	}
	if string(body[:4]) != snapMagic {
		return nil, corruptf("snapshot bad magic")
	}
	if v := binary.LittleEndian.Uint32(body[4:8]); v != formatVersion {
		return nil, corruptf("snapshot unsupported format version %d", v)
	}
	s := &Snapshot{
		Epoch:     binary.LittleEndian.Uint64(body[8:16]),
		LSN:       binary.LittleEndian.Uint64(body[16:24]),
		TotalOps:  binary.LittleEndian.Uint64(body[24:32]),
		BaseNodes: int(binary.LittleEndian.Uint32(body[32:36])),
	}
	rest := body[snapPrologue:]

	// Section lengths are validated against the remaining bytes before
	// any allocation, so the CRC-verified body can still never drive an
	// oversized make.
	takeCount := func(elem int) (int, error) {
		if len(rest) < 8 {
			return 0, corruptf("snapshot section header truncated")
		}
		n := binary.LittleEndian.Uint64(rest[:8])
		rest = rest[8:]
		if n > uint64(len(rest))/uint64(elem) {
			return 0, corruptf("snapshot section count %d exceeds remaining bytes", n)
		}
		return int(n), nil
	}

	nBase, err := takeCount(8)
	if err != nil {
		return nil, err
	}
	s.BaseEdges = make([]Edge, nBase)
	for i := range s.BaseEdges {
		s.BaseEdges[i] = Edge{
			From: int32(binary.LittleEndian.Uint32(rest[i*8:])),
			To:   int32(binary.LittleEndian.Uint32(rest[i*8+4:])),
		}
	}
	rest = rest[nBase*8:]

	nIndex, err := takeCount(1)
	if err != nil {
		return nil, err
	}
	s.Index = append([]byte(nil), rest[:nIndex]...)
	rest = rest[nIndex:]

	nEdges, err := takeCount(8)
	if err != nil {
		return nil, err
	}
	s.Edges = make([]Edge, nEdges)
	for i := range s.Edges {
		s.Edges[i] = Edge{
			From: int32(binary.LittleEndian.Uint32(rest[i*8:])),
			To:   int32(binary.LittleEndian.Uint32(rest[i*8+4:])),
		}
	}
	rest = rest[nEdges*8:]

	nPending, err := takeCount(opSize)
	if err != nil {
		return nil, err
	}
	s.Pending = make([]Op, nPending)
	for i := range s.Pending {
		o := rest[i*opSize:]
		s.Pending[i] = Op{
			Add:  o[0] != 0,
			From: int32(binary.LittleEndian.Uint32(o[1:5])),
			To:   int32(binary.LittleEndian.Uint32(o[5:9])),
		}
	}
	rest = rest[nPending*opSize:]
	if len(rest) != 0 {
		return nil, corruptf("snapshot has %d trailing bytes", len(rest))
	}
	return s, nil
}
