package durable

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SegmentInfo describes one WAL segment for inspection output.
type SegmentInfo struct {
	Name     string `json:"name"`
	FirstLSN uint64 `json:"first_lsn"`
	LastLSN  uint64 `json:"last_lsn"`
	Records  int    `json:"records"`
	Bytes    int64  `json:"bytes"`
	// TornBytes counts trailing bytes past the last valid record (a torn
	// tail recovery would truncate). Only meaningful on the final segment;
	// anywhere else it is reported as corruption.
	TornBytes int64  `json:"torn_bytes,omitempty"`
	Err       string `json:"err,omitempty"`
}

// SnapshotInfo describes one snapshot file for inspection output.
type SnapshotInfo struct {
	Name  string `json:"name"`
	Seq   uint64 `json:"seq"`
	LSN   uint64 `json:"lsn"`
	Epoch uint64 `json:"epoch"`
	Bytes int64  `json:"bytes"`
	Valid bool   `json:"valid"`
	Err   string `json:"err,omitempty"`
}

// Report is the result of Inspect: the full segment chain and snapshot
// set with per-file verification, plus the recovery decision a read-write
// Open would make.
type Report struct {
	Dir         string         `json:"dir"`
	Snapshots   []SnapshotInfo `json:"snapshots"`
	Segments    []SegmentInfo  `json:"segments"`
	RecoverFrom string         `json:"recover_from,omitempty"` // chosen snapshot file
	TailRecords int            `json:"tail_records"`
	TailOps     int            `json:"tail_ops"`
	LastLSN     uint64         `json:"last_lsn"`
	// Problems lists integrity failures recovery could not repair; a torn
	// final tail is recoverable and reported per-segment instead. The
	// directory is healthy iff Problems is empty.
	Problems []string `json:"problems"`
}

// Corrupt reports whether the directory holds damage recovery would
// refuse to repair.
func (r *Report) Corrupt() bool { return len(r.Problems) > 0 }

// Inspect CRC-verifies every snapshot and WAL segment in dir without
// modifying anything, and reports the chain recovery would reconstruct.
func Inspect(dir string) (*Report, error) {
	rep := &Report{Dir: dir, Problems: []string{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	problem := func(format string, args ...interface{}) {
		rep.Problems = append(rep.Problems, fmt.Sprintf(format, args...))
	}

	var segNames []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// Leftover from a crashed snapshot write; harmless, Open
			// removes it.
		case strings.HasSuffix(name, ".slsnap"):
			rep.Snapshots = append(rep.Snapshots, inspectSnapshot(dir, name))
		case strings.HasSuffix(name, ".slwal"):
			segNames = append(segNames, name)
		}
	}
	sort.Slice(rep.Snapshots, func(i, j int) bool { return rep.Snapshots[i].Seq < rep.Snapshots[j].Seq })
	sort.Strings(segNames)

	var chosen *SnapshotInfo
	for i := len(rep.Snapshots) - 1; i >= 0; i-- {
		if rep.Snapshots[i].Valid {
			chosen = &rep.Snapshots[i]
			break
		}
	}
	var snapLSN uint64
	if chosen != nil {
		rep.RecoverFrom = chosen.Name
		snapLSN = chosen.LSN
		rep.LastLSN = chosen.LSN
	} else if len(rep.Snapshots) > 0 {
		problem("no snapshot verifies; WAL tail cannot be anchored")
	}

	prevLast := uint64(0)
	for i, name := range segNames {
		final := i == len(segNames)-1
		info := inspectSegment(dir, name, final)
		if info.Err != "" {
			problem("segment %s: %s", name, info.Err)
		}
		if i > 0 && info.FirstLSN != prevLast+1 && info.FirstLSN > snapLSN+1 {
			problem("segment %s starts at LSN %d, previous chain ends at %d, snapshot covers %d",
				name, info.FirstLSN, prevLast, snapLSN)
		}
		if info.LastLSN > rep.LastLSN {
			rep.LastLSN = info.LastLSN
		}
		prevLast = info.LastLSN
		rep.Segments = append(rep.Segments, info)
	}

	// Count the replayable tail the way recovery would.
	want := snapLSN + 1
	for _, seg := range rep.Segments {
		if seg.LastLSN < want || seg.Err != "" {
			continue
		}
		first := seg.FirstLSN
		if first < want {
			first = want
		}
		if first > want {
			problem("WAL tail gap: expected LSN %d, next available is %d in %s", want, first, seg.Name)
			break
		}
		n := int(seg.LastLSN - first + 1)
		rep.TailRecords += n
		want = seg.LastLSN + 1
	}
	if chosen == nil && rep.TailRecords == 0 {
		// Fresh or empty directory is healthy by definition.
		return rep, nil
	}
	if chosen == nil {
		problem("WAL records present but no valid snapshot to replay them onto")
	}
	rep.TailOps = countTailOps(dir, rep.Segments, snapLSN)
	return rep, nil
}

// countTailOps totals the ops in records past the snapshot; best-effort
// (unreadable segments contribute nothing — they are already reported).
func countTailOps(dir string, segs []SegmentInfo, snapLSN uint64) int {
	total := 0
	for _, seg := range segs {
		if seg.LastLSN <= snapLSN || seg.Err != "" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, seg.Name))
		if err != nil || len(data) < segHeaderSize {
			continue
		}
		off := int64(segHeaderSize)
		for off < int64(len(data)) {
			rec, n, err := decodeRecord(data[off:])
			if err != nil {
				break
			}
			if rec.LSN > snapLSN {
				total += len(rec.Ops)
			}
			off += n
		}
	}
	return total
}

func inspectSnapshot(dir, name string) SnapshotInfo {
	info := SnapshotInfo{Name: name}
	if _, err := fmt.Sscanf(name, "snap-%16x-%16x.slsnap", &info.Seq, &info.LSN); err != nil {
		info.Err = "unrecognized file name"
		return info
	}
	if st, err := os.Stat(filepath.Join(dir, name)); err == nil {
		info.Bytes = st.Size()
	}
	s, err := readSnapshotFile(filepath.Join(dir, name))
	switch {
	case err != nil:
		info.Err = err.Error()
	case s.LSN != info.LSN:
		info.Err = fmt.Sprintf("content LSN %d disagrees with file name", s.LSN)
	default:
		info.Valid = true
		info.Epoch = s.Epoch
	}
	return info
}

func inspectSegment(dir, name string, final bool) SegmentInfo {
	info := SegmentInfo{Name: name}
	var named uint64
	if _, err := fmt.Sscanf(name, "wal-%16x.slwal", &named); err != nil {
		info.Err = "unrecognized file name"
		return info
	}
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		info.Err = err.Error()
		return info
	}
	info.Bytes = int64(len(data))
	if len(data) < segHeaderSize {
		info.Err = fmt.Sprintf("truncated header (%d bytes)", len(data))
		return info
	}
	if string(data[:4]) != walMagic {
		info.Err = "bad magic"
		return info
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != formatVersion {
		info.Err = fmt.Sprintf("unsupported format version %d", v)
		return info
	}
	info.FirstLSN = binary.LittleEndian.Uint64(data[8:16])
	if info.FirstLSN != named {
		info.Err = fmt.Sprintf("header first-LSN %d disagrees with file name", info.FirstLSN)
		return info
	}
	info.LastLSN = info.FirstLSN - 1
	off := int64(segHeaderSize)
	for off < int64(len(data)) {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			switch {
			case !final:
				info.Err = fmt.Sprintf("record at offset %d mid-chain: %v", off, err)
			case hasValidRecordAfter(data, off, info.LastLSN):
				info.Err = fmt.Sprintf("record at offset %d damaged with valid records after it: %v", off, err)
			default:
				info.TornBytes = int64(len(data)) - off
			}
			return info
		}
		want := info.FirstLSN + uint64(info.Records)
		if rec.LSN != want {
			info.Err = fmt.Sprintf("record at offset %d has LSN %d, expected %d", off, rec.LSN, want)
			return info
		}
		info.Records++
		info.LastLSN = rec.LSN
		off += n
	}
	return info
}
