package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"sling/internal/atomicio"
)

// segMeta is the in-memory card for one on-disk segment.
type segMeta struct {
	name     string
	firstLSN uint64
	lastLSN  uint64 // == firstLSN-1 while the segment has no records
	records  int
	bytes    int64
}

// snapMeta is the in-memory card for one on-disk snapshot file.
type snapMeta struct {
	name     string
	seq, lsn uint64
}

// Log is an open durable directory: the recovered snapshot and WAL tail,
// plus the active segment accepting appends. Methods are safe for
// concurrent use.
type Log struct {
	opt Options
	dir string

	mu       sync.Mutex
	closed   bool
	err      error // sticky append-path failure; the log is poisoned
	lastLSN  uint64
	segs     []segMeta
	snaps    []snapMeta // ascending seq; last is the recovered one
	active   *os.File
	segBytes int64 // size of the active segment

	snap *Snapshot // recovered snapshot (nil on a fresh dir)
	tail []Record  // records with LSN > snap.LSN, ascending

	written   int64 // record bytes appended in-process (fault injection)
	appends   uint64
	snapshots uint64 // snapshots written in-process
}

// Open recovers DIR and readies it for appends: leftover .tmp files are
// removed, the newest CRC-valid snapshot is loaded, the segment chain is
// verified (contiguous LSNs, per-record CRCs), a torn tail in the final
// segment is truncated at the last valid record, and the tail of records
// past the snapshot is retained for replay via Tail.
func Open(o Options) (*Log, error) {
	opt := o.withDefaults()
	if !opt.ReadOnly {
		if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
			return nil, err
		}
	}
	l := &Log{opt: opt, dir: opt.Dir}
	if err := l.recover(); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *Log) recover() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	var snaps []snapMeta
	var segs []segMeta
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			if !l.opt.ReadOnly {
				os.Remove(filepath.Join(l.dir, name))
			}
		case strings.HasSuffix(name, ".slsnap"):
			var seq, lsn uint64
			if _, err := fmt.Sscanf(name, "snap-%16x-%16x.slsnap", &seq, &lsn); err != nil {
				return corruptf("unrecognized snapshot file name %q", name)
			}
			snaps = append(snaps, snapMeta{name: name, seq: seq, lsn: lsn})
		case strings.HasSuffix(name, ".slwal"):
			var first uint64
			if _, err := fmt.Sscanf(name, "wal-%16x.slwal", &first); err != nil {
				return corruptf("unrecognized WAL file name %q", name)
			}
			segs = append(segs, segMeta{name: name, firstLSN: first})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq < snaps[j].seq })
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })

	// Newest snapshot whose CRC verifies wins. An unreadable newer one is
	// tolerated — segments are only pruned up to the previous snapshot, so
	// falling back to it loses nothing.
	for i := len(snaps) - 1; i >= 0; i-- {
		s, err := readSnapshotFile(filepath.Join(l.dir, snaps[i].name))
		if err != nil {
			continue
		}
		if s.LSN != snaps[i].lsn {
			continue // name and content disagree; treat as invalid
		}
		l.snap = s
		l.snaps = snaps[:i+1]
		break
	}
	var snapLSN uint64
	if l.snap != nil {
		snapLSN = l.snap.LSN
	}

	// Verify the segment chain and collect the record tail.
	var records []Record
	prevLast := uint64(0)
	for i := range segs {
		seg := &segs[i]
		last := i == len(segs)-1
		recs, err := l.scanSegment(seg, last)
		if err != nil {
			return err
		}
		if i > 0 && seg.firstLSN != prevLast+1 && seg.firstLSN > snapLSN+1 {
			// A gap between segments is legal only when the snapshot
			// covers every missing record (pruning removed them).
			return corruptf("segment %s starts at LSN %d, previous chain ends at %d, snapshot covers %d",
				seg.name, seg.firstLSN, prevLast, snapLSN)
		}
		records = append(records, recs...)
		prevLast = seg.lastLSN
	}
	l.segs = segs

	// Keep the tail past the snapshot; it must chain directly off it.
	for _, r := range records {
		if r.LSN <= snapLSN {
			continue
		}
		if l.snap == nil {
			return corruptf("WAL records present but no valid snapshot to replay them onto")
		}
		want := snapLSN + uint64(len(l.tail)) + 1
		if r.LSN != want {
			return corruptf("WAL tail gap: expected LSN %d, found %d", want, r.LSN)
		}
		l.tail = append(l.tail, r)
	}

	l.lastLSN = snapLSN
	if n := len(segs); n > 0 && segs[n-1].lastLSN > l.lastLSN {
		l.lastLSN = segs[n-1].lastLSN
	}

	// Position for appends: reuse the final segment when its chain ends
	// exactly at lastLSN; otherwise (fresh dir, or pruning left the
	// snapshot ahead of the WAL) start a new segment.
	if l.opt.ReadOnly {
		return nil
	}
	if n := len(l.segs); n > 0 && l.segs[n-1].lastLSN == l.lastLSN {
		seg := &l.segs[n-1]
		f, err := os.OpenFile(filepath.Join(l.dir, seg.name), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		l.active = f
		l.segBytes = seg.bytes
	}
	return nil
}

// scanSegment reads one segment, verifying the header and every record.
// In the final segment a bad record is a torn tail: the file is truncated
// at the last valid record (unless read-only) and the scan stops. In any
// other segment a bad record is a hard corruption error.
func (l *Log) scanSegment(seg *segMeta, final bool) ([]Record, error) {
	path := filepath.Join(l.dir, seg.name)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < segHeaderSize {
		if final {
			return nil, corruptf("segment %s: truncated header (%d bytes)", seg.name, len(data))
		}
		return nil, corruptf("segment %s: truncated header mid-chain", seg.name)
	}
	if string(data[:4]) != walMagic {
		return nil, corruptf("segment %s: bad magic", seg.name)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != formatVersion {
		return nil, corruptf("segment %s: unsupported format version %d", seg.name, v)
	}
	if first := binary.LittleEndian.Uint64(data[8:16]); first != seg.firstLSN {
		return nil, corruptf("segment %s: header first-LSN %d disagrees with file name", seg.name, first)
	}

	var recs []Record
	seg.lastLSN = seg.firstLSN - 1
	off := int64(segHeaderSize)
	for off < int64(len(data)) {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			if !final {
				return nil, corruptf("segment %s: record at offset %d mid-chain: %v", seg.name, off, err)
			}
			if hasValidRecordAfter(data, off, seg.lastLSN) {
				// Intact records beyond the damage mean this is not a torn
				// write at the tail; truncating would drop acknowledged
				// batches and skipping would hide the hole. Refuse.
				return nil, corruptf("segment %s: record at offset %d damaged with valid records after it: %v", seg.name, off, err)
			}
			// Torn tail: drop it at the last valid record.
			if l.opt.ReadOnly {
				break
			}
			if terr := os.Truncate(path, off); terr != nil {
				return nil, fmt.Errorf("truncating torn tail of %s at %d: %w", seg.name, off, terr)
			}
			data = data[:off]
			break
		}
		want := seg.firstLSN + uint64(len(recs))
		if rec.LSN != want {
			return nil, corruptf("segment %s: record at offset %d has LSN %d, expected %d", seg.name, off, rec.LSN, want)
		}
		recs = append(recs, rec)
		seg.lastLSN = rec.LSN
		off += n
	}
	seg.records = len(recs)
	seg.bytes = off
	return recs, nil
}

// decodeRecord parses one record from the front of b, returning it and
// the bytes consumed. Any shortfall or checksum mismatch is an error.
func decodeRecord(b []byte) (Record, int64, error) {
	if len(b) < recHeaderSize {
		return Record{}, 0, fmt.Errorf("short record header (%d bytes)", len(b))
	}
	plen := binary.LittleEndian.Uint32(b[0:4])
	if plen > maxRecordPayload {
		return Record{}, 0, fmt.Errorf("record payload length %d exceeds limit", plen)
	}
	if int64(len(b)) < recHeaderSize+int64(plen) {
		return Record{}, 0, fmt.Errorf("short record payload (%d of %d bytes)", len(b)-recHeaderSize, plen)
	}
	if plen < 12 {
		return Record{}, 0, fmt.Errorf("record payload too short (%d bytes)", plen)
	}
	payload := b[recHeaderSize : recHeaderSize+int64(plen)]
	lsn := binary.LittleEndian.Uint64(payload[0:8])
	nops := binary.LittleEndian.Uint32(payload[8:12])
	if uint64(plen) != 12+uint64(nops)*opSize {
		return Record{}, 0, fmt.Errorf("record payload length %d disagrees with op count %d", plen, nops)
	}
	// CRC last: the cheap structural checks above reject most garbage, so
	// the torn-tail scanner can probe arbitrary offsets inexpensively.
	if crc := binary.LittleEndian.Uint32(b[4:8]); crc != crc32.Checksum(payload, crcTable) {
		return Record{}, 0, fmt.Errorf("record checksum mismatch")
	}
	rec := Record{LSN: lsn, Ops: make([]Op, nops)}
	for i := range rec.Ops {
		o := payload[12+i*opSize:]
		rec.Ops[i] = Op{
			Add:  o[0] != 0,
			From: int32(binary.LittleEndian.Uint32(o[1:5])),
			To:   int32(binary.LittleEndian.Uint32(o[5:9])),
		}
	}
	return rec, recHeaderSize + int64(plen), nil
}

// hasValidRecordAfter probes every offset past a damaged record for a
// record that still decodes with a CRC match and a chain-plausible LSN.
// Finding one proves the damage sits mid-log (acknowledged data follows),
// which recovery must surface instead of truncating or skipping.
func hasValidRecordAfter(data []byte, off int64, lastLSN uint64) bool {
	for p := off + 1; p+recHeaderSize <= int64(len(data)); p++ {
		rec, _, err := decodeRecord(data[p:])
		if err == nil && rec.LSN > lastLSN {
			return true
		}
	}
	return false
}

// encodeRecord builds the wire form of a record.
func encodeRecord(lsn uint64, ops []Op) []byte {
	plen := 12 + len(ops)*opSize
	buf := make([]byte, recHeaderSize+plen)
	payload := buf[recHeaderSize:]
	binary.LittleEndian.PutUint64(payload[0:8], lsn)
	binary.LittleEndian.PutUint32(payload[8:12], uint32(len(ops)))
	for i, op := range ops {
		o := payload[12+i*opSize:]
		o[0] = 0
		if op.Add {
			o[0] = 1
		}
		binary.LittleEndian.PutUint32(o[1:5], uint32(op.From))
		binary.LittleEndian.PutUint32(o[5:9], uint32(op.To))
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(plen))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	return buf
}

// Snapshot returns the snapshot recovery loaded, nil on a fresh
// directory. The caller must not mutate it.
func (l *Log) Snapshot() *Snapshot { return l.snap }

// Tail returns the recovered records past the snapshot, in LSN order, for
// replay. The caller must not mutate them.
func (l *Log) Tail() []Record { return l.tail }

// LastLSN returns the LSN of the most recent acknowledged append (or the
// recovered snapshot/tail position right after Open).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// Append journals one applied batch and returns its LSN, fsyncing unless
// Options.NoSync. Once an append fails — a real I/O error or the injected
// fault — the log is poisoned: the tail may be torn, so every later
// Append returns the same error and only recovery (reopening) repairs the
// file.
func (l *Log) Append(ops []Op) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return 0, ErrClosed
	case l.opt.ReadOnly:
		return 0, ErrReadOnly
	case l.err != nil:
		return 0, l.err
	}
	lsn := l.lastLSN + 1
	if l.active == nil || l.segBytes >= l.opt.SegmentBytes {
		if err := l.rotateLocked(lsn); err != nil {
			return 0, err
		}
	}
	buf := encodeRecord(lsn, ops)

	if l.opt.FailAfterBytes > 0 && l.written+int64(len(buf)) > l.opt.FailAfterBytes {
		// Injected crash: write only the bytes that "made it to disk"
		// before the fault, leaving a torn record for recovery to drop.
		if part := l.opt.FailAfterBytes - l.written; part > 0 {
			l.active.Write(buf[:part])
			l.active.Sync()
			l.written += part
		}
		l.err = ErrInjectedFault
		return 0, l.err
	}

	if _, err := l.active.Write(buf); err != nil {
		l.err = fmt.Errorf("durable: appending LSN %d: %w", lsn, err)
		return 0, l.err
	}
	if !l.opt.NoSync {
		if err := l.active.Sync(); err != nil {
			l.err = fmt.Errorf("durable: syncing LSN %d: %w", lsn, err)
			return 0, l.err
		}
	}
	l.written += int64(len(buf))
	l.segBytes += int64(len(buf))
	l.lastLSN = lsn
	l.appends++
	seg := &l.segs[len(l.segs)-1]
	seg.lastLSN = lsn
	seg.records++
	seg.bytes = l.segBytes
	return lsn, nil
}

// rotateLocked closes the active segment and starts a fresh one whose
// first record will carry firstLSN. Caller holds mu.
func (l *Log) rotateLocked(firstLSN uint64) error {
	if l.active != nil {
		if err := l.active.Close(); err != nil {
			return err
		}
		l.active = nil
	}
	name := segmentName(firstLSN)
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	hdr := make([]byte, segHeaderSize)
	copy(hdr, walMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], formatVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], firstLSN)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.active = f
	l.segBytes = segHeaderSize
	l.segs = append(l.segs, segMeta{name: name, firstLSN: firstLSN, lastLSN: firstLSN - 1, bytes: segHeaderSize})
	return nil
}

// Stats is a point-in-time view of the log for /stats and metrics.
type Stats struct {
	LastLSN          uint64
	Segments         int
	WALBytes         int64 // bytes across all live segments
	Snapshots        int   // snapshot files currently retained
	LastSnapshotLSN  uint64
	Appends          uint64 // records appended in-process
	SnapshotsWritten uint64 // snapshots written in-process
}

// Stats reports the log's current shape.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Stats{
		LastLSN:          l.lastLSN,
		Segments:         len(l.segs),
		Snapshots:        len(l.snaps),
		Appends:          l.appends,
		SnapshotsWritten: l.snapshots,
	}
	for i := range l.segs {
		s.WALBytes += l.segs[i].bytes
	}
	if n := len(l.snaps); n > 0 {
		s.LastSnapshotLSN = l.snaps[n-1].lsn
	}
	return s
}

// Close releases the active segment. The log must not be used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.active != nil {
		err := l.active.Close()
		l.active = nil
		return err
	}
	return nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable (shared atomic-write idiom; see internal/atomicio).
func syncDir(dir string) error { return atomicio.SyncDir(dir) }
