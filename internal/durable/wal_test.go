package durable

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// anchor writes the minimal snapshot a fresh log needs before records can
// be recovered against it (the dynamic layer does the same at New).
func anchor(t *testing.T, l *Log) {
	t.Helper()
	if err := l.WriteSnapshot(&Snapshot{Epoch: 1, Index: []byte("idx")}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
}

func mustOpen(t *testing.T, o Options) *Log {
	t.Helper()
	l, err := Open(o)
	if err != nil {
		t.Fatalf("Open(%+v): %v", o, err)
	}
	return l
}

func batch(i int) []Op {
	return []Op{
		{Add: true, From: int32(i), To: int32(i + 1)},
		{Add: false, From: int32(i + 1), To: int32(i)},
	}
}

func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.slwal"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no WAL segments in %s (err %v)", dir, err)
	}
	return matches[len(matches)-1]
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	anchor(t, l)
	var want []Record
	for i := 0; i < 5; i++ {
		ops := batch(i)
		lsn, err := l.Append(ops)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("Append %d: lsn %d, want %d", i, lsn, i+1)
		}
		want = append(want, Record{LSN: lsn, Ops: ops})
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := mustOpen(t, Options{Dir: dir})
	defer r.Close()
	if r.Snapshot() == nil || r.Snapshot().Epoch != 1 || string(r.Snapshot().Index) != "idx" {
		t.Fatalf("recovered snapshot %+v", r.Snapshot())
	}
	if !reflect.DeepEqual(r.Tail(), want) {
		t.Fatalf("recovered tail %+v, want %+v", r.Tail(), want)
	}
	if r.LastLSN() != 5 {
		t.Fatalf("LastLSN %d, want 5", r.LastLSN())
	}
	if lsn, err := r.Append(batch(9)); err != nil || lsn != 6 {
		t.Fatalf("append after recovery: lsn %d err %v", lsn, err)
	}
}

func TestSnapshotRoundTripAllSections(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	s := &Snapshot{
		Epoch:     7,
		TotalOps:  42,
		BaseNodes: 10,
		BaseEdges: []Edge{{0, 1}, {2, 3}},
		Index:     []byte{0xde, 0xad, 0xbe, 0xef},
		Edges:     []Edge{{0, 1}, {4, 5}},
		Pending:   []Op{{Add: true, From: 4, To: 5}, {Add: false, From: 2, To: 3}},
	}
	if err := l.WriteSnapshot(s); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	l.Close()

	r := mustOpen(t, Options{Dir: dir})
	defer r.Close()
	if !reflect.DeepEqual(r.Snapshot(), s) {
		t.Fatalf("snapshot round trip:\n got %+v\nwant %+v", r.Snapshot(), s)
	}
	if len(r.Tail()) != 0 {
		t.Fatalf("unexpected tail %+v", r.Tail())
	}
}

func TestSegmentRotationPreservesChain(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a rotation roughly every record.
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	anchor(t, l)
	for i := 0; i < 10; i++ {
		if _, err := l.Append(batch(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", st.Segments)
	}
	l.Close()

	r := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	defer r.Close()
	if got := len(r.Tail()); got != 10 {
		t.Fatalf("recovered %d records across segments, want 10", got)
	}
	for i, rec := range r.Tail() {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("tail[%d].LSN = %d", i, rec.LSN)
		}
	}
}

func TestTornTailTruncatedAtLastValidRecord(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	anchor(t, l)
	for i := 0; i < 3; i++ {
		if _, err := l.Append(batch(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()

	// Tear the final record mid-payload, as a crash mid-write would.
	seg := lastSegment(t, dir)
	st, _ := os.Stat(seg)
	if err := os.Truncate(seg, st.Size()-5); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	r := mustOpen(t, Options{Dir: dir})
	if got := len(r.Tail()); got != 2 {
		t.Fatalf("tail after torn write: %d records, want 2", got)
	}
	if r.LastLSN() != 2 {
		t.Fatalf("LastLSN %d, want 2", r.LastLSN())
	}
	// The file was physically repaired: LSN 3 is reusable and a second
	// recovery sees a clean chain.
	if lsn, err := r.Append(batch(7)); err != nil || lsn != 3 {
		t.Fatalf("append after truncation: lsn %d err %v", lsn, err)
	}
	r.Close()
	r2 := mustOpen(t, Options{Dir: dir})
	defer r2.Close()
	if got := len(r2.Tail()); got != 3 {
		t.Fatalf("tail after repair+append: %d records, want 3", got)
	}
}

func TestBitFlippedFinalRecordDropped(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	anchor(t, l)
	for i := 0; i < 2; i++ {
		if _, err := l.Append(batch(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()

	seg := lastSegment(t, dir)
	data, _ := os.ReadFile(seg)
	data[len(data)-3] ^= 0x40 // corrupt the last record's payload
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatalf("rewrite: %v", err)
	}

	r := mustOpen(t, Options{Dir: dir})
	defer r.Close()
	if got := len(r.Tail()); got != 1 {
		t.Fatalf("tail after bit flip: %d records, want 1", got)
	}
}

func TestMidLogCorruptionRefused(t *testing.T) {
	t.Run("earlier segment", func(t *testing.T) {
		dir := t.TempDir()
		l := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
		anchor(t, l)
		for i := 0; i < 6; i++ {
			if _, err := l.Append(batch(i)); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		l.Close()
		matches, _ := filepath.Glob(filepath.Join(dir, "wal-*.slwal"))
		if len(matches) < 2 {
			t.Fatalf("need ≥2 segments, got %d", len(matches))
		}
		data, _ := os.ReadFile(matches[0])
		data[len(data)-1] ^= 0x01
		os.WriteFile(matches[0], data, 0o644)

		if _, err := Open(Options{Dir: dir, SegmentBytes: 64}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open with mid-chain corruption: %v, want ErrCorrupt", err)
		}
	})
	t.Run("valid records after damage", func(t *testing.T) {
		dir := t.TempDir()
		l := mustOpen(t, Options{Dir: dir})
		anchor(t, l)
		var offs []int64
		for i := 0; i < 3; i++ {
			before := l.Stats().WALBytes
			if _, err := l.Append(batch(i)); err != nil {
				t.Fatalf("Append: %v", err)
			}
			offs = append(offs, before)
		}
		l.Close()
		// Damage the middle record's payload: the final record stays
		// intact, so truncation would drop acknowledged data.
		seg := lastSegment(t, dir)
		data, _ := os.ReadFile(seg)
		data[offs[1]+recHeaderSize+2] ^= 0x80
		os.WriteFile(seg, data, 0o644)

		if _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open with mid-segment damage: %v, want ErrCorrupt", err)
		}
	})
}

func TestInjectedFaultLeavesRecoverableTornTail(t *testing.T) {
	dir := t.TempDir()
	probe := mustOpen(t, Options{Dir: dir})
	anchor(t, probe)
	// The first append also pays the segment header, so measure the
	// per-record cost from the second.
	if _, err := probe.Append(batch(0)); err != nil {
		t.Fatalf("probe append: %v", err)
	}
	recBytes := func() int64 {
		before := probe.Stats().WALBytes
		if _, err := probe.Append(batch(1)); err != nil {
			t.Fatalf("probe append: %v", err)
		}
		return probe.Stats().WALBytes - before
	}()
	probe.Close()
	os.RemoveAll(dir)

	dir = t.TempDir()
	// The fault trips mid-way through the third record.
	l := mustOpen(t, Options{Dir: dir, FailAfterBytes: 2*recBytes + recBytes/2})
	anchor(t, l)
	acked := 0
	for i := 0; i < 10; i++ {
		if _, err := l.Append(batch(i)); err != nil {
			if !errors.Is(err, ErrInjectedFault) {
				t.Fatalf("Append %d: %v", i, err)
			}
			break
		}
		acked++
	}
	if acked != 2 {
		t.Fatalf("acknowledged %d appends before fault, want 2", acked)
	}
	// The log is poisoned after the fault.
	if _, err := l.Append(batch(99)); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("append after fault: %v, want sticky ErrInjectedFault", err)
	}
	l.Close()

	r := mustOpen(t, Options{Dir: dir})
	defer r.Close()
	if got := len(r.Tail()); got != acked {
		t.Fatalf("recovered %d records, want the %d acknowledged", got, acked)
	}
}

func TestSnapshotRetentionAndSegmentPruning(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	anchor(t, l)
	for round := 0; round < 3; round++ {
		for i := 0; i < 4; i++ {
			if _, err := l.Append(batch(round*4 + i)); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		if err := l.WriteSnapshot(&Snapshot{Epoch: uint64(round + 2), Index: []byte("idx")}); err != nil {
			t.Fatalf("WriteSnapshot: %v", err)
		}
	}
	st := l.Stats()
	if st.Snapshots != snapshotsRetained {
		t.Fatalf("retained %d snapshots, want %d", st.Snapshots, snapshotsRetained)
	}
	if st.LastSnapshotLSN != 12 {
		t.Fatalf("last snapshot LSN %d, want 12", st.LastSnapshotLSN)
	}
	l.Close()

	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.slsnap"))
	if len(snaps) != snapshotsRetained {
		t.Fatalf("%d snapshot files on disk, want %d", len(snaps), snapshotsRetained)
	}
	// Segments fully covered by the older retained snapshot (LSN 8) are
	// gone; recovery only needs records 9..12.
	r := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	defer r.Close()
	if r.Snapshot().Epoch != 4 {
		t.Fatalf("recovered epoch %d, want 4", r.Snapshot().Epoch)
	}
	if len(r.Tail()) != 0 {
		t.Fatalf("tail %+v, want empty (snapshot covers everything)", r.Tail())
	}
	if r.LastLSN() != 12 {
		t.Fatalf("LastLSN %d, want 12", r.LastLSN())
	}
	if lsn, err := r.Append(batch(50)); err != nil || lsn != 13 {
		t.Fatalf("append after pruned recovery: lsn %d err %v", lsn, err)
	}
}

func TestFallBackToOlderSnapshotWhenNewestDamaged(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	anchor(t, l) // snapshot 1 at LSN 0
	for i := 0; i < 3; i++ {
		if _, err := l.Append(batch(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.WriteSnapshot(&Snapshot{Epoch: 2, Index: []byte("idx2")}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	l.Close()

	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.slsnap"))
	data, _ := os.ReadFile(snaps[len(snaps)-1])
	data[len(data)/2] ^= 0xff
	os.WriteFile(snaps[len(snaps)-1], data, 0o644)

	r := mustOpen(t, Options{Dir: dir})
	defer r.Close()
	if r.Snapshot().Epoch != 1 {
		t.Fatalf("recovered epoch %d, want fallback to 1", r.Snapshot().Epoch)
	}
	// The WAL still holds records 1..3 because pruning only cuts at the
	// older retained snapshot.
	if got := len(r.Tail()); got != 3 {
		t.Fatalf("tail %d records, want 3", got)
	}
}

func TestReadOnlyOpen(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	anchor(t, l)
	if _, err := l.Append(batch(0)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	l.Close()
	seg := lastSegment(t, dir)
	st, _ := os.Stat(seg)
	os.Truncate(seg, st.Size()-3)
	sizeAfterTear, _ := os.Stat(seg)

	r := mustOpen(t, Options{Dir: dir, ReadOnly: true})
	defer r.Close()
	if _, err := r.Append(batch(1)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only Append: %v, want ErrReadOnly", err)
	}
	if err := r.WriteSnapshot(&Snapshot{Epoch: 9}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only WriteSnapshot: %v, want ErrReadOnly", err)
	}
	// The torn tail was dropped from the recovered view but the file was
	// not repaired.
	if got := len(r.Tail()); got != 0 {
		t.Fatalf("read-only tail %d records, want 0", got)
	}
	if now, _ := os.Stat(seg); now.Size() != sizeAfterTear.Size() {
		t.Fatalf("read-only open modified the segment (%d -> %d bytes)", sizeAfterTear.Size(), now.Size())
	}
}

func TestRecordsWithoutSnapshotRefused(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	anchor(t, l)
	if _, err := l.Append(batch(0)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	l.Close()
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.slsnap"))
	for _, s := range snaps {
		os.Remove(s)
	}
	if _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with orphaned records: %v, want ErrCorrupt", err)
	}
}

func TestTmpFilesCleanedUp(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	anchor(t, l)
	l.Close()
	tmp := filepath.Join(dir, "snap-00000000000000ff-0000000000000000.slsnap.tmp")
	os.WriteFile(tmp, []byte("half-written"), 0o644)

	r := mustOpen(t, Options{Dir: dir})
	defer r.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("tmp file survived recovery (stat err %v)", err)
	}
}

func TestClosedLogRejectsUse(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	anchor(t, l)
	l.Close()
	if _, err := l.Append(batch(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
	if err := l.WriteSnapshot(&Snapshot{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteSnapshot after Close: %v, want ErrClosed", err)
	}
}

func TestInspectHealthyAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	anchor(t, l)
	for i := 0; i < 6; i++ {
		if _, err := l.Append(batch(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()

	rep, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if rep.Corrupt() {
		t.Fatalf("healthy dir reported corrupt: %v", rep.Problems)
	}
	if rep.TailRecords != 6 || rep.TailOps != 12 {
		t.Fatalf("tail records %d ops %d, want 6/12", rep.TailRecords, rep.TailOps)
	}
	if rep.LastLSN != 6 || rep.RecoverFrom == "" {
		t.Fatalf("report %+v", rep)
	}

	// Torn final tail: still healthy (recoverable), reported per segment.
	seg := lastSegment(t, dir)
	st, _ := os.Stat(seg)
	os.Truncate(seg, st.Size()-3)
	rep, err = Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect torn: %v", err)
	}
	if rep.Corrupt() {
		t.Fatalf("torn tail reported as unrecoverable: %v", rep.Problems)
	}
	if last := rep.Segments[len(rep.Segments)-1]; last.TornBytes == 0 {
		t.Fatalf("torn bytes not reported: %+v", last)
	}

	// Mid-chain damage is a problem.
	matches, _ := filepath.Glob(filepath.Join(dir, "wal-*.slwal"))
	data, _ := os.ReadFile(matches[0])
	data[len(data)-1] ^= 0x01
	os.WriteFile(matches[0], data, 0o644)
	rep, err = Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect corrupt: %v", err)
	}
	if !rep.Corrupt() {
		t.Fatalf("mid-chain damage not flagged: %+v", rep)
	}
}
