package eval

import (
	"math"
	"testing"

	"sling/internal/graph"
	"sling/internal/power"
	"sling/internal/rng"
)

func scores(n int, fill func(i, j int) float64) *power.Scores {
	s := &power.Scores{N: n, Data: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.Data[i*n+j] = fill(i, j)
		}
	}
	return s
}

func TestMaxError(t *testing.T) {
	a := scores(3, func(i, j int) float64 { return 0.5 })
	b := scores(3, func(i, j int) float64 {
		if i == 2 && j == 1 {
			return 0.8
		}
		return 0.5
	})
	got, err := MaxError(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("MaxError = %v, want 0.3", got)
	}
}

func TestMaxErrorSizeMismatch(t *testing.T) {
	a := scores(2, func(i, j int) float64 { return 0 })
	b := scores(3, func(i, j int) float64 { return 0 })
	if _, err := MaxError(a, b); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestGroupErrorsBands(t *testing.T) {
	// Truth: s(0,1)=0.5 (S1), s(0,2)=0.05 (S2), s(1,2)=0.005 (S3).
	truth := scores(3, func(i, j int) float64 {
		switch {
		case i == j:
			return 1
		case (i == 0 && j == 1) || (i == 1 && j == 0):
			return 0.5
		case (i == 0 && j == 2) || (i == 2 && j == 0):
			return 0.05
		default:
			return 0.005
		}
	})
	est := scores(3, func(i, j int) float64 { return truth.At(i, j) + 0.01 })
	g, err := GroupErrors(est, truth)
	if err != nil {
		t.Fatal(err)
	}
	if g.N1 != 2 || g.N2 != 2 || g.N3 != 2 {
		t.Fatalf("band counts %+v", g)
	}
	for _, v := range []float64{g.S1, g.S2, g.S3} {
		if math.Abs(v-0.01) > 1e-12 {
			t.Fatalf("band error %v, want 0.01", v)
		}
	}
}

func TestGroupErrorsExcludesDiagonal(t *testing.T) {
	truth := scores(2, func(i, j int) float64 {
		if i == j {
			return 1
		}
		return 0.5
	})
	est := scores(2, func(i, j int) float64 {
		if i == j {
			return 0 // grossly wrong diagonal must not count
		}
		return 0.5
	})
	g, err := GroupErrors(est, truth)
	if err != nil {
		t.Fatal(err)
	}
	if g.S1 != 0 || g.N1 != 2 {
		t.Fatalf("diagonal leaked into groups: %+v", g)
	}
}

func TestTopKPairsOrderAndExclusions(t *testing.T) {
	truth := scores(4, func(i, j int) float64 {
		if i == j {
			return 1
		}
		return float64(i+j) / 10
	})
	top := TopKPairs(truth, 3)
	if len(top) != 3 {
		t.Fatalf("got %d pairs", len(top))
	}
	// Highest off-diagonal score is (2,3)=0.5, then (1,3)=0.4, then (0,3)=(1,2)=0.3.
	if top[0].U != 2 || top[0].V != 3 {
		t.Fatalf("top pair %+v", top[0])
	}
	if top[1].U != 1 || top[1].V != 3 {
		t.Fatalf("second pair %+v", top[1])
	}
	for _, p := range top {
		if p.U == p.V {
			t.Fatal("diagonal pair in top-k")
		}
		if p.U > p.V {
			t.Fatal("pair not normalized")
		}
	}
}

func TestTopKPairsTieBreakDeterministic(t *testing.T) {
	truth := scores(5, func(i, j int) float64 {
		if i == j {
			return 1
		}
		return 0.5 // all tied
	})
	a := TopKPairs(truth, 4)
	b := TopKPairs(truth, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tie-broken order not deterministic")
		}
	}
	if a[0].U != 0 || a[0].V != 1 {
		t.Fatalf("tie break should favor (0,1), got %+v", a[0])
	}
}

func TestTopKPrecisionPerfect(t *testing.T) {
	truth := scores(6, func(i, j int) float64 {
		if i == j {
			return 1
		}
		return 1 / float64(1+i+j)
	})
	p, err := TopKPrecision(truth, truth, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("self precision %v", p)
	}
}

func TestTopKPrecisionDegraded(t *testing.T) {
	truth := scores(6, func(i, j int) float64 {
		if i == j {
			return 1
		}
		return float64(i+j) / 100
	})
	// Estimate inverts the ordering: precision must be low.
	est := scores(6, func(i, j int) float64 {
		if i == j {
			return 1
		}
		return 1 - float64(i+j)/100
	})
	p, err := TopKPrecision(est, truth, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.5 {
		t.Fatalf("inverted estimate precision %v suspiciously high", p)
	}
}

func TestCollect(t *testing.T) {
	r := rng.New(5)
	b := graph.NewBuilder(20)
	for i := 0; i < 80; i++ {
		b.AddEdge(int32(r.Intn(20)), int32(r.Intn(20)))
	}
	g := b.Build()
	truth, err := GroundTruth(g, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	collected := Collect(20, func(u graph.NodeID, out []float64) []float64 {
		copy(out, truth.Row(int(u)))
		return out
	})
	worst, err := MaxError(collected, truth)
	if err != nil {
		t.Fatal(err)
	}
	if worst != 0 {
		t.Fatalf("Collect altered scores: max err %v", worst)
	}
}

func TestGroundTruthMatchesFixedPoint(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(2, 0)
	b.AddEdge(2, 1)
	g := b.Build()
	truth, err := GroundTruth(g, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(truth.At(0, 1)-0.6) > 1e-9 {
		t.Fatalf("ground truth s(0,1)=%v, want 0.6", truth.At(0, 1))
	}
}

func TestRowMaxErrorAndPairError(t *testing.T) {
	truth := &power.Scores{N: 3, Data: []float64{
		1, 0.2, 0.1,
		0.2, 1, 0.05,
		0.1, 0.05, 1,
	}}
	est := []float64{1, 0.25, 0.08}
	worst, err := RowMaxError(truth, 0, est)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(worst-0.05) > 1e-12 {
		t.Fatalf("row max error %v, want 0.05", worst)
	}
	if _, err := RowMaxError(truth, 0, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if e := PairError(truth, 1, 2, 0.02); math.Abs(e-0.03) > 1e-12 {
		t.Fatalf("pair error %v, want 0.03", e)
	}
}

func TestSymmetryGap(t *testing.T) {
	s := &power.Scores{N: 3, Data: []float64{
		1, 0.2, 0.1,
		0.2, 1, 0.05,
		0.1, 0.08, 1,
	}}
	if g := SymmetryGap(s); math.Abs(g-0.03) > 1e-12 {
		t.Fatalf("symmetry gap %v, want 0.03", g)
	}
	s.Data[5] = 0.08
	if g := SymmetryGap(s); g != 0 {
		t.Fatalf("symmetric matrix has gap %v", g)
	}
}

func TestRangeViolation(t *testing.T) {
	s := &power.Scores{N: 2, Data: []float64{1, 0.5, -0.02, 1.1}}
	if v := RangeViolation(s, 0, 1); math.Abs(v-0.1) > 1e-12 {
		t.Fatalf("violation %v, want 0.1 (the worst side)", v)
	}
	if v := RangeViolationSlice([]float64{0, 0.5, 1}, 0, 1); v != 0 {
		t.Fatalf("in-range scores violate by %v", v)
	}
	if v := RangeViolationSlice([]float64{-0.3}, 0, 1); math.Abs(v-0.3) > 1e-12 {
		t.Fatalf("low-side violation %v, want 0.3", v)
	}
}

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{0.5, 0.5, 0, true},
		{0.5, 0.5004, 1e-3, true},
		{0.5, 0.502, 1e-3, false},
		{0, 1e-12, 1e-9, true},
		{math.NaN(), math.NaN(), 1, false},
		{math.NaN(), 0, 1, false},
		{math.Inf(1), math.Inf(1), 1e-9, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}
