// Package eval provides the accuracy metrics of the paper's evaluation:
// maximum all-pairs error (Figure 5), average error by score group
// (Figure 6: S1 = [0.1, 1], S2 = [0.01, 0.1), S3 = (0, 0.01)), and top-k
// pair precision (Figure 7), all measured against power-method ground
// truth.
package eval

import (
	"fmt"
	"math"
	"sort"

	"sling/internal/graph"
	"sling/internal/power"
)

// GroundTruth computes reference all-pairs scores with the power method at
// accuracy well beyond the methods under test (the paper runs 50
// iterations; eps=1e-9 reaches that regime at c=0.6).
func GroundTruth(g *graph.Graph, c float64) (*power.Scores, error) {
	return power.AllPairs(g, c, power.IterationsFor(1e-9, c))
}

// MaxError returns the largest |est − truth| over all pairs.
func MaxError(est, truth *power.Scores) (float64, error) {
	if est.N != truth.N {
		return 0, fmt.Errorf("eval: size mismatch %d vs %d", est.N, truth.N)
	}
	worst := 0.0
	for i := range truth.Data {
		if d := math.Abs(est.Data[i] - truth.Data[i]); d > worst {
			worst = d
		}
	}
	return worst, nil
}

// Grouped reports the Figure 6 metric: mean absolute error within each
// ground-truth score band, with the pair counts that produced each mean.
type Grouped struct {
	S1, S2, S3 float64
	N1, N2, N3 int
}

// GroupErrors computes mean absolute error per score group. The diagonal
// is excluded, matching the paper's focus on cross-node similarity, and
// exact zeros fall into S3.
func GroupErrors(est, truth *power.Scores) (Grouped, error) {
	var g Grouped
	if est.N != truth.N {
		return g, fmt.Errorf("eval: size mismatch %d vs %d", est.N, truth.N)
	}
	var sum1, sum2, sum3 float64
	n := truth.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			tv := truth.At(i, j)
			d := math.Abs(est.At(i, j) - tv)
			switch {
			case tv >= 0.1:
				sum1 += d
				g.N1++
			case tv >= 0.01:
				sum2 += d
				g.N2++
			default:
				sum3 += d
				g.N3++
			}
		}
	}
	if g.N1 > 0 {
		g.S1 = sum1 / float64(g.N1)
	}
	if g.N2 > 0 {
		g.S2 = sum2 / float64(g.N2)
	}
	if g.N3 > 0 {
		g.S3 = sum3 / float64(g.N3)
	}
	return g, nil
}

// RowMaxError returns the largest |est[v] − truth(u, v)| over all v: the
// single-source counterpart of MaxError, used by the dynamic-graph
// accuracy harness to check one source's answers against ground truth
// without materializing a full estimate matrix.
func RowMaxError(truth *power.Scores, u graph.NodeID, est []float64) (float64, error) {
	if len(est) != truth.N {
		return 0, fmt.Errorf("eval: row length %d vs %d nodes", len(est), truth.N)
	}
	row := truth.Row(int(u))
	worst := 0.0
	for v, s := range est {
		if d := math.Abs(s - row[v]); d > worst {
			worst = d
		}
	}
	return worst, nil
}

// PairError returns |est − truth(u, v)| for one pair estimate.
func PairError(truth *power.Scores, u, v graph.NodeID, est float64) float64 {
	return math.Abs(est - truth.At(int(u), int(v)))
}

// SymmetryGap returns the largest |s(i,j) − s(j,i)| of an estimate
// matrix. Exact SimRank is symmetric, so for an index whose join is
// mathematically symmetric the gap measures only float summation-order
// effects; the conformance harness bounds it near machine precision.
func SymmetryGap(s *power.Scores) float64 {
	worst := 0.0
	for i := 0; i < s.N; i++ {
		for j := i + 1; j < s.N; j++ {
			if d := math.Abs(s.At(i, j) - s.At(j, i)); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// RangeViolation returns how far any entry of s leaves [lo, hi]
// (0 when every score is in range).
func RangeViolation(s *power.Scores, lo, hi float64) float64 {
	return RangeViolationSlice(s.Data, lo, hi)
}

// RangeViolationSlice is RangeViolation over a raw score slice.
func RangeViolationSlice(scores []float64, lo, hi float64) float64 {
	worst := 0.0
	for _, v := range scores {
		if d := lo - v; d > worst {
			worst = d
		}
		if d := v - hi; d > worst {
			worst = d
		}
	}
	return worst
}

// ScoredPair is an unordered node pair with a score.
type ScoredPair struct {
	U, V  graph.NodeID
	Score float64
}

// TopKPairs returns the k highest-scoring unordered pairs (u < v; the
// diagonal is excluded, as footnote 1 of the paper prescribes), breaking
// score ties by (U, V) so results are deterministic.
func TopKPairs(s *power.Scores, k int) []ScoredPair {
	n := s.N
	if k <= 0 || n < 2 {
		return nil
	}
	pairs := make([]ScoredPair, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		row := s.Row(i)
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, ScoredPair{U: int32(i), V: int32(j), Score: row[j]})
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].Score != pairs[b].Score {
			return pairs[a].Score > pairs[b].Score
		}
		if pairs[a].U != pairs[b].U {
			return pairs[a].U < pairs[b].U
		}
		return pairs[a].V < pairs[b].V
	})
	if k > len(pairs) {
		k = len(pairs)
	}
	return pairs[:k]
}

// TopKPrecision returns the fraction of est's top-k pairs that appear in
// truth's top-k pairs (the Figure 7 metric).
func TopKPrecision(est, truth *power.Scores, k int) (float64, error) {
	if est.N != truth.N {
		return 0, fmt.Errorf("eval: size mismatch %d vs %d", est.N, truth.N)
	}
	estTop := TopKPairs(est, k)
	truthTop := TopKPairs(truth, k)
	if len(truthTop) == 0 {
		return 1, nil
	}
	inTruth := make(map[uint64]struct{}, len(truthTop))
	for _, p := range truthTop {
		inTruth[pairKey(p.U, p.V)] = struct{}{}
	}
	hits := 0
	for _, p := range estTop {
		if _, ok := inTruth[pairKey(p.U, p.V)]; ok {
			hits++
		}
	}
	return float64(hits) / float64(len(truthTop)), nil
}

func pairKey(u, v graph.NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// Collect builds an all-pairs score matrix by invoking a single-source
// solver for every node — how the harness turns SLING/MC/Linearize into
// the all-pairs estimates Figures 5-7 compare. The solver receives a
// reusable output buffer and must fill scores for source u.
func Collect(n int, solve func(u graph.NodeID, out []float64) []float64) *power.Scores {
	s := &power.Scores{N: n, Data: make([]float64, n*n)}
	buf := make([]float64, n)
	for u := 0; u < n; u++ {
		row := solve(int32(u), buf)
		copy(s.Data[u*n:(u+1)*n], row)
	}
	return s
}

// ApproxEqual reports whether two scores agree to within tol, the
// comparison the slingvet floateq analyzer steers float64 score code
// toward: every estimator in this repository carries an additive-eps
// guarantee (Theorem 2 of the paper), so exact ==/!= on scores encodes
// a precision the algorithms never promised. NaN is never approximately
// equal to anything, matching IEEE comparison semantics.
func ApproxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}
