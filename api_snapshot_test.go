package sling_test

// Golden exported-API gate: the public surface of package sling is
// snapshotted in api/sling.txt, and any drift — a method gaining or
// losing a parameter, a type appearing or vanishing — fails here (and in
// the CI api job) until the snapshot is refreshed deliberately with
// scripts/apisnap.sh. This is what keeps the Querier unification from
// silently re-fragmenting: a new backend that invents its own query
// signature shows up as a reviewable diff, not a drive-by.

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// declarationSection distills `go doc -all` output to the exported
// declarations — including method signatures, struct fields, and
// interface bodies — dropping doc prose (4-space indented), blank
// lines, and in-body comments: the same filter scripts/apisnap.sh
// applies.
func declarationSection(doc string) string {
	var out []string
	capture := false
	for _, line := range strings.Split(doc, "\n") {
		switch line {
		case "CONSTANTS", "VARIABLES", "FUNCTIONS", "TYPES":
			capture = true
		}
		if !capture || line == "" ||
			strings.HasPrefix(line, "    ") ||
			strings.HasPrefix(strings.TrimLeft(line, "\t"), "//") {
			continue
		}
		out = append(out, line)
	}
	if len(out) == 0 {
		return ""
	}
	return strings.Join(out, "\n") + "\n"
}

func TestExportedAPISnapshot(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not on PATH; the CI api job still gates the snapshot")
	}
	out, err := exec.Command(goBin, "doc", "-all", "sling").Output()
	if err != nil {
		t.Skipf("go doc unavailable in this environment: %v", err)
	}
	got := declarationSection(string(out))
	if got == "" {
		t.Fatal("go doc output contained no declarations")
	}
	wantBytes, err := os.ReadFile("api/sling.txt")
	if err != nil {
		t.Fatalf("reading golden: %v (regenerate with scripts/apisnap.sh > api/sling.txt)", err)
	}
	want := strings.TrimRight(string(wantBytes), "\n") + "\n"
	if got != want {
		t.Fatalf("exported API surface drifted from api/sling.txt.\n"+
			"If the change is intentional, refresh the golden:\n\n"+
			"    scripts/apisnap.sh > api/sling.txt\n\n"+
			"--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}
