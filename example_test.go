package sling_test

import (
	"fmt"
	"strings"

	"sling"
)

// Two papers (0 and 1) cited by the same two surveys (2 and 3) are
// structurally similar; exact SimRank gives s(0,1) = c/2 = 0.30
// (the surveys themselves share no citers, so s(2,3) = 0).
func Example() {
	b := sling.NewGraphBuilder(4)
	b.AddEdge(2, 0)
	b.AddEdge(2, 1)
	b.AddEdge(3, 0)
	b.AddEdge(3, 1)
	g := b.Build()

	ix, err := sling.Build(g, &sling.Options{Seed: 42})
	if err != nil {
		panic(err)
	}
	fmt.Printf("s(0,1) = %.2f\n", ix.SimRank(0, 1))
	fmt.Printf("s(0,2) = %.2f\n", ix.SimRank(0, 2))
	// Output:
	// s(0,1) = 0.30
	// s(0,2) = 0.00
}

func ExampleIndex_TopK() {
	// A small co-citation cluster: 0 and 1 share both citers, 5 shares
	// one citer with them.
	b := sling.NewGraphBuilder(6)
	for _, e := range [][2]sling.NodeID{
		{2, 0}, {3, 0}, {2, 1}, {3, 1}, {3, 5}, {4, 5},
	} {
		b.AddEdge(e[0], e[1])
	}
	ix, err := sling.Build(b.Build(), &sling.Options{Seed: 7})
	if err != nil {
		panic(err)
	}
	for _, s := range ix.TopK(0, 2) {
		fmt.Printf("node %d score %.2f\n", s.Node, s.Score)
	}
	// Output:
	// node 1 score 0.30
	// node 5 score 0.15
}

func ExampleIndex_SingleSource() {
	b := sling.NewGraphBuilder(4)
	b.AddEdge(2, 0)
	b.AddEdge(2, 1)
	b.AddEdge(3, 0)
	b.AddEdge(3, 1)
	ix, err := sling.Build(b.Build(), &sling.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	scores := ix.SingleSource(0, nil)
	fmt.Printf("s(0,1) = %.2f\n", scores[1])
	// Output:
	// s(0,1) = 0.30
}

func ExampleLoadEdgeList() {
	const data = "# a tiny SNAP-format file\n10 30\n20 30\n"
	g, labels, err := sling.LoadEdgeList(strings.NewReader(data), false)
	if err != nil {
		panic(err)
	}
	fmt.Printf("n=%d m=%d first-label=%d\n", g.NumNodes(), g.NumEdges(), labels[0])
	// Output:
	// n=3 m=2 first-label=10
}
