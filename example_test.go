package sling_test

import (
	"context"
	"fmt"
	"strings"

	"sling"
)

// Two papers (0 and 1) cited by the same two surveys (2 and 3) are
// structurally similar; exact SimRank gives s(0,1) = c/2 = 0.30
// (the surveys themselves share no citers, so s(2,3) = 0).
func Example() {
	b := sling.NewGraphBuilder(4)
	b.AddEdge(2, 0)
	b.AddEdge(2, 1)
	b.AddEdge(3, 0)
	b.AddEdge(3, 1)
	g := b.Build()

	ix, err := sling.Build(g, sling.WithSeed(42))
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	s01, err := ix.SimRank(ctx, 0, 1)
	if err != nil {
		panic(err)
	}
	s02, err := ix.SimRank(ctx, 0, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("s(0,1) = %.2f\n", s01)
	fmt.Printf("s(0,2) = %.2f\n", s02)
	// Output:
	// s(0,1) = 0.30
	// s(0,2) = 0.00
}

func ExampleIndex_TopK() {
	// A small co-citation cluster: 0 and 1 share both citers, 5 shares
	// one citer with them.
	b := sling.NewGraphBuilder(6)
	for _, e := range [][2]sling.NodeID{
		{2, 0}, {3, 0}, {2, 1}, {3, 1}, {3, 5}, {4, 5},
	} {
		b.AddEdge(e[0], e[1])
	}
	ix, err := sling.Build(b.Build(), sling.WithSeed(7))
	if err != nil {
		panic(err)
	}
	top, err := ix.TopK(context.Background(), 0, 2)
	if err != nil {
		panic(err)
	}
	for _, s := range top {
		fmt.Printf("node %d score %.2f\n", s.Node, s.Score)
	}
	// Output:
	// node 1 score 0.30
	// node 5 score 0.15
}

func ExampleIndex_SingleSource() {
	b := sling.NewGraphBuilder(4)
	b.AddEdge(2, 0)
	b.AddEdge(2, 1)
	b.AddEdge(3, 0)
	b.AddEdge(3, 1)
	ix, err := sling.Build(b.Build(), sling.WithSeed(1))
	if err != nil {
		panic(err)
	}
	scores, err := ix.SingleSource(context.Background(), 0, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("s(0,1) = %.2f\n", scores[1])
	// Output:
	// s(0,1) = 0.30
}

// Code written against Querier serves from any backend — here the same
// report runs over the in-memory index and could equally take a
// DiskIndex or DynamicIndex.
func ExampleQuerier() {
	b := sling.NewGraphBuilder(4)
	b.AddEdge(2, 0)
	b.AddEdge(2, 1)
	b.AddEdge(3, 0)
	b.AddEdge(3, 1)
	ix, err := sling.Build(b.Build(), sling.WithSeed(42))
	if err != nil {
		panic(err)
	}

	report := func(q sling.Querier, u, v sling.NodeID) {
		s, err := q.SimRank(context.Background(), u, v)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s backend: s(%d,%d) = %.2f\n", q.Meta().Name, u, v, s)
	}
	report(ix, 0, 1)
	// Output:
	// memory backend: s(0,1) = 0.30
}

func ExampleLoadEdgeList() {
	const data = "# a tiny SNAP-format file\n10 30\n20 30\n"
	g, labels, err := sling.LoadEdgeList(strings.NewReader(data), false)
	if err != nil {
		panic(err)
	}
	fmt.Printf("n=%d m=%d first-label=%d\n", g.NumNodes(), g.NumEdges(), labels[0])
	// Output:
	// n=3 m=2 first-label=10
}
