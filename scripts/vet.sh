#!/usr/bin/env bash
# vet.sh — the repository's full static-analysis gate, runnable locally
# and in CI (the lint job calls exactly this script):
#
#   1. go vet          — the stock toolchain checks
#   2. staticcheck     — if installed; CI installs the pinned version
#                        from .github/workflows/ci.yml, locally it is
#                        optional so a bare container can still vet
#   3. slingvet        — the repo's own analyzer suite (cmd/slingvet):
#                        determinism, cancellation, pooling, error
#                        contract, metrics-schema, and unsafe-confinement
#                        invariants
#
# Usage: scripts/vet.sh [packages...]   (default ./...)
set -euo pipefail
cd "$(dirname "$0")/.."

pkgs=("$@")
if [ ${#pkgs[@]} -eq 0 ]; then
  pkgs=(./...)
fi

echo "==> go vet"
go vet "${pkgs[@]}"

if command -v staticcheck >/dev/null 2>&1; then
  echo "==> staticcheck"
  staticcheck "${pkgs[@]}"
else
  echo "==> staticcheck not installed; skipping (CI runs the pinned version)"
fi

echo "==> slingvet"
go run ./cmd/slingvet "${pkgs[@]}"

echo "ok: all static analysis passed"
