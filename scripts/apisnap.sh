#!/bin/sh
# Regenerates the exported-API golden snapshot: every exported
# declaration of package sling INCLUDING method signatures, struct
# fields, and interface bodies (from `go doc -all`), with doc prose,
# comments, and blank lines stripped so wording can evolve without
# churning the API gate. CI diffs it against api/sling.txt and fails on
# any unreviewed surface change; after an intentional change, refresh
# with:
#
#   scripts/apisnap.sh > api/sling.txt
set -e
go doc -all sling | awk '
/^(CONSTANTS|VARIABLES|FUNCTIONS|TYPES)$/ { capture = 1 }
!capture { next }
/^    / { next }           # 4-space indent = doc prose
/^$/ { next }              # blank separators
/^\t*\/\// { next }        # source comments inside type bodies
{ print }
'
