package sling

// The shard-backend surface of scatter/gather serving. A sharded
// deployment partitions the node space into contiguous ranges, each
// served by a shard index (Index.Shard) holding full O(n) metadata but HP
// entries only for its range. The router (internal/shard) talks to shards
// through ShardBackend: it fetches a query's endpoint fragments from
// their owning shards, then either joins them locally (single-pair) or
// broadcasts a fragment and gathers per-shard score slices or pruned
// local top-k lists. Every shard-side step reuses the single-index query
// code, so sharded answers are bitwise-identical to the unsharded index.

import (
	"context"
	"errors"
	"sort"

	"sling/internal/core"
)

// Fragment is one node's effective HP entry list — the unit of transfer
// in scatter/gather queries. Keys are (step, meeting-node) entry keys
// sorted ascending, Vals the hitting probabilities, and DVals the d̃
// correction factor of each entry's meeting node, carried along so a
// router holding no index can evaluate the Algorithm 3 merge join.
type Fragment struct {
	Node  NodeID    `json:"node"`
	Keys  []uint64  `json:"keys"`
	Vals  []float64 `json:"vals"`
	DVals []float64 `json:"dvals"`
}

// errSliceRange rejects malformed [lo, hi) slice bounds in ShardBackend
// calls. These are router protocol parameters, not caller-supplied node
// IDs, so it is distinct from ErrNodeRange.
var errSliceRange = errors.New("sling: shard slice range out of bounds")

func checkSlice(n, lo, hi int) error {
	if lo < 0 || hi > n || lo > hi {
		return errSliceRange
	}
	return nil
}

// ShardBackend is the query surface a shard exposes to a scatter/gather
// router, beyond the ordinary Querier methods it also serves:
//
//   - Fragment returns a node's gathered HP entries. Only the shard
//     owning the node holds them; routers must route by the manifest.
//   - SourceSlice propagates a (possibly remote) fragment through the
//     shard's full graph and returns the [lo, hi) slice of the score
//     vector — the shard's share of a single-source answer.
//   - TopSlice is SourceSlice followed by local top-k selection over
//     [lo, hi) with the global ordering, so per-shard k-pruned lists
//     merge losslessly.
//
// *Index and *DiskIndex implement ShardBackend natively.
type ShardBackend interface {
	Querier
	Fragment(ctx context.Context, u NodeID) (*Fragment, error)
	SourceSlice(ctx context.Context, f *Fragment, lo, hi int) ([]float64, error)
	TopSlice(ctx context.Context, f *Fragment, k int, skip NodeID, lo, hi int) ([]Scored, error)
}

var (
	_ ShardBackend = (*Index)(nil)
	_ ShardBackend = (*DiskIndex)(nil)
)

// Shard returns an index owning the contiguous node range [lo, hi): full
// metadata (graph, parameters, correction factors), HP entries only for
// the owned nodes. It serializes with Save as a standard SLIX file —
// the per-shard artifact `slingtool shard split` writes.
func (ix *Index) Shard(lo, hi int) *Index {
	return wrap(ix.x.Slice(lo, hi))
}

// EntryBytes returns the serialized size of each node's stored HP
// entries, the weight vector shard planning balances over.
func (ix *Index) EntryBytes() []int64 { return ix.x.EntryBytes() }

// Fragment implements ShardBackend over the in-memory index.
func (ix *Index) Fragment(ctx context.Context, u NodeID) (*Fragment, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := checkNode(ix.n, u); err != nil {
		return nil, err
	}
	keys, vals, dvals := ix.pool.Fragment(u)
	return &Fragment{Node: u, Keys: keys, Vals: vals, DVals: dvals}, nil
}

// SourceSlice implements ShardBackend over the in-memory index.
func (ix *Index) SourceSlice(ctx context.Context, f *Fragment, lo, hi int) ([]float64, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := checkSlice(ix.n, lo, hi); err != nil {
		return nil, err
	}
	return ix.pool.SourceSlice(f.Keys, f.Vals, lo, hi), nil
}

// TopSlice implements ShardBackend over the in-memory index.
func (ix *Index) TopSlice(ctx context.Context, f *Fragment, k int, skip NodeID, lo, hi int) ([]Scored, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := checkSlice(ix.n, lo, hi); err != nil {
		return nil, err
	}
	return ix.pool.TopSlice(f.Keys, f.Vals, k, skip, lo, hi), nil
}

// Fragment implements ShardBackend over the disk index.
func (di *DiskIndex) Fragment(ctx context.Context, u NodeID) (*Fragment, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := checkNode(di.n, u); err != nil {
		return nil, err
	}
	keys, vals, dvals, err := di.pool.Fragment(u)
	if err != nil {
		return nil, err
	}
	return &Fragment{Node: u, Keys: keys, Vals: vals, DVals: dvals}, nil
}

// SourceSlice implements ShardBackend over the disk index; propagation
// runs on the memory-resident metadata, so it costs no I/O.
func (di *DiskIndex) SourceSlice(ctx context.Context, f *Fragment, lo, hi int) ([]float64, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := checkSlice(di.n, lo, hi); err != nil {
		return nil, err
	}
	return di.pool.SourceSlice(f.Keys, f.Vals, lo, hi), nil
}

// TopSlice implements ShardBackend over the disk index.
func (di *DiskIndex) TopSlice(ctx context.Context, f *Fragment, k int, skip NodeID, lo, hi int) ([]Scored, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := checkSlice(di.n, lo, hi); err != nil {
		return nil, err
	}
	return di.pool.TopSlice(f.Keys, f.Vals, k, skip, lo, hi), nil
}

// JoinFragments evaluates the Algorithm 3 merge join of two gathered
// fragments — the router-side half of a sharded single-pair query. The
// multiplication order matches the single-index join exactly, so the
// score is bitwise-identical to SimRank on the unsharded index.
func JoinFragments(u, v *Fragment) float64 {
	return core.JoinScoreD(u.Keys, u.Vals, u.DVals, v.Keys, v.Vals)
}

// MergeTop merges per-shard k-pruned top lists into the global top-k:
// concatenate, sort by the selection order, truncate. Because shard
// ranges partition the node space, any global top-k member survives its
// shard's local top-k, so the merge is lossless.
func MergeTop(lists [][]Scored, k int) []Scored {
	var all []Scored
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[j].WorseThan(all[i]) })
	if k < len(all) {
		all = all[:k]
	}
	return all
}
