package sling

// Cross-method integration tests: the four SimRank solvers in this
// repository (power method, Monte Carlo, linearization, SLING) are
// independent implementations resting on different formulations of the
// same quantity — Equation (1), reverse-walk meetings (Eq. 2), the
// diagonal-correction series (Lemma 2), and the last-meeting
// decomposition (Lemma 4). Agreement across all four on random graphs is
// the strongest end-to-end check the paper's theory offers, including the
// Lemma 5 bridge between the walk view and the matrix view.

import (
	"math"
	"testing"

	"sling/internal/core"
	"sling/internal/graph"
	"sling/internal/linearize"
	"sling/internal/mc"
	"sling/internal/power"
	"sling/internal/rng"
	"sling/internal/walk"
)

func TestAllMethodsAgree(t *testing.T) {
	g := testGraph(50, 280, 77)
	const c = 0.6
	truth, err := power.AllPairs(g, c, power.IterationsFor(1e-9, c))
	if err != nil {
		t.Fatal(err)
	}

	slingIx, err := core.Build(g, &core.Options{C: c, Eps: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mcIx, err := mc.Build(g, &mc.Options{C: c, NumWalks: 20000, Truncation: 12, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	linIx, err := linearize.Build(g, &linearize.Options{C: c, R: 800, L: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	qs := slingIx.NewScratch()
	ls := linIx.NewScratch()
	var worstSling, worstMC, worstLin float64
	for i := 0; i < 50; i++ {
		for j := 0; j < 50; j++ {
			want := truth.At(i, j)
			u, v := graph.NodeID(i), graph.NodeID(j)
			if d := math.Abs(slingIx.SimRank(u, v, qs) - want); d > worstSling {
				worstSling = d
			}
			if d := math.Abs(mcIx.SimRank(u, v) - want); d > worstMC {
				worstMC = d
			}
			if d := math.Abs(linIx.SimRank(u, v, ls) - want); d > worstLin {
				worstLin = d
			}
		}
	}
	if worstSling > slingIx.ErrorBound() {
		t.Fatalf("SLING worst error %v breaks its guarantee %v", worstSling, slingIx.ErrorBound())
	}
	if worstMC > 0.03 {
		t.Fatalf("MC worst error %v", worstMC)
	}
	if worstLin > 0.08 {
		t.Fatalf("Linearize worst error %v", worstLin)
	}
}

// Lemma 5: h^(ℓ)(v_i, v_k) = (√c)^ℓ · P^ℓ(k, i), and the correction
// factor d_k equals the k-th diagonal of the linearization method's D.
// The walk package computes HPs from the √c-walk recurrence; here we
// verify them against plain powers of the column-stochastic P.
func TestLemma5HPsArePowersOfP(t *testing.T) {
	g := testGraph(20, 90, 79)
	const c = 0.6
	n := g.NumNodes()
	hp := walk.ExactHP(g, c, 5)

	// P^ℓ · e_i computed column by column: (P·x)(a) = Σ_{j: a∈I(j)} x_j/|I(j)|.
	applyP := func(x []float64) []float64 {
		out := make([]float64, n)
		for j := 0; j < n; j++ {
			if x[j] == 0 {
				continue
			}
			ins := g.InNeighbors(graph.NodeID(j))
			if len(ins) == 0 {
				continue
			}
			share := x[j] / float64(len(ins))
			for _, a := range ins {
				out[a] += share
			}
		}
		return out
	}
	sqrtC := math.Sqrt(c)
	for i := 0; i < n; i++ {
		col := make([]float64, n)
		col[i] = 1
		scale := 1.0
		for l := 0; l <= 5; l++ {
			for k := 0; k < n; k++ {
				want := scale * col[k] // (√c)^ℓ · P^ℓ(k,i)
				if math.Abs(hp[l][i][k]-want) > 1e-12 {
					t.Fatalf("Lemma 5 violated at l=%d i=%d k=%d: hp %v vs %v",
						l, i, k, hp[l][i][k], want)
				}
			}
			col = applyP(col)
			scale *= sqrtC
		}
	}
}

func TestLemma5CorrectionFactorsEqualDiagonalD(t *testing.T) {
	g := testGraph(25, 120, 81)
	const c = 0.6
	truth, err := power.AllPairs(g, c, power.IterationsFor(1e-10, c))
	if err != nil {
		t.Fatal(err)
	}
	dWalk := core.ExactDFromScores(g, c, truth.At)
	dLin := linearize.ExactD(g, c, truth.At)
	for k := range dWalk {
		if math.Abs(dWalk[k]-dLin[k]) > 1e-12 {
			t.Fatalf("d[%d]: walk view %v vs matrix view %v", k, dWalk[k], dLin[k])
		}
	}
	// And reconstructing S from D via the Lemma 2 series must reproduce
	// the ground truth (within series truncation).
	linIx, err := linearize.Build(g, &linearize.Options{C: c, T: 30, R: 5, L: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	linIx.SetD(dLin)
	s := linIx.NewScratch()
	for i := 0; i < 25; i++ {
		for j := 0; j < 25; j++ {
			got := linIx.SimRank(graph.NodeID(i), graph.NodeID(j), s)
			if math.Abs(got-truth.At(i, j)) > 1e-3 {
				t.Fatalf("Lemma 2 reconstruction off at (%d,%d): %v vs %v", i, j, got, truth.At(i, j))
			}
		}
	}
}

// Appendix A of the paper: on the directed 4-cycle the linear system for
// D is not diagonally dominant at c = 0.6, the condition Gauss-Seidel
// needs — the paper's argument for why Linearize carries no guarantee.
// SLING must still meet its bound on that adversarial graph.
func TestAdversarialFourCycle(t *testing.T) {
	b := NewGraphBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.Build()
	const c = 0.6
	truth, err := power.AllPairs(g, c, power.IterationsFor(1e-10, c))
	if err != nil {
		t.Fatal(err)
	}
	// The exact D on the cycle is the uniform diagonal (1-c^4 geometry of
	// Figure 8); all off-diagonal similarities are 0 since walks preserve
	// circular distance.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(truth.At(i, j)-want) > 1e-9 {
				t.Fatalf("cycle ground truth wrong at (%d,%d): %v", i, j, truth.At(i, j))
			}
		}
	}
	ix, err := core.Build(g, &core.Options{C: c, Eps: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	qs := ix.NewScratch()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			got := ix.SimRank(graph.NodeID(i), graph.NodeID(j), qs)
			if math.Abs(got-truth.At(i, j)) > ix.ErrorBound() {
				t.Fatalf("SLING breaks its bound on the adversarial cycle at (%d,%d): %v", i, j, got)
			}
		}
	}
}

// Equation 2 (the Monte Carlo formulation) and Lemma 3 (the √c-walk
// formulation) must agree: estimate one score both ways.
func TestWalkFormulationsAgree(t *testing.T) {
	g := testGraph(30, 150, 83)
	const c = 0.6
	w := walk.New(g, c, rng.New(5))
	lemma3 := w.MeetProbability(3, 17, 150000)
	mcIx, err := mc.Build(g, &mc.Options{C: c, NumWalks: 150000, Truncation: 15, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	eq2 := mcIx.SimRank(3, 17)
	if math.Abs(lemma3-eq2) > 0.01 {
		t.Fatalf("formulations disagree: Lemma 3 %v vs Eq. 2 %v", lemma3, eq2)
	}
}
