// Package sling is a Go implementation of SLING, the near-optimal SimRank
// index structure of Tian & Xiao (SIGMOD 2016).
//
// SimRank (Jeh & Widom) measures the similarity of two graph nodes by the
// recursive principle that nodes are similar when their in-neighbors are
// similar. SLING preprocesses a directed graph into an O(n/ε) index that
// then answers
//
//   - single-pair queries s(u, v) in O(1/ε) time, and
//   - single-source queries s(u, ·) in O(m·log²(1/ε)) time,
//
// each with a guaranteed additive error of at most ε (with probability
// 1−δ, over the randomness of preprocessing).
//
// # Quick start
//
//	b := sling.NewGraphBuilder(4)
//	b.AddEdge(0, 2)
//	b.AddEdge(1, 2)
//	b.AddEdge(2, 3)
//	g := b.Build()
//
//	ix, err := sling.Build(g) // paper defaults: c=0.6, ε=0.025
//	if err != nil { ... }
//	score, err := ix.SimRank(ctx, 0, 1)
//
// Every backend — the in-memory Index, the disk-resident DiskIndex, and
// the updatable DynamicIndex — implements the Querier interface: the same
// five query methods, context-aware and error-uniform, so serving code
// written against Querier runs over any of them. Construction is tuned
// with functional options (WithEps, WithWorkers, ...).
//
// The index is safe for concurrent queries. See the examples directory
// for larger scenarios, and DESIGN.md / EXPERIMENTS.md for how this
// implementation reproduces the paper's evaluation.
package sling

import (
	"context"
	"errors"
	"io"
	"runtime"

	"sling/internal/core"
	"sling/internal/durable"
	"sling/internal/dynamic"
	"sling/internal/graph"
	"sling/internal/power"
)

// Graph is a directed graph in dual-CSR form. Construct one with
// NewGraphBuilder, FromEdges, or the edge-list loaders.
type Graph = graph.Graph

// NodeID identifies a node as a dense index in [0, NumNodes).
type NodeID = graph.NodeID

// Edge is a directed edge From -> To.
type Edge = graph.Edge

// GraphBuilder accumulates edges and produces an immutable Graph.
type GraphBuilder = graph.Builder

// Options is the legacy construction configuration. The zero value
// reproduces the paper's experimental configuration (c = 0.6, ε = 0.025,
// δ_d = 1/n²).
//
// Deprecated: pass functional options (WithEps, WithWorkers, ...) to
// Build instead; an assembled Options value is applied with WithOptions.
type Options = core.Options

// BuildStats reports preprocessing work (walk pairs drawn, local-update
// pushes, entries kept and dropped).
type BuildStats = core.BuildStats

// IndexStats summarizes a built index (entry counts, memory footprint).
type IndexStats = core.IndexStats

// NewGraphBuilder returns a builder for a graph with n nodes.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// FromEdges builds a graph with n nodes from an edge list, removing
// duplicate edges.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// LoadEdgeList parses a whitespace-separated "src dst" edge list (SNAP
// format; '#' and '%' comments). Node labels are remapped to dense IDs in
// order of first appearance; the returned slice maps dense IDs back to
// the original labels. Set undirected to insert both directions per line.
func LoadEdgeList(r io.Reader, undirected bool) (*Graph, []int64, error) {
	return graph.ReadEdgeList(r, &graph.LoadOptions{Undirected: undirected})
}

// LoadEdgeListFile is LoadEdgeList over a file path.
func LoadEdgeListFile(path string, undirected bool) (*Graph, []int64, error) {
	return graph.LoadEdgeListFile(path, &graph.LoadOptions{Undirected: undirected})
}

// Index answers SimRank queries over a fixed graph with the ε additive
// error guarantee of the paper's Theorem 1. It is immutable and safe for
// concurrent use; per-goroutine query scratch is pooled internally. Index
// implements Querier.
type Index struct {
	x    *core.Index
	pool *core.ScratchPool
	n    int
}

func wrap(x *core.Index) *Index {
	return &Index{x: x, pool: x.NewScratchPool(), n: x.Graph().NumNodes()}
}

// Build constructs a SLING index over g; no options means the paper's
// defaults. Building costs O(m/ε + n·log(n/δ)/ε²) time and the index
// takes O(n/ε) space.
func Build(g *Graph, opts ...BuildOption) (*Index, error) {
	x, err := core.Build(g, resolveBuild(opts))
	if err != nil {
		return nil, err
	}
	return wrap(x), nil
}

// BuildWithStats is Build plus preprocessing statistics.
func BuildWithStats(g *Graph, opts ...BuildOption) (*Index, BuildStats, error) {
	x, st, err := core.BuildWithStats(g, resolveBuild(opts))
	if err != nil {
		return nil, st, err
	}
	return wrap(x), st, nil
}

// BuildOutOfCore constructs the same index while keeping the hitting-
// probability entries on disk (in spillDir) until final assembly, holding
// at most memBudget bytes of them in memory (Section 5.4 of the paper).
func BuildOutOfCore(g *Graph, spillDir string, memBudget int64, opts ...BuildOption) (*Index, error) {
	x, err := core.BuildOutOfCore(g, resolveBuild(opts),
		core.OutOfCoreOptions{Dir: spillDir, MemBudget: memBudget})
	if err != nil {
		return nil, err
	}
	return wrap(x), nil
}

// SimRank returns s̃(u, v) with at most Meta().Eps additive error.
func (ix *Index) SimRank(ctx context.Context, u, v NodeID) (float64, error) {
	if err := core.CtxErr(ctx); err != nil {
		return 0, err
	}
	if err := checkNode(ix.n, u); err != nil {
		return 0, err
	}
	if err := checkNode(ix.n, v); err != nil {
		return 0, err
	}
	return ix.pool.SimRank(u, v), nil
}

// SingleSource returns s̃(u, v) for every node v (Algorithm 6 of the
// paper), writing into out when it has capacity NumNodes.
func (ix *Index) SingleSource(ctx context.Context, u NodeID, out []float64) ([]float64, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := checkNode(ix.n, u); err != nil {
		return nil, err
	}
	return ix.pool.SingleSource(u, out), nil
}

// SingleSourceBatch answers one single-source query per source in us,
// fanning the sources across WithWorkers goroutines with per-worker
// scratch. Row i equals SingleSource(us[i], nil) exactly, at any worker
// count. Cancellation is observed between sources: a cancelled ctx stops
// the fan-out and returns ctx.Err().
func (ix *Index) SingleSourceBatch(ctx context.Context, us []NodeID) ([][]float64, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := checkNodes(ix.n, us); err != nil {
		return nil, err
	}
	return ix.x.SingleSourceBatch(ctx, us, 0)
}

// Scored is a node with a SimRank score, as returned by TopK and
// SourceTop.
type Scored = core.TopEntry

// TopK returns the k nodes most similar to u (excluding u itself) in
// descending score order, breaking ties by node ID. Selection is a
// size-k min-heap over one single-source evaluation — O(n log k), not a
// full sort — and every buffer beyond the returned slice is pooled.
// k <= 0 yields an empty result; k > NumNodes behaves like k = NumNodes.
func (ix *Index) TopK(ctx context.Context, u NodeID, k int) ([]Scored, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := checkNode(ix.n, u); err != nil {
		return nil, err
	}
	return ix.pool.TopK(u, k), nil
}

// SourceTop returns the limit highest-scoring nodes for source u (u
// itself included, typically in first place with s(u,u)=1) in descending
// score order, breaking ties by node ID.
func (ix *Index) SourceTop(ctx context.Context, u NodeID, limit int) ([]Scored, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := checkNode(ix.n, u); err != nil {
		return nil, err
	}
	return ix.pool.SourceTop(u, limit), nil
}

// Meta describes the index as a Querier backend.
func (ix *Index) Meta() QuerierMeta {
	return QuerierMeta{
		Name:  "memory",
		Nodes: ix.n,
		C:     ix.x.C(),
		Eps:   ix.x.ErrorBound(),
		Bytes: ix.x.Bytes() + ix.x.Graph().Bytes(),
	}
}

// Close implements Querier; the in-memory index holds no external
// resources, so it is a no-op.
func (ix *Index) Close() error { return nil }

// Graph returns the graph the index was built over.
func (ix *Index) Graph() *Graph { return ix.x.Graph() }

// ErrorBound returns the worst-case additive error guaranteed per score
// (Theorem 1 of the paper, for the resolved parameters).
func (ix *Index) ErrorBound() float64 { return ix.x.ErrorBound() }

// C returns the decay factor the index was built with.
func (ix *Index) C() float64 { return ix.x.C() }

// Bytes returns the in-memory footprint of the index (excluding the
// graph).
func (ix *Index) Bytes() int64 { return ix.x.Bytes() }

// Stats summarizes the index.
func (ix *Index) Stats() IndexStats { return ix.x.Stats() }

// WriteTo serializes the index (io.WriterTo).
func (ix *Index) WriteTo(w io.Writer) (int64, error) { return ix.x.WriteTo(w) }

// Save writes the index to path.
func (ix *Index) Save(path string) error { return ix.x.SaveFile(path) }

// Open reads an index previously saved with Save, binding it to g (the
// graph it was built over).
func Open(path string, g *Graph) (*Index, error) {
	x, err := core.LoadFile(path, g)
	if err != nil {
		return nil, err
	}
	return wrap(x), nil
}

// ReadIndex deserializes an index from r, binding it to g.
func ReadIndex(r io.Reader, g *Graph) (*Index, error) {
	x, err := core.ReadIndex(r, g)
	if err != nil {
		return nil, err
	}
	return wrap(x), nil
}

// DiskIndex answers queries against an index file whose HP entries stay
// on disk; only O(n) metadata is memory-resident and a single-pair query
// costs two positioned reads (Section 5.4 of the paper). It is safe for
// arbitrary concurrent use: positioned reads are goroutine-safe, query
// scratch is pooled internally, and an optional sharded LRU entry cache
// (DiskOptions.CacheBytes) lets hot nodes skip I/O entirely. DiskIndex
// implements Querier.
type DiskIndex struct {
	d       *core.DiskIndex
	pool    *core.DiskScratchPool
	n       int
	workers int
}

// DiskOptions tunes disk-resident serving beyond the defaults.
type DiskOptions struct {
	// CacheBytes bounds the in-memory entry cache (decoded H(v) lists for
	// recently-read nodes). 0 disables caching; small positive budgets
	// are rounded up to a ~64 KiB floor rather than silently disabling.
	// Ignored in mapped mode, where the OS page cache is the only cache.
	CacheBytes int64
	// Workers bounds SingleSourceBatch fan-out. Default GOMAXPROCS.
	Workers int
	// Mmap memory-maps the index file and serves the entries regions as
	// zero-copy typed views: fetch is pointer arithmetic with zero
	// per-query allocations and the OS page cache is the only cache. On
	// platforms or byte orders where the reinterpretation is invalid
	// (no mmap, big-endian) opening silently falls back to the
	// positioned-read path; Mapped reports which mode serves.
	Mmap bool
}

// MmapSupported reports whether DiskOptions.Mmap can serve on this
// platform (mmap available and little-endian byte order). When false,
// Mmap requests fall back to positioned reads.
func MmapSupported() bool { return core.MmapSupported() }

// DiskCacheStats reports entry-cache hit/miss/occupancy counters.
type DiskCacheStats = core.CacheStats

// OpenDisk opens path for disk-resident querying with default options
// (no entry cache, GOMAXPROCS batch workers).
func OpenDisk(path string, g *Graph) (*DiskIndex, error) {
	return OpenDiskWithOptions(path, g, nil)
}

// OpenDiskWithOptions is OpenDisk with explicit tuning; a nil or zero
// options value takes the defaults.
func OpenDiskWithOptions(path string, g *Graph, o *DiskOptions) (*DiskIndex, error) {
	var d *core.DiskIndex
	var err error
	if o != nil && o.Mmap {
		d, err = core.OpenDiskIndexMmap(path, g)
		if errors.Is(err, core.ErrMmapUnsupported) {
			// Explicit platform fallback: the file is fine, only the
			// zero-copy reinterpretation is unavailable here.
			d, err = core.OpenDiskIndex(path, g)
		}
	} else {
		d, err = core.OpenDiskIndex(path, g)
	}
	if err != nil {
		return nil, err
	}
	di := &DiskIndex{d: d, pool: d.NewScratchPool(), n: g.NumNodes(), workers: runtime.GOMAXPROCS(0)}
	if o != nil {
		if o.CacheBytes > 0 {
			d.EnableCache(o.CacheBytes)
		}
		if o.Workers > 0 {
			di.workers = o.Workers
		}
	}
	return di, nil
}

// Mapped reports whether the index serves from a zero-copy memory
// mapping (DiskOptions.Mmap honored) rather than positioned reads.
func (di *DiskIndex) Mapped() bool { return di.d.Mapped() }

// SimRank returns s̃(u, v) reading H(u) and H(v) from disk (or the entry
// cache), with pooled scratch; safe for concurrent use.
func (di *DiskIndex) SimRank(ctx context.Context, u, v NodeID) (float64, error) {
	if err := core.CtxErr(ctx); err != nil {
		return 0, err
	}
	if err := checkNode(di.n, u); err != nil {
		return 0, err
	}
	if err := checkNode(di.n, v); err != nil {
		return 0, err
	}
	return di.pool.SimRank(u, v)
}

// SingleSource returns s̃(u, v) for every node v, reading H(u) from disk
// with one positioned read and propagating in memory (Algorithm 6).
func (di *DiskIndex) SingleSource(ctx context.Context, u NodeID, out []float64) ([]float64, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := checkNode(di.n, u); err != nil {
		return nil, err
	}
	return di.pool.SingleSource(u, out)
}

// SingleSourceBatch answers one single-source query per source in us,
// fanned across DiskOptions.Workers goroutines with per-worker scratch.
// Row i equals SingleSource(us[i], nil) exactly, at any worker count.
// Cancellation is observed between sources.
func (di *DiskIndex) SingleSourceBatch(ctx context.Context, us []NodeID) ([][]float64, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := checkNodes(di.n, us); err != nil {
		return nil, err
	}
	return di.d.SingleSourceBatch(ctx, us, di.workers)
}

// TopK returns the k nodes most similar to u (excluding u itself) in
// descending score order, selected with the same size-k heap as the
// in-memory index over one disk single-source evaluation.
func (di *DiskIndex) TopK(ctx context.Context, u NodeID, k int) ([]Scored, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := checkNode(di.n, u); err != nil {
		return nil, err
	}
	return di.pool.TopK(u, k)
}

// SourceTop returns the limit highest-scoring nodes for source u (u
// itself included, typically first with s(u,u)=1) in descending score
// order, breaking ties by node ID.
func (di *DiskIndex) SourceTop(ctx context.Context, u NodeID, limit int) ([]Scored, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := checkNode(di.n, u); err != nil {
		return nil, err
	}
	return di.pool.SourceTop(u, limit)
}

// Meta describes the disk index as a Querier backend ("disk-mmap" when
// the zero-copy mapped mode serves).
func (di *DiskIndex) Meta() QuerierMeta {
	name := "disk"
	if di.d.Mapped() {
		name = "disk-mmap"
	}
	return QuerierMeta{
		Name:  name,
		Nodes: di.n,
		C:     di.d.Meta().C(),
		Eps:   di.d.Meta().ErrorBound(),
		// Resident metadata plus the graph and the entry-cache budget
		// (MaxBytes, not current occupancy, so catalog admission accounts
		// the cache's worst case up front).
		Bytes: di.d.Meta().Bytes() + di.d.Meta().Graph().Bytes() + di.d.CacheStats().MaxBytes,
	}
}

// Graph returns the graph the index was built over.
func (di *DiskIndex) Graph() *Graph { return di.d.Meta().Graph() }

// ErrorBound returns the worst-case additive error guaranteed per score.
func (di *DiskIndex) ErrorBound() float64 { return di.d.Meta().ErrorBound() }

// C returns the decay factor the index was built with.
func (di *DiskIndex) C() float64 { return di.d.Meta().C() }

// NumEntries returns the number of HP entries resident on disk.
func (di *DiskIndex) NumEntries() int64 { return di.d.NumEntries() }

// Bytes returns the memory-resident footprint (metadata only; the entry
// cache is accounted separately in CacheStats).
func (di *DiskIndex) Bytes() int64 { return di.d.Meta().Bytes() }

// CacheStats reports entry-cache counters (zeros when no cache was
// configured).
func (di *DiskIndex) CacheStats() DiskCacheStats { return di.d.CacheStats() }

// Close releases the underlying file.
func (di *DiskIndex) Close() error { return di.d.Close() }

// EdgeOp is one edge mutation for DynamicIndex.Apply: Add inserts
// From -> To, otherwise the op removes it.
type EdgeOp = dynamic.Op

// EdgeOpResult reports what one EdgeOp did (no-ops and invalid ops fail
// individually, they never fail the batch).
type EdgeOpResult = dynamic.OpResult

// DynamicStats snapshots a DynamicIndex: epoch, staleness frontier,
// rebuild state, and drain counters.
type DynamicStats = dynamic.Stats

// DynamicDurableStats describes the WAL/snapshot backing of a durable
// DynamicIndex (DynamicStats.Durable; Enabled false when memory-only).
type DynamicDurableStats = dynamic.DurableStats

// Durable-state error sentinels, re-exported for callers that dispatch
// on them (restore-or-create flows, operational tooling). Test with
// errors.Is — they arrive wrapped with context.
var (
	// ErrNotDurable: the operation needs DynamicOptions.DurableDir.
	ErrNotDurable = dynamic.ErrNotDurable
	// ErrNoDurableState: RestoreDynamic found no snapshot to restore.
	ErrNoDurableState = dynamic.ErrNoState
	// ErrDurableStateExists: NewDynamic pointed at a non-fresh directory.
	ErrDurableStateExists = dynamic.ErrStateExists
	// ErrDurableCorrupt: recovery refused damage it cannot repair without
	// losing acknowledged updates.
	ErrDurableCorrupt = durable.ErrCorrupt
)

// DynamicOptions tunes the dynamic layer beyond its defaults.
type DynamicOptions struct {
	// RebuildThreshold is the number of applied edge ops that triggers a
	// background rebuild. 0 disables automatic rebuilds.
	RebuildThreshold int
	// NumWalks is the Monte Carlo walk count per affected-node estimate.
	// 0 derives the ε/δ-guaranteed count, which is large; serving
	// deployments usually set an explicit budget.
	NumWalks int
	// Depth overrides the walk truncation / staleness frontier depth.
	// 0 derives the smallest depth whose truncated tail costs ≤ eps/2.
	Depth int
	// Workers bounds SingleSourceBatch fan-out. Default GOMAXPROCS.
	Workers int
	// Seed drives the Monte Carlo coupling. 0 derives one from the build
	// seed.
	Seed uint64
	// DurableDir, when set, backs the index with a write-ahead log and
	// snapshots in that directory: applied batches are journaled before
	// they are acknowledged, rebuild epoch swaps write snapshots, and
	// RestoreDynamic reopens the state after a restart. NewDynamic
	// requires the directory to hold no prior state.
	DurableDir string
	// DurableNoSync skips the per-batch fsync: a crash may silently lose
	// the newest acknowledged batches (recovery truncates them as a torn
	// tail). Snapshots are always synced.
	DurableNoSync bool
	// DurableReadOnly opens the durable state without modifying it — no
	// torn-tail repair, no appends (updates fail). Only meaningful with
	// RestoreDynamic, e.g. to inspect a live instance's directory.
	DurableReadOnly bool
}

// durableOptions maps the facade's durable fields onto the storage
// layer's options, nil when durability is off.
func (do *DynamicOptions) durableOptions() *durable.Options {
	if do == nil || do.DurableDir == "" {
		return nil
	}
	return &durable.Options{Dir: do.DurableDir, NoSync: do.DurableNoSync, ReadOnly: do.DurableReadOnly}
}

// DynamicIndex is an updatable SimRank index (a built static index plus
// an edge-update layer): AddEdge/RemoveEdge mutate the graph while
// queries keep serving, queries touching the affected-node frontier fall
// back to fresh Monte Carlo estimation on the mutated graph, and a
// rebuild (manual or threshold-triggered, in the background) swaps in a
// fresh index as a new epoch with zero query downtime. All scores are
// clamped into [0, 1]. Queries are safe for arbitrary concurrent use and
// never block on updates. DynamicIndex implements Querier.
type DynamicIndex struct {
	d *dynamic.Dynamic
	n int
}

// NewDynamic builds an index over g (construction tuned with the same
// functional options as Build) and wraps it for edge updates. The node
// set is fixed; edges may be added and removed freely afterwards. A nil
// do takes the dynamic-layer defaults.
func NewDynamic(g *Graph, do *DynamicOptions, opts ...BuildOption) (*DynamicIndex, error) {
	d, err := dynamic.New(g, dynamicOptions(do, opts))
	if err != nil {
		return nil, err
	}
	return &DynamicIndex{d: d, n: g.NumNodes()}, nil
}

// RestoreDynamic reopens the durable state in do.DurableDir (required):
// the newest valid snapshot plus the WAL tail reproduce the lost
// instance's exact state, answering bitwise-identically — provided the
// build options and seeds match the ones the state was created with
// (they are not persisted). A directory that never held state returns
// ErrNoDurableState; damage that could hide an acknowledged update
// returns an error wrapping ErrDurableCorrupt instead of restoring
// silently-wrong state.
func RestoreDynamic(do *DynamicOptions, opts ...BuildOption) (*DynamicIndex, error) {
	d, err := dynamic.Restore(dynamicOptions(do, opts))
	if err != nil {
		return nil, err
	}
	dx := &DynamicIndex{d: d}
	dx.n = dx.d.NumNodes()
	return dx, nil
}

func dynamicOptions(do *DynamicOptions, opts []BuildOption) dynamic.Options {
	opt := dynamic.Options{Build: *resolveBuild(opts), Durable: do.durableOptions()}
	if do != nil {
		opt.RebuildThreshold = do.RebuildThreshold
		opt.NumWalks = do.NumWalks
		opt.Depth = do.Depth
		opt.Workers = do.Workers
		opt.Seed = do.Seed
	}
	return opt
}

// AddEdge inserts u -> v, reporting whether the graph changed (false when
// the edge already existed). Node IDs outside the fixed node set error.
func (dx *DynamicIndex) AddEdge(u, v NodeID) (bool, error) { return dx.d.AddEdge(u, v) }

// RemoveEdge deletes u -> v, reporting whether the graph changed (false
// when the edge did not exist).
func (dx *DynamicIndex) RemoveEdge(u, v NodeID) (bool, error) { return dx.d.RemoveEdge(u, v) }

// Apply executes a batch of edge ops under one graph snapshot and one
// frontier recomputation. Invalid ops fail individually in the results;
// the returned error is non-nil only after Close.
func (dx *DynamicIndex) Apply(ops []EdgeOp) ([]EdgeOpResult, int, error) { return dx.d.Apply(ops) }

// Rebuild synchronously rebuilds the index over the current graph and
// swaps it in as a new epoch, returning the epoch this call produced (not
// whatever epoch serves afterwards — concurrent rebuilds each learn their
// own). With no concurrent updates the result is byte-identical to a
// fresh Build of the mutated graph.
func (dx *DynamicIndex) Rebuild() (uint64, error) { return dx.d.Rebuild() }

// Snapshot captures the current state as a durable snapshot, returning
// the WAL position it covers. It errors with ErrNotDurable unless the
// index was created with DynamicOptions.DurableDir.
func (dx *DynamicIndex) Snapshot() (uint64, error) { return dx.d.Snapshot() }

// TriggerRebuild starts a background rebuild unless one is running; it
// reports whether one was started.
func (dx *DynamicIndex) TriggerRebuild() bool { return dx.d.TriggerRebuild() }

// Close stops updates and rebuilds (an in-flight background rebuild is
// discarded). Queries remain valid against the last epoch.
func (dx *DynamicIndex) Close() error {
	dx.d.Close()
	return nil
}

// SimRank returns s̃(u, v) in [0, 1]: static-index fast path for
// unaffected nodes, fresh estimation on the mutated graph otherwise.
func (dx *DynamicIndex) SimRank(ctx context.Context, u, v NodeID) (float64, error) {
	if err := core.CtxErr(ctx); err != nil {
		return 0, err
	}
	if err := checkNode(dx.n, u); err != nil {
		return 0, err
	}
	if err := checkNode(dx.n, v); err != nil {
		return 0, err
	}
	return dx.d.SimRank(u, v), nil
}

// SingleSource returns s̃(u, v) for every node v, writing into out when
// it has capacity.
func (dx *DynamicIndex) SingleSource(ctx context.Context, u NodeID, out []float64) ([]float64, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := checkNode(dx.n, u); err != nil {
		return nil, err
	}
	return dx.d.SingleSource(u, out), nil
}

// SingleSourceBatch answers one single-source query per source, fanned
// across DynamicOptions.Workers goroutines. Cancellation is observed
// between sources.
func (dx *DynamicIndex) SingleSourceBatch(ctx context.Context, us []NodeID) ([][]float64, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := checkNodes(dx.n, us); err != nil {
		return nil, err
	}
	return dx.d.SingleSourceBatch(ctx, us, 0)
}

// TopK returns the k nodes most similar to u (excluding u) in descending
// score order, ties by ascending node ID.
func (dx *DynamicIndex) TopK(ctx context.Context, u NodeID, k int) ([]Scored, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := checkNode(dx.n, u); err != nil {
		return nil, err
	}
	return dx.d.TopK(u, k), nil
}

// SourceTop returns the limit highest-scoring nodes for source u (u
// itself included) in descending score order.
func (dx *DynamicIndex) SourceTop(ctx context.Context, u NodeID, limit int) ([]Scored, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := checkNode(dx.n, u); err != nil {
		return nil, err
	}
	return dx.d.SourceTop(u, limit), nil
}

// Meta describes the dynamic index as a Querier backend. Epoch advances
// with every rebuild swap.
func (dx *DynamicIndex) Meta() QuerierMeta {
	st := dx.d.Stats()
	return QuerierMeta{
		Name:    "dynamic",
		Nodes:   dx.n,
		C:       dx.d.C(),
		Eps:     dx.d.ErrorBound(),
		Clamped: true,
		Epoch:   dx.d.Epoch(),
		Bytes:   st.IndexBytes + dx.d.Graph().Bytes(),
	}
}

// AffectedNodes returns the staleness frontier as ascending node IDs.
func (dx *DynamicIndex) AffectedNodes() []NodeID { return dx.d.AffectedNodes() }

// Graph returns the current (mutated) graph snapshot.
func (dx *DynamicIndex) Graph() *Graph { return dx.d.Graph() }

// Epoch returns the serving index's epoch (1 after NewDynamic,
// incremented by every rebuild swap).
func (dx *DynamicIndex) Epoch() uint64 { return dx.d.Epoch() }

// NumNodes returns the fixed node count.
func (dx *DynamicIndex) NumNodes() int { return dx.d.NumNodes() }

// C returns the decay factor.
func (dx *DynamicIndex) C() float64 { return dx.d.C() }

// ErrorBound returns the serving index's per-score error bound.
func (dx *DynamicIndex) ErrorBound() float64 { return dx.d.ErrorBound() }

// Stats reports epoch, staleness, and rebuild counters.
func (dx *DynamicIndex) Stats() DynamicStats { return dx.d.Stats() }

// ExactAllPairs computes ground-truth SimRank scores with the power
// method at additive accuracy eps. It needs O(n²) memory and is meant for
// validation on small graphs, mirroring the paper's use of 50 power
// iterations as ground truth.
func ExactAllPairs(g *Graph, c, eps float64) (*power.Scores, error) {
	return power.AllPairs(g, c, power.IterationsFor(eps, c))
}

// PairScore is an unordered node pair with its SimRank score, as returned
// by SimilarPairs.
type PairScore struct {
	U, V  NodeID
	Score float64
}

// SimilarPairs returns every unordered pair {u, v} whose indexed score is
// at least tau (a SimRank similarity join), sorted by descending score.
// Results are exact with respect to the index, hence within ErrorBound of
// true SimRank. Intended for moderate thresholds (tau ≥ ~0.1); it panics
// unless tau is in (0, 1].
func (ix *Index) SimilarPairs(tau float64) []PairScore {
	pairs := ix.x.SimilarPairs(tau)
	out := make([]PairScore, len(pairs))
	for i, p := range pairs {
		out[i] = PairScore{U: p.U, V: p.V, Score: p.Score}
	}
	return out
}
