module sling

go 1.24
