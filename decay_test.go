package sling

// The paper fixes c = 0.6 for its experiments but the algorithms are
// generic in the decay factor; Jeh & Widom's original work used c = 0.8.
// These tests sweep c across every method to verify nothing silently
// assumes the default.

import (
	"math"
	"testing"

	"sling/internal/core"
	"sling/internal/graph"
	"sling/internal/linearize"
	"sling/internal/mc"
	"sling/internal/power"
)

func TestDecayFactorSweepSLING(t *testing.T) {
	g := testGraph(35, 180, 301)
	for _, c := range []float64{0.3, 0.6, 0.8} {
		truth, err := power.AllPairs(g, c, power.IterationsFor(1e-9, c))
		if err != nil {
			t.Fatal(err)
		}
		x, err := core.Build(g, &core.Options{C: c, Eps: 0.06, Seed: 303})
		if err != nil {
			t.Fatal(err)
		}
		s := x.NewScratch()
		for i := 0; i < 35; i++ {
			for j := 0; j < 35; j++ {
				got := x.SimRank(graph.NodeID(i), graph.NodeID(j), s)
				if d := math.Abs(got - truth.At(i, j)); d > x.ErrorBound() {
					t.Fatalf("c=%v: error %v at (%d,%d) exceeds %v", c, d, i, j, x.ErrorBound())
				}
			}
		}
	}
}

func TestDecayFactorSweepSingleSource(t *testing.T) {
	g := testGraph(30, 150, 305)
	for _, c := range []float64{0.4, 0.8} {
		truth, err := power.AllPairs(g, c, power.IterationsFor(1e-9, c))
		if err != nil {
			t.Fatal(err)
		}
		x, err := core.Build(g, &core.Options{C: c, Eps: 0.08, Seed: 307})
		if err != nil {
			t.Fatal(err)
		}
		ss := x.NewSourceScratch()
		for u := 0; u < 30; u += 5 {
			scores := x.SingleSource(graph.NodeID(u), ss, nil)
			for v := 0; v < 30; v++ {
				if d := math.Abs(scores[v] - truth.At(u, v)); d > x.ErrorBound() {
					t.Fatalf("c=%v: single-source error %v at (%d,%d)", c, d, u, v)
				}
			}
		}
	}
}

func TestDecayFactorSweepBaselines(t *testing.T) {
	g := testGraph(30, 150, 309)
	const c = 0.8
	truth, err := power.AllPairs(g, c, power.IterationsFor(1e-9, c))
	if err != nil {
		t.Fatal(err)
	}
	mcIx, err := mc.Build(g, &mc.Options{C: c, NumWalks: 30000, Truncation: 20, Seed: 311})
	if err != nil {
		t.Fatal(err)
	}
	linIx, err := linearize.Build(g, &linearize.Options{C: c, T: 25, R: 600, L: 6, Seed: 313})
	if err != nil {
		t.Fatal(err)
	}
	ls := linIx.NewScratch()
	var worstMC, worstLin float64
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			want := truth.At(i, j)
			if d := math.Abs(mcIx.SimRank(graph.NodeID(i), graph.NodeID(j)) - want); d > worstMC {
				worstMC = d
			}
			if d := math.Abs(linIx.SimRank(graph.NodeID(i), graph.NodeID(j), ls) - want); d > worstLin {
				worstLin = d
			}
		}
	}
	if worstMC > 0.04 {
		t.Fatalf("MC at c=0.8: worst error %v", worstMC)
	}
	if worstLin > 0.1 {
		t.Fatalf("Linearize at c=0.8: worst error %v", worstLin)
	}
}

// Higher decay factors spread similarity mass further: on a graph with a
// shared-parent pair, s(u,v) = c exactly, so the sweep checks the
// dependence is linear in c.
func TestDecayScalingSharedParent(t *testing.T) {
	b := NewGraphBuilder(3)
	b.AddEdge(2, 0)
	b.AddEdge(2, 1)
	g := b.Build()
	for _, c := range []float64{0.2, 0.5, 0.9} {
		x, err := core.Build(g, &core.Options{C: c, Eps: 0.05, Seed: 315})
		if err != nil {
			t.Fatal(err)
		}
		got := x.SimRank(0, 1, nil)
		if math.Abs(got-c) > x.ErrorBound() {
			t.Fatalf("c=%v: s(0,1) = %v", c, got)
		}
	}
}
