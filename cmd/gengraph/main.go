// Command gengraph emits synthetic graphs as edge lists: either one of
// the named dataset stand-ins from the workload registry, or a custom
// preferential-attachment / uniform graph.
//
//	gengraph -dataset GrQc [-scale 0.5] > grqc.txt
//	gengraph -kind pa -n 10000 -m 80000 [-undirected] [-seed 7] > custom.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"sling/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "", "named stand-in from Table 3 (e.g. GrQc); overrides -kind/-n/-m")
	scale := flag.Float64("scale", 1, "scale factor for -dataset")
	kind := flag.String("kind", "pa", "generator for custom graphs: pa (preferential attachment) or uniform")
	n := flag.Int("n", 1000, "nodes (custom)")
	m := flag.Int("m", 5000, "edges (custom)")
	undirected := flag.Bool("undirected", false, "emit both directions (custom)")
	seed := flag.Uint64("seed", 1, "random seed (custom)")
	list := flag.Bool("list", false, "list the named datasets and exit")
	flag.Parse()

	if *list {
		for _, s := range workload.Datasets() {
			fmt.Println(s)
		}
		return
	}

	var spec workload.Spec
	if *dataset != "" {
		s, ok := workload.ByName(*dataset)
		if !ok {
			fmt.Fprintf(os.Stderr, "gengraph: unknown dataset %q (try -list)\n", *dataset)
			os.Exit(1)
		}
		spec = s
	} else {
		var k workload.Kind
		switch *kind {
		case "pa":
			k = workload.PrefAttach
		case "uniform":
			k = workload.Uniform
		default:
			fmt.Fprintf(os.Stderr, "gengraph: unknown kind %q\n", *kind)
			os.Exit(1)
		}
		spec = workload.Spec{
			Name:     "custom",
			Directed: !*undirected,
			Kind:     k,
			Nodes:    *n,
			Edges:    *m,
			Seed:     *seed,
		}
		*scale = 1
	}
	g := spec.Generate(*scale)
	fmt.Fprintf(os.Stderr, "gengraph: %s -> n=%d m=%d\n", spec.Name, g.NumNodes(), g.NumEdges())
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := g.WriteEdgeList(w); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}
