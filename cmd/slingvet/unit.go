package main

// The cmd/go vet-tool protocol ("unitchecker"): `go vet -vettool=...`
// does not hand the tool package patterns — it plans the build itself
// and invokes the tool once per package with a JSON config file
// describing the completed unit: source files, the import map, and the
// export-data file for every dependency. The tool type-checks from
// that plan, reports findings on stderr, writes an (empty, for this
// suite — no facts) .vetx output so cmd/go can cache the run, and
// exits 2 when it found anything, 0 when clean. This file implements
// exactly that contract, the way x/tools/go/analysis/unitchecker does.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"sling/internal/analysis"
	"sling/internal/analysis/framework"
)

// vetConfig mirrors the JSON cmd/go writes for vet tools (the fields
// this tool consumes; unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slingvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "slingvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The suite carries no facts, but cmd/go requires the output file
	// to exist to cache the unit.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "slingvet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slingvet:", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "slingvet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &framework.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	diags, err := framework.RunAnalyzers(pkg, analysis.Suite())
	if err != nil {
		fmt.Fprintln(os.Stderr, "slingvet:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
