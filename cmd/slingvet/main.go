// Command slingvet runs the repository's custom analyzer suite
// (internal/analysis): the static checks that mechanically enforce
// SLING's determinism, cancellation, pooling, and unsafe-confinement
// invariants.
//
// Standalone mode (the usual way, what CI runs):
//
//	slingvet ./...              # analyze packages and their tests
//	slingvet -tests=false ./... # production files only
//	slingvet -only seededrand,floateq ./...
//	slingvet -list
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
//
// Vet-tool mode: when invoked with a single *.cfg argument (or -V=full),
// slingvet speaks the cmd/go unitchecker protocol, so it also runs as
//
//	go vet -vettool=$(which slingvet) ./...
//
// In that mode cmd/go owns package-graph traversal and hands slingvet
// one pre-planned unit (file list, import map, export data) per
// package; findings go to stderr and the exit status is 2, matching
// x/tools' unitchecker.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sling/internal/analysis"
	"sling/internal/analysis/framework"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Vet-tool handshake: cmd/go keys its build cache on the tool's
	// content hash, so -V=full must report a buildID derived from the
	// executable itself (the same scheme x/tools' unitchecker uses).
	if len(args) > 0 && (args[0] == "-V=full" || args[0] == "-V") {
		name := filepath.Base(os.Args[0])
		var id string
		if data, err := os.ReadFile(os.Args[0]); err == nil {
			h := sha256.Sum256(data)
			id = fmt.Sprintf("%x", h)
		}
		fmt.Printf("%s version devel buildID=%s\n", name, id)
		return 0
	}
	// cmd/go also probes `-flags` for the tool's flag schema (a JSON
	// array); the suite takes no per-unit flags.
	if len(args) > 0 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runUnit(args[0])
	}

	fs := flag.NewFlagSet("slingvet", flag.ExitOnError)
	tests := fs.Bool("tests", true, "also analyze test files (in-package and external test packages)")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: slingvet [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.Suite() {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, firstLine(a.Doc))
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slingvet:", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := framework.Load(framework.LoadConfig{Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slingvet:", err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		diags, err := framework.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slingvet:", err)
			return 2
		}
		for _, d := range diags {
			fmt.Printf("%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "slingvet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// selectAnalyzers resolves -only against the suite.
func selectAnalyzers(only string) ([]*framework.Analyzer, error) {
	suite := analysis.Suite()
	if only == "" {
		return suite, nil
	}
	byName := map[string]*framework.Analyzer{}
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*framework.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
