// Command slingtool builds, inspects and queries SLING indexes over
// edge-list graphs.
//
// Subcommands:
//
//	slingtool build -graph g.txt [-undirected] [-eps 0.025] [-out idx.sling] [-workers N] [-ooc dir -mem MiB]
//	slingtool stats -graph g.txt [-undirected] -index idx.sling
//	slingtool query -graph g.txt [-undirected] -index idx.sling [-disk] u v [u v ...]
//	slingtool source -graph g.txt [-undirected] -index idx.sling -node u [-top k]
//	slingtool conformance [-families a,b] [-configs c:eps,...] [-n N] [-seed S] [-short] [-only backend-re] [-out BENCH_conformance.json]
//	slingtool shard split -graph g.txt -shards N -out DIR
//	slingtool durable inspect|verify DIR
//
// Node arguments use the original labels from the edge list.
//
// `slingtool durable` CRC-verifies a dynamic graph's durable state
// directory (-durable in slingserver, durable_dir in catalog manifests)
// without opening or modifying it: every snapshot and WAL segment is
// checksummed and the chain recovery would reconstruct is reported.
// `inspect` prints the segment chain and snapshot set (-json for the
// machine-readable report); `verify` prints a one-line summary. Both
// exit non-zero when the directory holds damage recovery would refuse —
// a torn final record is recoverable (recovery truncates it) and is
// reported but does not fail verification.
//
// `slingtool conformance` runs the full differential-conformance matrix
// (internal/conformance): every backend — in-memory, disk, out-of-core,
// dynamic stale and rebuilt, and the three HTTP server modes — over every
// graph family × (c, ε) configuration, checked against exact power-method
// SimRank. It prints the full JSON report to stdout, writes the
// per-family benchmark aggregate to -out, and exits non-zero when any
// cell fails.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"sling"
	"sling/internal/conformance"
	"sling/internal/humanize"
	"sling/internal/shard"
	"sling/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = cmdBuild(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "source":
		err = cmdSource(os.Args[2:])
	case "conformance":
		err = cmdConformance(os.Args[2:])
	case "shard":
		err = cmdShard(os.Args[2:])
	case "durable":
		err = cmdDurable(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "slingtool: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "slingtool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  slingtool build  -graph g.txt [-undirected] [-eps 0.025] [-out idx.sling] [-workers N] [-enhance] [-ooc DIR -mem MiB]
  slingtool stats  -graph g.txt [-undirected] -index idx.sling
  slingtool query  -graph g.txt [-undirected] -index idx.sling [-disk] u v [u v ...]
  slingtool source -graph g.txt [-undirected] -index idx.sling -node u [-top k]
  slingtool conformance [-families a,b] [-configs c:eps,...] [-n N] [-seed S] [-short] [-only backend-re] [-out bench.json]
  slingtool shard split -graph g.txt [-undirected] -shards N -out DIR [-index idx.sling | -eps E -c C -workers N -enhance]
  slingtool durable inspect [-json] DIR
  slingtool durable verify DIR`)
}

// loadGraph parses the shared -graph/-undirected flags' target.
func loadGraph(path string, undirected bool) (*sling.Graph, []int64, map[int64]sling.NodeID, error) {
	if path == "" {
		return nil, nil, nil, fmt.Errorf("missing -graph")
	}
	g, labels, err := sling.LoadEdgeListFile(path, undirected)
	if err != nil {
		return nil, nil, nil, err
	}
	byLabel := make(map[int64]sling.NodeID, len(labels))
	for id, label := range labels {
		byLabel[label] = sling.NodeID(id)
	}
	return g, labels, byLabel, nil
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	graphPath := fs.String("graph", "", "edge list file")
	undirected := fs.Bool("undirected", false, "treat edges as undirected")
	eps := fs.Float64("eps", 0.025, "worst-case additive error")
	c := fs.Float64("c", 0.6, "decay factor")
	out := fs.String("out", "index.sling", "output index path")
	workers := fs.Int("workers", 1, "build parallelism")
	seed := fs.Uint64("seed", 1, "random seed")
	enhance := fs.Bool("enhance", false, "enable the Section 5.3 accuracy enhancement")
	oocDir := fs.String("ooc", "", "spill directory: build out-of-core (Section 5.4)")
	memMiB := fs.Int64("mem", 64, "out-of-core memory budget in MiB")
	fs.Parse(args)

	g, _, _, err := loadGraph(*graphPath, *undirected)
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d\n", g.NumNodes(), g.NumEdges())
	opts := []sling.BuildOption{
		sling.WithEps(*eps), sling.WithC(*c), sling.WithWorkers(*workers),
		sling.WithSeed(*seed), sling.WithEnhance(*enhance),
	}
	start := time.Now()
	var ix *sling.Index
	if *oocDir != "" {
		ix, err = sling.BuildOutOfCore(g, *oocDir, *memMiB<<20, opts...)
	} else {
		ix, err = sling.Build(g, opts...)
	}
	if err != nil {
		return err
	}
	fmt.Printf("built in %v: %d HP entries, %s in memory, guaranteed error <= %.4g\n",
		time.Since(start).Round(time.Millisecond), ix.Stats().Entries, humanize.Bytes(ix.Bytes()), ix.ErrorBound())
	if err := ix.Save(*out); err != nil {
		return err
	}
	fmt.Printf("saved to %s\n", *out)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	graphPath := fs.String("graph", "", "edge list file")
	undirected := fs.Bool("undirected", false, "treat edges as undirected")
	indexPath := fs.String("index", "", "index file")
	fs.Parse(args)

	g, _, _, err := loadGraph(*graphPath, *undirected)
	if err != nil {
		return err
	}
	ix, err := sling.Open(*indexPath, g)
	if err != nil {
		return err
	}
	st := ix.Stats()
	fmt.Printf("nodes:            %d\n", st.Nodes)
	fmt.Printf("HP entries:       %d (avg %.1f/node, max %d, theoretical cap %.0f)\n",
		st.Entries, st.AvgEntries, st.MaxEntries, st.TheoreticalCap)
	fmt.Printf("deepest step:     %d\n", st.MaxStep)
	fmt.Printf("space-reduced:    %d nodes\n", st.ReducedNodes)
	fmt.Printf("marked entries:   %d\n", st.MarkedEntries)
	fmt.Printf("memory:           %s (graph adds %s)\n", humanize.Bytes(st.Bytes), humanize.Bytes(g.Bytes()))
	fmt.Printf("error bound:      %.4g\n", ix.ErrorBound())
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	graphPath := fs.String("graph", "", "edge list file")
	undirected := fs.Bool("undirected", false, "treat edges as undirected")
	indexPath := fs.String("index", "", "index file")
	disk := fs.Bool("disk", false, "query the index from disk (constant memory)")
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) == 0 || len(rest)%2 != 0 {
		return fmt.Errorf("need an even number of node arguments (pairs)")
	}
	g, _, byLabel, err := loadGraph(*graphPath, *undirected)
	if err != nil {
		return err
	}
	resolve := func(s string) (sling.NodeID, error) {
		label, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad node label %q", s)
		}
		id, ok := byLabel[label]
		if !ok {
			return 0, fmt.Errorf("%w: node %d not in graph", sling.ErrNodeRange, label)
		}
		return id, nil
	}
	var pairs [][2]sling.NodeID
	for i := 0; i < len(rest); i += 2 {
		u, err := resolve(rest[i])
		if err != nil {
			return err
		}
		v, err := resolve(rest[i+1])
		if err != nil {
			return err
		}
		pairs = append(pairs, [2]sling.NodeID{u, v})
	}
	// Memory and disk share one query path: both facade types implement
	// sling.Querier, so the loop below serves any backend.
	var q sling.Querier
	if *disk {
		q, err = sling.OpenDisk(*indexPath, g)
	} else {
		q, err = sling.Open(*indexPath, g)
	}
	if err != nil {
		return err
	}
	defer q.Close()
	ctx := context.Background()
	for i, p := range pairs {
		score, err := q.SimRank(ctx, p[0], p[1])
		if err != nil {
			return err
		}
		fmt.Printf("s(%s, %s) = %.6f\n", rest[2*i], rest[2*i+1], score)
	}
	return nil
}

// cmdConformance runs the differential conformance matrix: all backends
// × graph families × (c, eps) configs against exact SimRank.
func cmdConformance(args []string) error {
	fs := flag.NewFlagSet("conformance", flag.ExitOnError)
	familiesFlag := fs.String("families", "",
		fmt.Sprintf("comma-separated families (default all: %s)",
			strings.Join(workload.FamilyNames(), ",")))
	configsFlag := fs.String("configs", "", `comma-separated c:eps pairs, e.g. "0.6:0.05,0.8:0.15" (default the standard grid)`)
	n := fs.Int("n", 0, "target nodes per family (default 24)")
	seed := fs.Uint64("seed", 1, "matrix seed (graphs, builds, update mix)")
	short := fs.Bool("short", false, "CI subset: three families, one config")
	noHTTP := fs.Bool("no-http", false, "skip the HTTP server modes")
	noDynamic := fs.Bool("no-dynamic", false, "skip the dynamic backends")
	only := fs.String("only", "", "regexp over backend names: run only matching cells")
	out := fs.String("out", "", "write the per-family benchmark JSON (BENCH_conformance.json) here")
	quiet := fs.Bool("q", false, "suppress per-cell progress on stderr")
	fs.Parse(args)

	o := conformance.Options{N: *n, Seed: *seed, HTTP: !*noHTTP, Dynamic: !*noDynamic, Only: *only}
	if *familiesFlag != "" {
		fams, err := workload.ParseFamilies(strings.Split(*familiesFlag, ","))
		if err != nil {
			return err
		}
		o.Families = fams
	}
	if *configsFlag != "" {
		for _, part := range strings.Split(*configsFlag, ",") {
			c, eps, ok := strings.Cut(part, ":")
			if !ok {
				return fmt.Errorf("bad config %q, want c:eps", part)
			}
			cv, err1 := strconv.ParseFloat(strings.TrimSpace(c), 64)
			ev, err2 := strconv.ParseFloat(strings.TrimSpace(eps), 64)
			if err1 != nil || err2 != nil {
				return fmt.Errorf("bad config %q, want c:eps", part)
			}
			o.Configs = append(o.Configs, conformance.Config{C: cv, Eps: ev})
		}
	}
	if *short {
		if o.Families == nil {
			fams, err := workload.ParseFamilies([]string{"er", "star", "degenerate"})
			if err != nil {
				return err
			}
			o.Families = fams
		}
		if o.Configs == nil {
			o.Configs = []conformance.Config{{C: 0.6, Eps: 0.1}}
		}
	}
	if !*quiet {
		o.Logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	dir, err := os.MkdirTemp("", "sling-conformance-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	o.Dir = dir

	rep, err := conformance.Run(o)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(os.Stdout); err != nil {
		return err
	}
	if *out != "" {
		if err := rep.SaveBench(*out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchmark aggregate written to %s\n", *out)
	}
	filtered := ""
	if rep.Filtered > 0 {
		filtered = fmt.Sprintf(", %d filtered by -only", rep.Filtered)
	}
	fmt.Fprintf(os.Stderr,
		"conformance: %d cells (%d families x %d configs x %d backends%s), worst error %.5f, min eps headroom %.5f, %.1fs\n",
		len(rep.Cells), len(rep.Families), len(rep.Configs), len(rep.Backends), filtered,
		rep.WorstErr, rep.MinHeadroom, rep.ElapsedMS/1000)
	if !rep.AllPass {
		return fmt.Errorf("%d of %d conformance cells failed", rep.Failures, len(rep.Cells))
	}
	return nil
}

// cmdShard handles the shard subcommands; today that is `shard split`,
// which partitions an index into per-shard SLIX files plus the routing
// manifest `slingserver -shards` consumes.
func cmdShard(args []string) error {
	if len(args) < 1 || args[0] != "split" {
		return fmt.Errorf("usage: slingtool shard split -graph g.txt -shards N -out DIR")
	}
	fs := flag.NewFlagSet("shard split", flag.ExitOnError)
	graphPath := fs.String("graph", "", "edge list file")
	undirected := fs.Bool("undirected", false, "treat edges as undirected")
	indexPath := fs.String("index", "", "prebuilt index to split (default: build fresh)")
	eps := fs.Float64("eps", 0.025, "worst-case additive error (fresh build)")
	c := fs.Float64("c", 0.6, "decay factor (fresh build)")
	workers := fs.Int("workers", 1, "build parallelism (fresh build)")
	seed := fs.Uint64("seed", 1, "random seed (fresh build)")
	enhance := fs.Bool("enhance", false, "Section 5.3 accuracy enhancement (fresh build)")
	nshards := fs.Int("shards", 2, "number of shards")
	out := fs.String("out", "shards", "output directory for shard files and manifest.json")
	fs.Parse(args[1:])

	g, _, _, err := loadGraph(*graphPath, *undirected)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o777); err != nil {
		return err
	}
	var ix *sling.Index
	if *indexPath != "" {
		ix, err = sling.Open(*indexPath, g)
	} else {
		ix, err = sling.Build(g,
			sling.WithEps(*eps), sling.WithC(*c), sling.WithWorkers(*workers),
			sling.WithSeed(*seed), sling.WithEnhance(*enhance))
	}
	if err != nil {
		return err
	}
	m, err := shard.Split(ix, *nshards, *out)
	if err != nil {
		return err
	}
	// The manifest records the graph so slingserver -shards can rebind
	// the shard files; an absolute path keeps it valid from any cwd.
	if m.Graph, err = filepath.Abs(*graphPath); err != nil {
		return err
	}
	m.Undirected = *undirected
	manifestPath := filepath.Join(*out, "manifest.json")
	if err := m.Save(manifestPath); err != nil {
		return err
	}
	for _, si := range m.Shards {
		fmt.Printf("shard %d: nodes [%d,%d), %d entries, %s -> %s\n",
			si.ID, si.Lo, si.Hi, si.Entries, humanize.Bytes(si.Bytes), si.Path)
	}
	fmt.Printf("manifest written to %s (%d shards over %d nodes)\n", manifestPath, len(m.Shards), m.Nodes)
	return nil
}

func cmdSource(args []string) error {
	fs := flag.NewFlagSet("source", flag.ExitOnError)
	graphPath := fs.String("graph", "", "edge list file")
	undirected := fs.Bool("undirected", false, "treat edges as undirected")
	indexPath := fs.String("index", "", "index file")
	node := fs.Int64("node", -1, "source node label")
	top := fs.Int("top", 10, "print the k most similar nodes")
	fs.Parse(args)

	g, labels, byLabel, err := loadGraph(*graphPath, *undirected)
	if err != nil {
		return err
	}
	id, ok := byLabel[*node]
	if !ok {
		return fmt.Errorf("%w: node %d not in graph", sling.ErrNodeRange, *node)
	}
	ix, err := sling.Open(*indexPath, g)
	if err != nil {
		return err
	}
	start := time.Now()
	scores, err := ix.SingleSource(context.Background(), id, nil)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	type scored struct {
		v     int
		score float64
	}
	var all []scored
	for v, s := range scores {
		if sling.NodeID(v) != id && s > 0 {
			all = append(all, scored{v, s})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].v < all[j].v
	})
	if *top < len(all) {
		all = all[:*top]
	}
	fmt.Printf("single-source from %d (%v):\n", *node, elapsed.Round(time.Microsecond))
	for _, s := range all {
		fmt.Printf("  %d\t%.6f\n", labels[s.v], s.score)
	}
	return nil
}
