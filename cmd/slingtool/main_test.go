package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sling"
	"sling/internal/rng"
)

// writeTestGraph emits a small random edge list and returns its path.
func writeTestGraph(t *testing.T) string {
	t.Helper()
	r := rng.New(3)
	b := sling.NewGraphBuilder(100)
	for i := 0; i < 500; i++ {
		b.AddEdge(sling.NodeID(r.Intn(100)), sling.NodeID(r.Intn(100)))
	}
	g := b.Build()
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildStatsQuerySourcePipeline(t *testing.T) {
	graphPath := writeTestGraph(t)
	idxPath := filepath.Join(t.TempDir(), "idx.sling")

	if err := cmdBuild([]string{"-graph", graphPath, "-eps", "0.08", "-out", idxPath, "-seed", "5"}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := os.Stat(idxPath); err != nil {
		t.Fatalf("index not written: %v", err)
	}
	if err := cmdStats([]string{"-graph", graphPath, "-index", idxPath}); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if err := cmdQuery([]string{"-graph", graphPath, "-index", idxPath, "3", "7", "10", "10"}); err != nil {
		t.Fatalf("query: %v", err)
	}
	if err := cmdQuery([]string{"-graph", graphPath, "-index", idxPath, "-disk", "3", "7"}); err != nil {
		t.Fatalf("disk query: %v", err)
	}
	if err := cmdSource([]string{"-graph", graphPath, "-index", idxPath, "-node", "3", "-top", "5"}); err != nil {
		t.Fatalf("source: %v", err)
	}
}

func TestBuildOutOfCorePipeline(t *testing.T) {
	graphPath := writeTestGraph(t)
	idxPath := filepath.Join(t.TempDir(), "ooc.sling")
	spill := t.TempDir()
	if err := cmdBuild([]string{"-graph", graphPath, "-eps", "0.1", "-out", idxPath,
		"-ooc", spill, "-mem", "1"}); err != nil {
		t.Fatalf("out-of-core build: %v", err)
	}
	if err := cmdQuery([]string{"-graph", graphPath, "-index", idxPath, "1", "2"}); err != nil {
		t.Fatalf("query after ooc build: %v", err)
	}
}

func TestBuildEnhanced(t *testing.T) {
	graphPath := writeTestGraph(t)
	idxPath := filepath.Join(t.TempDir(), "enh.sling")
	if err := cmdBuild([]string{"-graph", graphPath, "-eps", "0.1", "-out", idxPath, "-enhance"}); err != nil {
		t.Fatalf("enhanced build: %v", err)
	}
	if err := cmdStats([]string{"-graph", graphPath, "-index", idxPath}); err != nil {
		t.Fatalf("stats: %v", err)
	}
}

func TestConformanceCommand(t *testing.T) {
	benchPath := filepath.Join(t.TempDir(), "BENCH_conformance.json")
	// One cheap family/config keeps the CLI path test fast; the matrix
	// itself is exercised by internal/conformance.
	if err := cmdConformance([]string{"-families", "star", "-configs", "0.6:0.1",
		"-q", "-out", benchPath}); err != nil {
		t.Fatalf("conformance: %v", err)
	}
	data, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatalf("bench artifact not written: %v", err)
	}
	var bench struct {
		AllPass  *bool `json:"all_pass"`
		Families []struct {
			Family  string  `json:"family"`
			BuildMS float64 `json:"build_ms"`
		} `json:"families"`
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatalf("bench artifact not JSON: %v", err)
	}
	if bench.AllPass == nil || !*bench.AllPass {
		t.Fatalf("bench artifact reports failure: %s", data)
	}
	if len(bench.Families) != 1 || bench.Families[0].Family != "star" || bench.Families[0].BuildMS <= 0 {
		t.Fatalf("bench families wrong: %s", data)
	}

	if err := cmdConformance([]string{"-families", "nope"}); err == nil {
		t.Fatal("unknown family accepted")
	}
	if err := cmdConformance([]string{"-configs", "bad"}); err == nil {
		t.Fatal("malformed config accepted")
	}
}

func TestErrorsSurface(t *testing.T) {
	graphPath := writeTestGraph(t)
	if err := cmdBuild([]string{"-out", "/dev/null"}); err == nil {
		t.Fatal("missing -graph accepted")
	}
	if err := cmdQuery([]string{"-graph", graphPath, "-index", "/does/not/exist", "1", "2"}); err == nil {
		t.Fatal("missing index accepted")
	}
	idxPath := filepath.Join(t.TempDir(), "x.sling")
	if err := cmdBuild([]string{"-graph", graphPath, "-eps", "0.1", "-out", idxPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-graph", graphPath, "-index", idxPath, "1"}); err == nil {
		t.Fatal("odd node-argument count accepted")
	}
	if err := cmdQuery([]string{"-graph", graphPath, "-index", idxPath, "1", "100000"}); err == nil {
		t.Fatal("unknown node label accepted")
	}
	if err := cmdSource([]string{"-graph", graphPath, "-index", idxPath, "-node", "424242"}); err == nil {
		t.Fatal("unknown source label accepted")
	}
}
