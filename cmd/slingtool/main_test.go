package main

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"sling"
	"sling/internal/rng"
	"sling/internal/shard"
)

// writeTestGraph emits a small random edge list and returns its path.
func writeTestGraph(t *testing.T) string {
	t.Helper()
	r := rng.New(3)
	b := sling.NewGraphBuilder(100)
	for i := 0; i < 500; i++ {
		b.AddEdge(sling.NodeID(r.Intn(100)), sling.NodeID(r.Intn(100)))
	}
	g := b.Build()
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildStatsQuerySourcePipeline(t *testing.T) {
	graphPath := writeTestGraph(t)
	idxPath := filepath.Join(t.TempDir(), "idx.sling")

	if err := cmdBuild([]string{"-graph", graphPath, "-eps", "0.08", "-out", idxPath, "-seed", "5"}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := os.Stat(idxPath); err != nil {
		t.Fatalf("index not written: %v", err)
	}
	if err := cmdStats([]string{"-graph", graphPath, "-index", idxPath}); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if err := cmdQuery([]string{"-graph", graphPath, "-index", idxPath, "3", "7", "10", "10"}); err != nil {
		t.Fatalf("query: %v", err)
	}
	if err := cmdQuery([]string{"-graph", graphPath, "-index", idxPath, "-disk", "3", "7"}); err != nil {
		t.Fatalf("disk query: %v", err)
	}
	if err := cmdSource([]string{"-graph", graphPath, "-index", idxPath, "-node", "3", "-top", "5"}); err != nil {
		t.Fatalf("source: %v", err)
	}
}

func TestBuildOutOfCorePipeline(t *testing.T) {
	graphPath := writeTestGraph(t)
	idxPath := filepath.Join(t.TempDir(), "ooc.sling")
	spill := t.TempDir()
	if err := cmdBuild([]string{"-graph", graphPath, "-eps", "0.1", "-out", idxPath,
		"-ooc", spill, "-mem", "1"}); err != nil {
		t.Fatalf("out-of-core build: %v", err)
	}
	if err := cmdQuery([]string{"-graph", graphPath, "-index", idxPath, "1", "2"}); err != nil {
		t.Fatalf("query after ooc build: %v", err)
	}
}

func TestBuildEnhanced(t *testing.T) {
	graphPath := writeTestGraph(t)
	idxPath := filepath.Join(t.TempDir(), "enh.sling")
	if err := cmdBuild([]string{"-graph", graphPath, "-eps", "0.1", "-out", idxPath, "-enhance"}); err != nil {
		t.Fatalf("enhanced build: %v", err)
	}
	if err := cmdStats([]string{"-graph", graphPath, "-index", idxPath}); err != nil {
		t.Fatalf("stats: %v", err)
	}
}

func TestConformanceCommand(t *testing.T) {
	benchPath := filepath.Join(t.TempDir(), "BENCH_conformance.json")
	// One cheap family/config keeps the CLI path test fast; the matrix
	// itself is exercised by internal/conformance.
	if err := cmdConformance([]string{"-families", "star", "-configs", "0.6:0.1",
		"-q", "-out", benchPath}); err != nil {
		t.Fatalf("conformance: %v", err)
	}
	data, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatalf("bench artifact not written: %v", err)
	}
	var bench struct {
		AllPass  *bool `json:"all_pass"`
		Families []struct {
			Family  string  `json:"family"`
			BuildMS float64 `json:"build_ms"`
		} `json:"families"`
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatalf("bench artifact not JSON: %v", err)
	}
	if bench.AllPass == nil || !*bench.AllPass {
		t.Fatalf("bench artifact reports failure: %s", data)
	}
	if len(bench.Families) != 1 || bench.Families[0].Family != "star" || bench.Families[0].BuildMS <= 0 {
		t.Fatalf("bench families wrong: %s", data)
	}

	if err := cmdConformance([]string{"-families", "nope"}); err == nil {
		t.Fatal("unknown family accepted")
	}
	if err := cmdConformance([]string{"-configs", "bad"}); err == nil {
		t.Fatal("malformed config accepted")
	}
}

func TestErrorsSurface(t *testing.T) {
	graphPath := writeTestGraph(t)
	if err := cmdBuild([]string{"-out", "/dev/null"}); err == nil {
		t.Fatal("missing -graph accepted")
	}
	if err := cmdQuery([]string{"-graph", graphPath, "-index", "/does/not/exist", "1", "2"}); err == nil {
		t.Fatal("missing index accepted")
	}
	idxPath := filepath.Join(t.TempDir(), "x.sling")
	if err := cmdBuild([]string{"-graph", graphPath, "-eps", "0.1", "-out", idxPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-graph", graphPath, "-index", idxPath, "1"}); err == nil {
		t.Fatal("odd node-argument count accepted")
	}
	if err := cmdQuery([]string{"-graph", graphPath, "-index", idxPath, "1", "100000"}); err == nil {
		t.Fatal("unknown node label accepted")
	}
	if err := cmdSource([]string{"-graph", graphPath, "-index", idxPath, "-node", "424242"}); err == nil {
		t.Fatal("unknown source label accepted")
	}
}

// seedDurableDir builds a small durably backed dynamic index, applies a
// few updates, and returns the state directory for the durable verbs.
func seedDurableDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	r := rng.New(8)
	b := sling.NewGraphBuilder(16)
	for i := 0; i < 40; i++ {
		b.AddEdge(sling.NodeID(r.Intn(16)), sling.NodeID(r.Intn(16)))
	}
	dx, err := sling.NewDynamic(b.Build(),
		&sling.DynamicOptions{NumWalks: 16, DurableDir: dir, DurableNoSync: true},
		sling.WithEps(0.15), sling.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, _, err := dx.Apply([]sling.EdgeOp{
			{Add: true, From: sling.NodeID(i), To: sling.NodeID(15 - i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dx.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestDurableInspectAndVerify(t *testing.T) {
	dir := seedDurableDir(t)
	if err := cmdDurable([]string{"inspect", dir}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if err := cmdDurable([]string{"inspect", "-json", dir}); err != nil {
		t.Fatalf("inspect -json: %v", err)
	}
	if err := cmdDurable([]string{"verify", dir}); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestDurableVerifyFlagsCorruption(t *testing.T) {
	dir := seedDurableDir(t)
	// Bit-flip every snapshot: recovery has nothing to anchor the WAL on.
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.slsnap"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("snapshots = %v, err %v", snaps, err)
	}
	for _, p := range snaps {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := cmdDurable([]string{"verify", dir}); err == nil {
		t.Fatal("verify passed a directory with no valid snapshot")
	}
	if err := cmdDurable([]string{"inspect", dir}); err == nil {
		t.Fatal("inspect passed a directory with no valid snapshot")
	}
}

func TestDurableUsageErrors(t *testing.T) {
	if err := cmdDurable(nil); err == nil {
		t.Fatal("missing verb accepted")
	}
	if err := cmdDurable([]string{"polish", t.TempDir()}); err == nil {
		t.Fatal("unknown verb accepted")
	}
	if err := cmdDurable([]string{"verify"}); err == nil {
		t.Fatal("missing DIR accepted")
	}
	if err := cmdDurable([]string{"verify", "/does/not/exist"}); err == nil {
		t.Fatal("nonexistent DIR accepted")
	}
}

func TestConformanceOnlyFilter(t *testing.T) {
	// Capture the report cmdConformance prints to stdout.
	old := os.Stdout
	rpipe, wpipe, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = wpipe
	runErr := cmdConformance([]string{"-families", "star", "-configs", "0.6:0.1",
		"-no-http", "-no-dynamic", "-q", "-only", "^sharded$"})
	wpipe.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatalf("conformance -only: %v", runErr)
	}
	data, err := io.ReadAll(rpipe)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Backends []string `json:"backends"`
		Cells    []struct {
			Backend string `json:"backend"`
		} `json:"cells"`
		Filtered int `json:"filtered"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	for _, c := range rep.Cells {
		if c.Backend != "sharded" {
			t.Fatalf("cell for %q survived -only ^sharded$", c.Backend)
		}
	}
	if len(rep.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(rep.Cells))
	}
	// Without HTTP and dynamic the static set holds memory, disk, ooc,
	// sharded, and mmap where supported: everything but sharded is
	// filtered, and the report must say so.
	want := 3
	if sling.MmapSupported() {
		want = 4
	}
	if rep.Filtered != want {
		t.Fatalf("filtered = %d, want %d", rep.Filtered, want)
	}

	if err := cmdConformance([]string{"-families", "star", "-configs", "0.6:0.1",
		"-q", "-only", "("}); err == nil {
		t.Fatal("invalid -only regexp accepted")
	}
}

func TestShardSplitCommand(t *testing.T) {
	graphPath := writeTestGraph(t)
	outDir := filepath.Join(t.TempDir(), "shards")
	if err := cmdShard([]string{"split", "-graph", graphPath, "-eps", "0.1",
		"-shards", "3", "-out", outDir}); err != nil {
		t.Fatalf("shard split: %v", err)
	}
	manifestPath := filepath.Join(outDir, "manifest.json")
	m, err := shard.Load(manifestPath)
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if len(m.Shards) != 3 || m.Nodes != 100 || m.Graph == "" {
		t.Fatalf("manifest = %+v", m)
	}
	// The shard files must reload against the graph and serve queries.
	g, _, err := sling.LoadEdgeListFile(m.Graph, m.Undirected)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]shard.Client, len(m.Shards))
	for i, si := range m.Shards {
		sx, err := sling.Open(shard.Resolve(manifestPath, si.Path), g)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		clients[i] = shard.NewLocal(sx)
	}
	q, err := shard.New(m, clients, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.SimRank(context.Background(), 0, 99); err != nil {
		t.Fatalf("query over split shards: %v", err)
	}

	if err := cmdShard([]string{"merge"}); err == nil {
		t.Fatal("unknown shard verb accepted")
	}
	if err := cmdShard([]string{"split", "-shards", "2"}); err == nil {
		t.Fatal("missing -graph accepted")
	}
}
